// A concrete interpreter for the Fortran subset. Two jobs:
//
//   * validation oracle — trace the element-level per-iteration MOD/UE sets
//     of a chosen loop and the scalar environment at each iteration entry,
//     so the analyzer's symbolic summaries can be checked against ground
//     truth (analysis results evaluated under the traced bindings must
//     match exactly when decidable, and over-approximate otherwise);
//   * cost model input — per-iteration operation counts feed the simulated
//     multiprocessor (machine_model.h) that stands in for the paper's
//     Alliant FX/8 measurements.
//
// Semantics notes: call-by-reference (scalars, whole arrays, and
// element-offset actuals), COMMON via the shared global stores, GOTO within
// a nesting level plus premature loop exits, uninitialized scalars read as
// zero (the corpus never relies on uninitialized data).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "panorama/ast/sema.h"

namespace panorama {

using ElementSet = std::set<std::vector<std::int64_t>>;

struct InterpValue {
  BaseType type = BaseType::Integer;
  std::int64_t i = 0;
  double r = 0.0;
  bool l = false;

  static InterpValue ofInt(std::int64_t v) { return {BaseType::Integer, v, 0.0, false}; }
  static InterpValue ofReal(double v) { return {BaseType::Real, 0, v, false}; }
  static InterpValue ofLogical(bool v) { return {BaseType::Logical, 0, 0.0, v}; }

  double asReal() const { return type == BaseType::Integer ? static_cast<double>(i) : r; }
  std::int64_t asInt() const {
    return type == BaseType::Integer ? i : static_cast<std::int64_t>(r);
  }
  bool asLogical() const { return type == BaseType::Logical ? l : asInt() != 0; }
};

/// Ground truth collected for one loop.
struct LoopTrace {
  const Stmt* loop = nullptr;
  /// Scalar environment (integers and logicals) at the loop's entry — the
  /// frame the analyzer's summaries are expressed in (loop-entry values for
  /// scalars, plus the iteration index).
  Binding loopEntry;
  /// Scalar environment at each iteration's entry, including the iteration's
  /// index value (loop-variant scalars differ from `loopEntry` here).
  std::vector<Binding> iterEntry;
  std::vector<std::map<ArrayId, ElementSet>> modPerIter;
  std::vector<std::map<ArrayId, ElementSet>> uePerIter;
  /// Downward-exposed uses: reads not followed by a same-iteration write.
  std::vector<std::map<ArrayId, ElementSet>> dePerIter;
  std::map<ArrayId, ElementSet> modWhole;
  std::map<ArrayId, ElementSet> ueWhole;
  std::vector<std::uint64_t> iterOps;  ///< expression-node evaluations per iteration
};

class Interpreter {
 public:
  struct Config {
    /// Initial values for scalars, keyed by qualified name ("proc::x").
    std::map<std::string, InterpValue> scalarInputs;
    /// Initial array element values, keyed by qualified name.
    std::map<std::string, std::map<std::vector<std::int64_t>, double>> arrayInputs;
    std::uint64_t maxSteps = 50'000'000;
    const Stmt* traceLoop = nullptr;  ///< outermost loop to trace (optional)

    // Privatized-execution witness: run `privatizeLoop`'s iterations in a
    // scrambled order, giving each iteration fresh private copies of
    // `privatizedArrays` and copying the sequentially-last iteration's
    // values out afterwards. If the analysis privatized correctly, final
    // memory matches the serial run bit for bit; if it privatized wrongly,
    // the scrambling exposes it.
    const Stmt* privatizeLoop = nullptr;
    std::vector<ArrayId> privatizedArrays;
    unsigned scrambleSeed = 1;
  };

  struct Result {
    bool ok = false;
    std::string error;
    std::uint64_t steps = 0;  ///< total expression-node evaluations
  };

  Interpreter(const Program& program, const SemaResult& sema);

  Result run(const Config& config);

  const LoopTrace& trace() const { return trace_; }
  /// Final array contents (for serial-vs-transformed comparisons).
  const std::map<ArrayId, std::map<std::vector<std::int64_t>, double>>& arrays() const {
    return arrays_;
  }
  const std::map<VarId, InterpValue>& scalars() const { return scalars_; }

 private:
  friend class InterpImpl;
  const Program& program_;
  const SemaResult& sema_;
  LoopTrace trace_;
  std::map<ArrayId, std::map<std::vector<std::int64_t>, double>> arrays_;
  std::map<VarId, InterpValue> scalars_;
};

}  // namespace panorama
