// A bounded, sharded memo table for symbolic query verdicts.
//
// The analyzer answers the same Fourier-Motzkin feasibility checks,
// atom-pair queries, and predicate-implication tests over and over as
// guards flow through the propagation. Verdicts are pure functions of the
// query structure, so they memoize safely: this cache maps an exact query
// encoding — a tag plus a word vector built from interned expression /
// atom / predicate keys and the query budget — to its Truth verdict.
//
// Properties the parallel driver and its tests rely on:
//   * Exact keys. Entries are stored under the full encoded key (word
//     vector compare, not its hash), so two different queries can never
//     alias: a cached verdict is always the verdict a cold evaluation
//     would produce, regardless of query order or thread interleaving.
//   * Bounded. Capacity is split across shards; each shard evicts once
//     full. Eviction is session-aware: victims are preferred among *stale*
//     entries — stored under an earlier epoch (bumpEpoch) or before the
//     last noteUnitsRetired() call (procedures left the session's unit
//     table) — falling back to plain FIFO among live entries only when no
//     stale entry remains in the shard. Eviction only forgets — the next
//     lookup recomputes and re-stores the identical verdict.
//   * Sharded locking. A key's shard is chosen by its hash; each shard has
//     its own mutex, so concurrent analysis threads rarely contend.
//   * Observable. Hit/miss/eviction counters are surfaced through the
//     report layer (formatQueryCacheStats) and the parallel-driver bench.
//
//   * Epoch-tagged. Every entry carries the cache epoch it was stored
//     under; lookups only hit current-epoch entries. bumpEpoch() is an O(1)
//     whole-cache invalidation — the incremental session uses it when
//     analysis options change (a verdict is a pure function of its key, so
//     entries stay valid across re-submits; only an options change warrants
//     dropping them). Stale entries are overwritten in place on the next
//     store of their key.
//
// configure(0) disables the cache entirely: every lookup misses and
// nothing is stored, which restores the seed's cold-query behavior.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "panorama/support/diagnostics.h"

namespace panorama {

class QueryCache {
 public:
  /// Namespaces for the memoized query families. Every key starts with its
  /// tag, so families can never collide.
  enum class Tag : std::uint64_t {
    FmContradictory = 1,  ///< ConstraintSet::contradictory
    AtomsContradict = 2,  ///< atomsContradict (also serves atomImplies)
    PredImplies = 3,      ///< Pred::implies
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t evictedStale = 0;  ///< victims that were already invalid
    std::uint64_t evictedLive = 0;   ///< victims that could still have hit

    double hitRate() const {
      const double total = static_cast<double>(hits + misses);
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// The process-wide cache every analysis thread shares.
  static QueryCache& global();

  /// Sets the entry capacity. 0 disables the cache. Existing entries and
  /// counters are dropped either way.
  void configure(std::size_t capacity);
  std::size_t capacity() const;
  bool enabled() const { return capacity() > 0; }

  /// The memoized verdict for (tag, words), or nullopt (also counts the
  /// miss). Disabled caches always return nullopt.
  std::optional<Truth> lookup(Tag tag, const std::vector<std::uint64_t>& words);

  /// Stores a verdict, evicting the shard's oldest entries when full.
  /// No-op when disabled.
  void store(Tag tag, std::vector<std::uint64_t> words, Truth verdict);

  Stats stats() const;
  /// Drops entries and counters but keeps the capacity.
  void clear();

  /// The current epoch. Entries stored under earlier epochs never hit.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// O(1) invalidation of every resident entry (they become stale, not
  /// freed; the next store of a stale key overwrites it in place).
  void bumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Marks every currently resident entry eviction-preferred. The session
  /// calls this when procedures leave its unit table: their verdicts stay
  /// *correct* (keys are pure), so entries still hit — but they are the
  /// first to go under capacity pressure. Coarse by design: tracking exact
  /// per-procedure key ownership would cost more than the cache saves.
  void noteUnitsRetired() { retire_.fetch_add(1, std::memory_order_acq_rel); }
  std::uint64_t retireGeneration() const { return retire_.load(std::memory_order_acquire); }

  /// The shard a key routes to — lets tests construct same-shard key sets
  /// to pin down eviction order deterministically.
  static std::size_t shardIndexForTesting(Tag tag, const std::vector<std::uint64_t>& words);

 private:
  static constexpr std::size_t kShards = 16;

  struct Key {
    std::uint64_t tag = 0;
    std::vector<std::uint64_t> words;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      std::size_t h = 0xcbf29ce484222325ull ^ static_cast<std::size_t>(k.tag);
      for (std::uint64_t w : k.words) {
        h ^= static_cast<std::size_t>(w);
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };
  struct Entry {
    Truth verdict = Truth::Unknown;
    std::uint64_t epoch = 0;   ///< store-time epoch; stale entries never hit
    std::uint64_t retire = 0;  ///< store-time retire generation
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHasher> map;
    std::deque<Key> order;  ///< insertion order; victims scanned from front
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t evictedStale = 0;
    std::uint64_t evictedLive = 0;
    /// Entries stored before the last observed epoch/retire change (all of
    /// them are eviction-preferred). Refreshed lazily under the shard lock:
    /// when the global (epoch, retire) pair moved since the shard last
    /// looked, every resident entry predates the move.
    std::uint64_t staleCount = 0;
    std::uint64_t seenEpoch = 0;
    std::uint64_t seenRetire = 0;
  };

  Shard& shardFor(const Key& k) const;
  /// Refreshes `staleCount` against the current (epoch, retire) pair; must
  /// hold the shard lock.
  void refreshStale(Shard& shard, std::uint64_t epochNow, std::uint64_t retireNow);
  static bool entryStale(const Entry& e, std::uint64_t epochNow, std::uint64_t retireNow) {
    return e.epoch != epochNow || e.retire != retireNow;
  }

  mutable std::array<Shard, kShards> shards_;
  /// Default mirrors the seed's always-on (but unbounded, single-threaded)
  /// atom-pair memo; AnalysisOptions::cacheCapacity overrides per run.
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> retire_{0};

 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;
};

/// One-line rendering of the global cache counters for reports and benches.
std::string formatQueryCacheStats(const QueryCache::Stats& stats);

}  // namespace panorama
