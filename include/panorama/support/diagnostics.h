// Diagnostics: source locations and an error sink shared by the frontend,
// semantic analysis, and the dataflow analyzer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace panorama {

/// A position in a source buffer. Lines and columns are 1-based; a value of 0
/// means "unknown" (used for synthesized constructs).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  constexpr bool isValid() const { return line != 0; }
  friend constexpr bool operator==(SourceLoc, SourceLoc) = default;
};

enum class DiagKind : std::uint8_t { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind kind = DiagKind::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; never throws. Callers decide how to react to
/// `hasErrors()` (the frontend aborts a parse, the analyzer degrades to
/// conservative results).
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  bool hasErrors() const { return errorCount_ > 0; }
  std::size_t errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Renders all diagnostics as "line:col: kind: message" lines.
  std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errorCount_ = 0;
};

/// Three-valued logic used throughout the symbolic layer: a query about
/// symbolic values can be provably true, provably false, or undecidable with
/// the available facts.
enum class Truth : std::uint8_t { False = 0, True = 1, Unknown = 2 };

constexpr Truth negate(Truth t) {
  switch (t) {
    case Truth::True: return Truth::False;
    case Truth::False: return Truth::True;
    default: return Truth::Unknown;
  }
}

constexpr const char* toString(Truth t) {
  switch (t) {
    case Truth::True: return "true";
    case Truth::False: return "false";
    default: return "unknown";
  }
}

}  // namespace panorama
