// A minimal JSON reader for the observability tooling: baseline snapshots
// (bench/harness), profile/metrics schema checks in tests, and the
// bench_runner regression gate. Parse-only — every JSON producer in the
// repo renders by hand so the output format stays auditable.
//
// Deliberately small: no comments, no trailing commas, numbers as double
// (the values we round-trip — wall times, counters — fit a double's 53-bit
// mantissa), object member order preserved.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace panorama::support {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  bool asBool() const { return bool_; }
  double asNumber() const { return number_; }
  const std::string& asString() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  /// First member with `key` (objects only), or nullptr.
  const JsonValue* find(std::string_view key) const;

  /// Parses one JSON document (trailing whitespace allowed, trailing content
  /// is an error). On failure returns nullopt and sets `error` if given.
  static std::optional<JsonValue> parse(std::string_view text, std::string* error = nullptr);

  static JsonValue makeNull() { return JsonValue{}; }
  static JsonValue makeBool(bool v);
  static JsonValue makeNumber(double v);
  static JsonValue makeString(std::string v);
  static JsonValue makeArray(std::vector<JsonValue> v);
  static JsonValue makeObject(std::vector<std::pair<std::string, JsonValue>> v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` for embedding in a JSON string literal (shared by the
/// hand-rolled renderers that live outside src/obs).
void appendJsonEscaped(std::string& out, std::string_view s);

}  // namespace panorama::support
