// A small work-stealing thread pool for the parallel analysis driver.
//
// Each worker owns a deque: tasks scheduled to it are popped from the front
// by the owner and stolen from the back by idle peers, so batches with
// uneven task costs (one procedure much larger than its wave siblings)
// still fill every thread. The thread that calls runBatch participates in
// the work and helps drain *any* queue until its own batch completes, which
// makes nested batches (a corpus task fanning out per-procedure waves)
// deadlock-free.
//
// With threadCount() == 1 no workers exist and runBatch executes the tasks
// inline, in submission order, on the calling thread — the serial path the
// determinism tests compare against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace panorama {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: ThreadPool(4) spawns 3 workers.
  /// 0 means defaultConcurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency, calling thread included. Always >= 1.
  std::size_t threadCount() const { return workers_.size() + 1; }

  /// Runs every task to completion before returning. Tasks may themselves
  /// call runBatch on the same pool.
  void runBatch(std::vector<std::function<void()>> tasks);

  /// Tasks currently sitting in worker deques (scheduled, not yet started).
  /// A monitoring-grade sample — racy by nature, exact at quiescence.
  std::size_t queueDepth() const { return queued_.load(std::memory_order_relaxed); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t defaultConcurrency();

 private:
  struct Task {
    std::function<void()> fn;
    std::atomic<std::size_t>* remaining = nullptr;
    std::condition_variable* done = nullptr;
    std::mutex* doneMutex = nullptr;
  };

  struct Slot {
    std::mutex m;
    std::deque<Task> q;
  };

  void workerLoop(std::size_t self);
  /// Pops from slot `self`'s front or steals from another slot's back.
  bool takeTask(std::size_t self, Task& out);
  void runTask(Task& task);

  std::vector<std::unique_ptr<Slot>> slots_;  // index 0 belongs to callers
  std::vector<std::thread> workers_;          // worker i owns slot i+1
  std::mutex wakeMutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace panorama
