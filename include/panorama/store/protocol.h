// The daemon's wire protocol (DESIGN.md §4.8): Unix-domain stream sockets
// carrying length-prefixed frames.
//
//   frame := length:u32 (little-endian)  payload:length bytes
//
// Payloads are JSON documents; every request carries a client-chosen `id`
// that the response echoes, so a client can pipeline requests and match
// answers. Framing and transport are symmetric — the same helpers serve the
// daemon and the client tool.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace panorama::store {

/// Upper bound on one frame's payload. Large enough for any corpus source
/// or report; small enough that a corrupt length prefix cannot drive a
/// multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one frame, handling short writes and EINTR. False on any error
/// (peer gone, oversized payload), with `error` describing it.
bool writeFrame(int fd, std::string_view payload, std::string* error = nullptr);

enum class FrameStatus {
  Ok,       ///< one complete frame read
  Eof,      ///< clean end of stream before a frame started
  Error,    ///< I/O error, truncated frame, or expired read timeout
  TooLarge, ///< length prefix over the cap; the payload was drained, so the
            ///< stream is still framed and the connection can keep serving
};

/// Reads one complete frame into `payload`. EOF exactly at a frame boundary
/// is a clean `Eof`; EOF mid-frame is an `Error` (the peer died mid-send).
/// An over-cap length prefix reads and discards the whole payload, then
/// returns `TooLarge` — the caller can answer with a structured error and
/// continue reading frames.
FrameStatus readFrame(int fd, std::string& payload, std::string* error = nullptr);

/// Creates, binds, and listens on a Unix-domain stream socket at `path`.
/// A stale socket file from a dead daemon is replaced (only if the existing
/// file is a socket — anything else is refused). Returns the listening fd,
/// or -1 with `error` set.
int listenUnixSocket(const std::string& path, std::string* error);

/// Connects to the daemon's socket. Returns the connected fd, or -1 with
/// `error` set. `timeoutMs > 0` bounds the connect itself (a daemon whose
/// accept queue is wedged cannot hang the caller); <= 0 blocks indefinitely.
int connectUnixSocket(const std::string& path, std::string* error, int timeoutMs = -1);

/// Applies `timeoutMs` as the socket's send and receive timeout, so every
/// subsequent readFrame/writeFrame on `fd` fails (FrameStatus::Error /
/// false, with a "timed out" diagnostic) instead of blocking forever on a
/// wedged peer. <= 0 clears the timeouts.
bool setSocketTimeout(int fd, int timeoutMs, std::string* error = nullptr);

}  // namespace panorama::store
