// Analysis-as-a-service (DESIGN.md §4.8) with a live telemetry plane
// (DESIGN.md §4.10): a daemon that keeps the process-global hash-cons
// arenas, the query cache, and one shared work-stealing pool warm across
// many client submissions — and answers for its own health while doing it.
//
// Each accepted connection gets its own handler thread and its own
// AnalysisSession, so one client's incremental state (units, fingerprints,
// cached reports) never bleeds into another's — what *is* shared is the
// structural layer underneath: interned expressions/predicates, the FM
// query cache, and the thread pool the dirty-cone batches run on. Requests
// and responses travel as length-prefixed JSON frames (store/protocol.h).
//
// Request ops (every request carries a client-chosen "id", echoed back —
// numbers verbatim, strings as JSON strings):
//   {"id":N,"op":"ping"}
//   {"id":N,"op":"submit","source":"...","name":"file.f",
//    "session":"key"?,"explain":true?,"stats":true?}
//   {"id":N,"op":"status"}
//   {"id":N,"op":"metrics"}
//   {"id":N,"op":"tail","cursor":C?,"max":M?}
//   {"id":N,"op":"shutdown"}
//
// The three telemetry ops never touch a session mutex, so they answer
// immediately even while submits are in flight on every session:
//   status  — one JSON object: uptime, connection counts, request/submit/
//             error/slow totals, pool queue depth, arena occupancy, cache
//             hit rates, and one row per live named session (epoch, cached
//             units, file skips).
//   metrics — the full MetricsRegistry dump (counters + histograms with
//             p50/p95/p99), including the per-op rolling latency
//             histograms daemon.op.<op>.{wall_us,queue_us,handle_us} —
//             wall split into queue-wait (parse + session-gate wait) and
//             handle time.
//   tail    — cursor-based incremental reads of the structured event log
//             (obs/telemetry.h): conn open/close, submit begin/end with
//             session + epoch + dirty-cone size, errors, slow requests,
//             periodic snapshots. The response's next_cursor feeds the next
//             tail; overwritten records surface as an explicit "dropped"
//             count, never as a silent gap.
//
// A submit with a "session" key runs against a named session that outlives
// the connection (created on first use, shared by every client that names
// it), so resubmitting a file under the same key exercises the whole-file
// fast path and the incremental dirty-cone machinery across connections.
// Without a key the submit runs against the connection-local session.
// Either way the submit serializes on a daemon-side gate mutex whose wait
// time is what the queue_us histograms record — cross-client queueing on a
// shared named session is visible, not folded into handle time.
//
// A submit response's "report" field is byte-identical to what
// `panorama_driver file.f` prints for the same source — the daemon smoke
// test diffs the two.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "panorama/obs/telemetry.h"
#include "panorama/session/session.h"
#include "panorama/support/thread_pool.h"

namespace panorama::support {
class JsonValue;
}

namespace panorama::store {

/// Telemetry knobs, all optional — the default-constructed config records
/// per-op latency and events in memory with no file sink and no snapshot
/// thread.
struct DaemonConfig {
  /// Master switch for the whole plane: per-op histograms, event-log
  /// appends, slow-request detection. Off = the PR-8 daemon's exact
  /// request path (the overhead bench's baseline).
  bool telemetry = true;
  /// Requests whose wall time reaches this many milliseconds emit a
  /// slow_request event. 0 records every request (useful in tests).
  std::size_t slowMs = 500;
  /// Period of the self-snapshot thread's snapshot events; 0 disables
  /// snapshots (the thread still runs if an event-log file needs draining).
  std::size_t telemetryIntervalMs = 0;
  /// When set, the telemetry thread drains the event log to this file as
  /// JSONL (one event per line) and flushes the remainder at shutdown.
  std::string eventLogPath;
  /// Ring capacity of the in-memory event log (rounded up to a power of 2).
  std::size_t eventLogCapacity = obs::EventLog::kDefaultCapacity;
};

class Daemon {
 public:
  /// Configures the service; no I/O until start(). `options.numThreads`
  /// sizes the one shared pool every client session schedules on.
  Daemon(std::string socketPath, AnalysisOptions options, DaemonConfig config = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the Unix-domain socket, opens the event-log sink (if configured),
  /// and starts the accept loop plus the telemetry thread. False (with
  /// `error` set) when the socket cannot be created — the path is too long,
  /// exists as a non-socket file, or the directory is unwritable — or the
  /// event-log file cannot be opened.
  bool start(std::string& error);

  /// Blocks until the service ends (a client's shutdown request or stop()),
  /// then joins every handler thread and the telemetry thread, draining the
  /// last events to the JSONL sink. Call from the thread that started the
  /// daemon.
  void wait();

  /// Requests shutdown: stops accepting, shuts down live client
  /// connections (their handlers drain and exit), and wakes wait().
  /// Idempotent; safe to call from a handler thread.
  void stop();

  const std::string& socketPath() const { return socketPath_; }
  /// The daemon's event log — what `tail` reads and benches append to.
  obs::EventLog& eventLog() { return eventLog_; }

 private:
  /// A session plus the daemon-side gate that serializes submits to it.
  /// The gate (not the session's internal mutex) is what queue_us measures:
  /// the wait is taken with the request already parsed, so it is pure
  /// cross-request queueing.
  struct Gated {
    Gated(const AnalysisOptions& options, ThreadPool* pool) : session(options, pool) {}
    std::mutex gate;
    AnalysisSession session;
  };

  /// Telemetry carried out of dispatch() for the metrics/event epilogue.
  struct RequestInfo {
    const char* op = "other";       ///< canonical op name (bounded set)
    std::uint64_t gateWaitUs = 0;   ///< submit's wait on the session gate
    std::string error;              ///< non-empty when an error was answered
  };

  void acceptLoop();
  void handleClient(int fd, std::uint64_t clientId);
  /// Parses and dispatches one framed request, then records per-op latency
  /// histograms, error/slow events, and counters. Sets `shutdownRequested`
  /// on a shutdown op (the ack is still sent before the daemon stops).
  std::string handleRequest(const std::string& payload, Gated& local, std::uint64_t clientId,
                            bool& shutdownRequested);
  /// The op switch proper; fills `info` for handleRequest's epilogue.
  std::string dispatch(const support::JsonValue& req, const std::string& id, Gated& local,
                       std::uint64_t clientId, bool& shutdownRequested, RequestInfo& info);
  std::string statusResponse(const std::string& id);
  /// The named session for `key`, created on first use.
  Gated& namedSession(const std::string& key);
  /// Telemetry thread body: periodic snapshot events + JSONL sink drain.
  void telemetryLoop();
  /// Writes every unseen event-log record to the sink file (no-op without
  /// one); callers serialize (the telemetry thread, then wait()'s final
  /// drain after it exits).
  void drainEventLog();

  std::string socketPath_;
  AnalysisOptions options_;
  DaemonConfig config_;
  ThreadPool pool_;

  int listenFd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptThread_;

  /// Guards clientFds_/handlers_ and every close/shutdown of a client fd,
  /// so stop() can never race a handler's close into a recycled fd.
  std::mutex mutex_;
  std::vector<int> clientFds_;
  std::vector<std::thread> handlers_;

  std::mutex stopMutex_;
  std::condition_variable stopCv_;

  /// Cross-connection sessions, keyed by the submit's "session" field.
  /// The map mutex only guards lookup/insert; submits serialize on each
  /// entry's gate.
  std::mutex sessionsMutex_;
  std::map<std::string, std::unique_ptr<Gated>> namedSessions_;

  // ----- telemetry plane -----
  obs::EventLog eventLog_;
  std::atomic<std::uint64_t> nextClientId_{1};
  std::atomic<std::uint64_t> activeConnections_{0};
  std::atomic<std::uint64_t> totalConnections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> submits_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> slowRequests_{0};

  std::thread telemetryThread_;
  std::mutex telemetryMutex_;
  std::condition_variable telemetryCv_;
  std::FILE* eventLogFile_ = nullptr;
  std::uint64_t sinkCursor_ = 0;  ///< the JSONL sink's tail cursor
};

}  // namespace panorama::store
