// Analysis-as-a-service (DESIGN.md §4.8): a daemon that keeps the
// process-global hash-cons arenas, the query cache, and one shared
// work-stealing pool warm across many client submissions.
//
// Each accepted connection gets its own handler thread and its own
// AnalysisSession, so one client's incremental state (units, fingerprints,
// cached reports) never bleeds into another's — what *is* shared is the
// structural layer underneath: interned expressions/predicates, the FM
// query cache, and the thread pool the dirty-cone batches run on. Requests
// and responses travel as length-prefixed JSON frames (store/protocol.h).
//
// Request ops (every request carries a client-chosen "id", echoed back):
//   {"id":N,"op":"ping"}
//   {"id":N,"op":"submit","source":"...","name":"file.f",
//    "session":"key"?,"explain":true?,"stats":true?}
//   {"id":N,"op":"shutdown"}
//
// A submit with a "session" key runs against a named session that outlives
// the connection (created on first use, shared by every client that names
// it — AnalysisSession serializes its own submits), so resubmitting a file
// under the same key exercises the whole-file fast path and the
// incremental dirty-cone machinery across connections. Without a key the
// submit runs against the connection-local session.
//
// A submit response's "report" field is byte-identical to what
// `panorama_driver file.f` prints for the same source — the daemon smoke
// test diffs the two.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "panorama/session/session.h"
#include "panorama/support/thread_pool.h"

namespace panorama::store {

class Daemon {
 public:
  /// Configures the service; no I/O until start(). `options.numThreads`
  /// sizes the one shared pool every client session schedules on.
  Daemon(std::string socketPath, AnalysisOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the Unix-domain socket and starts the accept loop. False (with
  /// `error` set) when the socket cannot be created — the path is too long,
  /// exists as a non-socket file, or the directory is unwritable.
  bool start(std::string& error);

  /// Blocks until the service ends (a client's shutdown request or stop()),
  /// then joins every handler thread. Call from the thread that started the
  /// daemon.
  void wait();

  /// Requests shutdown: stops accepting, shuts down live client
  /// connections (their handlers drain and exit), and wakes wait().
  /// Idempotent; safe to call from a handler thread.
  void stop();

  const std::string& socketPath() const { return socketPath_; }

 private:
  void acceptLoop();
  void handleClient(int fd);
  /// Dispatches one framed request against `session`; returns the response
  /// payload. Sets `shutdownRequested` on a shutdown op (the ack is still
  /// sent before the daemon stops).
  std::string handleRequest(const std::string& payload, AnalysisSession& session,
                            bool& shutdownRequested);
  /// The named session for `key`, created on first use.
  AnalysisSession& namedSession(const std::string& key);

  std::string socketPath_;
  AnalysisOptions options_;
  ThreadPool pool_;

  int listenFd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptThread_;

  /// Guards clientFds_/handlers_ and every close/shutdown of a client fd,
  /// so stop() can never race a handler's close into a recycled fd.
  std::mutex mutex_;
  std::vector<int> clientFds_;
  std::vector<std::thread> handlers_;

  std::mutex stopMutex_;
  std::condition_variable stopCv_;

  /// Cross-connection sessions, keyed by the submit's "session" field.
  /// The map mutex only guards lookup/insert; the sessions themselves
  /// serialize their own submits.
  std::mutex sessionsMutex_;
  std::map<std::string, std::unique_ptr<AnalysisSession>> namedSessions_;
};

}  // namespace panorama::store
