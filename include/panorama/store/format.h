// The on-disk session-snapshot container (DESIGN.md §4.8): a fixed header
// carrying an explicit schema version and an integrity hash over the
// payload, plus little-endian primitive codecs shared by the writer and the
// bounds-checked reader.
//
//   header  := magic:u32 schema_version:u32 payload_size:u64 payload_hash:u64
//   payload := the section stream session_io.cpp defines
//
// Crash consistency is the *writer's* job (write to a temp file, fsync,
// rename); the reader's job is to reject anything that is not a complete,
// intact snapshot of a supported version with a structured diagnostic —
// truncation, bit rot, and version skew must never half-load a session.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace panorama::store {

inline constexpr std::uint32_t kMagic = 0x4f4e4150u;  // "PANO", little-endian
/// Current schema: v2 adds per-unit declaration-frame hashes, item records
/// (the loop-granular reuse keys of DESIGN.md §4.9), and headerless cached
/// reports. v1 snapshots still restore (their units simply carry no item
/// records, so restored sessions fall back to procedure-granular reuse
/// until the first submit refreshes them).
inline constexpr std::uint32_t kSchemaVersion = 2;
inline constexpr std::uint32_t kMinSchemaVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;

/// FNV-1a over a byte range — the payload integrity hash (and the session's
/// whole-file fingerprint; one hash function, stated once).
std::uint64_t fnv1a(std::string_view bytes);

/// Outcome of a store operation; `error` is a structured one-line diagnostic
/// ("<path>: <what>") when !ok.
struct StoreResult {
  bool ok = false;
  std::string error;
};

/// Appends little-endian primitives to a byte buffer.
class Writer {
 public:
  std::string& bytes() { return bytes_; }
  const std::string& bytes() const { return bytes_; }

  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact double transport (no text round-trip: RealLit must survive).
  void f64(double v);
  void str(std::string_view s);

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian reader: every accessor fails (sticky `ok()
/// == false`) instead of reading past the end, so a truncated or corrupted
/// payload degrades to one structured diagnostic, never UB.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool atEnd() const { return pos_ == bytes_.size(); }
  /// First failure wins; later calls keep the original message.
  void fail(std::string why);
  const std::string& error() const { return error_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  /// Length prefix for a sequence of elements each at least `elemBytes`
  /// long: rejects counts that could not possibly fit in the remaining
  /// payload, so hostile counts cannot drive huge allocations.
  std::uint64_t count(std::size_t elemBytes, std::string_view what);

 private:
  bool take(std::size_t n, const char** out);

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

/// Frames `payload` with the header (stamped `schemaVersion`) and writes it
/// crash-consistently: temp file in the target directory, then rename over
/// `path`.
StoreResult writeSnapshotFile(const std::string& path, const std::string& payload,
                              std::uint32_t schemaVersion = kSchemaVersion);

/// Reads `path`, verifies magic/size/hash and that the version lies in
/// [kMinSchemaVersion, kSchemaVersion], and returns the payload in `payload`
/// and the header's version in `version` (so the caller selects the payload
/// decoder). Any defect yields a structured diagnostic.
StoreResult readSnapshotFile(const std::string& path, std::string& payload,
                             std::uint32_t& version);

}  // namespace panorama::store
