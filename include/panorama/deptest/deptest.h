// Conventional data dependence tests (§2): the GCD test and the Banerjee
// bounds test over affine subscript pairs, plus a whole-loop driver that
// plays two roles from the paper's §6:
//
//   * the cheap filter — "the more expensive array dataflow analysis is
//     applied only to loops whose parallelizability cannot be determined by
//     the conventional data dependence tests", and
//   * the baseline the evaluation compares against (memory disambiguation
//     without value-flow information cannot privatize anything).
#pragma once

#include "panorama/analysis/analysis.h"

namespace panorama {

/// Is `a*i + b*i' + rest = 0` unsolvable over the integers by the GCD
/// criterion? `f` and `g` are one subscript each, affine in the shared loop
/// index `index`; the renamed iteration uses a distinct symbol internally.
/// True = provably no solution = independent in this dimension.
Truth gcdIndependent(const SymExpr& f, const SymExpr& g, VarId index);

/// Banerjee bounds test for the same equation, using constant loop bounds
/// [lo, up] when available: independent when 0 lies outside the extreme
/// values of f(i) - g(i') over the iteration box (any-direction test).
Truth banerjeeIndependent(const SymExpr& f, const SymExpr& g, VarId index, const SymExpr& lo,
                          const SymExpr& up);

/// Loop-carried independence of two (point-)references: every subscript
/// dimension independent by GCD or Banerjee implies no two distinct
/// iterations touch a common element.
Truth refsIndependent(const Region& w, const Region& r, VarId index, const SymExpr& lo,
                      const SymExpr& up);

/// The conventional-analysis verdict for one loop. No value-flow, no
/// guards, no interprocedural summaries: a loop is parallel only when every
/// write/write and write/read pair is proven independent, no CALL touches an
/// array, and every assigned scalar is iteration-private.
struct ConventionalResult {
  bool parallel = false;
  bool sawCall = false;
  bool sawUnanalyzable = false;  ///< non-affine subscript or unknown bounds
  int pairsTested = 0;
  int pairsIndependent = 0;
};

class ConventionalAnalyzer {
 public:
  ConventionalAnalyzer(const Program& program, const SemaResult& sema)
      : program_(program), sema_(sema) {}

  ConventionalResult classifyLoop(const Stmt& doStmt, const Procedure& proc) const;

  /// All loops of the program (outermost first), as (stmt, verdict) pairs.
  std::vector<std::pair<const Stmt*, ConventionalResult>> classifyProgram() const;

 private:
  const Program& program_;
  const SemaResult& sema_;
};

}  // namespace panorama
