// Content fingerprints for procedure units (the incremental session's
// change-detection primitive). A fingerprint is a structural hash over a
// procedure's declarations and statement subtree that deliberately ignores
// SourceLoc, so reformatting or shifting a routine within its file does not
// dirty it — only a change to what the analyzer can observe does.
//
// Fingerprints are computed over the *pre-sema* AST (sema mutates ArrayRef
// nodes into Intrinsic nodes in place); AnalysisSession always hashes the
// freshly parsed program, so the same source text maps to the same
// fingerprint on every submit.
#pragma once

#include <cstdint>

#include "panorama/ast/ast.h"

namespace panorama {

/// 64-bit FNV-1a structural hash. Equality of fingerprints is treated as
/// equality of procedure content (collisions are ignored, as everywhere
/// fingerprints are used for build avoidance).
using Fingerprint = std::uint64_t;

Fingerprint fingerprintProcedure(const Procedure& proc);

}  // namespace panorama
