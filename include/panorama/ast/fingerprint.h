// Content fingerprints for procedure units (the incremental session's
// change-detection primitive). A fingerprint is a structural hash over a
// procedure's declarations and statement subtree that deliberately ignores
// SourceLoc, so reformatting or shifting a routine within its file does not
// dirty it — only a change to what the analyzer can observe does.
//
// Fingerprints are computed over the *pre-sema* AST (sema mutates ArrayRef
// nodes into Intrinsic nodes in place); AnalysisSession always hashes the
// freshly parsed program, so the same source text maps to the same
// fingerprint on every submit.
//
// Beyond the whole-procedure hash, fingerprintProcedureDetail() breaks a
// procedure into per-top-level-statement *items* — the granularity the
// session reuses loop verdicts at. A loop verdict depends on exactly:
//   * the procedure frame (params/decls/commons/paramConsts — they shape
//     ProcSymbols and hence every lowering), plus the set of DO index names
//     (the T1-off ablation keys on it);
//   * its own item subtree (loop summary + scalar classification);
//   * the statements *after* the item (the suffix feeds the backward walk's
//     ueAfter — the copy-out/live-out probe);
//   * under options.quantified only, the immediately preceding item (the
//     §5.2 counter idiom inspects `body[k-1]`);
//   * the summaries of called procedures (keyed separately, by epoch).
// Each item therefore carries (hash, suffixHash, precedingHash) plus the
// callee names its verdict may read (subtree ∪ suffix).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "panorama/ast/ast.h"

namespace panorama {

/// 64-bit FNV-1a structural hash. Equality of fingerprints is treated as
/// equality of procedure content (collisions are ignored, as everywhere
/// fingerprints are used for build avoidance).
using Fingerprint = std::uint64_t;

Fingerprint fingerprintProcedure(const Procedure& proc);

/// One top-level body statement of a procedure, as the session's loop-reuse
/// matcher sees it.
struct ItemFingerprint {
  Fingerprint hash = 0;           ///< structural hash of the statement subtree
  Fingerprint suffixHash = 0;     ///< hash over the following items' hashes
  Fingerprint precedingHash = 0;  ///< previous item's hash (0 for the first)
  bool hasLoop = false;           ///< subtree contains a DO statement
  /// CALL targets appearing in the subtree or any following item — the
  /// procedures whose summaries this item's loop verdicts may read.
  std::vector<std::string> callees;
};

struct ProcFingerprintDetail {
  Fingerprint whole = 0;  ///< == fingerprintProcedure(proc)
  /// Declaration frame: name, isMain, params, decls, commons, paramConsts,
  /// plus the sorted set of DO index names of the whole body.
  Fingerprint frame = 0;
  std::vector<ItemFingerprint> items;  ///< one per top-level body statement
};

ProcFingerprintDetail fingerprintProcedureDetail(const Procedure& proc);

/// Copies every SourceLoc of `from` onto the lockstep-corresponding node of
/// `to` (statements, expressions, declarations, the procedure itself).
/// Intended for fingerprint-equal procedures whose text merely shifted: the
/// session keeps `to` (the previous epoch's AST, so Stmt-keyed caches stay
/// valid) but reports must cite `from`'s post-edit positions. Returns false
/// if the shapes diverge (possible only on a fingerprint collision); the
/// partially patched positions are still internally consistent, and callers
/// treat the unit as dirty in that case.
bool remapSourceLocs(Procedure& to, const Procedure& from);

}  // namespace panorama
