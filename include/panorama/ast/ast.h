// Abstract syntax tree for the Fortran 77 subset the analyzer consumes.
// The AST doubles as the IR: the HSG builder, the summary algorithms, and
// the validation interpreter all walk it directly.
//
// Supported subset (everything the paper's evaluation programs need):
//   PROGRAM / SUBROUTINE, INTEGER / REAL / LOGICAL declarations, DIMENSION,
//   COMMON, PARAMETER, assignments, DO / ENDDO and labeled DO, logical IF
//   and block IF / ELSE IF / ELSE / ENDIF, GOTO, CONTINUE, CALL, RETURN,
//   STOP, arithmetic / relational / logical expressions, and a handful of
//   intrinsics (MAX, MIN, MOD, ABS, SQRT, ...).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "panorama/support/diagnostics.h"

namespace panorama {

enum class BaseType : std::uint8_t { Integer, Real, Logical };

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Pow,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

enum class UnOp : std::uint8_t { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    IntLit, RealLit, LogicalLit,
    VarRef,    ///< scalar reference (or formal parameter)
    ArrayRef,  ///< name(args...) resolved by sema to an array element
    Intrinsic, ///< name(args...) resolved by sema to an intrinsic function
    Binary, Unary,
  };

  Kind kind;
  SourceLoc loc;

  std::int64_t intValue = 0;    // IntLit
  double realValue = 0.0;       // RealLit
  bool logicalValue = false;    // LogicalLit
  std::string name;             // VarRef / ArrayRef / Intrinsic
  BinOp binOp = BinOp::Add;     // Binary
  UnOp unOp = UnOp::Neg;        // Unary
  std::vector<ExprPtr> args;    // subscripts / intrinsic args / operands

  static ExprPtr intLit(std::int64_t v, SourceLoc loc = {});
  static ExprPtr realLit(double v, SourceLoc loc = {});
  static ExprPtr logicalLit(bool v, SourceLoc loc = {});
  static ExprPtr var(std::string name, SourceLoc loc = {});
  static ExprPtr arrayRef(std::string name, std::vector<ExprPtr> subs, SourceLoc loc = {});
  static ExprPtr intrinsic(std::string name, std::vector<ExprPtr> args, SourceLoc loc = {});
  static ExprPtr binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc = {});
  static ExprPtr unary(UnOp op, ExprPtr operand, SourceLoc loc = {});

  ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    Assign,    ///< lhs = rhs
    If,        ///< block or logical IF (normalized to then/else bodies)
    Do,        ///< DO var = lo, hi [, step]
    Goto,      ///< GOTO label
    Continue,  ///< CONTINUE (possibly a labeled join point)
    Call,      ///< CALL name(args)
    Return,
    Stop,
  };

  Kind kind;
  SourceLoc loc;
  int label = 0;  ///< numeric statement label, 0 if none

  ExprPtr lhs;                  // Assign
  ExprPtr rhs;                  // Assign
  ExprPtr cond;                 // If
  std::vector<StmtPtr> thenBody;
  std::vector<StmtPtr> elseBody;
  std::string doVar;            // Do
  ExprPtr lo, hi, step;         // Do (step may be null: defaults to 1)
  std::vector<StmtPtr> body;    // Do
  int gotoLabel = 0;            // Goto
  std::string callee;           // Call
  std::vector<ExprPtr> args;    // Call
};

/// One declared variable. Array bounds are expressions (typically literals
/// or PARAMETER symbols; symbolic bounds of formals are allowed).
struct VarDecl {
  std::string name;
  BaseType type = BaseType::Real;
  struct DimBound {
    ExprPtr lo;  ///< null means the implicit lower bound 1
    ExprPtr up;  ///< null means an assumed-size '*' bound
  };
  std::vector<DimBound> dims;  ///< empty for scalars
  SourceLoc loc;

  bool isArray() const { return !dims.empty(); }
};

struct CommonBlock {
  std::string name;  ///< empty for blank common
  std::vector<std::string> vars;
};

struct ParamConst {
  std::string name;
  ExprPtr value;
};

struct Procedure {
  std::string name;
  bool isMain = false;
  std::vector<std::string> params;  ///< formal parameter names, in order
  std::vector<VarDecl> decls;
  std::vector<CommonBlock> commons;
  std::vector<ParamConst> paramConsts;
  std::vector<StmtPtr> body;
  SourceLoc loc;

  const VarDecl* findDecl(std::string_view name) const;
};

struct Program {
  std::vector<Procedure> procedures;

  const Procedure* findProcedure(std::string_view name) const;
};

/// Pretty-printer (round-trippable enough for golden tests and examples).
std::string toString(const Expr& e);
std::string toString(const Stmt& s, int indent = 0);
std::string toString(const Procedure& p);
std::string toString(const Program& p);

}  // namespace panorama
