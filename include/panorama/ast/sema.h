// Semantic analysis: resolves names, classifies `ident(args)` references
// (array element vs intrinsic), lowers declared array shapes, unifies COMMON
// variables across procedures, checks the call graph is acyclic (§4's
// assumption), and exposes the lowering from AST expressions into the
// symbolic layer (SymExpr for integer values, Pred for conditions).
//
// Symbol identity: scalars and arrays are interned into program-global
// tables. A local `x` of procedure `p` becomes `p::x`; a variable in COMMON
// /blk/ becomes `blk::x` and is shared by every procedure declaring it
// (matching by name — the corpus follows this discipline).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "panorama/ast/ast.h"
#include "panorama/region/region.h"

namespace panorama {

/// Per-procedure view of the global symbol tables.
struct ProcSymbols {
  const Procedure* proc = nullptr;
  std::unordered_map<std::string, VarId> scalars;     ///< local name -> global id
  std::unordered_map<std::string, ArrayId> arrayIds;  ///< local name -> global id
  std::unordered_map<std::string, BaseType> types;    ///< scalar types
  std::map<std::string, SymExpr> consts;              ///< PARAMETER constants

  bool isScalar(std::string_view name) const { return scalars.contains(std::string(name)); }
  bool isArray(std::string_view name) const { return arrayIds.contains(std::string(name)); }
  std::optional<VarId> scalarId(std::string_view name) const;
  std::optional<ArrayId> arrayId(std::string_view name) const;
  BaseType typeOf(std::string_view name) const;
};

struct SemaResult {
  SymbolTable symbols;  ///< program-global scalar symbols
  ArrayTable arrays;    ///< program-global arrays with declared shapes
  std::map<std::string, ProcSymbols> procs;
  /// Callees before callers (reverse topological over the call graph).
  std::vector<const Procedure*> bottomUpOrder;
  const Procedure* main = nullptr;

  const ProcSymbols& of(const Procedure& p) const { return procs.at(p.name); }
};

/// Runs semantic analysis. Mutates `program` in place (reclassifying
/// intrinsic references). Returns nullopt and reports diagnostics on error.
std::optional<SemaResult> analyze(Program& program, DiagnosticEngine& diags);

/// Variant for the incremental session: interns into the supplied
/// (persistent, append-only) tables instead of fresh ones, so VarId/ArrayId
/// of names already seen in earlier submits stay stable — the handle
/// stability that lets cached summaries be reused verbatim. Re-declared
/// arrays update their shape in place (last declaration wins). The tables
/// are taken by value; on success they come back inside the SemaResult.
std::optional<SemaResult> analyze(Program& program, DiagnosticEngine& diags,
                                  SymbolTable symbols, ArrayTable arrays);

/// True for the recognized Fortran intrinsics (max, min, mod, abs, ...).
bool isIntrinsicName(std::string_view name);

/// Lowers an integer-valued expression to a SymExpr. Anything outside the
/// symbolic fragment (array references, real arithmetic, intrinsics other
/// than unnested MAX/MIN-free arithmetic, division that is not exact) lowers
/// to the poisoned expression.
SymExpr lowerInt(const Expr& e, const ProcSymbols& sym);

/// Whether `e` is integer-valued in the procedure (drives the choice between
/// integer and real-valued comparison atoms).
bool isIntegerValued(const Expr& e, const ProcSymbols& sym);

/// Lowers a condition to a guard predicate. Comparisons between integer
/// expressions become integer atoms; comparisons with real operands become
/// real-valued atoms; logical scalars become LogVar atoms; anything with an
/// array reference or other unlowerable content becomes Δ.
Pred lowerCond(const Expr& e, const ProcSymbols& sym);

}  // namespace panorama
