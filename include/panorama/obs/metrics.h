// Unified metrics registry (panorama::obs pillar 2).
//
// Named counters and histograms with stable addresses: call sites resolve a
// metric once (mutex-guarded map lookup) and then update it with plain
// atomics. The registry absorbs the pre-existing ad-hoc stats structs —
// SummaryStats, QueryCache::Stats, the simplify memo — at the reporting
// boundary (publishCorpusMetrics in the analysis layer) and renders them
// through one machine-readable JSON dump plus the shared text renderers
// below, which replace the three near-identical formatting blocks the
// report layer and panorama_driver --stats used to duplicate.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace panorama::obs {

/// A monotonically increasing (or snapshot-assigned) integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t n) { value_.store(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative integer samples (durations,
/// list lengths). Bucket b counts samples with bit_width(v) == b, so bucket
/// boundaries are powers of two; count/sum/min/max are exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The process-global name → metric map. Lookups intern the name; the
/// returned references stay valid for the process lifetime (reset() zeroes
/// values but never removes metrics).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// The counter's current value, or nullopt when it was never created.
  std::optional<std::uint64_t> counterValue(std::string_view name) const;

  /// Zeroes every registered metric (names and addresses persist).
  void reset();

  /// {"counters": {name: value, ...}, "histograms": {name: {...}, ...}} with
  /// names in sorted order — the machine-readable dump behind --metrics.
  std::string toJson() const;
  bool writeJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Approximate q-quantile (q in [0, 1]) of a histogram snapshot,
/// interpolated linearly inside the log2 bucket the rank lands in and
/// clamped to the exact observed [min, max]. Zero when the histogram is
/// empty. This is what the registry JSON dump's p50/p95/p99 fields and the
/// daemon's per-op latency rows are derived from; the error bound is the
/// width of one power-of-two bucket.
double histogramQuantile(const Histogram::Snapshot& s, double q);

/// The shared renderer behind every "<label>: H hits / M misses (R% hit
/// rate), E entries, V evictions" line (query cache, simplify memo, …).
/// `rateDecimals` preserves the historical per-call-site rate formatting.
std::string renderCacheCounters(std::string_view label, std::uint64_t hits, std::uint64_t misses,
                                std::uint64_t entries, std::uint64_t evictions, int rateDecimals);

/// The shared renderer behind the "summary cost: …" line.
std::string renderSummaryCost(std::uint64_t blockSteps, std::uint64_t loopExpansions,
                              std::uint64_t callMappings, std::uint64_t peakListLength,
                              std::uint64_t garsCreated);

}  // namespace panorama::obs
