// Cost-attribution profiles (panorama::obs pillar 4).
//
// A CostProfile is a post-processing aggregation over the span buffers of
// obs/trace.h: it folds the flat per-thread event streams back into the
// nesting structure the RAII spans had at runtime and rolls them up three
// ways —
//
//   * by taxonomy: a phase tree keyed by span category (corpus.run →
//     summary.wave → summary.proc → ... → query.fm/query.implies), each
//     node carrying count, total time, self time (total minus the time
//     attributed to child phases) and the maximum single-span duration;
//   * by program entity: per-procedure cost (summary construction + loop
//     analysis + the cold queries issued underneath) and per-loop cost;
//   * by query: the top-K most expensive cold FM / implication evaluations,
//     with the rendered expression, the guard context (ProvenanceScope
//     label) and the verdict the span recorded.
//
// Cache-effectiveness lines (query cache, simplify memo) and incremental-
// session reuse records — including *why* each dirty unit was invalidated —
// are attached by the caller (the layers that own those counters), so the
// profile is a pure function of its inputs and this header stays free of
// analysis-layer dependencies.
//
// The aggregation invariant, asserted by tests/profile_test.cpp: for every
// phase node, selfNs + Σ children.totalNs == totalNs, and (single-threaded)
// the root phase totals sum to the traced wall time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "panorama/obs/trace.h"

namespace panorama::obs {

/// One node of the phase tree. Children are aggregated by category: every
/// span whose dynamically enclosing span mapped to this node contributes to
/// the child node of its own category.
struct PhaseNode {
  std::string category;
  std::uint64_t count = 0;
  std::int64_t totalNs = 0;
  std::int64_t selfNs = 0;  ///< totalNs minus Σ children.totalNs (exact)
  std::int64_t maxNs = 0;   ///< longest single span
  std::vector<PhaseNode> children;  ///< sorted by totalNs descending
};

/// Cost attributed to one procedure: its summary.proc spans plus the
/// analysis.loop / deptest.loop spans whose names carry its prefix.
struct ProcCost {
  std::string name;
  std::uint64_t summarySpans = 0;
  std::int64_t summaryNs = 0;
  std::uint64_t loopSpans = 0;
  std::int64_t loopNs = 0;
  std::uint64_t coldQueries = 0;  ///< outermost query.* spans underneath
  std::int64_t coldQueryNs = 0;
  std::int64_t totalNs() const { return summaryNs + loopNs; }
};

/// Cost attributed to one loop (an analysis.loop or deptest.loop span).
struct LoopCost {
  std::string proc;
  std::string name;  ///< "DO var"
  std::uint64_t count = 0;
  std::int64_t totalNs = 0;
  std::uint64_t coldQueries = 0;
  std::int64_t coldQueryNs = 0;
};

/// One expensive cold query, lifted verbatim from its span.
struct QueryCost {
  std::string kind;  ///< "query.fm", "query.implies", or "query.prefilter"
  std::string name;
  std::int64_t durNs = 0;
  std::uint32_t tid = 0;
  std::string expr;     ///< rendered expression ("expr" span arg, may be "")
  std::string context;  ///< guard context ("ctx" span arg, may be "")
  std::string verdict;  ///< "verdict" span arg
};

/// One cache's effectiveness counters, attached by the cache's owner.
struct CacheLine {
  std::string label;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evictedStale = 0;
  std::uint64_t evictedLive = 0;
  double hitRate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Why one session unit was re-analyzed instead of reused.
struct InvalidationCause {
  std::string unit;
  std::string cause;  ///< "fingerprint" | "added" | "callee-epoch" |
                      ///< "options-change" | "first-submit"
  std::string detail;
};

/// Why one loop inside a dirty unit was served from cache anyway
/// ("item-match"), or why a clean unit's cached citation moved
/// ("line-remap") — the loop-granular counterpart of InvalidationCause.
struct LoopReuseCause {
  std::string unit;
  std::int64_t line = 0;  ///< post-edit line of the reused loop
  std::string cause;      ///< "item-match" | "line-remap"
  std::string detail;
};

/// One submit's reuse accounting, converted from SessionStats by the
/// session layer (sessionReuseFor) so obs stays below it.
struct SessionReuse {
  std::uint64_t epoch = 0;
  bool warm = false;  ///< some prior state was reusable
  bool fullInvalidation = false;
  std::uint64_t procedures = 0;
  std::uint64_t unchanged = 0;
  std::uint64_t modified = 0;
  std::uint64_t added = 0;
  std::uint64_t removed = 0;
  std::uint64_t dirty = 0;
  std::uint64_t summariesReused = 0;
  std::uint64_t summariesRecomputed = 0;
  std::uint64_t loopsReused = 0;
  std::uint64_t loopsRecomputed = 0;
  /// Loop-granular reuse inside the dirty cone (DESIGN.md §4.9).
  std::uint64_t loopSkips = 0;        ///< loops reused inside dirty units
  std::uint64_t partialUnits = 0;     ///< dirty units with >=1 reused loop
  std::uint64_t unitsCleanLoops = 0;  ///< units with zero recomputed loops
  std::uint64_t unitsDirtyLoops = 0;  ///< units with >=1 recomputed loop
  std::uint64_t lineRemaps = 0;       ///< cached citations moved to post-edit lines
  std::vector<InvalidationCause> causes;     ///< one per dirty unit
  std::vector<LoopReuseCause> loopCauses;    ///< one per reused/remapped loop
};

struct CostProfile {
  std::int64_t wallNs = 0;  ///< latest span end minus earliest span start
  std::uint64_t events = 0;
  std::uint32_t threads = 0;            ///< distinct trace tids
  std::vector<PhaseNode> phases;        ///< merged roots, totalNs descending
  std::vector<ProcCost> procedures;     ///< totalNs descending
  std::vector<LoopCost> loops;          ///< totalNs descending
  std::vector<QueryCost> topQueries;    ///< durNs descending, K deep
  std::vector<CacheLine> caches;        ///< attached by the caller
  std::vector<SessionReuse> sessions;   ///< attached by the caller
};

struct ProfileOptions {
  std::size_t topQueries = 10;
};

/// Folds a span snapshot (Tracer::snapshot() order or any order — events are
/// re-sorted) into a CostProfile. Caches/sessions start empty.
CostProfile buildCostProfile(const std::vector<TraceEvent>& events,
                             const ProfileOptions& options = {});

/// Human-readable multi-section rendering.
std::string renderCostProfileText(const CostProfile& profile);

/// JSON rendering (schema_version 1; documented in DESIGN.md §4.5).
std::string renderCostProfileJson(const CostProfile& profile);

}  // namespace panorama::obs
