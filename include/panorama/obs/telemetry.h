// Live service telemetry (panorama::obs pillar 4, DESIGN.md §4.10): the
// bounded structured event log behind the daemon's `tail` op, its JSONL
// post-mortem sink, and the periodic self-snapshot records.
//
// The EventLog is a fixed-capacity ring of immutable, pre-rendered JSON
// records. An append claims a sequence number with one atomic fetch-add,
// renders its record outside any critical section, and publishes the
// shared-pointer into its slot under a per-slot acquire/release latch whose
// held window is exactly one pointer move — appenders to different slots
// never touch the same latch, and a reader holds a snapshot reference to
// every record it returns, so an append that laps the ring while a `tail`
// is in flight can never free a record out from under it. (The latch is
// hand-rolled rather than std::atomic<shared_ptr> because libstdc++'s
// _Sp_atomic unlocks with a relaxed RMW, which TSan's happens-before
// engine cannot pair with the next lock — a known false positive this
// ring must stay clean of.) When the ring wraps, the oldest records are
// overwritten: the log is a flight recorder, not a queue, and consumers
// that fall behind observe an explicit `dropped` count instead of
// backpressure.
//
// Readers are cursor-based: a cursor is the next sequence number the caller
// has not seen, `tail(cursor, max)` returns records in sequence order
// starting there, and the returned `nextCursor` feeds the next call. Records
// overwritten before the reader arrived are counted as dropped (the cursor
// skips them); a record whose writer claimed a slot but has not yet
// published stops the scan, so a tail never returns events out of order and
// never returns a gap it did not report.
//
// Every record is one JSON object, rendered at append time:
//   {"seq":N,"ts_ms":T,"kind":"...", <event fields>}
// with ts_ms milliseconds since the log's construction (the daemon start).
// One record per line is exactly the JSONL format the daemon's
// `--event-log=FILE` sink writes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace panorama::obs {

/// The daemon's event taxonomy (DESIGN.md §4.10).
enum class EventKind {
  ConnOpen,     ///< a client connection was accepted
  ConnClose,    ///< a client connection ended (any reason)
  SubmitBegin,  ///< a submit op started analysis
  SubmitEnd,    ///< a submit op finished (fields: epoch, dirty-cone size, …)
  Error,        ///< a request was answered with a structured error
  SlowRequest,  ///< a request exceeded the --slow-ms threshold
  Snapshot,     ///< periodic self-sample from the telemetry thread
};

/// Stable wire name ("conn_open", "submit_end", …).
const char* eventKindName(EventKind kind);

/// Builder for an event's extra JSON fields. Produces the `,"k":v,...`
/// suffix EventLog::append splices into the record envelope.
class EventFields {
 public:
  EventFields& num(std::string_view key, std::uint64_t value);
  EventFields& num(std::string_view key, std::int64_t value);
  EventFields& real(std::string_view key, double value);  ///< rendered %.3f
  EventFields& str(std::string_view key, std::string_view value);

  std::string take() { return std::move(text_); }

 private:
  std::string text_;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  /// Appends one event and returns its sequence number. `fields` is an
  /// EventFields::take() suffix (or empty). Safe from any thread,
  /// concurrently with tail().
  std::uint64_t append(EventKind kind, std::string fields = {});

  struct Tail {
    std::vector<std::string> events;  ///< rendered records, sequence order
    std::uint64_t nextCursor = 0;     ///< pass to the next tail() call
    std::uint64_t dropped = 0;        ///< records lost between cursor and events
  };
  /// Records with sequence >= cursor, at most `maxEvents` of them.
  Tail tail(std::uint64_t cursor, std::size_t maxEvents) const;

  /// Total records ever appended — also the cursor value that reads only
  /// records appended after this call.
  std::uint64_t appended() const { return head_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }

  /// Milliseconds since construction — the clock behind every ts_ms field.
  double uptimeMs() const;

 private:
  struct Rec {
    std::uint64_t seq = 0;
    std::string json;
  };

  /// One ring slot: the record pointer, guarded by a one-word spin latch
  /// (exchange-acquire to take, store-release to drop) held only for the
  /// pointer move/copy itself.
  struct Slot {
    mutable std::atomic<bool> busy{false};
    std::shared_ptr<const Rec> rec;
  };

  std::size_t capacity_;  ///< power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::int64_t epochNs_;  ///< steady_clock at construction
};

}  // namespace panorama::obs
