// Decision provenance (panorama::obs pillar 3).
//
// Every LoopAnalysis carries a DecisionTrail: the ordered chain of evidence
// that produced its classification — which array failed candidacy, which
// UE_i ∩ MOD_<i test could not be resolved (and what the two region lists
// were), which copy-out obligation demoted a privatization, which of the
// three §3.2.2 dependence tests stayed Unknown, which scalar is exposed.
// The --explain mode of panorama_driver renders trails; corpus_test asserts
// them for the Figure 1 examples.
//
// Two evidence tiers, with different determinism guarantees:
//   * Decision evidence is recorded directly by the privatization layer and
//     is a pure function of the analysis input — identical across thread
//     counts and cache configurations (the parallel-driver identity tests
//     rely on this).
//   * Symbolic notes are reported from deep inside the query layers (an FM
//     elimination that exhausted its budget, a Pred::implies that returned
//     Unknown) through a thread-local ProvenanceScope. Cold evaluations
//     only: a memoized verdict skips the deep layer entirely, so these
//     notes are best-effort diagnostics and are rendered separately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "panorama/support/diagnostics.h"

namespace panorama::obs {

enum class EvidenceKind : std::uint8_t {
  NotSummarized,      ///< loop had no summary (condensed or unreachable)
  UnanalyzableHeader, ///< DO header not symbolically analyzable
  Candidacy,          ///< §3.2.1 index-free-writes candidacy of one array
  FlowTest,           ///< UE_i ∩ MOD_<i = ∅ for one candidate array
  CopyOutDemotion,    ///< last-value obligation demoted a privatization
  DependenceTest,     ///< §3.2.2 carried flow/output/anti test on the remainder
  ScalarExposed,      ///< scalar read before its iteration-local definition
  ScalarReduction,    ///< scalar recognized as a reduction accumulator
  Classification,     ///< the final verdict and its §3.2.2 inputs
};

const char* toString(EvidenceKind k);

/// One link in the chain: what was tested, about what, with which verdict.
struct Evidence {
  EvidenceKind kind = EvidenceKind::Classification;
  std::string subject;  ///< array/scalar/test name ("" for loop-level facts)
  Truth verdict = Truth::Unknown;
  std::string detail;  ///< human-readable explanation (may embed region text)
};

/// A deep-layer observation attributed to the enclosing query scope.
struct SymbolicNote {
  std::string scope;   ///< the ProvenanceScope label (which test was running)
  std::string source;  ///< "fm" (constraint layer) or "implies" (predicate)
  std::string detail;
};

struct DecisionTrail {
  std::vector<Evidence> evidence;
  std::vector<SymbolicNote> notes;

  void add(EvidenceKind kind, std::string subject, Truth verdict, std::string detail = "") {
    evidence.push_back({kind, std::move(subject), verdict, std::move(detail)});
  }
  bool empty() const { return evidence.empty() && notes.empty(); }

  /// The evidence entries of one kind (test helper).
  std::vector<const Evidence*> ofKind(EvidenceKind kind) const;
};

/// Installs `trail` as the calling thread's deep-report sink for the scope's
/// lifetime. Scopes nest (the previous sink is restored); each loop analysis
/// runs on exactly one pool thread, so a thread-local sink needs no locking.
class ProvenanceScope {
 public:
  ProvenanceScope(DecisionTrail& trail, std::string label);
  ~ProvenanceScope();

  ProvenanceScope(const ProvenanceScope&) = delete;
  ProvenanceScope& operator=(const ProvenanceScope&) = delete;

  /// Reports a deep-layer note into the active scope; no-op without one.
  /// `detail` is only materialized when a scope is active — callers building
  /// costly strings should check active() first.
  static void note(const char* source, std::string detail);
  static bool active();

  /// The active scope's label ("" without one) — the guard context cold
  /// query spans attach so the cost profile can say which test paid for an
  /// expensive FM/implication evaluation.
  static std::string currentLabel();

 private:
  DecisionTrail* prevTrail_;
  std::string prevLabel_;
};

}  // namespace panorama::obs
