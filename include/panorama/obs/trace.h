// Structured tracing for the analysis pipeline (panorama::obs pillar 1).
//
// A Span is an RAII scope that records one timed event — category, name,
// optional string args — into a per-thread buffer of the process-global
// Tracer. The design is driven by two requirements:
//
//   * Near-free when disabled. The enabled flag is a single atomic held by
//     the Tracer; a disabled Span's constructor is one relaxed load and a
//     branch, its destructor one branch. No allocation, no clock read, no
//     buffer touch. bench_obs_overhead asserts the end-to-end cost stays
//     within the 2% contract documented in DESIGN.md.
//   * Safe under the work-stealing pool. Each thread appends to its own
//     chunked buffer: slots inside a chunk are written once and then
//     published by a release store of the chunk's count, chunks never move
//     once allocated, and the chunk list grows under a mutex taken only on
//     chunk allocation (every kChunkSize events) and by readers. Appends on
//     the hot path are therefore lock-free, and snapshot()/writeChromeTrace()
//     may run concurrently with active spans (they observe a prefix).
//
// The export format is Chrome trace-event JSON ("X" complete events), so a
// corpus run opens directly in chrome://tracing or Perfetto.
//
// Span taxonomy (see DESIGN.md §"Observability"):
//   corpus.run / corpus.kernel              driver-level units of work
//   frontend.parse / frontend.sema / frontend.hsg
//   summary.proc / summary.wave             §4.1 summary construction
//   summary.loop_expansion                  expandByIndex of one loop
//   analysis.loop                           one LoopParallelizer::analyzeLoop
//   deptest.loop                            conventional-test filter
//   query.fm / query.implies                cold symbolic queries (cache misses)
//   query.prefilter                         abstract-domain tier attempts (§4.6)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace panorama::obs {

/// One completed span. `args` is a flat key/value list rendered into the
/// Chrome event's "args" object.
struct TraceEvent {
  const char* category = "";  ///< static-storage category string
  std::string name;
  std::vector<std::pair<std::string, std::string>> args;
  std::int64_t startNs = 0;  ///< relative to the Tracer's epoch
  std::int64_t durNs = 0;
  std::uint32_t tid = 0;  ///< display thread id (buffer registration order)
};

/// The process-global span sink. enable()/disable() gate collection; clear()
/// drops collected events and must not race with span construction (call it
/// between runs, as the driver and benches do).
class Tracer {
 public:
  static Tracer& global();

  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every buffered event and detaches live thread buffers (threads
  /// re-register lazily on their next span). Quiescent use only.
  void clear();

  /// Merged copy of every published event, ordered by (tid, start time).
  std::vector<TraceEvent> snapshot() const;
  std::size_t eventCount() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit": "ns"}.
  std::string chromeTraceJson() const;
  /// Writes chromeTraceJson() to `path`; false on I/O failure.
  bool writeChromeTrace(const std::string& path) const;

  // ----- internal, used by Span (public for the white-box tests) -----

  static constexpr std::size_t kChunkSize = 512;

  struct Chunk {
    std::atomic<std::size_t> count{0};  ///< published slots; release/acquire
    TraceEvent events[kChunkSize];
  };

  /// One thread's event stream. Owned jointly by the registering thread
  /// (thread_local shared_ptr) and the Tracer, so neither thread exit nor
  /// clear() can dangle the other side.
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    mutable std::mutex chunksMutex;  ///< guards the chunk *list*, not slots
    std::vector<std::unique_ptr<Chunk>> chunks;

    void append(TraceEvent ev);
  };

  /// The calling thread's buffer for the current generation (registering it
  /// on first use after enable()/clear()).
  ThreadBuffer& localBuffer();

  /// Monotonic nanoseconds since the epoch recorded at enable().
  std::int64_t nowNs() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{1};
  std::int64_t epochNs_ = 0;  ///< steady_clock at enable(); written quiescently

  mutable std::mutex buffersMutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Construction snapshots the clock and destruction publishes the
/// event — both only when tracing is enabled at construction time.
class Span {
 public:
  Span(const char* category, std::string_view name) {
    if (Tracer::global().enabled()) begin(category, name);
  }
  ~Span() {
    if (active_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value pair to the event (no-op when inactive, so arg
  /// values should be built behind active() when they are costly).
  void arg(std::string_view key, std::string value);
  bool active() const { return active_; }

 private:
  void begin(const char* category, std::string_view name);
  void end();

  TraceEvent event_;
  bool active_ = false;
};

}  // namespace panorama::obs
