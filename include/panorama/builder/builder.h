// Frontend-neutral program-builder API: the programmatic ingestion layer of
// the analysis pipeline. A ProgramBuilder constructs the exact same pre-sema
// AST (`Program`) the Fortran-77 parser produces — declarations, blocks,
// `bb0 >> bb1` edge chains, loop/guard regions, assignments, array
// reads/writes and calls with symbolic subscripts — so any driver (a second
// parser, a generator, an analysis-as-a-service client) can reach the full
// GAR/HSG/privatization pipeline without going through Fortran text.
//
// Contract (DESIGN.md §4.7):
//   * build() validates its input — undeclared symbols in analysis-bearing
//     positions (subscripts, loop bounds; a scalar counts as declared when
//     it is a formal, a PARAMETER, a loop variable, or is defined by an
//     assignment or call, mirroring Fortran implicit typing), malformed or
//     cyclic non-loop edges, duplicate block names, unclosed regions,
//     subscript-rank mismatches, dangling GOTO labels — and reports every
//     problem as a structured Diagnostic. It never aborts: a failed build
//     returns no Program and the full diagnostics.
//   * A builder-constructed procedure that is structurally equal to a
//     parsed one yields the same `fingerprintProcedure` hash, so the
//     incremental session treats the two frontends as one (a builder
//     resubmit of an identical parsed program recomputes nothing).
//   * Emission order is creation order, refined by `>>` edges: within one
//     region the edge chain (when present) fixes the block order; without
//     edges, blocks and sub-regions emit in the order they were created.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "panorama/ast/ast.h"
#include "panorama/support/diagnostics.h"

namespace panorama::builder {

/// An expression value for the fluent API. Wraps an owned AST expression;
/// copies clone deeply, so one Val can be reused across statements.
class Val {
 public:
  Val(int v) : e_(Expr::intLit(v)) {}                 // NOLINT(google-explicit-constructor)
  Val(std::int64_t v) : e_(Expr::intLit(v)) {}        // NOLINT(google-explicit-constructor)
  Val(double v) : e_(Expr::realLit(v)) {}             // NOLINT(google-explicit-constructor)
  Val(const Val& o) : e_(o.e_ ? o.e_->clone() : nullptr) {}
  Val(Val&&) noexcept = default;
  Val& operator=(const Val& o) {
    e_ = o.e_ ? o.e_->clone() : nullptr;
    return *this;
  }
  Val& operator=(Val&&) noexcept = default;

  /// Adopts an already-built AST expression (the escape hatch replay-style
  /// frontends use).
  static Val wrap(ExprPtr e) {
    Val v;
    v.e_ = std::move(e);
    return v;
  }

  /// Clones the wrapped expression out (null only for a moved-from Val).
  ExprPtr take() const { return e_ ? e_->clone() : nullptr; }
  const Expr* expr() const { return e_.get(); }

 private:
  Val() = default;
  ExprPtr e_;
};

/// Scalar (or PARAMETER-constant) reference.
Val sym(std::string name);
/// Integer / real / logical literals (alternatives to the Val conversions).
Val cst(std::int64_t v);
Val rcst(double v);
Val lcst(bool v);
/// Array-element read `array(subs...)`.
Val elem(std::string array, std::vector<Val> subs);
/// Intrinsic call (max, min, mod, abs, ...).
Val fn(std::string name, std::vector<Val> args);

Val operator+(Val l, Val r);
Val operator-(Val l, Val r);
Val operator*(Val l, Val r);
Val operator/(Val l, Val r);
Val operator-(Val x);
Val pow(Val l, Val r);

Val operator==(Val l, Val r);
Val operator!=(Val l, Val r);
Val operator<(Val l, Val r);
Val operator<=(Val l, Val r);
Val operator>(Val l, Val r);
Val operator>=(Val l, Val r);
Val operator&&(Val l, Val r);
Val operator||(Val l, Val r);
Val operator!(Val x);

class ProcedureBuilder;

/// Lightweight handle to one region node — a basic block, a loop region, or
/// a guard region — of a procedure under construction. Copies freely; the
/// state lives in the ProcedureBuilder.
class NodeRef {
 public:
  NodeRef() = default;

  /// Statement emission into this block (misuse — e.g. emitting into a loop
  /// node — is reported as a diagnostic at build(), never an abort).
  NodeRef& assign(std::string scalar, Val value);
  NodeRef& store(std::string array, std::vector<Val> subs, Val value);
  NodeRef& call(std::string callee, std::vector<Val> args = {});
  NodeRef& ret();
  NodeRef& stop();
  NodeRef& cont(int label = 0);  ///< CONTINUE (labeled join point when != 0)
  NodeRef& jump(int label);      ///< GOTO label

  /// Chains control flow crab-style: `bb0 >> bb1 >> loop1`. Records an edge
  /// and returns the successor so chains read left to right.
  NodeRef operator>>(NodeRef next) const;

  bool valid() const { return pb_ != nullptr && id_ >= 0; }
  std::string_view name() const;

 private:
  friend class ProcedureBuilder;
  NodeRef(ProcedureBuilder* pb, int id) : pb_(pb), id_(id) {}
  ProcedureBuilder* pb_ = nullptr;
  int id_ = -1;
};

/// Result of ProgramBuilder::build(): the validated Program, or every
/// diagnostic that prevented one.
struct BuildResult {
  std::optional<Program> program;
  DiagnosticEngine diags;

  bool ok() const { return program.has_value(); }
  std::string error() const { return diags.str(); }
};

class ProgramBuilder;

/// Fluent construction of one procedure. Obtained from ProgramBuilder;
/// every mutator returns *this for chaining.
class ProcedureBuilder {
 public:
  // ------------------------------------------------------------- symbols
  /// Appends a formal parameter (declare its type with scalar()/array();
  /// undeclared formals fall back to Fortran implicit typing).
  ProcedureBuilder& param(std::string name);
  ProcedureBuilder& scalar(std::string name, BaseType type);
  ProcedureBuilder& integer(std::string name) { return scalar(std::move(name), BaseType::Integer); }
  ProcedureBuilder& real(std::string name) { return scalar(std::move(name), BaseType::Real); }
  ProcedureBuilder& logical(std::string name) { return scalar(std::move(name), BaseType::Logical); }
  /// Declares an array with upper bounds (implicit lower bound 1 per dim).
  ProcedureBuilder& array(std::string name, std::vector<Val> upperBounds,
                          BaseType type = BaseType::Real);
  /// Adopts a fully-formed declaration — explicit lower bounds, assumed-size
  /// '*' dims — the replay escape hatch rebuild() and re-parsing frontends
  /// use. array()/scalar() cover the common shapes.
  ProcedureBuilder& declare(VarDecl decl);
  /// PARAMETER constant.
  ProcedureBuilder& constant(std::string name, Val value);
  /// COMMON /block/ membership for already-declared variables.
  ProcedureBuilder& common(std::string block, std::vector<std::string> vars);

  // ------------------------------------------------------------ structure
  /// Sets the source location attached to subsequently created statements,
  /// blocks and regions (reports cite these lines; 0 = synthesized).
  ProcedureBuilder& at(int line, int column = 0);
  /// Attaches a numeric statement label to the next emitted statement.
  ProcedureBuilder& labelNext(int label);

  /// Creates a basic block in the current region and makes it the emission
  /// target. An empty name auto-generates "bb<N>".
  NodeRef block(std::string name = {});

  /// Opens a DO-loop region (a node of the current region); statements and
  /// blocks created until the matching endLoop() form its body.
  NodeRef beginLoop(std::string var, Val lo, Val hi);
  NodeRef beginLoop(std::string var, Val lo, Val hi, Val step);
  ProcedureBuilder& endLoop();

  /// Opens a guard (IF) region. beginElse() switches emission to the else
  /// branch; endGuard() closes it.
  NodeRef beginGuard(Val cond);
  ProcedureBuilder& beginElse();
  ProcedureBuilder& endGuard();

  // ----------------------------------------------- current-block emission
  /// Emission shortcuts targeting the current block (one is created on
  /// demand) — what stream-style frontends use.
  ProcedureBuilder& assign(std::string scalar, Val value);
  ProcedureBuilder& store(std::string array, std::vector<Val> subs, Val value);
  ProcedureBuilder& call(std::string callee, std::vector<Val> args = {});
  ProcedureBuilder& ret();
  ProcedureBuilder& stop();
  ProcedureBuilder& cont(int label = 0);
  ProcedureBuilder& jump(int label);

  const std::string& name() const { return name_; }

 private:
  friend class ProgramBuilder;
  friend class NodeRef;

  struct Node {
    enum class Kind : std::uint8_t { Block, Loop, Guard };
    Kind kind = Kind::Block;
    std::string name;
    int parent = -1;      ///< enclosing region node (-1 = procedure root)
    bool inElse = false;  ///< which branch of a Guard parent
    SourceLoc loc;
    int label = 0;  ///< statement label for Loop/Guard nodes
    // Block
    std::vector<StmtPtr> stmts;
    // Loop
    std::string doVar;
    ExprPtr lo, hi, step;
    // Guard
    ExprPtr cond;
    bool elseStarted = false;
    bool closed = true;  ///< Loop/Guard: endLoop()/endGuard() seen
    // Intra-region `>>` edges.
    std::vector<int> succs;
    std::vector<int> preds;
  };

  ProcedureBuilder(ProgramBuilder* owner, std::string name, bool isMain)
      : owner_(owner), name_(std::move(name)), isMain_(isMain) {}

  void diag(std::string message) { pending_.push_back({DiagKind::Error, loc_, std::move(message)}); }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  int currentRegion() const { return regionStack_.empty() ? -1 : regionStack_.back(); }
  int newNode(Node::Kind kind, std::string name);
  /// The block statements append to, created on demand in the current region.
  int emissionBlock();
  void appendStmt(int blockId, StmtPtr stmt);
  StmtPtr makeStmt(Stmt::Kind kind);
  void addEdge(int from, int to);

  /// Validates and emits this procedure into `out`; diagnostics go to
  /// `diags`. Returns false when any error was reported.
  bool emit(Procedure& out, DiagnosticEngine& diags);
  bool emitRegion(int parent, bool inElse, std::vector<StmtPtr>& out, DiagnosticEngine& diags);
  /// Orders the member nodes of one region by the `>>` edge chain (or
  /// creation order when no edges exist); reports malformed chains.
  bool orderRegion(const std::vector<int>& members, std::vector<int>& ordered,
                   DiagnosticEngine& diags);
  void validateExpr(const Expr& e, bool analysisPosition, DiagnosticEngine& diags);
  void validateStmt(const Stmt& s, DiagnosticEngine& diags);
  void collectDefinedScalars(const Stmt& s);
  bool isDeclared(const std::string& name) const;

  ProgramBuilder* owner_ = nullptr;
  std::string name_;
  bool isMain_ = false;
  std::vector<std::string> params_;
  std::vector<VarDecl> decls_;
  std::vector<CommonBlock> commons_;
  std::vector<ParamConst> consts_;
  SourceLoc loc_;       ///< location applied to new statements/nodes
  SourceLoc procLoc_;   ///< the procedure's own location (first at() wins)
  bool procLocSet_ = false;
  int nextLabel_ = 0;   ///< labelNext() value for the next statement
  std::vector<Node> nodes_;
  std::vector<int> regionStack_;  ///< open Loop/Guard nodes
  int currentBlock_ = -1;         ///< emission target in the current region
  int autoBlockId_ = 0;
  std::vector<Diagnostic> pending_;  ///< emission-time misuse, surfaced at build()
  /// Loop variables of open + closed loops (declared-by-construction).
  std::vector<std::string> loopVars_;
  /// Scalars introduced by assignment or passed to a callee (Fortran
  /// implicit typing: a defined scalar is a known symbol). Collected at
  /// emit() time; consulted by the analysis-position strictness check.
  std::vector<std::string> definedScalars_;
  std::vector<int> stmtLabels_;  ///< labels attached to emitted statements
  std::vector<std::pair<int, SourceLoc>> gotoTargets_;  ///< labels GOTOs name
};

/// Entry point: declare procedures, then build() once to validate and
/// assemble the Program. The builder is single-shot — build() consumes the
/// accumulated state.
class ProgramBuilder {
 public:
  ProgramBuilder() = default;
  ProgramBuilder(const ProgramBuilder&) = delete;
  ProgramBuilder& operator=(const ProgramBuilder&) = delete;

  /// Starts (or resumes) a SUBROUTINE; the returned reference stays valid
  /// for the builder's lifetime.
  ProcedureBuilder& procedure(std::string name);
  /// Starts the main PROGRAM unit.
  ProcedureBuilder& mainProgram(std::string name);

  /// Validates every procedure and assembles the Program. All diagnostics
  /// are collected (the first error does not stop validation of the rest).
  BuildResult build();

 private:
  std::deque<ProcedureBuilder> procs_;  ///< deque: stable references
  bool built_ = false;
};

/// Replays an existing (pre-sema) AST through a fresh ProgramBuilder — the
/// parse → IR → rebuild round-trip used by `--via-builder`, the ingestion
/// bench and the fuzz tests. The rebuilt Program is structurally identical
/// to the input (same fingerprints), but every statement has passed the
/// builder's validation layer.
BuildResult rebuild(const Program& program);

/// Pretty-prints the frontend-neutral IR of a (pre- or post-sema) program:
/// per procedure the symbol declarations, the region tree with named basic
/// blocks, the `>>` edge chains, and each block's array reads/writes
/// (panorama_driver --dump-ir).
std::string dumpIr(const Program& program);

}  // namespace panorama::builder
