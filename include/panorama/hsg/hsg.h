// The Hierarchical Supergraph (§4): per-procedure flow graphs whose nodes
// are basic blocks, IF-condition nodes, compound loop nodes (each with an
// attached body subgraph, back edge deliberately removed), call nodes, and
// condensed nodes (irreducible backward-GOTO cycles, §5.4). Call nodes
// reference the callee's flow graph by name; a flow graph is built once per
// routine, never duplicated per call site — exactly the paper's structure.
//
// Under the §4 assumptions (no recursion; backward-GOTO cycles condensed;
// premature loop exits marked), every graph here is a DAG with a unique
// entry and exit.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "panorama/ast/sema.h"

namespace panorama {

struct HsgGraph;

struct HsgNode {
  enum class Kind : std::uint8_t {
    Entry,      ///< unique source
    Exit,       ///< unique sink
    Block,      ///< straight-line simple statements
    Cond,       ///< an IF condition: succ[0] = true branch, succ[1] = false
    Loop,       ///< a DO loop with an attached body subgraph
    Call,       ///< a CALL statement
    Condensed,  ///< an SCC of backward GOTOs, summarized conservatively
  };

  Kind kind = Kind::Block;
  int id = -1;
  std::vector<int> succs;
  std::vector<int> preds;

  std::vector<const Stmt*> stmts;      // Block: the simple statements
  const Expr* cond = nullptr;          // Cond
  const Stmt* loopStmt = nullptr;      // Loop: the DO statement
  std::unique_ptr<HsgGraph> body;      // Loop: body subgraph
  bool prematureExit = false;          // Loop: a GOTO/RETURN leaves it early
  const Stmt* callStmt = nullptr;      // Call
  std::vector<const Stmt*> condensed;  // Condensed: every statement involved

  bool isTrueSucc(int succ) const { return kind == Kind::Cond && !succs.empty() && succs[0] == succ; }
};

struct HsgGraph {
  std::vector<std::unique_ptr<HsgNode>> nodes;
  int entry = -1;
  int exit = -1;

  HsgNode& node(int id) { return *nodes[static_cast<std::size_t>(id)]; }
  const HsgNode& node(int id) const { return *nodes[static_cast<std::size_t>(id)]; }

  /// Topological order (entry first). Requires the graph to be a DAG — true
  /// after condensation.
  std::vector<int> topoOrder() const;
  /// Verifies acyclicity (post-condensation invariant).
  bool isDag() const;

  std::string str(int indent = 0) const;
};

struct ProcedureHsg {
  const Procedure* proc = nullptr;
  HsgGraph graph;
};

struct Hsg {
  std::map<std::string, ProcedureHsg> procs;

  const ProcedureHsg& of(const Procedure& p) const { return procs.at(p.name); }
};

/// Builds the HSG for a whole program. Reports structural problems (e.g. a
/// GOTO into a sibling construct) into `diags`; best-effort graphs are still
/// produced with conservative condensation.
Hsg buildHsg(const Program& program, const SemaResult& sema, DiagnosticEngine& diags);

/// Builds the flow graph of a single procedure — the unit granularity the
/// incremental session rebuilds at: only dirty procedures get new
/// CFG/condensation work; clean ones keep their graphs (the nodes hold
/// `const Stmt*` into the procedure body, which is stable as long as the
/// statements themselves are kept alive).
ProcedureHsg buildProcedureHsg(const Procedure& proc, DiagnosticEngine& diags);

/// Condenses every non-trivial strongly connected component of `g` into a
/// Condensed node (Tarjan). Exposed for testing; buildHsg applies it.
void condenseCycles(HsgGraph& g);

}  // namespace panorama
