// The parallel analysis driver: schedules per-procedure summary
// construction in reverse-topological call-graph waves on a work-stealing
// thread pool, then fans the per-loop analyses out across the same pool.
//
// Correctness model (see DESIGN.md §"Parallel driver"):
//   * Procedures in one wave only call procedures of earlier waves, so a
//     wave's summaries never race on each other's memo entries — every
//     callee lookup hits an already-published summary.
//   * Per-loop analyses (LoopParallelizer::analyzeLoop) are read-only with
//     respect to the analyzer, so they fan out freely once the summaries
//     exist.
//   * Symbolic query verdicts are memoized in the process-global QueryCache
//     under exact structural keys; numThreads == 1 bypasses the wave
//     scheduler entirely and runs the original serial driver, bit-identical
//     to the pre-parallel analyzer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "panorama/analysis/analysis.h"
#include "panorama/obs/metrics.h"
#include "panorama/support/memo_cache.h"
#include "panorama/support/thread_pool.h"

namespace panorama {

/// Reverse-topological waves over the (acyclic, per sema) call graph:
/// wave k holds the procedures whose longest callee chain has length k, so
/// everything a wave-k procedure calls lives in waves < k. Within a wave,
/// procedures keep their bottomUpOrder relative order (determinism).
std::vector<std::vector<const Procedure*>> callGraphWaves(const SemaResult& sema);

/// Parallel analogue of LoopParallelizer::analyzeProgram(): summarizes
/// procedures wave-by-wave on `pool`, then analyzes every DO loop
/// concurrently. The result vector order is identical to the serial
/// driver's. With pool.threadCount() <= 1 this *is* the serial driver.
std::vector<LoopAnalysis> analyzeProgramParallel(SummaryAnalyzer& analyzer, ThreadPool& pool);

/// Everything one analyzed program owns. The analyzer keeps references into
/// program/sema/hsg, so the four live (and die) together; `loops` is in the
/// serial driver's walk order.
struct ProgramAnalysis {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
  std::vector<LoopAnalysis> loops;
  bool ok = false;
  std::string error;  ///< sema/HSG diagnostics when !ok
};

/// Frontend-neutral batch entry point: analyzes a pre-sema `Program` from
/// any producer — the F77 parser, the C-like frontend, or a ProgramBuilder —
/// through sema → HSG → call-graph-wave summaries → per-loop fan-out on
/// `pool`. The corpus driver, the single-file driver, and the second
/// frontend all converge here; only the text-to-Program step differs.
ProgramAnalysis analyzeProgramUnit(Program program, const AnalysisOptions& options,
                                   ThreadPool& pool);

/// How corpus kernels become Programs.
enum class CorpusIngest : std::uint8_t {
  Parse,             ///< F77 parser, directly
  BuilderRoundTrip,  ///< parse → builder::rebuild() → analyze (validation replay)
};

/// One analyzed loop of one corpus kernel.
struct CorpusRoutineResult {
  std::string kernelId;   ///< CorpusLoop::id, e.g. "TRACK nlfilt/300"
  std::string procName;   ///< procedure containing the loop
  int line = 0;           ///< source line of the DO statement
  LoopClass classification = LoopClass::Serial;
  std::string report;      ///< formatLoopAnalysis rendering
  std::string provenance;  ///< formatProvenance rendering (--explain)
  std::string provenanceSummary;  ///< one-line decision digest
  std::size_t provenanceEvidenceCount = 0;
};

/// Corpus-wide run: per-loop verdicts plus the cost/cache counters the
/// report layer and the parallel-driver bench surface.
struct CorpusAnalysisResult {
  std::vector<CorpusRoutineResult> loops;
  SummaryStats summaryStats;        ///< summed over every kernel's analyzer
  QueryCache::Stats cacheStats;     ///< verdict-cache counters for the run
  QueryCache::Stats simplifyStats;  ///< Pred::simplify memo counters
  std::size_t threadsUsed = 1;
};

/// Parses and analyzes every Table 1/2 corpus kernel under `options`,
/// scheduling kernels — and the call-graph waves inside each — on one
/// shared pool sized by options.numThreads, with the global query cache
/// configured to options.cacheCapacity. Kernel and loop order in the
/// result is fixed (corpus order, serial walk order) regardless of thread
/// count. Quantified runs parallelize like any other: each analyzer
/// carries its own ψ binding (PsiDims in CmpCtx), so kernels never share
/// mutable symbolic state. `ingest` selects the direct parser path or the
/// builder round-trip replay (`--via-builder`); both must produce identical
/// loop reports — CI diffs them.
CorpusAnalysisResult analyzeCorpusParallel(const AnalysisOptions& options = {},
                                           CorpusIngest ingest = CorpusIngest::Parse);

/// Publishes every counter of a corpus run — classifications, summary cost,
/// query-cache and simplify-memo counters, provenance volume — into the
/// metrics registry under stable names ("corpus.*", "summary.*",
/// "query_cache.*", "simplify_memo.*"). The registry is the single source
/// the text renderer below and the --metrics JSON dump both read.
void publishCorpusMetrics(const CorpusAnalysisResult& result, obs::MetricsRegistry& registry);

/// One-paragraph rendering of a corpus run: loop classifications, summary
/// cost counters, and the query-cache hit/miss line. Registry-driven: the
/// counters are published through publishCorpusMetrics and rendered by the
/// shared obs renderers (output is byte-compatible with the historical
/// hand-formatted blocks; obs_test golden-tests it).
std::string formatCorpusStats(const CorpusAnalysisResult& result);

}  // namespace panorama
