// The application layer (§3.2): array privatization and DO-loop
// parallelization on top of the GAR summaries.
//
//   * A written array is a privatization *candidate* in loop L when its
//     per-iteration writes do not involve L's index (different iterations
//     overwrite the same elements).
//   * A candidate is *privatizable* when UE_i ∩ MOD_{<i} = ∅ — no
//     loop-carried flow dependence reaches it.
//   * The loop is parallel when, after privatizing every privatizable array
//     (and iteration-private scalars), no loop-carried flow, output, or
//     anti dependence remains (§3.2.2's three tests, in that order).
#pragma once

#include "panorama/obs/provenance.h"
#include "panorama/summary/summary.h"

namespace panorama {

enum class LoopClass : std::uint8_t {
  Parallel,                    ///< parallel as written
  ParallelAfterPrivatization,  ///< parallel once the listed arrays are privatized
  Serial,                      ///< a dependence (or unknown) remains
};

const char* toString(LoopClass c);

struct ArrayPrivatization {
  ArrayId array;
  std::string name;        ///< array name as seen in the procedure
  bool written = false;    ///< appears in MOD_i
  bool candidate = false;  ///< §3.2.1 candidacy (index-free writes)
  bool privatizable = false;
  bool needsCopyOut = false;  ///< live after the loop: last-value copy required
  std::string reason;         ///< why (not) privatizable, for reports
};

struct ScalarInfo {
  VarId var;
  std::string name;
  bool privatizable = false;  ///< defined before any use in every iteration
  /// Recognized reduction accumulator: every occurrence in the loop is an
  /// accumulation `s = s op e` with a consistent op and e free of s. Such a
  /// scalar parallelizes with a reduction clause instead of privatization.
  bool reduction = false;
  char reductionOp = '+';
};

struct LoopAnalysis {
  const Stmt* loop = nullptr;
  std::string procName;
  int line = 0;
  bool boundsKnown = false;
  LoopClass classification = LoopClass::Serial;
  /// §3.2.2 dependence tests on the non-privatized remainder
  /// (True = provably absent).
  Truth noCarriedFlow = Truth::Unknown;
  Truth noCarriedOutput = Truth::Unknown;
  Truth noCarriedAnti = Truth::Unknown;
  /// §3.2.2's note: anti dependences tested with DE_i instead of UE_i —
  /// valid independently of the output-dependence result.
  Truth noCarriedAntiDE = Truth::Unknown;
  std::vector<ArrayPrivatization> arrays;
  std::vector<ScalarInfo> scalars;
  std::string serialReason;
  /// The chain of evidence behind the classification (panorama::obs pillar
  /// 3). The `evidence` entries are deterministic analysis facts; `notes`
  /// are best-effort deep-layer diagnostics (see obs/provenance.h).
  obs::DecisionTrail provenance;
};

class LoopParallelizer {
 public:
  explicit LoopParallelizer(SummaryAnalyzer& analyzer) : analyzer_(analyzer) {}

  /// Full analysis of one loop (its enclosing procedure must have been
  /// summarized).
  LoopAnalysis analyzeLoop(const Stmt& doStmt, const Procedure& proc);

  /// Analyzes every loop of every procedure, outermost first.
  std::vector<LoopAnalysis> analyzeProgram();

 private:
  Truth intersectionEmpty(const GarList& a, const GarList& b, const CmpCtx& ctx) const;
  CmpCtx loopCtx(const LoopSummary& ls) const;
  void classifyScalars(const Stmt& doStmt, const Procedure& proc, LoopAnalysis& out);

  SummaryAnalyzer& analyzer_;
};

/// Renders a per-loop report (examples and benches share this).
std::string formatLoopAnalysis(const LoopAnalysis& la);

/// Renders the loop's decision trail — one indented line per evidence entry
/// plus the deep-layer symbolic notes (panorama_driver --explain).
std::string formatProvenance(const LoopAnalysis& la);

/// One-line digest of the trail: the classification plus the decisive
/// evidence (the failing test, the killing array, the exposed scalar).
/// Deterministic across thread counts and cache configurations.
std::string provenanceSummary(const LoopAnalysis& la);

}  // namespace panorama
