// Interned symbolic variables. Every scalar name that can appear in a
// subscript, loop bound, or IF condition is interned once; expressions and
// predicates refer to variables by a small integer id.
//
// The table is thread-safe: the name index is split across shards, each
// with its own reader-writer lock, and the id-to-name store takes a
// separate lock, so concurrent procedure analyses can intern fresh loop
// indices without serializing on a single mutex. Moving or copying the
// table itself is NOT thread-safe (do it before analysis starts).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace panorama {

/// Strongly-typed id of an interned symbolic variable.
struct VarId {
  std::uint32_t value = UINT32_MAX;

  constexpr bool isValid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(VarId, VarId) = default;
  friend constexpr auto operator<=>(VarId, VarId) = default;
};

/// Maps variable names to ids and back. Names are case-insensitive (Fortran);
/// they are stored lower-cased.
class SymbolTable {
 public:
  SymbolTable();
  SymbolTable(const SymbolTable& other);
  SymbolTable(SymbolTable&& other) noexcept;
  SymbolTable& operator=(const SymbolTable& other);
  SymbolTable& operator=(SymbolTable&& other) noexcept;
  ~SymbolTable();

  /// Interns `name`, returning the existing id if already present.
  VarId intern(std::string_view name);

  /// Looks up `name` without interning.
  std::optional<VarId> lookup(std::string_view name) const;

  /// Name of an interned id. The reference stays valid for the table's
  /// lifetime (ids are append-only and the backing store never relocates).
  const std::string& name(VarId id) const;
  std::size_t size() const;

  /// Creates a fresh variable distinct from every interned name. Used for
  /// renamed loop indices (e.g. the i' of MOD_{<i}) and for formal-parameter
  /// renaming at call sites.
  VarId fresh(std::string_view hint);

 private:
  static std::string normalize(std::string_view name);

  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, std::uint32_t> index;
  };
  struct Rep {
    std::array<Shard, kShards> shards;
    mutable std::shared_mutex namesMutex;
    std::deque<std::string> names;  ///< deque: stable references across growth
  };

  Shard& shardFor(const std::string& key) const;
  /// Interns `key` only if absent; second = false when it already existed.
  std::pair<VarId, bool> internIfAbsent(std::string key);

  std::unique_ptr<Rep> rep_;
};

}  // namespace panorama

template <>
struct std::hash<panorama::VarId> {
  std::size_t operator()(panorama::VarId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
