// Interned symbolic variables. Every scalar name that can appear in a
// subscript, loop bound, or IF condition is interned once; expressions and
// predicates refer to variables by a small integer id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace panorama {

/// Strongly-typed id of an interned symbolic variable.
struct VarId {
  std::uint32_t value = UINT32_MAX;

  constexpr bool isValid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(VarId, VarId) = default;
  friend constexpr auto operator<=>(VarId, VarId) = default;
};

/// Maps variable names to ids and back. Names are case-insensitive (Fortran);
/// they are stored lower-cased.
class SymbolTable {
 public:
  /// Interns `name`, returning the existing id if already present.
  VarId intern(std::string_view name);

  /// Looks up `name` without interning.
  std::optional<VarId> lookup(std::string_view name) const;

  const std::string& name(VarId id) const { return names_.at(id.value); }
  std::size_t size() const { return names_.size(); }

  /// Creates a fresh variable distinct from every interned name. Used for
  /// renamed loop indices (e.g. the i' of MOD_{<i}) and for formal-parameter
  /// renaming at call sites.
  VarId fresh(std::string_view hint);

 private:
  static std::string normalize(std::string_view name);

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

}  // namespace panorama

template <>
struct std::hash<panorama::VarId> {
  std::size_t operator()(panorama::VarId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
