// Symbolic comparison under a hypothesis context. Range and region
// operations constantly ask "is l1 <= l2 here?"; the context carries the
// enclosing guard's unit constraints so comparisons like (a : 100) vs
// (b : 100) with a <= b known resolve without case splits.
#pragma once

#include "panorama/symbolic/constraint.h"

namespace panorama {

class CmpCtx {
 public:
  CmpCtx() = default;
  explicit CmpCtx(ConstraintSet context, FmBudget budget = {})
      : context_(std::move(context)), budget_(budget) {}

  const ConstraintSet& context() const { return context_; }

  /// a <= b ?
  Truth le(const SymExpr& a, const SymExpr& b) const {
    // Constant fast path.
    SymExpr d = a - b;
    if (auto c = d.constantValue()) return *c <= 0 ? Truth::True : Truth::False;
    Truth yes = context_.impliesLE0(d, budget_);
    if (yes == Truth::True) return Truth::True;
    // Provably false when the strict opposite is entailed.
    Truth no = context_.impliesLE0(-d + 1, budget_);
    if (no == Truth::True) return Truth::False;
    return Truth::Unknown;
  }

  Truth lt(const SymExpr& a, const SymExpr& b) const { return le(a + 1, b); }
  Truth ge(const SymExpr& a, const SymExpr& b) const { return le(b, a); }
  Truth gt(const SymExpr& a, const SymExpr& b) const { return lt(b, a); }

  Truth eq(const SymExpr& a, const SymExpr& b) const {
    SymExpr d = a - b;
    if (auto c = d.constantValue()) return *c == 0 ? Truth::True : Truth::False;
    Truth t = context_.impliesEQ0(d, budget_);
    if (t == Truth::True) return Truth::True;
    if (le(a, b) == Truth::False || le(b, a) == Truth::False) return Truth::False;
    return Truth::Unknown;
  }

 private:
  ConstraintSet context_;
  FmBudget budget_;
};

}  // namespace panorama
