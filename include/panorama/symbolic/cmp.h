// Symbolic comparison under a hypothesis context. Range and region
// operations constantly ask "is l1 <= l2 here?"; the context carries the
// enclosing guard's unit constraints so comparisons like (a : 100) vs
// (b : 100) with a <= b known resolve without case splits.
#pragma once

#include "panorama/symbolic/constraint.h"

namespace panorama {

/// The ψ dimension symbols of §5.3: distinguished variables denoting "the
/// element's d-th coordinate" inside a GAR's guard, enabling non-rectangular
/// (diagonal, triangular) and element-conditional regions — e.g. the paper's
/// A(i,i) diagonal is [ψ1 = ψ2, A(1:n, 1:n)]. Invalid (and inert) unless
/// activated: the quantified-extension analyzer interns a ψ1 per kernel and
/// threads it here through every comparison context, so concurrent analyses
/// of different kernels each see their own binding (no process-global state,
/// no serialization in the parallel driver).
struct PsiDims {
  VarId dim1;
  VarId dim2;

  bool any() const { return dim1.isValid() || dim2.isValid(); }
  friend bool operator==(const PsiDims&, const PsiDims&) = default;
};

class CmpCtx {
 public:
  CmpCtx() = default;
  explicit CmpCtx(ConstraintSet context, FmBudget budget = {}, PsiDims psi = {})
      : context_(std::move(context)), budget_(budget), psi_(psi) {}

  const ConstraintSet& context() const { return context_; }
  FmBudget budget() const { return budget_; }
  const PsiDims& psi() const { return psi_; }

  /// Same budget and ψ binding, different hypothesis constraints — used when
  /// region operations extend the context with a piece's guard.
  CmpCtx withContext(ConstraintSet cs) const { return CmpCtx(std::move(cs), budget_, psi_); }

  /// a <= b ?
  Truth le(const SymExpr& a, const SymExpr& b) const {
    // Constant fast path.
    SymExpr d = a - b;
    if (auto c = d.constantValue()) return *c <= 0 ? Truth::True : Truth::False;
    Truth yes = context_.impliesLE0(d, budget_);
    if (yes == Truth::True) return Truth::True;
    // Provably false when the strict opposite is entailed.
    Truth no = context_.impliesLE0(-d + 1, budget_);
    if (no == Truth::True) return Truth::False;
    return Truth::Unknown;
  }

  Truth lt(const SymExpr& a, const SymExpr& b) const { return le(a + 1, b); }
  Truth ge(const SymExpr& a, const SymExpr& b) const { return le(b, a); }
  Truth gt(const SymExpr& a, const SymExpr& b) const { return lt(b, a); }

  Truth eq(const SymExpr& a, const SymExpr& b) const {
    SymExpr d = a - b;
    if (auto c = d.constantValue()) return *c == 0 ? Truth::True : Truth::False;
    Truth t = context_.impliesEQ0(d, budget_);
    if (t == Truth::True) return Truth::True;
    if (le(a, b) == Truth::False || le(b, a) == Truth::False) return Truth::False;
    return Truth::Unknown;
  }

 private:
  ConstraintSet context_;
  FmBudget budget_;
  PsiDims psi_;
};

}  // namespace panorama
