// A conjunction of linear constraints plus a bounded decision procedure.
//
// The predicate simplifier (§5.2) resolves most queries pairwise; when that
// is inconclusive, guards and range-validity conditions are flattened into a
// ConstraintSet and decided by Fourier-Motzkin elimination with integer
// tightening. The engine is deliberately budgeted: blowing the budget yields
// Truth::Unknown, which the region layer treats conservatively.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "panorama/support/diagnostics.h"
#include "panorama/symbolic/affine.h"

namespace panorama {

enum class ConstraintKind : std::uint8_t {
  LE0,  ///< form <= 0
  EQ0,  ///< form == 0
  NE0,  ///< form != 0
};

struct LinearConstraint {
  AffineForm form;
  ConstraintKind kind = ConstraintKind::LE0;

  friend bool operator==(const LinearConstraint&, const LinearConstraint&) = default;
};

/// Resource limits for the Fourier-Motzkin elimination.
struct FmBudget {
  std::size_t maxConstraints = 256;
  std::size_t maxVariables = 24;
};

/// Decides the feasibility (over the integers, conservatively) of a
/// conjunction of `form <= 0` inequalities and `form == 0` equalities.
/// NE constraints participate only through syntactic clash detection.
class ConstraintSet {
 public:
  void add(LinearConstraint c) { constraints_.push_back(std::move(c)); }
  /// Adds `e <= 0`; returns false (and records nothing) when `e` is not
  /// affine, in which case the caller must treat the context as weaker.
  bool addExprLE0(const SymExpr& e);
  bool addExprEQ0(const SymExpr& e);
  bool addExprNE0(const SymExpr& e);

  bool empty() const { return constraints_.empty(); }
  std::size_t size() const { return constraints_.size(); }
  const std::vector<LinearConstraint>& constraints() const { return constraints_; }

  /// Truth::True  => the conjunction has no rational/integer solution.
  /// Truth::False => a rational solution exists (so not provably empty).
  /// Truth::Unknown => budget exhausted or non-affine data encountered.
  /// Memoized in QueryCache::global() under the exact (constraints, budget)
  /// encoding; `contradictoryUncached` is the cold path (exposed for the
  /// cache-consistency tests).
  Truth contradictory(const FmBudget& budget = {}) const;
  Truth contradictoryUncached(const FmBudget& budget = {}) const;

  /// Does this set entail `e <= 0`? True only when (set ∧ e > 0) is
  /// contradictory.
  Truth impliesLE0(const SymExpr& e, const FmBudget& budget = {}) const;
  /// Entailment of e == 0 (both e <= 0 and -e <= 0 must be entailed).
  Truth impliesEQ0(const SymExpr& e, const FmBudget& budget = {}) const;

 private:
  /// The decision procedure itself; contradictoryUncached wraps it with the
  /// obs query span and provenance reporting.
  Truth contradictoryCold(const FmBudget& budget) const;

  std::vector<LinearConstraint> constraints_;
};

/// Core elimination: each AffineForm means `form <= 0`. Equalities must have
/// been pre-lowered to two inequalities by the caller.
/// Returns True (infeasible), False (rationally feasible), or Unknown.
Truth fourierMotzkinInfeasible(std::vector<AffineForm> system, const FmBudget& budget);

}  // namespace panorama
