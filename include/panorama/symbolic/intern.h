// Thread-safe hash-consing of symbolic expressions into dense 64-bit keys.
//
// The memo cache (support/memo_cache.h) keys Fourier-Motzkin and
// implication queries by the *structure* of the expressions involved. To
// keep those keys small, every distinct SymExpr is interned once into a
// process-global table and addressed by a 64-bit key thereafter: equal
// expressions (and only equal expressions) share a key, so key equality is
// exact structural equality — no hash-collision risk can ever change a
// cached verdict.
//
// The table is sharded: each shard owns a reader-writer lock, and the key
// encodes the shard in its low bits so shards allocate independently.
#pragma once

#include <array>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "panorama/symbolic/expr.h"

namespace panorama {

class ExprInterner {
 public:
  /// The process-wide interner every analysis thread shares.
  static ExprInterner& global();

  /// The canonical key of `e`. keyOf(a) == keyOf(b) iff a == b.
  std::uint64_t keyOf(const SymExpr& e);

  /// Number of distinct expressions interned so far.
  std::size_t size() const;

 private:
  struct Hasher {
    std::size_t operator()(const SymExpr& e) const { return e.hashValue(); }
  };

  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShards = 1u << kShardBits;
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<SymExpr, std::uint64_t, Hasher> map;
    std::uint64_t next = 0;
  };

  std::array<Shard, kShards> shards_;
};

}  // namespace panorama
