// The hash-consing arena behind ExprRef: every distinct expression value is
// stored once, in a sharded table, and addressed by a stable node pointer
// thereafter. This replaces the PR-1 ExprInterner (which re-hashed whole
// term lists on every query): the structural hash is now computed exactly
// once, when a value is first interned, and equality of handles is a pointer
// compare.
//
// Key layout (the one authoritative statement): a node's 64-bit id is
//
//     id = (perShardSequence << kShardBits) | shardIndex
//
// so the *shard index lives in the low bits* and shards allocate ids
// independently without coordination. The shard of a value is chosen by its
// structural hash (hash % kShards). Ids are dense per shard, never reused,
// and id equality <=> structural equality — memo caches key verdicts by id
// with no collision risk.
//
// Lifetime: the arena is a process-wide singleton and is append-only; nodes
// are never mutated or freed, so handles and `terms()` references stay valid
// for the life of the process. Analyzer runs are short-lived batch jobs
// (the driver analyzes a corpus and exits), so retiring dead nodes is not
// worth the synchronization it would cost the parallel driver.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "panorama/symbolic/expr.h"

namespace panorama {

class ExprArena {
 public:
  /// The process-wide arena every analysis thread shares.
  static ExprArena& global();

  /// Interns a *canonical* term list (sorted, merged, zero-coefficient free;
  /// poisoned values carry no terms) and returns the unique handle.
  ExprRef intern(std::vector<Term> terms, bool poisoned);

  /// Arena occupancy for `--stats`: distinct values, approximate resident
  /// bytes, and the least/most populated shard (balance check).
  struct Stats {
    std::size_t distinct = 0;
    std::size_t bytes = 0;
    std::size_t minShard = 0;
    std::size_t maxShard = 0;
  };
  Stats stats() const;

 private:
  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShards = 1u << kShardBits;

  struct Shard {
    mutable std::shared_mutex mutex;
    std::deque<detail::ExprNode> nodes;  // deque: stable node addresses
    // Buckets by full structural hash; the short chains resolve by deep
    // compare exactly once, at interning.
    std::unordered_map<std::size_t, std::vector<const detail::ExprNode*>> index;
    std::uint64_t next = 0;
    std::size_t bytes = 0;
  };

  std::array<Shard, kShards> shards_;
};

/// Node-level memo for single-variable substitution: a bounded, sharded map
/// (exprId, var, replacementId) -> result handle. Entries can never go stale
/// (nodes are immutable and ids are never reused); the table is enabled and
/// sized through QueryCache::global()'s capacity, so `--no-cache` disables
/// it together with the verdict caches.
std::optional<ExprRef> substituteMemoLookup(const ExprRef& e, VarId v, const ExprRef& r);
void substituteMemoStore(const ExprRef& e, VarId v, const ExprRef& r, const ExprRef& result);

}  // namespace panorama
