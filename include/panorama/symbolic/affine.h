// Affine (degree <= 1) view of symbolic expressions. The constraint engine
// (Fourier-Motzkin) and the Banerjee/GCD dependence tests operate on this
// flattened form rather than on the general sum-of-products.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "panorama/symbolic/expr.h"

namespace panorama {

/// constant + sum(coeffs[k].second * var coeffs[k].first); coeffs sorted by
/// variable id and free of zeros.
struct AffineForm {
  std::vector<std::pair<VarId, std::int64_t>> coeffs;
  std::int64_t constant = 0;
  /// Set when any arithmetic on this form overflowed; consumers must treat
  /// the form as unusable (the constraint engine answers Unknown).
  bool overflow = false;

  bool isConstant() const { return coeffs.empty(); }
  std::int64_t coeffOf(VarId v) const;

  /// Extraction; nullopt when `e` is poisoned or has degree > 1.
  static std::optional<AffineForm> fromExpr(const SymExpr& e);
  SymExpr toExpr() const;

  AffineForm scaled(std::int64_t k) const;
  friend AffineForm operator+(const AffineForm& a, const AffineForm& b);
  friend AffineForm operator-(const AffineForm& a, const AffineForm& b);

  /// Removes `v`'s coefficient, returning it (0 if absent).
  std::int64_t extractVar(VarId v);

  /// Divides through by gcd of variable coefficients, flooring the constant;
  /// valid for a constraint `form <= 0` over the integers (tightening).
  /// No-op when there are no variables.
  void tightenLE();

  friend bool operator==(const AffineForm&, const AffineForm&) = default;
  std::string str(const SymbolTable& symtab) const { return toExpr().str(symtab); }
};

/// True when the computation overflowed; overflow poisons the result by
/// setting this flag on the engine that produced it (see ConstraintSet).
}  // namespace panorama
