// Integer symbolic expressions normalized to an ordered sum of products,
// exactly the representation §3.1 of the paper prescribes for its "general
// expression operation library".
//
// An expression is a sum of terms; each term is an integer coefficient times
// a product of variables (a sorted multiset, so x*x*y is {x,x,y}). The term
// list is kept sorted and free of zero coefficients, so structural equality
// is semantic equality of polynomials.
//
// Arithmetic never fails loudly: any intermediate overflow *poisons* the
// expression. Poisoned expressions propagate through every operation and are
// mapped to the unknown region Ω / unknown guard Δ by the layers above —
// degrading precision, never soundness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "panorama/symbolic/symbol_table.h"

namespace panorama {

/// One monomial: coef * vars[0] * vars[1] * ... (vars sorted ascending,
/// repetition encodes powers).
struct Term {
  std::int64_t coef = 0;
  std::vector<VarId> vars;

  int degree() const { return static_cast<int>(vars.size()); }
  friend bool operator==(const Term&, const Term&) = default;
};

/// Ordering of monomial keys: by degree first, then lexicographically by
/// variable ids. The constant term (degree 0) sorts first.
bool monomialLess(const std::vector<VarId>& a, const std::vector<VarId>& b);

/// Concrete binding of variables to integers, used by the evaluation hooks of
/// the property tests and the interpreter-backed validation oracle.
using Binding = std::map<VarId, std::int64_t>;

class SymExpr {
 public:
  /// The zero expression.
  SymExpr() = default;

  static SymExpr constant(std::int64_t c);
  static SymExpr variable(VarId v);
  /// The canonical poisoned expression (unknown value).
  static SymExpr poisoned();

  bool isPoisoned() const { return poisoned_; }
  bool isZero() const { return !poisoned_ && terms_.empty(); }
  bool isConstant() const { return !poisoned_ && terms_.size() <= 1 && (terms_.empty() || terms_[0].vars.empty()); }
  /// Constant value when `isConstant()`; nullopt otherwise (incl. poisoned).
  std::optional<std::int64_t> constantValue() const;

  const std::vector<Term>& terms() const { return terms_; }
  /// Highest total degree of any term; 0 for constants and for zero.
  int degree() const;
  std::size_t termCount() const { return terms_.size(); }

  bool containsVar(VarId v) const;
  /// Appends every distinct variable (sorted, deduplicated) to `out`.
  void collectVars(std::vector<VarId>& out) const;

  /// True when the polynomial is affine (degree <= 1) and not poisoned.
  bool isAffine() const { return !poisoned_ && degree() <= 1; }
  /// Coefficient of `v` in an affine expression; 0 if absent.
  std::int64_t affineCoeff(VarId v) const;
  /// Constant part of the expression (the degree-0 term's coefficient).
  std::int64_t constantPart() const;

  SymExpr operator-() const;
  friend SymExpr operator+(const SymExpr& a, const SymExpr& b);
  friend SymExpr operator-(const SymExpr& a, const SymExpr& b);
  friend SymExpr operator*(const SymExpr& a, const SymExpr& b);
  SymExpr mulConst(std::int64_t k) const;
  SymExpr addConst(std::int64_t k) const { return *this + constant(k); }

  /// Exact division by a non-zero integer constant: succeeds only when every
  /// coefficient is divisible (the paper's library supports division by an
  /// integer constant divisor).
  std::optional<SymExpr> divExact(std::int64_t k) const;

  /// GCD of all coefficients (0 for the zero expression).
  std::int64_t coeffGcd() const;

  /// Replaces every occurrence of `v` by `replacement`. Powers expand via
  /// repeated multiplication. Poison propagates.
  SymExpr substitute(VarId v, const SymExpr& replacement) const;
  SymExpr substitute(const std::map<VarId, SymExpr>& replacements) const;

  /// Evaluates under a complete binding; nullopt when poisoned, a variable is
  /// unbound, or arithmetic overflows.
  std::optional<std::int64_t> evaluate(const Binding& binding) const;

  /// Total structural order (used to keep predicate atoms canonical).
  static int compare(const SymExpr& a, const SymExpr& b);
  friend bool operator==(const SymExpr& a, const SymExpr& b) {
    return a.poisoned_ == b.poisoned_ && a.terms_ == b.terms_;
  }

  std::string str(const SymbolTable& symtab) const;
  std::size_t hashValue() const;

 private:
  friend class ExprBuilder;
  void normalize();

  std::vector<Term> terms_;
  bool poisoned_ = false;
};

/// Convenience builders used pervasively by tests and the frontend lowering.
SymExpr operator+(const SymExpr& a, std::int64_t c);
SymExpr operator-(const SymExpr& a, std::int64_t c);

}  // namespace panorama
