// Integer symbolic expressions normalized to an ordered sum of products,
// exactly the representation §3.1 of the paper prescribes for its "general
// expression operation library".
//
// An expression is a sum of terms; each term is an integer coefficient times
// a product of variables (a sorted multiset, so x*x*y is {x,x,y}). The term
// list is kept sorted and free of zero coefficients, so structural equality
// is semantic equality of polynomials.
//
// Every distinct expression value is stored exactly once in a process-wide
// hash-consing arena (arena.h); an `ExprRef` is an 8-byte immutable handle
// to that canonical node. Because the §3.1 canonical form makes structural
// equality coincide with semantic equality, pointer equality of handles is
// sound: equal handles <=> equal term lists <=> equal polynomials. Equality
// and hashing are therefore O(1), and the structural hash is computed once,
// when the node is interned.
//
// Arithmetic never fails loudly: any intermediate overflow *poisons* the
// expression. Poisoned expressions propagate through every operation and are
// mapped to the unknown region Ω / unknown guard Δ by the layers above —
// degrading precision, never soundness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "panorama/symbolic/symbol_table.h"

namespace panorama {

/// One monomial: coef * vars[0] * vars[1] * ... (vars sorted ascending,
/// repetition encodes powers).
struct Term {
  std::int64_t coef = 0;
  std::vector<VarId> vars;

  int degree() const { return static_cast<int>(vars.size()); }
  friend bool operator==(const Term&, const Term&) = default;
};

/// Ordering of monomial keys: by degree first, then lexicographically by
/// variable ids. The constant term (degree 0) sorts first.
bool monomialLess(const std::vector<VarId>& a, const std::vector<VarId>& b);

/// Concrete binding of variables to integers, used by the evaluation hooks of
/// the property tests and the interpreter-backed validation oracle.
using Binding = std::map<VarId, std::int64_t>;

namespace detail {
/// One interned expression value. Nodes live in the arena for the lifetime
/// of the process, are never mutated after construction, and their addresses
/// are stable — an ExprRef is just a pointer to one of these.
struct ExprNode {
  std::vector<Term> terms;  // canonical: sorted, merged, no zero coefficients
  bool poisoned = false;
  std::size_t hash = 0;    // structural hash, cached at interning time
  std::uint64_t id = 0;    // dense arena key; the shard index is in the low bits
};
}  // namespace detail

class ExprRef {
 public:
  /// The zero expression.
  ExprRef();

  static ExprRef constant(std::int64_t c);
  static ExprRef variable(VarId v);
  /// The canonical poisoned expression (unknown value).
  static ExprRef poisoned();

  bool isPoisoned() const { return node_->poisoned; }
  bool isZero() const { return !node_->poisoned && node_->terms.empty(); }
  bool isConstant() const {
    return !node_->poisoned && node_->terms.size() <= 1 &&
           (node_->terms.empty() || node_->terms[0].vars.empty());
  }
  /// Constant value when `isConstant()`; nullopt otherwise (incl. poisoned).
  std::optional<std::int64_t> constantValue() const;

  const std::vector<Term>& terms() const { return node_->terms; }
  /// Highest total degree of any term; 0 for constants and for zero.
  int degree() const;
  std::size_t termCount() const { return node_->terms.size(); }

  bool containsVar(VarId v) const;
  /// Appends every distinct variable (sorted, deduplicated) to `out`.
  void collectVars(std::vector<VarId>& out) const;

  /// True when the polynomial is affine (degree <= 1) and not poisoned.
  bool isAffine() const { return !node_->poisoned && degree() <= 1; }
  /// Coefficient of `v` in an affine expression; 0 if absent.
  std::int64_t affineCoeff(VarId v) const;
  /// Constant part of the expression (the degree-0 term's coefficient).
  std::int64_t constantPart() const;

  ExprRef operator-() const;
  friend ExprRef operator+(const ExprRef& a, const ExprRef& b);
  friend ExprRef operator-(const ExprRef& a, const ExprRef& b);
  friend ExprRef operator*(const ExprRef& a, const ExprRef& b);
  ExprRef mulConst(std::int64_t k) const;
  ExprRef addConst(std::int64_t k) const { return *this + constant(k); }

  /// Exact division by a non-zero integer constant: succeeds only when every
  /// coefficient is divisible (the paper's library supports division by an
  /// integer constant divisor).
  std::optional<ExprRef> divExact(std::int64_t k) const;

  /// GCD of all coefficients (0 for the zero expression).
  std::int64_t coeffGcd() const;

  /// Replaces every occurrence of `v` by `replacement`. Powers expand via
  /// repeated multiplication. Poison propagates. Results are memoized at the
  /// node level (pure function of two interned handles, so entries never go
  /// stale); the memo is gated by QueryCache::global()'s capacity.
  ExprRef substitute(VarId v, const ExprRef& replacement) const;
  ExprRef substitute(const std::map<VarId, ExprRef>& replacements) const;

  /// Evaluates under a complete binding; nullopt when poisoned, a variable is
  /// unbound, or arithmetic overflows.
  std::optional<std::int64_t> evaluate(const Binding& binding) const;

  /// Total structural order (used to keep predicate atoms canonical).
  static int compare(const ExprRef& a, const ExprRef& b);
  /// Hash-consing makes equality a pointer compare: one node per value.
  friend bool operator==(const ExprRef& a, const ExprRef& b) { return a.node_ == b.node_; }

  std::string str(const SymbolTable& symtab) const;
  /// The structural hash, cached on the node at interning time.
  std::size_t hashValue() const { return node_->hash; }
  /// Dense 64-bit arena key; id equality <=> structural equality.
  std::uint64_t id() const { return node_->id; }

 private:
  friend class ExprArena;
  explicit ExprRef(const detail::ExprNode* node) : node_(node) {}

  /// Sorts/merges `terms` (poisoning on coefficient overflow) and interns.
  static ExprRef makeNormalized(std::vector<Term> terms);
  /// Interns an already-canonical term list.
  static ExprRef makeCanonical(std::vector<Term> terms, bool poisoned);

  const detail::ExprNode* node_;
};

/// The paper-facing name: §3.1 calls these symbolic expressions; since the
/// hash-consing refactor the value type *is* the 8-byte handle.
using SymExpr = ExprRef;

/// Convenience builders used pervasively by tests and the frontend lowering.
ExprRef operator+(const ExprRef& a, std::int64_t c);
ExprRef operator-(const ExprRef& a, std::int64_t c);

}  // namespace panorama
