// Parallel source emission — the step the paper left as "work underway for
// Silicon Graphics power challenges" (§6): re-emit the analyzed program with
// parallelization directives on every loop the analysis proved parallel,
// carrying the privatization decisions as PRIVATE / LASTPRIVATE clauses.
//
// Directives use the OpenMP spelling (`c$omp parallel do`), the modern
// descendant of the era's `c$doacross`; a comment-style prefix keeps the
// output valid input for any Fortran compiler — and for this repository's
// own frontend (directives lex as comments), which the tests exploit for
// round-trip checks.
#pragma once

#include <string>
#include <vector>

#include "panorama/analysis/analysis.h"

namespace panorama {

struct AnnotateOptions {
  /// Only annotate outermost parallel loops (no nested parallel regions).
  bool outermostOnly = true;
};

/// Re-emits `program` with a directive above every loop in `loops` whose
/// classification is not Serial. Privatizable arrays become PRIVATE(...)
/// (or LASTPRIVATE(...) when the copy-out analysis demands the final
/// values); iteration-private scalars join the PRIVATE list.
std::string emitParallelSource(const Program& program, const std::vector<LoopAnalysis>& loops,
                               const AnnotateOptions& options = {});

/// The directive for one loop ("" when the loop stays serial).
std::string directiveFor(const LoopAnalysis& loop);

}  // namespace panorama
