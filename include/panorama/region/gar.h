// Guarded array regions (GARs) and GAR lists — the paper's central data
// structure (§3). A GAR [P, R] pairs a regular array region R with a guard
// predicate P describing the condition under which R is accessed. A GarList
// is a finite union of GARs and is closed under ∪, ∩ and −.
//
// Soundness contract (see predicate.h for the guard side):
//   * Summaries are exact while every guard is exact (no Δ) and every region
//     dimension is known (no Ω).
//   * When unknowns appear, a GarList *over-approximates* the set it stands
//     for — every consumer that needs a may-set (upward exposure, dependence
//     intersection) uses it directly; consumers that need a must-set (kill)
//     only act on pieces whose guard has no Δ and whose region has no Ω.
#pragma once

#include <string>
#include <vector>

#include "panorama/region/region.h"

namespace panorama {

class Gar {
 public:
  Gar() = default;

  /// Builds [guard ∧ validity(region), region] — §3 keeps the l <= u range
  /// conditions explicitly in the guard. When ψ dimension symbols (§5.3, see
  /// PsiDims in cmp.h) appear in the guard, their region-extent bounds are
  /// conjoined too; callers inside an analysis pass the analyzer's ψ binding
  /// (usually via CmpCtx::psi()), so parallel analyses never share state.
  static Gar make(Pred guard, Region region, const PsiDims& psi = {});
  /// The fully unknown GAR Ω of one array: [Δ, all dims unknown].
  static Gar omega(ArrayId array, int rank);
  /// Rebuilds a GAR verbatim from an already-normalized guard/region pair —
  /// the session store's deserialization hook. Unlike make(), nothing is
  /// conjoined or simplified: the parts must come from a previously built
  /// GAR, or the validity contract of make() is silently lost.
  static Gar fromParts(Pred guard, Region region);

  const Pred& guard() const { return guard_; }
  const Region& region() const { return region_; }
  ArrayId array() const { return region_.array; }

  bool isEmpty() const { return guard_.isFalse(); }
  bool isOmega() const { return guard_.isUnknown() && region_.hasUnknownDim(); }
  /// Usable as a must-set piece (kill): exact guard and fully known region.
  bool isExact() const { return !guard_.isUnknown() && region_.fullyKnown(); }

  Gar substituted(VarId v, const SymExpr& r) const;
  Gar substituted(const std::map<VarId, SymExpr>& r) const;
  bool containsVar(VarId v) const;
  void collectVars(std::vector<VarId>& out) const;

  /// Conjoins `p` into the guard (used when propagating through an
  /// IF-condition node).
  Gar withGuard(const Pred& p) const;

  /// Concrete semantics for the validation oracle: the element set under
  /// `binding`, or nullopt when the GAR's truth cannot be decided (Δ guard
  /// that does not evaluate, Ω dims, unbound symbols).
  std::optional<std::set<std::vector<std::int64_t>>> enumerate(
      const Binding& binding, std::size_t maxCount = 1 << 16) const;

  std::string str(const SymbolTable& symtab, const ArrayTable& arrays) const;
  friend bool operator==(const Gar& a, const Gar& b) {
    return a.guard_ == b.guard_ && a.region_ == b.region_;
  }

 private:
  Pred guard_;     // defaults to True
  Region region_;  // empty dims means "no region" (invalid; use make())
};

/// A union of GARs, possibly over several arrays (summaries carry all arrays
/// of a segment at once).
class GarList {
 public:
  GarList() = default;
  static GarList single(Gar g);

  bool empty() const { return gars_.empty(); }
  std::size_t size() const { return gars_.size(); }
  const std::vector<Gar>& gars() const { return gars_; }
  auto begin() const { return gars_.begin(); }
  auto end() const { return gars_.end(); }

  void add(Gar g);
  /// Appends without the empty-piece filtering of add() — the session
  /// store's deserialization hook, so a restored list is element-for-element
  /// identical to the saved one.
  void addRaw(Gar g) { gars_.push_back(std::move(g)); }
  void append(const GarList& other);

  /// Restricts every member's guard (IF-condition propagation).
  GarList withGuard(const Pred& p) const;
  GarList substituted(VarId v, const SymExpr& r) const;
  GarList substituted(const std::map<VarId, SymExpr>& r) const;
  bool containsVar(VarId v) const;

  /// The arrays mentioned, deduplicated.
  std::vector<ArrayId> arrays() const;
  /// Members touching `array` only.
  GarList forArray(ArrayId array) const;

  std::string str(const SymbolTable& symtab, const ArrayTable& arrays) const;

  /// Union of the concrete element sets of `array`'s members; nullopt when
  /// any member is undecidable under `binding`.
  std::optional<std::set<std::vector<std::int64_t>>> enumerate(
      ArrayId array, const Binding& binding, std::size_t maxCount = 1 << 16) const;

 private:
  friend GarList garUnion(const GarList&, const GarList&, const CmpCtx&, const ArrayTable*);
  friend GarList garIntersect(const GarList&, const GarList&, const CmpCtx&);
  friend GarList garSubtract(const GarList&, const GarList&, const CmpCtx&);
  friend void simplifyGarList(GarList&, const CmpCtx&, const ArrayTable*);

  std::vector<Gar> gars_;
};

/// T1 ∪ T2 with simplification (same-region guard merging, adjacency
/// merging, subsumption, §5.3 Ω absorption when `arrays` is provided).
GarList garUnion(const GarList& a, const GarList& b, const CmpCtx& ctx,
                 const ArrayTable* arrays = nullptr);

/// T1 ∩ T2 = [[P1 ∧ P2, R1 ∩ R2]] lifted over lists.
GarList garIntersect(const GarList& a, const GarList& b, const CmpCtx& ctx);

/// T1 − T2 = [[P1 ∧ P2, R1 − R2]] ∪ [P1 ∧ ¬P2, R1] lifted over lists.
/// Kill-safety: pieces of `b` that are not exact never remove anything.
GarList garSubtract(const GarList& a, const GarList& b, const CmpCtx& ctx);

/// In-place cleanup: guard simplification, dead-piece removal, merging,
/// subsumption, Ω absorption (the paper's GAR simplifier, §5.2).
void simplifyGarList(GarList& list, const CmpCtx& ctx, const ArrayTable* arrays = nullptr);

/// Emptiness of a ∩ b without materializing it (privatization test helper):
/// True when the intersection is provably empty.
Truth garIntersectionEmpty(const GarList& a, const GarList& b, const CmpCtx& ctx);

/// A DO-loop header for the expansion function of §4.1.
struct LoopBounds {
  VarId index;
  SymExpr lo;
  SymExpr up;
  SymExpr step = SymExpr::constant(1);
};

/// The expansion of §4.1: rewrites a per-iteration GarList into the union
/// over all iterations i ∈ [bounds.lo : bounds.up : bounds.step]. Exact when
/// the guard's i-constraints are interval-extractable and each region
/// dimension depends on i affinely with provable contiguity; degrades to
/// Ω dims / Δ guards otherwise.
GarList expandByIndex(const GarList& list, const LoopBounds& bounds, const CmpCtx& ctx);

}  // namespace panorama
