// Range triples (l : u : s) over symbolic expressions and their guarded
// set operations (§3 and §5.1 of the paper).
//
// A range denotes { l, l+s, l+2s, ... } ∩ [l, u] for s > 0. Operations
// return *guarded range lists*: unions of [predicate, range] pairs, because
// max/min boundaries are compiled into explicit inequalities placed in the
// guards (§3.1). Where the step rules of §5.1 cannot decide, results are
// flagged unknown and the caller degrades the affected dimension to Ω.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "panorama/predicate/predicate.h"
#include "panorama/symbolic/cmp.h"

namespace panorama {

struct SymRange {
  SymExpr lo;
  SymExpr up;
  SymExpr step = SymExpr::constant(1);

  /// A degenerate one-element range (e : e : 1).
  static SymRange point(SymExpr e);
  static SymRange closed(SymExpr lo, SymExpr up) { return {std::move(lo), std::move(up)}; }
  /// The unknown dimension Ω (poisoned bounds).
  static SymRange unknown();

  bool isUnknown() const { return lo.isPoisoned() || up.isPoisoned() || step.isPoisoned(); }
  bool isPoint() const { return !isUnknown() && lo == up; }

  /// The validity condition lo <= up that §3 keeps in the guard.
  Pred validity() const;

  SymRange substituted(VarId v, const SymExpr& r) const;
  SymRange substituted(const std::map<VarId, SymExpr>& r) const;
  bool containsVar(VarId v) const;
  void collectVars(std::vector<VarId>& out) const;

  /// Concrete element enumeration; nullopt when unknown, unbound, a
  /// non-positive step, or more than `maxCount` elements.
  std::optional<std::vector<std::int64_t>> enumerate(const Binding& binding,
                                                     std::size_t maxCount = 1 << 16) const;

  friend bool operator==(const SymRange& a, const SymRange& b) {
    return a.lo == b.lo && a.up == b.up && a.step == b.step;
  }
  std::string str(const SymbolTable& symtab) const;
};

struct GuardedRange {
  Pred guard;
  SymRange range;
};

/// Union semantics; an empty list is the empty set.
using GuardedRangeList = std::vector<GuardedRange>;

/// Result of a range set operation: the guarded pieces plus an `unknown`
/// flag set when §5.1 case 5 (or undecidable alignment) applies and the
/// pieces do not capture the result.
struct RangeOpResult {
  GuardedRangeList pieces;
  bool unknown = false;
};

/// r1 ∩ r2 under hypothesis context `ctx`.
RangeOpResult rangeIntersect(const SymRange& r1, const SymRange& r2, const CmpCtx& ctx);

/// r1 − r2 under `ctx`. When exact subtraction is impossible the result is
/// {pieces = {[Δ, r1]}, unknown = true}: an over-approximation that refuses
/// to kill anything (sound for upward-exposure).
RangeOpResult rangeSubtract(const SymRange& r1, const SymRange& r2, const CmpCtx& ctx);

/// Attempts to merge r1 ∪ r2 into a single range (§5.1: only when overlap or
/// adjacency is provable). nullopt keeps the operands separate — which is
/// always a valid representation of the union.
std::optional<SymRange> rangeUnionPair(const SymRange& r1, const SymRange& r2, const CmpCtx& ctx);

/// Provable containment r1 ⊆ r2 (used by the GAR simplifier).
Truth rangeContains(const SymRange& outer, const SymRange& inner, const CmpCtx& ctx);

/// Provable emptiness of the *intersection*, i.e. r1 and r2 share no element.
Truth rangesDisjoint(const SymRange& r1, const SymRange& r2, const CmpCtx& ctx);

}  // namespace panorama
