// Regular array regions: A(r1, ..., rm) with one range triple per dimension
// (§3). Region operations decompose into per-dimension range operations and
// recombine the guarded pieces (§3.1); results are lists of guarded regions.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "panorama/region/range.h"

namespace panorama {

/// Strongly-typed id of an interned array.
struct ArrayId {
  std::uint32_t value = UINT32_MAX;
  constexpr bool isValid() const { return value != UINT32_MAX; }
  friend constexpr bool operator==(ArrayId, ArrayId) = default;
  friend constexpr auto operator<=>(ArrayId, ArrayId) = default;
};

/// Declared shape of one array: per-dimension bounds (possibly symbolic).
struct ArrayShape {
  std::string name;
  std::vector<SymRange> declaredDims;  ///< declared bounds, e.g. (1 : n : 1)

  int rank() const { return static_cast<int>(declaredDims.size()); }
};

/// Interns arrays per program; regions refer to arrays by id.
class ArrayTable {
 public:
  ArrayId intern(std::string name, std::vector<SymRange> declaredDims);
  /// Like intern, but an existing name takes the new declared shape instead
  /// of keeping the first one. Used when the incremental session re-runs
  /// sema against its persistent table: ids stay stable across submits while
  /// an edited declaration still updates its bounds.
  ArrayId internOrUpdate(std::string name, std::vector<SymRange> declaredDims);
  std::optional<ArrayId> lookup(std::string_view name) const;
  const ArrayShape& shape(ArrayId id) const { return shapes_.at(id.value); }
  const std::string& name(ArrayId id) const { return shapes_.at(id.value).name; }
  std::size_t size() const { return shapes_.size(); }

 private:
  std::vector<ArrayShape> shapes_;
};

/// A regular array region of one array. Dimensions marked unknown
/// (SymRange::unknown) correspond to the paper's per-dimension Ω marks.
struct Region {
  ArrayId array;
  std::vector<SymRange> dims;

  int rank() const { return static_cast<int>(dims.size()); }
  bool hasUnknownDim() const;
  bool fullyKnown() const { return !hasUnknownDim(); }

  /// The conjunction of per-dimension validity conditions (l <= u).
  Pred validity() const;

  Region substituted(VarId v, const SymExpr& r) const;
  Region substituted(const std::map<VarId, SymExpr>& r) const;
  bool containsVar(VarId v) const;
  void collectVars(std::vector<VarId>& out) const;

  /// Concrete element enumeration (tuples of subscripts); nullopt when any
  /// dimension cannot be enumerated.
  std::optional<std::set<std::vector<std::int64_t>>> enumerate(
      const Binding& binding, std::size_t maxCount = 1 << 16) const;

  friend bool operator==(const Region& a, const Region& b) {
    return a.array == b.array && a.dims == b.dims;
  }
  std::string str(const SymbolTable& symtab, const ArrayTable& arrays) const;
};

/// A guarded region piece: the building block of region-operation results.
struct GuardedRegion {
  Pred guard;
  Region region;
};

struct RegionOpResult {
  std::vector<GuardedRegion> pieces;
  bool unknown = false;  ///< some part of the result could not be represented
};

/// R1 ∩ R2: cartesian combination of the per-dimension intersections.
RegionOpResult regionIntersect(const Region& r1, const Region& r2, const CmpCtx& ctx);

/// R1 − R2: the paper's recursive peel — dimension 1's difference keeps full
/// tails, dimension 1's intersection recurses into the remaining dimensions.
RegionOpResult regionSubtract(const Region& r1, const Region& r2, const CmpCtx& ctx);

/// Merge into a single region when exactly one dimension differs and that
/// pair merges; nullopt otherwise.
std::optional<Region> regionUnionPair(const Region& r1, const Region& r2, const CmpCtx& ctx);

/// Provable containment / disjointness lifted over dimensions.
Truth regionContains(const Region& outer, const Region& inner, const CmpCtx& ctx);
Truth regionsDisjoint(const Region& r1, const Region& r2, const CmpCtx& ctx);

}  // namespace panorama

template <>
struct std::hash<panorama::ArrayId> {
  std::size_t operator()(panorama::ArrayId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
