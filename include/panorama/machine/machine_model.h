// A simulated shared-memory multiprocessor standing in for the Alliant FX/8
// the paper measured on (8 processors, each with vector units). Loop
// speedups are estimated from per-iteration operation counts produced by
// the interpreter: a parallelized loop distributes iterations over P
// processors (static scheduling), each processor optionally runs its
// chunk's vectorizable work at a vector-unit throughput factor, and a fixed
// per-invocation fork/join overhead is charged.
//
// This is a substitution documented in DESIGN.md: it reproduces the *shape*
// of Table 1's speedup column, not the FX/8's absolute timings.
#pragma once

#include <cstdint>
#include <vector>

namespace panorama {

struct MachineConfig {
  int processors = 8;
  /// Vector-unit throughput multiplier applied to the parallel execution of
  /// vectorizable loop bodies (the FX/8's CEs were vector processors; the
  /// sequential baseline is scalar code, which is how the paper's loops
  /// reach super-linear speedups like TRFD's 16.4 on 8 processors).
  double vectorFactor = 1.0;
  /// Fork/join + privatization setup cost, in operation units.
  double forkJoinOverhead = 200.0;
};

struct SpeedupEstimate {
  double serialOps = 0.0;
  double parallelOps = 0.0;
  double speedup = 1.0;
};

/// Static (block) scheduling of the iterations' op counts over P processors.
SpeedupEstimate estimateSpeedup(const std::vector<std::uint64_t>& iterOps,
                                const MachineConfig& config);

}  // namespace panorama
