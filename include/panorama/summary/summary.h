// The information-summary algorithms of §4.1: SUM_segment, SUM_bb,
// SUM_loop, SUM_call, realized as a memoizing analyzer over the HSG.
//
// All summaries are *entry-relative*: the symbolic variables appearing in a
// node's MOD/UE sets denote the values scalars hold when control enters
// that node. Scalar assignments are substituted on the fly during backward
// propagation (the paper's "scalar values ... substituted on the fly during
// the array information propagation"); anything unexpressible degrades to
// poisoned expressions and from there to Ω regions / Δ guards.
#pragma once

#include <atomic>
#include <map>
#include <set>
#include <shared_mutex>
#include <unordered_set>

#include "panorama/hsg/hsg.h"
#include "panorama/region/gar.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

/// Ablation switches — these are exactly the T1/T2/T3 columns of Table 1
/// plus the simplifier knobs the §5.2 discussion motivates.
struct AnalysisOptions {
  bool symbolicAnalysis = true;  ///< T1: symbolic bounds/subscripts + substitution
  bool ifConditions = true;      ///< T2: IF conditions become guards
  bool interprocedural = true;   ///< T3: CALL summaries instead of Ω
  bool quantified = false;       ///< §5.2 ∀-guard extension (MDG `RL`)
  bool computeDE = true;         ///< §3.2.2 DE sets (skippable to save time)
  bool garSimplifier = true;     ///< ablation: GAR list cleanup
  /// Two-level query tier in front of Fourier-Motzkin: the interval/
  /// congruence pre-filter plus the memoized eliminator. Verdict-preserving
  /// by construction; `--no-prefilter` turns it off for differential runs.
  bool prefilter = true;
  SimplifyOptions simplify;      ///< predicate-simplifier budgets

  // ----- execution options (the parallel analysis driver) -----
  /// Analysis workers, calling thread included. 0 = hardware_concurrency().
  /// 1 selects the serial path, bit-identical to the pre-driver analyzer.
  std::size_t numThreads = 0;
  /// Incremental sessions: reuse cached per-loop verdicts inside *modified*
  /// procedures when the loop's statement subtree, downstream suffix,
  /// declaration frame, and callee summary epochs are all unchanged.
  /// Execution-only (reports are byte-identical either way — the session
  /// excludes it from the options key); false restores procedure-granular
  /// reuse, kept as the bench_incremental comparison baseline.
  bool loopGranularReuse = true;
  /// Entry capacity of the global FM/implication memo cache; 0 disables
  /// memoization (every query is answered cold).
  std::size_t cacheCapacity = QueryCache::kDefaultCapacity;
};

/// Everything the applications need about one DO loop.
struct LoopSummary {
  const Stmt* stmt = nullptr;
  LoopBounds bounds;              ///< normalized header (index VarId, lo/up/step)
  bool boundsKnown = false;       ///< header lowered successfully
  bool prematureExit = false;
  GarList modIter;                ///< MOD_i  (in terms of the index variable)
  GarList ueIter;                 ///< UE_i
  GarList modBefore;              ///< MOD_{<i}
  GarList modAfter;               ///< MOD_{>i}
  GarList deIter;                 ///< DE_i: uses not followed by an in-iteration write
  GarList mod;                    ///< expanded whole-loop MOD
  GarList ue;                     ///< expanded whole-loop UE
  GarList de;                     ///< expanded whole-loop DE (uses exposed at loop exit)
  GarList ueAfter;                ///< UE at the loop's exit edge (live-out probe)
  std::vector<VarId> bodyAssignedScalars;  ///< loop-variant scalars (incl. index)
};

/// Whole-procedure side effect. `mod`/`ue` cover formal and COMMON arrays
/// only (what a caller can observe); `modAll`/`ueAll` keep local arrays too
/// (what the main program / reports inspect).
struct ProcSummary {
  GarList mod;
  GarList ue;
  GarList de;  ///< downward-exposed uses (formal/COMMON arrays)
  GarList modAll;
  GarList ueAll;
  std::vector<VarId> modifiedScalars;  ///< globals + formals the proc may write
};

/// Cost counters for the Figure 4 / ablation benches.
struct SummaryStats {
  std::size_t blockSteps = 0;
  std::size_t loopExpansions = 0;
  std::size_t callMappings = 0;
  std::size_t peakListLength = 0;
  std::size_t garsCreated = 0;
};

class SummaryAnalyzer {
 public:
  SummaryAnalyzer(const Program& program, SemaResult& sema, const Hsg& hsg,
                  AnalysisOptions options = {});

  /// MOD/UE of a whole procedure (memoized; callees computed on demand).
  const ProcSummary& procSummary(const Procedure& proc);

  /// Per-loop summaries become available once the enclosing procedure has
  /// been summarized. nullptr if unknown.
  const LoopSummary* loopSummary(const Stmt* doStmt) const;

  /// Runs the analysis over every procedure (main last).
  void analyzeAll();

  // ----- incremental-session support (see session/session.h) -----

  /// Everything the session carries across submits for a procedure whose
  /// unit is clean: its summary, its loop summaries, and the escaping-scalar
  /// set. All content is handle-based (GARs, VarIds) or points into the
  /// procedure's heap-allocated statements, both of which survive the
  /// procedure object being moved into the next epoch's Program.
  struct ProcSnapshot {
    ProcSummary summary;
    std::vector<std::pair<const Stmt*, LoopSummary>> loops;
    std::vector<VarId> modifiedScalars;
    bool hasSummary = false;
    bool hasScalars = false;
  };

  /// Extracts the memoized state of `proc` (which must be the procedure
  /// object this analyzer ran over). Loop entries cover every DO statement
  /// of the procedure body that was summarized.
  ProcSnapshot snapshotProcedure(const Procedure& proc) const;

  /// Seeds a fresh analyzer with a snapshot under the current epoch's
  /// procedure object; subsequent procSummary/loopSummary calls hit the memo
  /// instead of recomputing.
  void seedProcedure(const Procedure& proc, ProcSnapshot snapshot);

  /// Loop-granular seeding (the session's reuse path for *modified*
  /// procedures whose edit left some loop-bearing statements structurally
  /// intact): installs previous-epoch loop summaries under the current
  /// epoch's DO statements. sumLoop returns a seeded entry's whole-loop
  /// sets without re-expanding the body; the enclosing segment walk still
  /// overwrites ueAfter with this epoch's downstream exposure, exactly as
  /// for a computed summary. Every nested DO of a reused statement subtree
  /// must be seeded alongside it, or later snapshots would be incomplete.
  void seedLoopSummaries(std::vector<std::pair<const Stmt*, LoopSummary>> loops);

  /// Caller-name → callee-names edges observed at SUM_call while this
  /// analyzer summarized procedures — the summary dependency graph the
  /// session keys invalidation on. Only procedures actually (re)summarized
  /// by this analyzer have entries; seeded procedures record nothing.
  std::map<std::string, std::set<std::string>> callDependencies() const;

  const AnalysisOptions& options() const { return options_; }
  /// This analyzer's ψ binding (§5.3); invalid unless options().quantified.
  /// Consumers building their own CmpCtx thread it through so ψ-guarded
  /// GARs keep their element-coordinate bounds.
  const PsiDims& psi() const { return psi_; }
  /// Snapshot of the cost counters (safe to call while analysis runs).
  SummaryStats stats() const;
  SemaResult& sema() { return sema_; }
  const SemaResult& sema() const { return sema_; }

  // ----- internal building blocks, exposed for white-box tests -----

  /// Folds one basic block backward through (mod, ue) — §4.1's SUM_bb plus
  /// the on-the-fly substitution of the step-2 note.
  void foldBlockBackward(const HsgNode& block, const ProcSymbols& sym, GarList& mod,
                         GarList& ue, GarList* de = nullptr);

  /// Lowers an array reference to a (point-per-dimension) region.
  Region lowerRef(const Expr& ref, const ProcSymbols& sym);

 private:
  struct NodeSets {
    GarList mod;
    GarList ue;
    GarList de;  ///< §3.2.2: downward-exposed uses
  };

  void sumSegment(const HsgGraph& g, const ProcSymbols& sym, GarList& mod, GarList& ue,
                  GarList* de = nullptr);
  NodeSets sumLoop(const HsgNode& loop, const ProcSymbols& sym);
  NodeSets sumCall(const HsgNode& call, const ProcSymbols& sym);
  NodeSets sumCondensed(const HsgNode& node, const ProcSymbols& sym);

  /// Scalars (global VarIds) possibly written by a statement subtree /
  /// procedure, used to invalidate successor sets across compound nodes.
  const std::vector<VarId>& scalarsModifiedBy(const Procedure& proc);
  void collectAssignedScalars(const std::vector<const Stmt*>& stmts, const ProcSymbols& sym,
                              std::vector<VarId>& out, bool throughCalls);

  /// Adds every array read inside `e` to `ue` (as guard-True point GARs).
  void addUses(const Expr& e, const ProcSymbols& sym, GarList& ue);

  SymExpr lowerValue(const Expr& e, const ProcSymbols& sym) const;
  Pred lowerGuard(const Expr& e, const ProcSymbols& sym);
  Pred lowerGuardBase(const Expr& e, const ProcSymbols& sym) const;

  // ----- §5.2/§5.3 quantified-guard extension (options_.quantified) -----

  /// The guarded-counter idiom: `kc = 0` immediately followed by
  /// `DO k = lo, up: IF (q(array(f(k)))) kc = kc + c` (c > 0), with the
  /// tested array stable at the tested element after its test. Then
  /// kc == 0 at loop exit ⟺ ∀k∈[lo,up]: ¬q.
  struct CounterIdiom {
    VarId counter;
    VarId index;
    SymExpr lo, up;
    Atom pred;  ///< the positive ArrayPred guarding the increment
  };

  /// Quantified-aware condition lowering: single-array comparisons become
  /// uninterpreted ArrayPred atoms instead of Δ.
  Pred lowerGuardQuantified(const Expr& e, const ProcSymbols& sym);
  /// Idiom lookup for a DO statement (cached per procedure); nullptr if the
  /// loop does not match.
  const CounterIdiom* counterIdiomFor(const Stmt* loop, const ProcSymbols& sym);
  /// Rewrites (counter == 0) guard atoms into the Forall fact; any other
  /// guard content naming the counter degrades to Δ.
  void applyCounterRewrite(GarList& list, const CounterIdiom& idiom) const;
  /// Invalidates quantified atoms whose array is in `written` (their values
  /// are not stable across the write): affected clauses drop to Δ.
  void taintQuantified(GarList& list, const std::vector<ArrayId>& written) const;
  /// Invalidates every quantified atom (used at call-boundary mapping).
  void taintAllQuantified(GarList& list) const;
  /// Rewrites [q(f(i)), A(f(i))] into [q(ψ1), A(f(i))] ahead of expansion,
  /// turning the per-iteration element condition into a §5.3 dimension
  /// predicate that expands exactly.
  void psiRewrite(GarList& list, VarId index) const;
  /// DO-index variables of the procedure (the fragment pre-symbolic-analysis
  /// compilers could reason about; used by the T1-off ablation).
  const std::set<VarId>& indexVarsOf(const ProcSymbols& sym) const;

  /// §5.2 induction-variable conversion: scalars incremented exactly once
  /// per iteration by a loop-invariant amount map to v + c*(i - lo).
  std::map<VarId, SymExpr> recognizeInductionVars(const Stmt& loop, const ProcSymbols& sym,
                                                  VarId index, const SymExpr& lo);

  void poisonScalars(GarList& list, const std::vector<VarId>& vars) const;
  void note(const GarList& list);

  const Program& program_;
  SemaResult& sema_;
  const Hsg& hsg_;
  AnalysisOptions options_;
  PsiDims psi_;  // this analyzer's §5.3 ψ binding (invalid unless quantified)
  CmpCtx ctx_;   // empty hypothesis context carrying psi_

  // Thread-safety invariants (see DESIGN.md §"Parallel driver"): the
  // memo maps below are guarded by reader-writer locks; entries are
  // node-stable (std::map), so references handed out stay valid across
  // concurrent insertions of *other* keys. A procedure's loop summaries
  // are only ever written by the thread summarizing that procedure.
  // Procedure-level memos key on the Procedure's address (procedures are
  // unique objects for an analyzer's lifetime), avoiding per-lookup string
  // hashing/copies on the hot summary path.
  std::map<const Procedure*, ProcSummary> procSummaries_;
  std::map<const Stmt*, LoopSummary> loopSummaries_;
  std::map<const Procedure*, std::vector<VarId>> modifiedScalarCache_;
  mutable std::map<const Procedure*, std::set<VarId>> indexVarCache_;
  std::map<const Procedure*, std::map<const Stmt*, CounterIdiom>> idiomCache_;
  /// SUM_call edges by procedure name (names outlive the epoch's pointers).
  std::map<std::string, std::set<std::string>> callDeps_;
  mutable std::shared_mutex procMutex_;
  mutable std::shared_mutex loopMutex_;
  mutable std::shared_mutex scalarCacheMutex_;
  mutable std::shared_mutex indexVarMutex_;
  mutable std::shared_mutex idiomMutex_;
  mutable std::shared_mutex depsMutex_;

  /// Cost counters, atomically updated so concurrent procedure analyses
  /// can share them; stats() snapshots into the plain SummaryStats.
  struct AtomicStats {
    std::atomic<std::size_t> blockSteps{0};
    std::atomic<std::size_t> loopExpansions{0};
    std::atomic<std::size_t> callMappings{0};
    std::atomic<std::size_t> peakListLength{0};
    std::atomic<std::size_t> garsCreated{0};
  };
  AtomicStats stats_;
};

}  // namespace panorama
