// The evaluation corpus: mini-Fortran kernels reproducing every loop the
// paper evaluates (Table 1 / Table 2 — TRACK, MDG, TRFD, OCEAN, ARC2D) plus
// the three motivating examples of Figure 1.
//
// Substitution note (see DESIGN.md): the original Perfect Club sources are
// not redistributable here; each kernel reproduces the array-access
// structure the analysis actually sees — work arrays, IF conditions, CALL
// structure and symbolic bounds — and each embeds a driver (`program`)
// sized so the interpreter can execute it for the machine-model speedup
// estimates.
#pragma once

#include <string>
#include <vector>

#include "panorama/ast/ast.h"

namespace panorama {

struct CorpusLoop {
  std::string id;        ///< e.g. "TRACK nlfilt/300"
  std::string program;   ///< benchmark name (TRACK, MDG, ...)
  std::string routine;   ///< procedure containing the evaluated loop
  int outerLoopIndex;    ///< which outermost DO of the routine (0-based)
  /// Table 2: arrays expected privatizable (status "yes").
  std::vector<std::string> privatizable;
  /// Table 2: arrays expected NOT privatizable by the base analysis.
  std::vector<std::string> notPrivatizable;
  // Table 1: which techniques the paper lists as required.
  bool needsT1;  ///< symbolic analysis
  bool needsT2;  ///< IF-condition analysis
  bool needsT3;  ///< interprocedural analysis
  double paperSpeedup;     ///< Table 1 speedup on the Alliant FX/8
  double paperSeqPercent;  ///< Table 1 "% of Seq"
  /// Per-loop parallel-efficiency calibration for the machine model:
  /// > 1 models vector-unit gains over the scalar serial baseline (TRFD's
  /// super-linear speedups), < 1 models memory-bandwidth and
  /// synchronization losses (ARC2D's sub-linear ones).
  double vectorFactor;
  const char* source;      ///< full runnable mini-Fortran program
};

/// The twelve Table 1 / Table 2 loops.
const std::vector<CorpusLoop>& perfectCorpus();

/// The Figure 1 examples (standalone programs; `a` is the array of
/// interest in each).
const char* fig1aSource();
const char* fig1bSource();
const char* fig1cSource();

/// Convenience: finds the `index`-th outermost DO statement of `routine` in
/// an already-parsed program; nullptr if absent.
const Stmt* findOuterLoop(const Program& program, std::string_view routine, int index);

}  // namespace panorama
