// Tokenizer for the Fortran 77 subset. Free-form-friendly: statements end at
// newline, comments start with '!' anywhere or 'C'/'c'/'*' in column 1, a
// trailing '&' continues a statement onto the next line. Keywords and names
// are case-insensitive and lower-cased during lexing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "panorama/support/diagnostics.h"

namespace panorama {

enum class TokKind : std::uint8_t {
  Eof,
  Newline,     ///< statement separator
  Ident,       ///< identifiers and keywords (keyword detection is contextual)
  IntLit,
  RealLit,
  Plus, Minus, Star, Slash, Power,   // + - * / **
  LParen, RParen, Comma, Colon, Assign,  // ( ) , : =
  Lt, Le, Gt, Ge, EqEq, Ne,          // relationals (both .LT. and < styles)
  And, Or, Not,                      // .AND. .OR. .NOT.  (&& || ! in C-like)
  TrueLit, FalseLit,                 // .TRUE. .FALSE.  (true/false in C-like)
  LBrace, RBrace,                    // { }  (C-like dialect only)
  LBracket, RBracket,                // [ ]  (C-like dialect only)
  Semicolon,                         // ;    (C-like dialect only)
};

/// The two surface syntaxes sharing this tokenizer. `Fortran` is the
/// newline-terminated F77 subset; `CLike` is free-form (newlines are
/// whitespace, statements end at ';'), comments are `//`, logical operators
/// are `&& || !`, and braces/brackets are real tokens.
enum class LexDialect : std::uint8_t { Fortran, CLike };

struct Token {
  TokKind kind = TokKind::Eof;
  SourceLoc loc;
  std::string text;        ///< lower-cased identifier text
  std::int64_t intValue = 0;
  double realValue = 0.0;

  bool is(TokKind k) const { return kind == k; }
  /// Keyword test against a lower-case word.
  bool isWord(std::string_view w) const { return kind == TokKind::Ident && text == w; }
};

/// Tokenizes `source`. Lexical errors are reported into `diags`; the token
/// stream is still returned (error tokens are skipped) so the parser can
/// recover enough to report further problems.
std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags,
                       LexDialect dialect = LexDialect::Fortran);

const char* tokKindName(TokKind k);

}  // namespace panorama
