// Recursive-descent parser for the Fortran 77 subset; see ast.h for the
// supported constructs. All `ident(args)` references parse as ArrayRef and
// are reclassified to intrinsics by sema.
#pragma once

#include <optional>
#include <string_view>

#include "panorama/ast/ast.h"
#include "panorama/frontend/lexer.h"

namespace panorama {

/// Parses a whole source file (one or more program units). Returns nullopt
/// when any syntax error was reported.
std::optional<Program> parseProgram(std::string_view source, DiagnosticEngine& diags);

/// Parses a single expression (testing hook).
ExprPtr parseExpression(std::string_view source, DiagnosticEngine& diags);

}  // namespace panorama
