// The second frontend: a small C-like DSL that parses into the
// frontend-neutral ProgramBuilder API (it never constructs AST nodes
// directly — everything goes through panorama::builder). Existence proof
// that the analysis pipeline is decoupled from the Fortran-77 parser.
//
// Surface syntax (free-form, `//` comments, ';' statement terminators):
//
//   main shallow() {                      // PROGRAM unit
//     const n = 1000;                     // PARAMETER constant
//     int i, j;                           // INTEGER scalars
//     real a[1000], b[1000, 64];          // REAL arrays (upper bounds)
//     bool flag;                          // LOGICAL scalar
//     shared(blk) a, j;                   // COMMON /blk/ a, j
//     for (i = 1 to n step 2) {           // DO i = 1, n, 2
//       if (a[i] > 0.0) { a[i] = b[i, 1]; } else { j = j + 1; }
//       interp(i, j);                     // CALL interp(i, j)
//     }
//     return;
//   }
//   proc interp(i, j) { ... }             // SUBROUTINE
//
// Expressions use C precedence/operators (`&& || ! == != < <= > >=`),
// `a[i, j]` for array elements, `name(args)` for intrinsics (max, min, mod,
// abs, ...). There is no GOTO — structured control flow only.
#pragma once

#include <optional>
#include <string_view>

#include "panorama/ast/ast.h"

namespace panorama {

/// Parses C-like DSL source into the shared pre-sema Program (via the
/// builder's validation layer). Returns nullopt when any syntax or builder
/// diagnostic was reported.
std::optional<Program> parseCLike(std::string_view source, DiagnosticEngine& diags);

}  // namespace panorama
