// Incremental Fourier-Motzkin (tier 2 of 2): memoized elimination keyed on
// hash-consed canonical constraint-system handles.
//
// Every system the eliminator visits — the query itself and each
// intermediate system one variable-elimination step produces — is
// canonicalized (tightened, sorted, deduplicated, variables densely renamed
// in an order-preserving way) and interned; the cache maps each handle to
// the verdict full elimination from that point yields. Near-identical query
// families (the `system + d <= -1` / `system + d >= 1` disequality probes,
// per-kernel copies of the same guard shapes) converge on shared canonical
// systems after a step or two, so one family member pays for the whole
// family's elimination suffix.
//
// Exactness: the order-preserving renaming is a bit-for-bit simulation of
// the eliminator (greedy choice, combination order, tightening, overflow
// and budget checks all depend only on relative variable order), so a
// memoized verdict is always the verdict `fourierMotzkinInfeasible` would
// produce on the same input. Entries are tagged with the global QueryCache
// epoch: a session options change bumps the epoch and retires every cached
// elimination in O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "panorama/symbolic/constraint.h"

namespace panorama {

/// Process-global switch for the two-level query tier (absdom pre-filter +
/// memoized elimination). Drivers configure it from
/// AnalysisOptions::prefilter; `--no-prefilter` turns it off.
bool queryTierEnabled();
void setQueryTierEnabled(bool on);

/// Counters of the elimination cache (entries counts live canonical-system
/// handles; evictions counts inserts dropped at capacity).
struct FmCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;
};
FmCacheStats fmEliminationStats();

/// Drops every interned system and zeroes the counters (fresh corpus run).
void clearFmEliminationCache();

/// Memoizing front of `fourierMotzkinInfeasible`; verdict-identical to it
/// on every input (see the exactness note above).
Truth fourierMotzkinInfeasibleMemo(std::vector<AffineForm> system, const FmBudget& budget);

/// The eliminator's building blocks, shared between the classic entry point
/// and the memoized one so the two can never diverge.
namespace fmdetail {

/// Entry screen: tighten, answer on overflow/violated constants, drop
/// constant rows, then sort + dedup. nullopt means "run the elimination".
std::optional<Truth> screen(std::vector<AffineForm>& system);

/// Sort by (coeffs, constant) and remove exact duplicates.
void canonOrder(std::vector<AffineForm>& system);

std::size_t countVars(const std::vector<AffineForm>& system);

struct StepResult {
  std::optional<Truth> verdict;   ///< set when the step decided the system
  std::vector<AffineForm> next;   ///< otherwise: the reduced system, canonical
};

/// One greedy variable elimination with the classic budget/overflow checks.
StepResult eliminateOne(std::vector<AffineForm> system, const FmBudget& budget);

/// Order-preserving dense renaming of the variables to 0..n-1 (the memo's
/// canonical name space). Preserves the canonical sort order.
void anonymizeVars(std::vector<AffineForm>& system);

}  // namespace fmdetail

}  // namespace panorama
