// Abstract-domain pre-filter for Fourier-Motzkin queries (tier 1 of 2).
//
// A constant-time interval/congruence evaluator over the guard context that
// tries to discharge an emptiness query before the elimination engine runs.
// The tier never weakens verdicts: Truth::True ("no integer solution") is
// only ever produced by paths that mirror the classic engine bit-for-bit,
// and Truth::False ("not provably empty") is only produced from a concrete
// integer witness that has been substituted into every constraint and
// verified. Everything else declines, and the caller falls through to the
// precise engine — FM stays the final authority, so enabling the tier keeps
// loop classifications and reports byte-identical to FM-only mode.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "panorama/symbolic/constraint.h"

namespace panorama::absdom {

/// One variable's value range, with independent ±∞ ends. Finite ends
/// saturate at the int64 limits; a saturated end is still usable as a
/// witness candidate because every candidate is re-verified by exact
/// substitution before it can influence a verdict.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool loInf = true;  ///< no finite lower end
  bool hiInf = true;  ///< no finite upper end

  static Interval top() { return Interval{}; }
  static Interval point(std::int64_t v) { return Interval{v, v, false, false}; }

  /// Only meaningful with both ends finite; unbounded intervals are never
  /// empty.
  bool empty() const { return !loInf && !hiInf && lo > hi; }
  bool contains(std::int64_t v) const { return (loInf || lo <= v) && (hiInf || v <= hi); }

  /// Intersection with v <= bound / v >= bound; returns true when the
  /// interval changed (propagation fixpoint detection).
  bool clampHi(std::int64_t bound);
  bool clampLo(std::int64_t bound);
};

/// Per-attempt telemetry; the caller folds these into the
/// `query.prefilter.*` metrics.
struct PrefilterStats {
  std::uint64_t attempts = 0;    ///< tryDischarge invocations
  std::uint64_t mirrored = 0;    ///< discharged via an exact classic-engine mirror
  std::uint64_t witnessed = 0;   ///< discharged via a verified integer witness
  std::uint64_t fallbacks = 0;   ///< declined; classic FM ran
};

/// Interval fixpoint of the system (exposed for tests): one interval per
/// distinct variable, refined from the LE0/EQ0 constraints until stable or
/// a bounded number of rounds elapse. NE0 constraints do not refine.
std::vector<std::pair<VarId, Interval>> intervalFixpoint(
    const std::vector<LinearConstraint>& constraints);

/// Attempts to discharge `constraints` without running elimination.
/// Returns:
///  - Truth::Unknown  — some form carries the overflow poison bit (mirrors
///                      the classic engine's first screen exactly);
///  - Truth::True     — the system is all-constant and some constraint is
///                      violated (again an exact mirror of the classic
///                      screen; never produced for systems with variables);
///  - Truth::False    — a concrete integer witness was found and verified
///                      against every constraint, including disequalities;
///  - std::nullopt    — declined; the caller must run the precise engine.
std::optional<Truth> tryDischarge(const std::vector<LinearConstraint>& constraints,
                                  const FmBudget& budget);

}  // namespace panorama::absdom
