// Canonical 64-bit keys for atoms and predicates, used by the memo caches.
//
// Since the hash-consed arena refactor a predicate's key is simply its arena
// id (PredRef::id(): structural equality <=> id equality, O(1)); an atom's
// key is allocated from the exact tuple (kind, op, interned sub-expression
// ids, flags). Key equality is structural equality, so memo-cache entries
// keyed this way can never confuse two different queries.
#pragma once

#include <cstdint>
#include <vector>

#include "panorama/predicate/predicate.h"

namespace panorama {

/// Canonical key of an atom; atomKey(a) == atomKey(b) iff a == b.
std::uint64_t atomKey(const Atom& a);

/// Canonical key of a predicate (clauses + the Δ flag): the arena id.
std::uint64_t predKey(const PredRef& p);

}  // namespace panorama
