// Thread-safe hash-consing of atoms and predicates into 64-bit keys,
// layered on the expression interner: an atom's key is allocated from the
// exact tuple (kind, op, interned sub-expression keys, flags), a
// predicate's key from its clause structure over atom keys. Key equality is
// structural equality, so memo-cache entries keyed this way can never
// confuse two different queries.
#pragma once

#include <cstdint>
#include <vector>

#include "panorama/predicate/predicate.h"

namespace panorama {

/// Canonical key of an atom; atomKey(a) == atomKey(b) iff a == b.
std::uint64_t atomKey(const Atom& a);

/// Canonical key of a predicate (clauses + the Δ flag).
std::uint64_t predKey(const Pred& p);

}  // namespace panorama
