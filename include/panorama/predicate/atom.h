// Atomic predicates of the guard language (§5.2 of the paper):
//
//   * relational expressions `(e op 0)` with op ∈ {<=, =, ≠} over integer
//     symbolic expressions (the paper writes `<`; over the integers e < 0 and
//     e + 1 <= 0 coincide, and <= composes better with Fourier-Motzkin), and
//   * logical-variable tests `(lvar = True/False)`.
//
// The negation of an atom is again a single atom, which keeps CNF negation a
// pure distribution problem.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "panorama/support/diagnostics.h"
#include "panorama/symbolic/constraint.h"
#include "panorama/symbolic/expr.h"

namespace panorama {

enum class RelOp : std::uint8_t {
  LE,  ///< expr <= 0 (integer-valued: subject to tightening and FM)
  EQ,  ///< expr == 0
  NE,  ///< expr != 0
  // Real-valued comparisons: kept uninterpreted (no integer tightening, no
  // FM participation) but still substitutable and logically consistent —
  // the paper "handles integer conditions more thoroughly than floating
  // point ones" (§5.2), and these carry the floating-point ones soundly.
  RLT,  ///< expr < 0 over an ordered field
  RLE,  ///< expr <= 0
  REQ,  ///< expr == 0
  RNE,  ///< expr != 0
};

/// Opaque id of an array type (mirrors region.h's ArrayId without the
/// include cycle; both are the same 32-bit intern index).
struct AtomArrayRef {
  std::uint32_t value = UINT32_MAX;
  friend constexpr bool operator==(AtomArrayRef, AtomArrayRef) = default;
  friend constexpr auto operator<=>(AtomArrayRef, AtomArrayRef) = default;
};

class Atom {
 public:
  enum class Kind : std::uint8_t {
    Rel,
    LogVar,
    /// §5.2 quantified-guard extension: an *uninterpreted* predicate over an
    /// array element — `q(array[sub])` with `q` identified by an interned
    /// comparison key (e.g. "the element exceeds cut2"). `positive` selects
    /// q or ¬q. Substitutable through the subscript; never enters the
    /// integer constraint engine.
    ArrayPred,
    /// ∀ bv ∈ [lo, up] : (¬)q(array[sub(bv)]) — produced by the guarded
    /// counter idiom ("kc = 0; DO k: IF (q(k)) kc = kc+1" followed by a
    /// kc == 0 test).
    Forall,
  };

  /// Relational atom `e op 0`.
  static Atom rel(SymExpr e, RelOp op);
  /// Logical-variable atom `v == value` (v ranges over {false, true}).
  static Atom logicalVar(VarId v, bool value);
  /// Uninterpreted array-element predicate (see Kind::ArrayPred): the
  /// element `array[subscript]` stands in relation `predKey` (an interned
  /// relation tag, e.g. "ap$gt") to `rhs`. Both subscript and rhs are
  /// substitutable symbolic expressions.
  static Atom arrayPred(AtomArrayRef array, VarId predKey, SymExpr subscript, SymExpr rhs,
                        bool positive);
  /// Universally quantified array-element predicate (see Kind::Forall).
  static Atom forallPred(AtomArrayRef array, VarId predKey, VarId boundVar, SymExpr subscript,
                         SymExpr rhs, SymExpr lo, SymExpr up, bool positive);

  // Convenience constructors for the common comparisons a op b.
  static Atom le(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::LE); }
  static Atom lt(const SymExpr& a, const SymExpr& b) { return rel(a - b + 1, RelOp::LE); }
  static Atom ge(const SymExpr& a, const SymExpr& b) { return le(b, a); }
  static Atom gt(const SymExpr& a, const SymExpr& b) { return lt(b, a); }
  static Atom eq(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::EQ); }
  static Atom ne(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::NE); }

  // Real-valued comparison builders.
  static Atom rlt(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::RLT); }
  static Atom rle(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::RLE); }
  static Atom req(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::REQ); }
  static Atom rne(const SymExpr& a, const SymExpr& b) { return rel(a - b, RelOp::RNE); }

  Kind kind() const { return kind_; }
  const SymExpr& expr() const { return expr_; }
  RelOp op() const { return op_; }
  VarId logical() const { return lvar_; }
  bool logicalValue() const { return lval_; }

  // ArrayPred / Forall accessors. `expr()` carries the subscript; `logical()`
  // carries the predicate key; `logicalValue()` the polarity.
  AtomArrayRef predArray() const { return apArray_; }
  const SymExpr& predRhs() const { return apRhs_; }
  VarId boundVar() const { return apBound_; }
  const SymExpr& forallLo() const { return apLo_; }
  const SymExpr& forallUp() const { return apUp_; }

  /// True when the relational expression is poisoned (value unknowable).
  bool isPoisoned() const { return kind_ == Kind::Rel && expr_.isPoisoned(); }

  Atom negated() const;

  /// Constant folding: True/False when the atom's truth is independent of any
  /// variable, Unknown otherwise.
  Truth constFold() const;

  /// Evaluation under a concrete binding (logical variables bound to 0/1).
  std::optional<bool> evaluate(const Binding& binding) const;

  Atom substituted(VarId v, const SymExpr& replacement) const;
  Atom substituted(const std::map<VarId, SymExpr>& replacements) const;
  bool containsVar(VarId v) const;
  void collectVars(std::vector<VarId>& out) const;

  /// Total structural order used to canonicalize clause atom lists.
  static int compare(const Atom& a, const Atom& b);
  /// Field-wise, O(1): every sub-expression is an interned handle, and the
  /// factory constructors leave unused fields at canonical defaults, so this
  /// coincides with compare(a, b) == 0.
  friend bool operator==(const Atom& a, const Atom& b) {
    return a.kind_ == b.kind_ && a.op_ == b.op_ && a.expr_ == b.expr_ && a.lvar_ == b.lvar_ &&
           a.lval_ == b.lval_ && a.apArray_ == b.apArray_ && a.apBound_ == b.apBound_ &&
           a.apRhs_ == b.apRhs_ && a.apLo_ == b.apLo_ && a.apUp_ == b.apUp_;
  }

  /// O(1) structural hash combined from the handles' cached identities.
  std::size_t hashValue() const;

  /// Adds this atom as a hypothesis to `cs`. Returns false when the atom is
  /// not representable (non-affine Rel); logical atoms are encoded as
  /// equalities over a 0/1 variable.
  bool addToConstraints(ConstraintSet& cs) const;

  std::string str(const SymbolTable& symtab) const;

 private:
  Kind kind_ = Kind::Rel;
  SymExpr expr_;  // Rel: the compared expression; ArrayPred/Forall: the subscript
  RelOp op_ = RelOp::LE;
  VarId lvar_;    // LogVar: the variable; ArrayPred/Forall: the predicate key
  bool lval_ = false;  // LogVar value / ArrayPred polarity
  AtomArrayRef apArray_;
  VarId apBound_;  // Forall: the quantified variable
  SymExpr apRhs_;  // ArrayPred/Forall: the comparison's other side
  SymExpr apLo_;   // Forall bounds
  SymExpr apUp_;
};

/// True for the quantified-extension kinds.
inline bool isQuantifiedKind(Atom::Kind k) {
  return k == Atom::Kind::ArrayPred || k == Atom::Kind::Forall;
}

/// Is `a ∧ b` unsatisfiable? (True = provably contradictory.)
Truth atomsContradict(const Atom& a, const Atom& b, const FmBudget& budget = {});

/// Is `a ∨ b` a tautology? (True = provably exhaustive.)
Truth atomsExhaustive(const Atom& a, const Atom& b, const FmBudget& budget = {});

/// Does `a` entail `b`?
Truth atomImplies(const Atom& a, const Atom& b, const FmBudget& budget = {});

/// Solves `forallAtom.expr()(boundVar) == target` for the bound variable
/// (affine, coefficient ±1). Shared by the atom- and predicate-level
/// quantifier instantiation rules.
std::optional<SymExpr> solveForallInstance(const Atom& forallAtom, const SymExpr& target);

}  // namespace panorama
