// Guard predicates in ordered conjunctive normal form (§3.1, §5.2).
//
// A predicate is a conjunction of disjunctions of atoms, plus an optional
// "unknown conjunct" flag modeling the paper's Δ: a predicate with the flag
// set stands for `CNF ∧ Δ` where Δ is a condition the analyzer could not
// express. The CNF part is therefore always an *over-approximation* of the
// true guard:
//
//   * mayHold()  — the guard could be true (uses the CNF over-approximation);
//     sound for treating a region as possibly accessed.
//   * provablyFalse() — the guard is certainly false (False ∧ Δ = False);
//     sound for discarding a region entirely.
//   * isTrue() — the guard is certainly true; requires no Δ. Sound for
//     treating a MOD region as definitely written (kill).
//
// All operators keep these semantics: ∧ and ∨ of over-approximations
// over-approximate; ¬ of a Δ-tainted predicate degrades to True ∧ Δ.
//
// Like expressions, predicates are hash-consed: every distinct (clauses, Δ)
// value is interned once (predicate arena), and a `PredRef` is an 8-byte
// immutable handle. All construction paths normalize (clauses sorted by
// Disjunct::compare, atoms sorted within clauses, False canonical as the
// single empty clause), so pointer equality of handles is structural — and
// hence semantic-order — equality, and hashing is O(1). "Mutators" like
// simplify() rebind the handle to the simplified value's node.
#pragma once

#include <string>
#include <vector>

#include "panorama/predicate/atom.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

/// A disjunction of atoms. The empty disjunction is False.
struct Disjunct {
  std::vector<Atom> atoms;  // sorted by Atom::compare, deduplicated

  static Disjunct single(Atom a);
  bool isFalse() const { return atoms.empty(); }

  void normalize();
  std::optional<bool> evaluate(const Binding& binding) const;
  std::string str(const SymbolTable& symtab) const;

  static int compare(const Disjunct& a, const Disjunct& b);
  friend bool operator==(const Disjunct& a, const Disjunct& b) { return a.atoms == b.atoms; }
};

/// Tuning knobs shared by the predicate and GAR simplifiers.
struct SimplifyOptions {
  std::size_t maxClauses = 48;        ///< CNF size valve: beyond this, degrade to Δ
  std::size_t maxAtomsPerClause = 12;
  bool useFourierMotzkin = true;      ///< allow FM fallbacks beyond pairwise rules
  FmBudget fmBudget;
};

namespace detail {
/// One interned predicate value (arena-owned, immutable, stable address).
struct PredNode {
  std::vector<Disjunct> clauses;  // sorted by Disjunct::compare
  bool unknown = false;           // the Δ conjunct
  std::size_t hash = 0;           // structural hash, cached at interning time
  std::uint64_t id = 0;           // dense arena key; shard index in the low bits
};
}  // namespace detail

class PredRef {
 public:
  /// Default-constructed predicate is True.
  PredRef();

  static PredRef makeTrue() { return PredRef(); }
  static PredRef makeFalse();
  /// The unknown guard Δ (True ∧ Δ).
  static PredRef makeUnknown();
  static PredRef atom(Atom a);

  bool isTrue() const { return node_->clauses.empty() && !node_->unknown; }
  bool isFalse() const;
  bool isUnknown() const { return node_->unknown; }
  /// True when nothing rules the guard out (not provably false).
  bool mayHold() const { return !isFalse(); }

  const std::vector<Disjunct>& clauses() const { return node_->clauses; }

  /// Logical operators; arguments are over-approximations and so are results.
  friend PredRef operator&&(const PredRef& a, const PredRef& b);
  friend PredRef operator||(const PredRef& a, const PredRef& b);
  PredRef operator!() const;

  /// Rebinds this handle to the cleaned-up value: constant folding,
  /// clause/atom dedup, pairwise subsumption, contradiction detection (the
  /// paper's predicate simplifier). The result is a pure function of
  /// (predicate, opts) and is memoized — keyed by the 8-byte arena id — in
  /// a bounded global value cache gated by QueryCache::global()'s capacity.
  void simplify(const SimplifyOptions& opts = {});

  /// Deep check: is the CNF part unsatisfiable? Uses pairwise rules first,
  /// then a Fourier-Motzkin pass over the unit clauses.
  Truth provablyFalse(const SimplifyOptions& opts = {}) const;

  /// Does this predicate entail `other`? Δ on `this` weakens nothing (a
  /// stronger hypothesis still entails); Δ on `other` forces Unknown.
  Truth implies(const PredRef& other, const SimplifyOptions& opts = {}) const;

  /// Evaluation under a concrete binding. nullopt when any atom cannot be
  /// evaluated or the predicate is Δ-tainted (its truth is unknowable).
  std::optional<bool> evaluate(const Binding& binding) const;
  /// Evaluates just the CNF over-approximation (ignores Δ); used by property
  /// tests that check over-approximation, not equivalence.
  std::optional<bool> evaluateCnf(const Binding& binding) const;

  PredRef substituted(VarId v, const ExprRef& replacement) const;
  PredRef substituted(const std::map<VarId, ExprRef>& replacements) const;
  bool containsVar(VarId v) const;
  void collectVars(std::vector<VarId>& out) const;

  /// Flattens the unit clauses (and only those — sound weakening) into a
  /// constraint set usable as an FM hypothesis context.
  ConstraintSet unitConstraints() const;

  /// Conjoins a single atom (cheap common case).
  void andAtom(Atom a);

  /// Total structural order (Δ flag, then clause lists).
  static int compare(const PredRef& a, const PredRef& b);
  /// Hash-consing makes equality a pointer compare: one node per value.
  friend bool operator==(const PredRef& a, const PredRef& b) { return a.node_ == b.node_; }

  std::string str(const SymbolTable& symtab) const;
  /// The structural hash, cached on the node at interning time.
  std::size_t hashValue() const { return node_->hash; }
  /// Dense 64-bit arena key; id equality <=> structural equality.
  std::uint64_t id() const { return node_->id; }

 private:
  friend class PredArena;
  explicit PredRef(const detail::PredNode* node) : node_(node) {}

  /// Normalizes `clauses` (the old in-place normalize()) and interns.
  static PredRef make(std::vector<Disjunct> clauses, bool unknown);
  /// Interns an already-canonical clause list.
  static PredRef makeRaw(std::vector<Disjunct> clauses, bool unknown);
  static void normalizeClauses(std::vector<Disjunct>& clauses);
  /// The actual simplifier passes; simplify() wraps this in the memo.
  static PredRef simplifyUncached(std::vector<Disjunct> clauses, bool unknown,
                                  const SimplifyOptions& opts);

  const detail::PredNode* node_;
};

/// The paper-facing name for guard predicates.
using Pred = PredRef;

/// Counters of the global simplify value memo (hits/misses/evictions;
/// `entries` is the resident count). Shares QueryCache::global()'s capacity
/// gate, so configure(0) disables it too.
QueryCache::Stats simplifyMemoStats();
/// Drops the simplify memo's entries and counters (capacity-independent).
void clearSimplifyMemo();

}  // namespace panorama
