// Guard predicates in ordered conjunctive normal form (§3.1, §5.2).
//
// A Pred is a conjunction of disjunctions of atoms, plus an optional "unknown
// conjunct" flag modeling the paper's Δ: a Pred with the flag set stands for
// `CNF ∧ Δ` where Δ is a condition the analyzer could not express. The CNF
// part is therefore always an *over-approximation* of the true guard:
//
//   * mayHold()  — the guard could be true (uses the CNF over-approximation);
//     sound for treating a region as possibly accessed.
//   * provablyFalse() — the guard is certainly false (False ∧ Δ = False);
//     sound for discarding a region entirely.
//   * isTrue() — the guard is certainly true; requires no Δ. Sound for
//     treating a MOD region as definitely written (kill).
//
// All operators keep these semantics: ∧ and ∨ of over-approximations
// over-approximate; ¬ of a Δ-tainted predicate degrades to True ∧ Δ.
#pragma once

#include <string>
#include <vector>

#include "panorama/predicate/atom.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

/// A disjunction of atoms. The empty disjunction is False.
struct Disjunct {
  std::vector<Atom> atoms;  // sorted by Atom::compare, deduplicated

  static Disjunct single(Atom a);
  bool isFalse() const { return atoms.empty(); }

  void normalize();
  std::optional<bool> evaluate(const Binding& binding) const;
  std::string str(const SymbolTable& symtab) const;

  static int compare(const Disjunct& a, const Disjunct& b);
  friend bool operator==(const Disjunct& a, const Disjunct& b) { return compare(a, b) == 0; }
};

/// Tuning knobs shared by the predicate and GAR simplifiers.
struct SimplifyOptions {
  std::size_t maxClauses = 48;        ///< CNF size valve: beyond this, degrade to Δ
  std::size_t maxAtomsPerClause = 12;
  bool useFourierMotzkin = true;      ///< allow FM fallbacks beyond pairwise rules
  FmBudget fmBudget;
};

class Pred {
 public:
  /// Default-constructed predicate is True.
  Pred() = default;

  static Pred makeTrue() { return Pred(); }
  static Pred makeFalse();
  /// The unknown guard Δ (True ∧ Δ).
  static Pred makeUnknown();
  static Pred atom(Atom a);

  bool isTrue() const { return clauses_.empty() && !unknown_; }
  bool isFalse() const;
  bool isUnknown() const { return unknown_; }
  /// True when nothing rules the guard out (not provably false).
  bool mayHold() const { return !isFalse(); }

  const std::vector<Disjunct>& clauses() const { return clauses_; }

  /// Logical operators; arguments are over-approximations and so are results.
  friend Pred operator&&(const Pred& a, const Pred& b);
  friend Pred operator||(const Pred& a, const Pred& b);
  Pred operator!() const;

  /// In-place cleanup: constant folding, clause/atom dedup, pairwise
  /// subsumption, contradiction detection (the paper's predicate simplifier).
  /// The result is a pure function of (predicate, opts) and is memoized in
  /// a bounded global value cache gated by QueryCache::global()'s capacity.
  void simplify(const SimplifyOptions& opts = {});

  /// Deep check: is the CNF part unsatisfiable? Uses pairwise rules first,
  /// then a Fourier-Motzkin pass over the unit clauses.
  Truth provablyFalse(const SimplifyOptions& opts = {}) const;

  /// Does this predicate entail `other`? Δ on `this` weakens nothing (a
  /// stronger hypothesis still entails); Δ on `other` forces Unknown.
  Truth implies(const Pred& other, const SimplifyOptions& opts = {}) const;

  /// Evaluation under a concrete binding. nullopt when any atom cannot be
  /// evaluated or the predicate is Δ-tainted (its truth is unknowable).
  std::optional<bool> evaluate(const Binding& binding) const;
  /// Evaluates just the CNF over-approximation (ignores Δ); used by property
  /// tests that check over-approximation, not equivalence.
  std::optional<bool> evaluateCnf(const Binding& binding) const;

  Pred substituted(VarId v, const SymExpr& replacement) const;
  Pred substituted(const std::map<VarId, SymExpr>& replacements) const;
  bool containsVar(VarId v) const;
  void collectVars(std::vector<VarId>& out) const;

  /// Flattens the unit clauses (and only those — sound weakening) into a
  /// constraint set usable as an FM hypothesis context.
  ConstraintSet unitConstraints() const;

  /// Conjoins a single atom (cheap common case).
  void andAtom(Atom a);

  static int compare(const Pred& a, const Pred& b);
  friend bool operator==(const Pred& a, const Pred& b) { return compare(a, b) == 0; }

  std::string str(const SymbolTable& symtab) const;

 private:
  void normalize();
  void markUnknownOnly();
  /// The actual simplifier passes; simplify() wraps this in the memo.
  void simplifyUncached(const SimplifyOptions& opts);

  std::vector<Disjunct> clauses_;  // sorted by Disjunct::compare
  bool unknown_ = false;           // the Δ conjunct
};

/// Counters of the global Pred::simplify value memo (hits/misses/evictions;
/// `entries` is the resident count). Shares QueryCache::global()'s capacity
/// gate, so configure(0) disables it too.
QueryCache::Stats simplifyMemoStats();
/// Drops the simplify memo's entries and counters (capacity-independent).
void clearSimplifyMemo();

}  // namespace panorama
