// The hash-consing arena behind PredRef — the predicate-layer twin of
// symbolic/arena.h (which also holds the authoritative comment on the
// id layout shared by both arenas: shard index in the low bits, per-shard
// sequence above). Append-only, process lifetime, stable node addresses;
// atom equality inside the dedup compare is O(1) because atoms hold interned
// expression handles.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "panorama/predicate/predicate.h"

namespace panorama {

class PredArena {
 public:
  /// The process-wide arena every analysis thread shares.
  static PredArena& global();

  /// Interns a *canonical* clause list (see predicate.h for the invariant)
  /// and returns the unique handle.
  PredRef intern(std::vector<Disjunct> clauses, bool unknown);

  /// Arena occupancy for `--stats` (see ExprArena::Stats).
  struct Stats {
    std::size_t distinct = 0;
    std::size_t bytes = 0;
    std::size_t minShard = 0;
    std::size_t maxShard = 0;
  };
  Stats stats() const;

 private:
  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShards = 1u << kShardBits;

  struct Shard {
    mutable std::shared_mutex mutex;
    std::deque<detail::PredNode> nodes;  // deque: stable node addresses
    std::unordered_map<std::size_t, std::vector<const detail::PredNode*>> index;
    std::uint64_t next = 0;
    std::size_t bytes = 0;
  };

  std::array<Shard, kShards> shards_;
};

}  // namespace panorama
