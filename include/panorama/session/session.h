// Incremental analysis sessions: the serving-system core that turns the
// batch pipeline (parse → sema → HSG → summaries → privatization) into a
// persistent service that recomputes only what changed between submits.
//
// A session owns the persistent symbol/array tables, the thread pool, and
// one fingerprinted *unit* per procedure. On submit, the incoming program
// diffs against the units ({unchanged, modified, added, removed}); the
// dirty cone — modified and added procedures plus everything that
// transitively depends on them through the summary dependency graph
// (caller→callee edges recorded at SUM_call) — is re-analyzed through the
// existing call-graph waves, while every unit outside the cone reuses its
// summaries, loop summaries, HSG, and formatted loop reports verbatim.
//
// Validity of a unit's cached state is keyed on
//   (own content fingerprint, callee summary epochs, analysis-options key):
// a unit is reused only when its fingerprint is unchanged, every callee it
// depended on kept the summary epoch the unit was computed against, and the
// ablation-relevant options are the same. An options change (or the first
// submit) invalidates everything.
//
// Reuse is possible because all cached state is handle-based: GARs,
// SymExprs and Preds are 8-byte ids into process-global append-only arenas,
// and VarId/ArrayId stay stable across submits because sema re-runs against
// the session's persistent tables. Unchanged procedures keep their previous
// AST objects (moved into the next epoch's Program — the heap-allocated
// statements they point to do not move), so Stmt-keyed loop summaries and
// HSG nodes stay valid too.
//
// Inside the dirty cone, reuse is *loop-granular* (DESIGN.md §4.9): a
// modified procedure's body is diffed per top-level statement ("item"), and
// an item's cached loop verdicts are served — and its loop summaries seeded
// into the fresh analyzer — when the item subtree, the statement suffix
// after it (the backward walk's ueAfter input), the declaration frame, and
// every callee summary epoch its verdicts read are all unchanged. A one-loop
// edit in an N-loop procedure therefore recomputes one loop, not N.
//
// Reports cite post-edit line numbers without forfeiting reuse: when a
// fingerprint-unchanged procedure's text merely shifted, the session patches
// the kept AST's SourceLocs from the incoming parse in lockstep
// (remapSourceLocs) and rewrites the cached line citations — report strings
// are cached headerless (reportTail) and the header is composed at emission.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "panorama/analysis/analysis.h"
#include "panorama/ast/fingerprint.h"
#include "panorama/hsg/hsg.h"
#include "panorama/obs/profile.h"
#include "panorama/store/format.h"
#include "panorama/support/thread_pool.h"

namespace panorama {

/// Why one unit landed in the dirty cone — the provenance record the cost
/// profiler renders for warm runs ("which edit cost me this recompute").
struct UnitInvalidation {
  std::string unit;
  std::string cause;  ///< "fingerprint" | "added" | "callee-epoch" |
                      ///< "options-change" | "first-submit"
  std::string detail;
};

/// Why one loop inside a *dirty* unit was served from cache anyway — the
/// `session.loop_reuse_cause` provenance rendered by --stats/--explain.
struct LoopReuse {
  std::string unit;
  int line = 0;       ///< post-edit line of the reused loop
  std::string cause;  ///< "item-match" | "line-remap"
  std::string detail;
};

/// Per-submit recomputation accounting — the `session.*` metrics source and
/// the hook the lifecycle tests assert dirty-cone sizes through.
struct SessionStats {
  std::uint64_t epoch = 0;          ///< submit counter (1 = first/cold run)
  std::size_t procedures = 0;       ///< procedure units after this submit
  std::size_t unchanged = 0;        ///< fingerprint-identical units
  std::size_t modified = 0;         ///< fingerprint changed
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t dirty = 0;            ///< dirty-cone size (recomputed units)
  std::size_t summariesReused = 0;  ///< units seeded from the previous epoch
  std::size_t summariesRecomputed = 0;
  std::size_t loopsReused = 0;      ///< loop analyses served from cache
  std::size_t loopsRecomputed = 0;
  /// Loop-granular reuse inside the dirty cone (tentpole of DESIGN.md §4.9).
  std::size_t loopSkips = 0;        ///< loops reused inside *dirty* units
  std::size_t partialUnits = 0;     ///< dirty units with >=1 reused loop
  std::size_t unitsCleanLoops = 0;  ///< units with zero recomputed loops
  std::size_t unitsDirtyLoops = 0;  ///< units with >=1 recomputed loop
  std::size_t lineRemaps = 0;       ///< cached loop citations moved to post-edit lines
  /// One record per loop reused inside a dirty unit (and per remapped line).
  std::vector<LoopReuse> loopReuse;
  /// Cumulative byte-identical resubmits served by the whole-file fast path
  /// (per-procedure diffing skipped entirely) — the `session.file_skips`
  /// metric.
  std::uint64_t fileSkips = 0;
  bool fullInvalidation = false;    ///< first submit or options change
  /// One record per dirty unit, in source order.
  std::vector<UnitInvalidation> invalidations;
};

/// One analyzed DO loop, with the same formatted report a batch run prints.
struct SessionLoopResult {
  std::string procName;
  int line = 0;
  LoopClass classification = LoopClass::Serial;
  std::string report;      ///< formatLoopAnalysis output
  std::string provenance;  ///< formatProvenance output
};

struct SessionResult {
  bool ok = false;
  std::string error;  ///< parse/sema/HSG diagnostics when !ok
  std::vector<SessionLoopResult> loops;
  SessionStats stats;
};

class AnalysisSession {
 public:
  explicit AnalysisSession(AnalysisOptions options = {});
  /// Daemon-mode constructor: schedules analysis batches on `sharedPool`
  /// (not owned; must outlive the session) so concurrent client sessions
  /// share one work-stealing pool instead of oversubscribing the machine.
  /// With a shared pool, options.numThreads changes via setOptions() do not
  /// re-thread — the pool's owner controls concurrency.
  AnalysisSession(AnalysisOptions options, ThreadPool* sharedPool);
  ~AnalysisSession();
  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// Parses and analyzes `source` incrementally against the session state.
  /// A failed submit (parse/sema error) leaves the session exactly as it
  /// was — the previous program stays live and queryable.
  ///
  /// Whole-file fast path: when `source` is byte-identical to the previous
  /// successful text submit (and the options did not change), the submit
  /// skips parsing and per-procedure diffing entirely and serves every
  /// cached loop report — counted under `session.file_skips`.
  SessionResult submit(const std::string& source);

  /// Frontend-neutral entry point: analyzes an already-constructed pre-sema
  /// `Program` (from the F77 parser, the C-like frontend, or a
  /// ProgramBuilder) incrementally against the session state. The string
  /// overload is exactly parse + this. Fingerprints are structural and
  /// SourceLoc-blind, so a builder-constructed procedure that equals a
  /// parsed one diffs as unchanged — the two frontends share one cache.
  SessionResult submit(Program program);

  /// Replaces the analysis options. Ablation-relevant changes invalidate
  /// every unit on the next submit and bump the query-cache epoch (O(1)
  /// verdict invalidation); execution-only changes (threads) do not.
  void setOptions(const AnalysisOptions& options);
  const AnalysisOptions& options() const { return options_; }

  /// Submit counter; 0 until the first successful submit.
  std::uint64_t epoch() const { return epoch_; }
  const SessionStats& lastStats() const { return lastStats_; }

  /// A point-in-time sample of the session's serving state — the daemon's
  /// `status` op reads every live session through this. Served from atomic
  /// mirrors published at the end of each mutating call, never from the
  /// session mutex, so sampling cannot block behind an in-flight submit.
  struct Status {
    std::uint64_t epoch = 0;
    std::size_t units = 0;        ///< cached procedure units
    bool live = false;            ///< has a successfully analyzed program
    std::uint64_t fileSkips = 0;  ///< whole-file fast-path hits
  };
  Status status() const;

  /// The submit epoch that last recomputed `name`'s summary (0 if the unit
  /// is unknown). Lifecycle tests assert transitive invalidation through
  /// this: an edited leaf bumps its own and every transitive caller's
  /// epoch while siblings keep theirs.
  std::uint64_t summaryEpochOf(const std::string& name) const;

  // ----- on-disk persistence (store/, DESIGN.md §4.8) -----

  /// Serializes the live session — symbol/array tables, interned
  /// expressions and predicates with stable snapshot-local ids, the
  /// post-sema AST, per-unit fingerprints/epochs/dependency edges/cached
  /// reports, and every memoized procedure snapshot — into a versioned,
  /// integrity-hashed snapshot at `path` (temp-file + rename, so a crash
  /// never leaves a torn file). Fails on a dead session or unwritable path.
  /// `schemaVersion` selects the container schema (kSchemaVersion, the
  /// default, or the legacy v1 layout — kept writable so the v1 read path
  /// stays honestly testable).
  store::StoreResult save(const std::string& path,
                          std::uint32_t schemaVersion = store::kSchemaVersion) const;

  /// Replaces this session's state with a snapshot previously produced by
  /// save(). The next submit behaves exactly like a warm submit against the
  /// saved in-process session: byte-identical reports at any thread count.
  /// A truncated, corrupted, or version-mismatched snapshot fails with a
  /// structured diagnostic and leaves the session untouched (the same
  /// atomicity contract as a failed submit). numThreads/cacheCapacity keep
  /// their current values; the snapshot's ablation options are adopted.
  store::StoreResult restore(const std::string& path);

 private:
  /// One fingerprinted procedure unit and its cached analysis state.
  /// Reports are cached headerless: the `procName: DO var (line N): ` prefix
  /// is composed at emission from (procName, doVar, line), so a line-number
  /// remap is a field update, not a string rewrite.
  struct CachedLoop {
    int line = 0;
    LoopClass classification = LoopClass::Serial;
    std::string procName;
    std::string doVar;
    std::string reportTail;  ///< formatLoopAnalysis output minus the header prefix
    std::string provenance;
  };
  /// Per-top-level-statement reuse record (the loop-granular invalidation
  /// key, DESIGN.md §4.9). Items mirror fingerprintProcedureDetail().
  struct ItemRecord {
    Fingerprint hash = 0;
    Fingerprint suffixHash = 0;
    Fingerprint precedingHash = 0;
    bool hasLoop = false;
    std::uint32_t loopBegin = 0;  ///< index range into Unit::loops
    std::uint32_t loopCount = 0;
    /// Epochs of every *resolved* callee the item's verdicts may have read
    /// (CALLs in the subtree or the suffix) at the time they were computed.
    std::map<std::string, std::uint64_t> calleeEpochs;
  };
  struct Unit {
    Fingerprint fp = 0;
    Fingerprint frameFp = 0;         ///< declaration-frame hash (detail.frame)
    std::uint64_t summaryEpoch = 0;  ///< submit that last recomputed it
    std::set<std::string> deps;      ///< callees folded in at SUM_call
    std::map<std::string, std::uint64_t> calleeEpochs;  ///< deps' epochs then
    std::vector<CachedLoop> loops;   ///< walk-order loop reports
    /// One per top-level body statement; empty disables item-granular reuse
    /// for this unit (v1 snapshot restores).
    std::vector<ItemRecord> items;
  };

  /// Hash of the ablation-relevant options (everything that changes
  /// analysis results; numThreads/cacheCapacity deliberately excluded —
  /// the driver guarantees identical results across both).
  static std::uint64_t optionsKey(const AnalysisOptions& options);

  void resetState();

  /// Copies epoch_/units_/live_/fileSkips_ into the status mirrors; called
  /// (holding mutex_) at the end of every mutating entry point.
  void publishStatusLocked();

  /// The incremental pipeline proper; callers hold mutex_.
  SessionResult submitLocked(Program incoming);
  /// The byte-identical-resubmit fast path; callers hold mutex_ and have
  /// checked eligibility (live, same bytes, same options key).
  SessionResult fileSkipLocked();

  /// `procName: DO var (line N): ` + reportTail — the inverse of the header
  /// split cacheLoopAnalysis performs. An empty doVar (unsplittable v1
  /// report) returns the tail verbatim.
  static std::string composeLoopReport(const CachedLoop& cl);
  /// Caches a fresh loop analysis headerless.
  static CachedLoop cacheLoopAnalysis(const LoopAnalysis& la);
  /// v1-snapshot restore: recovers (doVar, reportTail) from a composed
  /// report string; `cl.procName` must already be set. Returns false (and
  /// leaves cl's report fields untouched) when the header does not parse.
  static bool splitLoopReport(const std::string& report, CachedLoop& cl);

  /// save()/restore() live in src/store/session_io.cpp (the serialization
  /// layer needs the privates; the session logic stays here).
  store::StoreResult saveLocked(const std::string& path, std::uint32_t schemaVersion) const;
  store::StoreResult restoreLocked(const std::string& path);

  /// One session-wide lock: submits, option changes, and save/restore
  /// serialize against each other, so a snapshot taken under concurrent
  /// submits is always one consistent epoch.
  mutable std::mutex mutex_;

  AnalysisOptions options_;
  std::uint64_t optionsKey_ = 0;
  /// The options key units_ was computed under; a mismatch at submit time
  /// (setOptions changed an ablation-relevant knob) forces full invalidation.
  std::uint64_t unitsOptionsKey_ = 0;
  std::uint64_t epoch_ = 0;
  SessionStats lastStats_;

  // Live analysis state of the current epoch. `analyzer_` references
  // program_/sema_/hsg_ and must be destroyed before they are replaced.
  bool live_ = false;
  Program program_;
  SemaResult sema_;
  Hsg hsg_;
  std::unique_ptr<SummaryAnalyzer> analyzer_;
  /// pool_ is what the pipeline schedules on; it aliases ownedPool_ in the
  /// standalone case and the daemon's pool in the shared case.
  std::unique_ptr<ThreadPool> ownedPool_;
  ThreadPool* pool_ = nullptr;

  std::map<std::string, Unit> units_;

  /// Whole-file fast path: hash of the last successfully submitted source
  /// text (text submits only — Program submits clear it, their source is
  /// unknown).
  std::uint64_t lastSourceHash_ = 0;
  bool hasSourceHash_ = false;
  std::uint64_t fileSkips_ = 0;

  /// status() mirrors (see Status).
  std::atomic<std::uint64_t> statusEpoch_{0};
  std::atomic<std::size_t> statusUnits_{0};
  std::atomic<bool> statusLive_{false};
  std::atomic<std::uint64_t> statusFileSkips_{0};

  /// Procedure snapshots carried by restore() until the next submit's seed
  /// step consumes them. restore() must not construct an analyzer (doing so
  /// would intern ψ symbols in a different order than the in-process warm
  /// path), so the snapshots wait here instead of in analyzer_'s memo.
  std::map<std::string, SummaryAnalyzer::ProcSnapshot> pendingSnapshots_;
};

/// Publishes the submit's counters as `session.*` metrics in the global
/// registry (dirty-cone size, summaries reused vs recomputed, ...).
void publishSessionMetrics(const SessionStats& stats);

/// Human-readable stats block for panorama_driver --reanalyze --stats.
std::string formatSessionStats(const SessionStats& stats);

/// Converts a submit's stats into the obs-layer reuse record a CostProfile
/// embeds (the profile subsystem sits below the session and cannot name
/// SessionStats itself).
obs::SessionReuse sessionReuseFor(const SessionStats& stats);

}  // namespace panorama
