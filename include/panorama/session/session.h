// Incremental analysis sessions: the serving-system core that turns the
// batch pipeline (parse → sema → HSG → summaries → privatization) into a
// persistent service that recomputes only what changed between submits.
//
// A session owns the persistent symbol/array tables, the thread pool, and
// one fingerprinted *unit* per procedure. On submit, the incoming program
// diffs against the units ({unchanged, modified, added, removed}); the
// dirty cone — modified and added procedures plus everything that
// transitively depends on them through the summary dependency graph
// (caller→callee edges recorded at SUM_call) — is re-analyzed through the
// existing call-graph waves, while every unit outside the cone reuses its
// summaries, loop summaries, HSG, and formatted loop reports verbatim.
//
// Validity of a unit's cached state is keyed on
//   (own content fingerprint, callee summary epochs, analysis-options key):
// a unit is reused only when its fingerprint is unchanged, every callee it
// depended on kept the summary epoch the unit was computed against, and the
// ablation-relevant options are the same. An options change (or the first
// submit) invalidates everything.
//
// Reuse is possible because all cached state is handle-based: GARs,
// SymExprs and Preds are 8-byte ids into process-global append-only arenas,
// and VarId/ArrayId stay stable across submits because sema re-runs against
// the session's persistent tables. Unchanged procedures keep their previous
// AST objects (moved into the next epoch's Program — the heap-allocated
// statements they point to do not move), so Stmt-keyed loop summaries and
// HSG nodes stay valid too.
//
// Known limitation (documented in DESIGN.md): reports embed source line
// numbers. A clean procedure keeps its pre-edit AST, so if an edit shifts a
// later procedure's lines without changing its content, that procedure's
// cached reports cite pre-edit line numbers. Edits that keep sibling
// procedures' positions (trailing-procedure edits, same-line-count edits)
// reproduce a cold run byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "panorama/analysis/analysis.h"
#include "panorama/ast/fingerprint.h"
#include "panorama/hsg/hsg.h"
#include "panorama/obs/profile.h"
#include "panorama/support/thread_pool.h"

namespace panorama {

/// Why one unit landed in the dirty cone — the provenance record the cost
/// profiler renders for warm runs ("which edit cost me this recompute").
struct UnitInvalidation {
  std::string unit;
  std::string cause;  ///< "fingerprint" | "added" | "callee-epoch" |
                      ///< "options-change" | "first-submit"
  std::string detail;
};

/// Per-submit recomputation accounting — the `session.*` metrics source and
/// the hook the lifecycle tests assert dirty-cone sizes through.
struct SessionStats {
  std::uint64_t epoch = 0;          ///< submit counter (1 = first/cold run)
  std::size_t procedures = 0;       ///< procedure units after this submit
  std::size_t unchanged = 0;        ///< fingerprint-identical units
  std::size_t modified = 0;         ///< fingerprint changed
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t dirty = 0;            ///< dirty-cone size (recomputed units)
  std::size_t summariesReused = 0;  ///< units seeded from the previous epoch
  std::size_t summariesRecomputed = 0;
  std::size_t loopsReused = 0;      ///< loop analyses served from cache
  std::size_t loopsRecomputed = 0;
  bool fullInvalidation = false;    ///< first submit or options change
  /// One record per dirty unit, in source order.
  std::vector<UnitInvalidation> invalidations;
};

/// One analyzed DO loop, with the same formatted report a batch run prints.
struct SessionLoopResult {
  std::string procName;
  int line = 0;
  LoopClass classification = LoopClass::Serial;
  std::string report;      ///< formatLoopAnalysis output
  std::string provenance;  ///< formatProvenance output
};

struct SessionResult {
  bool ok = false;
  std::string error;  ///< parse/sema/HSG diagnostics when !ok
  std::vector<SessionLoopResult> loops;
  SessionStats stats;
};

class AnalysisSession {
 public:
  explicit AnalysisSession(AnalysisOptions options = {});
  ~AnalysisSession();
  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// Parses and analyzes `source` incrementally against the session state.
  /// A failed submit (parse/sema error) leaves the session exactly as it
  /// was — the previous program stays live and queryable.
  SessionResult submit(const std::string& source);

  /// Frontend-neutral entry point: analyzes an already-constructed pre-sema
  /// `Program` (from the F77 parser, the C-like frontend, or a
  /// ProgramBuilder) incrementally against the session state. The string
  /// overload is exactly parse + this. Fingerprints are structural and
  /// SourceLoc-blind, so a builder-constructed procedure that equals a
  /// parsed one diffs as unchanged — the two frontends share one cache.
  SessionResult submit(Program program);

  /// Replaces the analysis options. Ablation-relevant changes invalidate
  /// every unit on the next submit and bump the query-cache epoch (O(1)
  /// verdict invalidation); execution-only changes (threads) do not.
  void setOptions(const AnalysisOptions& options);
  const AnalysisOptions& options() const { return options_; }

  /// Submit counter; 0 until the first successful submit.
  std::uint64_t epoch() const { return epoch_; }
  const SessionStats& lastStats() const { return lastStats_; }

  /// The submit epoch that last recomputed `name`'s summary (0 if the unit
  /// is unknown). Lifecycle tests assert transitive invalidation through
  /// this: an edited leaf bumps its own and every transitive caller's
  /// epoch while siblings keep theirs.
  std::uint64_t summaryEpochOf(const std::string& name) const;

 private:
  /// One fingerprinted procedure unit and its cached analysis state.
  struct CachedLoop {
    int line = 0;
    LoopClass classification = LoopClass::Serial;
    std::string procName;
    std::string report;
    std::string provenance;
  };
  struct Unit {
    Fingerprint fp = 0;
    std::uint64_t summaryEpoch = 0;  ///< submit that last recomputed it
    std::set<std::string> deps;      ///< callees folded in at SUM_call
    std::map<std::string, std::uint64_t> calleeEpochs;  ///< deps' epochs then
    std::vector<CachedLoop> loops;   ///< walk-order loop reports
  };

  /// Hash of the ablation-relevant options (everything that changes
  /// analysis results; numThreads/cacheCapacity deliberately excluded —
  /// the driver guarantees identical results across both).
  static std::uint64_t optionsKey(const AnalysisOptions& options);

  void resetState();

  AnalysisOptions options_;
  std::uint64_t optionsKey_ = 0;
  /// The options key units_ was computed under; a mismatch at submit time
  /// (setOptions changed an ablation-relevant knob) forces full invalidation.
  std::uint64_t unitsOptionsKey_ = 0;
  std::uint64_t epoch_ = 0;
  SessionStats lastStats_;

  // Live analysis state of the current epoch. `analyzer_` references
  // program_/sema_/hsg_ and must be destroyed before they are replaced.
  bool live_ = false;
  Program program_;
  SemaResult sema_;
  Hsg hsg_;
  std::unique_ptr<SummaryAnalyzer> analyzer_;
  std::unique_ptr<ThreadPool> pool_;

  std::map<std::string, Unit> units_;
};

/// Publishes the submit's counters as `session.*` metrics in the global
/// registry (dirty-cone size, summaries reused vs recomputed, ...).
void publishSessionMetrics(const SessionStats& stats);

/// Human-readable stats block for panorama_driver --reanalyze --stats.
std::string formatSessionStats(const SessionStats& stats);

/// Converts a submit's stats into the obs-layer reuse record a CostProfile
/// embeds (the profile subsystem sits below the session and cannot name
/// SessionStats itself).
obs::SessionReuse sessionReuseFor(const SessionStats& stats);

}  // namespace panorama
