      program fig1b
      real q(100, 4)
      common /f1b/ q
      integer jlow, jup, jmax
      logical p
      jlow = 3
      jup = 40
      jmax = 41
      p = .false.
      call filer(jlow, jup, jmax, p)
      end

      subroutine filer(jlow, jup, jmax, p)
      integer jlow, jup, jmax
      logical p
      real q(100, 4)
      common /f1b/ q
      real a(100)
      do i = 1, 4
        do j = jlow, jup
          a(j) = j * i
        enddo
        if (.not. p) then
          a(jmax) = i
        endif
        do j = jlow, jup
          q(j, i) = a(j) + a(jmax)
        enddo
      enddo
      end
