      program ocean4
      real grid(80, 80)
      common /oc4/ grid
      integer n, m
      n = 40
      m = 24
      call ocean480(n, m)
      end

      subroutine ocean480(n, m)
      integer n, m
      real grid(80, 80)
      common /oc4/ grid
      real cwork(80), cwork2(80)
      real sc
      do 480 i = 1, n
        sc = i * 1.0
        call ftr4(cwork, cwork2, sc, m)
        call str4(cwork, cwork2, sc, m, i)
 480  continue
      end

      subroutine ftr4(b, b2, sc, mm)
      real b(80), b2(80)
      real sc
      integer mm
      if (sc .gt. 70.0) return
      do j = 1, mm
        b(j) = sc + j
        b2(j) = sc - j
      enddo
      end

      subroutine str4(b, b2, sc, mm, ii)
      real b(80), b2(80)
      real sc
      integer mm, ii
      real grid(80, 80)
      common /oc4/ grid
      if (sc .gt. 70.0) return
      do j = 1, mm
        grid(ii, j) = b(j) * b2(j)
      enddo
      end
