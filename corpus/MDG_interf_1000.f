      program mdg
      real res(100)
      common /md/ res
      integer nmol1, n14
      real cut2
      nmol1 = 40
      n14 = 12
      cut2 = 50.0
      call interf(nmol1, n14, cut2)
      end

      subroutine interf(nmol1, n14, cut2)
      integer nmol1, n14
      real cut2
      real res(100)
      common /md/ res
      real rs(20), ff(20), gg(20), xl(20), yl(20), zl(20), rl(20)
      integer kc
      real ttemp
      do 1000 i = 1, nmol1
        call dists(rs, xl, yl, zl, n14, i)
        call forces(ff, gg, xl, yl, zl, n14, cut2)
        kc = 0
        do k = 1, 9
          if (rs(k) .gt. cut2) kc = kc + 1
        enddo
        do 2 k = 2, 5
          if (rs(k + 4) .gt. cut2) goto 2
          rl(k + 4) = rs(k + 4) * 0.5
 2      continue
        if (kc .ne. 0) goto 3
        do k = 11, 14
          ttemp = rl(k - 5) + rs(k - 5)
          res(i) = res(i) + ttemp
        enddo
 3      continue
        do k = 1, n14
          res(i) = res(i) + ff(k)
        enddo
 1000 continue
      end

      subroutine dists(rs, xl, yl, zl, nn, ii)
      real rs(20), xl(20), yl(20), zl(20)
      integer nn, ii
      do k = 1, 20
        rs(k) = k + ii * 2
      enddo
      do k = 1, nn
        xl(k) = k + ii
        yl(k) = k * 2
        zl(k) = k - ii
      enddo
      end

      subroutine forces(ff, gg, xl, yl, zl, nn, cut2)
      real ff(20), gg(20), xl(20), yl(20), zl(20)
      integer nn
      real cut2
      if (cut2 .gt. 10.0) then
        do k = 1, nn
          gg(k) = xl(k) * 0.5
        enddo
      endif
      do k = 1, nn
        ff(k) = xl(k) + yl(k) + zl(k)
        if (cut2 .gt. 10.0) then
          ff(k) = ff(k) + gg(k)
        endif
      enddo
      end
