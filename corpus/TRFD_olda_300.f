      program trfd3
      real v(64, 64)
      common /t3/ v
      integer num, morb
      num = 36
      morb = 20
      call olda3(num, morb)
      end

      subroutine olda3(num, morb)
      integer num, morb
      real v(64, 64)
      common /t3/ v
      real xijks(64), xkl(64)
      do 300 i = 1, num
        do k = 1, morb
          xkl(k) = v(i, k) + 2.0
        enddo
        do k = 1, morb
          xijks(k) = xkl(k) * v(i, k)
        enddo
        do k = 1, morb
          v(i, k) = xijks(k)
        enddo
 300  continue
      end
