      program track
      real xt(4, 64), pr(64)
      common /tk/ xt, pr
      integer nu
      nu = 48
      call nlfilt(nu)
      end

      subroutine nlfilt(nu)
      integer nu
      real xt(4, 64), pr(64)
      common /tk/ xt, pr
      real p1(4), p2(4), p(4), pp1(16), pp2(16), pp(16), xsd(4)
      do 300 i = 1, nu
        call predc(p1, p2, i)
        call predp(pp1, pp2, i)
        call combo(p, pp, p1, p2, pp1, pp2)
        call fsim(xsd, p, pp, i)
        pr(i) = xsd(1) + xsd(2) + xsd(3) + xsd(4)
        xt(1, i) = p(1) + pp(1)
 300  continue
      end

      subroutine predc(q1, q2, ii)
      real q1(4), q2(4)
      integer ii
      do k = 1, 4
        q1(k) = k * ii
        q2(k) = k + ii
      enddo
      end

      subroutine predp(qq1, qq2, ii)
      real qq1(16), qq2(16)
      integer ii
      do k = 1, 16
        qq1(k) = k * ii
        qq2(k) = k - ii
      enddo
      end

      subroutine combo(p, pp, p1, p2, pp1, pp2)
      real p(4), pp(16), p1(4), p2(4), pp1(16), pp2(16)
      do k = 1, 4
        p(k) = p1(k) + p2(k)
      enddo
      do k = 1, 16
        pp(k) = pp1(k) * pp2(k)
      enddo
      end

      subroutine fsim(xsd, p, pp, ii)
      real xsd(4), p(4), pp(16)
      integer ii
      do k = 1, 4
        xsd(k) = p(k) + pp(4*k - 3) + ii
      enddo
      end
