      program fig1a
      real res(64)
      common /f1a/ res
      integer nmol1
      real cut2
      nmol1 = 24
      cut2 = 12.0
      call interf(nmol1, cut2)
      end

      subroutine interf(nmol1, cut2)
      integer nmol1
      real cut2
      real res(64)
      common /f1a/ res
      real a(20), b(20)
      integer kc
      real ttemp
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k + i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          ttemp = a(k - 5) * 0.5
          res(i) = res(i) + ttemp
        enddo
 2      continue
      enddo
      end
