      program trfd1
      real x(64, 64)
      common /t1/ x
      integer nrs, mrs
      nrs = 40
      mrs = 24
      call olda1(nrs, mrs)
      end

      subroutine olda1(nrs, mrs)
      integer nrs, mrs
      real x(64, 64)
      common /t1/ x
      real xrsiq(64), xij(64)
      do 100 i = 1, nrs
        do j = 1, mrs
          xrsiq(j) = x(i, j) * 2.0
        enddo
        do j = 1, mrs
          xij(j) = xrsiq(j) + 1.0
        enddo
        do j = 1, mrs
          x(i, j) = xij(j)
        enddo
 100  continue
      end
