      program arcsx
      real q(100, 100), s(100, 100)
      common /asx/ q, s
      integer jlow, jup, kup
      jlow = 2
      jup = 52
      kup = 34
      call stepfx(jlow, jup, kup)
      end

      subroutine stepfx(jlow, jup, kup)
      integer jlow, jup, kup
      real q(100, 100), s(100, 100)
      common /asx/ q, s
      real work(100)
      do 300 k = 1, kup
        call filtx(work, jlow, jup, k)
        do j = jlow, jup
          s(j, k) = work(j)
        enddo
 300  continue
      end

      subroutine filtx(w, jl, ju, k)
      real w(100)
      integer jl, ju, k
      real q(100, 100), s(100, 100)
      common /asx/ q, s
      do j = jl, ju
        w(j) = q(j, k) * 0.25
      enddo
      end
