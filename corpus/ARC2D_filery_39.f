      program arcfy
      real q(100, 100)
      common /afy/ q
      integer jlow, jup, kup
      jlow = 2
      jup = 56
      kup = 36
      call filery(jlow, jup, kup)
      end

      subroutine filery(jlow, jup, kup)
      integer jlow, jup, kup
      real q(100, 100)
      common /afy/ q
      real work(100)
      do 39 k = 1, kup
        do j = jlow, jup
          work(j) = q(j, k) * 0.125
        enddo
        do j = jlow, jup
          q(j, k) = work(j) + q(j, k)
        enddo
 39   continue
      end
