      program ocean2
      real grid(80, 80)
      common /oc/ grid
      integer n, m
      n = 44
      m = 28
      call ocean270(n, m)
      end

      subroutine ocean270(n, m)
      integer n, m
      real grid(80, 80)
      common /oc/ grid
      real cwork(80)
      real sc
      do 270 i = 1, n
        sc = i * 1.0
        call ftrvmt(cwork, sc, m)
        call rstore(cwork, sc, m, i)
 270  continue
      end

      subroutine ftrvmt(b, sc, mm)
      real b(80)
      real sc
      integer mm
      if (sc .gt. 75.0) return
      do j = 1, mm
        b(j) = sc + j
      enddo
      end

      subroutine rstore(b, sc, mm, ii)
      real b(80)
      real sc
      integer mm, ii
      real grid(80, 80)
      common /oc/ grid
      if (sc .gt. 75.0) return
      do j = 1, mm
        grid(ii, j) = b(j)
      enddo
      end
