      program arcfx
      real q(100, 100)
      common /afx/ q
      integer jlow, jup, jmax, kup
      logical per
      jlow = 2
      jup = 60
      jmax = 61
      kup = 40
      per = .false.
      call filerx(jlow, jup, jmax, kup, per)
      end

      subroutine filerx(jlow, jup, jmax, kup, per)
      integer jlow, jup, jmax, kup
      logical per
      real q(100, 100)
      common /afx/ q
      real work(100)
      do 15 k = 1, kup
        do j = jlow, jup
          work(j) = q(j, k) * 0.25
        enddo
        if (.not. per) then
          work(jmax) = q(jmax, k) * 0.5
        endif
        do j = jlow, jup
          q(j, k) = work(j) + work(jmax)
        enddo
 15   continue
      end
