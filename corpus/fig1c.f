      program fig1c
      real store(64, 64)
      common /f1c/ store
      integer n, m
      n = 32
      m = 20
      call drive(n, m)
      end

      subroutine drive(n, m)
      integer n, m
      real store(64, 64)
      common /f1c/ store
      real a(64)
      real x
      do i = 1, n
        x = i * 1.0
        call in(a, x, m)
        call out(a, x, m, i)
      enddo
      end

      subroutine in(b, x, mm)
      real b(64)
      real x
      integer mm
      if (x .gt. 50.0) return
      do j = 1, mm
        b(j) = x + j
      enddo
      end

      subroutine out(b, x, mm, ii)
      real b(64)
      real x
      integer mm, ii
      real store(64, 64)
      common /f1c/ store
      if (x .gt. 50.0) return
      do j = 1, mm
        store(ii, j) = b(j)
      enddo
      end
