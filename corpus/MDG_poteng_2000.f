      program mdgp
      real epot(128)
      common /mp/ epot
      integer nmol
      nmol = 56
      call poteng(nmol)
      end

      subroutine poteng(nmol)
      integer nmol
      real epot(128)
      common /mp/ epot
      real rs(30), rl(30), xl(30), yl(30), zl(30)
      do 2000 i = 1, nmol
        call pairs(rs, rl, xl, yl, zl, i)
        call accum(rs, rl, xl, yl, zl, i)
 2000 continue
      end

      subroutine pairs(rs, rl, xl, yl, zl, ii)
      real rs(30), rl(30), xl(30), yl(30), zl(30)
      integer ii
      do k = 1, 30
        xl(k) = k + ii
        yl(k) = k * 2 + ii
        zl(k) = k - ii
        rs(k) = xl(k) + yl(k)
        rl(k) = rs(k) + zl(k)
      enddo
      end

      subroutine accum(rs, rl, xl, yl, zl, ii)
      real rs(30), rl(30), xl(30), yl(30), zl(30)
      integer ii
      real epot(128)
      common /mp/ epot
      do k = 1, 30
        epot(ii) = epot(ii) + rs(k) + rl(k) + xl(k) + yl(k) + zl(k)
      enddo
      end
