      program ocean5
      real acc(80, 80)
      common /oc5/ acc
      integer n, m
      n = 44
      m = 26
      call ocean500(n, m)
      end

      subroutine ocean500(n, m)
      integer n, m
      real acc(80, 80)
      common /oc5/ acc
      real cwork(80)
      real sc
      do 500 i = 1, n
        sc = i * 2.0
        call csh(cwork, sc, m)
        call cuse(cwork, sc, m, i)
 500  continue
      end

      subroutine csh(b, sc, mm)
      real b(80)
      real sc
      integer mm
      if (sc .gt. 160.0) return
      do j = 1, mm
        b(j) = sc * j
      enddo
      end

      subroutine cuse(b, sc, mm, ii)
      real b(80)
      real sc
      integer mm, ii
      real acc(80, 80)
      common /oc5/ acc
      if (sc .gt. 160.0) return
      do j = 1, mm
        acc(ii, j) = b(j) + 1.0
      enddo
      end
