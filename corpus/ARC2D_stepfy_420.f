      program arcsy
      real q(100, 100), s(100, 100)
      common /asy/ q, s
      integer klow, kup, jup
      klow = 2
      kup = 48
      jup = 30
      call stepfy(klow, kup, jup)
      end

      subroutine stepfy(klow, kup, jup)
      integer klow, kup, jup
      real q(100, 100), s(100, 100)
      common /asy/ q, s
      real work(100)
      do 420 j = 1, jup
        call filty(work, klow, kup, j)
        do k = klow, kup
          s(j, k) = work(k) + s(j, k)
        enddo
 420  continue
      end

      subroutine filty(w, kl, ku, j)
      real w(100)
      integer kl, ku, j
      real q(100, 100), s(100, 100)
      common /asy/ q, s
      do k = kl, ku
        w(k) = q(j, k) * 0.5
      enddo
      end
