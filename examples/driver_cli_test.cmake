# CLI contract of panorama_driver's observability flags, run as a ctest:
#   * an unwritable --trace/--metrics/--profile path fails the run with a
#     clear diagnostic and a non-zero exit (a silent partial run is worse
#     than no run);
#   * a good run writes all three artifacts, and the profile is the §4.5
#     cost-profile schema;
#   * --annotate no longer drops the artifacts on the early-return path.
# Invoked with -DDRIVER=<path> -DWORKDIR=<scratch dir>.

file(MAKE_DIRECTORY "${WORKDIR}")
set(BAD "${WORKDIR}/no-such-dir/out.json")

function(expect_failure flag diagnostic)
  execute_process(
    COMMAND "${DRIVER}" --corpus-run "${flag}=${BAD}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "${flag}=${BAD} exited 0; expected a failure")
  endif()
  if(NOT err MATCHES "${diagnostic}")
    message(FATAL_ERROR "${flag} failure lacks diagnostic '${diagnostic}': ${err}")
  endif()
endfunction()

expect_failure(--trace "cannot write trace file")
expect_failure(--metrics "cannot write metrics file")
expect_failure(--profile "cannot write profile file")
expect_failure(--dump-ir "cannot write IR dump file")

# The happy path: one corpus run, all three artifacts.
execute_process(
  COMMAND "${DRIVER}" --corpus-run
          --trace=${WORKDIR}/trace.json
          --metrics=${WORKDIR}/metrics.json
          --profile=${WORKDIR}/profile.json
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "corpus run with artifacts failed (${code}): ${err}")
endif()
foreach(artifact trace.json metrics.json profile.json)
  if(NOT EXISTS "${WORKDIR}/${artifact}")
    message(FATAL_ERROR "corpus run did not write ${artifact}")
  endif()
endforeach()
file(READ "${WORKDIR}/profile.json" profile)
if(NOT profile MATCHES "\"schema_version\": 1")
  message(FATAL_ERROR "profile.json is not the cost-profile schema: ${profile}")
endif()
if(NOT profile MATCHES "\"top_queries\"")
  message(FATAL_ERROR "profile.json lacks the top_queries section")
endif()

# --annotate used to return before the artifact writes; it must both fail on
# a bad path and write on a good one.
file(WRITE "${WORKDIR}/tiny.f"
"      program main
      real a(10)
      do i = 1, 10
        a(i) = 0.0
      enddo
      end
")
execute_process(
  COMMAND "${DRIVER}" --annotate "--trace=${BAD}" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "--annotate with unwritable --trace exited 0")
endif()
execute_process(
  COMMAND "${DRIVER}" --annotate "--trace=${WORKDIR}/annotate-trace.json" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--annotate with writable --trace failed (${code}): ${err}")
endif()
if(NOT EXISTS "${WORKDIR}/annotate-trace.json")
  message(FATAL_ERROR "--annotate dropped the --trace artifact")
endif()

# --dump-ir writes the frontend-neutral IR for a single-file run.
execute_process(
  COMMAND "${DRIVER}" "--dump-ir=${WORKDIR}/tiny.ir" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--dump-ir on tiny.f failed (${code}): ${err}")
endif()
if(NOT EXISTS "${WORKDIR}/tiny.ir")
  message(FATAL_ERROR "--dump-ir did not write the IR dump")
endif()
file(READ "${WORKDIR}/tiny.ir" ir)
if(NOT ir MATCHES "program main" OR NOT ir MATCHES "loop i")
  message(FATAL_ERROR "IR dump lacks the program/loop structure: ${ir}")
endif()

# The C-like frontend is dispatched by extension and reaches the same
# pipeline (classification in the report proves the analysis ran).
file(WRITE "${WORKDIR}/tiny.cl"
"main tiny() {
  const n = 10;
  int i;
  real a[10];
  for (i = 1 to n) {
    a[i] = 0.0;
  }
}
")
execute_process(
  COMMAND "${DRIVER}" "${WORKDIR}/tiny.cl"
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "C-like driver run failed (${code}): ${err}")
endif()
if(NOT out MATCHES "parallel")
  message(FATAL_ERROR "C-like driver run produced no classification: ${out}")
endif()

# ---- service-mode flags (DESIGN.md §4.8) ----
# Strict validation: unwritable/unreadable session paths and bad --daemon
# arguments exit non-zero with a clear diagnostic.

execute_process(
  COMMAND "${DRIVER}" "--save-session=${WORKDIR}/no-such-dir/s.pano" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "--save-session into a missing directory exited 0")
endif()
if(NOT err MATCHES "cannot save session")
  message(FATAL_ERROR "--save-session failure lacks its diagnostic: ${err}")
endif()

execute_process(
  COMMAND "${DRIVER}" "--load-session=${WORKDIR}/never-written.pano" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "--load-session of a missing snapshot exited 0")
endif()
if(NOT err MATCHES "cannot load session")
  message(FATAL_ERROR "--load-session failure lacks its diagnostic: ${err}")
endif()

# A corrupted snapshot is rejected with the store's structured diagnostic.
file(WRITE "${WORKDIR}/garbage.pano" "this is not a session snapshot")
execute_process(
  COMMAND "${DRIVER}" "--load-session=${WORKDIR}/garbage.pano" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "--load-session of garbage exited 0")
endif()
if(NOT err MATCHES "not a panorama session snapshot|truncated snapshot")
  message(FATAL_ERROR "garbage snapshot rejection lacks the store diagnostic: ${err}")
endif()

foreach(flag --daemon= --save-session= --load-session=)
  execute_process(
    COMMAND "${DRIVER}" "${flag}" "${WORKDIR}/tiny.f"
    RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "empty ${flag} exited 0")
  endif()
endforeach()

# --daemon refuses to clobber an existing non-socket file.
execute_process(
  COMMAND "${DRIVER}" "--daemon=${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "--daemon over an existing regular file exited 0")
endif()
if(NOT err MATCHES "is not a socket")
  message(FATAL_ERROR "--daemon clobber refusal lacks its diagnostic: ${err}")
endif()

# Save/load round trip: the snapshot-mode runs print exactly what the batch
# run prints, cold and restored alike.
execute_process(
  COMMAND "${DRIVER}" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE batch_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "batch run of tiny.f failed (${code}): ${err}")
endif()
execute_process(
  COMMAND "${DRIVER}" "--save-session=${WORKDIR}/tiny.pano" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE save_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--save-session run failed (${code}): ${err}")
endif()
if(NOT EXISTS "${WORKDIR}/tiny.pano")
  message(FATAL_ERROR "--save-session did not write the snapshot")
endif()
execute_process(
  COMMAND "${DRIVER}" "--load-session=${WORKDIR}/tiny.pano" "${WORKDIR}/tiny.f"
  RESULT_VARIABLE code OUTPUT_VARIABLE load_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--load-session run failed (${code}): ${err}")
endif()
if(NOT save_out STREQUAL batch_out)
  message(FATAL_ERROR "--save-session output diverges from the batch run:\n${save_out}\n-- vs --\n${batch_out}")
endif()
if(NOT load_out STREQUAL batch_out)
  message(FATAL_ERROR "--load-session output diverges from the batch run:\n${load_out}\n-- vs --\n${batch_out}")
endif()
