# End-to-end smoke of the analysis service (DESIGN.md §4.8), run as a ctest:
#   * `panorama_driver --daemon=SOCKET` comes up and answers ping;
#   * a client submit prints byte-for-byte what the batch driver prints for
#     the same file;
#   * a byte-identical resubmit into the same named session is served by the
#     whole-file fast path (the --stats block records the skip);
#   * a client shutdown request stops the daemon and removes the socket.
# Invoked with -DDRIVER=<path> -DCLIENT=<path> -DWORKDIR=<scratch dir>.

file(MAKE_DIRECTORY "${WORKDIR}")

# AF_UNIX socket paths are limited to ~107 bytes; the build tree's path can
# exceed that, so the socket lives in /tmp under a random name.
string(RANDOM LENGTH 8 ALPHABET abcdefghijklmnopqrstuvwxyz rand)
set(SOCK "/tmp/pano_smoke_${rand}.sock")

set(SRC "${WORKDIR}/smoke.f")
file(WRITE "${SRC}"
"      subroutine smoke(a, b, n)
      integer n
      real a(n), b(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 2.0
        b(i) = t(i) + 1.0
      enddo
      end
")

function(stop_daemon)
  execute_process(COMMAND "${CLIENT}" "${SOCK}" shutdown
                  RESULT_VARIABLE ignored OUTPUT_QUIET ERROR_QUIET)
endfunction()

# Reference: the batch driver's report.
execute_process(
  COMMAND "${DRIVER}" "${SRC}"
  RESULT_VARIABLE code OUTPUT_VARIABLE batch_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "batch run failed (${code}): ${err}")
endif()

# Start the daemon in the background and wait for it to answer ping.
execute_process(
  COMMAND sh -c "exec '${DRIVER}' --daemon='${SOCK}' > '${WORKDIR}/daemon.log' 2>&1 &"
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "could not launch the daemon (${code})")
endif()
set(up FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND "${CLIENT}" "${SOCK}" ping
                  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
  if(code EQUAL 0)
    set(up TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT up)
  file(READ "${WORKDIR}/daemon.log" log)
  message(FATAL_ERROR "daemon never answered ping: ${log}")
endif()

# Client submit == batch driver, byte for byte. --name sets the report
# heading to the same input name the batch run printed.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" submit "${SRC}" "--name=${SRC}" --session=ci
  RESULT_VARIABLE code OUTPUT_VARIABLE client_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client submit failed (${code}): ${err}")
endif()
if(NOT client_out STREQUAL batch_out)
  stop_daemon()
  message(FATAL_ERROR "client report diverges from the batch driver:\n${client_out}\n-- vs --\n${batch_out}")
endif()

# Byte-identical resubmit into the same named session: served without
# re-parsing or diffing, and the stats block says so.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" submit "${SRC}" "--name=${SRC}" --session=ci --stats
  RESULT_VARIABLE code OUTPUT_VARIABLE resubmit_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client resubmit failed (${code}): ${err}")
endif()
if(NOT resubmit_out MATCHES "file skips: 1")
  stop_daemon()
  message(FATAL_ERROR "resubmit did not ride the whole-file fast path:\n${resubmit_out}")
endif()

# Shutdown: the daemon acknowledges, exits, and unlinks its socket.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" shutdown
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "client shutdown failed (${code}): ${err}")
endif()
set(gone FALSE)
foreach(attempt RANGE 100)
  if(NOT EXISTS "${SOCK}")
    set(gone TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT gone)
  message(FATAL_ERROR "daemon did not remove its socket after shutdown")
endif()
