# End-to-end smoke of the analysis service (DESIGN.md §4.8/§4.10), run as a
# ctest:
#   * `panorama_driver --daemon=SOCKET` comes up and answers ping;
#   * a client submit prints byte-for-byte what the batch driver prints for
#     the same file;
#   * a byte-identical resubmit into the same named session is served by the
#     whole-file fast path (the --stats block records the skip);
#   * the telemetry plane answers: `status` reports the named session,
#     `metrics` carries the submit latency histograms, `tail` streams the
#     submit_begin/submit_end events, and `panorama_top --once --json`
#     round-trips all three against the live daemon;
#   * telemetry flags without --daemon are a usage error (exit 2);
#   * a client shutdown request stops the daemon and removes the socket.
# Invoked with -DDRIVER=<path> -DCLIENT=<path> -DTOP=<path>
# -DWORKDIR=<scratch dir>.

file(MAKE_DIRECTORY "${WORKDIR}")

# AF_UNIX socket paths are limited to ~107 bytes; the build tree's path can
# exceed that, so the socket lives in /tmp under a random name.
string(RANDOM LENGTH 8 ALPHABET abcdefghijklmnopqrstuvwxyz rand)
set(SOCK "/tmp/pano_smoke_${rand}.sock")

set(SRC "${WORKDIR}/smoke.f")
file(WRITE "${SRC}"
"      subroutine smoke(a, b, n)
      integer n
      real a(n), b(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 2.0
        b(i) = t(i) + 1.0
      enddo
      end
")

function(stop_daemon)
  execute_process(COMMAND "${CLIENT}" "${SOCK}" shutdown
                  RESULT_VARIABLE ignored OUTPUT_QUIET ERROR_QUIET)
endfunction()

# Reference: the batch driver's report.
execute_process(
  COMMAND "${DRIVER}" "${SRC}"
  RESULT_VARIABLE code OUTPUT_VARIABLE batch_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "batch run failed (${code}): ${err}")
endif()

# Start the daemon in the background and wait for it to answer ping.
execute_process(
  COMMAND sh -c "exec '${DRIVER}' --daemon='${SOCK}' > '${WORKDIR}/daemon.log' 2>&1 &"
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "could not launch the daemon (${code})")
endif()
set(up FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND "${CLIENT}" "${SOCK}" ping
                  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
  if(code EQUAL 0)
    set(up TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT up)
  file(READ "${WORKDIR}/daemon.log" log)
  message(FATAL_ERROR "daemon never answered ping: ${log}")
endif()

# Client submit == batch driver, byte for byte. --name sets the report
# heading to the same input name the batch run printed.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" submit "${SRC}" "--name=${SRC}" --session=ci
  RESULT_VARIABLE code OUTPUT_VARIABLE client_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client submit failed (${code}): ${err}")
endif()
if(NOT client_out STREQUAL batch_out)
  stop_daemon()
  message(FATAL_ERROR "client report diverges from the batch driver:\n${client_out}\n-- vs --\n${batch_out}")
endif()

# Byte-identical resubmit into the same named session: served without
# re-parsing or diffing, and the stats block says so.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" submit "${SRC}" "--name=${SRC}" --session=ci --stats
  RESULT_VARIABLE code OUTPUT_VARIABLE resubmit_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client resubmit failed (${code}): ${err}")
endif()
if(NOT resubmit_out MATCHES "file skips: 1")
  stop_daemon()
  message(FATAL_ERROR "resubmit did not ride the whole-file fast path:\n${resubmit_out}")
endif()

# The telemetry plane, over a fresh connection. `status` sees the named
# session: one analyzed epoch plus the fast-path skip the resubmit took.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" status --timeout-ms=5000
  RESULT_VARIABLE code OUTPUT_VARIABLE status_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client status failed (${code}): ${err}")
endif()
if(NOT status_out MATCHES "\"name\":\"ci\"")
  stop_daemon()
  message(FATAL_ERROR "status does not report the named session:\n${status_out}")
endif()
if(NOT status_out MATCHES "\"epoch\":1" OR NOT status_out MATCHES "\"file_skips\":1")
  stop_daemon()
  message(FATAL_ERROR "status session counters are off:\n${status_out}")
endif()
if(NOT status_out MATCHES "\"submits\":2")
  stop_daemon()
  message(FATAL_ERROR "status does not count both submits:\n${status_out}")
endif()

# `metrics` carries the per-op submit latency histograms with quantiles.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" metrics --timeout-ms=5000
  RESULT_VARIABLE code OUTPUT_VARIABLE metrics_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client metrics failed (${code}): ${err}")
endif()
if(NOT metrics_out MATCHES "daemon.op.submit.wall_us")
  stop_daemon()
  message(FATAL_ERROR "metrics lacks the submit wall histogram:\n${metrics_out}")
endif()
if(NOT metrics_out MATCHES "\"p95\"")
  stop_daemon()
  message(FATAL_ERROR "metrics histograms lack quantiles:\n${metrics_out}")
endif()

# `tail` streams the structured event log: both submits left begin/end
# records tagged with the session name.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" tail --max=1000 --timeout-ms=5000
  RESULT_VARIABLE code OUTPUT_VARIABLE tail_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "client tail failed (${code}): ${err}")
endif()
if(NOT tail_out MATCHES "submit_end")
  stop_daemon()
  message(FATAL_ERROR "tail has no submit_end event:\n${tail_out}")
endif()
if(NOT tail_out MATCHES "\"session\":\"ci\"")
  stop_daemon()
  message(FATAL_ERROR "tail events are not tagged with the session:\n${tail_out}")
endif()

# The dashboard's machine mode round-trips status+metrics+tail in one doc.
execute_process(
  COMMAND "${TOP}" "${SOCK}" --once --json --timeout-ms=5000
  RESULT_VARIABLE code OUTPUT_VARIABLE top_out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  stop_daemon()
  message(FATAL_ERROR "panorama_top --once --json failed (${code}): ${err}")
endif()
foreach(needle "\"status\":" "\"metrics\":" "\"tail\":" "uptime_ms" "daemon.op.submit.wall_us")
  if(NOT top_out MATCHES "${needle}")
    stop_daemon()
    message(FATAL_ERROR "panorama_top json lacks ${needle}:\n${top_out}")
  endif()
endforeach()

# Telemetry flags are daemon-only: without --daemon the driver refuses
# with a usage error instead of silently ignoring them.
execute_process(
  COMMAND "${DRIVER}" "${SRC}" --slow-ms=10
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  stop_daemon()
  message(FATAL_ERROR "--slow-ms without --daemon should exit 2, got ${code}")
endif()

# Shutdown: the daemon acknowledges, exits, and unlinks its socket.
execute_process(
  COMMAND "${CLIENT}" "${SOCK}" shutdown
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "client shutdown failed (${code}): ${err}")
endif()
set(gone FALSE)
foreach(attempt RANGE 100)
  if(NOT EXISTS "${SOCK}")
    set(gone TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT gone)
  message(FATAL_ERROR "daemon did not remove its socket after shutdown")
endif()
