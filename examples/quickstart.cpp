// Quickstart: feed a small Fortran subroutine through the whole pipeline —
// parse, semantic analysis, HSG, GAR summaries, privatization — and print
// what the analyzer concluded.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "panorama/analysis/analysis.h"
#include "panorama/frontend/parser.h"

using namespace panorama;

int main() {
  // The classic privatization pattern: `work` is a scratch array rewritten
  // by every iteration of the outer loop before being consumed.
  const char* source = R"(
      subroutine smooth(field, work, n, m)
      real field(100, 100), work(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          work(j) = field(j, i) * 0.25
        enddo
        do j = 1, m
          field(j, i) = work(j) + field(j, i)
        enddo
      enddo
      end
  )";

  DiagnosticEngine diags;
  auto program = parseProgram(source, diags);
  if (!program) {
    std::fprintf(stderr, "parse error:\n%s", diags.str().c_str());
    return 1;
  }
  auto sema = analyze(*program, diags);
  if (!sema) {
    std::fprintf(stderr, "semantic error:\n%s", diags.str().c_str());
    return 1;
  }
  Hsg hsg = buildHsg(*program, *sema, diags);

  SummaryAnalyzer analyzer(*program, *sema, hsg, AnalysisOptions{});
  LoopParallelizer parallelizer(analyzer);
  std::vector<LoopAnalysis> loops = parallelizer.analyzeProgram();

  std::printf("Analysis of subroutine `smooth`\n");
  std::printf("===============================\n\n");
  for (const LoopAnalysis& la : loops)
    std::printf("%s\n", formatLoopAnalysis(la).c_str());

  // The per-loop symbolic summaries are available too:
  const Procedure* proc = program->findProcedure("smooth");
  for (const StmtPtr& s : proc->body) {
    if (s->kind != Stmt::Kind::Do) continue;
    const LoopSummary* ls = analyzer.loopSummary(s.get());
    std::printf("Per-iteration summaries of the outer loop:\n");
    std::printf("  MOD_i  = %s\n", ls->modIter.str(sema->symbols, sema->arrays).c_str());
    std::printf("  UE_i   = %s\n", ls->ueIter.str(sema->symbols, sema->arrays).c_str());
    std::printf("  MOD_<i = %s\n", ls->modBefore.str(sema->symbols, sema->arrays).c_str());
  }
  return 0;
}
