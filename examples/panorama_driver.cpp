// A command-line driver — the closest thing to running the original
// Panorama analyzer: read a Fortran file (or a built-in corpus kernel),
// analyze it, and print the parallelization report.
//
//   panorama_driver file.f                analyze a file
//   panorama_driver --corpus              list built-in kernels
//   panorama_driver --corpus NAME         analyze a built-in kernel
//   flags: --no-symbolic --no-if-conditions --no-interprocedural
//          --quantified --summaries --hsg
//          --threads=N --no-cache --stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "panorama/analysis/analysis.h"
#include "panorama/analysis/driver.h"
#include "panorama/codegen/annotate.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"
#include "panorama/predicate/arena.h"
#include "panorama/symbolic/arena.h"

using namespace panorama;

namespace {

void printArenaStats() {
  ExprArena::Stats es = ExprArena::global().stats();
  PredArena::Stats ps = PredArena::global().stats();
  std::printf("expr arena: %zu distinct exprs, %zu bytes, shard occupancy %zu..%zu\n",
              es.distinct, es.bytes, es.minShard, es.maxShard);
  std::printf("pred arena: %zu distinct preds, %zu bytes, shard occupancy %zu..%zu\n",
              ps.distinct, ps.bytes, ps.minShard, ps.maxShard);
}

int usage() {
  std::fprintf(stderr,
               "usage: panorama_driver [flags] <file.f>\n"
               "       panorama_driver --corpus [NAME]\n"
               "flags: --no-symbolic --no-if-conditions --no-interprocedural\n"
               "       --quantified --summaries --hsg --annotate\n"
               "       --threads=N (0 = all cores) --no-cache --stats\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  AnalysisOptions options;
  options.numThreads = 1;  // interactive default: the serial driver
  bool showSummaries = false;
  bool showHsg = false;
  bool annotateOutput = false;
  bool showStats = false;
  std::string source;
  std::string inputName;

  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg == "--no-symbolic") {
      options.symbolicAnalysis = false;
    } else if (arg == "--no-if-conditions") {
      options.ifConditions = false;
    } else if (arg == "--no-interprocedural") {
      options.interprocedural = false;
    } else if (arg == "--quantified") {
      options.quantified = true;
    } else if (arg == "--summaries") {
      showSummaries = true;
    } else if (arg == "--hsg") {
      showHsg = true;
    } else if (arg == "--annotate") {
      annotateOutput = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.numThreads = std::strtoul(argv[k] + 10, nullptr, 10);
    } else if (arg == "--no-cache") {
      options.cacheCapacity = 0;
    } else if (arg == "--stats") {
      showStats = true;
    } else if (arg == "--corpus") {
      if (k + 1 >= argc) {
        for (const CorpusLoop& cl : perfectCorpus()) std::printf("%s\n", cl.id.c_str());
        std::printf("fig1a\nfig1b\nfig1c\n");
        return 0;
      }
      std::string_view name = argv[++k];
      if (name == "fig1a") source = fig1aSource();
      else if (name == "fig1b") source = fig1bSource();
      else if (name == "fig1c") source = fig1cSource();
      else
        for (const CorpusLoop& cl : perfectCorpus())
          if (cl.id.find(name) != std::string::npos) source = cl.source;
      if (source.empty()) {
        std::fprintf(stderr, "unknown corpus kernel '%s'\n", argv[k]);
        return 2;
      }
      inputName = name;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      std::ifstream in{std::string(arg)};
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[k]);
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
      inputName = arg;
    }
  }
  if (source.empty()) return usage();

  DiagnosticEngine diags;
  auto program = parseProgram(source, diags);
  if (!program) {
    std::fprintf(stderr, "%s: parse failed\n%s", inputName.c_str(), diags.str().c_str());
    return 1;
  }
  auto sema = analyze(*program, diags);
  if (!sema) {
    std::fprintf(stderr, "%s: semantic analysis failed\n%s", inputName.c_str(),
                 diags.str().c_str());
    return 1;
  }
  Hsg hsg = buildHsg(*program, *sema, diags);
  if (diags.hasErrors()) {
    std::fprintf(stderr, "%s", diags.str().c_str());
    return 1;
  }

  if (showHsg) {
    for (const Procedure& proc : program->procedures) {
      std::printf("---- HSG of %s ----\n%s\n", proc.name.c_str(),
                  hsg.of(proc).graph.str().c_str());
    }
  }

  QueryCache::global().configure(options.cacheCapacity);
  clearSimplifyMemo();
  ThreadPool pool(options.numThreads);
  SummaryAnalyzer analyzer(*program, *sema, hsg, options);
  std::vector<LoopAnalysis> loops = analyzeProgramParallel(analyzer, pool);

  if (annotateOutput) {
    std::printf("%s", emitParallelSource(*program, loops).c_str());
    return 0;
  }

  std::printf("%s: %zu loop(s)\n\n", inputName.c_str(), loops.size());
  for (const LoopAnalysis& la : loops) {
    std::printf("%s", formatLoopAnalysis(la, analyzer).c_str());
    if (showSummaries && la.loop) {
      const LoopSummary* ls = analyzer.loopSummary(la.loop);
      if (ls) {
        const SymbolTable& tab = sema->symbols;
        const ArrayTable& arrays = sema->arrays;
        std::printf("      MOD_i  = %s\n", ls->modIter.str(tab, arrays).c_str());
        std::printf("      UE_i   = %s\n", ls->ueIter.str(tab, arrays).c_str());
        std::printf("      DE_i   = %s\n", ls->deIter.str(tab, arrays).c_str());
        std::printf("      MOD_<i = %s\n", ls->modBefore.str(tab, arrays).c_str());
        std::printf("      MOD(L) = %s\n", ls->mod.str(tab, arrays).c_str());
        std::printf("      UE(L)  = %s\n", ls->ue.str(tab, arrays).c_str());
      }
    }
    std::printf("\n");
  }
  if (showStats) {
    SummaryStats s = analyzer.stats();
    std::printf("summary cost: %zu block steps, %zu loop expansions, %zu call mappings, "
                "peak list length %zu, %zu GARs created\n",
                s.blockSteps, s.loopExpansions, s.callMappings, s.peakListLength, s.garsCreated);
    std::printf("%s\n", formatQueryCacheStats(QueryCache::global().stats()).c_str());
    QueryCache::Stats m = simplifyMemoStats();
    std::printf("simplify memo: %zu hits / %zu misses, %zu entries, %zu evictions\n",
                static_cast<std::size_t>(m.hits), static_cast<std::size_t>(m.misses),
                static_cast<std::size_t>(m.entries), static_cast<std::size_t>(m.evictions));
    printArenaStats();
  }
  return 0;
}
