// A command-line driver — the closest thing to running the original
// Panorama analyzer: read a Fortran file (or a built-in corpus kernel),
// analyze it, and print the parallelization report.
//
//   panorama_driver file.f                analyze a file
//   panorama_driver --corpus              list built-in kernels
//   panorama_driver --corpus NAME         analyze a built-in kernel
//   panorama_driver --corpus-run          analyze the whole Table 1/2 corpus
//   panorama_driver file.f --reanalyze=EDITED.f
//                                         warm re-analysis: analyze file.f,
//                                         then re-submit EDITED.f through the
//                                         incremental session and report only
//                                         what the dirty cone recomputed
//   flags: --no-symbolic --no-if-conditions --no-interprocedural
//          --quantified --summaries --hsg
//          --threads=N --cache-capacity=N --no-cache --stats
//          --via-builder (parse -> builder IR round-trip -> analyze)
//   observability: --trace=FILE  (Chrome trace-event JSON, chrome://tracing)
//                  --metrics=FILE (unified metrics-registry JSON dump)
//                  --profile=FILE (hierarchical cost profile, DESIGN.md §4.5)
//                  --dump-ir=FILE (frontend-neutral IR pretty-print)
//                  --explain     (per-loop decision provenance)
//   service mode (DESIGN.md §4.8):
//     panorama_driver --daemon=SOCKET       serve clients over a Unix socket
//     panorama_driver file.f --save-session=S.pano
//                                           analyze, then snapshot the session
//     panorama_driver file.f --load-session=S.pano
//                                           restore a snapshot, warm-submit file.f
//
// Inputs ending in .cl / .clike parse through the C-like frontend
// (frontend/clike.h); everything else through the Fortran-77 parser. Both
// converge on the same pre-sema Program.
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "panorama/analysis/analysis.h"
#include "panorama/analysis/driver.h"
#include "panorama/builder/builder.h"
#include "panorama/codegen/annotate.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/clike.h"
#include "panorama/frontend/parser.h"
#include "panorama/obs/metrics.h"
#include "panorama/obs/profile.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/arena.h"
#include "panorama/predicate/fm_incremental.h"
#include "panorama/session/session.h"
#include "panorama/store/daemon.h"
#include "panorama/symbolic/arena.h"

using namespace panorama;

namespace {

void printArenaStats() {
  ExprArena::Stats es = ExprArena::global().stats();
  PredArena::Stats ps = PredArena::global().stats();
  std::printf("expr arena: %zu distinct exprs, %zu bytes, shard occupancy %zu..%zu\n",
              es.distinct, es.bytes, es.minShard, es.maxShard);
  std::printf("pred arena: %zu distinct preds, %zu bytes, shard occupancy %zu..%zu\n",
              ps.distinct, ps.bytes, ps.minShard, ps.maxShard);
}

int usage() {
  std::fprintf(stderr,
               "usage: panorama_driver [flags] <file.f>\n"
               "       panorama_driver --corpus [NAME]\n"
               "       panorama_driver --corpus-run\n"
               "       panorama_driver [flags] <file.f> --reanalyze=EDITED.f\n"
               "flags: --no-symbolic --no-if-conditions --no-interprocedural\n"
               "       --no-prefilter (FM-only queries: disable the abstract-domain tier)\n"
               "       --quantified --summaries --hsg --annotate\n"
               "       --threads=N (0 = all cores) --cache-capacity=N --no-cache --stats\n"
               "       --via-builder (ingest through the builder IR round-trip)\n"
               "       --trace=FILE --metrics=FILE --profile=FILE --dump-ir=FILE --explain\n"
               "service: --daemon=SOCKET (serve clients; see panorama_client)\n"
               "         --slow-ms=N (slow-request event threshold, default 500)\n"
               "         --telemetry-interval=MS (periodic self-snapshot events; 0 = off)\n"
               "         --event-log=FILE (dump the daemon event log as JSONL)\n"
               "         --no-telemetry (disable the daemon telemetry plane)\n"
               "         --save-session=FILE --load-session=FILE (session snapshots)\n"
               "inputs ending in .cl/.clike parse through the C-like frontend\n");
  return 2;
}

/// Strict value parsing for --flag=N arguments: the whole value must be a
/// non-negative decimal integer; anything else (empty, trailing junk, signs)
/// is rejected with a diagnostic naming the flag.
bool parseCountFlag(std::string_view arg, std::string_view prefix, std::size_t& out) {
  std::string_view value = arg.substr(prefix.size());
  std::size_t parsed = 0;
  const char* end = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(value.data(), end, parsed);
  if (value.empty() || ec != std::errc() || ptr != end) {
    std::fprintf(stderr, "invalid value '%.*s' for %.*s: expected a non-negative integer\n",
                 static_cast<int>(value.size()), value.data(),
                 static_cast<int>(prefix.size() - 1), prefix.data());
    return false;
  }
  out = parsed;
  return true;
}

/// Writes the requested observability artifacts after a run; reports and
/// returns false when an output file cannot be written. The cost profile is
/// built from the global tracer's span snapshot with the global cache
/// counters attached; `sessions` carries per-submit reuse records on
/// --reanalyze runs.
bool writeObsArtifacts(const std::string& tracePath, const std::string& metricsPath,
                       const std::string& profilePath,
                       const std::vector<obs::SessionReuse>& sessions = {}) {
  if (!tracePath.empty()) {
    if (!obs::Tracer::global().writeChromeTrace(tracePath)) {
      std::fprintf(stderr, "cannot write trace file '%s'\n", tracePath.c_str());
      return false;
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", obs::Tracer::global().eventCount(),
                 tracePath.c_str());
  }
  if (!metricsPath.empty()) {
    if (!obs::MetricsRegistry::global().writeJson(metricsPath)) {
      std::fprintf(stderr, "cannot write metrics file '%s'\n", metricsPath.c_str());
      return false;
    }
    std::fprintf(stderr, "metrics -> %s\n", metricsPath.c_str());
  }
  if (!profilePath.empty()) {
    obs::CostProfile profile = obs::buildCostProfile(obs::Tracer::global().snapshot());
    const QueryCache::Stats qc = QueryCache::global().stats();
    const QueryCache::Stats memo = simplifyMemoStats();
    profile.caches.push_back({"query cache", qc.hits, qc.misses, qc.entries, qc.evictions,
                              qc.evictedStale, qc.evictedLive});
    profile.caches.push_back({"simplify memo", memo.hits, memo.misses, memo.entries,
                              memo.evictions, memo.evictedStale, memo.evictedLive});
    profile.sessions = sessions;
    const std::string json = obs::renderCostProfileJson(profile);
    FILE* f = std::fopen(profilePath.c_str(), "w");
    bool ok = f != nullptr && std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (f) ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
      std::fprintf(stderr, "cannot write profile file '%s'\n", profilePath.c_str());
      return false;
    }
    std::fprintf(stderr, "profile: %zu span(s) -> %s\n",
                 static_cast<std::size_t>(profile.events), profilePath.c_str());
  }
  return true;
}

/// --corpus-run: the whole Table 1/2 corpus through the parallel driver, with
/// per-loop reports (plus provenance under --explain) and the registry-driven
/// stats block.
int runWholeCorpus(const AnalysisOptions& options, bool explain, CorpusIngest ingest,
                   const std::string& tracePath, const std::string& metricsPath,
                   const std::string& profilePath, const std::string& dumpIrPath) {
  CorpusAnalysisResult result = analyzeCorpusParallel(options, ingest);
  for (const CorpusRoutineResult& r : result.loops) {
    std::printf("[%s]\n%s", r.kernelId.c_str(), r.report.c_str());
    if (explain) std::printf("%s", r.provenance.c_str());
    std::printf("\n");
  }
  std::printf("%s", formatCorpusStats(result).c_str());
  if (!dumpIrPath.empty()) {
    // One concatenated dump, kernels in corpus order.
    std::string text;
    std::size_t procs = 0;
    for (const CorpusLoop& cl : perfectCorpus()) {
      DiagnosticEngine diags;
      std::optional<Program> program = parseProgram(cl.source, diags);
      if (!program) continue;
      if (!text.empty()) text += '\n';
      text += "// kernel " + cl.id + '\n';
      text += builder::dumpIr(*program);
      procs += program->procedures.size();
    }
    FILE* f = std::fopen(dumpIrPath.c_str(), "w");
    bool ok = f != nullptr && std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (f) ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
      std::fprintf(stderr, "cannot write IR dump file '%s'\n", dumpIrPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "ir: %zu procedure(s) -> %s\n", procs, dumpIrPath.c_str());
  }
  return writeObsArtifacts(tracePath, metricsPath, profilePath) ? 0 : 1;
}

/// Publishes the single-file run's stats into the global registry so that
/// --metrics and --stats read the same source of truth as the corpus driver.
void publishFileRunMetrics(const SummaryStats& s, const QueryCache::Stats& qc,
                           const QueryCache::Stats& memo) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("summary.block_steps").set(s.blockSteps);
  reg.counter("summary.loop_expansions").set(s.loopExpansions);
  reg.counter("summary.call_mappings").set(s.callMappings);
  reg.counter("summary.peak_list_length").set(s.peakListLength);
  reg.counter("summary.gars_created").set(s.garsCreated);
  reg.counter("query_cache.hits").set(qc.hits);
  reg.counter("query_cache.misses").set(qc.misses);
  reg.counter("query_cache.entries").set(qc.entries);
  reg.counter("query_cache.evictions").set(qc.evictions);
  reg.counter("query_cache.evicted_stale").set(qc.evictedStale);
  reg.counter("query_cache.evicted_live").set(qc.evictedLive);
  reg.counter("simplify_memo.hits").set(memo.hits);
  reg.counter("simplify_memo.misses").set(memo.misses);
  reg.counter("simplify_memo.entries").set(memo.entries);
  reg.counter("simplify_memo.evictions").set(memo.evictions);
}

/// True for inputs the C-like frontend owns (see clike.h).
bool isCLikeInput(std::string_view name) {
  auto endsWith = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  return endsWith(".cl") || endsWith(".clike");
}

/// Frontend dispatch: one pre-sema Program regardless of surface syntax.
std::optional<Program> parseInput(const std::string& inputName, const std::string& source,
                                  DiagnosticEngine& diags) {
  if (isCLikeInput(inputName)) return parseCLike(source, diags);
  return parseProgram(source, diags);
}

/// --dump-ir=FILE: pretty-prints the frontend-neutral IR. Fails (with a
/// diagnostic, like --trace/--metrics/--profile) when FILE is unwritable.
bool writeIrDump(const std::string& path, const Program& program) {
  if (path.empty()) return true;
  const std::string text = builder::dumpIr(program);
  FILE* f = std::fopen(path.c_str(), "w");
  bool ok = f != nullptr && std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (f) ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "cannot write IR dump file '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "ir: %zu procedure(s) -> %s\n", program.procedures.size(), path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  AnalysisOptions options;
  options.numThreads = 1;  // interactive default: the serial driver
  bool showSummaries = false;
  bool showHsg = false;
  bool annotateOutput = false;
  bool showStats = false;
  bool explain = false;
  bool corpusRun = false;
  bool viaBuilder = false;
  std::string tracePath;
  std::string metricsPath;
  std::string profilePath;
  std::string dumpIrPath;
  std::string reanalyzePath;
  std::string daemonSocket;
  store::DaemonConfig daemonConfig;
  bool sawTelemetryFlag = false;
  std::string saveSessionPath;
  std::string loadSessionPath;
  std::string source;
  std::string inputName;

  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg == "--no-symbolic") {
      options.symbolicAnalysis = false;
    } else if (arg == "--no-if-conditions") {
      options.ifConditions = false;
    } else if (arg == "--no-interprocedural") {
      options.interprocedural = false;
    } else if (arg == "--quantified") {
      options.quantified = true;
    } else if (arg == "--no-prefilter") {
      options.prefilter = false;
    } else if (arg == "--summaries") {
      showSummaries = true;
    } else if (arg == "--hsg") {
      showHsg = true;
    } else if (arg == "--annotate") {
      annotateOutput = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parseCountFlag(arg, "--threads=", options.numThreads)) return 2;
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      if (!parseCountFlag(arg, "--cache-capacity=", options.cacheCapacity)) return 2;
    } else if (arg.rfind("--reanalyze=", 0) == 0) {
      reanalyzePath = std::string(arg.substr(12));
      if (reanalyzePath.empty()) {
        std::fprintf(stderr, "--reanalyze needs a file argument\n");
        return 2;
      }
    } else if (arg.rfind("--daemon=", 0) == 0) {
      daemonSocket = std::string(arg.substr(9));
      if (daemonSocket.empty()) {
        std::fprintf(stderr, "--daemon needs a socket path\n");
        return 2;
      }
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      if (!parseCountFlag(arg, "--slow-ms=", daemonConfig.slowMs)) return 2;
      sawTelemetryFlag = true;
    } else if (arg.rfind("--telemetry-interval=", 0) == 0) {
      if (!parseCountFlag(arg, "--telemetry-interval=", daemonConfig.telemetryIntervalMs))
        return 2;
      sawTelemetryFlag = true;
    } else if (arg.rfind("--event-log=", 0) == 0) {
      daemonConfig.eventLogPath = std::string(arg.substr(12));
      if (daemonConfig.eventLogPath.empty()) {
        std::fprintf(stderr, "--event-log needs a file argument\n");
        return 2;
      }
      sawTelemetryFlag = true;
    } else if (arg == "--no-telemetry") {
      daemonConfig.telemetry = false;
      sawTelemetryFlag = true;
    } else if (arg.rfind("--save-session=", 0) == 0) {
      saveSessionPath = std::string(arg.substr(15));
      if (saveSessionPath.empty()) {
        std::fprintf(stderr, "--save-session needs a file argument\n");
        return 2;
      }
    } else if (arg.rfind("--load-session=", 0) == 0) {
      loadSessionPath = std::string(arg.substr(15));
      if (loadSessionPath.empty()) {
        std::fprintf(stderr, "--load-session needs a file argument\n");
        return 2;
      }
    } else if (arg == "--no-cache") {
      options.cacheCapacity = 0;
    } else if (arg == "--stats") {
      showStats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      tracePath = std::string(arg.substr(8));
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metricsPath = std::string(arg.substr(10));
    } else if (arg.rfind("--profile=", 0) == 0) {
      profilePath = std::string(arg.substr(10));
    } else if (arg.rfind("--dump-ir=", 0) == 0) {
      dumpIrPath = std::string(arg.substr(10));
      if (dumpIrPath.empty()) {
        std::fprintf(stderr, "--dump-ir needs a file argument\n");
        return 2;
      }
    } else if (arg == "--via-builder") {
      viaBuilder = true;
    } else if (arg == "--corpus-run") {
      corpusRun = true;
    } else if (arg == "--corpus") {
      if (k + 1 >= argc) {
        for (const CorpusLoop& cl : perfectCorpus()) std::printf("%s\n", cl.id.c_str());
        std::printf("fig1a\nfig1b\nfig1c\n");
        return 0;
      }
      std::string_view name = argv[++k];
      if (name == "fig1a") source = fig1aSource();
      else if (name == "fig1b") source = fig1bSource();
      else if (name == "fig1c") source = fig1cSource();
      else
        for (const CorpusLoop& cl : perfectCorpus())
          if (cl.id.find(name) != std::string::npos) source = cl.source;
      if (source.empty()) {
        std::fprintf(stderr, "unknown corpus kernel '%s'\n", argv[k]);
        return 2;
      }
      inputName = name;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      std::ifstream in{std::string(arg)};
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[k]);
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
      inputName = arg;
    }
  }
  // The cost profile aggregates span buffers, so --profile implies tracing.
  if (!tracePath.empty() || !profilePath.empty()) obs::Tracer::global().enable();

  if (daemonSocket.empty() && sawTelemetryFlag) {
    std::fprintf(stderr,
                 "--slow-ms/--telemetry-interval/--event-log/--no-telemetry need --daemon\n");
    return 2;
  }

  if (!daemonSocket.empty()) {
    if (!source.empty() || corpusRun || !reanalyzePath.empty() || !saveSessionPath.empty() ||
        !loadSessionPath.empty()) {
      std::fprintf(stderr, "--daemon runs standalone; drop the input file and session flags\n");
      return 2;
    }
    store::Daemon daemon(daemonSocket, options, daemonConfig);
    std::string error;
    if (!daemon.start(error)) {
      std::fprintf(stderr, "cannot start daemon: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "panorama_driver: serving on %s\n", daemonSocket.c_str());
    daemon.wait();
    return writeObsArtifacts(tracePath, metricsPath, profilePath) ? 0 : 1;
  }

  if (corpusRun)
    return runWholeCorpus(options, explain,
                          viaBuilder ? CorpusIngest::BuilderRoundTrip : CorpusIngest::Parse,
                          tracePath, metricsPath, profilePath, dumpIrPath);
  if (source.empty()) return usage();

  if (!saveSessionPath.empty() || !loadSessionPath.empty()) {
    // Session-snapshot mode: the single-file run goes through an
    // AnalysisSession so its state can be restored/saved around the submit.
    // Loop reports print in the same order and format as the batch path, so
    // the two outputs diff clean (driver_cli_test gates this).
    if (!reanalyzePath.empty()) {
      std::fprintf(stderr, "--save-session/--load-session cannot combine with --reanalyze\n");
      return 2;
    }
    DiagnosticEngine pdiags;
    std::optional<Program> program = parseInput(inputName, source, pdiags);
    if (!program) {
      std::fprintf(stderr, "%s: parse failed\n%s", inputName.c_str(), pdiags.str().c_str());
      return 1;
    }
    if (!writeIrDump(dumpIrPath, *program)) return 1;

    AnalysisSession session(options);
    if (!loadSessionPath.empty()) {
      store::StoreResult r = session.restore(loadSessionPath);
      if (!r.ok) {
        std::fprintf(stderr, "cannot load session: %s\n", r.error.c_str());
        return 1;
      }
      std::fprintf(stderr, "session <- %s (epoch %llu)\n", loadSessionPath.c_str(),
                   static_cast<unsigned long long>(session.epoch()));
    }
    SessionResult result = session.submit(std::move(*program));
    if (!result.ok) {
      std::fprintf(stderr, "%s: analysis failed\n%s", inputName.c_str(), result.error.c_str());
      return 1;
    }
    std::printf("%s: %zu loop(s)\n\n", inputName.c_str(), result.loops.size());
    for (const SessionLoopResult& r : result.loops) {
      std::printf("%s", r.report.c_str());
      if (explain) std::printf("%s", r.provenance.c_str());
      std::printf("\n");
    }
    if (explain && !showStats) {
      // --stats prints these inside the full stats block; under --explain
      // alone, still surface why each cached loop verdict was reusable.
      for (const LoopReuse& lr : result.stats.loopReuse)
        std::printf("session.loop_reuse_cause: %s (line %d): %s -- %s\n", lr.unit.c_str(),
                    lr.line, lr.cause.c_str(), lr.detail.c_str());
    }
    if (showStats) {
      std::printf("%s", formatSessionStats(result.stats).c_str());
      printArenaStats();
    }
    if (!saveSessionPath.empty()) {
      store::StoreResult r = session.save(saveSessionPath);
      if (!r.ok) {
        std::fprintf(stderr, "cannot save session: %s\n", r.error.c_str());
        return 1;
      }
      std::fprintf(stderr, "session -> %s\n", saveSessionPath.c_str());
    }
    return writeObsArtifacts(tracePath, metricsPath, profilePath,
                             {sessionReuseFor(result.stats)})
               ? 0
               : 1;
  }

  if (!reanalyzePath.empty()) {
    // Incremental session: cold-analyze the primary input, then warm-submit
    // the edited file. Reports cover every loop; the session stats show how
    // small the dirty cone was.
    std::ifstream in{reanalyzePath};
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", reanalyzePath.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    // Both submits go through the frontend-neutral entry point: parse (by
    // extension-dispatched frontend) here, submit(Program) below.
    DiagnosticEngine pdiags;
    std::optional<Program> coldProgram = parseInput(inputName, source, pdiags);
    if (!coldProgram) {
      std::fprintf(stderr, "%s: parse failed\n%s", inputName.c_str(), pdiags.str().c_str());
      return 1;
    }
    if (!writeIrDump(dumpIrPath, *coldProgram)) return 1;
    std::optional<Program> warmProgram = parseInput(reanalyzePath, buf.str(), pdiags);
    if (!warmProgram) {
      std::fprintf(stderr, "%s: parse failed\n%s", reanalyzePath.c_str(), pdiags.str().c_str());
      return 1;
    }

    AnalysisSession session(options);
    SessionResult cold = session.submit(std::move(*coldProgram));
    if (!cold.ok) {
      std::fprintf(stderr, "%s: analysis failed\n%s", inputName.c_str(), cold.error.c_str());
      return 1;
    }
    SessionResult warm = session.submit(std::move(*warmProgram));
    if (!warm.ok) {
      std::fprintf(stderr, "%s: re-analysis failed\n%s", reanalyzePath.c_str(),
                   warm.error.c_str());
      return 1;
    }
    std::printf("%s: %zu loop(s) after re-analysis of %s\n\n", inputName.c_str(),
                warm.loops.size(), reanalyzePath.c_str());
    for (const SessionLoopResult& r : warm.loops) {
      std::printf("%s", r.report.c_str());
      if (explain) std::printf("%s", r.provenance.c_str());
      std::printf("\n");
    }
    std::printf("%s", formatSessionStats(warm.stats).c_str());
    if (showStats) printArenaStats();
    // The profile embeds both submits' reuse records: the cold epoch shows
    // what a full run costs, the warm epoch attributes every dirty unit to
    // its invalidation cause.
    return writeObsArtifacts(tracePath, metricsPath, profilePath,
                             {sessionReuseFor(cold.stats), sessionReuseFor(warm.stats)})
               ? 0
               : 1;
  }

  DiagnosticEngine diags;
  auto program = parseInput(inputName, source, diags);
  if (!program) {
    std::fprintf(stderr, "%s: parse failed\n%s", inputName.c_str(), diags.str().c_str());
    return 1;
  }
  if (!writeIrDump(dumpIrPath, *program)) return 1;
  if (viaBuilder) {
    builder::BuildResult rebuilt = builder::rebuild(*program);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "%s: builder round-trip failed\n%s", inputName.c_str(),
                   rebuilt.error().c_str());
      return 1;
    }
    program = std::move(rebuilt.program);
  }
  auto sema = analyze(*program, diags);
  if (!sema) {
    std::fprintf(stderr, "%s: semantic analysis failed\n%s", inputName.c_str(),
                 diags.str().c_str());
    return 1;
  }
  Hsg hsg = buildHsg(*program, *sema, diags);
  if (diags.hasErrors()) {
    std::fprintf(stderr, "%s", diags.str().c_str());
    return 1;
  }

  if (showHsg) {
    for (const Procedure& proc : program->procedures) {
      std::printf("---- HSG of %s ----\n%s\n", proc.name.c_str(),
                  hsg.of(proc).graph.str().c_str());
    }
  }

  QueryCache::global().configure(options.cacheCapacity);
  setQueryTierEnabled(options.prefilter);
  clearSimplifyMemo();
  clearFmEliminationCache();
  ThreadPool pool(options.numThreads);
  SummaryAnalyzer analyzer(*program, *sema, hsg, options);
  std::vector<LoopAnalysis> loops = analyzeProgramParallel(analyzer, pool);

  if (annotateOutput) {
    std::printf("%s", emitParallelSource(*program, loops).c_str());
    // --annotate used to return early and silently drop --trace/--metrics
    // dumps; artifacts (and their failure exit) apply here too.
    publishFileRunMetrics(analyzer.stats(), QueryCache::global().stats(), simplifyMemoStats());
    return writeObsArtifacts(tracePath, metricsPath, profilePath) ? 0 : 1;
  }

  std::printf("%s: %zu loop(s)\n\n", inputName.c_str(), loops.size());
  for (const LoopAnalysis& la : loops) {
    std::printf("%s", formatLoopAnalysis(la).c_str());
    if (explain) std::printf("%s", formatProvenance(la).c_str());
    if (showSummaries && la.loop) {
      const LoopSummary* ls = analyzer.loopSummary(la.loop);
      if (ls) {
        const SymbolTable& tab = sema->symbols;
        const ArrayTable& arrays = sema->arrays;
        std::printf("      MOD_i  = %s\n", ls->modIter.str(tab, arrays).c_str());
        std::printf("      UE_i   = %s\n", ls->ueIter.str(tab, arrays).c_str());
        std::printf("      DE_i   = %s\n", ls->deIter.str(tab, arrays).c_str());
        std::printf("      MOD_<i = %s\n", ls->modBefore.str(tab, arrays).c_str());
        std::printf("      MOD(L) = %s\n", ls->mod.str(tab, arrays).c_str());
        std::printf("      UE(L)  = %s\n", ls->ue.str(tab, arrays).c_str());
      }
    }
    std::printf("\n");
  }

  SummaryStats s = analyzer.stats();
  QueryCache::Stats qc = QueryCache::global().stats();
  QueryCache::Stats memo = simplifyMemoStats();
  publishFileRunMetrics(s, qc, memo);

  if (showStats) {
    std::printf("%s\n",
                obs::renderSummaryCost(s.blockSteps, s.loopExpansions, s.callMappings,
                                       s.peakListLength, s.garsCreated)
                    .c_str());
    std::printf("%s\n", formatQueryCacheStats(qc).c_str());
    std::printf("%s\n", obs::renderCacheCounters("simplify memo", memo.hits, memo.misses,
                                                 memo.entries, memo.evictions,
                                                 /*rateDecimals=*/1)
                            .c_str());
    printArenaStats();
  }
  return writeObsArtifacts(tracePath, metricsPath, profilePath) ? 0 : 1;
}
