// The paper's three motivating examples (Figure 1), analyzed end to end:
//   (a) MDG interf  — IF-condition inference through a counter (the base
//       analysis must stay conservative; the §5.2 quantified extension
//       resolves it),
//   (b) ARC2D filerx — a loop-invariant condition guards both the write and
//       the exposure of A(jmax),
//   (c) OCEAN — interprocedural implication between callee guards.
#include <cstdio>

#include "panorama/analysis/analysis.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"

using namespace panorama;

namespace {

void analyzeCase(const char* title, const char* source, const char* routine,
                 AnalysisOptions options = {}) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
  DiagnosticEngine diags;
  auto program = parseProgram(source, diags);
  if (!program) {
    std::fprintf(stderr, "parse error:\n%s", diags.str().c_str());
    return;
  }
  auto sema = analyze(*program, diags);
  if (!sema) {
    std::fprintf(stderr, "semantic error:\n%s", diags.str().c_str());
    return;
  }
  Hsg hsg = buildHsg(*program, *sema, diags);
  SummaryAnalyzer analyzer(*program, *sema, hsg, options);
  analyzer.analyzeAll();
  LoopParallelizer lp(analyzer);
  const Stmt* loop = findOuterLoop(*program, routine, 0);
  LoopAnalysis la = lp.analyzeLoop(*loop, *program->findProcedure(routine));
  std::printf("%s\n", formatLoopAnalysis(la).c_str());
}

}  // namespace

int main() {
  analyzeCase("Figure 1(a) — MDG interf, base analysis (conservative on `a`)",
              fig1aSource(), "interf");
  AnalysisOptions quantified;
  quantified.quantified = true;
  analyzeCase("Figure 1(a) — with the quantified-guard extension (§5.2 future work)",
              fig1aSource(), "interf", quantified);
  analyzeCase("Figure 1(b) — ARC2D filerx (loop-invariant IF condition)", fig1bSource(),
              "filer");
  analyzeCase("Figure 1(c) — OCEAN (interprocedural guard implication)", fig1cSource(),
              "drive");

  std::printf("================================================================\n");
  std::printf("Ablations on Figure 1(c): what happens without each technique\n");
  std::printf("================================================================\n");
  AnalysisOptions noT3;
  noT3.interprocedural = false;
  analyzeCase("without interprocedural analysis (T3)", fig1cSource(), "drive", noT3);
  AnalysisOptions noT2;
  noT2.ifConditions = false;
  analyzeCase("without IF-condition analysis (T2)", fig1cSource(), "drive", noT2);
  return 0;
}
