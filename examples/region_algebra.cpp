// A tour of the public GAR algebra — the paper's §3 by example, using the
// library directly (no Fortran input): symbolic expressions, guards,
// regions, the three set operations, and the expansion function.
#include <cstdio>

#include "panorama/region/gar.h"

using namespace panorama;

namespace {

void show(const char* label, const GarList& list, const SymbolTable& tab,
          const ArrayTable& arrays) {
  std::printf("%-36s %s\n", label, list.str(tab, arrays).c_str());
}

}  // namespace

int main() {
  SymbolTable tab;
  ArrayTable arrays;
  VarId a = tab.intern("a");
  VarId b = tab.intern("b");
  VarId c = tab.intern("c");
  VarId i = tab.intern("i");
  VarId n = tab.intern("n");
  SymExpr A = SymExpr::variable(a);
  SymExpr B = SymExpr::variable(b);
  SymExpr C = SymExpr::variable(c);
  SymExpr I = SymExpr::variable(i);
  SymExpr N = SymExpr::variable(n);
  SymExpr one = SymExpr::constant(1);
  ArrayId arr = arrays.intern("x", {SymRange{one, SymExpr::constant(100), one}});
  CmpCtx ctx;

  std::printf("== the paper's §3 example: T1 = [a<=b, X(a:b)], T2 = [b<=c, X(b:c)] ==\n");
  GarList t1 = GarList::single(Gar::make(Pred::makeTrue(), Region{arr, {SymRange{A, B, one}}}));
  GarList t2 = GarList::single(Gar::make(Pred::makeTrue(), Region{arr, {SymRange{B, C, one}}}));
  show("T1 =", t1, tab, arrays);
  show("T2 =", t2, tab, arrays);
  show("T1 u T2 =", garUnion(t1, t2, ctx, &arrays), tab, arrays);
  show("T1 ^ T2 =", garIntersect(t1, t2, ctx), tab, arrays);
  show("T1 - T2 =", garSubtract(t1, t2, ctx), tab, arrays);

  std::printf("\n== guards kill conditionally: UE - MOD with a guarded MOD ==\n");
  Pred guard = Pred::atom(Atom::le(N, SymExpr::constant(0)));
  GarList use = GarList::single(
      Gar::make(Pred::makeTrue(), Region{arr, {SymRange{one, SymExpr::constant(10), one}}}));
  GarList mod = GarList::single(
      Gar::make(guard, Region{arr, {SymRange{one, SymExpr::constant(10), one}}}));
  show("UE =", use, tab, arrays);
  show("MOD = (only when n <= 0)", mod, tab, arrays);
  show("UE - MOD =", garSubtract(use, mod, ctx), tab, arrays);

  std::printf("\n== the expansion function (§4.1): one iteration -> whole loop ==\n");
  GarList perIter = GarList::single(Gar::make(Pred::atom(Atom::le(I, N)),
                                              Region{arr, {SymRange::point(I)}}));
  show("MOD_i = [i<=n, X(i)]", perIter, tab, arrays);
  LoopBounds bounds{i, one, SymExpr::constant(50), one};
  show("expand over i = 1..50 =", expandByIndex(perIter, bounds, ctx), tab, arrays);

  std::printf("\n== emptiness proofs drive privatization ==\n");
  GarList ueIter = GarList::single(Gar::make(Pred::atom(Atom::gt(I, N)),
                                             Region{arr, {SymRange{one, N, one}}}));
  GarList modBefore = GarList::single(Gar::make(Pred::atom(Atom::le(I, N)),
                                                Region{arr, {SymRange{one, N, one}}}));
  show("UE_i  = [i>n, X(1:n)]", ueIter, tab, arrays);
  show("MOD_<i = [i<=n, X(1:n)]", modBefore, tab, arrays);
  Truth empty = garIntersectionEmpty(ueIter, modBefore, ctx);
  std::printf("%-36s %s\n", "UE_i ^ MOD_<i empty?", toString(empty));
  return 0;
}
