// A "compiler report" over the full Perfect corpus: every loop of every
// kernel, its classification, the privatized arrays, and — echoing §6's
// methodology — whether the cheap conventional dependence tests would have
// sufficed (the paper applies the expensive dataflow analysis only when
// they do not).
#include <cstdio>

#include "panorama/analysis/analysis.h"
#include "panorama/corpus/corpus.h"
#include "panorama/deptest/deptest.h"
#include "panorama/frontend/parser.h"

using namespace panorama;

int main() {
  int total = 0;
  int parallel = 0;
  int viaPrivatization = 0;
  int conventionalEnough = 0;

  for (const CorpusLoop& cl : perfectCorpus()) {
    std::printf("================ %s ================\n", cl.id.c_str());
    DiagnosticEngine diags;
    auto program = parseProgram(cl.source, diags);
    auto sema = analyze(*program, diags);
    if (!sema) {
      std::fprintf(stderr, "%s: %s\n", cl.id.c_str(), diags.str().c_str());
      continue;
    }
    Hsg hsg = buildHsg(*program, *sema, diags);
    SummaryAnalyzer analyzer(*program, *sema, hsg, {});
    ConventionalAnalyzer conventional(*program, *sema);
    LoopParallelizer lp(analyzer);

    std::vector<LoopAnalysis> loops = lp.analyzeProgram();
    auto verdicts = conventional.classifyProgram();
    for (const LoopAnalysis& la : loops) {
      ++total;
      bool convParallel = false;
      for (const auto& [stmt, verdict] : verdicts)
        if (stmt == la.loop) convParallel = verdict.parallel;
      if (convParallel) {
        // §6: conventional tests settle it — the GAR analysis is not needed.
        ++conventionalEnough;
        ++parallel;
        std::printf("%s: DO %s (line %d): parallel [conventional tests suffice]\n",
                    la.procName.c_str(), la.loop->doVar.c_str(), la.line);
        continue;
      }
      std::printf("%s", formatLoopAnalysis(la).c_str());
      parallel += la.classification != LoopClass::Serial;
      viaPrivatization += la.classification == LoopClass::ParallelAfterPrivatization;
    }
    std::printf("\n");
  }

  std::printf("================ summary ================\n");
  std::printf("loops analyzed:                  %d\n", total);
  std::printf("parallel by conventional tests:  %d\n", conventionalEnough);
  std::printf("parallel overall:                %d\n", parallel);
  std::printf("needed array privatization:      %d\n", viaPrivatization);
  return 0;
}
