// Thin client for the analysis daemon (DESIGN.md §4.8).
//
//   panorama_client SOCKET ping
//   panorama_client SOCKET submit FILE [--name=NAME] [--session=KEY]
//                                      [--explain] [--stats]
//   panorama_client SOCKET status
//   panorama_client SOCKET metrics
//   panorama_client SOCKET tail [--cursor=N] [--max=N]
//   panorama_client SOCKET shutdown
// Every form accepts --timeout-ms=N, bounding the connect and each frame
// read/write; an expired timeout exits 2 with a "timed out" diagnostic.
//
// `submit` sends FILE's bytes over the framed JSON protocol and prints the
// daemon's composed report to stdout — byte-identical to what
// `panorama_driver FILE` prints, which is exactly what the daemon smoke
// test diffs. `--name` overrides the report heading (default: FILE);
// `--session` targets a named daemon-side session that persists across
// invocations (resubmits hit the incremental cache / file-skip fast path).
//
// `status`, `metrics`, and `tail` print the daemon's raw JSON response —
// they are the scriptable face of the telemetry plane (panorama_top is the
// interactive one). `tail --cursor=N` resumes an incremental read from a
// previous response's next_cursor.
//
// Exit codes: 0 success, 1 daemon-side error, 2 usage/transport error.
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "panorama/store/protocol.h"
#include "panorama/support/json.h"

using namespace panorama;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: panorama_client SOCKET ping\n"
               "       panorama_client SOCKET submit FILE [--name=NAME] [--session=KEY]\n"
               "                                          [--explain] [--stats]\n"
               "       panorama_client SOCKET status\n"
               "       panorama_client SOCKET metrics\n"
               "       panorama_client SOCKET tail [--cursor=N] [--max=N]\n"
               "       panorama_client SOCKET shutdown\n"
               "any form also accepts --timeout-ms=N (connect and per-frame I/O bound)\n");
  return 2;
}

bool parseCount(std::string_view value, std::size_t& out) {
  std::size_t parsed = 0;
  const char* end = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(value.data(), end, parsed);
  if (value.empty() || ec != std::errc() || ptr != end) return false;
  out = parsed;
  return true;
}

/// One request/response exchange. Returns the daemon's JSON response (and
/// the raw payload via `raw` when non-null), or nullopt after printing a
/// transport diagnostic.
std::optional<support::JsonValue> roundTrip(int fd, const std::string& request,
                                            std::string* raw = nullptr) {
  std::string error;
  if (!store::writeFrame(fd, request, &error)) {
    std::fprintf(stderr, "panorama_client: %s\n", error.c_str());
    return std::nullopt;
  }
  std::string payload;
  store::FrameStatus st = store::readFrame(fd, payload, &error);
  if (st != store::FrameStatus::Ok) {
    std::fprintf(stderr, "panorama_client: %s\n",
                 st == store::FrameStatus::Eof ? "daemon closed the connection" : error.c_str());
    return std::nullopt;
  }
  std::optional<support::JsonValue> response = support::JsonValue::parse(payload, &error);
  if (!response) {
    std::fprintf(stderr, "panorama_client: malformed response: %s\n", error.c_str());
    return std::nullopt;
  }
  if (raw) *raw = std::move(payload);
  return response;
}

/// True when the response says ok; otherwise prints the daemon's error.
bool checkOk(const support::JsonValue& response) {
  const support::JsonValue* ok = response.find("ok");
  if (ok && ok->isBool() && ok->asBool()) return true;
  const support::JsonValue* error = response.find("error");
  std::fprintf(stderr, "panorama_client: daemon error: %s\n",
               error && error->isString() ? error->asString().c_str() : "(no error field)");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // --timeout-ms is positional-agnostic; strip it before op parsing.
  std::size_t timeoutMs = 0;
  std::vector<std::string> args;
  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg.rfind("--timeout-ms=", 0) == 0) {
      if (!parseCount(arg.substr(13), timeoutMs)) {
        std::fprintf(stderr, "panorama_client: invalid --timeout-ms value\n");
        return 2;
      }
    } else {
      args.emplace_back(arg);
    }
  }
  if (args.size() < 2) return usage();
  const std::string& socketPath = args[0];
  const std::string& op = args[1];

  std::string request;
  if (op == "ping") {
    request = "{\"id\":1,\"op\":\"ping\"}";
  } else if (op == "shutdown") {
    request = "{\"id\":1,\"op\":\"shutdown\"}";
  } else if (op == "status") {
    request = "{\"id\":1,\"op\":\"status\"}";
  } else if (op == "metrics") {
    request = "{\"id\":1,\"op\":\"metrics\"}";
  } else if (op == "tail") {
    std::size_t cursor = 0;
    std::size_t maxEvents = 100;
    for (std::size_t k = 2; k < args.size(); ++k) {
      std::string_view arg = args[k];
      if (arg.rfind("--cursor=", 0) == 0) {
        if (!parseCount(arg.substr(9), cursor)) return usage();
      } else if (arg.rfind("--max=", 0) == 0) {
        if (!parseCount(arg.substr(6), maxEvents)) return usage();
      } else {
        return usage();
      }
    }
    request = "{\"id\":1,\"op\":\"tail\",\"cursor\":" + std::to_string(cursor) +
              ",\"max\":" + std::to_string(maxEvents) + "}";
  } else if (op == "submit") {
    if (args.size() < 3) return usage();
    const std::string& file = args[2];
    std::string name = file;
    std::string sessionKey;
    bool explain = false;
    bool stats = false;
    for (std::size_t k = 3; k < args.size(); ++k) {
      std::string_view arg = args[k];
      if (arg == "--explain") explain = true;
      else if (arg == "--stats") stats = true;
      else if (arg.rfind("--name=", 0) == 0) name = std::string(arg.substr(7));
      else if (arg.rfind("--session=", 0) == 0) sessionKey = std::string(arg.substr(10));
      else return usage();
    }
    std::ifstream in{file};
    if (!in) {
      std::fprintf(stderr, "panorama_client: cannot open '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    request = "{\"id\":1,\"op\":\"submit\",\"name\":\"";
    support::appendJsonEscaped(request, name);
    if (!sessionKey.empty()) {
      request += "\",\"session\":\"";
      support::appendJsonEscaped(request, sessionKey);
    }
    request += "\",\"explain\":";
    request += explain ? "true" : "false";
    request += ",\"stats\":";
    request += stats ? "true" : "false";
    request += ",\"source\":\"";
    support::appendJsonEscaped(request, buf.str());
    request += "\"}";
  } else {
    return usage();
  }

  std::string error;
  int fd = store::connectUnixSocket(socketPath, &error, static_cast<int>(timeoutMs));
  if (fd < 0) {
    std::fprintf(stderr, "panorama_client: %s\n", error.c_str());
    return 2;
  }
  if (timeoutMs > 0 && !store::setSocketTimeout(fd, static_cast<int>(timeoutMs), &error)) {
    std::fprintf(stderr, "panorama_client: %s\n", error.c_str());
    ::close(fd);
    return 2;
  }
  std::string raw;
  std::optional<support::JsonValue> response = roundTrip(fd, request, &raw);
  ::close(fd);
  if (!response) return 2;
  if (!checkOk(*response)) return 1;

  if (op == "ping") {
    std::printf("pong\n");
  } else if (op == "shutdown") {
    std::printf("daemon shutting down\n");
  } else if (op == "status" || op == "metrics" || op == "tail") {
    // Raw response JSON: these ops are consumed by scripts and dashboards.
    std::fputs(raw.c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    const support::JsonValue* report = response->find("report");
    if (report && report->isString()) std::fputs(report->asString().c_str(), stdout);
    const support::JsonValue* stats = response->find("stats");
    if (stats && stats->isString()) std::fputs(stats->asString().c_str(), stdout);
  }
  return 0;
}
