// Thin client for the analysis daemon (DESIGN.md §4.8).
//
//   panorama_client SOCKET ping
//   panorama_client SOCKET submit FILE [--name=NAME] [--session=KEY]
//                                      [--explain] [--stats]
//   panorama_client SOCKET shutdown
//
// `submit` sends FILE's bytes over the framed JSON protocol and prints the
// daemon's composed report to stdout — byte-identical to what
// `panorama_driver FILE` prints, which is exactly what the daemon smoke
// test diffs. `--name` overrides the report heading (default: FILE);
// `--session` targets a named daemon-side session that persists across
// invocations (resubmits hit the incremental cache / file-skip fast path).
// Exit codes: 0 success, 1 daemon-side error, 2 usage/transport error.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "panorama/store/protocol.h"
#include "panorama/support/json.h"

using namespace panorama;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: panorama_client SOCKET ping\n"
               "       panorama_client SOCKET submit FILE [--name=NAME] [--session=KEY]\n"
               "                                          [--explain] [--stats]\n"
               "       panorama_client SOCKET shutdown\n");
  return 2;
}

/// One request/response exchange. Returns the daemon's JSON response, or
/// nullopt after printing a transport diagnostic.
std::optional<support::JsonValue> roundTrip(int fd, const std::string& request) {
  std::string error;
  if (!store::writeFrame(fd, request, &error)) {
    std::fprintf(stderr, "panorama_client: %s\n", error.c_str());
    return std::nullopt;
  }
  std::string payload;
  store::FrameStatus st = store::readFrame(fd, payload, &error);
  if (st != store::FrameStatus::Ok) {
    std::fprintf(stderr, "panorama_client: %s\n",
                 st == store::FrameStatus::Eof ? "daemon closed the connection" : error.c_str());
    return std::nullopt;
  }
  std::optional<support::JsonValue> response = support::JsonValue::parse(payload, &error);
  if (!response) {
    std::fprintf(stderr, "panorama_client: malformed response: %s\n", error.c_str());
    return std::nullopt;
  }
  return response;
}

/// True when the response says ok; otherwise prints the daemon's error.
bool checkOk(const support::JsonValue& response) {
  const support::JsonValue* ok = response.find("ok");
  if (ok && ok->isBool() && ok->asBool()) return true;
  const support::JsonValue* error = response.find("error");
  std::fprintf(stderr, "panorama_client: daemon error: %s\n",
               error && error->isString() ? error->asString().c_str() : "(no error field)");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string socketPath = argv[1];
  const std::string op = argv[2];

  std::string request;
  if (op == "ping") {
    request = "{\"id\":1,\"op\":\"ping\"}";
  } else if (op == "shutdown") {
    request = "{\"id\":1,\"op\":\"shutdown\"}";
  } else if (op == "submit") {
    if (argc < 4) return usage();
    const std::string file = argv[3];
    std::string name = file;
    std::string sessionKey;
    bool explain = false;
    bool stats = false;
    for (int k = 4; k < argc; ++k) {
      std::string_view arg = argv[k];
      if (arg == "--explain") explain = true;
      else if (arg == "--stats") stats = true;
      else if (arg.rfind("--name=", 0) == 0) name = std::string(arg.substr(7));
      else if (arg.rfind("--session=", 0) == 0) sessionKey = std::string(arg.substr(10));
      else return usage();
    }
    std::ifstream in{file};
    if (!in) {
      std::fprintf(stderr, "panorama_client: cannot open '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    request = "{\"id\":1,\"op\":\"submit\",\"name\":\"";
    support::appendJsonEscaped(request, name);
    if (!sessionKey.empty()) {
      request += "\",\"session\":\"";
      support::appendJsonEscaped(request, sessionKey);
    }
    request += "\",\"explain\":";
    request += explain ? "true" : "false";
    request += ",\"stats\":";
    request += stats ? "true" : "false";
    request += ",\"source\":\"";
    support::appendJsonEscaped(request, buf.str());
    request += "\"}";
  } else {
    return usage();
  }

  std::string error;
  int fd = store::connectUnixSocket(socketPath, &error);
  if (fd < 0) {
    std::fprintf(stderr, "panorama_client: %s\n", error.c_str());
    return 2;
  }
  std::optional<support::JsonValue> response = roundTrip(fd, request);
  ::close(fd);
  if (!response) return 2;
  if (!checkOk(*response)) return 1;

  if (op == "ping") {
    std::printf("pong\n");
  } else if (op == "shutdown") {
    std::printf("daemon shutting down\n");
  } else {
    const support::JsonValue* report = response->find("report");
    if (report && report->isString()) std::fputs(report->asString().c_str(), stdout);
    const support::JsonValue* stats = response->find("stats");
    if (stats && stats->isString()) std::fputs(stats->asString().c_str(), stdout);
  }
  return 0;
}
