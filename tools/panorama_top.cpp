// Live terminal dashboard for the analysis daemon (DESIGN.md §4.10).
//
//   panorama_top SOCKET [--interval-ms=N] [--once] [--json] [--timeout-ms=N]
//
// Polls the daemon's status/metrics/tail ops over one connection and
// repaints a single screen every interval (default 1000 ms): a header with
// uptime, connection/request/submit/error/slow totals, pool queue depth,
// arena occupancy and cache hit rate; one row per live named session; one
// row per request op with count and p50/p95/p99/max wall latency plus a
// log2-bucket sparkline; and a recent-events pane fed by cursor-based tail
// reads (so events are never double-counted across refreshes).
//
// `--once` paints a single frame (no screen clearing) and exits — with
// `--json` it instead emits one machine-readable document
//   {"status":<status response>,"metrics":<metrics response>,
//    "tail":<tail response>}
// which is what the daemon smoke test round-trips against a live daemon.
//
// Exit codes: 0 success, 2 usage/transport error.
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "panorama/store/protocol.h"
#include "panorama/support/json.h"

using namespace panorama;
using support::JsonValue;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: panorama_top SOCKET [--interval-ms=N] [--once] [--json]\n"
               "                           [--timeout-ms=N]\n");
  return 2;
}

bool parseCount(std::string_view value, std::size_t& out) {
  std::size_t parsed = 0;
  const char* end = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(value.data(), end, parsed);
  if (value.empty() || ec != std::errc() || ptr != end) return false;
  out = parsed;
  return true;
}

/// One request/response exchange; the raw payload lands in `raw`. Returns
/// nullopt after printing a transport diagnostic.
std::optional<JsonValue> roundTrip(int fd, const std::string& request, std::string& raw) {
  std::string error;
  if (!store::writeFrame(fd, request, &error)) {
    std::fprintf(stderr, "panorama_top: %s\n", error.c_str());
    return std::nullopt;
  }
  store::FrameStatus st = store::readFrame(fd, raw, &error);
  if (st != store::FrameStatus::Ok) {
    std::fprintf(stderr, "panorama_top: %s\n",
                 st == store::FrameStatus::Eof ? "daemon closed the connection" : error.c_str());
    return std::nullopt;
  }
  std::optional<JsonValue> response = JsonValue::parse(raw, &error);
  if (!response || !response->isObject()) {
    std::fprintf(stderr, "panorama_top: malformed response: %s\n", error.c_str());
    return std::nullopt;
  }
  return response;
}

double numberOr(const JsonValue* v, double fallback) {
  return v && v->isNumber() ? v->asNumber() : fallback;
}

double pathNumber(const JsonValue& obj, std::string_view a, std::string_view b) {
  const JsonValue* inner = obj.find(a);
  return inner && inner->isObject() ? numberOr(inner->find(b), 0) : 0;
}

/// Unicode sparkline over the histogram's trail-trimmed log2 buckets,
/// scaled to the fullest bucket.
std::string sparkline(const JsonValue& buckets) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double peak = 0;
  for (const JsonValue& b : buckets.items()) peak = std::max(peak, numberOr(&b, 0));
  std::string out;
  if (peak <= 0) return out;
  for (const JsonValue& b : buckets.items()) {
    const double v = numberOr(&b, 0);
    int level = v <= 0 ? 0 : 1 + static_cast<int>(v / peak * 6.999);
    if (level > 7) level = 7;
    out += v <= 0 ? " " : kLevels[level];
  }
  return out;
}

/// "submit" from "daemon.op.submit.wall_us", or empty when `name` is not a
/// per-op wall histogram.
std::string opOfWallHistogram(const std::string& name) {
  const std::string prefix = "daemon.op.";
  const std::string suffix = ".wall_us";
  if (name.size() <= prefix.size() + suffix.size()) return {};
  if (name.compare(0, prefix.size(), prefix) != 0) return {};
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return {};
  return name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
}

/// One human line per event object: "[ ts] kind  k=v k=v ...".
std::string renderEvent(const JsonValue& ev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%10.3f] ", numberOr(ev.find("ts_ms"), 0) / 1000.0);
  std::string line = buf;
  const JsonValue* kind = ev.find("kind");
  line += kind && kind->isString() ? kind->asString() : "?";
  while (line.size() < 27) line += ' ';
  for (const auto& [key, value] : ev.members()) {
    if (key == "seq" || key == "ts_ms" || key == "kind") continue;
    line += ' ';
    line += key;
    line += '=';
    if (value.isString()) {
      line += value.asString();
    } else if (value.isNumber()) {
      std::snprintf(buf, sizeof(buf), "%g", value.asNumber());
      line += buf;
    }
  }
  if (line.size() > 110) {
    line.resize(107);
    line += "...";
  }
  return line;
}

void renderFrame(const JsonValue& status, const JsonValue& metrics,
                 const std::deque<std::string>& events, const std::string& socketPath) {
  std::printf("panorama daemon @ %s — up %.1f s\n", socketPath.c_str(),
              numberOr(status.find("uptime_ms"), 0) / 1000.0);
  std::printf(
      "conns %g active / %g total   requests %g   submits %g   errors %g   slow %g\n",
      pathNumber(status, "connections", "active"), pathNumber(status, "connections", "total"),
      numberOr(status.find("requests"), 0), numberOr(status.find("submits"), 0),
      numberOr(status.find("errors"), 0), numberOr(status.find("slow_requests"), 0));
  const JsonValue* caches = status.find("caches");
  const JsonValue* qc = caches && caches->isObject() ? caches->find("query_cache") : nullptr;
  const JsonValue* arenas = status.find("arenas");
  const JsonValue* expr = arenas && arenas->isObject() ? arenas->find("expr") : nullptr;
  const JsonValue* pred = arenas && arenas->isObject() ? arenas->find("pred") : nullptr;
  std::printf(
      "pool %g threads, queue %g   arena expr %.1f KB / pred %.1f KB   qcache %.1f%% hit\n",
      pathNumber(status, "pool", "threads"), pathNumber(status, "pool", "queue_depth"),
      (expr ? numberOr(expr->find("bytes"), 0) : 0) / 1024.0,
      (pred ? numberOr(pred->find("bytes"), 0) : 0) / 1024.0,
      (qc ? numberOr(qc->find("hit_rate"), 0) : 0) * 100.0);

  const JsonValue* sessions = status.find("sessions");
  if (sessions && sessions->isArray() && !sessions->items().empty()) {
    std::printf("named sessions:\n");
    for (const JsonValue& s : sessions->items()) {
      const JsonValue* name = s.find("name");
      std::printf("  %-24s epoch %-6g units %-5g file_skips %g\n",
                  name && name->isString() ? name->asString().c_str() : "?",
                  numberOr(s.find("epoch"), 0), numberOr(s.find("units"), 0),
                  numberOr(s.find("file_skips"), 0));
    }
  }

  std::printf("per-op wall latency (us):\n");
  std::printf("  %-10s %8s %8s %8s %8s %10s  %s\n", "op", "count", "p50", "p95", "p99", "max",
              "log2 buckets");
  const JsonValue* registry = metrics.find("registry");
  const JsonValue* histograms =
      registry && registry->isObject() ? registry->find("histograms") : nullptr;
  if (histograms && histograms->isObject()) {
    for (const auto& [name, h] : histograms->members()) {
      const std::string op = opOfWallHistogram(name);
      if (op.empty() || !h.isObject()) continue;
      const JsonValue* buckets = h.find("buckets");
      std::printf("  %-10s %8.0f %8.0f %8.0f %8.0f %10.0f  %s\n", op.c_str(),
                  numberOr(h.find("count"), 0), numberOr(h.find("p50"), 0),
                  numberOr(h.find("p95"), 0), numberOr(h.find("p99"), 0),
                  numberOr(h.find("max"), 0),
                  buckets && buckets->isArray() ? sparkline(*buckets).c_str() : "");
    }
  }

  std::printf("recent events:\n");
  for (const std::string& line : events) std::printf("  %s\n", line.c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  std::size_t intervalMs = 1000;
  std::size_t timeoutMs = 0;
  bool once = false;
  bool json = false;
  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg.rfind("--interval-ms=", 0) == 0) {
      if (!parseCount(arg.substr(14), intervalMs)) return usage();
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      if (!parseCount(arg.substr(13), timeoutMs)) return usage();
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (socketPath.empty()) {
      socketPath = std::string(arg);
    } else {
      return usage();
    }
  }
  if (socketPath.empty()) return usage();
  if (json && !once) {
    std::fprintf(stderr, "panorama_top: --json requires --once\n");
    return 2;
  }

  std::string error;
  int fd = store::connectUnixSocket(socketPath, &error, static_cast<int>(timeoutMs));
  if (fd < 0) {
    std::fprintf(stderr, "panorama_top: %s\n", error.c_str());
    return 2;
  }
  if (timeoutMs > 0 && !store::setSocketTimeout(fd, static_cast<int>(timeoutMs), &error)) {
    std::fprintf(stderr, "panorama_top: %s\n", error.c_str());
    ::close(fd);
    return 2;
  }

  std::uint64_t requestId = 1;
  std::uint64_t cursor = 0;
  std::deque<std::string> events;  // rendered, newest last
  bool firstFrame = true;
  for (;;) {
    std::string statusRaw, metricsRaw, tailRaw;
    const std::string idStatus = std::to_string(requestId++);
    const std::string idMetrics = std::to_string(requestId++);
    const std::string idTail = std::to_string(requestId++);
    std::optional<JsonValue> status =
        roundTrip(fd, "{\"id\":" + idStatus + ",\"op\":\"status\"}", statusRaw);
    if (!status) break;
    std::optional<JsonValue> metrics =
        roundTrip(fd, "{\"id\":" + idMetrics + ",\"op\":\"metrics\"}", metricsRaw);
    if (!metrics) break;
    std::optional<JsonValue> tail = roundTrip(
        fd, "{\"id\":" + idTail + ",\"op\":\"tail\",\"cursor\":" + std::to_string(cursor) +
                ",\"max\":100}",
        tailRaw);
    if (!tail) break;

    const JsonValue* next = tail->find("next_cursor");
    if (next && next->isNumber()) cursor = static_cast<std::uint64_t>(next->asNumber());
    const JsonValue* tailEvents = tail->find("events");
    if (tailEvents && tailEvents->isArray())
      for (const JsonValue& ev : tailEvents->items()) {
        events.push_back(renderEvent(ev));
        if (events.size() > 10) events.pop_front();
      }

    if (json) {
      std::printf("{\"status\":%s,\"metrics\":%s,\"tail\":%s}\n", statusRaw.c_str(),
                  metricsRaw.c_str(), tailRaw.c_str());
      ::close(fd);
      return 0;
    }
    if (!once) {
      // Home + clear-to-end: a flicker-free single-screen repaint.
      std::printf(firstFrame ? "\x1b[2J\x1b[H" : "\x1b[H\x1b[J");
      firstFrame = false;
    }
    renderFrame(*status, *metrics, events, socketPath);
    if (once) {
      ::close(fd);
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
  }
  ::close(fd);
  return 2;
}
