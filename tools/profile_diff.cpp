// profile_diff: attributes warm-latency drift between bench runs to the
// cost-profile entities that grew.
//
// Two modes share one diff engine:
//
//   profile_diff OLD.json NEW.json [--top=N]
//       Plain snapshot diff of two --profile outputs (panorama_driver
//       --profile=FILE). Prints phases, procedures, loops, and queries
//       ranked by absolute time growth. Always exits 0 on readable input.
//
//   profile_diff --history=BENCH_history.jsonl --bench=incremental
//                [--metric=warm_wall_ms] [--threshold=0.10]
//                [--profile-old=A.json] [--profile-new=B.json] [--top=N]
//       Regression gate for nightly CI. Compares the metric between the
//       last two history records of the named bench. No regression beyond
//       the threshold: exit 0. A regression that the profile diff can pin
//       to specific phases/procedures/loops (their growth covers at least
//       half of it): exit 0 with the attribution table. A regression with
//       no profile snapshots, unreadable ones, or growth the profiles
//       cannot account for: exit 2 — "unattributed" is the failure CI
//       must surface, because it means the latency went somewhere the
//       observability layer does not see.
//
// Exit codes: 0 ok/attributed, 1 usage or I/O error, 2 unattributed
// regression (mirrors bench_runner --check).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "panorama/support/json.h"

using panorama::support::JsonValue;

namespace {

struct Options {
  std::string historyPath;
  std::string bench = "incremental";
  std::string metric = "warm_wall_ms";
  double threshold = 0.10;
  std::string profileOld;
  std::string profileNew;
  std::size_t top = 8;
  std::vector<std::string> positional;
};

bool readFile(const std::string& path, std::string& out, std::string& error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    error = path + ": cannot open";
    return false;
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) error = path + ": read failed";
  return ok;
}

double numberField(const JsonValue& obj, std::string_view key, double fallback = 0) {
  const JsonValue* v = obj.find(key);
  return (v && v->isNumber()) ? v->asNumber() : fallback;
}

std::string stringField(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return (v && v->isString()) ? v->asString() : std::string();
}

// ----- cost-profile flattening ---------------------------------------------
//
// A profile snapshot becomes one flat map: entity label -> nanoseconds.
// Phases contribute their SELF time under "phase <path>" (total time would
// double-count every parent/child pair and make coverage meaningless);
// procedures and loops contribute their totals. The old/new maps then diff
// key-by-key.

void flattenPhases(const JsonValue& node, const std::string& prefix,
                   std::map<std::string, double>& out) {
  if (!node.isObject()) return;
  const std::string path =
      prefix.empty() ? stringField(node, "category") : prefix + "/" + stringField(node, "category");
  out["phase " + path] += numberField(node, "self_ns");
  const JsonValue* children = node.find("children");
  if (children && children->isArray())
    for (const JsonValue& child : children->items()) flattenPhases(child, path, out);
}

/// Flattens one profile snapshot into label -> ns. Returns false (with
/// `error`) when the file is missing or not a profile JSON.
bool flattenProfile(const std::string& path, std::map<std::string, double>& out,
                    double& wallNs, std::string& error) {
  std::string text;
  if (!readFile(path, text, error)) return false;
  std::string parseError;
  std::optional<JsonValue> doc = JsonValue::parse(text, &parseError);
  if (!doc || !doc->isObject()) {
    error = path + ": not a profile snapshot (" + (parseError.empty() ? "no object" : parseError) +
            ")";
    return false;
  }
  wallNs = numberField(*doc, "wall_ns");
  const JsonValue* phases = doc->find("phases");
  if (phases && phases->isArray())
    for (const JsonValue& p : phases->items()) flattenPhases(p, "", out);
  const JsonValue* procs = doc->find("procedures");
  if (procs && procs->isArray())
    for (const JsonValue& p : procs->items())
      out["proc " + stringField(p, "name")] += numberField(p, "total_ns");
  const JsonValue* loops = doc->find("loops");
  if (loops && loops->isArray())
    for (const JsonValue& l : loops->items())
      out["loop " + stringField(l, "proc") + "/" + stringField(l, "name")] +=
          numberField(l, "total_ns");
  const JsonValue* queries = doc->find("top_queries");
  if (queries && queries->isArray())
    for (const JsonValue& q : queries->items())
      out["query " + stringField(q, "kind") + " " + stringField(q, "name")] +=
          numberField(q, "dur_ns");
  if (out.empty()) {
    error = path + ": profile snapshot has no phases/procedures/loops";
    return false;
  }
  return true;
}

struct DiffRow {
  std::string label;
  double oldNs = 0;
  double newNs = 0;
  double delta() const { return newNs - oldNs; }
};

std::vector<DiffRow> diffProfiles(const std::map<std::string, double>& before,
                                  const std::map<std::string, double>& after) {
  std::map<std::string, DiffRow> rows;
  for (const auto& [label, ns] : before) {
    rows[label].label = label;
    rows[label].oldNs = ns;
  }
  for (const auto& [label, ns] : after) {
    rows[label].label = label;
    rows[label].newNs = ns;
  }
  std::vector<DiffRow> out;
  out.reserve(rows.size());
  for (auto& [label, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const DiffRow& a, const DiffRow& b) {
    if (a.delta() != b.delta()) return a.delta() > b.delta();
    return a.label < b.label;
  });
  return out;
}

void printDiffTable(const std::vector<DiffRow>& rows, std::size_t top) {
  std::printf("%-58s %12s %12s %12s\n", "entity", "old ms", "new ms", "delta ms");
  std::size_t shown = 0;
  for (const DiffRow& row : rows) {
    if (shown >= top) break;
    if (row.delta() == 0) continue;
    std::printf("%-58s %12.3f %12.3f %+12.3f\n", row.label.c_str(), row.oldNs / 1e6,
                row.newNs / 1e6, row.delta() / 1e6);
    ++shown;
  }
  if (shown == 0) std::printf("(no entity changed)\n");
}

// ----- bench history --------------------------------------------------------

struct HistoryRecord {
  std::string git;
  double timestamp = 0;
  double value = 0;
  std::string direction;
};

/// Last two records of `bench` carrying `metric`, oldest first.
bool lastTwo(const std::string& path, const std::string& bench, const std::string& metric,
             std::vector<HistoryRecord>& out, std::string& error) {
  std::string text;
  if (!readFile(path, text, error)) return false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    std::optional<JsonValue> doc = JsonValue::parse(line);
    if (!doc || !doc->isObject()) continue;  // tolerate torn trailing lines
    if (stringField(*doc, "bench") != bench) continue;
    const JsonValue* okField = doc->find("ok");
    if (okField && okField->isBool() && !okField->asBool()) continue;
    const JsonValue* metrics = doc->find("metrics");
    if (!metrics || !metrics->isObject()) continue;
    const JsonValue* m = metrics->find(metric);
    if (!m || !m->isObject()) continue;
    HistoryRecord rec;
    rec.git = stringField(*doc, "git");
    rec.timestamp = numberField(*doc, "timestamp_unix");
    rec.value = numberField(*m, "value");
    rec.direction = stringField(*m, "direction");
    out.push_back(std::move(rec));
    if (out.size() > 2) out.erase(out.begin());
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: profile_diff OLD.json NEW.json [--top=N]\n"
               "       profile_diff --history=FILE [--bench=NAME] [--metric=NAME]\n"
               "                    [--threshold=FRACTION] [--profile-old=FILE]\n"
               "                    [--profile-new=FILE] [--top=N]\n");
  return 1;
}

bool parseArgs(int argc, char** argv, Options& opts) {
  for (int k = 1; k < argc; ++k) {
    const std::string_view arg = argv[k];
    auto value = [&](std::string_view prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) != 0) return std::nullopt;
      return std::string(arg.substr(prefix.size()));
    };
    if (auto v = value("--history=")) opts.historyPath = *v;
    else if (auto v = value("--bench=")) opts.bench = *v;
    else if (auto v = value("--metric=")) opts.metric = *v;
    else if (auto v = value("--threshold=")) opts.threshold = std::atof(v->c_str());
    else if (auto v = value("--profile-old=")) opts.profileOld = *v;
    else if (auto v = value("--profile-new=")) opts.profileNew = *v;
    else if (auto v = value("--top=")) opts.top = static_cast<std::size_t>(std::atol(v->c_str()));
    else if (arg.rfind("--", 0) == 0) return false;
    else opts.positional.push_back(std::string(arg));
  }
  return true;
}

/// Snapshot-diff mode: print the table, exit 0.
int runSnapshotDiff(const Options& opts) {
  std::map<std::string, double> before, after;
  double wallOld = 0, wallNew = 0;
  std::string error;
  if (!flattenProfile(opts.positional[0], before, wallOld, error) ||
      !flattenProfile(opts.positional[1], after, wallNew, error)) {
    std::fprintf(stderr, "profile_diff: %s\n", error.c_str());
    return 1;
  }
  std::printf("profile diff: %s -> %s\n", opts.positional[0].c_str(), opts.positional[1].c_str());
  std::printf("wall: %.3f ms -> %.3f ms (%+.1f%%)\n\n", wallOld / 1e6, wallNew / 1e6,
              wallOld > 0 ? (wallNew - wallOld) * 100.0 / wallOld : 0.0);
  printDiffTable(diffProfiles(before, after), opts.top);
  return 0;
}

/// History-gate mode: exit 2 on an unattributed regression.
int runHistoryGate(const Options& opts) {
  std::vector<HistoryRecord> records;
  std::string error;
  if (!lastTwo(opts.historyPath, opts.bench, opts.metric, records, error)) {
    std::fprintf(stderr, "profile_diff: %s\n", error.c_str());
    return 1;
  }
  if (records.size() < 2) {
    std::printf("profile_diff: %zu history record(s) for bench '%s' — need 2 to compare; ok\n",
                records.size(), opts.bench.c_str());
    return 0;
  }
  const HistoryRecord& prev = records[0];
  const HistoryRecord& curr = records[1];
  // Regression direction comes from the metric itself (lower-is-better for
  // wall times); "exact" metrics regress on any change.
  double regression = 0;
  if (prev.value > 0) {
    if (curr.direction == "higher") regression = (prev.value - curr.value) / prev.value;
    else regression = (curr.value - prev.value) / prev.value;
  }
  std::printf("%s/%s: %.6g (%s) -> %.6g (%s): %+.1f%%\n", opts.bench.c_str(), opts.metric.c_str(),
              prev.value, prev.git.c_str(), curr.value, curr.git.c_str(),
              (prev.value > 0 ? (curr.value - prev.value) * 100.0 / prev.value : 0.0));
  if (regression <= opts.threshold) {
    std::printf("within threshold (%.0f%%); ok\n", opts.threshold * 100.0);
    return 0;
  }

  // Regression beyond the threshold: it passes only if the profile
  // snapshots can say WHERE the time went.
  std::printf("regression %.1f%% exceeds threshold %.0f%% — attributing\n", regression * 100.0,
              opts.threshold * 100.0);
  if (opts.profileOld.empty() || opts.profileNew.empty()) {
    std::fprintf(stderr,
                 "profile_diff: UNATTRIBUTED regression — no profile snapshots to attribute "
                 "against (pass --profile-old/--profile-new)\n");
    return 2;
  }
  std::map<std::string, double> before, after;
  double wallOld = 0, wallNew = 0;
  if (!flattenProfile(opts.profileOld, before, wallOld, error) ||
      !flattenProfile(opts.profileNew, after, wallNew, error)) {
    std::fprintf(stderr, "profile_diff: UNATTRIBUTED regression — %s\n", error.c_str());
    return 2;
  }
  const std::vector<DiffRow> rows = diffProfiles(before, after);
  printDiffTable(rows, opts.top);

  // Attribution test: the profile's own phase growth must cover at least
  // half of its wall growth — otherwise the snapshots describe a run that
  // did not regress the way the bench did, and naming innocents would be
  // worse than failing.
  double phaseGrowth = 0;
  for (const DiffRow& row : rows)
    if (row.delta() > 0 && row.label.rfind("phase ", 0) == 0) phaseGrowth += row.delta();
  const double wallGrowth = wallNew - wallOld;
  if (wallGrowth > 0 && phaseGrowth >= wallGrowth * 0.5) {
    std::printf("attributed: phase growth %.3f ms covers %.0f%% of wall growth %.3f ms\n",
                phaseGrowth / 1e6, phaseGrowth * 100.0 / wallGrowth, wallGrowth / 1e6);
    return 0;
  }
  std::fprintf(stderr,
               "profile_diff: UNATTRIBUTED regression — profile phase growth %.3f ms does not "
               "cover wall growth %.3f ms\n",
               phaseGrowth / 1e6, wallGrowth / 1e6);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parseArgs(argc, argv, opts)) return usage();
  if (!opts.historyPath.empty()) {
    if (!opts.positional.empty()) return usage();
    return runHistoryGate(opts);
  }
  if (opts.positional.size() != 2) return usage();
  return runSnapshotDiff(opts);
}
