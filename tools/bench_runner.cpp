// The unified benchmark driver: runs every bench registered with
// bench/harness.h, writes one BENCH_<name>.json snapshot per bench, appends
// one single-line record per run to BENCH_history.jsonl, and — with
// --check — compares each bench against its committed baseline snapshot
// using the tolerances the bench's own code declares.
//
//   bench_runner [flags] [--benchmark_*...]
//     --list                print registered bench names and exit
//     --only=NAME           run just one bench
//     --check               gate against baselines; exit 2 on regression
//     --update-baselines    rewrite the baseline snapshots from this run
//     --baseline-dir=DIR    where committed BENCH_*.json baselines live (.)
//     --out-dir=DIR         where snapshots + history are written (.)
//     --history=FILE        history path (default <out-dir>/BENCH_history.jsonl)
//     --benchmark_*         forwarded to google-benchmark (micro-ops)
//
// Exit status: 0 ok; 1 a bench failed its own contract (or a write failed);
// 2 the regression gate tripped.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "harness.h"

using namespace panorama::bench;

namespace {

std::string gitDescribe() {
  std::string git = "unknown";
  if (FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p)) {
      git = buf;
      while (!git.empty() && (git.back() == '\n' || git.back() == '\r')) git.pop_back();
    }
    ::pclose(p);
  }
  return git;
}

bool readFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool writeFile(const std::string& path, const std::string& text, const char* mode) {
  FILE* f = std::fopen(path.c_str(), mode);
  if (!f) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool check = false;
  bool updateBaselines = false;
  std::string only;
  std::string baselineDir = ".";
  std::string outDir = ".";
  std::string historyPath;
  std::vector<std::string> forwarded;
  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    auto value = [&](std::string_view prefix) { return std::string(arg.substr(prefix.size())); };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--update-baselines") {
      updateBaselines = true;
    } else if (arg.rfind("--only=", 0) == 0) {
      only = value("--only=");
    } else if (arg.rfind("--baseline-dir=", 0) == 0) {
      baselineDir = value("--baseline-dir=");
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      outDir = value("--out-dir=");
    } else if (arg.rfind("--history=", 0) == 0) {
      historyPath = value("--history=");
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      forwarded.emplace_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[k]);
      return 1;
    }
  }
  setExtraArgs(std::move(forwarded));
  if (historyPath.empty()) historyPath = outDir + "/BENCH_history.jsonl";

  if (list) {
    for (const BenchSpec& spec : Registry::global().all()) std::printf("%s\n", spec.name.c_str());
    return 0;
  }
  if (!only.empty() && !Registry::global().find(only)) {
    std::fprintf(stderr, "no bench named '%s' (see --list)\n", only.c_str());
    return 1;
  }

  const std::string git = gitDescribe();
  int exitCode = 0;
  std::size_t regressions = 0;
  for (const BenchSpec& spec : Registry::global().all()) {
    if (!only.empty() && spec.name != only) continue;
    std::printf("=== %s ===\n", spec.name.c_str());
    BenchResult result = runBench(spec);
    if (!result.ok) {
      std::fprintf(stderr, "%s: FAILED: %s\n", spec.name.c_str(), result.failure.c_str());
      exitCode = exitCode ? exitCode : 1;
    }

    const long long now = static_cast<long long>(std::time(nullptr));
    const std::string snapshotPath = outDir + "/BENCH_" + spec.name + ".json";
    if (!writeFile(snapshotPath, renderRecord(spec, result, git, now, /*pretty=*/true), "w")) {
      std::fprintf(stderr, "cannot write snapshot '%s'\n", snapshotPath.c_str());
      return 1;
    }
    if (!writeFile(historyPath, renderRecord(spec, result, git, now, /*pretty=*/false) + "\n",
                   "a")) {
      std::fprintf(stderr, "cannot append history '%s'\n", historyPath.c_str());
      return 1;
    }

    const std::string baselinePath = baselineDir + "/BENCH_" + spec.name + ".json";
    if (check) {
      std::string baseline;
      if (!readFile(baselinePath, &baseline)) {
        std::printf("%s: no baseline at %s — recorded, not gated\n", spec.name.c_str(),
                    baselinePath.c_str());
      } else {
        std::vector<RegressionIssue> issues = compareToBaseline(result, baseline);
        for (const RegressionIssue& issue : issues)
          std::fprintf(stderr, "%s: REGRESSION [%s]: %s\n", spec.name.c_str(),
                       issue.metric.c_str(), issue.what.c_str());
        regressions += issues.size();
        if (issues.empty()) std::printf("%s: within baseline tolerances\n", spec.name.c_str());
      }
    }
    if (updateBaselines) {
      if (!writeFile(baselinePath, renderRecord(spec, result, git, now, /*pretty=*/true), "w")) {
        std::fprintf(stderr, "cannot write baseline '%s'\n", baselinePath.c_str());
        return 1;
      }
      std::printf("%s: baseline -> %s\n", spec.name.c_str(), baselinePath.c_str());
    }
  }
  if (regressions) {
    std::fprintf(stderr, "%zu regression(s) against committed baselines\n", regressions);
    return 2;
  }
  return exitCode;
}
