# Empty dependencies file for panorama.
# This may be replaced when dependencies are built.
