
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/privatization.cpp" "src/CMakeFiles/panorama.dir/analysis/privatization.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/analysis/privatization.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/panorama.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/analysis/report.cpp.o.d"
  "/root/repo/src/ast/ast.cpp" "src/CMakeFiles/panorama.dir/ast/ast.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/ast/ast.cpp.o.d"
  "/root/repo/src/ast/printer.cpp" "src/CMakeFiles/panorama.dir/ast/printer.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/ast/printer.cpp.o.d"
  "/root/repo/src/ast/sema.cpp" "src/CMakeFiles/panorama.dir/ast/sema.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/ast/sema.cpp.o.d"
  "/root/repo/src/codegen/annotate.cpp" "src/CMakeFiles/panorama.dir/codegen/annotate.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/codegen/annotate.cpp.o.d"
  "/root/repo/src/corpus/corpus.cpp" "src/CMakeFiles/panorama.dir/corpus/corpus.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/corpus/corpus.cpp.o.d"
  "/root/repo/src/deptest/banerjee.cpp" "src/CMakeFiles/panorama.dir/deptest/banerjee.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/deptest/banerjee.cpp.o.d"
  "/root/repo/src/deptest/conventional.cpp" "src/CMakeFiles/panorama.dir/deptest/conventional.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/deptest/conventional.cpp.o.d"
  "/root/repo/src/deptest/gcd_test.cpp" "src/CMakeFiles/panorama.dir/deptest/gcd_test.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/deptest/gcd_test.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/panorama.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/panorama.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/hsg/cfg_builder.cpp" "src/CMakeFiles/panorama.dir/hsg/cfg_builder.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/hsg/cfg_builder.cpp.o.d"
  "/root/repo/src/hsg/condense.cpp" "src/CMakeFiles/panorama.dir/hsg/condense.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/hsg/condense.cpp.o.d"
  "/root/repo/src/hsg/hsg.cpp" "src/CMakeFiles/panorama.dir/hsg/hsg.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/hsg/hsg.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/CMakeFiles/panorama.dir/interp/interpreter.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/interp/interpreter.cpp.o.d"
  "/root/repo/src/machine/machine_model.cpp" "src/CMakeFiles/panorama.dir/machine/machine_model.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/machine/machine_model.cpp.o.d"
  "/root/repo/src/predicate/atom.cpp" "src/CMakeFiles/panorama.dir/predicate/atom.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/predicate/atom.cpp.o.d"
  "/root/repo/src/predicate/disjunct.cpp" "src/CMakeFiles/panorama.dir/predicate/disjunct.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/predicate/disjunct.cpp.o.d"
  "/root/repo/src/predicate/implication.cpp" "src/CMakeFiles/panorama.dir/predicate/implication.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/predicate/implication.cpp.o.d"
  "/root/repo/src/predicate/predicate.cpp" "src/CMakeFiles/panorama.dir/predicate/predicate.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/predicate/predicate.cpp.o.d"
  "/root/repo/src/predicate/simplifier.cpp" "src/CMakeFiles/panorama.dir/predicate/simplifier.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/predicate/simplifier.cpp.o.d"
  "/root/repo/src/region/expansion.cpp" "src/CMakeFiles/panorama.dir/region/expansion.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/expansion.cpp.o.d"
  "/root/repo/src/region/gar.cpp" "src/CMakeFiles/panorama.dir/region/gar.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/gar.cpp.o.d"
  "/root/repo/src/region/gar_ops.cpp" "src/CMakeFiles/panorama.dir/region/gar_ops.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/gar_ops.cpp.o.d"
  "/root/repo/src/region/gar_simplifier.cpp" "src/CMakeFiles/panorama.dir/region/gar_simplifier.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/gar_simplifier.cpp.o.d"
  "/root/repo/src/region/range.cpp" "src/CMakeFiles/panorama.dir/region/range.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/range.cpp.o.d"
  "/root/repo/src/region/range_ops.cpp" "src/CMakeFiles/panorama.dir/region/range_ops.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/range_ops.cpp.o.d"
  "/root/repo/src/region/region.cpp" "src/CMakeFiles/panorama.dir/region/region.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/region.cpp.o.d"
  "/root/repo/src/region/region_ops.cpp" "src/CMakeFiles/panorama.dir/region/region_ops.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/region/region_ops.cpp.o.d"
  "/root/repo/src/summary/quantified.cpp" "src/CMakeFiles/panorama.dir/summary/quantified.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/summary/quantified.cpp.o.d"
  "/root/repo/src/summary/sum_bb.cpp" "src/CMakeFiles/panorama.dir/summary/sum_bb.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/summary/sum_bb.cpp.o.d"
  "/root/repo/src/summary/sum_call.cpp" "src/CMakeFiles/panorama.dir/summary/sum_call.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/summary/sum_call.cpp.o.d"
  "/root/repo/src/summary/sum_loop.cpp" "src/CMakeFiles/panorama.dir/summary/sum_loop.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/summary/sum_loop.cpp.o.d"
  "/root/repo/src/summary/summary.cpp" "src/CMakeFiles/panorama.dir/summary/summary.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/summary/summary.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/panorama.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/symbolic/constraint.cpp" "src/CMakeFiles/panorama.dir/symbolic/constraint.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/symbolic/constraint.cpp.o.d"
  "/root/repo/src/symbolic/expr.cpp" "src/CMakeFiles/panorama.dir/symbolic/expr.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/symbolic/expr.cpp.o.d"
  "/root/repo/src/symbolic/expr_ops.cpp" "src/CMakeFiles/panorama.dir/symbolic/expr_ops.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/symbolic/expr_ops.cpp.o.d"
  "/root/repo/src/symbolic/fourier_motzkin.cpp" "src/CMakeFiles/panorama.dir/symbolic/fourier_motzkin.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/symbolic/fourier_motzkin.cpp.o.d"
  "/root/repo/src/symbolic/symbol_table.cpp" "src/CMakeFiles/panorama.dir/symbolic/symbol_table.cpp.o" "gcc" "src/CMakeFiles/panorama.dir/symbolic/symbol_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
