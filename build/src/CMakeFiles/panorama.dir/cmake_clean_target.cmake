file(REMOVE_RECURSE
  "libpanorama.a"
)
