# Empty dependencies file for test_quantified.
# This may be replaced when dependencies are built.
