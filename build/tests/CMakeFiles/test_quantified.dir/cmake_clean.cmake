file(REMOVE_RECURSE
  "CMakeFiles/test_quantified.dir/quantified_test.cpp.o"
  "CMakeFiles/test_quantified.dir/quantified_test.cpp.o.d"
  "test_quantified"
  "test_quantified.pdb"
  "test_quantified[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
