# Empty dependencies file for test_deptest.
# This may be replaced when dependencies are built.
