file(REMOVE_RECURSE
  "CMakeFiles/test_deptest.dir/deptest_test.cpp.o"
  "CMakeFiles/test_deptest.dir/deptest_test.cpp.o.d"
  "test_deptest"
  "test_deptest.pdb"
  "test_deptest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deptest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
