file(REMOVE_RECURSE
  "CMakeFiles/test_gar.dir/gar_test.cpp.o"
  "CMakeFiles/test_gar.dir/gar_test.cpp.o.d"
  "test_gar"
  "test_gar.pdb"
  "test_gar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
