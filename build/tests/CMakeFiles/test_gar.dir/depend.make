# Empty dependencies file for test_gar.
# This may be replaced when dependencies are built.
