file(REMOVE_RECURSE
  "CMakeFiles/test_miniperfect.dir/miniperfect_test.cpp.o"
  "CMakeFiles/test_miniperfect.dir/miniperfect_test.cpp.o.d"
  "test_miniperfect"
  "test_miniperfect.pdb"
  "test_miniperfect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miniperfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
