# Empty compiler generated dependencies file for test_miniperfect.
# This may be replaced when dependencies are built.
