file(REMOVE_RECURSE
  "CMakeFiles/test_hsg.dir/hsg_test.cpp.o"
  "CMakeFiles/test_hsg.dir/hsg_test.cpp.o.d"
  "test_hsg"
  "test_hsg.pdb"
  "test_hsg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
