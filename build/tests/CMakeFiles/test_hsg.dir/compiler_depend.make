# Empty compiler generated dependencies file for test_hsg.
# This may be replaced when dependencies are built.
