# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_predicate[1]_include.cmake")
include("/root/repo/build/tests/test_range[1]_include.cmake")
include("/root/repo/build/tests/test_gar[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_hsg[1]_include.cmake")
include("/root/repo/build/tests/test_summary[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_deptest[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_quantified[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_interproc[1]_include.cmake")
include("/root/repo/build/tests/test_miniperfect[1]_include.cmake")
include("/root/repo/build/tests/test_twodim[1]_include.cmake")
