file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_privatization.dir/bench_table2_privatization.cpp.o"
  "CMakeFiles/bench_table2_privatization.dir/bench_table2_privatization.cpp.o.d"
  "bench_table2_privatization"
  "bench_table2_privatization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_privatization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
