# Empty compiler generated dependencies file for bench_omp_witness.
# This may be replaced when dependencies are built.
