file(REMOVE_RECURSE
  "CMakeFiles/bench_omp_witness.dir/bench_omp_witness.cpp.o"
  "CMakeFiles/bench_omp_witness.dir/bench_omp_witness.cpp.o.d"
  "bench_omp_witness"
  "bench_omp_witness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_omp_witness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
