file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_techniques.dir/bench_table1_techniques.cpp.o"
  "CMakeFiles/bench_table1_techniques.dir/bench_table1_techniques.cpp.o.d"
  "bench_table1_techniques"
  "bench_table1_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
