# Empty dependencies file for bench_table1_techniques.
# This may be replaced when dependencies are built.
