file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simplifiers.dir/bench_ablation_simplifiers.cpp.o"
  "CMakeFiles/bench_ablation_simplifiers.dir/bench_ablation_simplifiers.cpp.o.d"
  "bench_ablation_simplifiers"
  "bench_ablation_simplifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simplifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
