# Empty dependencies file for bench_ablation_simplifiers.
# This may be replaced when dependencies are built.
