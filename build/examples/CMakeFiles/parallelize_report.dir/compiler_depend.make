# Empty compiler generated dependencies file for parallelize_report.
# This may be replaced when dependencies are built.
