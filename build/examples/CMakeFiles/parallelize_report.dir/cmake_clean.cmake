file(REMOVE_RECURSE
  "CMakeFiles/parallelize_report.dir/parallelize_report.cpp.o"
  "CMakeFiles/parallelize_report.dir/parallelize_report.cpp.o.d"
  "parallelize_report"
  "parallelize_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
