file(REMOVE_RECURSE
  "CMakeFiles/motivating_cases.dir/motivating_cases.cpp.o"
  "CMakeFiles/motivating_cases.dir/motivating_cases.cpp.o.d"
  "motivating_cases"
  "motivating_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivating_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
