# Empty compiler generated dependencies file for motivating_cases.
# This may be replaced when dependencies are built.
