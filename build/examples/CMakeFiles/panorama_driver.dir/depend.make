# Empty dependencies file for panorama_driver.
# This may be replaced when dependencies are built.
