file(REMOVE_RECURSE
  "CMakeFiles/panorama_driver.dir/panorama_driver.cpp.o"
  "CMakeFiles/panorama_driver.dir/panorama_driver.cpp.o.d"
  "panorama_driver"
  "panorama_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panorama_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
