# Empty dependencies file for region_algebra.
# This may be replaced when dependencies are built.
