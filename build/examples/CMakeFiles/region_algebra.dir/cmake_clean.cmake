file(REMOVE_RECURSE
  "CMakeFiles/region_algebra.dir/region_algebra.cpp.o"
  "CMakeFiles/region_algebra.dir/region_algebra.cpp.o.d"
  "region_algebra"
  "region_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
