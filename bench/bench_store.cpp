// The session-store bench: snapshotting every corpus session to disk and
// restoring it into a fresh session, versus re-running the cold analysis.
//
// Setup mirrors bench_incremental: one persistent AnalysisSession per
// Perfect-corpus kernel. The cold phase submits every kernel; the save
// phase serializes every session; the restore phase rebuilds fresh
// sessions from the snapshots; finally both the restored sessions and the
// original in-process sessions warm-submit a one-kernel edit.
//
// Contracts checked here (the bench fails, and CI with it, when violated):
//   * `reports_identical` — the restored sessions' warm reports are
//     byte-identical to the in-process sessions' warm reports (the store's
//     core correctness contract), gated as an Exact metric;
//   * restoring is cheaper than re-running the cold analysis.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "harness.h"
#include "panorama/corpus/corpus.h"
#include "panorama/session/session.h"
#include "panorama/store/format.h"

using namespace panorama;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Same edit as bench_incremental: a CONTINUE appended to the file's last
/// procedure body — fingerprint changes, no line shifts elsewhere.
std::string editLastProcedure(const std::string& source) {
  std::size_t pos = source.rfind("\n      end");
  if (pos == std::string::npos) return source;
  return source.substr(0, pos + 1) + "      continue\n" + source.substr(pos + 1);
}

std::string fingerprintOf(const std::vector<SessionResult>& results) {
  std::string out;
  for (const SessionResult& r : results)
    for (const SessionLoopResult& loop : r.loops) {
      out += loop.procName;
      out += '|';
      out += std::to_string(loop.line);
      out += '|';
      out += toString(loop.classification);
      out += '\n';
      out += loop.report;
    }
  return out;
}

bench::BenchResult run() {
  bench::BenchResult result;
  const std::vector<CorpusLoop>& corpus = perfectCorpus();

  std::vector<std::string> baseSources;
  std::vector<std::string> warmSources;
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    baseSources.push_back(corpus[k].source);
    warmSources.push_back(k == 0 ? editLastProcedure(corpus[k].source) : corpus[k].source);
  }

  // Cold phase: one session per kernel.
  std::vector<std::unique_ptr<AnalysisSession>> sessions;
  auto t0 = std::chrono::steady_clock::now();
  for (const std::string& source : baseSources) {
    sessions.push_back(std::make_unique<AnalysisSession>());
    SessionResult r = sessions.back()->submit(source);
    if (!r.ok) {
      result.fail("cold submit failed:\n" + r.error);
      return result;
    }
  }
  const double coldMs = msSince(t0);

  // Save phase.
  std::vector<std::string> paths;
  std::size_t snapshotBytes = 0;
  const std::string prefix = "/tmp/bench_store_" + std::to_string(::getpid()) + "_";
  t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < sessions.size(); ++k) {
    paths.push_back(prefix + std::to_string(k) + ".pano");
    store::StoreResult saved = sessions[k]->save(paths.back());
    if (!saved.ok) {
      result.fail("save failed: " + saved.error);
      return result;
    }
  }
  const double saveMs = msSince(t0);
  for (const std::string& path : paths) {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f) {
      std::fseek(f, 0, SEEK_END);
      snapshotBytes += static_cast<std::size_t>(std::ftell(f));
      std::fclose(f);
    }
  }

  // Restore phase: fresh sessions from disk.
  std::vector<std::unique_ptr<AnalysisSession>> restored;
  t0 = std::chrono::steady_clock::now();
  for (const std::string& path : paths) {
    restored.push_back(std::make_unique<AnalysisSession>());
    store::StoreResult r = restored.back()->restore(path);
    if (!r.ok) {
      result.fail("restore failed: " + r.error);
      return result;
    }
  }
  const double restoreMs = msSince(t0);

  // Warm phase, both lineages: the store contract is that these match
  // byte-for-byte.
  std::vector<SessionResult> warmInProcess(warmSources.size());
  std::vector<SessionResult> warmRestored(warmSources.size());
  std::size_t restoredReused = 0;
  for (std::size_t k = 0; k < warmSources.size(); ++k) {
    warmInProcess[k] = sessions[k]->submit(warmSources[k]);
    warmRestored[k] = restored[k]->submit(warmSources[k]);
    if (!warmInProcess[k].ok || !warmRestored[k].ok) {
      result.fail("warm submit failed");
      return result;
    }
    restoredReused += warmRestored[k].stats.summariesReused;
  }
  const bool identical = fingerprintOf(warmInProcess) == fingerprintOf(warmRestored);
  for (const std::string& path : paths) std::remove(path.c_str());

  std::printf("session store — perfect corpus, one session per kernel\n");
  std::printf("cold wall:      %.3f ms\n", coldMs);
  std::printf("save wall:      %.3f ms  (%zu bytes across %zu snapshots)\n", saveMs,
              snapshotBytes, paths.size());
  std::printf("restore wall:   %.3f ms  (%.2fx vs cold)\n", restoreMs, coldMs / restoreMs);
  std::printf("restored warm:  %zu summaries reused\n", restoredReused);
  std::printf("restored warm identical to in-process warm: %s\n", identical ? "yes" : "NO");

  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.addConfig("edit", "CONTINUE inserted into kernel 0's last procedure");
  result.add("cold_wall_ms", coldMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("save_wall_ms", saveMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("restore_wall_ms", restoreMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result
      .add("restore_speedup_vs_cold", coldMs / restoreMs, bench::Direction::HigherIsBetter, 1.0,
           "x")
      .gated = false;
  result.add("snapshot_bytes", static_cast<double>(snapshotBytes),
             bench::Direction::LowerIsBetter, 0.5, "B")
      .gated = false;
  result.add("restored_summaries_reused", static_cast<double>(restoredReused),
             bench::Direction::Exact);
  result.add("reports_identical", identical ? 1.0 : 0.0, bench::Direction::Exact);
  if (!identical)
    result.fail("restored sessions' warm reports diverge from the in-process sessions'");
  if (restoreMs > coldMs) result.fail("restore slower than re-running the cold analysis");
  return result;
}

const bench::Registration reg{{"store", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
