// Reproduces Figure 4: the cost of the analysis. The paper compared
// Panorama (parser + conventional tests + the GAR dataflow analysis)
// against Sun's `f77 -O` and against its own parser, concluding the
// sophisticated analysis costs about as much as an ordinary optimizing
// compile. We regenerate the same three-bar shape per benchmark program:
// parser-only, parser+conventional tests, and the full GAR analysis —
// elapsed time plus the analyzer's allocation counters as the memory story.
#include <map>

#include "bench_util.h"
#include "harness.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

struct Cost {
  double parseMs = 0;
  double conventionalMs = 0;
  double fullMs = 0;
  std::size_t gars = 0;
  std::size_t peakList = 0;
};

BenchResult run() {
  std::printf("Figure 4 (analysis cost) — per benchmark program\n");
  std::printf("parser-only vs +conventional dependence tests vs full GAR dataflow analysis\n\n");
  std::printf("%-8s | parse ms | +conv ms | full ms | full/parse | GARs | peak list\n",
              "program");
  std::printf("---------+----------+----------+---------+------------+------+----------\n");

  std::map<std::string, std::vector<const CorpusLoop*>> byProgram;
  for (const CorpusLoop& cl : perfectCorpus()) byProgram[cl.program].push_back(&cl);

  BenchResult result;
  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  double totalParseMs = 0, totalFullMs = 0;
  std::size_t totalGars = 0;
  constexpr int kRepeat = 20;  // timings are sub-millisecond: repeat and average
  for (const auto& [name, loops] : byProgram) {
    Cost cost;
    for (const CorpusLoop* cl : loops) {
      // parser only
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kRepeat; ++r) {
        DiagnosticEngine diags;
        auto p = parseProgram(cl->source, diags);
        (void)p;
      }
      cost.parseMs += secondsSince(t0) * 1000 / kRepeat;

      // parser + sema + conventional dependence tests
      t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kRepeat; ++r) {
        DiagnosticEngine diags;
        auto p = parseProgram(cl->source, diags);
        auto sr = analyze(*p, diags);
        ConventionalAnalyzer conv(*p, *sr);
        auto verdicts = conv.classifyProgram();
        (void)verdicts;
      }
      cost.conventionalMs += secondsSince(t0) * 1000 / kRepeat;

      // the full pipeline
      t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kRepeat; ++r) {
        LoadedKernel k = loadAndAnalyze(*cl, {});
        if (r == 0 && k.ok) {
          cost.gars += k.analyzer->stats().garsCreated;
          cost.peakList = std::max(cost.peakList, k.analyzer->stats().peakListLength);
        }
      }
      cost.fullMs += secondsSince(t0) * 1000 / kRepeat;
    }
    std::printf("%-8s | %8.2f | %8.2f | %7.2f | %9.1fx | %4zu | %8zu\n", name.c_str(),
                cost.parseMs, cost.conventionalMs, cost.fullMs,
                cost.parseMs > 0 ? cost.fullMs / cost.parseMs : 0.0, cost.gars, cost.peakList);
    // Sub-millisecond per-program timings: recorded, never gated.
    result.add(name + "_full_ms", cost.fullMs, Direction::LowerIsBetter, 3.0, "ms").gated = false;
    totalParseMs += cost.parseMs;
    totalFullMs += cost.fullMs;
    totalGars += cost.gars;
  }
  result.add("total_parse_ms", totalParseMs, Direction::LowerIsBetter, 3.0, "ms").gated = false;
  result.add("total_full_ms", totalFullMs, Direction::LowerIsBetter, 3.0, "ms");
  result.add("total_gars_created", static_cast<double>(totalGars), Direction::Exact);

  // ------------------------------------------------------------- scaling
  // The paper's programs have hundreds of loops; show the analysis cost
  // grows linearly in program size on synthesized inputs.
  std::printf("\nscaling on synthesized programs (work-array pattern per routine):\n");
  std::printf("%8s | %9s | %11s\n", "routines", "full ms", "ms/routine");
  for (int routines : {8, 32, 128}) {
    std::string src = "      program big\n      end\n";
    for (int r = 0; r < routines; ++r) {
      std::string id = std::to_string(r);
      src += "      subroutine r" + id + "(a, c, n, m)\n";
      src += "      real a(100), c(100)\n      integer n, m\n";
      src += "      do i = 1, n\n";
      src += "        do j = 1, m\n          a(j) = i + j\n        enddo\n";
      src += "        do j = 1, m\n          c(i) = c(i) + a(j)\n        enddo\n";
      src += "      enddo\n      end\n";
    }
    auto t0 = std::chrono::steady_clock::now();
    DiagnosticEngine diags;
    auto p = parseProgram(src, diags);
    auto sr = analyze(*p, diags);
    Hsg hsg = buildHsg(*p, *sr, diags);
    SummaryAnalyzer analyzer(*p, *sr, hsg, {});
    LoopParallelizer lp(analyzer);
    auto loops = lp.analyzeProgram();
    double ms = secondsSince(t0) * 1000;
    std::printf("%8d | %9.1f | %11.3f   (%zu loops analyzed)\n", routines, ms,
                ms / routines, loops.size());
    result.add("scaling_" + std::to_string(routines) + "_ms", ms, Direction::LowerIsBetter, 3.0,
               "ms").gated = false;
  }

  std::printf(
      "\nPaper's finding: the whole Panorama pipeline ran faster than `f77 -O`,\n"
      "i.e. the sophisticated analysis is affordable in absolute terms. Here the\n"
      "full GAR analysis costs milliseconds per kernel; the multiplier over the\n"
      "(very fast) parser is dominated by the symbolic set operations, with\n"
      "ARC2D filerx the most expensive (its Figure 1(b) case-splitting).\n");
  return result;
}

const Registration reg{{"fig4_compile_cost", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
