// Reproduces the speedup column of Table 1 on the simulated 8-processor
// machine (see machine_model.h and DESIGN.md for the FX/8 substitution):
// each kernel is interpreted with per-iteration operation tracing, the
// privatized-parallel execution is costed by the machine model, and the
// scrambled-order privatized run is checked against the serial run as a
// semantic witness.
#include "bench_util.h"
#include "harness.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

BenchResult run() {
  std::printf("Table 1 (loop speedups) — Alliant FX/8 measurements vs simulated 8-CPU model\n");
  std::printf("(absolute numbers are not comparable; who speeds up, and roughly how much, is)\n\n");
  std::printf("%-18s | %%seq | paper | simulated | iterations | witness\n", "loop");
  std::printf("-------------------+------+-------+-----------+------------+--------\n");

  BenchResult result;
  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.addConfig("machine", "simulated 8-CPU model (FX/8 substitution)");
  bool allOk = true;
  int witnessed = 0;
  int loops = 0;
  double speedupSum = 0;
  for (const CorpusLoop& cl : perfectCorpus()) {
    LoadedKernel k = loadAndAnalyze(cl, {});
    if (!k.ok) {
      allOk = false;
      continue;
    }

    // Trace per-iteration costs.
    Interpreter interp(k.program, k.sema);
    Interpreter::Config cfg;
    cfg.traceLoop = k.loopStmt;
    auto res = interp.run(cfg);
    if (!res.ok) {
      std::printf("%-18s | interpreter failed: %s\n", cl.id.c_str(), res.error.c_str());
      allOk = false;
      continue;
    }

    MachineConfig mc;
    mc.processors = 8;
    mc.vectorFactor = cl.vectorFactor;
    SpeedupEstimate est = estimateSpeedup(interp.trace().iterOps, mc);

    // Witness: scrambled privatized execution must match serially-computed
    // memory on live-out arrays.
    std::vector<ArrayId> privatized;
    std::set<ArrayId> dead;
    for (const ArrayPrivatization& ap : k.loop.arrays) {
      bool groundTruth = ap.privatizable ||
                         std::find(cl.notPrivatizable.begin(), cl.notPrivatizable.end(),
                                   ap.name) != cl.notPrivatizable.end();
      if (!groundTruth) continue;
      privatized.push_back(ap.array);
      if (!ap.needsCopyOut) dead.insert(ap.array);
    }
    Interpreter scrambled(k.program, k.sema);
    Interpreter::Config scfg;
    scfg.privatizeLoop = k.loopStmt;
    scfg.privatizedArrays = privatized;
    scfg.scrambleSeed = 1234;
    auto sres = scrambled.run(scfg);
    bool witness = sres.ok;
    if (witness) {
      for (const auto& [id, store] : interp.arrays()) {
        if (dead.count(id)) continue;
        auto it = scrambled.arrays().find(id);
        if (it == scrambled.arrays().end() ? !store.empty() : it->second != store)
          witness = false;
      }
    }
    allOk = allOk && witness;
    witnessed += witness;
    ++loops;
    speedupSum += est.speedup;

    std::printf("%-18s | %4.0f%% |  %4.1f |   %6.1f  |   %6zu   | %s\n", cl.id.c_str(),
                cl.paperSeqPercent, cl.paperSpeedup, est.speedup,
                interp.trace().iterOps.size(), witness ? "ok" : "FAILED");
  }
  std::printf("\nwitness = privatized scrambled-order execution matches serial memory\n");

  result.add("loops", loops, Direction::Exact);
  result.add("witnessed_loops", witnessed, Direction::Exact);
  // The machine model is deterministic, so the mean simulated speedup is
  // exact too — a change means the model or the analysis moved.
  result.add("mean_simulated_speedup", loops ? speedupSum / loops : 0.0, Direction::Exact, 0.0,
             "x");
  if (!allOk) result.fail("a privatized scrambled-order run diverged from serial memory");
  return result;
}

const Registration reg{{"table1_speedup", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
