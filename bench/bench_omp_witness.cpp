// The transformation the analysis licenses, executed for real: a C++
// rendition of the TRFD olda/100 kernel with its work arrays privatized, run
// serially and with OpenMP worksharing, must agree bit for bit. (On this
// host the parallel run may not be faster — the witness is about semantics,
// complementing the simulated FX/8 speedups of bench_table1_speedup.)
#include <chrono>
#include <cstdio>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "harness.h"

namespace {

constexpr int kNrs = 256;
constexpr int kMrs = 192;

/// The original loop: xrsiq/xij are shared scratch — a compiler may NOT
/// parallelize this as-is (loop-carried output dependences).
void oldaSerial(std::vector<double>& x) {
  std::vector<double> xrsiq(kMrs + 1);
  std::vector<double> xij(kMrs + 1);
  for (int i = 1; i <= kNrs; ++i) {
    for (int j = 1; j <= kMrs; ++j) xrsiq[j] = x[i * (kMrs + 1) + j] * 2.0;
    for (int j = 1; j <= kMrs; ++j) xij[j] = xrsiq[j] + 1.0;
    for (int j = 1; j <= kMrs; ++j) x[i * (kMrs + 1) + j] = xij[j];
  }
}

/// The transformed loop the analysis licenses: each iteration gets private
/// copies of the privatizable work arrays (OpenMP `private` semantics).
void oldaPrivatizedParallel(std::vector<double>& x) {
#pragma omp parallel
  {
    std::vector<double> xrsiq(kMrs + 1);  // the privatized copies
    std::vector<double> xij(kMrs + 1);
#pragma omp for schedule(static)
    for (int i = 1; i <= kNrs; ++i) {
      for (int j = 1; j <= kMrs; ++j) xrsiq[j] = x[i * (kMrs + 1) + j] * 2.0;
      for (int j = 1; j <= kMrs; ++j) xij[j] = xrsiq[j] + 1.0;
      for (int j = 1; j <= kMrs; ++j) x[i * (kMrs + 1) + j] = xij[j];
    }
  }
}

std::vector<double> freshInput() {
  std::vector<double> x((kNrs + 1) * (kMrs + 1));
  for (std::size_t k = 0; k < x.size(); ++k) x[k] = static_cast<double>(k % 97) - 48.0;
  return x;
}

double seconds(void (*fn)(std::vector<double>&), std::vector<double>& x) {
  auto t0 = std::chrono::steady_clock::now();
  fn(x);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

panorama::bench::BenchResult run() {
  using panorama::bench::Direction;
  std::printf("OpenMP privatization witness — TRFD olda/100 shape (%d x %d)\n", kNrs, kMrs);
  panorama::bench::BenchResult result;
  result.addConfig("kernel", "TRFD olda/100 shape");
#ifdef _OPENMP
  std::printf("OpenMP enabled, max threads = %d\n", omp_get_max_threads());
  result.addConfig("openmp", "enabled");
#else
  std::printf("OpenMP not available: the 'parallel' version runs serially\n");
  result.addConfig("openmp", "unavailable");
#endif

  std::vector<double> serial = freshInput();
  std::vector<double> parallel = freshInput();
  double ts = seconds(oldaSerial, serial);
  double tp = seconds(oldaPrivatizedParallel, parallel);

  bool equal = serial == parallel;
  std::printf("serial:               %8.3f ms\n", ts * 1000);
  std::printf("privatized parallel:  %8.3f ms\n", tp * 1000);
  std::printf("results identical:    %s\n", equal ? "yes" : "NO — privatization unsound!");

  // Millisecond kernels on a shared runner: recorded, never gated.
  result.add("serial_ms", ts * 1000, Direction::LowerIsBetter, 3.0, "ms").gated = false;
  result.add("parallel_ms", tp * 1000, Direction::LowerIsBetter, 3.0, "ms").gated = false;
  if (!equal) result.fail("privatized parallel run diverged from serial — unsound");
  return result;
}

const panorama::bench::Registration reg{{"omp_witness", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
