// The incremental-session bench: cold analysis of the whole Perfect corpus
// versus a warm re-analysis after a single-procedure edit, emitted as JSON
// (to stdout and, when a path is given as argv[1], to that file).
//
// Setup: one persistent AnalysisSession per corpus kernel. The cold phase
// submits every kernel's source; the warm phase re-submits every source
// with exactly one kernel edited — a CONTINUE inserted into its textually
// last procedure, which changes that procedure's fingerprint without
// shifting any other procedure's lines. Everything outside the edited
// kernel's dirty cone is served from the session caches, so warm wall time
// collapses to roughly the edited cone's share of the corpus.
//
// Contracts checked here (and by the CI smoke run):
//   * warm reports are byte-identical to a cold analysis of the edited
//     sources (exit 2 otherwise);
//   * warm wall time does not exceed cold wall time (exit 3 otherwise).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "panorama/corpus/corpus.h"
#include "panorama/session/session.h"

using namespace panorama;

namespace {

/// Inserts a CONTINUE statement at the end of the file's last procedure
/// body: a real statement (the procedure's fingerprint changes) that leaves
/// every other procedure's text and line numbers untouched.
std::string editLastProcedure(const std::string& source) {
  std::size_t pos = source.rfind("\n      end");
  if (pos == std::string::npos) return source;
  return source.substr(0, pos + 1) + "      continue\n" + source.substr(pos + 1);
}

std::string fingerprintOf(const std::vector<SessionResult>& results) {
  std::string out;
  for (const SessionResult& r : results)
    for (const SessionLoopResult& loop : r.loops) {
      out += loop.procName;
      out += '|';
      out += std::to_string(loop.line);
      out += '|';
      out += toString(loop.classification);
      out += '\n';
      out += loop.report;
    }
  return out;
}

struct RunResult {
  double coldMs = 0;
  double warmMs = 0;
  std::size_t warmReused = 0;
  std::size_t warmRecomputed = 0;
  std::size_t warmDirty = 0;
  std::string warmFingerprint;
};

RunResult runOnce(const std::vector<std::string>& baseSources,
                  const std::vector<std::string>& warmSources) {
  RunResult rr;
  std::vector<std::unique_ptr<AnalysisSession>> sessions;
  sessions.reserve(baseSources.size());
  for (std::size_t k = 0; k < baseSources.size(); ++k)
    sessions.push_back(std::make_unique<AnalysisSession>());

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < baseSources.size(); ++k) {
    SessionResult r = sessions[k]->submit(baseSources[k]);
    if (!r.ok) {
      std::fprintf(stderr, "cold submit %zu failed:\n%s", k, r.error.c_str());
      std::exit(1);
    }
  }
  rr.coldMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  std::vector<SessionResult> warm(warmSources.size());
  t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < warmSources.size(); ++k) {
    warm[k] = sessions[k]->submit(warmSources[k]);
    if (!warm[k].ok) {
      std::fprintf(stderr, "warm submit %zu failed:\n%s", k, warm[k].error.c_str());
      std::exit(1);
    }
  }
  rr.warmMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  for (const SessionResult& r : warm) {
    rr.warmReused += r.stats.summariesReused;
    rr.warmRecomputed += r.stats.summariesRecomputed;
    rr.warmDirty += r.stats.dirty;
  }
  rr.warmFingerprint = fingerprintOf(warm);
  return rr;
}

void emit(FILE* f, const std::string& editedKernel, const RunResult& best, bool identical) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"incremental\",\n");
  std::fprintf(f, "  \"corpus\": \"perfect (Table 1/2 kernels)\",\n");
  std::fprintf(f, "  \"edited_kernel\": \"%s\",\n", editedKernel.c_str());
  std::fprintf(f, "  \"edit\": \"CONTINUE inserted into the kernel's last procedure\",\n");
  std::fprintf(f, "  \"cold_wall_ms\": %.3f,\n", best.coldMs);
  std::fprintf(f, "  \"warm_wall_ms\": %.3f,\n", best.warmMs);
  std::fprintf(f, "  \"warm_speedup\": %.2f,\n", best.coldMs / best.warmMs);
  std::fprintf(f, "  \"warm_summaries_reused\": %zu,\n", best.warmReused);
  std::fprintf(f, "  \"warm_summaries_recomputed\": %zu,\n", best.warmRecomputed);
  std::fprintf(f, "  \"warm_dirty_cone\": %zu,\n", best.warmDirty);
  std::fprintf(f, "  \"warm_identical_to_cold\": %s\n", identical ? "true" : "false");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kRepeats = 5;

  std::vector<std::string> baseSources;
  std::vector<std::string> warmSources;
  std::string editedKernel;
  const std::vector<CorpusLoop>& corpus = perfectCorpus();
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    baseSources.push_back(corpus[k].source);
    // Edit exactly one kernel; every other kernel resubmits unchanged.
    if (k == 0) {
      warmSources.push_back(editLastProcedure(corpus[k].source));
      editedKernel = corpus[k].id;
      if (warmSources.back() == baseSources.back()) {
        std::fprintf(stderr, "edit had no effect on kernel %s\n", editedKernel.c_str());
        return 1;
      }
    } else {
      warmSources.push_back(corpus[k].source);
    }
  }

  // Reference: a cold analysis of the edited sources, for the identity check.
  std::string coldEditedFingerprint;
  {
    std::vector<SessionResult> ref(warmSources.size());
    for (std::size_t k = 0; k < warmSources.size(); ++k) {
      AnalysisSession session;
      ref[k] = session.submit(warmSources[k]);
      if (!ref[k].ok) {
        std::fprintf(stderr, "reference submit %zu failed:\n%s", k, ref[k].error.c_str());
        return 1;
      }
    }
    coldEditedFingerprint = fingerprintOf(ref);
  }

  RunResult best;
  best.coldMs = 1e18;
  best.warmMs = 1e18;
  bool identical = true;
  for (int r = 0; r < kRepeats; ++r) {
    RunResult rr = runOnce(baseSources, warmSources);
    identical = identical && rr.warmFingerprint == coldEditedFingerprint;
    if (rr.warmMs < best.warmMs) {
      double coldMs = std::min(best.coldMs, rr.coldMs);
      best = rr;
      best.coldMs = coldMs;
    } else {
      best.coldMs = std::min(best.coldMs, rr.coldMs);
    }
  }

  emit(stdout, editedKernel, best, identical);
  if (argc > 1) {
    if (FILE* f = std::fopen(argv[1], "w")) {
      emit(f, editedKernel, best, identical);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  if (!identical) return 2;
  if (best.warmMs > best.coldMs) return 3;
  return 0;
}
