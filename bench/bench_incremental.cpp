// The incremental-session bench: cold analysis of the whole Perfect corpus
// versus a warm re-analysis after a single-procedure edit.
//
// Setup: one persistent AnalysisSession per corpus kernel. The cold phase
// submits every kernel's source; the warm phase re-submits every source
// with exactly one kernel edited — a CONTINUE inserted into its textually
// last procedure, which changes that procedure's fingerprint without
// shifting any other procedure's lines. Everything outside the edited
// kernel's dirty cone is served from the session caches, so warm wall time
// collapses to roughly the edited cone's share of the corpus.
//
// Contracts checked here (the bench fails, and CI with it, when violated):
//   * warm reports are byte-identical to a cold analysis of the edited
//     sources;
//   * warm wall time does not exceed cold wall time;
//   * reuse counters are exact — a change in the dirty-cone size is a
//     behavior change, not noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "panorama/corpus/corpus.h"
#include "panorama/session/session.h"

using namespace panorama;

namespace {

/// Inserts a CONTINUE statement at the end of the file's last procedure
/// body: a real statement (the procedure's fingerprint changes) that leaves
/// every other procedure's text and line numbers untouched.
std::string editLastProcedure(const std::string& source) {
  std::size_t pos = source.rfind("\n      end");
  if (pos == std::string::npos) return source;
  return source.substr(0, pos + 1) + "      continue\n" + source.substr(pos + 1);
}

std::string fingerprintOf(const std::vector<SessionResult>& results) {
  std::string out;
  for (const SessionResult& r : results)
    for (const SessionLoopResult& loop : r.loops) {
      out += loop.procName;
      out += '|';
      out += std::to_string(loop.line);
      out += '|';
      out += toString(loop.classification);
      out += '\n';
      out += loop.report;
    }
  return out;
}

struct RunResult {
  bool ok = true;
  std::string error;
  double coldMs = 0;
  double warmMs = 0;
  std::size_t warmReused = 0;
  std::size_t warmRecomputed = 0;
  std::size_t warmDirty = 0;
  std::string warmFingerprint;
};

RunResult runOnce(const std::vector<std::string>& baseSources,
                  const std::vector<std::string>& warmSources) {
  RunResult rr;
  std::vector<std::unique_ptr<AnalysisSession>> sessions;
  sessions.reserve(baseSources.size());
  for (std::size_t k = 0; k < baseSources.size(); ++k)
    sessions.push_back(std::make_unique<AnalysisSession>());

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < baseSources.size(); ++k) {
    SessionResult r = sessions[k]->submit(baseSources[k]);
    if (!r.ok) {
      rr.ok = false;
      rr.error = "cold submit " + std::to_string(k) + " failed:\n" + r.error;
      return rr;
    }
  }
  rr.coldMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  std::vector<SessionResult> warm(warmSources.size());
  t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < warmSources.size(); ++k) {
    warm[k] = sessions[k]->submit(warmSources[k]);
    if (!warm[k].ok) {
      rr.ok = false;
      rr.error = "warm submit " + std::to_string(k) + " failed:\n" + warm[k].error;
      return rr;
    }
  }
  rr.warmMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  for (const SessionResult& r : warm) {
    rr.warmReused += r.stats.summariesReused;
    rr.warmRecomputed += r.stats.summariesRecomputed;
    rr.warmDirty += r.stats.dirty;
  }
  rr.warmFingerprint = fingerprintOf(warm);
  return rr;
}

// ----- single-loop-edit scenario (loop-granular reuse, DESIGN.md §4.9) -----
//
// One procedure with kNests independent top-level loop nests; the edit
// changes a constant inside the FIRST nest. Item-granular invalidation
// keeps every *later* nest reusable (an edit to item k dirties the items
// before k — their statement suffix contains k — and none after it), so
// editing the first nest is the best case the tentpole is gated on: one
// nest recomputed, kNests-1 served from cache. The baseline it is measured
// against is the same session with loopGranularReuse=false — the
// procedure-granular reuse of the previous design, which recomputes every
// nest in the dirty procedure.

constexpr int kNests = 24;

std::string manyLoopSource(bool edited) {
  std::string src;
  src += "      subroutine kern(a, b, n)\n";
  src += "      integer n\n";
  src += "      real a(1000," + std::to_string(kNests) + ")\n";
  src += "      real b(1000," + std::to_string(kNests) + ")\n";
  src += "      real t\n";
  src += "      integer i, j, m\n";
  for (int k = 1; k <= kNests; ++k) {
    const int lbl = 100 * k;
    const std::string col = std::to_string(k);
    // The first nest carries the edit: a different constant in its body.
    const std::string c = (edited && k == 1) ? "3.0" : "1.0";
    src += "      do " + std::to_string(lbl) + " i = 1, n\n";
    src += "      do " + std::to_string(lbl + 1) + " j = 1, n\n";
    src += "      do " + std::to_string(lbl + 2) + " m = 1, n\n";
    src += "      t = a(m," + col + ") + " + c + "\n";
    src += "      b(m," + col + ") = t * 2.0\n";
    src += std::to_string(lbl + 2) + "   continue\n";
    src += std::to_string(lbl + 1) + "   continue\n";
    src += std::to_string(lbl) + "   continue\n";
  }
  src += "      end\n";
  return src;
}

std::string reportsOf(const SessionResult& r) {
  std::string out;
  for (const SessionLoopResult& loop : r.loops) {
    out += loop.report;
    out += loop.provenance;
  }
  return out;
}

struct LoopEditRun {
  bool ok = true;
  std::string error;
  double warmMs = 0;
  std::size_t loopSkips = 0;
  std::string reports;
};

LoopEditRun runLoopEdit(bool loopGranular, int threads) {
  LoopEditRun out;
  AnalysisOptions options;
  options.loopGranularReuse = loopGranular;
  options.numThreads = threads;
  AnalysisSession session(options);
  SessionResult cold = session.submit(manyLoopSource(/*edited=*/false));
  if (!cold.ok) {
    out.ok = false;
    out.error = "loop-edit cold submit failed:\n" + cold.error;
    return out;
  }
  const auto t0 = std::chrono::steady_clock::now();
  SessionResult warm = session.submit(manyLoopSource(/*edited=*/true));
  out.warmMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  if (!warm.ok) {
    out.ok = false;
    out.error = "loop-edit warm submit failed:\n" + warm.error;
    return out;
  }
  out.loopSkips = warm.stats.loopSkips;
  out.reports = reportsOf(warm);
  return out;
}

/// Comment-only edit: a comment line inserted above the first nest shifts
/// every loop's text down one line without changing any fingerprint. The
/// contract (gated Exact): dirty cone 0, and the cached reports cite the
/// post-edit lines.
bool runCommentEdit(std::size_t* dirty, std::string* error) {
  AnalysisSession session;
  SessionResult cold = session.submit(manyLoopSource(/*edited=*/false));
  if (!cold.ok) {
    *error = "comment-edit cold submit failed:\n" + cold.error;
    return false;
  }
  std::string shifted = manyLoopSource(/*edited=*/false);
  const std::string anchor = "      do 100 i";
  const std::size_t pos = shifted.find(anchor);
  if (pos == std::string::npos) {
    *error = "comment-edit anchor not found";
    return false;
  }
  shifted.insert(pos, "c shifted by one line\n");
  SessionResult warm = session.submit(shifted);
  if (!warm.ok) {
    *error = "comment-edit warm submit failed:\n" + warm.error;
    return false;
  }
  *dirty = warm.stats.dirty;
  // Every cached citation must point one line below its cold position.
  if (warm.loops.size() != cold.loops.size()) {
    *error = "comment-edit changed the loop count";
    return false;
  }
  for (std::size_t k = 0; k < warm.loops.size(); ++k)
    if (warm.loops[k].line != cold.loops[k].line + 1) {
      *error = "comment-edit line citation not remapped (loop " + std::to_string(k) + ": " +
               std::to_string(warm.loops[k].line) + " vs cold " +
               std::to_string(cold.loops[k].line) + ")";
      return false;
    }
  return true;
}

bench::BenchResult run() {
  constexpr int kRepeats = 5;
  bench::BenchResult result;

  std::vector<std::string> baseSources;
  std::vector<std::string> warmSources;
  std::string editedKernel;
  const std::vector<CorpusLoop>& corpus = perfectCorpus();
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    baseSources.push_back(corpus[k].source);
    // Edit exactly one kernel; every other kernel resubmits unchanged.
    if (k == 0) {
      warmSources.push_back(editLastProcedure(corpus[k].source));
      editedKernel = corpus[k].id;
      if (warmSources.back() == baseSources.back()) {
        result.fail("edit had no effect on kernel " + editedKernel);
        return result;
      }
    } else {
      warmSources.push_back(corpus[k].source);
    }
  }

  // Reference: a cold analysis of the edited sources, for the identity check.
  std::string coldEditedFingerprint;
  {
    std::vector<SessionResult> ref(warmSources.size());
    for (std::size_t k = 0; k < warmSources.size(); ++k) {
      AnalysisSession session;
      ref[k] = session.submit(warmSources[k]);
      if (!ref[k].ok) {
        result.fail("reference submit " + std::to_string(k) + " failed:\n" + ref[k].error);
        return result;
      }
    }
    coldEditedFingerprint = fingerprintOf(ref);
  }

  RunResult best;
  best.coldMs = 1e18;
  best.warmMs = 1e18;
  bool identical = true;
  for (int r = 0; r < kRepeats; ++r) {
    RunResult rr = runOnce(baseSources, warmSources);
    if (!rr.ok) {
      result.fail(rr.error);
      return result;
    }
    identical = identical && rr.warmFingerprint == coldEditedFingerprint;
    if (rr.warmMs < best.warmMs) {
      double coldMs = std::min(best.coldMs, rr.coldMs);
      best = rr;
      best.coldMs = coldMs;
    } else {
      best.coldMs = std::min(best.coldMs, rr.coldMs);
    }
  }

  std::printf("incremental sessions — perfect corpus, one edited kernel (%s)\n",
              editedKernel.c_str());
  std::printf("cold wall:   %.3f ms\n", best.coldMs);
  std::printf("warm wall:   %.3f ms  (%.2fx)\n", best.warmMs, best.coldMs / best.warmMs);
  std::printf("warm reuse:  %zu summaries reused, %zu recomputed, dirty cone %zu\n",
              best.warmReused, best.warmRecomputed, best.warmDirty);
  std::printf("warm identical to cold-of-edited: %s\n", identical ? "yes" : "NO");

  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.addConfig("edited_kernel", editedKernel);
  result.addConfig("edit", "CONTINUE inserted into the kernel's last procedure");
  result.add("cold_wall_ms", best.coldMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("warm_wall_ms", best.warmMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("warm_speedup", best.coldMs / best.warmMs, bench::Direction::HigherIsBetter, 1.0, "x")
      .gated = false;
  result.add("warm_summaries_reused", static_cast<double>(best.warmReused),
             bench::Direction::Exact);
  result.add("warm_summaries_recomputed", static_cast<double>(best.warmRecomputed),
             bench::Direction::Exact);
  result.add("warm_dirty_cone", static_cast<double>(best.warmDirty), bench::Direction::Exact);
  if (!identical) result.fail("warm reports diverge from a cold analysis of the edited sources");
  if (best.warmMs > best.coldMs) result.fail("warm re-analysis slower than cold analysis");

  // ---- single-loop-edit scenario ----
  // Reference: a cold analysis of the edited source; warm runs at every
  // granularity and thread count must reproduce it byte for byte.
  std::string loopEditReference;
  {
    AnalysisSession session;
    SessionResult ref = session.submit(manyLoopSource(/*edited=*/true));
    if (!ref.ok) {
      result.fail("loop-edit reference submit failed:\n" + ref.error);
      return result;
    }
    loopEditReference = reportsOf(ref);
  }
  double bestLoopMs = 1e18;
  double bestUnitMs = 1e18;
  std::size_t loopSkips = 0;
  bool loopIdentical = true;
  for (int r = 0; r < kRepeats; ++r) {
    LoopEditRun granular = runLoopEdit(/*loopGranular=*/true, /*threads=*/1);
    if (!granular.ok) {
      result.fail(granular.error);
      return result;
    }
    LoopEditRun unitOnly = runLoopEdit(/*loopGranular=*/false, /*threads=*/1);
    if (!unitOnly.ok) {
      result.fail(unitOnly.error);
      return result;
    }
    bestLoopMs = std::min(bestLoopMs, granular.warmMs);
    bestUnitMs = std::min(bestUnitMs, unitOnly.warmMs);
    loopSkips = granular.loopSkips;
    loopIdentical = loopIdentical && granular.reports == loopEditReference &&
                    unitOnly.reports == loopEditReference;
  }
  // Determinism across execution options: the loop-granular warm run is
  // byte-identical at 4 and 8 threads too.
  for (int threads : {4, 8}) {
    LoopEditRun t = runLoopEdit(/*loopGranular=*/true, threads);
    if (!t.ok) {
      result.fail(t.error);
      return result;
    }
    loopIdentical = loopIdentical && t.reports == loopEditReference;
  }
  std::size_t commentDirty = static_cast<std::size_t>(-1);
  std::string commentError;
  if (!runCommentEdit(&commentDirty, &commentError)) {
    result.fail(commentError);
    return result;
  }

  std::printf("single-loop edit — %d-nest procedure, first nest edited\n", kNests);
  std::printf("warm wall:   %.3f ms loop-granular vs %.3f ms unit-granular (%.2fx)\n", bestLoopMs,
              bestUnitMs, bestUnitMs / bestLoopMs);
  std::printf("loop skips:  %zu reused inside the dirty procedure\n", loopSkips);
  std::printf("comment-only edit dirty cone: %zu\n", commentDirty);

  result.addConfig("loop_edit", "constant changed inside the first of " + std::to_string(kNests) +
                                    " independent nests");
  result.add("single_loop_edit_warm_ms", bestLoopMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result
      .add("single_loop_edit_speedup_vs_unit", bestUnitMs / bestLoopMs,
           bench::Direction::HigherIsBetter, 0.5, "x")
      .minValue = 3.0;  // the §4.9 gate: >=3x over procedure-granular reuse
  result.add("single_loop_edit_loop_skips", static_cast<double>(loopSkips),
             bench::Direction::Exact);
  result.add("single_loop_edit_reports_identical", loopIdentical ? 1.0 : 0.0,
             bench::Direction::Exact);
  result.add("comment_edit_dirty", static_cast<double>(commentDirty), bench::Direction::Exact);
  if (!loopIdentical)
    result.fail("loop-granular warm reports diverge from a cold analysis of the edited source");
  return result;
}

const bench::Registration reg{{"incremental", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
