// The incremental-session bench: cold analysis of the whole Perfect corpus
// versus a warm re-analysis after a single-procedure edit.
//
// Setup: one persistent AnalysisSession per corpus kernel. The cold phase
// submits every kernel's source; the warm phase re-submits every source
// with exactly one kernel edited — a CONTINUE inserted into its textually
// last procedure, which changes that procedure's fingerprint without
// shifting any other procedure's lines. Everything outside the edited
// kernel's dirty cone is served from the session caches, so warm wall time
// collapses to roughly the edited cone's share of the corpus.
//
// Contracts checked here (the bench fails, and CI with it, when violated):
//   * warm reports are byte-identical to a cold analysis of the edited
//     sources;
//   * warm wall time does not exceed cold wall time;
//   * reuse counters are exact — a change in the dirty-cone size is a
//     behavior change, not noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "panorama/corpus/corpus.h"
#include "panorama/session/session.h"

using namespace panorama;

namespace {

/// Inserts a CONTINUE statement at the end of the file's last procedure
/// body: a real statement (the procedure's fingerprint changes) that leaves
/// every other procedure's text and line numbers untouched.
std::string editLastProcedure(const std::string& source) {
  std::size_t pos = source.rfind("\n      end");
  if (pos == std::string::npos) return source;
  return source.substr(0, pos + 1) + "      continue\n" + source.substr(pos + 1);
}

std::string fingerprintOf(const std::vector<SessionResult>& results) {
  std::string out;
  for (const SessionResult& r : results)
    for (const SessionLoopResult& loop : r.loops) {
      out += loop.procName;
      out += '|';
      out += std::to_string(loop.line);
      out += '|';
      out += toString(loop.classification);
      out += '\n';
      out += loop.report;
    }
  return out;
}

struct RunResult {
  bool ok = true;
  std::string error;
  double coldMs = 0;
  double warmMs = 0;
  std::size_t warmReused = 0;
  std::size_t warmRecomputed = 0;
  std::size_t warmDirty = 0;
  std::string warmFingerprint;
};

RunResult runOnce(const std::vector<std::string>& baseSources,
                  const std::vector<std::string>& warmSources) {
  RunResult rr;
  std::vector<std::unique_ptr<AnalysisSession>> sessions;
  sessions.reserve(baseSources.size());
  for (std::size_t k = 0; k < baseSources.size(); ++k)
    sessions.push_back(std::make_unique<AnalysisSession>());

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < baseSources.size(); ++k) {
    SessionResult r = sessions[k]->submit(baseSources[k]);
    if (!r.ok) {
      rr.ok = false;
      rr.error = "cold submit " + std::to_string(k) + " failed:\n" + r.error;
      return rr;
    }
  }
  rr.coldMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  std::vector<SessionResult> warm(warmSources.size());
  t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < warmSources.size(); ++k) {
    warm[k] = sessions[k]->submit(warmSources[k]);
    if (!warm[k].ok) {
      rr.ok = false;
      rr.error = "warm submit " + std::to_string(k) + " failed:\n" + warm[k].error;
      return rr;
    }
  }
  rr.warmMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  for (const SessionResult& r : warm) {
    rr.warmReused += r.stats.summariesReused;
    rr.warmRecomputed += r.stats.summariesRecomputed;
    rr.warmDirty += r.stats.dirty;
  }
  rr.warmFingerprint = fingerprintOf(warm);
  return rr;
}

bench::BenchResult run() {
  constexpr int kRepeats = 5;
  bench::BenchResult result;

  std::vector<std::string> baseSources;
  std::vector<std::string> warmSources;
  std::string editedKernel;
  const std::vector<CorpusLoop>& corpus = perfectCorpus();
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    baseSources.push_back(corpus[k].source);
    // Edit exactly one kernel; every other kernel resubmits unchanged.
    if (k == 0) {
      warmSources.push_back(editLastProcedure(corpus[k].source));
      editedKernel = corpus[k].id;
      if (warmSources.back() == baseSources.back()) {
        result.fail("edit had no effect on kernel " + editedKernel);
        return result;
      }
    } else {
      warmSources.push_back(corpus[k].source);
    }
  }

  // Reference: a cold analysis of the edited sources, for the identity check.
  std::string coldEditedFingerprint;
  {
    std::vector<SessionResult> ref(warmSources.size());
    for (std::size_t k = 0; k < warmSources.size(); ++k) {
      AnalysisSession session;
      ref[k] = session.submit(warmSources[k]);
      if (!ref[k].ok) {
        result.fail("reference submit " + std::to_string(k) + " failed:\n" + ref[k].error);
        return result;
      }
    }
    coldEditedFingerprint = fingerprintOf(ref);
  }

  RunResult best;
  best.coldMs = 1e18;
  best.warmMs = 1e18;
  bool identical = true;
  for (int r = 0; r < kRepeats; ++r) {
    RunResult rr = runOnce(baseSources, warmSources);
    if (!rr.ok) {
      result.fail(rr.error);
      return result;
    }
    identical = identical && rr.warmFingerprint == coldEditedFingerprint;
    if (rr.warmMs < best.warmMs) {
      double coldMs = std::min(best.coldMs, rr.coldMs);
      best = rr;
      best.coldMs = coldMs;
    } else {
      best.coldMs = std::min(best.coldMs, rr.coldMs);
    }
  }

  std::printf("incremental sessions — perfect corpus, one edited kernel (%s)\n",
              editedKernel.c_str());
  std::printf("cold wall:   %.3f ms\n", best.coldMs);
  std::printf("warm wall:   %.3f ms  (%.2fx)\n", best.warmMs, best.coldMs / best.warmMs);
  std::printf("warm reuse:  %zu summaries reused, %zu recomputed, dirty cone %zu\n",
              best.warmReused, best.warmRecomputed, best.warmDirty);
  std::printf("warm identical to cold-of-edited: %s\n", identical ? "yes" : "NO");

  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.addConfig("edited_kernel", editedKernel);
  result.addConfig("edit", "CONTINUE inserted into the kernel's last procedure");
  result.add("cold_wall_ms", best.coldMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("warm_wall_ms", best.warmMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("warm_speedup", best.coldMs / best.warmMs, bench::Direction::HigherIsBetter, 1.0, "x")
      .gated = false;
  result.add("warm_summaries_reused", static_cast<double>(best.warmReused),
             bench::Direction::Exact);
  result.add("warm_summaries_recomputed", static_cast<double>(best.warmRecomputed),
             bench::Direction::Exact);
  result.add("warm_dirty_cone", static_cast<double>(best.warmDirty), bench::Direction::Exact);
  if (!identical) result.fail("warm reports diverge from a cold analysis of the edited sources");
  if (best.warmMs > best.coldMs) result.fail("warm re-analysis slower than cold analysis");
  return result;
}

const bench::Registration reg{{"incremental", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
