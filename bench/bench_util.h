// Shared plumbing for the reproduction benches: parse + analyze a corpus
// kernel under a given option set and fetch its evaluated loop.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>

#include "panorama/analysis/analysis.h"
#include "panorama/corpus/corpus.h"
#include "panorama/deptest/deptest.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"
#include "panorama/machine/machine_model.h"

namespace panorama::bench {

struct LoadedKernel {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
  LoopAnalysis loop;
  const Stmt* loopStmt = nullptr;
  bool ok = false;
};

inline LoadedKernel loadAndAnalyze(const CorpusLoop& cl, AnalysisOptions options = {}) {
  LoadedKernel k;
  DiagnosticEngine diags;
  auto p = parseProgram(cl.source, diags);
  if (!p) {
    std::fprintf(stderr, "%s: parse failed\n%s\n", cl.id.c_str(), diags.str().c_str());
    return k;
  }
  k.program = std::move(*p);
  auto sr = analyze(k.program, diags);
  if (!sr) {
    std::fprintf(stderr, "%s: sema failed\n%s\n", cl.id.c_str(), diags.str().c_str());
    return k;
  }
  k.sema = std::move(*sr);
  k.hsg = buildHsg(k.program, k.sema, diags);
  k.analyzer = std::make_unique<SummaryAnalyzer>(k.program, k.sema, k.hsg, options);
  k.analyzer->analyzeAll();
  k.loopStmt = findOuterLoop(k.program, cl.routine, cl.outerLoopIndex);
  if (!k.loopStmt) {
    std::fprintf(stderr, "%s: loop not found\n", cl.id.c_str());
    return k;
  }
  LoopParallelizer lp(*k.analyzer);
  k.loop = lp.analyzeLoop(*k.loopStmt, *k.program.findProcedure(cl.routine));
  k.ok = true;
  return k;
}

inline bool arrayPrivatizable(const LoopAnalysis& la, const std::string& name) {
  for (const ArrayPrivatization& ap : la.arrays)
    if (ap.name == name) return ap.privatizable;
  return false;
}

inline bool allListedPrivatizable(const LoopAnalysis& la, const CorpusLoop& cl) {
  for (const std::string& name : cl.privatizable)
    if (!arrayPrivatizable(la, name)) return false;
  return true;
}

inline double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace panorama::bench
