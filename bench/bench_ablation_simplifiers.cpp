// Ablations for the design choices §3.1/§5.2 call out: the GAR simplifier,
// the Fourier-Motzkin fallback behind the predicate simplifier, and the
// on-the-fly substitution. For each configuration: does the corpus still
// privatize, how large do the GAR lists grow, and what does analysis cost?
#include "bench_util.h"
#include "harness.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

struct AblationRow {
  const char* name;
  const char* slug;
  AnalysisOptions options;
};

BenchResult run() {
  AnalysisOptions full;
  AnalysisOptions noGarSimp;
  noGarSimp.garSimplifier = false;
  AnalysisOptions noT1;
  noT1.symbolicAnalysis = false;
  AnalysisOptions noT2;
  noT2.ifConditions = false;
  AnalysisOptions noT3;
  noT3.interprocedural = false;
  AnalysisOptions noDe;
  noDe.computeDE = false;
  AnalysisOptions withQuant;
  withQuant.quantified = true;

  const AblationRow rows[] = {
      {"full analysis", "full", full},
      {"no GAR simplifier", "no_gar_simplifier", noGarSimp},
      {"no symbolic analysis", "no_symbolic", noT1},
      {"no IF conditions", "no_if_conditions", noT2},
      {"no interprocedural", "no_interprocedural", noT3},
      {"no DE sets", "no_de_sets", noDe},
      {"+ quantified ext", "quantified_ext", withQuant},
  };

  std::printf("Ablations over the 12-loop Perfect corpus\n\n");
  std::printf("%-22s | privatized loops | GARs created | peak list | time ms\n", "configuration");
  std::printf("-----------------------+------------------+--------------+-----------+--------\n");

  BenchResult result;
  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  for (const AblationRow& row : rows) {
    int privatized = 0;
    std::size_t gars = 0;
    std::size_t peak = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const CorpusLoop& cl : perfectCorpus()) {
      LoadedKernel k = loadAndAnalyze(cl, row.options);
      if (!k.ok) continue;
      privatized += allListedPrivatizable(k.loop, cl);
      gars += k.analyzer->stats().garsCreated;
      peak = std::max(peak, k.analyzer->stats().peakListLength);
    }
    double ms = secondsSince(t0) * 1000;
    std::printf("%-22s |      %2d / 12     |   %10zu | %9zu | %6.1f\n", row.name, privatized,
                gars, peak, ms);
    const std::string slug = row.slug;
    result.add(slug + "_privatized_loops", privatized, Direction::Exact);
    result.add(slug + "_gars_created", static_cast<double>(gars), Direction::Exact);
    result.add(slug + "_peak_list", static_cast<double>(peak), Direction::Exact);
    // Per-config wall time is sub-10ms — far inside runner noise; recorded
    // for the table but never gated.
    result.add(slug + "_ms", ms, Direction::LowerIsBetter, 3.0, "ms").gated = false;
  }
  std::printf(
      "\nReading: without the GAR simplifier the lists (and analysis time) blow up\n"
      "while results survive only by luck of small kernels; dropping any of the\n"
      "T1/T2/T3 techniques loses privatizations — the paper's case for each.\n");
  return result;
}

const Registration reg{{"ablation_simplifiers", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
