// Ablations for the design choices §3.1/§5.2 call out: the GAR simplifier,
// the Fourier-Motzkin fallback behind the predicate simplifier, and the
// on-the-fly substitution. For each configuration: does the corpus still
// privatize, how large do the GAR lists grow, and what does analysis cost?
#include "bench_util.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

struct AblationRow {
  const char* name;
  AnalysisOptions options;
};

}  // namespace

int main() {
  AnalysisOptions full;
  AnalysisOptions noGarSimp;
  noGarSimp.garSimplifier = false;
  AnalysisOptions noT1;
  noT1.symbolicAnalysis = false;
  AnalysisOptions noT2;
  noT2.ifConditions = false;
  AnalysisOptions noT3;
  noT3.interprocedural = false;
  AnalysisOptions noDe;
  noDe.computeDE = false;
  AnalysisOptions withQuant;
  withQuant.quantified = true;

  const AblationRow rows[] = {
      {"full analysis", full},
      {"no GAR simplifier", noGarSimp},
      {"no symbolic analysis", noT1},
      {"no IF conditions", noT2},
      {"no interprocedural", noT3},
      {"no DE sets", noDe},
      {"+ quantified ext", withQuant},
  };

  std::printf("Ablations over the 12-loop Perfect corpus\n\n");
  std::printf("%-22s | privatized loops | GARs created | peak list | time ms\n", "configuration");
  std::printf("-----------------------+------------------+--------------+-----------+--------\n");

  for (const AblationRow& row : rows) {
    int privatized = 0;
    std::size_t gars = 0;
    std::size_t peak = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const CorpusLoop& cl : perfectCorpus()) {
      LoadedKernel k = loadAndAnalyze(cl, row.options);
      if (!k.ok) continue;
      privatized += allListedPrivatizable(k.loop, cl);
      gars += k.analyzer->stats().garsCreated;
      peak = std::max(peak, k.analyzer->stats().peakListLength);
    }
    double ms = secondsSince(t0) * 1000;
    std::printf("%-22s |      %2d / 12     |   %10zu | %9zu | %6.1f\n", row.name, privatized,
                gars, peak, ms);
  }
  std::printf(
      "\nReading: without the GAR simplifier the lists (and analysis time) blow up\n"
      "while results survive only by luck of small kernels; dropping any of the\n"
      "T1/T2/T3 techniques loses privatizations — the paper's case for each.\n");
  return 0;
}
