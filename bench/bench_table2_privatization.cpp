// Reproduces Table 2: for each evaluated loop, the named arrays and whether
// the analyzer privatizes them automatically — including the one negative
// result the paper reports (MDG interf's RL, which needs the §5.2 ∀-guard
// extension). Also reruns with the quantified extension enabled to show the
// future-work column resolved.
#include "bench_util.h"
#include "harness.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

BenchResult run() {
  std::printf("Table 2 (privatization status) — paper vs this reproduction\n\n");
  std::printf("%-18s %-10s | paper | base analysis | +quantified ext\n", "loop", "array");
  std::printf("------------------------------+-------+---------------+----------------\n");

  int agree = 0;
  int total = 0;
  int extYes = 0;
  for (const CorpusLoop& cl : perfectCorpus()) {
    LoadedKernel base = loadAndAnalyze(cl, {});
    AnalysisOptions quantOpt;
    quantOpt.quantified = true;
    LoadedKernel quant = loadAndAnalyze(cl, quantOpt);

    auto row = [&](const std::string& name, bool paperYes) {
      bool ours = base.ok && arrayPrivatizable(base.loop, name);
      bool ext = quant.ok && arrayPrivatizable(quant.loop, name);
      bool same = ours == paperYes;
      agree += same;
      extYes += ext;
      ++total;
      std::printf("%-18s %-10s |  %-4s |      %-8s |      %s\n", cl.id.c_str(), name.c_str(),
                  paperYes ? "yes" : "no", ours ? "yes" : "NO", ext ? "yes" : "no");
    };
    for (const std::string& name : cl.privatizable) row(name, true);
    for (const std::string& name : cl.notPrivatizable) row(name, false);
  }
  std::printf("\n%d / %d array statuses match Table 2\n", agree, total);

  BenchResult result;
  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.add("matching_statuses", agree, Direction::Exact);
  result.add("total_statuses", total, Direction::Exact);
  result.add("quantified_ext_privatized", extYes, Direction::Exact);
  if (agree != total) result.fail("privatization statuses diverge from Table 2");
  return result;
}

const Registration reg{{"table2_privatization", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
