// Reproduces Table 2: for each evaluated loop, the named arrays and whether
// the analyzer privatizes them automatically — including the one negative
// result the paper reports (MDG interf's RL, which needs the §5.2 ∀-guard
// extension). Also reruns with the quantified extension enabled to show the
// future-work column resolved.
#include "bench_util.h"

using namespace panorama;
using namespace panorama::bench;

int main() {
  std::printf("Table 2 (privatization status) — paper vs this reproduction\n\n");
  std::printf("%-18s %-10s | paper | base analysis | +quantified ext\n", "loop", "array");
  std::printf("------------------------------+-------+---------------+----------------\n");

  int agree = 0;
  int total = 0;
  for (const CorpusLoop& cl : perfectCorpus()) {
    LoadedKernel base = loadAndAnalyze(cl, {});
    AnalysisOptions quantOpt;
    quantOpt.quantified = true;
    LoadedKernel quant = loadAndAnalyze(cl, quantOpt);

    auto row = [&](const std::string& name, bool paperYes) {
      bool ours = base.ok && arrayPrivatizable(base.loop, name);
      bool ext = quant.ok && arrayPrivatizable(quant.loop, name);
      bool same = ours == paperYes;
      agree += same;
      ++total;
      std::printf("%-18s %-10s |  %-4s |      %-8s |      %s\n", cl.id.c_str(), name.c_str(),
                  paperYes ? "yes" : "no", ours ? "yes" : "NO", ext ? "yes" : "no");
    };
    for (const std::string& name : cl.privatizable) row(name, true);
    for (const std::string& name : cl.notPrivatizable) row(name, false);
  }
  std::printf("\n%d / %d array statuses match Table 2\n", agree, total);
  return agree == total ? 0 : 1;
}
