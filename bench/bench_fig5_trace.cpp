// Reproduces Figure 5: the step-by-step GAR derivation that privatizes
// array A in the Figure 1(b) example — per-iteration MOD_i and UE_i,
// MOD_{<i}, and the empty intersection UE_i ∩ MOD_{<i} that proves
// privatizability.
#include "bench_util.h"
#include "harness.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

BenchResult run() {
  BenchResult result;
  result.addConfig("kernel", "Figure 1(b) filer");

  std::printf("Figure 5: privatizing array A in the Figure 1(b) example\n\n");
  DiagnosticEngine diags;
  auto p = parseProgram(fig1bSource(), diags);
  if (!p) {
    result.fail("parse failed:\n" + diags.str());
    return result;
  }
  auto sema = analyze(*p, diags);
  if (!sema) {
    result.fail("sema failed:\n" + diags.str());
    return result;
  }
  Hsg hsg = buildHsg(*p, *sema, diags);

  const Procedure* filer = p->findProcedure("filer");
  std::printf("-- source --------------------------------------------------------\n%s\n",
              toString(*filer).c_str());
  std::printf("-- HSG of filer (loop nodes carry their body subgraphs) ----------\n%s\n",
              hsg.of(*filer).graph.str().c_str());

  SummaryAnalyzer analyzer(*p, *sema, hsg, {});
  analyzer.analyzeAll();
  const Stmt* loop = findOuterLoop(*p, "filer", 0);
  const LoopSummary* ls = analyzer.loopSummary(loop);
  if (!ls) {
    result.fail("no loop summary for the filer I loop");
    return result;
  }

  const SymbolTable& tab = sema->symbols;
  const ArrayTable& arrays = sema->arrays;
  std::printf("-- A. per-iteration summaries of the I loop ----------------------\n");
  std::printf("MOD_i   = %s\n", ls->modIter.str(tab, arrays).c_str());
  std::printf("UE_i    = %s\n\n", ls->ueIter.str(tab, arrays).c_str());
  std::printf("(paper: mod_i = [T, (jlow:jup)] U [!p, (jmax)];\n");
  std::printf("        ue_i  = [p and (jmax < jlow or jmax > jup), (jmax)])\n\n");

  std::printf("-- B. is array A privatizable? -----------------------------------\n");
  std::printf("MOD_<i  = %s\n", ls->modBefore.str(tab, arrays).c_str());

  ConstraintSet cs;
  cs.addExprLE0(ls->bounds.lo - SymExpr::variable(ls->bounds.index));
  cs.addExprLE0(SymExpr::variable(ls->bounds.index) - ls->bounds.up);
  Truth empty = garIntersectionEmpty(ls->ueIter, ls->modBefore, CmpCtx{cs});
  std::printf("UE_i \xE2\x88\xA9 MOD_<i = %s\n",
              empty == Truth::True ? "EMPTY  ->  A is privatizable" : "not provably empty");

  LoopParallelizer lp(analyzer);
  LoopAnalysis la = lp.analyzeLoop(*loop, *filer);
  std::printf("\n-- verdict --------------------------------------------------------\n%s\n",
              formatLoopAnalysis(la).c_str());

  result.add("a_privatizable", empty == Truth::True ? 1 : 0, Direction::Exact);
  if (empty != Truth::True) result.fail("UE_i ∩ MOD_<i not provably empty");
  return result;
}

const Registration reg{{"fig5_trace", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
