// Reproduces the technique columns of Table 1: for each evaluated loop,
// which of T1 (symbolic analysis), T2 (IF-condition analysis), and T3
// (interprocedural analysis) are *required* to privatize the loop's arrays.
// A technique is required iff disabling it loses at least one of the
// Table 2 "yes" arrays.
#include "bench_util.h"
#include "harness.h"

using namespace panorama;
using namespace panorama::bench;

namespace {

BenchResult run() {
  std::printf("Table 1 (technique requirements) — paper vs this reproduction\n");
  std::printf("T1: symbolic analysis, T2: IF-condition analysis, T3: interprocedural analysis\n\n");
  std::printf("%-18s | paper T1 T2 T3 | ours T1 T2 T3 | match\n", "loop");
  std::printf("-------------------+----------------+---------------+------\n");

  int matches = 0;
  int total = 0;
  for (const CorpusLoop& cl : perfectCorpus()) {
    AnalysisOptions noT1;
    noT1.symbolicAnalysis = false;
    AnalysisOptions noT2;
    noT2.ifConditions = false;
    AnalysisOptions noT3;
    noT3.interprocedural = false;

    bool ours[3];
    const AnalysisOptions configs[3] = {noT1, noT2, noT3};
    for (int t = 0; t < 3; ++t) {
      LoadedKernel k = loadAndAnalyze(cl, configs[t]);
      ours[t] = !(k.ok && allListedPrivatizable(k.loop, cl));  // lost => required
    }
    const bool paper[3] = {cl.needsT1, cl.needsT2, cl.needsT3};
    bool same = ours[0] == paper[0] && ours[1] == paper[1] && ours[2] == paper[2];
    matches += same;
    ++total;
    auto yn = [](bool b) { return b ? "Y" : "n"; };
    std::printf("%-18s |  %s    %s    %s   |  %s    %s    %s  | %s\n", cl.id.c_str(),
                yn(paper[0]), yn(paper[1]), yn(paper[2]), yn(ours[0]), yn(ours[1]), yn(ours[2]),
                same ? "yes" : "NO");
  }
  std::printf("\n%d / %d loops match the paper's technique matrix\n", matches, total);

  BenchResult result;
  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.add("matching_loops", matches, Direction::Exact);
  result.add("total_loops", total, Direction::Exact);
  if (matches != total) result.fail("technique matrix diverges from Table 1");
  return result;
}

const Registration reg{{"table1_techniques", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
