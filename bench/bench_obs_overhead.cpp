// The observability overhead contract: tracing compiled into the analysis
// pipeline must be near-free when disabled and must not perturb verdicts
// when enabled.
//
// Wall-clock deltas between two full corpus runs sit inside scheduler noise
// on small corpora, so the disabled-path cost is estimated deterministically
// instead: (spans one traced corpus run records) × (measured cost of one
// disabled Span, microbenched over millions of iterations) as a fraction of
// the untraced corpus wall time. That estimate carries a hard harness
// contract (Metric::maxValue = 2%), so the gate holds on every run with or
// without a baseline; the bench also fails when the enabled run does not
// reproduce the disabled run's reports byte-for-byte.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "panorama/analysis/driver.h"
#include "panorama/obs/profile.h"
#include "panorama/obs/trace.h"

using namespace panorama;

namespace {

constexpr double kMaxOverheadPct = 2.0;

/// 4-thread corpus wall time committed in BENCH_parallel_driver.json by the
/// parallel-driver PR, before the obs subsystem existed (informational
/// context for the absolute numbers below; the contract is relative).
constexpr double kPreObsDefaultMs = 24.13;

std::string fingerprintOf(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.report;
    out += loop.provenanceSummary;
    out += '\n';
  }
  return out;
}

struct CorpusTiming {
  double bestMs = 1e18;
  std::string fingerprint;
};

CorpusTiming timeCorpus(bool traced, int repeats) {
  CorpusTiming t;
  AnalysisOptions options;
  options.numThreads = 4;
  for (int r = 0; r < repeats; ++r) {
    if (traced) {
      obs::Tracer::global().clear();
      obs::Tracer::global().enable();
    } else {
      obs::Tracer::global().disable();
    }
    auto t0 = std::chrono::steady_clock::now();
    CorpusAnalysisResult result = analyzeCorpusParallel(options);
    double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    t.bestMs = std::min(t.bestMs, ms);
    t.fingerprint = fingerprintOf(result);
  }
  obs::Tracer::global().disable();
  return t;
}

/// Cost of one Span construct+destruct with tracing disabled: the relaxed
/// load + branch the hot paths pay on every span site. The empty asm keeps
/// the compiler from collapsing the loop.
double measureDisabledSpanNs() {
  obs::Tracer::global().disable();
  constexpr std::size_t kIters = 4'000'000;
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kIters; ++k) {
      obs::Span span("bench.overhead", "disabled");
      asm volatile("" ::: "memory");
    }
    double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

struct CorpusTrace {
  std::size_t spans = 0;
  std::string profileJson;  ///< the run's CostProfile, embedded in snapshots
};

/// Spans one traced 4-thread corpus run records — the number of disabled
/// constructor/destructor pairs an untraced run executes — plus the cost
/// profile of that run for the snapshot record.
CorpusTrace traceCorpusRun() {
  obs::Tracer::global().clear();
  obs::Tracer::global().enable();
  AnalysisOptions options;
  options.numThreads = 4;
  analyzeCorpusParallel(options);
  obs::Tracer::global().disable();
  CorpusTrace t;
  obs::CostProfile profile = obs::buildCostProfile(obs::Tracer::global().snapshot());
  t.spans = profile.events;
  t.profileJson = obs::renderCostProfileJson(profile);
  obs::Tracer::global().clear();
  return t;
}

bench::BenchResult run() {
  constexpr int kRepeats = 5;
  // Warm-up run so arena/cache cold-start cost does not land on either side.
  timeCorpus(/*traced=*/false, 1);

  CorpusTiming disabled = timeCorpus(/*traced=*/false, kRepeats);
  CorpusTiming traced = timeCorpus(/*traced=*/true, kRepeats);
  CorpusTrace trace = traceCorpusRun();
  std::size_t spanCount = trace.spans;
  double nsPerSpan = measureDisabledSpanNs();

  double overheadPct =
      100.0 * (static_cast<double>(spanCount) * nsPerSpan) / (disabled.bestMs * 1e6);
  bool identical = disabled.fingerprint == traced.fingerprint;

  std::printf("obs overhead — perfect corpus, 4 threads\n");
  std::printf("spans per corpus run:      %zu\n", spanCount);
  std::printf("disabled span cost:        %.3f ns\n", nsPerSpan);
  std::printf("untraced wall:             %.2f ms\n", disabled.bestMs);
  std::printf("traced wall:               %.2f ms\n", traced.bestMs);
  std::printf("est. disabled overhead:    %.4f%% (contract: <= %.1f%%)\n", overheadPct,
              kMaxOverheadPct);
  std::printf("traced results identical:  %s\n", identical ? "yes" : "NO");

  bench::BenchResult result;
  result.profileJson = std::move(trace.profileJson);
  result.addConfig("corpus", "perfect (Table 1/2 kernels), 4 threads");
  char preObs[32];
  std::snprintf(preObs, sizeof(preObs), "%.2f", kPreObsDefaultMs);
  result.addConfig("pre_obs_snapshot_wall_ms", preObs);
  {
    bench::Metric& m = result.add("spans_per_corpus_run", static_cast<double>(spanCount),
                                  bench::Direction::Exact);
    // Span placement follows the analysis structurally, but new span sites
    // land with every PR — record, don't gate.
    m.gated = false;
  }
  result.add("disabled_span_ns", nsPerSpan, bench::Direction::LowerIsBetter, 3.0, "ns").gated =
      false;
  result.add("untraced_wall_ms", disabled.bestMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("traced_wall_ms", traced.bestMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  {
    bench::Metric& m = result.add("estimated_disabled_overhead_pct", overheadPct,
                                  bench::Direction::LowerIsBetter, 10.0, "%");
    m.maxValue = kMaxOverheadPct;  // the hard <= 2% contract, baseline or not
  }
  if (!identical) result.fail("traced run diverged from untraced run");
  return result;
}

const bench::Registration reg{{"obs_overhead", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
