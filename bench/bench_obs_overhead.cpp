// The observability overhead contract: tracing compiled into the analysis
// pipeline must be near-free when disabled and must not perturb verdicts
// when enabled — and the daemon's always-on telemetry plane (DESIGN.md
// §4.10) must not tax the submit path.
//
// Wall-clock deltas between two full corpus runs sit inside scheduler noise
// on small corpora, so the disabled-path cost is estimated deterministically
// instead: (spans one traced corpus run records) × (measured cost of one
// disabled Span, microbenched over millions of iterations) as a fraction of
// the untraced corpus wall time. That estimate carries a hard harness
// contract (Metric::maxValue = 2%), so the gate holds on every run with or
// without a baseline; the bench also fails when the enabled run does not
// reproduce the disabled run's reports byte-for-byte.
//
// The telemetry section applies the same recipe to the daemon: the per-
// submit telemetry work is (events a real submit appends) × (microbenched
// EventLog::append cost) + (three per-op latency histograms) × (microbenched
// Histogram::observe cost), as a fraction of a real socket submit's wall
// time measured against a live daemon. That estimate carries its own hard
// <= 2% contract. Telemetry-on vs telemetry-off submit walls over the same
// socket protocol are recorded alongside as (noisy, ungated) context.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "panorama/analysis/driver.h"
#include "panorama/obs/metrics.h"
#include "panorama/obs/profile.h"
#include "panorama/obs/telemetry.h"
#include "panorama/obs/trace.h"
#include "panorama/store/daemon.h"
#include "panorama/store/protocol.h"
#include "panorama/support/json.h"

using namespace panorama;

namespace {

constexpr double kMaxOverheadPct = 2.0;

/// 4-thread corpus wall time committed in BENCH_parallel_driver.json by the
/// parallel-driver PR, before the obs subsystem existed (informational
/// context for the absolute numbers below; the contract is relative).
constexpr double kPreObsDefaultMs = 24.13;

std::string fingerprintOf(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.report;
    out += loop.provenanceSummary;
    out += '\n';
  }
  return out;
}

struct CorpusTiming {
  double bestMs = 1e18;
  std::string fingerprint;
};

CorpusTiming timeCorpus(bool traced, int repeats) {
  CorpusTiming t;
  AnalysisOptions options;
  options.numThreads = 4;
  for (int r = 0; r < repeats; ++r) {
    if (traced) {
      obs::Tracer::global().clear();
      obs::Tracer::global().enable();
    } else {
      obs::Tracer::global().disable();
    }
    auto t0 = std::chrono::steady_clock::now();
    CorpusAnalysisResult result = analyzeCorpusParallel(options);
    double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    t.bestMs = std::min(t.bestMs, ms);
    t.fingerprint = fingerprintOf(result);
  }
  obs::Tracer::global().disable();
  return t;
}

/// Cost of one Span construct+destruct with tracing disabled: the relaxed
/// load + branch the hot paths pay on every span site. The empty asm keeps
/// the compiler from collapsing the loop.
double measureDisabledSpanNs() {
  obs::Tracer::global().disable();
  constexpr std::size_t kIters = 4'000'000;
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kIters; ++k) {
      obs::Span span("bench.overhead", "disabled");
      asm volatile("" ::: "memory");
    }
    double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

struct CorpusTrace {
  std::size_t spans = 0;
  std::string profileJson;  ///< the run's CostProfile, embedded in snapshots
};

/// Spans one traced 4-thread corpus run records — the number of disabled
/// constructor/destructor pairs an untraced run executes — plus the cost
/// profile of that run for the snapshot record.
CorpusTrace traceCorpusRun() {
  obs::Tracer::global().clear();
  obs::Tracer::global().enable();
  AnalysisOptions options;
  options.numThreads = 4;
  analyzeCorpusParallel(options);
  obs::Tracer::global().disable();
  CorpusTrace t;
  obs::CostProfile profile = obs::buildCostProfile(obs::Tracer::global().snapshot());
  t.spans = profile.events;
  t.profileJson = obs::renderCostProfileJson(profile);
  obs::Tracer::global().clear();
  return t;
}

/// Cost of one EventLog::append with a submit_end-shaped field set — the
/// most expensive record the daemon writes per submit (render + one shared-
/// ptr publish).
double measureEventAppendNs() {
  obs::EventLog log(4096);
  constexpr std::size_t kIters = 200'000;
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kIters; ++k) {
      log.append(obs::EventKind::SubmitEnd, obs::EventFields()
                                                .num("client", std::uint64_t{1})
                                                .str("name", "bench.f")
                                                .str("session", "bench")
                                                .num("epoch", std::uint64_t{k})
                                                .num("dirty", std::uint64_t{1})
                                                .num("loops", std::uint64_t{1})
                                                .num("wall_us", std::uint64_t{1234})
                                                .take());
    }
    double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

/// Cost of one Histogram::observe — a bit_width + two relaxed fetch_adds
/// plus two CAS min/max updates.
double measureObserveNs() {
  obs::Histogram h;
  constexpr std::size_t kIters = 4'000'000;
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kIters; ++k) {
      h.observe(k & 0xffff);
      asm volatile("" ::: "memory");
    }
    double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

const char* kDaemonProgA = R"(
      subroutine bench(a, n)
      integer n
      real a(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 2.0
        a(i) = t(i) + 1.0
      enddo
      end
)";

const char* kDaemonProgB = R"(
      subroutine bench(a, n)
      integer n
      real a(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 3.0
        a(i) = t(i) + 1.0
      enddo
      end
)";

struct DaemonTiming {
  double perSubmitMs = 0;      ///< best per-submit wall over the repeat blocks
  double eventsPerSubmit = 0;  ///< event-log records one submit appends
  bool ok = false;
};

/// Wall time of one submit over a real socket against a live daemon,
/// alternating two sources into one named session so every submit runs the
/// incremental pipeline (never the whole-file fast path).
DaemonTiming timeDaemonSubmits(bool telemetry) {
  DaemonTiming t;
  const std::string sock = "/tmp/pano_bench_" + std::to_string(::getpid()) +
                           (telemetry ? "_on" : "_off") + ".sock";
  store::DaemonConfig config;
  config.telemetry = telemetry;
  store::Daemon daemon(sock, AnalysisOptions{}, config);
  std::string error;
  if (!daemon.start(error)) {
    std::fprintf(stderr, "bench daemon failed to start: %s\n", error.c_str());
    return t;
  }
  int fd = store::connectUnixSocket(sock, &error);
  if (fd < 0) {
    std::fprintf(stderr, "bench daemon connect failed: %s\n", error.c_str());
    daemon.stop();
    daemon.wait();
    return t;
  }
  auto submit = [&](const char* source) -> bool {
    std::string req = "{\"id\":1,\"op\":\"submit\",\"name\":\"bench.f\",\"session\":\"bench\","
                      "\"source\":\"";
    support::appendJsonEscaped(req, source);
    req += "\"}";
    std::string payload;
    return store::writeFrame(fd, req, &error) &&
           store::readFrame(fd, payload, &error) == store::FrameStatus::Ok;
  };

  constexpr int kBlocks = 3;
  constexpr int kPerBlock = 10;
  bool ok = submit(kDaemonProgA) && submit(kDaemonProgB);  // warm-up
  const std::uint64_t eventsBefore = daemon.eventLog().appended();
  double bestMs = 1e18;
  int timed = 0;
  for (int block = 0; ok && block < kBlocks; ++block) {
    auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; ok && k < kPerBlock; ++k, ++timed)
      ok = submit(timed % 2 == 0 ? kDaemonProgA : kDaemonProgB);
    double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count() /
        kPerBlock;
    bestMs = std::min(bestMs, ms);
  }
  if (ok && telemetry)
    t.eventsPerSubmit = static_cast<double>(daemon.eventLog().appended() - eventsBefore) /
                        (kBlocks * kPerBlock);
  ::close(fd);
  daemon.stop();
  daemon.wait();
  if (!ok) {
    std::fprintf(stderr, "bench daemon submit failed: %s\n", error.c_str());
    return t;
  }
  t.perSubmitMs = bestMs;
  t.ok = true;
  return t;
}

bench::BenchResult run() {
  constexpr int kRepeats = 5;
  // Warm-up run so arena/cache cold-start cost does not land on either side.
  timeCorpus(/*traced=*/false, 1);

  CorpusTiming disabled = timeCorpus(/*traced=*/false, kRepeats);
  CorpusTiming traced = timeCorpus(/*traced=*/true, kRepeats);
  CorpusTrace trace = traceCorpusRun();
  std::size_t spanCount = trace.spans;
  double nsPerSpan = measureDisabledSpanNs();

  double overheadPct =
      100.0 * (static_cast<double>(spanCount) * nsPerSpan) / (disabled.bestMs * 1e6);
  bool identical = disabled.fingerprint == traced.fingerprint;

  std::printf("obs overhead — perfect corpus, 4 threads\n");
  std::printf("spans per corpus run:      %zu\n", spanCount);
  std::printf("disabled span cost:        %.3f ns\n", nsPerSpan);
  std::printf("untraced wall:             %.2f ms\n", disabled.bestMs);
  std::printf("traced wall:               %.2f ms\n", traced.bestMs);
  std::printf("est. disabled overhead:    %.4f%% (contract: <= %.1f%%)\n", overheadPct,
              kMaxOverheadPct);
  std::printf("traced results identical:  %s\n", identical ? "yes" : "NO");

  bench::BenchResult result;
  result.profileJson = std::move(trace.profileJson);
  result.addConfig("corpus", "perfect (Table 1/2 kernels), 4 threads");
  char preObs[32];
  std::snprintf(preObs, sizeof(preObs), "%.2f", kPreObsDefaultMs);
  result.addConfig("pre_obs_snapshot_wall_ms", preObs);
  {
    bench::Metric& m = result.add("spans_per_corpus_run", static_cast<double>(spanCount),
                                  bench::Direction::Exact);
    // Span placement follows the analysis structurally, but new span sites
    // land with every PR — record, don't gate.
    m.gated = false;
  }
  result.add("disabled_span_ns", nsPerSpan, bench::Direction::LowerIsBetter, 3.0, "ns").gated =
      false;
  result.add("untraced_wall_ms", disabled.bestMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("traced_wall_ms", traced.bestMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  {
    bench::Metric& m = result.add("estimated_disabled_overhead_pct", overheadPct,
                                  bench::Direction::LowerIsBetter, 10.0, "%");
    m.maxValue = kMaxOverheadPct;  // the hard <= 2% contract, baseline or not
  }
  if (!identical) result.fail("traced run diverged from untraced run");

  // ---- the daemon telemetry plane's share of a submit ----
  const double appendNs = measureEventAppendNs();
  const double observeNs = measureObserveNs();
  DaemonTiming off = timeDaemonSubmits(/*telemetry=*/false);
  DaemonTiming on = timeDaemonSubmits(/*telemetry=*/true);
  if (!off.ok || !on.ok) {
    result.fail("daemon telemetry timing failed");
    return result;
  }
  // Per submit: the event-log records it appends (begin/end, measured off a
  // live run) plus the three per-op latency histograms (wall/queue/handle);
  // the remaining counter bumps are single relaxed fetch_adds, folded into
  // the observe term.
  constexpr double kObservesPerRequest = 3.0;
  const double telemetryNsPerSubmit =
      on.eventsPerSubmit * appendNs + kObservesPerRequest * observeNs;
  const double telemetryOverheadPct = 100.0 * telemetryNsPerSubmit / (off.perSubmitMs * 1e6);

  std::printf("\ndaemon telemetry — socket submits, alternating sources\n");
  std::printf("event append cost:         %.1f ns\n", appendNs);
  std::printf("histogram observe cost:    %.2f ns\n", observeNs);
  std::printf("events per submit:         %.1f\n", on.eventsPerSubmit);
  std::printf("submit wall (telemetry off): %.3f ms\n", off.perSubmitMs);
  std::printf("submit wall (telemetry on):  %.3f ms\n", on.perSubmitMs);
  std::printf("est. telemetry overhead:   %.4f%% (contract: <= %.1f%%)\n", telemetryOverheadPct,
              kMaxOverheadPct);

  result.add("event_append_ns", appendNs, bench::Direction::LowerIsBetter, 3.0, "ns").gated =
      false;
  result.add("histogram_observe_ns", observeNs, bench::Direction::LowerIsBetter, 3.0, "ns")
      .gated = false;
  result
      .add("events_per_submit", on.eventsPerSubmit, bench::Direction::Exact)
      .gated = false;
  // Socket round-trip walls jitter with the scheduler — context, not gates.
  result
      .add("daemon_submit_wall_off_ms", off.perSubmitMs, bench::Direction::LowerIsBetter, 3.0,
           "ms")
      .gated = false;
  result
      .add("daemon_submit_wall_on_ms", on.perSubmitMs, bench::Direction::LowerIsBetter, 3.0,
           "ms")
      .gated = false;
  {
    bench::Metric& m = result.add("estimated_telemetry_overhead_pct", telemetryOverheadPct,
                                  bench::Direction::LowerIsBetter, 10.0, "%");
    m.maxValue = kMaxOverheadPct;  // telemetry-on submits stay within 2%
  }
  return result;
}

const bench::Registration reg{{"obs_overhead", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
