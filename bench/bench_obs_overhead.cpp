// The observability overhead contract: tracing compiled into the analysis
// pipeline must be near-free when disabled and must not perturb verdicts
// when enabled.
//
// Wall-clock deltas between two full corpus runs sit inside scheduler noise
// on small corpora, so the disabled-path cost is estimated deterministically
// instead: (spans one traced corpus run records) × (measured cost of one
// disabled Span, microbenched over millions of iterations) as a fraction of
// the untraced corpus wall time. That estimate must stay ≤ 2%
// (kMaxOverheadPct); the bench also asserts the enabled run reproduces the
// disabled run's reports byte-for-byte. Exit status is nonzero when either
// contract fails, so CI enforces both.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "panorama/analysis/driver.h"
#include "panorama/obs/trace.h"

using namespace panorama;

namespace {

constexpr double kMaxOverheadPct = 2.0;

/// 4-thread corpus wall time committed in BENCH_parallel_driver.json by the
/// parallel-driver PR, before the obs subsystem existed (informational
/// context for the absolute numbers below; the contract is relative).
constexpr double kPreObsDefaultMs = 24.13;

std::string fingerprintOf(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.report;
    out += loop.provenanceSummary;
    out += '\n';
  }
  return out;
}

struct CorpusTiming {
  double bestMs = 1e18;
  std::string fingerprint;
};

CorpusTiming timeCorpus(bool traced, int repeats) {
  CorpusTiming t;
  AnalysisOptions options;
  options.numThreads = 4;
  for (int r = 0; r < repeats; ++r) {
    if (traced) {
      obs::Tracer::global().clear();
      obs::Tracer::global().enable();
    } else {
      obs::Tracer::global().disable();
    }
    auto t0 = std::chrono::steady_clock::now();
    CorpusAnalysisResult result = analyzeCorpusParallel(options);
    double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    t.bestMs = std::min(t.bestMs, ms);
    t.fingerprint = fingerprintOf(result);
  }
  obs::Tracer::global().disable();
  return t;
}

/// Cost of one Span construct+destruct with tracing disabled: the relaxed
/// load + branch the hot paths pay on every span site. The empty asm keeps
/// the compiler from collapsing the loop.
double measureDisabledSpanNs() {
  obs::Tracer::global().disable();
  constexpr std::size_t kIters = 4'000'000;
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kIters; ++k) {
      obs::Span span("bench.overhead", "disabled");
      asm volatile("" ::: "memory");
    }
    double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

/// Spans one traced 4-thread corpus run records — the number of disabled
/// constructor/destructor pairs an untraced run executes.
std::size_t countCorpusSpans() {
  obs::Tracer::global().clear();
  obs::Tracer::global().enable();
  AnalysisOptions options;
  options.numThreads = 4;
  analyzeCorpusParallel(options);
  obs::Tracer::global().disable();
  std::size_t n = obs::Tracer::global().eventCount();
  obs::Tracer::global().clear();
  return n;
}

void emit(FILE* f, std::size_t spanCount, double nsPerSpan, double disabledMs, double tracedMs,
          double overheadPct, bool identical) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"corpus\": \"perfect (Table 1/2 kernels), 4 threads\",\n");
  std::fprintf(f, "  \"spans_per_corpus_run\": %zu,\n", spanCount);
  std::fprintf(f, "  \"disabled_span_ns\": %.3f,\n", nsPerSpan);
  std::fprintf(f, "  \"untraced_wall_ms\": %.2f,\n", disabledMs);
  std::fprintf(f, "  \"traced_wall_ms\": %.2f,\n", tracedMs);
  std::fprintf(f, "  \"pre_obs_snapshot_wall_ms\": %.2f,\n", kPreObsDefaultMs);
  std::fprintf(f, "  \"estimated_disabled_overhead_pct\": %.4f,\n", overheadPct);
  std::fprintf(f, "  \"max_disabled_overhead_pct\": %.1f,\n", kMaxOverheadPct);
  std::fprintf(f, "  \"overhead_within_contract\": %s,\n", overheadPct <= kMaxOverheadPct ? "true" : "false");
  std::fprintf(f, "  \"traced_results_identical\": %s\n", identical ? "true" : "false");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kRepeats = 5;
  // Warm-up run so arena/cache cold-start cost does not land on either side.
  timeCorpus(/*traced=*/false, 1);

  CorpusTiming disabled = timeCorpus(/*traced=*/false, kRepeats);
  CorpusTiming traced = timeCorpus(/*traced=*/true, kRepeats);
  std::size_t spanCount = countCorpusSpans();
  double nsPerSpan = measureDisabledSpanNs();

  double overheadPct =
      100.0 * (static_cast<double>(spanCount) * nsPerSpan) / (disabled.bestMs * 1e6);
  bool identical = disabled.fingerprint == traced.fingerprint;

  emit(stdout, spanCount, nsPerSpan, disabled.bestMs, traced.bestMs, overheadPct, identical);
  if (argc > 1) {
    if (FILE* f = std::fopen(argv[1], "w")) {
      emit(f, spanCount, nsPerSpan, disabled.bestMs, traced.bestMs, overheadPct, identical);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  if (overheadPct > kMaxOverheadPct) {
    std::fprintf(stderr, "FAIL: estimated disabled-tracing overhead %.4f%% exceeds %.1f%%\n",
                 overheadPct, kMaxOverheadPct);
    return 2;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: traced run diverged from untraced run\n");
    return 3;
  }
  return 0;
}
