// The unified benchmark harness every bench in bench/ registers with.
//
// One bench = one BenchSpec: a name, warmup/measured repetition counts, and
// a run() callback returning a BenchResult — named metrics (each with a
// direction, a relative regression tolerance, and optional hard min/max
// contracts), free-form config strings, and an optional embedded CostProfile
// JSON. The harness turns that into:
//
//   * one common snapshot schema (schema_version, bench, git, config,
//     metrics, profile) written as BENCH_<name>.json;
//   * one JSONL history line per run appended to BENCH_history.jsonl;
//   * a regression gate: current metrics compared against a committed
//     baseline snapshot using the *code's* tolerances (baselines carry
//     values, not policy), hard contracts enforced regardless of baseline.
//
// Two entry points share the registry: each bench_<name> binary links
// standalone_main.cpp (runs the one bench it compiled in; first non-flag
// argument = snapshot output path, preserving the historical CLI), and
// tools/bench_runner links every bench and drives the suite + gate.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace panorama::bench {

enum class Direction {
  LowerIsBetter,   ///< regression = value above baseline * (1 + tolerance)
  HigherIsBetter,  ///< regression = value below baseline * (1 - tolerance)
  Exact,           ///< regression = any difference from the baseline
};

struct Metric {
  double value = 0;
  Direction direction = Direction::LowerIsBetter;
  /// Relative tolerance against the baseline value (1.0 = 100% headroom —
  /// wall-clock metrics on shared CI runners need generous slack).
  double relTolerance = 1.0;
  std::string unit;
  /// Hard contracts, enforced on every run independent of any baseline
  /// (e.g. the obs disabled-overhead <= 2% bound).
  std::optional<double> maxValue;
  std::optional<double> minValue;
  /// Ungated metrics are recorded in snapshots/history but never regression-
  /// checked (sub-microsecond micro-op timings drown in runner noise).
  bool gated = true;
};

struct BenchResult {
  bool ok = true;
  std::string failure;  ///< every fail() reason, "; "-joined; non-zero exit
  std::vector<std::pair<std::string, Metric>> metrics;
  std::vector<std::pair<std::string, std::string>> config;
  std::string profileJson;  ///< rendered CostProfile ("" = none)

  Metric& add(std::string name, double value, Direction direction = Direction::LowerIsBetter,
              double relTolerance = 1.0, std::string unit = "");
  void addConfig(std::string key, std::string value);
  void fail(std::string why);
  const Metric* find(std::string_view name) const;
};

struct BenchSpec {
  std::string name;
  int repetitions = 1;  ///< measured runs; metrics aggregated across them
  int warmup = 0;       ///< discarded runs before measuring
  std::function<BenchResult()> run;
};

/// The process-wide bench registry (instantiable for tests).
class Registry {
 public:
  static Registry& global();
  void add(BenchSpec spec);
  const std::vector<BenchSpec>& all() const { return specs_; }
  const BenchSpec* find(std::string_view name) const;

 private:
  std::vector<BenchSpec> specs_;
};

/// File-scope static registration hook: each bench TU defines one.
struct Registration {
  explicit Registration(BenchSpec spec);
};

/// Runs warmup + repetitions and folds the per-rep results into one:
/// LowerIsBetter keeps the minimum, HigherIsBetter the maximum, Exact
/// requires identical values across reps (mismatch fails the bench).
BenchResult runBench(const BenchSpec& spec);

/// One run's snapshot record (schema_version 1). `pretty` inserts newlines
/// for the committed BENCH_*.json files; the history line is single-line.
std::string renderRecord(const BenchSpec& spec, const BenchResult& result,
                         const std::string& gitDescribe, long long timestampUnix, bool pretty);

struct RegressionIssue {
  std::string metric;
  std::string what;  ///< human-readable diagnosis
};

/// Compares `result` against a baseline snapshot (JSON text of a prior
/// renderRecord). Tolerances and directions come from `result` — the code is
/// the policy. Returns every violated gate; parse failures of the baseline
/// are reported as one issue so a corrupt baseline cannot silently pass.
std::vector<RegressionIssue> compareToBaseline(const BenchResult& result,
                                               const std::string& baselineJson);

/// Extra command-line arguments forwarded by the entry points (micro-op
/// benches pass --benchmark_* flags through to google-benchmark).
const std::vector<std::string>& extraArgs();
void setExtraArgs(std::vector<std::string> args);

/// Entry point for the per-bench standalone binaries (standalone_main.cpp):
/// runs every registered bench (one, in practice), prints metrics, writes a
/// snapshot to the first non-flag argument if given. Returns the exit code.
int standaloneMain(int argc, char** argv);

}  // namespace panorama::bench
