// The query-tier speedup contract: the abstract-domain pre-filter plus the
// memoizing FM engine must cut the `query.fm` self-time the cost profiler
// attributes to a corpus run by >= 5x against FM-only mode, without changing
// a single loop report.
//
// Methodology. query.fm self-time is exactly what the profiler shows users
// (the span cost of cold eliminations, including the span's own argument
// rendering — identical policy in both modes), so the bench measures that:
// a traced single-threaded corpus run per mode, repeated, summing the
// per-span minimum across repetitions (threads=1 runs issue an identical
// span sequence, so spans pair positionally and the element-wise floor
// strips the scheduler/allocator noise that otherwise dominates a
// microsecond-scale total). The elimination cache is cleared once per mode,
// so the floor reflects the warm steady state a long-lived analysis process
// reaches; the first, fully cold repetition is reported alongside as an
// ungated context metric.
//
// The hard requirements ride along as Exact metrics: loop-report
// fingerprints of tiered mode must be byte-identical to FM-only mode at 1,
// 4, and 8 threads (the differential pin the ISSUE demands), and the
// speedup carries a hard minValue contract so the gate holds on every run
// with or without a committed baseline.
#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness.h"
#include "panorama/analysis/driver.h"
#include "panorama/obs/metrics.h"
#include "panorama/obs/profile.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/fm_incremental.h"

using namespace panorama;

namespace {

constexpr double kMinSpeedup = 5.0;
constexpr int kRepeats = 5;

std::string fingerprintOf(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.report;
    out += loop.provenanceSummary;
    out += '\n';
  }
  return out;
}

struct ModeTiming {
  double fmSelfMs = 0.0;         ///< noise-floor estimate (see timeMode)
  double prefilterSelfMs = 0.0;  ///< same estimator, query.prefilter spans
  double coldFmSelfMs = 0.0;     ///< first (elimination-cache-cold) repetition
  std::string fingerprint;
  std::string profileJson;  ///< profile of the last repetition
};

/// Span durations of one category, in snapshot (chronological) order.
/// query.fm and query.prefilter spans contain no child spans, so a span's
/// duration is its self-time.
std::vector<std::int64_t> spanDurations(const std::vector<obs::TraceEvent>& events,
                                        std::string_view category) {
  std::vector<std::int64_t> durs;
  for (const obs::TraceEvent& ev : events)
    if (ev.category == category) durs.push_back(ev.durNs);
  return durs;
}

/// Element-wise minimum across repetitions. A threads=1 cold-cache corpus
/// run issues an identical span sequence every repetition, so spans pair up
/// positionally and the per-span minimum strips scheduler / allocator noise
/// that lands in individual spans (one unlucky first-touch span otherwise
/// dominates a microsecond-scale total). Repetitions whose span count
/// diverges (they cannot pair) are skipped defensively.
void foldMin(std::vector<std::int64_t>& acc, const std::vector<std::int64_t>& rep) {
  if (acc.empty()) {
    acc = rep;
    return;
  }
  if (acc.size() != rep.size()) return;
  for (std::size_t k = 0; k < acc.size(); ++k) acc[k] = std::min(acc[k], rep[k]);
}

double sumMs(const std::vector<std::int64_t>& durs) {
  std::int64_t total = 0;
  for (std::int64_t d : durs) total += d;
  return static_cast<double>(total) / 1e6;
}

/// One mode's traced corpus runs at threads=1 (deterministic span sequence,
/// so profiler attribution is exact and spans pair across repetitions).
///
/// The FM elimination cache is cleared once up front, so the first
/// repetition is a fully cold run (reported as the cold context metric) and
/// later repetitions exercise the warm steady state a long-lived analysis
/// process reaches — the regime the incremental-FM tier is built for. The
/// floor estimator therefore measures steady-state self-time. FM-only mode
/// never touches the cache, so its floor is the same regime either way.
ModeTiming timeMode(bool prefilter) {
  ModeTiming t;
  AnalysisOptions options;
  options.numThreads = 1;
  options.prefilter = prefilter;
  clearFmEliminationCache();
  std::vector<std::int64_t> fmFloor;
  std::vector<std::int64_t> prefilterFloor;
  for (int rep = 0; rep < kRepeats; ++rep) {
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();
    CorpusAnalysisResult result = analyzeCorpusParallel(options);
    obs::Tracer::global().disable();
    std::vector<obs::TraceEvent> events = obs::Tracer::global().snapshot();
    std::vector<std::int64_t> fmDurs = spanDurations(events, "query.fm");
    if (rep == 0) t.coldFmSelfMs = sumMs(fmDurs);
    foldMin(fmFloor, fmDurs);
    foldMin(prefilterFloor, spanDurations(events, "query.prefilter"));
    if (rep == kRepeats - 1)
      t.profileJson = obs::renderCostProfileJson(obs::buildCostProfile(events));
    t.fingerprint = fingerprintOf(result);
  }
  t.fmSelfMs = sumMs(fmFloor);
  t.prefilterSelfMs = sumMs(prefilterFloor);
  obs::Tracer::global().clear();
  return t;
}

/// Untraced differential run: the loop-report fingerprint for one
/// (prefilter, threads) combination.
std::string fingerprintAt(bool prefilter, int threads) {
  AnalysisOptions options;
  options.numThreads = threads;
  options.prefilter = prefilter;
  return fingerprintOf(analyzeCorpusParallel(options));
}

bench::BenchResult run() {
  bench::BenchResult result;

  // Warmup: one run per mode so neither measured mode pays first-touch
  // costs the other did not.
  timeMode(/*prefilter=*/false);
  timeMode(/*prefilter=*/true);

  obs::MetricsRegistry::global().reset();
  ModeTiming tiered = timeMode(/*prefilter=*/true);
  const double attempts = static_cast<double>(
      obs::MetricsRegistry::global().counter("query.prefilter.attempts").value());
  const double hits = static_cast<double>(
      obs::MetricsRegistry::global().counter("query.prefilter.hits").value());
  ModeTiming fmOnly = timeMode(/*prefilter=*/false);

  const double speedup = tiered.fmSelfMs > 0 ? fmOnly.fmSelfMs / tiered.fmSelfMs : kMinSpeedup;

  // The contract metric. Hard-gated: a run below 5x fails regardless of
  // what any baseline says.
  auto& contract =
      result.add("fm_self_speedup", speedup, bench::Direction::HigherIsBetter, 1.0, "x");
  contract.minValue = kMinSpeedup;

  // Context metrics: absolute self-times drown in runner noise, so they are
  // recorded but not regression-gated.
  result.add("fm_self_ms_fm_only", fmOnly.fmSelfMs, bench::Direction::LowerIsBetter, 1.0, "ms")
      .gated = false;
  result.add("fm_self_ms_tiered", tiered.fmSelfMs, bench::Direction::LowerIsBetter, 1.0, "ms")
      .gated = false;
  // Cold-cache context: the first repetition per mode, before the
  // elimination cache warms (single-shot CLI runs see this regime).
  const double coldSpeedup =
      tiered.coldFmSelfMs > 0 ? fmOnly.coldFmSelfMs / tiered.coldFmSelfMs : 0.0;
  result.add("fm_self_speedup_cold", coldSpeedup, bench::Direction::HigherIsBetter, 1.0, "x")
      .gated = false;
  result
      .add("prefilter_self_ms", tiered.prefilterSelfMs, bench::Direction::LowerIsBetter, 1.0, "ms")
      .gated = false;
  result.add("prefilter_hit_rate", attempts > 0 ? hits / attempts : 0.0,
             bench::Direction::HigherIsBetter, 0.2);

  // Hard requirement: the tier must not change a byte of any loop report,
  // at any thread count. 1.0 = every differential pair matched.
  bool identical = tiered.fingerprint == fmOnly.fingerprint;
  for (int threads : {1, 4, 8})
    identical = identical && fingerprintAt(true, threads) == fingerprintAt(false, threads);
  result.add("reports_identical", identical ? 1.0 : 0.0, bench::Direction::Exact, 0.0, "bool");
  if (!identical) result.fail("tiered-mode loop reports diverged from FM-only mode");
  if (speedup < kMinSpeedup)
    result.fail("query.fm self-time speedup " + std::to_string(speedup) + "x below the " +
                std::to_string(kMinSpeedup) + "x contract");

  result.addConfig("threads_measured", "1");
  result.addConfig("threads_differential", "1,4,8");
  result.addConfig("repeats", std::to_string(kRepeats));
  result.profileJson = std::move(tiered.profileJson);
  return result;
}

const bench::Registration reg{{"query_tiers", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
