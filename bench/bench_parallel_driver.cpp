// The parallel analysis driver bench: corpus-wide wall time across the
// {1, 2, 4, 8} thread × {cache on, cache off} matrix, emitted as JSON (to
// stdout and, when a path is given as argv[1], to that file).
//
// The headline metric compares the driver's default configuration
// (4 threads, memo cache on) against the pre-driver behavior (1 thread,
// cache off). On a single-core host the thread axis cannot improve wall
// time — the JSON records hardware_concurrency so readers can tell — and
// the speedup there comes from the memoized symbolic queries; on multi-core
// hosts both axes contribute.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "panorama/analysis/driver.h"

using namespace panorama;

namespace {

/// 4-thread + cache wall time recorded in BENCH_parallel_driver.json before
/// the hash-consed symbolic core (same corpus, same single-core host class).
constexpr double kPriorDefaultMs = 63.00;

struct ConfigResult {
  std::size_t threads = 1;
  bool cache = false;
  double bestMs = 0;
  std::size_t loops = 0;
  QueryCache::Stats cacheStats;
  QueryCache::Stats simplifyStats;
  std::string fingerprint;  ///< per-loop classifications, for identity checks
};

std::string fingerprintOf(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.procName;
    out += '|';
    out += std::to_string(loop.line);
    out += '|';
    out += toString(loop.classification);
    out += '\n';
    out += loop.report;
  }
  return out;
}

ConfigResult runConfig(std::size_t threads, bool cache, int repeats) {
  ConfigResult cr;
  cr.threads = threads;
  cr.cache = cache;
  cr.bestMs = 1e18;
  for (int r = 0; r < repeats; ++r) {
    AnalysisOptions options;
    options.numThreads = threads;
    options.cacheCapacity = cache ? QueryCache::kDefaultCapacity : 0;
    auto t0 = std::chrono::steady_clock::now();
    CorpusAnalysisResult result = analyzeCorpusParallel(options);
    double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    cr.bestMs = std::min(cr.bestMs, ms);
    cr.loops = result.loops.size();
    cr.cacheStats = result.cacheStats;
    cr.simplifyStats = result.simplifyStats;
    cr.fingerprint = fingerprintOf(result);
  }
  return cr;
}

void emit(FILE* f, const std::vector<ConfigResult>& matrix, bool identical, double baselineMs,
          double defaultMs) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel_driver\",\n");
  std::fprintf(f, "  \"corpus\": \"perfect (Table 1/2 kernels)\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %zu, \n", ThreadPool::defaultConcurrency());
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t k = 0; k < matrix.size(); ++k) {
    const ConfigResult& c = matrix[k];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"cache\": %s, \"wall_ms\": %.2f, \"loops\": %zu, "
                 "\"query_cache\": {\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.3f}, "
                 "\"simplify_memo\": {\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.3f}}%s\n",
                 c.threads, c.cache ? "true" : "false", c.bestMs, c.loops,
                 static_cast<unsigned long long>(c.cacheStats.hits),
                 static_cast<unsigned long long>(c.cacheStats.misses), c.cacheStats.hitRate(),
                 static_cast<unsigned long long>(c.simplifyStats.hits),
                 static_cast<unsigned long long>(c.simplifyStats.misses),
                 c.simplifyStats.hitRate(), k + 1 == matrix.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"results_identical_across_configs\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "  \"headline\": {\n");
  std::fprintf(f, "    \"baseline\": \"1 thread, cache off (pre-driver behavior)\",\n");
  std::fprintf(f, "    \"comparison\": \"4 threads, cache on (driver default)\",\n");
  std::fprintf(f, "    \"baseline_wall_ms\": %.2f,\n", baselineMs);
  std::fprintf(f, "    \"comparison_wall_ms\": %.2f,\n", defaultMs);
  std::fprintf(f, "    \"speedup\": %.2f\n", baselineMs / defaultMs);
  std::fprintf(f, "  },\n");
  // The committed snapshot of the same config before the hash-consed
  // symbolic core landed, for before/after comparisons across PRs.
  std::fprintf(f, "  \"prior_snapshot\": {\n");
  std::fprintf(f, "    \"label\": \"mutable SymExpr/Pred values (pre-interning)\",\n");
  std::fprintf(f, "    \"comparison_wall_ms\": %.2f,\n", kPriorDefaultMs);
  std::fprintf(f, "    \"speedup_vs_prior\": %.2f\n", kPriorDefaultMs / defaultMs);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kRepeats = 5;
  std::vector<ConfigResult> matrix;
  for (std::size_t threads : {1u, 2u, 4u, 8u})
    for (bool cache : {false, true}) matrix.push_back(runConfig(threads, cache, kRepeats));

  bool identical = true;
  for (const ConfigResult& c : matrix)
    identical = identical && c.fingerprint == matrix.front().fingerprint;

  double baselineMs = 0, defaultMs = 0;
  for (const ConfigResult& c : matrix) {
    if (c.threads == 1 && !c.cache) baselineMs = c.bestMs;
    if (c.threads == 4 && c.cache) defaultMs = c.bestMs;
  }

  emit(stdout, matrix, identical, baselineMs, defaultMs);
  if (argc > 1) {
    if (FILE* f = std::fopen(argv[1], "w")) {
      emit(f, matrix, identical, baselineMs, defaultMs);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  return identical ? 0 : 2;
}
