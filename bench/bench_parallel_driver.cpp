// The parallel analysis driver bench: corpus-wide wall time across the
// {1, 2, 4, 8} thread × {cache on, cache off} matrix. The classification
// table prints to stdout; the harness records per-config wall times (gated
// with generous CI tolerances), the exact loop count, and the headline
// speedup (ungated — it is a ratio of two noisy timings).
//
// The headline metric compares the driver's default configuration
// (4 threads, memo cache on) against the pre-driver behavior (1 thread,
// cache off). On a single-core host the thread axis cannot improve wall
// time — the config records hardware_concurrency so readers can tell — and
// the speedup there comes from the memoized symbolic queries; on multi-core
// hosts both axes contribute.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "panorama/analysis/driver.h"

using namespace panorama;

namespace {

/// 4-thread + cache wall time recorded in BENCH_parallel_driver.json before
/// the hash-consed symbolic core (same corpus, same single-core host class).
constexpr double kPriorDefaultMs = 63.00;

struct ConfigResult {
  std::size_t threads = 1;
  bool cache = false;
  double bestMs = 0;
  std::size_t loops = 0;
  QueryCache::Stats cacheStats;
  QueryCache::Stats simplifyStats;
  std::string fingerprint;  ///< per-loop classifications, for identity checks
};

std::string fingerprintOf(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.procName;
    out += '|';
    out += std::to_string(loop.line);
    out += '|';
    out += toString(loop.classification);
    out += '\n';
    out += loop.report;
  }
  return out;
}

ConfigResult runConfig(std::size_t threads, bool cache, int repeats) {
  ConfigResult cr;
  cr.threads = threads;
  cr.cache = cache;
  cr.bestMs = 1e18;
  for (int r = 0; r < repeats; ++r) {
    AnalysisOptions options;
    options.numThreads = threads;
    options.cacheCapacity = cache ? QueryCache::kDefaultCapacity : 0;
    auto t0 = std::chrono::steady_clock::now();
    CorpusAnalysisResult result = analyzeCorpusParallel(options);
    double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    cr.bestMs = std::min(cr.bestMs, ms);
    cr.loops = result.loops.size();
    cr.cacheStats = result.cacheStats;
    cr.simplifyStats = result.simplifyStats;
    cr.fingerprint = fingerprintOf(result);
  }
  return cr;
}

bench::BenchResult run() {
  constexpr int kRepeats = 5;
  std::vector<ConfigResult> matrix;
  for (std::size_t threads : {1u, 2u, 4u, 8u})
    for (bool cache : {false, true}) matrix.push_back(runConfig(threads, cache, kRepeats));

  bool identical = true;
  for (const ConfigResult& c : matrix)
    identical = identical && c.fingerprint == matrix.front().fingerprint;

  double baselineMs = 0, defaultMs = 0;
  for (const ConfigResult& c : matrix) {
    if (c.threads == 1 && !c.cache) baselineMs = c.bestMs;
    if (c.threads == 4 && c.cache) defaultMs = c.bestMs;
  }

  std::printf("parallel driver — corpus wall time across the thread × cache matrix\n");
  std::printf("%7s | %-5s | %8s | %5s | query cache hit%% | simplify hit%%\n", "threads", "cache",
              "wall ms", "loops");
  for (const ConfigResult& c : matrix)
    std::printf("%7zu | %-5s | %8.2f | %5zu | %15.1f%% | %12.1f%%\n", c.threads,
                c.cache ? "on" : "off", c.bestMs, c.loops, 100.0 * c.cacheStats.hitRate(),
                100.0 * c.simplifyStats.hitRate());
  std::printf("headline: %.2f ms (1 thread, cache off) -> %.2f ms (4 threads, cache on), %.2fx\n",
              baselineMs, defaultMs, baselineMs / defaultMs);

  bench::BenchResult result;
  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.addConfig("hardware_concurrency", std::to_string(ThreadPool::defaultConcurrency()));
  result.addConfig("baseline", "1 thread, cache off (pre-driver behavior)");
  result.addConfig("comparison", "4 threads, cache on (driver default)");
  result.addConfig("prior_snapshot", "mutable SymExpr/Pred values (pre-interning)");
  for (const ConfigResult& c : matrix) {
    std::string key = "wall_ms_t" + std::to_string(c.threads) + (c.cache ? "_cache" : "_nocache");
    result.add(key, c.bestMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  }
  result.add("loops", static_cast<double>(matrix.front().loops), bench::Direction::Exact);
  result.add("baseline_wall_ms", baselineMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("comparison_wall_ms", defaultMs, bench::Direction::LowerIsBetter, 3.0, "ms");
  result.add("speedup", baselineMs / defaultMs, bench::Direction::HigherIsBetter, 1.0, "x")
      .gated = false;
  result
      .add("speedup_vs_prior", kPriorDefaultMs / defaultMs, bench::Direction::HigherIsBetter, 1.0,
           "x")
      .gated = false;
  if (!identical) result.fail("per-loop reports diverge across thread/cache configurations");
  return result;
}

const bench::Registration reg{{"parallel_driver", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
