// Microbenchmarks for the primitive operations behind the analysis —
// supporting Figure 4's practicality claim with per-operation costs:
// symbolic arithmetic, predicate simplification and implication, range and
// region set operations, GAR difference, and the expansion function.
//
// Registered with the unified harness: run() drives google-benchmark
// programmatically (forwarding any --benchmark_* flags the entry point
// collected) and records each BM_* real time as an *ungated* metric —
// sub-microsecond timings drown in shared-runner noise, so they go into the
// snapshot history but never trip the regression gate.
#include <benchmark/benchmark.h>

#include "harness.h"
#include "panorama/region/gar.h"

namespace panorama {
namespace {

struct Fixture {
  SymbolTable tab;
  ArrayTable arrays;
  VarId i = tab.intern("i");
  VarId n = tab.intern("n");
  VarId m = tab.intern("m");
  SymExpr I = SymExpr::variable(i);
  SymExpr N = SymExpr::variable(n);
  SymExpr M = SymExpr::variable(m);
  SymExpr one = SymExpr::constant(1);
  ArrayId A = arrays.intern("a", {SymRange{one, SymExpr::constant(1000), one}});
  CmpCtx ctx;
};

Fixture& fx() {
  static Fixture f;
  return f;
}

void BM_SymExprArithmetic(benchmark::State& state) {
  Fixture& f = fx();
  for (auto _ : state) {
    SymExpr e = (f.I.mulConst(3) + f.N - 2) * (f.M + 1) - f.I * f.M;
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_SymExprArithmetic);

void BM_SymExprSubstitute(benchmark::State& state) {
  Fixture& f = fx();
  SymExpr e = f.I.mulConst(2) + f.N * f.M - 7;
  for (auto _ : state) {
    SymExpr r = e.substitute(f.i, f.N + 5);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SymExprSubstitute);

// ----- hash-consed handle primitives (the interned-core PR's hot path) -----
// Equality and hashing used to walk whole term lists; with hash-consing
// both are O(1) on the 8-byte handle. These benches document the delta.

void BM_ExprEqualityInterned(benchmark::State& state) {
  Fixture& f = fx();
  // Two handles built through different routes; hash-consing makes them the
  // same node, so the compare is a pointer test, not a term-list walk.
  SymExpr a = (f.I + f.N) * (f.M + 1) + f.I.mulConst(7) - 3;
  SymExpr b = (f.N + f.I) * (f.M + 1) + f.I.mulConst(7) - 3;
  for (auto _ : state) {
    bool eq = a == b;
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_ExprEqualityInterned);

void BM_ExprHashCached(benchmark::State& state) {
  Fixture& f = fx();
  SymExpr e = (f.I + f.N) * (f.M + 1) + f.I.mulConst(7) - 3;
  for (auto _ : state) {
    std::size_t h = e.hashValue();
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ExprHashCached);

void BM_ExprInternHit(benchmark::State& state) {
  Fixture& f = fx();
  // Rebuilding an already-interned value: normalization plus one sharded
  // arena lookup that lands on the existing node.
  for (auto _ : state) {
    SymExpr e = f.I.mulConst(5) + f.N.mulConst(3) - f.M + 11;
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ExprInternHit);

void BM_PredEqualityInterned(benchmark::State& state) {
  Fixture& f = fx();
  Pred a = Pred::atom(Atom::le(f.I, f.N)) && Pred::atom(Atom::ge(f.I, f.one));
  Pred b = Pred::atom(Atom::ge(f.I, f.one)) && Pred::atom(Atom::le(f.I, f.N));
  for (auto _ : state) {
    bool eq = a == b;
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_PredEqualityInterned);

void BM_PredicateSimplify(benchmark::State& state) {
  Fixture& f = fx();
  for (auto _ : state) {
    Pred p = Pred::atom(Atom::le(f.I, f.N)) && Pred::atom(Atom::ge(f.I, f.one)) &&
             Pred::atom(Atom::le(f.I, f.N + 5)) && Pred::atom(Atom::le(f.one - 1, f.I));
    p.simplify();
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PredicateSimplify);

void BM_PredicateImplies(benchmark::State& state) {
  Fixture& f = fx();
  Pred strong = Pred::atom(Atom::le(f.I, f.N)) && Pred::atom(Atom::ge(f.I, f.one));
  Pred weak = Pred::atom(Atom::le(f.I, f.N + 3));
  for (auto _ : state) {
    Truth t = strong.implies(weak);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_PredicateImplies);

void BM_FourierMotzkin(benchmark::State& state) {
  Fixture& f = fx();
  ConstraintSet cs;
  cs.addExprLE0(f.I - f.N);
  cs.addExprLE0(f.one - f.I);
  cs.addExprLE0(f.N - f.M);
  cs.addExprLE0(f.M - SymExpr::constant(100));
  for (auto _ : state) {
    Truth t = cs.impliesLE0(f.I - SymExpr::constant(100));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FourierMotzkin);

void BM_RangeIntersectSymbolic(benchmark::State& state) {
  Fixture& f = fx();
  SymRange r1{f.I, f.N, f.one};
  SymRange r2{f.one, f.M, f.one};
  for (auto _ : state) {
    auto r = rangeIntersect(r1, r2, f.ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RangeIntersectSymbolic);

void BM_GarSubtract(benchmark::State& state) {
  Fixture& f = fx();
  GarList use = GarList::single(
      Gar::make(Pred::makeTrue(), Region{f.A, {SymRange{f.one, f.N, f.one}}}));
  GarList mod = GarList::single(
      Gar::make(Pred::atom(Atom::le(f.M, f.N)), Region{f.A, {SymRange{f.M, f.N, f.one}}}));
  for (auto _ : state) {
    GarList r = garSubtract(use, mod, f.ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GarSubtract);

void BM_Expansion(benchmark::State& state) {
  Fixture& f = fx();
  GarList list = GarList::single(Gar::make(Pred::atom(Atom::le(f.I, f.M)),
                                           Region{f.A, {SymRange::point(f.I)}}));
  LoopBounds bounds{f.i, f.one, f.N, f.one};
  for (auto _ : state) {
    GarList r = expandByIndex(list, bounds, f.ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Expansion);

void BM_IntersectionEmptinessProof(benchmark::State& state) {
  Fixture& f = fx();
  // The Figure 1(c) pattern: complementary guards.
  VarId x = f.tab.intern("x");
  SymExpr X = SymExpr::variable(x);
  GarList a = GarList::single(Gar::make(Pred::atom(Atom::rle(X, SymExpr::constant(100))),
                                        Region{f.A, {SymRange{f.one, f.M, f.one}}}));
  GarList b = GarList::single(Gar::make(Pred::atom(Atom::rlt(SymExpr::constant(100), X)),
                                        Region{f.A, {SymRange{f.one, f.M, f.one}}}));
  for (auto _ : state) {
    Truth t = garIntersectionEmpty(a, b, f.ctx);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_IntersectionEmptinessProof);

/// ConsoleReporter that also captures each run's name and adjusted real
/// time, so the harness can record them as metrics.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<std::pair<std::string, double>> runs;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report)
      if (!r.error_occurred) runs.emplace_back(r.benchmark_name(), r.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(report);
  }
};

bench::BenchResult run() {
  std::vector<std::string> args;
  args.push_back("bench_micro_ops");
  for (const std::string& a : bench::extraArgs()) args.push_back(a);
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());

  CaptureReporter reporter;
  std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);

  bench::BenchResult result;
  for (const auto& [name, ns] : reporter.runs)
    result.add(name + "_ns", ns, bench::Direction::LowerIsBetter, 3.0, "ns").gated = false;
  if (ran == 0) result.fail("google-benchmark ran no benchmarks");
  return result;
}

const bench::Registration reg{{"micro_ops", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
}  // namespace panorama
