// The ingestion bench: what does the frontend-neutral builder layer cost?
//
// Three measurements over the whole Perfect corpus:
//   * parse-only wall time (the F77 parser producing the pre-sema AST);
//   * parse + builder::rebuild() wall time (the same AST replayed through
//     the fluent ProgramBuilder, validation layer included);
//   * one full analysis per ingest mode (direct vs builder round-trip).
//
// The only gated contract is report identity: both ingest paths must
// produce byte-identical loop reports and provenance for every corpus
// loop. The timing metrics are informational (.gated = false) — the
// builder's cost is a second AST construction plus validation, and the
// overhead ratio is tracked, not gated.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "panorama/analysis/driver.h"
#include "panorama/builder/builder.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"

using namespace panorama;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

std::string renderCorpus(const CorpusAnalysisResult& r) {
  std::string out;
  for (const CorpusRoutineResult& loop : r.loops) {
    out += loop.kernelId;
    out += '|';
    out += loop.procName;
    out += '|';
    out += std::to_string(loop.line);
    out += '\n';
    out += loop.report;
    out += loop.provenance;
  }
  return out;
}

bench::BenchResult run() {
  constexpr int kRepeats = 5;
  bench::BenchResult result;
  const std::vector<CorpusLoop>& corpus = perfectCorpus();

  // Parse-only vs parse + rebuild, best of kRepeats.
  double parseMs = 1e18;
  double rebuildMs = 1e18;
  std::size_t procedures = 0;
  for (int r = 0; r < kRepeats; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    std::size_t procs = 0;
    for (const CorpusLoop& cl : corpus) {
      DiagnosticEngine diags;
      auto parsed = parseProgram(cl.source, diags);
      if (!parsed) {
        result.fail("parse failed for " + cl.id + ":\n" + diags.str());
        return result;
      }
      procs += parsed->procedures.size();
    }
    parseMs = std::min(parseMs, msSince(t0));
    procedures = procs;

    t0 = std::chrono::steady_clock::now();
    for (const CorpusLoop& cl : corpus) {
      DiagnosticEngine diags;
      auto parsed = parseProgram(cl.source, diags);
      if (!parsed) {
        result.fail("parse failed for " + cl.id + ":\n" + diags.str());
        return result;
      }
      builder::BuildResult rebuilt = builder::rebuild(*parsed);
      if (!rebuilt.ok()) {
        result.fail("builder round-trip failed for " + cl.id + ":\n" + rebuilt.error());
        return result;
      }
    }
    rebuildMs = std::min(rebuildMs, msSince(t0));
  }

  // One full analysis per ingest mode; the reports must be byte-identical.
  AnalysisOptions options;
  auto t0 = std::chrono::steady_clock::now();
  CorpusAnalysisResult direct = analyzeCorpusParallel(options, CorpusIngest::Parse);
  double directMs = msSince(t0);
  t0 = std::chrono::steady_clock::now();
  CorpusAnalysisResult viaBuilder = analyzeCorpusParallel(options, CorpusIngest::BuilderRoundTrip);
  double viaBuilderMs = msSince(t0);
  bool identical = renderCorpus(direct) == renderCorpus(viaBuilder) && !direct.loops.empty();

  std::printf("frontend ingestion — %zu kernels, %zu procedures\n", corpus.size(), procedures);
  std::printf("parse only:        %.3f ms\n", parseMs);
  std::printf("parse + rebuild:   %.3f ms  (%.2fx)\n", rebuildMs, rebuildMs / parseMs);
  std::printf("analysis (parse):  %.3f ms\n", directMs);
  std::printf("analysis (builder):%.3f ms\n", viaBuilderMs);
  std::printf("reports identical: %s  (%zu loops)\n", identical ? "yes" : "NO",
              direct.loops.size());

  result.addConfig("corpus", "perfect (Table 1/2 kernels)");
  result.addConfig("rebuild", "parse -> builder::rebuild() -> analyze");
  result.add("parse_wall_ms", parseMs, bench::Direction::LowerIsBetter, 3.0, "ms").gated = false;
  result.add("rebuild_wall_ms", rebuildMs, bench::Direction::LowerIsBetter, 3.0, "ms").gated =
      false;
  result.add("ingest_overhead_x", rebuildMs / parseMs, bench::Direction::LowerIsBetter, 1.0, "x")
      .gated = false;
  result.add("analysis_direct_ms", directMs, bench::Direction::LowerIsBetter, 3.0, "ms").gated =
      false;
  result.add("analysis_builder_ms", viaBuilderMs, bench::Direction::LowerIsBetter, 3.0, "ms")
      .gated = false;
  result.add("reports_identical", identical ? 1.0 : 0.0, bench::Direction::Exact);
  result.add("corpus_loops", static_cast<double>(direct.loops.size()), bench::Direction::Exact);
  if (!identical) result.fail("builder round-trip reports diverge from the parser path");
  return result;
}

const bench::Registration reg{{"ingest", /*repetitions=*/1, /*warmup=*/0, run}};

}  // namespace
