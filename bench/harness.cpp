#include "harness.h"

#include <cmath>
#include <cstdio>
#include <ctime>

#include "panorama/support/json.h"

namespace panorama::bench {

using support::JsonValue;

Metric& BenchResult::add(std::string name, double value, Direction direction, double relTolerance,
                         std::string unit) {
  Metric m;
  m.value = value;
  m.direction = direction;
  m.relTolerance = relTolerance;
  m.unit = std::move(unit);
  metrics.emplace_back(std::move(name), std::move(m));
  return metrics.back().second;
}

void BenchResult::addConfig(std::string key, std::string value) {
  config.emplace_back(std::move(key), std::move(value));
}

void BenchResult::fail(std::string why) {
  ok = false;
  // Accumulate every reason: a --check run that regresses three metrics must
  // report all three, not just the first one it happened to evaluate.
  if (failure.empty()) {
    failure = std::move(why);
  } else {
    failure += "; ";
    failure += why;
  }
}

const Metric* BenchResult::find(std::string_view name) const {
  for (const auto& [n, m] : metrics)
    if (n == name) return &m;
  return nullptr;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::add(BenchSpec spec) { specs_.push_back(std::move(spec)); }

const BenchSpec* Registry::find(std::string_view name) const {
  for (const BenchSpec& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

Registration::Registration(BenchSpec spec) { Registry::global().add(std::move(spec)); }

BenchResult runBench(const BenchSpec& spec) {
  for (int k = 0; k < spec.warmup; ++k) (void)spec.run();
  BenchResult merged = spec.run();
  for (int rep = 1; rep < spec.repetitions && merged.ok; ++rep) {
    BenchResult next = spec.run();
    if (!next.ok) return next;
    for (auto& [name, metric] : merged.metrics) {
      const Metric* other = next.find(name);
      if (!other) {
        merged.fail("metric '" + name + "' missing from repetition " + std::to_string(rep));
        break;
      }
      switch (metric.direction) {
        case Direction::LowerIsBetter:
          if (other->value < metric.value) metric.value = other->value;
          break;
        case Direction::HigherIsBetter:
          if (other->value > metric.value) metric.value = other->value;
          break;
        case Direction::Exact:
          if (other->value != metric.value)
            merged.fail("exact metric '" + name + "' differs across repetitions (" +
                        std::to_string(metric.value) + " vs " + std::to_string(other->value) +
                        ")");
          break;
      }
    }
  }
  // Hard contracts hold on every run, baseline or not.
  for (const auto& [name, metric] : merged.metrics) {
    if (metric.maxValue && metric.value > *metric.maxValue)
      merged.fail("metric '" + name + "' = " + std::to_string(metric.value) +
                  " exceeds hard max " + std::to_string(*metric.maxValue));
    if (metric.minValue && metric.value < *metric.minValue)
      merged.fail("metric '" + name + "' = " + std::to_string(metric.value) +
                  " below hard min " + std::to_string(*metric.minValue));
  }
  return merged;
}

namespace {

void appendNumber(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out += buf;
  }
}

void appendQuoted(std::string& out, std::string_view s) {
  out += '"';
  support::appendJsonEscaped(out, s);
  out += '"';
}

const char* directionName(Direction d) {
  switch (d) {
    case Direction::LowerIsBetter: return "lower";
    case Direction::HigherIsBetter: return "higher";
    case Direction::Exact: return "exact";
  }
  return "?";
}

}  // namespace

std::string renderRecord(const BenchSpec& spec, const BenchResult& result,
                         const std::string& gitDescribe, long long timestampUnix, bool pretty) {
  const char* nl = pretty ? "\n  " : " ";
  std::string out = "{";
  out += nl;
  out += "\"schema_version\": 1,";
  out += nl;
  out += "\"bench\": ";
  appendQuoted(out, spec.name);
  out += ",";
  out += nl;
  out += "\"git\": ";
  appendQuoted(out, gitDescribe);
  out += ",";
  out += nl;
  out += "\"timestamp_unix\": " + std::to_string(timestampUnix) + ",";
  out += nl;
  out += "\"repetitions\": " + std::to_string(spec.repetitions) + ",";
  out += nl;
  out += "\"warmup\": " + std::to_string(spec.warmup) + ",";
  out += nl;
  out += std::string("\"ok\": ") + (result.ok ? "true" : "false") + ",";
  out += nl;
  out += "\"config\": {";
  for (std::size_t k = 0; k < result.config.size(); ++k) {
    if (k) out += ", ";
    appendQuoted(out, result.config[k].first);
    out += ": ";
    appendQuoted(out, result.config[k].second);
  }
  out += "},";
  out += nl;
  out += "\"metrics\": {";
  for (std::size_t k = 0; k < result.metrics.size(); ++k) {
    const auto& [name, m] = result.metrics[k];
    if (k) out += ",";
    if (pretty) out += "\n    ";
    else if (k) out += " ";
    appendQuoted(out, name);
    out += ": {\"value\": ";
    appendNumber(out, m.value);
    out += ", \"unit\": ";
    appendQuoted(out, m.unit);
    out += ", \"direction\": \"";
    out += directionName(m.direction);
    out += "\", \"rel_tolerance\": ";
    appendNumber(out, m.relTolerance);
    if (m.maxValue) {
      out += ", \"max\": ";
      appendNumber(out, *m.maxValue);
    }
    if (m.minValue) {
      out += ", \"min\": ";
      appendNumber(out, *m.minValue);
    }
    out += std::string(", \"gated\": ") + (m.gated ? "true" : "false") + "}";
  }
  if (pretty && !result.metrics.empty()) out += "\n  ";
  out += "}";
  if (!result.profileJson.empty()) {
    out += ",";
    out += nl;
    out += "\"profile\": ";
    if (pretty) {
      out += result.profileJson;
    } else {
      // The embedded profile arrives pretty-rendered; a history record must
      // stay one JSONL line. Newlines in JSON text only ever occur as
      // formatting whitespace (string content escapes them), so dropping
      // them keeps the value intact.
      for (char c : result.profileJson)
        if (c != '\n') out += c;
    }
  }
  if (!result.failure.empty()) {
    out += ",";
    out += nl;
    out += "\"failure\": ";
    appendQuoted(out, result.failure);
  }
  out += pretty ? "\n}\n" : "}";
  return out;
}

std::vector<RegressionIssue> compareToBaseline(const BenchResult& result,
                                               const std::string& baselineJson) {
  std::vector<RegressionIssue> issues;
  std::string error;
  std::optional<JsonValue> base = JsonValue::parse(baselineJson, &error);
  if (!base || !base->isObject()) {
    issues.push_back({"<baseline>", "baseline is not valid JSON: " + error});
    return issues;
  }
  const JsonValue* metrics = base->find("metrics");
  if (!metrics || !metrics->isObject()) {
    issues.push_back({"<baseline>", "baseline has no metrics object"});
    return issues;
  }
  for (const auto& [name, metric] : result.metrics) {
    if (!metric.gated) continue;
    const JsonValue* entry = metrics->find(name);
    if (!entry) continue;  // new metric, no baseline yet
    const JsonValue* valueNode = entry->isObject() ? entry->find("value") : entry;
    if (!valueNode || !valueNode->isNumber()) {
      issues.push_back({name, "baseline entry has no numeric value"});
      continue;
    }
    const double baseline = valueNode->asNumber();
    const double value = metric.value;
    switch (metric.direction) {
      case Direction::LowerIsBetter: {
        const double limit = baseline * (1.0 + metric.relTolerance);
        if (value > limit)
          issues.push_back({name, "regressed: " + std::to_string(value) + " > baseline " +
                                      std::to_string(baseline) + " * (1 + " +
                                      std::to_string(metric.relTolerance) + ")"});
        break;
      }
      case Direction::HigherIsBetter: {
        const double limit = baseline * (1.0 - metric.relTolerance);
        if (value < limit)
          issues.push_back({name, "regressed: " + std::to_string(value) + " < baseline " +
                                      std::to_string(baseline) + " * (1 - " +
                                      std::to_string(metric.relTolerance) + ")"});
        break;
      }
      case Direction::Exact: {
        const double eps = 1e-9 * std::max(1.0, std::fabs(baseline));
        if (std::fabs(value - baseline) > eps)
          issues.push_back({name, "exact metric changed: " + std::to_string(value) +
                                      " != baseline " + std::to_string(baseline)});
        break;
      }
    }
  }
  return issues;
}

namespace {

std::vector<std::string>& extraArgsStorage() {
  static std::vector<std::string> args;
  return args;
}

}  // namespace

const std::vector<std::string>& extraArgs() { return extraArgsStorage(); }
void setExtraArgs(std::vector<std::string> args) { extraArgsStorage() = std::move(args); }

int standaloneMain(int argc, char** argv) {
  std::string snapshotPath;
  std::vector<std::string> extra;
  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg.rfind("--", 0) == 0) {
      // Forwarded verbatim (micro-op benches hand --benchmark_* flags to
      // google-benchmark).
      extra.emplace_back(arg);
    } else if (snapshotPath.empty()) {
      snapshotPath = std::string(arg);
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[k]);
      return 2;
    }
  }
  setExtraArgs(std::move(extra));

  std::string git = "unknown";
  if (FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p)) {
      git = buf;
      while (!git.empty() && (git.back() == '\n' || git.back() == '\r')) git.pop_back();
    }
    ::pclose(p);
  }

  int exitCode = 0;
  for (const BenchSpec& spec : Registry::global().all()) {
    BenchResult result = runBench(spec);
    for (const auto& [name, m] : result.metrics)
      std::printf("%s.%s = %g %s\n", spec.name.c_str(), name.c_str(), m.value, m.unit.c_str());
    if (!result.ok) {
      std::fprintf(stderr, "%s: FAILED: %s\n", spec.name.c_str(), result.failure.c_str());
      exitCode = 1;
    }
    if (!snapshotPath.empty()) {
      std::string record =
          renderRecord(spec, result, git, static_cast<long long>(std::time(nullptr)), true);
      FILE* f = std::fopen(snapshotPath.c_str(), "w");
      if (!f || std::fwrite(record.data(), 1, record.size(), f) != record.size()) {
        std::fprintf(stderr, "cannot write snapshot '%s'\n", snapshotPath.c_str());
        if (f) std::fclose(f);
        return 2;
      }
      std::fclose(f);
      std::fprintf(stderr, "snapshot -> %s\n", snapshotPath.c_str());
    }
  }
  return exitCode;
}

}  // namespace panorama::bench
