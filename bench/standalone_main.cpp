// main() for the per-bench standalone binaries: each bench_<name> target
// compiles its bench TU (whose file-scope Registration populates the
// registry) plus this file.
#include "harness.h"

int main(int argc, char** argv) { return panorama::bench::standaloneMain(argc, argv); }
