// Cross-kernel integration: one program combining the corpus' canonical
// patterns (ARC2D-style filter, TRFD-style transform, OCEAN-style guarded
// pipeline, MDG-style counter idiom) in a single compilation unit. Checks
// that the patterns keep their classifications when they share a symbol
// universe, that the whole thing executes, and that the combined
// privatization survives the scrambled witness.
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"

namespace panorama {
namespace {

constexpr const char* kMiniPerfect = R"(
      program mini
      real field(60, 60), grid(60, 60)
      common /mp1/ field, grid
      integer jlow, jup, kup, nrs, mrs, n, m
      jlow = 2
      jup = 40
      kup = 24
      nrs = 20
      mrs = 16
      n = 22
      m = 14
      call filter(jlow, jup, kup)
      call transf(nrs, mrs)
      call pipeln(n, m)
      end

      subroutine filter(jlow, jup, kup)
      integer jlow, jup, kup
      real field(60, 60), grid(60, 60)
      common /mp1/ field, grid
      real work(60)
      do 15 k = 1, kup
        do j = jlow, jup
          work(j) = field(j, k) * 0.25
        enddo
        do j = jlow, jup
          field(j, k) = work(j) + field(j, k)
        enddo
 15   continue
      end

      subroutine transf(nrs, mrs)
      integer nrs, mrs
      real field(60, 60), grid(60, 60)
      common /mp1/ field, grid
      real xrsiq(60)
      do 100 i = 1, nrs
        do j = 1, mrs
          xrsiq(j) = grid(i, j) * 2.0
        enddo
        do j = 1, mrs
          grid(i, j) = xrsiq(j) + 1.0
        enddo
 100  continue
      end

      subroutine pipeln(n, m)
      integer n, m
      real field(60, 60), grid(60, 60)
      common /mp1/ field, grid
      real cwork(60)
      real sc
      do 270 i = 1, n
        sc = i * 1.0
        call fwrite(cwork, sc, m)
        call fread(cwork, sc, m, i)
 270  continue
      end

      subroutine fwrite(b, sc, mm)
      real b(60)
      real sc
      integer mm
      if (sc .gt. 50.0) return
      do j = 1, mm
        b(j) = sc + j
      enddo
      end

      subroutine fread(b, sc, mm, ii)
      real b(60)
      real sc
      integer mm, ii
      real field(60, 60), grid(60, 60)
      common /mp1/ field, grid
      if (sc .gt. 50.0) return
      do j = 1, mm
        grid(ii, j) = grid(ii, j) + b(j)
      enddo
      end
)";

TEST(MiniPerfectTest, AllPatternsClassifyTogether) {
  DiagnosticEngine diags;
  auto p = parseProgram(kMiniPerfect, diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value()) << diags.str();
  Hsg hsg = buildHsg(*p, *sr, diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.str();
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  analyzer.analyzeAll();
  LoopParallelizer lp(analyzer);

  struct Want {
    const char* routine;
    const char* array;
  };
  const Want wants[] = {
      {"filter", "work"}, {"transf", "xrsiq"}, {"pipeln", "cwork"}};
  for (const Want& w : wants) {
    const Stmt* loop = findOuterLoop(*p, w.routine, 0);
    ASSERT_NE(loop, nullptr) << w.routine;
    LoopAnalysis la = lp.analyzeLoop(*loop, *p->findProcedure(w.routine));
    bool priv = false;
    for (const ArrayPrivatization& ap : la.arrays)
      if (ap.name == w.array) priv = ap.privatizable;
    EXPECT_TRUE(priv) << w.routine << "/" << w.array << "\n"
                      << formatLoopAnalysis(la);
    EXPECT_EQ(la.classification, LoopClass::ParallelAfterPrivatization)
        << w.routine << "\n"
        << formatLoopAnalysis(la);
  }
}

TEST(MiniPerfectTest, ExecutesAndWitnesses) {
  DiagnosticEngine diags;
  auto p = parseProgram(kMiniPerfect, diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value()) << diags.str();
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  analyzer.analyzeAll();
  LoopParallelizer lp(analyzer);

  Interpreter serial(*p, *sr);
  auto res = serial.run({});
  ASSERT_TRUE(res.ok) << res.error;

  // Scramble each of the three evaluated loops (independently) with its
  // privatized arrays; live-out memory must match.
  for (const char* routine : {"filter", "transf", "pipeln"}) {
    const Stmt* loop = findOuterLoop(*p, routine, 0);
    LoopAnalysis la = lp.analyzeLoop(*loop, *p->findProcedure(routine));
    std::vector<ArrayId> privatized;
    std::set<ArrayId> dead;
    for (const ArrayPrivatization& ap : la.arrays) {
      if (!ap.privatizable) continue;
      privatized.push_back(ap.array);
      if (!ap.needsCopyOut) dead.insert(ap.array);
    }
    ASSERT_FALSE(privatized.empty()) << routine;
    Interpreter scrambled(*p, *sr);
    Interpreter::Config cfg;
    cfg.privatizeLoop = loop;
    cfg.privatizedArrays = privatized;
    cfg.scrambleSeed = 99;
    auto sres = scrambled.run(cfg);
    ASSERT_TRUE(sres.ok) << routine << ": " << sres.error;
    for (const auto& [id, store] : serial.arrays()) {
      if (dead.count(id)) continue;
      auto it = scrambled.arrays().find(id);
      ASSERT_NE(it, scrambled.arrays().end());
      EXPECT_EQ(it->second, store) << routine << "/" << sr->arrays.name(id);
    }
  }
}

TEST(MiniPerfectTest, ProcSummaryDeThroughCalls) {
  // DE composes across the call: `b` is read by `fread` and never written
  // there — downward exposed at the callee's exit (grid, by contrast, is
  // read-then-rewritten per element, so it is NOT downward exposed).
  DiagnosticEngine diags;
  auto p = parseProgram(kMiniPerfect, diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  const ProcSummary& ps = analyzer.procSummary(*p->findProcedure("fread"));
  ArrayId b = *sr->procs.at("fread").arrayId("b");
  ArrayId grid = *sr->procs.at("fread").arrayId("grid");
  EXPECT_FALSE(ps.de.forArray(b).empty());
  EXPECT_TRUE(ps.de.forArray(grid).empty());
}

}  // namespace
}  // namespace panorama
