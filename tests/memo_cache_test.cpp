// Session-aware eviction in the bounded query cache: stale entries (older
// epoch, or stored before the last noteUnitsRetired) are evicted before
// live ones, retire marks never block hits, and live-only shards fall back
// to plain FIFO. Keys are crafted onto one shard via shardIndexForTesting
// so eviction order is fully deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "panorama/support/memo_cache.h"

namespace panorama {
namespace {

constexpr QueryCache::Tag kTag = QueryCache::Tag::FmContradictory;

/// `n` distinct single-word keys that all route to the same shard (the
/// shard of {seed 0}).
std::vector<std::vector<std::uint64_t>> sameShardKeys(std::size_t n) {
  std::vector<std::vector<std::uint64_t>> keys;
  const std::size_t shard = QueryCache::shardIndexForTesting(kTag, {0});
  for (std::uint64_t seed = 0; keys.size() < n; ++seed) {
    std::vector<std::uint64_t> words{seed};
    if (QueryCache::shardIndexForTesting(kTag, words) == shard) keys.push_back(std::move(words));
  }
  return keys;
}

TEST(MemoCacheEvictionTest, StaleEpochEntriesEvictBeforeLiveOnes) {
  QueryCache cache;
  cache.configure(64);  // 16 shards -> 4 entries per shard
  auto k = sameShardKeys(7);

  cache.store(kTag, k[0], Truth::True);
  cache.store(kTag, k[1], Truth::True);
  cache.bumpEpoch();  // k0/k1 are now epoch-stale and can never hit again
  cache.store(kTag, k[2], Truth::False);
  cache.store(kTag, k[3], Truth::False);

  // The shard is full. The next two stores must victimize the stale pair
  // (oldest first), not the live FIFO front.
  cache.store(kTag, k[4], Truth::True);
  cache.store(kTag, k[5], Truth::True);
  EXPECT_EQ(cache.stats().evictedStale, 2u);
  EXPECT_EQ(cache.stats().evictedLive, 0u);
  EXPECT_EQ(cache.lookup(kTag, k[2]), Truth::False);  // live entry survived

  // No stale entry left: plain FIFO takes the oldest live entry (k2).
  cache.store(kTag, k[6], Truth::True);
  EXPECT_EQ(cache.stats().evictedLive, 1u);
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_EQ(cache.lookup(kTag, k[2]), std::nullopt);
  EXPECT_EQ(cache.lookup(kTag, k[3]), Truth::False);
  EXPECT_EQ(cache.lookup(kTag, k[6]), Truth::True);
}

TEST(MemoCacheEvictionTest, RetiredEntriesStillHitButAreEvictedFirst) {
  QueryCache cache;
  cache.configure(64);
  auto k = sameShardKeys(5);

  cache.store(kTag, k[0], Truth::True);
  cache.store(kTag, k[1], Truth::False);
  cache.noteUnitsRetired();

  // Retire marks entries eviction-preferred without invalidating them:
  // verdict keys are pure, so the cached answers are still correct.
  EXPECT_EQ(cache.lookup(kTag, k[0]), Truth::True);
  EXPECT_EQ(cache.lookup(kTag, k[1]), Truth::False);

  cache.store(kTag, k[2], Truth::True);
  cache.store(kTag, k[3], Truth::True);
  cache.store(kTag, k[4], Truth::True);  // full shard: k0 (retired) goes first
  EXPECT_EQ(cache.stats().evictedStale, 1u);
  EXPECT_EQ(cache.stats().evictedLive, 0u);
  EXPECT_EQ(cache.lookup(kTag, k[0]), std::nullopt);
  EXPECT_EQ(cache.lookup(kTag, k[1]), Truth::False);  // next victim, still resident
  EXPECT_EQ(cache.lookup(kTag, k[2]), Truth::True);
}

TEST(MemoCacheEvictionTest, LiveOnlyShardFallsBackToFifo) {
  QueryCache cache;
  cache.configure(64);
  auto k = sameShardKeys(5);
  for (std::size_t i = 0; i < 4; ++i) cache.store(kTag, k[i], Truth::True);
  cache.store(kTag, k[4], Truth::True);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().evictedStale, 0u);
  EXPECT_EQ(cache.stats().evictedLive, 1u);
  EXPECT_EQ(cache.lookup(kTag, k[0]), std::nullopt);  // FIFO front
  EXPECT_EQ(cache.lookup(kTag, k[1]), Truth::True);
}

TEST(MemoCacheEvictionTest, RestoringAStaleKeyRevivesItInPlace) {
  QueryCache cache;
  cache.configure(64);
  auto k = sameShardKeys(5);

  cache.store(kTag, k[0], Truth::True);
  cache.store(kTag, k[1], Truth::True);
  cache.bumpEpoch();
  cache.store(kTag, k[0], Truth::False);  // overwrites the stale slot in place
  cache.store(kTag, k[2], Truth::True);
  cache.store(kTag, k[3], Truth::True);

  // Only k1 is stale now; it must be the victim even though k0 sits ahead
  // of it in insertion order.
  cache.store(kTag, k[4], Truth::True);
  EXPECT_EQ(cache.stats().evictedStale, 1u);
  EXPECT_EQ(cache.stats().evictedLive, 0u);
  EXPECT_EQ(cache.lookup(kTag, k[0]), Truth::False);
  EXPECT_EQ(cache.lookup(kTag, k[1]), std::nullopt);
}

TEST(MemoCacheEvictionTest, StatsSurfaceBothEvictionKinds) {
  QueryCache cache;
  cache.configure(64);
  auto k = sameShardKeys(6);
  for (std::size_t i = 0; i < 2; ++i) cache.store(kTag, k[i], Truth::True);
  cache.bumpEpoch();
  for (std::size_t i = 2; i < 6; ++i) cache.store(kTag, k[i], Truth::True);
  QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, stats.evictedStale + stats.evictedLive);
  EXPECT_EQ(stats.evictedStale, 2u);
  EXPECT_EQ(stats.entries, 4u);
}

}  // namespace
}  // namespace panorama
