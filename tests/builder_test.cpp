// The program-builder contract (builder.h, DESIGN.md §4.7):
//   * a programmatic reconstruction of the fig1a corpus kernel produces
//     loop reports — including provenance — byte-identical to the parsed
//     original, at 1, 4 and 8 threads;
//   * builder output fingerprints identically to its parsed equivalent, so
//     an incremental session treats the two frontends as one cache: a
//     builder-built fig1a warm-resubmitted (or resubmitted as parsed text)
//     recomputes nothing;
//   * `>>` edge chains order blocks, overriding creation order;
//   * every misuse — cyclic or malformed edge chains, duplicate block
//     names, undeclared subscript symbols, unclosed regions, rank
//     mismatches, dangling GOTOs — is a structured diagnostic from
//     build(), never an abort, and one build() reports all of them.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "panorama/analysis/driver.h"
#include "panorama/ast/fingerprint.h"
#include "panorama/builder/builder.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"
#include "panorama/session/session.h"
#include "panorama/support/memo_cache.h"
#include "panorama/support/thread_pool.h"

namespace panorama {
namespace {

using builder::BuildResult;
using builder::cst;
using builder::elem;
using builder::rcst;
using builder::sym;
using builder::Val;

/// Restores the global cache to its default configuration when a test ends,
/// so test order never matters.
struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

/// Programmatic reconstruction of the fig1a corpus kernel (corpus.cpp),
/// with at() locations matching the Fortran text so even the line numbers
/// the reports cite agree with the parsed original.
BuildResult buildFig1a() {
  builder::ProgramBuilder b;

  auto& main = b.mainProgram("fig1a");
  main.at(2);
  main.array("res", {64});
  main.integer("nmol1").real("cut2");
  main.common("f1a", {"res"});
  main.at(7).assign("nmol1", 24);
  main.at(8).assign("cut2", 12.0);
  main.at(9).call("interf", {sym("nmol1"), sym("cut2")});

  auto& p = b.procedure("interf");
  p.at(12);
  p.param("nmol1").param("cut2");
  p.integer("nmol1").real("cut2");
  p.array("res", {64});
  p.common("f1a", {"res"});
  p.array("a", {20}).array("b", {20});
  p.integer("kc").real("ttemp");

  p.at(20).beginLoop("i", 1, sym("nmol1"));
  {
    p.at(21).assign("kc", 0);
    p.at(22).beginLoop("k", 1, 9);
    {
      p.at(23).store("b", {sym("k")}, sym("k") + sym("i"));
      p.at(24).beginGuard(elem("b", {sym("k")}) > sym("cut2"));
      p.assign("kc", sym("kc") + 1);
      p.endGuard();
    }
    p.endLoop();
    p.at(26).beginLoop("k", 2, 5);
    {
      p.at(27).beginGuard(elem("b", {sym("k") + 4}) > sym("cut2"));
      p.jump(1);
      p.endGuard();
      p.at(28).store("a", {sym("k") + 4}, elem("b", {sym("k")}) * rcst(2.0));
      p.at(29).labelNext(1).cont();
    }
    p.endLoop();
    p.at(30).beginGuard(sym("kc") != 0);
    p.jump(2);
    p.endGuard();
    p.at(31).beginLoop("k", 11, 14);
    {
      p.at(32).assign("ttemp", elem("a", {sym("k") - 5}) * rcst(0.5));
      p.at(33).store("res", {sym("i")}, elem("res", {sym("i")}) + sym("ttemp"));
    }
    p.endLoop();
    p.at(35).labelNext(2).cont();
  }
  p.endLoop();

  return b.build();
}

Program parseFig1a() {
  DiagnosticEngine diags;
  auto parsed = parseProgram(fig1aSource(), diags);
  EXPECT_TRUE(parsed.has_value()) << diags.str();
  return std::move(*parsed);
}

std::string render(const ProgramAnalysis& pa) {
  std::ostringstream os;
  for (const LoopAnalysis& la : pa.loops) {
    os << la.procName << " | line " << la.line << " | " << toString(la.classification) << '\n'
       << formatLoopAnalysis(la) << formatProvenance(la) << '\n';
  }
  return os.str();
}

std::string renderSession(const SessionResult& r) {
  std::ostringstream os;
  for (const SessionLoopResult& loop : r.loops) {
    os << loop.procName << " | line " << loop.line << " | " << toString(loop.classification)
       << '\n'
       << loop.report << loop.provenance << '\n';
  }
  return os.str();
}

// ------------------------------------------------------------------ fig1a

TEST(BuilderFig1aTest, ReportsByteIdenticalToParsedAcrossThreadCounts) {
  CacheGuard guard;
  BuildResult built = buildFig1a();
  ASSERT_TRUE(built.ok()) << built.error();

  for (std::size_t threads : {1u, 4u, 8u}) {
    AnalysisOptions options;
    options.numThreads = threads;
    ThreadPool pool(threads);

    ProgramAnalysis parsed = analyzeProgramUnit(parseFig1a(), options, pool);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_FALSE(parsed.loops.empty());

    BuildResult b = buildFig1a();
    ASSERT_TRUE(b.ok()) << b.error();
    ProgramAnalysis builtPa = analyzeProgramUnit(std::move(*b.program), options, pool);
    ASSERT_TRUE(builtPa.ok) << builtPa.error;

    EXPECT_EQ(render(parsed), render(builtPa)) << threads << " threads";
  }
  // The reconstruction even cites the same source lines (at() replay).
  AnalysisOptions options;
  ThreadPool pool(1);
  ProgramAnalysis pa = analyzeProgramUnit(std::move(*built.program), options, pool);
  ASSERT_TRUE(pa.ok) << pa.error;
  std::vector<int> lines;
  for (const LoopAnalysis& la : pa.loops) lines.push_back(la.line);
  EXPECT_EQ(lines, (std::vector<int>{20, 22, 26, 31}));
}

TEST(BuilderFig1aTest, FingerprintsMatchParsedProcedures) {
  BuildResult built = buildFig1a();
  ASSERT_TRUE(built.ok()) << built.error();
  Program parsed = parseFig1a();

  ASSERT_EQ(built.program->procedures.size(), parsed.procedures.size());
  for (std::size_t k = 0; k < parsed.procedures.size(); ++k) {
    EXPECT_EQ(fingerprintProcedure(built.program->procedures[k]),
              fingerprintProcedure(parsed.procedures[k]))
        << parsed.procedures[k].name;
  }
}

TEST(BuilderFig1aTest, RebuildRoundTripPreservesFingerprints) {
  Program parsed = parseFig1a();
  BuildResult rebuilt = builder::rebuild(parsed);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error();
  ASSERT_EQ(rebuilt.program->procedures.size(), parsed.procedures.size());
  for (std::size_t k = 0; k < parsed.procedures.size(); ++k) {
    EXPECT_EQ(fingerprintProcedure(rebuilt.program->procedures[k]),
              fingerprintProcedure(parsed.procedures[k]))
        << parsed.procedures[k].name;
  }
}

TEST(BuilderFig1aTest, SessionTreatsBuilderAndParserAsOneFrontend) {
  CacheGuard guard;
  AnalysisSession session;

  BuildResult cold = buildFig1a();
  ASSERT_TRUE(cold.ok()) << cold.error();
  SessionResult first = session.submit(std::move(*cold.program));
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_TRUE(first.stats.fullInvalidation);

  // Identical builder-built program: nothing recomputes.
  BuildResult warm = buildFig1a();
  ASSERT_TRUE(warm.ok()) << warm.error();
  SessionResult second = session.submit(std::move(*warm.program));
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.stats.dirty, 0u);
  EXPECT_EQ(second.stats.modified, 0u);
  EXPECT_EQ(second.stats.unchanged, second.stats.procedures);
  EXPECT_EQ(second.stats.loopsRecomputed, 0u);
  EXPECT_EQ(renderSession(first), renderSession(second));

  // The parsed original diffs as unchanged against the builder-built units:
  // structural, SourceLoc-blind fingerprints make the frontends one cache.
  SessionResult parsed = session.submit(std::string(fig1aSource()));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.stats.dirty, 0u);
  EXPECT_EQ(renderSession(first), renderSession(parsed));
}

// ---------------------------------------------------------- fluent basics

TEST(BuilderTest, EdgeChainsOverrideCreationOrder) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.array("a", {100});

  // Created out of order on purpose; `>>` fixes the emission order.
  builder::NodeRef done = p.block("done");
  builder::NodeRef init = p.block("init");
  init.assign("s", 1);
  builder::NodeRef loop = p.beginLoop("i", 1, 100);
  p.store("a", {sym("i")}, sym("i") + sym("s"));
  p.endLoop();
  done.cont();
  init >> loop >> done;

  BuildResult r = b.build();
  ASSERT_TRUE(r.ok()) << r.error();
  const Procedure& proc = r.program->procedures.front();
  ASSERT_EQ(proc.body.size(), 3u);
  EXPECT_EQ(proc.body[0]->kind, Stmt::Kind::Assign);  // init first, not "done"
  EXPECT_EQ(proc.body[1]->kind, Stmt::Kind::Do);
  EXPECT_EQ(proc.body[2]->kind, Stmt::Kind::Continue);

  AnalysisOptions options;
  ThreadPool pool(1);
  ProgramAnalysis pa = analyzeProgramUnit(std::move(*r.program), options, pool);
  ASSERT_TRUE(pa.ok) << pa.error;
  ASSERT_EQ(pa.loops.size(), 1u);
  EXPECT_EQ(pa.loops[0].classification, LoopClass::Parallel);
}

TEST(BuilderTest, GuardRegionsEmitIfElse) {
  builder::ProgramBuilder b;
  auto& p = b.procedure("sel");
  p.param("n").integer("n");
  p.array("a", {100});
  p.beginLoop("i", 1, sym("n"));
  p.beginGuard(sym("i") < 50);
  p.store("a", {sym("i")}, 1);
  p.beginElse();
  p.store("a", {sym("i")}, 2);
  p.endGuard();
  p.endLoop();

  BuildResult r = b.build();
  ASSERT_TRUE(r.ok()) << r.error();
  const Procedure& proc = r.program->procedures.front();
  ASSERT_EQ(proc.body.size(), 1u);
  const Stmt& doStmt = *proc.body[0];
  ASSERT_EQ(doStmt.body.size(), 1u);
  const Stmt& guard = *doStmt.body[0];
  EXPECT_EQ(guard.kind, Stmt::Kind::If);
  EXPECT_EQ(guard.thenBody.size(), 1u);
  EXPECT_EQ(guard.elseBody.size(), 1u);

  AnalysisOptions options;
  ThreadPool pool(1);
  ProgramAnalysis pa = analyzeProgramUnit(std::move(*r.program), options, pool);
  ASSERT_TRUE(pa.ok) << pa.error;
  ASSERT_EQ(pa.loops.size(), 1u);
  EXPECT_EQ(pa.loops[0].classification, LoopClass::Parallel);
}

TEST(BuilderTest, DefinedScalarCountsAsDeclaredInSubscripts) {
  // Fortran implicit typing: `j` is never declared but is defined by an
  // assignment, so using it as a subscript is legal (the parser frontend
  // accepts the same shape).
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.array("a", {10});
  p.assign("j", 3);
  p.store("a", {sym("j")}, 1);
  BuildResult r = b.build();
  EXPECT_TRUE(r.ok()) << r.error();
}

// ------------------------------------------------------------ diagnostics

/// Builds and expects failure with `needle` somewhere in the diagnostics.
void expectBuildError(builder::ProgramBuilder& b, const std::string& needle) {
  BuildResult r = b.build();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find(needle), std::string::npos)
      << "expected \"" << needle << "\" in:\n"
      << r.error();
}

TEST(BuilderDiagnosticsTest, CyclicEdgeChainIsAnErrorNotControlFlow) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  builder::NodeRef x = p.block("x");
  builder::NodeRef y = p.block("y");
  x.assign("s", 1);
  y.assign("t", 2);
  x >> y;
  y >> x;
  expectBuildError(b, "cyclic edge chain through");
}

TEST(BuilderDiagnosticsTest, DuplicateBlockNames) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.block("body").assign("s", 1);
  p.block("body").assign("t", 2);
  expectBuildError(b, "duplicate block name 'body'");
}

TEST(BuilderDiagnosticsTest, UndeclaredSubscriptSymbol) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.array("a", {10});
  p.store("a", {sym("j")}, 1);  // j: never declared, assigned, or a loop var
  expectBuildError(b, "undeclared symbol 'j'");
}

TEST(BuilderDiagnosticsTest, UndeclaredLoopBoundSymbol) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.array("a", {10});
  p.beginLoop("i", 1, sym("n"));
  p.store("a", {sym("i")}, 0);
  p.endLoop();
  expectBuildError(b, "undeclared symbol 'n'");
}

TEST(BuilderDiagnosticsTest, UnclosedLoopRegion) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.beginLoop("i", 1, 10);
  p.assign("s", sym("i"));
  expectBuildError(b, "was never closed");
}

TEST(BuilderDiagnosticsTest, UnclosedGuardRegion) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.assign("s", 1);
  p.beginGuard(sym("s") > 0);
  p.assign("t", 2);
  expectBuildError(b, "was never closed");
}

TEST(BuilderDiagnosticsTest, EndLoopWithoutOpenLoop) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.assign("s", 1);
  p.endLoop();
  expectBuildError(b, "endLoop() without an open loop region");
}

TEST(BuilderDiagnosticsTest, BeginElseWithoutGuard) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.assign("s", 1);
  p.beginElse();
  expectBuildError(b, "beginElse() without an open guard region");
}

TEST(BuilderDiagnosticsTest, SubscriptRankMismatch) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.array("m", {10, 10});
  p.beginLoop("i", 1, 10);
  p.store("m", {sym("i")}, 0);
  p.endLoop();
  expectBuildError(b, "array 'm' expects 2 subscript(s), got 1");
}

TEST(BuilderDiagnosticsTest, DanglingGotoLabel) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.assign("s", 1);
  p.jump(7);
  expectBuildError(b, "GOTO references undefined label 7");
}

TEST(BuilderDiagnosticsTest, AssignmentToArrayWithoutSubscripts) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.array("a", {10});
  p.assign("a", 1);
  expectBuildError(b, "assignment to array 'a'");
}

TEST(BuilderDiagnosticsTest, AssignmentToParameter) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.constant("n", 10);
  p.assign("n", 3);
  expectBuildError(b, "assignment to PARAMETER 'n'");
}

TEST(BuilderDiagnosticsTest, SubscriptedScalarIsNeitherArrayNorIntrinsic) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.integer("x");
  p.assign("x", 1);
  p.assign("s", elem("x", {cst(1)}));
  expectBuildError(b, "neither a declared array nor an intrinsic");
}

TEST(BuilderDiagnosticsTest, MultipleSuccessorsNeedAGuardRegion) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  builder::NodeRef x = p.block("x");
  builder::NodeRef y = p.block("y");
  builder::NodeRef z = p.block("z");
  x.assign("s", 1);
  y.assign("t", 2);
  z.assign("u", 3);
  x >> y;
  x >> z;
  expectBuildError(b, "has multiple successors");
}

TEST(BuilderDiagnosticsTest, BlockLeftOutOfTheEdgeChain) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  builder::NodeRef x = p.block("x");
  builder::NodeRef y = p.block("y");
  builder::NodeRef z = p.block("z");
  x.assign("s", 1);
  y.assign("t", 2);
  z.assign("u", 3);
  x >> y;  // z has edges nowhere
  expectBuildError(b, "not linked into its region's edge chain");
}

TEST(BuilderDiagnosticsTest, EdgeAcrossRegionBoundaries) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  builder::NodeRef outer = p.block("outer");
  outer.assign("s", 1);
  p.beginLoop("i", 1, 10);
  builder::NodeRef inner = p.block("inner");
  inner.assign("t", sym("i"));
  outer >> inner;
  p.endLoop();
  expectBuildError(b, "crosses region boundaries");
}

TEST(BuilderDiagnosticsTest, EmissionIntoALoopNodeNeedsABlock) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  builder::NodeRef loop = p.beginLoop("i", 1, 10);
  p.endLoop();
  loop.assign("s", 1);
  expectBuildError(b, "cannot emit a statement into region node");
}

TEST(BuilderDiagnosticsTest, MainProgramWithFormalsAndUndeclaredCommon) {
  // One build() surfaces every problem: both errors are reported together.
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.param("x");
  p.common("blk", {"q"});
  p.assign("s", 1);
  BuildResult r = b.build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("cannot have formal parameters"), std::string::npos) << r.error();
  EXPECT_NE(r.error().find("COMMON /blk/ lists undeclared 'q'"), std::string::npos) << r.error();
  EXPECT_GE(r.diags.errorCount(), 2u);
}

TEST(BuilderDiagnosticsTest, DuplicateDeclaration) {
  builder::ProgramBuilder b;
  auto& p = b.mainProgram("main");
  p.integer("n").real("n");
  p.assign("n", 1);
  expectBuildError(b, "duplicate declaration of 'n'");
}

TEST(BuilderDiagnosticsTest, BuildIsSingleShot) {
  builder::ProgramBuilder b;
  b.mainProgram("main").assign("s", 1);
  BuildResult first = b.build();
  ASSERT_TRUE(first.ok()) << first.error();
  BuildResult second = b.build();
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.error().find("called twice"), std::string::npos) << second.error();
}

}  // namespace
}  // namespace panorama
