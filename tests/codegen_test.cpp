// Tests for the parallel-source emitter: directive content, placement
// (outermost only), and a full round trip — the annotated source must
// re-parse, re-analyze, and execute identically.
#include <gtest/gtest.h>

#include "panorama/codegen/annotate.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"

namespace panorama {
namespace {

struct Annotated {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
  std::vector<LoopAnalysis> loops;
  std::string output;
};

Annotated annotate(std::string_view src, AnalysisOptions options = {}) {
  Annotated a;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  a.program = std::move(*p);
  auto sr = analyze(a.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  a.sema = std::move(*sr);
  a.hsg = buildHsg(a.program, a.sema, diags);
  a.analyzer = std::make_unique<SummaryAnalyzer>(a.program, a.sema, a.hsg, options);
  LoopParallelizer lp(*a.analyzer);
  a.loops = lp.analyzeProgram();
  a.output = emitParallelSource(a.program, a.loops);
  return a;
}

TEST(CodegenTest, SimpleLoopGetsDirective) {
  Annotated a = annotate(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n
      do i = 1, n
        a(i) = b(i) + 1
      enddo
      end
  )");
  EXPECT_NE(a.output.find("c$omp parallel do"), std::string::npos);
  EXPECT_NE(a.output.find("c$omp end parallel do"), std::string::npos);
}

TEST(CodegenTest, SerialLoopStaysBare) {
  Annotated a = annotate(R"(
      subroutine s(a, n)
      real a(100)
      integer n
      do i = 2, n
        a(i) = a(i - 1)
      enddo
      end
  )");
  EXPECT_EQ(a.output.find("c$omp"), std::string::npos);
}

TEST(CodegenTest, PrivatizationClauses) {
  Annotated a = annotate(R"(
      subroutine s(a, c, n, m, x)
      real a(100), c(100), x
      real t
      integer n, m
      do i = 1, n
        t = i * 2
        do j = 1, m
          a(j) = t + j
        enddo
        do j = 1, m
          c(i) = c(i) + a(j)
        enddo
      enddo
      x = a(1)
      end
  )");
  // `a` is live after the loop: lastprivate; `t` (and the inner index j)
  // are iteration-private scalars.
  EXPECT_NE(a.output.find("lastprivate(a)"), std::string::npos);
  std::size_t priv = a.output.find("private(");
  ASSERT_NE(priv, std::string::npos);
  std::string line = a.output.substr(priv, a.output.find('\n', priv) - priv);
  EXPECT_NE(line.find("t"), std::string::npos) << line;
  EXPECT_NE(line.find("j"), std::string::npos) << line;
}

TEST(CodegenTest, DeadWorkArrayIsPlainPrivate) {
  Annotated a = annotate(R"(
      subroutine s(c, n, m)
      real c(100)
      real a(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          c(i) = c(i) + a(j)
        enddo
      enddo
      end
  )");
  EXPECT_NE(a.output.find("private(a"), std::string::npos);
  EXPECT_EQ(a.output.find("lastprivate"), std::string::npos);
}

TEST(CodegenTest, ReductionClause) {
  Annotated a = annotate(R"(
      subroutine s(a, total, n)
      real a(100), total
      integer n
      do i = 1, n
        total = total + a(i)
      enddo
      end
  )");
  EXPECT_NE(a.output.find("reduction(+: total)"), std::string::npos) << a.output;
}

TEST(CodegenTest, OnlyOutermostLoopAnnotated) {
  Annotated a = annotate(R"(
      subroutine s(a, b, n, m)
      real a(100, 100), b(100, 100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j, i) = b(j, i) * 2
        enddo
      enddo
      end
  )");
  // Both loops are parallel, but the inner one sits inside the annotated
  // region: exactly one directive pair.
  std::size_t first = a.output.find("c$omp parallel do");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(a.output.find("c$omp parallel do", first + 1), std::string::npos);
}

TEST(CodegenTest, AnnotatedSourceRoundTrips) {
  for (const CorpusLoop& cl : perfectCorpus()) {
    Annotated a = annotate(cl.source);
    SCOPED_TRACE(cl.id);
    // The directive must appear for the evaluated loop when the analysis
    // parallelized it.
    // Re-parse the annotated output (directives lex as comments)...
    DiagnosticEngine diags;
    auto p2 = parseProgram(a.output, diags);
    ASSERT_TRUE(p2.has_value()) << diags.str() << "\n" << a.output;
    auto sr2 = analyze(*p2, diags);
    ASSERT_TRUE(sr2.has_value()) << diags.str();
    // ...and both versions must execute to identical memory.
    Interpreter original(a.program, a.sema);
    auto r1 = original.run({});
    ASSERT_TRUE(r1.ok) << r1.error;
    Interpreter reparsed(*p2, *sr2);
    auto r2 = reparsed.run({});
    ASSERT_TRUE(r2.ok) << r2.error;
    // Compare per-array contents through names (ids may differ).
    for (const auto& [id, store] : original.arrays()) {
      auto other = sr2->arrays.lookup(a.sema.arrays.name(id));
      ASSERT_TRUE(other.has_value()) << a.sema.arrays.name(id);
      auto it = reparsed.arrays().find(*other);
      if (it == reparsed.arrays().end()) {
        EXPECT_TRUE(store.empty());
      } else {
        EXPECT_EQ(it->second, store) << a.sema.arrays.name(id);
      }
    }
  }
}

TEST(CodegenTest, CorpusDirectivesCoverPrivatizableArrays) {
  int annotated = 0;
  for (const CorpusLoop& cl : perfectCorpus()) {
    Annotated a = annotate(cl.source);
    for (const LoopAnalysis& la : a.loops) {
      if (la.loop != findOuterLoop(a.program, cl.routine, cl.outerLoopIndex)) continue;
      std::string d = directiveFor(la);
      if (la.classification == LoopClass::Serial) continue;
      ++annotated;
      for (const std::string& name : cl.privatizable)
        EXPECT_NE(d.find(name), std::string::npos) << cl.id << ": " << d;
    }
  }
  // Every loop except MDG interf (held serial by RL in the base analysis)
  // must carry a directive.
  EXPECT_GE(annotated, 10);
}

TEST(CodegenTest, QuantifiedExtensionUnlocksMdg) {
  const CorpusLoop* mdg = nullptr;
  for (const CorpusLoop& cl : perfectCorpus())
    if (cl.id == "MDG interf/1000") mdg = &cl;
  ASSERT_NE(mdg, nullptr);
  AnalysisOptions quantified;
  quantified.quantified = true;
  Annotated a = annotate(mdg->source, quantified);
  bool found = false;
  for (const LoopAnalysis& la : a.loops) {
    if (la.loop != findOuterLoop(a.program, "interf", 0)) continue;
    std::string d = directiveFor(la);
    found = d.find("rl") != std::string::npos;
  }
  EXPECT_TRUE(found) << a.output;
}

}  // namespace
}  // namespace panorama
