// Properties of the hash-consing arenas (symbolic/arena.h,
// predicate/arena.h): handle equality must coincide with structural
// equality over randomized construction, equal values built through
// different routes must land on the same node, and the arenas' occupancy
// counters must be consistent.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "panorama/predicate/arena.h"
#include "panorama/predicate/predicate.h"
#include "panorama/symbolic/arena.h"
#include "panorama/symbolic/expr.h"

namespace panorama {
namespace {

/// Random expression built from a handful of variables by the public
/// constructors only — everything the analyzer itself can produce.
SymExpr randomExpr(std::mt19937& rng, int depth = 0) {
  std::uniform_int_distribution<int> leaf(0, 4);
  std::uniform_int_distribution<int> var(1, 4);
  std::uniform_int_distribution<int> c(-6, 6);
  if (depth >= 3 || leaf(rng) == 0) {
    return leaf(rng) < 2 ? SymExpr::constant(c(rng))
                         : SymExpr::variable(VarId{static_cast<std::uint32_t>(var(rng))});
  }
  SymExpr a = randomExpr(rng, depth + 1);
  SymExpr b = randomExpr(rng, depth + 1);
  switch (leaf(rng)) {
    case 0: return a + b;
    case 1: return a - b;
    case 2: return a * b;
    case 3: return a.mulConst(c(rng));
    default: return a + SymExpr::constant(c(rng));
  }
}

Pred randomPred(std::mt19937& rng) {
  std::uniform_int_distribution<int> shape(0, 5);
  Pred p = Pred::atom(Atom::le(randomExpr(rng), randomExpr(rng)));
  if (shape(rng) >= 2) p = p && Pred::atom(Atom::eq(randomExpr(rng), randomExpr(rng)));
  if (shape(rng) >= 4) p = p || Pred::atom(Atom::ne(randomExpr(rng), randomExpr(rng)));
  if (shape(rng) == 5) p = !p;
  return p;
}

TEST(InternPropertyTest, ExprHandleEqualityIffStructuralEquality) {
  std::mt19937 rng(20260806);
  std::vector<SymExpr> pool;
  for (int k = 0; k < 400; ++k) pool.push_back(randomExpr(rng));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i; j < pool.size(); ++j) {
      const bool structural = SymExpr::compare(pool[i], pool[j]) == 0;
      const bool handle = pool[i] == pool[j];
      ASSERT_EQ(structural, handle)
          << "i=" << i << " j=" << j << " — a distinct node pair compared structurally "
          << "equal (canonicalization leak) or an equal pair got two nodes";
      if (handle) {
        EXPECT_EQ(pool[i].id(), pool[j].id());
        EXPECT_EQ(pool[i].hashValue(), pool[j].hashValue());
      } else {
        EXPECT_NE(pool[i].id(), pool[j].id());
      }
    }
  }
}

TEST(InternPropertyTest, PredHandleEqualityIffStructuralEquality) {
  std::mt19937 rng(42);
  std::vector<Pred> pool;
  for (int k = 0; k < 150; ++k) pool.push_back(randomPred(rng));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i; j < pool.size(); ++j) {
      const bool structural = Pred::compare(pool[i], pool[j]) == 0;
      const bool handle = pool[i] == pool[j];
      ASSERT_EQ(structural, handle) << "i=" << i << " j=" << j;
      if (handle) {
        EXPECT_EQ(pool[i].id(), pool[j].id());
      }
    }
  }
}

TEST(InternPropertyTest, EqualValuesThroughDifferentRoutesShareOneNode) {
  SymExpr x = SymExpr::variable(VarId{1});
  SymExpr y = SymExpr::variable(VarId{2});
  SymExpr z = SymExpr::variable(VarId{3});

  // Associativity / commutativity of the canonical form.
  EXPECT_EQ((x + y) + z, x + (y + z));
  EXPECT_EQ(x + y, y + x);
  EXPECT_EQ(x * y, y * x);
  // Doubling vs explicit coefficient vs scalar multiply.
  EXPECT_EQ(x + x, x.mulConst(2));
  EXPECT_EQ(x + x, x * SymExpr::constant(2));
  // Cancellation reaches the canonical zero (the default-constructed node).
  EXPECT_EQ(x - x, SymExpr::constant(0));
  EXPECT_EQ(x - x, SymExpr{});
  // Substitution routes: (x+y)[y := z] vs x + z.
  EXPECT_EQ((x + y).substitute(VarId{2}, z), x + z);

  // Predicate routes: conjunction order and double negation via simplify.
  Pred p = Pred::atom(Atom::le(x, y));
  Pred q = Pred::atom(Atom::le(y, z));
  EXPECT_EQ(p && q, q && p);
  EXPECT_EQ(p && Pred::makeTrue(), p);
  EXPECT_EQ(p || Pred::makeFalse(), p);
}

TEST(InternPropertyTest, RandomizedSubstituteMatchesHandleIdentity) {
  // substitute() is memoized at node level; the memo must be invisible:
  // repeating a substitution yields the identical handle, and equal inputs
  // give equal outputs regardless of which call populated the memo.
  std::mt19937 rng(7);
  for (int k = 0; k < 200; ++k) {
    SymExpr e = randomExpr(rng);
    SymExpr r = randomExpr(rng);
    VarId v{static_cast<std::uint32_t>(1 + (k % 4))};
    SymExpr first = e.substitute(v, r);
    SymExpr second = e.substitute(v, r);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.id(), second.id());
    if (!r.containsVar(v)) {
      EXPECT_FALSE(first.containsVar(v));
    }
  }
}

TEST(InternPropertyTest, ArenaStatsAreConsistent) {
  // Force some occupancy, then check the counters' internal consistency
  // (exact values depend on every test that ran before in this process).
  std::mt19937 rng(99);
  for (int k = 0; k < 64; ++k) {
    SymExpr e = randomExpr(rng);
    (void)(e + SymExpr::constant(k));
    (void)randomPred(rng);
  }
  ExprArena::Stats es = ExprArena::global().stats();
  EXPECT_GT(es.distinct, 0u);
  EXPECT_GT(es.bytes, 0u);
  EXPECT_LE(es.minShard, es.maxShard);
  EXPECT_LE(es.maxShard, es.distinct);

  PredArena::Stats ps = PredArena::global().stats();
  EXPECT_GT(ps.distinct, 0u);
  EXPECT_GT(ps.bytes, 0u);
  EXPECT_LE(ps.minShard, ps.maxShard);
  EXPECT_LE(ps.maxShard, ps.distinct);

  // Interning an already-present value must not grow the arena.
  SymExpr x = SymExpr::variable(VarId{1});
  (void)(x + x);
  std::size_t before = ExprArena::global().stats().distinct;
  for (int k = 0; k < 32; ++k) (void)(x + x);
  EXPECT_EQ(ExprArena::global().stats().distinct, before);
}

}  // namespace
}  // namespace panorama
