// The C-like frontend is a real second frontend, not a demo: its kernels
// run through the full privatization pipeline (sema → HSG → summaries →
// classification) with pinned verdicts — a privatizable work array, a
// serial recurrence, guarded element writes, and an interprocedural kernel
// with a COMMON array written through a call. Syntax and builder-layer
// errors surface as structured diagnostics, and an incremental session
// accepts C-like programs like any other frontend's.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "panorama/analysis/driver.h"
#include "panorama/frontend/clike.h"
#include "panorama/session/session.h"
#include "panorama/support/memo_cache.h"
#include "panorama/support/thread_pool.h"

namespace panorama {
namespace {

/// Restores the global cache to its default configuration when a test ends,
/// so test order never matters.
struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

/// Parses + analyzes one C-like source on one thread; asserts success.
ProgramAnalysis analyzeCLike(std::string_view source) {
  DiagnosticEngine diags;
  std::optional<Program> program = parseCLike(source, diags);
  EXPECT_TRUE(program.has_value()) << diags.str();
  ProgramAnalysis pa;
  if (!program) return pa;
  AnalysisOptions options;
  ThreadPool pool(1);
  pa = analyzeProgramUnit(std::move(*program), options, pool);
  EXPECT_TRUE(pa.ok) << pa.error;
  return pa;
}

// A work array written before read in every outer iteration: the classic
// privatization kernel (fig1a's shape, in the second frontend's syntax).
const char* kWorkArray = R"(
// outer loop parallel after privatizing t
main smoke() {
  const n = 64;
  int i, j;
  real a[64], b[64, 64], t[64];
  for (i = 1 to n) {
    for (j = 1 to n) {
      t[j] = a[j] * 2.0;
    }
    for (j = 1 to n) {
      b[i, j] = t[j] + 1.0;
    }
  }
}
)";

TEST(CLikeTest, WorkArrayKernelPrivatizes) {
  CacheGuard guard;
  ProgramAnalysis pa = analyzeCLike(kWorkArray);
  ASSERT_EQ(pa.loops.size(), 3u);

  const LoopAnalysis& outer = pa.loops[0];
  EXPECT_EQ(outer.classification, LoopClass::ParallelAfterPrivatization);
  bool tPrivatized = false;
  for (const ArrayPrivatization& ap : outer.arrays)
    if (ap.name == "t") tPrivatized = ap.privatizable;
  EXPECT_TRUE(tPrivatized) << formatLoopAnalysis(outer);

  EXPECT_EQ(pa.loops[1].classification, LoopClass::Parallel);
  EXPECT_EQ(pa.loops[2].classification, LoopClass::Parallel);
}

TEST(CLikeTest, FlowRecurrenceStaysSerial) {
  CacheGuard guard;
  ProgramAnalysis pa = analyzeCLike(R"(
main recur() {
  const n = 100;
  int i;
  real a[100];
  for (i = 2 to n) {
    a[i] = a[i - 1] + 1.0;
  }
}
)");
  ASSERT_EQ(pa.loops.size(), 1u);
  EXPECT_EQ(pa.loops[0].classification, LoopClass::Serial);
}

TEST(CLikeTest, GuardedElementWritesWithIntrinsicStayParallel) {
  CacheGuard guard;
  ProgramAnalysis pa = analyzeCLike(R"(
main guards() {
  const n = 64;
  int i;
  real a[64], b[64];
  for (i = 1 to n) {
    if (b[i] > 0.0) {
      a[i] = b[i];
    } else {
      a[i] = max(b[i], 0.0);
    }
  }
}
)");
  ASSERT_EQ(pa.loops.size(), 1u);
  EXPECT_EQ(pa.loops[0].classification, LoopClass::Parallel);
}

TEST(CLikeTest, CommonArrayWrittenThroughCallStaysParallel) {
  CacheGuard guard;
  ProgramAnalysis pa = analyzeCLike(R"(
main ip() {
  const n = 64;
  int i;
  real a[64];
  shared(blk) a;
  for (i = 1 to n) {
    setone(i);
  }
}
proc setone(i) {
  int i;
  real a[64];
  shared(blk) a;
  a[i] = 1.0;
}
)");
  ASSERT_EQ(pa.loops.size(), 1u);
  EXPECT_EQ(pa.loops[0].classification, LoopClass::Parallel)
      << formatLoopAnalysis(pa.loops[0]) << formatProvenance(pa.loops[0]);
}

TEST(CLikeTest, StepClauseMapsToDoStep) {
  CacheGuard guard;
  ProgramAnalysis pa = analyzeCLike(R"(
main strided() {
  const n = 100;
  int i;
  real a[100];
  for (i = 1 to n step 2) {
    a[i] = 0.0;
  }
}
)");
  ASSERT_EQ(pa.loops.size(), 1u);
  EXPECT_EQ(pa.loops[0].classification, LoopClass::Parallel);
}

// ------------------------------------------------------------ diagnostics

TEST(CLikeTest, MissingSemicolonIsASyntaxError) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parseCLike(R"(
main bad() {
  int i
}
)",
                          diags)
                   .has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(CLikeTest, ForWithoutToIsASyntaxError) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parseCLike(R"(
main bad() {
  int i;
  real a[10];
  for (i = 1; 10) { a[i] = 0.0; }
}
)",
                          diags)
                   .has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(CLikeTest, BuilderValidationSurfacesThroughTheFrontend) {
  // `j` is never declared or defined; the builder's strict subscript check
  // fires and its diagnostic reaches the C-like caller.
  DiagnosticEngine diags;
  EXPECT_FALSE(parseCLike(R"(
main bad() {
  int i;
  real a[10];
  for (i = 1 to 10) { a[j] = 0.0; }
}
)",
                          diags)
                   .has_value());
  EXPECT_NE(diags.str().find("undeclared symbol 'j'"), std::string::npos) << diags.str();
}

// ---------------------------------------------------------------- session

TEST(CLikeTest, SessionAcceptsCLikePrograms) {
  CacheGuard guard;
  DiagnosticEngine diags;
  std::optional<Program> first = parseCLike(kWorkArray, diags);
  ASSERT_TRUE(first.has_value()) << diags.str();
  std::optional<Program> second = parseCLike(kWorkArray, diags);
  ASSERT_TRUE(second.has_value()) << diags.str();

  AnalysisSession session;
  SessionResult cold = session.submit(std::move(*first));
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_EQ(cold.loops.size(), 3u);
  EXPECT_EQ(cold.loops[0].classification, LoopClass::ParallelAfterPrivatization);

  SessionResult warm = session.submit(std::move(*second));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.stats.dirty, 0u);
  EXPECT_EQ(warm.stats.loopsRecomputed, 0u);
}

}  // namespace
}  // namespace panorama
