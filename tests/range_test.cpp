// Unit and property tests for range triples and their guarded set
// operations (§3.1 case analysis, §5.1 step rules).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "panorama/region/range.h"

namespace panorama {
namespace {

std::set<std::int64_t> toSet(const SymRange& r, const Binding& b) {
  auto v = r.enumerate(b);
  EXPECT_TRUE(v.has_value());
  return v ? std::set<std::int64_t>(v->begin(), v->end()) : std::set<std::int64_t>{};
}

/// Evaluates a guarded range list to a concrete element set. Pieces whose
/// guard cannot be evaluated count into `undecided`.
std::set<std::int64_t> evalPieces(const GuardedRangeList& pieces, const Binding& b,
                                  bool* undecided = nullptr) {
  std::set<std::int64_t> out;
  for (const GuardedRange& p : pieces) {
    auto g = p.guard.evaluate(b);
    if (!g) {
      if (undecided) *undecided = true;
      continue;
    }
    if (!*g) continue;
    auto v = p.range.enumerate(b);
    if (!v) {
      if (undecided) *undecided = true;
      continue;
    }
    out.insert(v->begin(), v->end());
  }
  return out;
}

class RangeTest : public ::testing::Test {
 protected:
  SymbolTable tab;
  VarId a = tab.intern("a");
  VarId b = tab.intern("b");
  SymExpr A = SymExpr::variable(a);
  SymExpr B = SymExpr::variable(b);
  CmpCtx ctx;

  static SymRange mk(std::int64_t lo, std::int64_t up, std::int64_t step = 1) {
    return SymRange{SymExpr::constant(lo), SymExpr::constant(up), SymExpr::constant(step)};
  }
};

TEST_F(RangeTest, Basics) {
  SymRange r = mk(1, 10);
  EXPECT_FALSE(r.isUnknown());
  EXPECT_FALSE(r.isPoint());
  EXPECT_TRUE(SymRange::point(A).isPoint());
  EXPECT_TRUE(SymRange::unknown().isUnknown());
  EXPECT_EQ(toSet(r, {}).size(), 10u);
  EXPECT_EQ(toSet(mk(1, 10, 3), {}), (std::set<std::int64_t>{1, 4, 7, 10}));
  EXPECT_TRUE(toSet(mk(5, 4), {}).empty());
}

TEST_F(RangeTest, ValidityCondition) {
  SymRange r{A, B, SymExpr::constant(1)};
  EXPECT_EQ(r.validity().evaluate({{a, 1}, {b, 5}}), true);
  EXPECT_EQ(r.validity().evaluate({{a, 6}, {b, 5}}), false);
  EXPECT_TRUE(SymRange::point(A).validity().isTrue());
}

TEST_F(RangeTest, IntersectConstant) {
  auto res = rangeIntersect(mk(1, 10), mk(5, 20), ctx);
  ASSERT_EQ(res.pieces.size(), 1u);
  EXPECT_FALSE(res.unknown);
  EXPECT_TRUE(res.pieces[0].guard.isTrue());
  EXPECT_EQ(toSet(res.pieces[0].range, {}), toSet(mk(5, 10), {}));
}

TEST_F(RangeTest, IntersectDisjointIsEmpty) {
  auto res = rangeIntersect(mk(1, 4), mk(6, 9), ctx);
  EXPECT_TRUE(res.pieces.empty());
  EXPECT_FALSE(res.unknown);
}

TEST_F(RangeTest, IntersectSymbolicProducesPaperCases) {
  // (a : 100) ∩ (b : 100) = [a > b, (a : 100)] ∪ [a <= b, (b : 100)] — the
  // §3.1 worked example.
  SymRange r1{A, SymExpr::constant(100), SymExpr::constant(1)};
  SymRange r2{B, SymExpr::constant(100), SymExpr::constant(1)};
  auto res = rangeIntersect(r1, r2, ctx);
  EXPECT_FALSE(res.unknown);
  for (std::int64_t va : {3, 50}) {
    for (std::int64_t vb : {10, 80}) {
      Binding bnd{{a, va}, {b, vb}};
      std::set<std::int64_t> want;
      for (std::int64_t x = std::max(va, vb); x <= 100; ++x) want.insert(x);
      EXPECT_EQ(evalPieces(res.pieces, bnd), want);
    }
  }
}

TEST_F(RangeTest, IntersectUsesContext) {
  // With a <= b in the context, (a : 100) ∩ (b : 100) collapses to one piece.
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(A - B));
  CmpCtx know{cs};
  SymRange r1{A, SymExpr::constant(100), SymExpr::constant(1)};
  SymRange r2{B, SymExpr::constant(100), SymExpr::constant(1)};
  auto res = rangeIntersect(r1, r2, know);
  ASSERT_EQ(res.pieces.size(), 1u);
  EXPECT_EQ(res.pieces[0].range.lo, B);
}

TEST_F(RangeTest, SubtractPaperExample) {
  // (1:100) − (a:30) = [1 < a, (1 : a-1)] ∪ [True, (31 : 100)] (§3.1).
  SymRange r1 = mk(1, 100);
  SymRange r2{A, SymExpr::constant(30), SymExpr::constant(1)};
  auto res = rangeSubtract(r1, r2, ctx);
  EXPECT_FALSE(res.unknown);
  for (std::int64_t va : {-5, 1, 7, 30, 31, 120}) {
    Binding bnd{{a, va}};
    std::set<std::int64_t> want;
    for (std::int64_t x = 1; x <= 100; ++x)
      if (!(x >= va && x <= 30)) want.insert(x);
    EXPECT_EQ(evalPieces(res.pieces, bnd), want) << "a = " << va;
  }
}

TEST_F(RangeTest, SubtractInteriorSplits) {
  auto res = rangeSubtract(mk(1, 10), mk(4, 6), ctx);
  EXPECT_FALSE(res.unknown);
  EXPECT_EQ(evalPieces(res.pieces, {}), (std::set<std::int64_t>{1, 2, 3, 7, 8, 9, 10}));
}

TEST_F(RangeTest, SubtractEverything) {
  auto res = rangeSubtract(mk(3, 7), mk(1, 10), ctx);
  EXPECT_TRUE(evalPieces(res.pieces, {}).empty());
}

TEST_F(RangeTest, SubtractPointFromRange) {
  SymRange jmax = SymRange::point(A);
  auto res = rangeSubtract(mk(2, 8), jmax, ctx);
  EXPECT_FALSE(res.unknown);
  for (std::int64_t va : {0, 2, 5, 8, 11}) {
    std::set<std::int64_t> want;
    for (std::int64_t x = 2; x <= 8; ++x)
      if (x != va) want.insert(x);
    EXPECT_EQ(evalPieces(res.pieces, {{a, va}}), want) << "a = " << va;
  }
}

TEST_F(RangeTest, SteppedAlignedOps) {
  // case 2 of §5.1: equal constant steps, aligned origins.
  auto inter = rangeIntersect(mk(1, 21, 2), mk(5, 31, 2), ctx);
  EXPECT_EQ(evalPieces(inter.pieces, {}), (std::set<std::int64_t>{5, 7, 9, 11, 13, 15, 17, 19, 21}));
  auto diff = rangeSubtract(mk(1, 21, 2), mk(5, 11, 2), ctx);
  EXPECT_EQ(evalPieces(diff.pieces, {}), (std::set<std::int64_t>{1, 3, 13, 15, 17, 19, 21}));
}

TEST_F(RangeTest, SteppedMisalignedAreDisjoint) {
  EXPECT_EQ(rangesDisjoint(mk(1, 21, 2), mk(2, 20, 2), ctx), Truth::True);
  auto inter = rangeIntersect(mk(1, 21, 2), mk(2, 20, 2), ctx);
  EXPECT_TRUE(inter.pieces.empty());
  auto diff = rangeSubtract(mk(1, 21, 2), mk(2, 20, 2), ctx);
  EXPECT_EQ(evalPieces(diff.pieces, {}), toSet(mk(1, 21, 2), {}));
}

TEST_F(RangeTest, SteppedUndecidableIsUnknown) {
  // case 5: incompatible steps — must degrade, never lie.
  auto inter = rangeIntersect(mk(1, 30, 2), mk(1, 30, 3), ctx);
  EXPECT_TRUE(inter.unknown);
  auto diff = rangeSubtract(mk(1, 30, 2), mk(1, 30, 3), ctx);
  EXPECT_TRUE(diff.unknown);
  // The difference must still cover r1 (refuse to kill).
  bool undecided = false;
  auto kept = evalPieces(diff.pieces, {}, &undecided);
  EXPECT_TRUE(undecided);  // kept pieces hide behind Δ
}

TEST_F(RangeTest, CoverCaseFullContainment) {
  // case 4: step 4 range inside a step 2 range with aligned origins.
  auto inter = rangeIntersect(mk(3, 19, 4), mk(1, 21, 2), ctx);
  ASSERT_EQ(inter.pieces.size(), 1u);
  EXPECT_FALSE(inter.unknown);
  EXPECT_EQ(evalPieces(inter.pieces, {}), toSet(mk(3, 19, 4), {}));
  auto diff = rangeSubtract(mk(3, 19, 4), mk(1, 21, 2), ctx);
  EXPECT_TRUE(evalPieces(diff.pieces, {}).empty());
}

TEST_F(RangeTest, UnionPaperExample) {
  // (1 : a) ∪ (a+1 : 100) = (1 : 100) given the validity context 1 <= a,
  // a+1 <= 100.
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(SymExpr::constant(1) - A));
  ASSERT_TRUE(cs.addExprLE0(A + 1 - SymExpr::constant(100)));
  CmpCtx know{cs};
  SymRange r1{SymExpr::constant(1), A, SymExpr::constant(1)};
  SymRange r2{A + 1, SymExpr::constant(100), SymExpr::constant(1)};
  auto merged = rangeUnionPair(r1, r2, know);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->lo, SymExpr::constant(1));
  EXPECT_EQ(merged->up, SymExpr::constant(100));
}

TEST_F(RangeTest, UnionRefusesGaps) {
  EXPECT_FALSE(rangeUnionPair(mk(1, 4), mk(6, 9), ctx).has_value());
  EXPECT_TRUE(rangeUnionPair(mk(1, 4), mk(5, 9), ctx).has_value());  // adjacency
}

TEST_F(RangeTest, Containment) {
  EXPECT_EQ(rangeContains(mk(1, 10), mk(3, 7), ctx), Truth::True);
  EXPECT_EQ(rangeContains(mk(3, 7), mk(1, 10), ctx), Truth::Unknown);
  EXPECT_EQ(rangeContains(mk(1, 10), SymRange::point(SymExpr::constant(5)), ctx), Truth::True);
  EXPECT_EQ(rangeContains(mk(1, 21, 2), mk(5, 13, 4), ctx), Truth::True);   // grid refines
  EXPECT_EQ(rangeContains(mk(1, 21, 4), mk(5, 13, 2), ctx), Truth::Unknown);  // too fine
}

// ---------------------------------------------------------------------------
// Property tests: every operation validated against brute-force sets over
// random concrete instantiations of symbolic bounds.
// ---------------------------------------------------------------------------

class RangePropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  SymbolTable tab;
  VarId a = tab.intern("a");
  VarId b = tab.intern("b");

  SymRange randomRange(std::mt19937& rng) {
    std::uniform_int_distribution<int> c(-10, 20);
    std::uniform_int_distribution<int> stepD(0, 5);
    std::uniform_int_distribution<int> kind(0, 5);
    auto bound = [&]() -> SymExpr {
      switch (kind(rng)) {
        case 0: return SymExpr::variable(a) + c(rng);
        case 1: return SymExpr::variable(b) + c(rng);
        default: return SymExpr::constant(c(rng));
      }
    };
    SymExpr lo = bound();
    if (kind(rng) == 0) return SymRange::point(lo);
    // Steps 1, 2 and 4 reach §5.1's cases 1, 2 and 4 (grid cover).
    static const std::int64_t steps[] = {1, 1, 1, 2, 2, 4};
    return SymRange{lo, bound(), SymExpr::constant(steps[stepD(rng)])};
  }
};

TEST_P(RangePropertyTest, OpsMatchBruteForce) {
  std::mt19937 rng(GetParam() * 7001u + 3u);
  std::uniform_int_distribution<int> val(-6, 12);
  int checkedIntersect = 0;
  int checkedSubtract = 0;
  for (int iter = 0; iter < 300; ++iter) {
    SymRange r1 = randomRange(rng);
    SymRange r2 = randomRange(rng);
    CmpCtx ctx;
    auto inter = rangeIntersect(r1, r2, ctx);
    auto diff = rangeSubtract(r1, r2, ctx);
    auto merged = rangeUnionPair(r1, r2, ctx);
    for (int pt = 0; pt < 4; ++pt) {
      Binding bnd{{a, val(rng)}, {b, val(rng)}};
      auto e1 = r1.enumerate(bnd);
      auto e2 = r2.enumerate(bnd);
      if (!e1 || !e2) continue;
      std::set<std::int64_t> s1(e1->begin(), e1->end());
      std::set<std::int64_t> s2(e2->begin(), e2->end());
      std::set<std::int64_t> wantI;
      std::set<std::int64_t> wantD;
      for (auto x : s1) {
        if (s2.count(x))
          wantI.insert(x);
        else
          wantD.insert(x);
      }
      if (!inter.unknown) {
        bool und = false;
        auto got = evalPieces(inter.pieces, bnd, &und);
        if (!und) {
          EXPECT_EQ(got, wantI) << "∩ of " << r1.str(tab) << " and " << r2.str(tab);
          ++checkedIntersect;
        }
      }
      {
        bool und = false;
        auto got = evalPieces(diff.pieces, bnd, &und);
        if (!und && !diff.unknown) {
          EXPECT_EQ(got, wantD) << "− of " << r1.str(tab) << " and " << r2.str(tab);
          ++checkedSubtract;
        } else {
          // Unknown results must still over-approximate: everything in the
          // true difference is either in a decidable piece or hidden by Δ.
          for (auto x : wantD) {
            EXPECT_TRUE(got.count(x) || und) << "lost element " << x;
          }
        }
      }
      if (merged) {
        auto gotU = merged->enumerate(bnd);
        if (gotU) {
          std::set<std::int64_t> want = s1;
          want.insert(s2.begin(), s2.end());
          EXPECT_EQ(std::set<std::int64_t>(gotU->begin(), gotU->end()), want)
              << "∪ of " << r1.str(tab) << " and " << r2.str(tab);
        }
      }
    }
  }
  // The precision guard: most random cases must be decided exactly (the
  // mixed-step pairs legitimately fall back to unknown).
  EXPECT_GT(checkedIntersect, 180);
  EXPECT_GT(checkedSubtract, 180);
}

TEST_P(RangePropertyTest, ContainmentAndDisjointnessAreSound) {
  std::mt19937 rng(GetParam() * 104003u + 17u);
  std::uniform_int_distribution<int> val(-6, 12);
  for (int iter = 0; iter < 300; ++iter) {
    SymRange r1 = randomRange(rng);
    SymRange r2 = randomRange(rng);
    CmpCtx ctx;
    Truth contains = rangeContains(r1, r2, ctx);
    Truth disjoint = rangesDisjoint(r1, r2, ctx);
    for (int pt = 0; pt < 4; ++pt) {
      Binding bnd{{a, val(rng)}, {b, val(rng)}};
      auto e1 = r1.enumerate(bnd);
      auto e2 = r2.enumerate(bnd);
      if (!e1 || !e2) continue;
      std::set<std::int64_t> s1(e1->begin(), e1->end());
      if (contains == Truth::True) {
        for (auto x : *e2) EXPECT_TRUE(s1.count(x)) << r1.str(tab) << " ⊉ " << r2.str(tab);
      }
      if (disjoint == Truth::True) {
        for (auto x : *e2) EXPECT_FALSE(s1.count(x)) << r1.str(tab) << " ∩ " << r2.str(tab);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangePropertyTest, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace panorama
