// The telemetry plane's building blocks (obs/telemetry.h, obs/metrics.h):
//   * EventLog append/tail cursor protocol — ordering, incremental reads,
//     explicit dropped counts when the ring laps a slow reader;
//   * every rendered record is valid JSON (the JSONL sink writes them
//     verbatim);
//   * concurrent appenders against a live tailer (the TSan target);
//   * histogramQuantile interpolation and its clamping contract;
//   * the MetricsRegistry JSON schema, golden-tested with the p50/p95/p99
//     fields the daemon's metrics op serves.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "panorama/obs/metrics.h"
#include "panorama/obs/telemetry.h"
#include "panorama/support/json.h"

namespace panorama::obs {
namespace {

double fieldNumber(const support::JsonValue& v, std::string_view key) {
  const support::JsonValue* f = v.find(key);
  EXPECT_TRUE(f && f->isNumber()) << "missing number field " << key;
  return f && f->isNumber() ? f->asNumber() : -1;
}

support::JsonValue parseEvent(const std::string& text) {
  std::string error;
  std::optional<support::JsonValue> v = support::JsonValue::parse(text, &error);
  EXPECT_TRUE(v.has_value()) << text << ": " << error;
  return v ? *v : support::JsonValue::makeNull();
}

TEST(EventFieldsTest, RendersTypedSuffixes) {
  EXPECT_EQ(EventFields().num("a", std::uint64_t{7}).take(), ",\"a\":7");
  EXPECT_EQ(EventFields().num("a", std::int64_t{-7}).take(), ",\"a\":-7");
  EXPECT_EQ(EventFields().real("r", 1.5).take(), ",\"r\":1.500");
  EXPECT_EQ(EventFields().str("s", "x\"y\\z").take(), ",\"s\":\"x\\\"y\\\\z\"");
  EXPECT_EQ(EventFields().num("a", std::uint64_t{1}).str("b", "c").take(),
            ",\"a\":1,\"b\":\"c\"");
}

TEST(EventLogTest, AppendAndTailInOrder) {
  EventLog log(16);
  EXPECT_EQ(log.appended(), 0u);
  EventLog::Tail empty = log.tail(0, 10);
  EXPECT_TRUE(empty.events.empty());
  EXPECT_EQ(empty.nextCursor, 0u);
  EXPECT_EQ(empty.dropped, 0u);

  EXPECT_EQ(log.append(EventKind::ConnOpen, EventFields().num("client", std::uint64_t{1}).take()),
            0u);
  EXPECT_EQ(log.append(EventKind::SubmitBegin), 1u);
  EXPECT_EQ(log.append(EventKind::ConnClose), 2u);
  EXPECT_EQ(log.appended(), 3u);

  EventLog::Tail t = log.tail(0, 10);
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_EQ(t.nextCursor, 3u);
  EXPECT_EQ(t.dropped, 0u);
  for (std::size_t k = 0; k < t.events.size(); ++k) {
    support::JsonValue ev = parseEvent(t.events[k]);
    EXPECT_EQ(fieldNumber(ev, "seq"), static_cast<double>(k));
    EXPECT_GE(fieldNumber(ev, "ts_ms"), 0.0);
    const support::JsonValue* kind = ev.find("kind");
    ASSERT_TRUE(kind && kind->isString());
  }
  support::JsonValue first = parseEvent(t.events[0]);
  EXPECT_EQ(first.find("kind")->asString(), "conn_open");
  EXPECT_EQ(fieldNumber(first, "client"), 1.0);
}

TEST(EventLogTest, CursorResumesIncrementalReads) {
  EventLog log(16);
  for (int k = 0; k < 5; ++k) log.append(EventKind::Error);

  EventLog::Tail a = log.tail(0, 2);
  ASSERT_EQ(a.events.size(), 2u);
  EXPECT_EQ(a.nextCursor, 2u);
  EventLog::Tail b = log.tail(a.nextCursor, 2);
  ASSERT_EQ(b.events.size(), 2u);
  EXPECT_EQ(b.nextCursor, 4u);
  EventLog::Tail c = log.tail(b.nextCursor, 10);
  ASSERT_EQ(c.events.size(), 1u);
  EXPECT_EQ(c.nextCursor, 5u);
  EXPECT_EQ(parseEvent(c.events[0]).find("seq")->asNumber(), 4.0);
  // Fully drained: the cursor parks at the head.
  EXPECT_TRUE(log.tail(c.nextCursor, 10).events.empty());
}

TEST(EventLogTest, LappedReaderSeesExplicitDrops) {
  EventLog log(4);  // capacity rounds to exactly 4
  EXPECT_EQ(log.capacity(), 4u);
  for (int k = 0; k < 10; ++k) log.append(EventKind::Snapshot);

  EventLog::Tail t = log.tail(0, 100);
  EXPECT_EQ(t.dropped, 6u);
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_EQ(parseEvent(t.events.front()).find("seq")->asNumber(), 6.0);
  EXPECT_EQ(parseEvent(t.events.back()).find("seq")->asNumber(), 9.0);
  EXPECT_EQ(t.nextCursor, 10u);
}

TEST(EventLogTest, MaxEventsBoundsOneTail) {
  EventLog log(64);
  for (int k = 0; k < 20; ++k) log.append(EventKind::Error);
  EventLog::Tail t = log.tail(0, 7);
  EXPECT_EQ(t.events.size(), 7u);
  EXPECT_EQ(t.nextCursor, 7u);
  EXPECT_EQ(t.dropped, 0u);
}

TEST(EventLogTest, ConcurrentAppendersNeverTearATail) {
  EventLog log(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w)
    writers.emplace_back([&log, w] {
      for (int k = 0; k < kPerThread; ++k)
        log.append(EventKind::SubmitEnd,
                   EventFields().num("writer", static_cast<std::uint64_t>(w)).take());
    });

  // A live tailer racing the appends: every record it returns must be valid
  // JSON with strictly increasing seq, and dropped+seen must never exceed
  // what was appended.
  std::uint64_t cursor = 0;
  std::uint64_t seen = 0;
  std::uint64_t dropped = 0;
  while (seen + dropped < static_cast<std::uint64_t>(kThreads) * kPerThread) {
    EventLog::Tail t = log.tail(cursor, 64);
    double prevSeq = -1;
    for (const std::string& e : t.events) {
      const double seq = fieldNumber(parseEvent(e), "seq");
      EXPECT_GT(seq, prevSeq);
      prevSeq = seq;
    }
    seen += t.events.size();
    dropped += t.dropped;
    cursor = t.nextCursor;
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(log.appended(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(seen + dropped, log.appended());
}

TEST(HistogramQuantileTest, EmptyAndDegenerate) {
  Histogram h;
  EXPECT_EQ(histogramQuantile(h.snapshot(), 0.5), 0.0);
  h.observe(100);
  // One sample: every quantile is that sample (the [min,max] clamp).
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(histogramQuantile(s, 0.0), 100.0);
  EXPECT_EQ(histogramQuantile(s, 0.5), 100.0);
  EXPECT_EQ(histogramQuantile(s, 0.99), 100.0);
  EXPECT_EQ(histogramQuantile(s, 1.0), 100.0);
}

TEST(HistogramQuantileTest, InterpolatesWithinBucketBounds) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  Histogram::Snapshot s = h.snapshot();
  const double p50 = histogramQuantile(s, 0.50);
  const double p95 = histogramQuantile(s, 0.95);
  const double p99 = histogramQuantile(s, 0.99);
  // The error bound is one log2 bucket: the true p50 (500) lives in
  // [256, 511], the true p95 (950) and p99 (990) in [512, 1000].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 511.0);
  EXPECT_GE(p95, 512.0);
  EXPECT_LE(p95, 1000.0);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p95);
}

TEST(HistogramQuantileTest, ClampsToObservedRange) {
  Histogram h;
  h.observe(5);
  h.observe(6);
  h.observe(7);
  // All three samples share bucket 3 ([4,7]); interpolation stays inside
  // the observed [5,7], not the bucket's [4,7].
  Histogram::Snapshot s = h.snapshot();
  EXPECT_GE(histogramQuantile(s, 0.01), 5.0);
  EXPECT_LE(histogramQuantile(s, 0.99), 7.0);
}

TEST(MetricsRegistryTest, JsonSchemaGoldenWithQuantiles) {
  MetricsRegistry registry;
  registry.counter("c").add(2);
  Histogram& h = registry.histogram("h");
  h.observe(1);
  h.observe(1);
  h.observe(1);
  EXPECT_EQ(registry.toJson(),
            "{\n"
            "  \"counters\": {\n"
            "    \"c\": 2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h\": {\"count\": 3, \"sum\": 3, \"min\": 1, \"max\": 1, \"mean\": 1.00, "
            "\"p50\": 1.00, \"p95\": 1.00, \"p99\": 1.00, \"buckets\": [0, 3]}\n"
            "  }\n"
            "}\n");
}

TEST(MetricsRegistryTest, JsonQuantilesParseAndOrder) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("daemon.op.submit.wall_us");
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v * 10);
  std::string error;
  std::optional<support::JsonValue> doc = support::JsonValue::parse(registry.toJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const support::JsonValue* histograms = doc->find("histograms");
  ASSERT_TRUE(histograms && histograms->isObject());
  const support::JsonValue* entry = histograms->find("daemon.op.submit.wall_us");
  ASSERT_TRUE(entry && entry->isObject());
  const double p50 = fieldNumber(*entry, "p50");
  const double p95 = fieldNumber(*entry, "p95");
  const double p99 = fieldNumber(*entry, "p99");
  const double mx = fieldNumber(*entry, "max");
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, mx);
  EXPECT_EQ(mx, 1000.0);
  EXPECT_GE(fieldNumber(*entry, "min"), 10.0);
}

}  // namespace
}  // namespace panorama::obs
