// The on-disk session store (store/, DESIGN.md §4.8):
//   * save() then restore() into a fresh process-state session reproduces
//     the in-process warm re-analysis byte-for-byte, at 1/4/8 threads;
//   * a restored session serves a byte-identical resubmit through the
//     whole-file fast path (the snapshot carries the source hash);
//   * truncated / corrupted / version-mismatched snapshots are rejected
//     with a structured diagnostic and leave the session untouched;
//   * save() under concurrent submits always snapshots one consistent
//     epoch — every file written while another thread edits restores.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "panorama/session/session.h"
#include "panorama/store/format.h"
#include "panorama/support/memo_cache.h"

namespace panorama {
namespace {

struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

// The session_test call chain: main -> top -> mid -> leaf, plus a sibling.
// `leaf` is textually last so the edit cannot shift other procedures' lines.
const char* kBase = R"(
      program main
      real a(100)
      real b(100)
      do i = 1, 100
        a(i) = 0.0
      enddo
      call sib(b)
      call top(a)
      end
      subroutine sib(s)
      real s(100)
      do i = 1, 100
        s(i) = 1.0
      enddo
      end
      subroutine top(t)
      real t(100)
      call mid(t)
      end
      subroutine mid(m)
      real m(100)
      call leaf(m)
      end
      subroutine leaf(x)
      real x(100)
      do i = 1, 100
        x(i) = 2.0
      enddo
      end
)";

const char* kLeafEdited = R"(
      program main
      real a(100)
      real b(100)
      do i = 1, 100
        a(i) = 0.0
      enddo
      call sib(b)
      call top(a)
      end
      subroutine sib(s)
      real s(100)
      do i = 1, 100
        s(i) = 1.0
      enddo
      end
      subroutine top(t)
      real t(100)
      call mid(t)
      end
      subroutine mid(m)
      real m(100)
      call leaf(m)
      end
      subroutine leaf(x)
      real x(100)
      do i = 1, 100
        x(i) = 3.0
      enddo
      end
)";

std::string render(const SessionResult& r) {
  std::ostringstream os;
  for (const SessionLoopResult& loop : r.loops) {
    os << loop.procName << " | line " << loop.line << " | " << toString(loop.classification)
       << '\n'
       << loop.report << loop.provenance << '\n';
  }
  return os.str();
}

std::string tempPath(const std::string& name) { return testing::TempDir() + name; }

/// RAII snapshot file cleanup.
struct FileGuard {
  std::string path;
  ~FileGuard() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(StoreTest, RestoredWarmRunByteIdenticalAcrossThreadCounts) {
  CacheGuard guard;
  for (std::size_t threads : {1u, 4u, 8u}) {
    AnalysisOptions options;
    options.numThreads = threads;
    FileGuard snap{tempPath("store_roundtrip_" + std::to_string(threads) + ".pano")};

    // In-process reference: cold submit, snapshot, warm submit.
    AnalysisSession reference(options);
    ASSERT_TRUE(reference.submit(kBase).ok) << threads << " threads";
    store::StoreResult saved = reference.save(snap.path);
    ASSERT_TRUE(saved.ok) << saved.error;
    SessionResult inProcess = reference.submit(kLeafEdited);
    ASSERT_TRUE(inProcess.ok) << threads << " threads";

    // Restored run: fresh session, same snapshot, same edit.
    AnalysisSession restored(options);
    store::StoreResult r = restored.restore(snap.path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(restored.epoch(), 1u);
    SessionResult warm = restored.submit(kLeafEdited);
    ASSERT_TRUE(warm.ok) << threads << " threads";

    EXPECT_EQ(render(inProcess), render(warm)) << threads << " threads";
    EXPECT_EQ(inProcess.stats.summariesReused, warm.stats.summariesReused);
    EXPECT_EQ(inProcess.stats.loopsReused, warm.stats.loopsReused);
    EXPECT_EQ(inProcess.stats.dirty, warm.stats.dirty);
    EXPECT_GT(warm.stats.summariesReused, 0u) << "restore lost the snapshots";
  }
}

TEST(StoreTest, RestoredSessionServesByteIdenticalResubmitViaFastPath) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_fastpath.pano")};
  AnalysisOptions options;
  options.numThreads = 1;

  AnalysisSession saver(options);
  SessionResult cold = saver.submit(kBase);
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(saver.save(snap.path).ok);

  AnalysisSession restored(options);
  ASSERT_TRUE(restored.restore(snap.path).ok);
  SessionResult skip = restored.submit(kBase);
  ASSERT_TRUE(skip.ok);
  // The snapshot carries the source hash, so the identical resubmit never
  // parses or diffs — and still serves the full cached report set.
  EXPECT_EQ(skip.stats.fileSkips, 1u);
  EXPECT_EQ(render(cold), render(skip));
}

TEST(StoreTest, SaveRequiresALiveSession) {
  FileGuard snap{tempPath("store_dead.pano")};
  AnalysisSession session;
  store::StoreResult r = session.save(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("before its first successful submit"), std::string::npos) << r.error;
}

TEST(StoreTest, SaveFailsOnUnwritablePathWithDiagnostic) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(kBase).ok);
  store::StoreResult r = session.save("/nonexistent-dir/snapshot.pano");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("/nonexistent-dir/snapshot.pano"), std::string::npos) << r.error;
}

/// A failed restore must leave the session exactly as it was: same epoch,
/// and the next byte-identical resubmit still rides the fast path (proof
/// that units, hashes, and cached reports all survived).
void expectSessionUntouched(AnalysisSession& session, const std::string& coldRender) {
  EXPECT_EQ(session.epoch(), 1u);
  SessionResult again = session.submit(kBase);
  ASSERT_TRUE(again.ok);
  EXPECT_GE(again.stats.fileSkips, 1u);
  EXPECT_EQ(coldRender, render(again));
}

TEST(StoreTest, RestoreRejectsTruncatedSnapshotAndKeepsSession) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_truncated.pano")};
  AnalysisSession session;
  SessionResult cold = session.submit(kBase);
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(session.save(snap.path).ok);
  const std::string bytes = slurp(snap.path);
  ASSERT_GT(bytes.size(), 32u);

  // Shorter than the 24-byte header.
  spit(snap.path, bytes.substr(0, 10));
  store::StoreResult r = session.restore(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated snapshot"), std::string::npos) << r.error;

  // Header intact, payload cut short.
  spit(snap.path, bytes.substr(0, bytes.size() - 5));
  r = session.restore(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated snapshot"), std::string::npos) << r.error;

  expectSessionUntouched(session, render(cold));
}

TEST(StoreTest, RestoreRejectsCorruptedPayloadAndKeepsSession) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_corrupt.pano")};
  AnalysisSession session;
  SessionResult cold = session.submit(kBase);
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(session.save(snap.path).ok);
  std::string bytes = slurp(snap.path);
  ASSERT_GT(bytes.size(), store::kHeaderBytes + 8);

  bytes[store::kHeaderBytes + 7] ^= 0x40;  // one payload bit
  spit(snap.path, bytes);
  store::StoreResult r = session.restore(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("integrity hash mismatch"), std::string::npos) << r.error;

  expectSessionUntouched(session, render(cold));
}

TEST(StoreTest, RestoreRejectsVersionMismatchAndBadMagic) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_version.pano")};
  AnalysisSession session;
  SessionResult cold = session.submit(kBase);
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(session.save(snap.path).ok);
  const std::string bytes = slurp(snap.path);

  // Bump the schema version field (offset 4, little-endian u32).
  std::string versioned = bytes;
  versioned[4] = 99;
  spit(snap.path, versioned);
  store::StoreResult r = session.restore(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unsupported schema version 99"), std::string::npos) << r.error;

  // Clobber the magic.
  std::string unmagiced = bytes;
  unmagiced[0] = 'X';
  spit(snap.path, unmagiced);
  r = session.restore(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("bad magic"), std::string::npos) << r.error;

  expectSessionUntouched(session, render(cold));
}

TEST(StoreTest, RestoreRejectsMissingFile) {
  AnalysisSession session;
  store::StoreResult r = session.restore(tempPath("store_never_written.pano"));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  // A dead session stays usable after the failed restore.
  EXPECT_TRUE(session.submit(kBase).ok);
}

// ----- schema v2: loop-granular reuse across save/restore (§4.9) -----------

/// Four independent doubly-nested loop nests; `editedNest` (1-based, 0 =
/// none) changes a constant inside that nest, `comment` shifts every
/// statement down one line without touching any fingerprint.
std::string nestSource(int editedNest, bool comment = false) {
  std::string src = "      subroutine kern(a, b, n)\n";
  src += "      integer n\n";
  src += "      real a(100,4)\n";
  src += "      real b(100,4)\n";
  src += "      real t\n";
  if (comment) src += "c shifted down by one line\n";
  for (int k = 1; k <= 4; ++k) {
    const int lbl = 10 * k;
    const std::string col = std::to_string(k);
    const std::string c = (k == editedNest) ? "3.0" : "1.0";
    src += "      do " + std::to_string(lbl) + " i = 1, n\n";
    src += "      do " + std::to_string(lbl + 1) + " j = 1, n\n";
    src += "      t = a(j," + col + ") + " + c + "\n";
    src += "      b(j," + col + ") = t * 2.0\n";
    src += std::to_string(lbl + 1) + "    continue\n";
    src += std::to_string(lbl) + "    continue\n";
  }
  src += "      b(1,1) = 0.0\n";
  src += "      end\n";
  return src;
}

TEST(StoreTest, V2RoundTripFastPathsLoopGranularReuse) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_v2_loops.pano")};

  // In-process reference: cold, save, single-loop edit.
  AnalysisSession reference;
  ASSERT_TRUE(reference.submit(nestSource(0)).ok);
  ASSERT_TRUE(reference.save(snap.path).ok);
  SessionResult inProcess = reference.submit(nestSource(1));
  ASSERT_TRUE(inProcess.ok);
  ASSERT_EQ(inProcess.stats.loopSkips, 6u);

  // The v2 snapshot carries the per-item fingerprints and reuse edges, so
  // the restored session reuses exactly the same loops.
  AnalysisSession restored;
  ASSERT_TRUE(restored.restore(snap.path).ok);
  SessionResult warm = restored.submit(nestSource(1));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.stats.loopSkips, 6u);
  EXPECT_EQ(warm.stats.partialUnits, 1u);
  EXPECT_EQ(render(inProcess), render(warm));
}

TEST(StoreTest, V2RoundTripRemapsLinesAfterCommentOnlyEdit) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_v2_remap.pano")};
  AnalysisSession saver;
  SessionResult cold = saver.submit(nestSource(0));
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(saver.save(snap.path).ok);

  AnalysisSession restored;
  ASSERT_TRUE(restored.restore(snap.path).ok);
  SessionResult shifted = restored.submit(nestSource(0, /*comment=*/true));
  ASSERT_TRUE(shifted.ok);
  EXPECT_EQ(shifted.stats.dirty, 0u);
  EXPECT_GE(shifted.stats.lineRemaps, 1u);
  ASSERT_EQ(cold.loops.size(), shifted.loops.size());
  for (std::size_t k = 0; k < cold.loops.size(); ++k)
    EXPECT_EQ(cold.loops[k].line + 1, shifted.loops[k].line) << "loop " << k;
}

TEST(StoreTest, V1SnapshotRestoresWithProcedureGranularFallback) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_v1_compat.pano")};
  AnalysisSession saver;
  ASSERT_TRUE(saver.submit(nestSource(0)).ok);
  ASSERT_TRUE(saver.save(snap.path, /*schemaVersion=*/1).ok);

  // A v1 snapshot has no item records: the restored session still reuses
  // whole clean units, but a dirty unit recomputes all of its loops.
  AnalysisSession restored;
  store::StoreResult r = restored.restore(snap.path);
  ASSERT_TRUE(r.ok) << r.error;
  SessionResult warm = restored.submit(nestSource(1));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.stats.loopSkips, 0u);

  AnalysisSession cold;
  SessionResult coldRun = cold.submit(nestSource(1));
  ASSERT_TRUE(coldRun.ok);
  EXPECT_EQ(render(coldRun), render(warm));
}

TEST(StoreTest, V1RestoreUpgradesToLoopGranularOnFirstRealSubmit) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_v1_upgrade.pano")};
  AnalysisSession saver;
  ASSERT_TRUE(saver.submit(nestSource(0)).ok);
  ASSERT_TRUE(saver.save(snap.path, /*schemaVersion=*/1).ok);

  AnalysisSession restored;
  ASSERT_TRUE(restored.restore(snap.path).ok);
  // The comment-only edit goes through the diff path (not the byte-identical
  // fast path) and rebuilds every unit's item records from the new parse...
  SessionResult shifted = restored.submit(nestSource(0, /*comment=*/true));
  ASSERT_TRUE(shifted.ok);
  EXPECT_EQ(shifted.stats.dirty, 0u);
  // ...so the next single-loop edit reuses at loop granularity again.
  SessionResult warm = restored.submit(nestSource(1, /*comment=*/true));
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.stats.loopSkips, 6u);
}

TEST(StoreTest, SaveRejectsUnsupportedSchemaVersion) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_bad_version.pano")};
  AnalysisSession session;
  ASSERT_TRUE(session.submit(nestSource(0)).ok);
  store::StoreResult r = session.save(snap.path, /*schemaVersion=*/7);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("schema version"), std::string::npos) << r.error;
}

TEST(StoreTest, RestoreRejectsTruncatedV2ItemRecordsAndKeepsSession) {
  CacheGuard guard;
  FileGuard snap{tempPath("store_v2_truncated.pano")};
  AnalysisSession session;
  SessionResult cold = session.submit(nestSource(0));
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(session.save(snap.path).ok);
  const std::string bytes = slurp(snap.path);
  ASSERT_GT(bytes.size(), store::kHeaderBytes + 64);

  // Cut the tail of the payload (where the unit's item/remap records live)
  // and re-sign the header so the cut survives the integrity check: the
  // READER's structural bounds checks must catch it, not just the hash.
  std::string payload = bytes.substr(store::kHeaderBytes);
  payload.resize(payload.size() - 48);
  std::string doctored = bytes.substr(0, store::kHeaderBytes) + payload;
  const std::uint64_t size = payload.size();
  const std::uint64_t hash = store::fnv1a(payload);
  for (int k = 0; k < 8; ++k) {
    doctored[8 + k] = static_cast<char>((size >> (8 * k)) & 0xff);
    doctored[16 + k] = static_cast<char>((hash >> (8 * k)) & 0xff);
  }
  spit(snap.path, doctored);

  store::StoreResult r = session.restore(snap.path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("snapshot"), std::string::npos) << r.error;

  // The failed restore left the session exactly as it was: the identical
  // resubmit still rides the whole-file fast path with the cached reports.
  SessionResult again = session.submit(nestSource(0));
  ASSERT_TRUE(again.ok);
  EXPECT_GE(again.stats.fileSkips, 1u);
  EXPECT_EQ(render(cold), render(again));
}

TEST(StoreTest, SaveUnderConcurrentSubmitsSnapshotsOneConsistentEpoch) {
  CacheGuard guard;
  AnalysisOptions options;
  options.numThreads = 2;
  AnalysisSession session(options);
  ASSERT_TRUE(session.submit(kBase).ok);

  constexpr int kIterations = 8;
  std::thread editor([&] {
    for (int k = 0; k < kIterations; ++k) {
      SessionResult r = session.submit(k % 2 == 0 ? kLeafEdited : kBase);
      ASSERT_TRUE(r.ok);
    }
  });

  std::vector<std::string> snaps;
  for (int k = 0; k < kIterations; ++k) {
    snaps.push_back(tempPath("store_concurrent_" + std::to_string(k) + ".pano"));
    store::StoreResult saved = session.save(snaps.back());
    ASSERT_TRUE(saved.ok) << saved.error;
  }
  editor.join();

  // Every snapshot — whichever epoch it caught — restores and re-analyzes.
  for (const std::string& snap : snaps) {
    AnalysisSession restored(options);
    store::StoreResult r = restored.restore(snap);
    ASSERT_TRUE(r.ok) << snap << ": " << r.error;
    SessionResult warm = restored.submit(kLeafEdited);
    ASSERT_TRUE(warm.ok);
    EXPECT_FALSE(warm.loops.empty());
  }
  for (const std::string& snap : snaps) std::remove(snap.c_str());
}

}  // namespace
}  // namespace panorama
