// Tests for the conventional dependence tests (GCD / Banerjee) and the
// baseline loop classifier.
#include <gtest/gtest.h>

#include "panorama/deptest/deptest.h"
#include "panorama/frontend/parser.h"

namespace panorama {
namespace {

class DepTestTest : public ::testing::Test {
 protected:
  SymbolTable tab;
  VarId i = tab.intern("i");
  VarId n = tab.intern("n");
  SymExpr I = SymExpr::variable(i);
  SymExpr c(std::int64_t v) { return SymExpr::constant(v); }
};

TEST_F(DepTestTest, GcdProvesIndependence) {
  // 2i vs 2i' + 1: parity mismatch.
  EXPECT_EQ(gcdIndependent(I.mulConst(2), I.mulConst(2) + 1, i), Truth::True);
  // 2i vs 4i' + 2: gcd 2 divides 2 — solvable, not independent.
  EXPECT_EQ(gcdIndependent(I.mulConst(2), I.mulConst(4) + 2, i), Truth::Unknown);
  // constants only: 3 vs 5 never collide.
  EXPECT_EQ(gcdIndependent(c(3), c(5), i), Truth::True);
  EXPECT_EQ(gcdIndependent(c(3), c(3), i), Truth::False);
}

TEST_F(DepTestTest, GcdGivesUpOnSymbolicResidue) {
  EXPECT_EQ(gcdIndependent(I + SymExpr::variable(n), I.mulConst(2), i), Truth::Unknown);
}

TEST_F(DepTestTest, BanerjeeBoundsTest) {
  // i vs i' + 100 over [1, 10]: max of i - i' - 100 = -91 < 0.
  EXPECT_EQ(banerjeeIndependent(I, I + 100, i, c(1), c(10)), Truth::True);
  // i vs i' + 5 over [1, 10]: range [-14, 4] contains 0.
  EXPECT_EQ(banerjeeIndependent(I, I + 5, i, c(1), c(10)), Truth::Unknown);
  // zero-trip loop.
  EXPECT_EQ(banerjeeIndependent(I, I, i, c(5), c(4)), Truth::True);
  // symbolic bounds defeat the test.
  EXPECT_EQ(banerjeeIndependent(I, I + 100, i, c(1), SymExpr::variable(n)), Truth::Unknown);
}

TEST_F(DepTestTest, RefsCarriedIndependence) {
  ArrayTable arrays;
  ArrayId A = arrays.intern("a", {SymRange{c(1), c(100), c(1)}});
  auto mk = [&](SymExpr e) { return Region{A, {SymRange::point(std::move(e))}}; };
  // A(i) vs A(i): only the (=) direction — no carried dependence.
  EXPECT_EQ(refsIndependent(mk(I), mk(I), i, c(1), c(10)), Truth::True);
  // A(i) vs A(i-1): carried.
  EXPECT_EQ(refsIndependent(mk(I), mk(I - 1), i, c(1), c(10)), Truth::Unknown);
  // A(2i) vs A(2i+1): parity.
  EXPECT_EQ(refsIndependent(mk(I.mulConst(2)), mk(I.mulConst(2) + 1), i, c(1), c(10)),
            Truth::True);
}

struct ConvRun {
  Program program;
  SemaResult sema;
  std::vector<std::pair<const Stmt*, ConventionalResult>> loops;
};

ConvRun runConventional(std::string_view src) {
  ConvRun r;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  r.program = std::move(*p);
  auto sr = analyze(r.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  r.sema = std::move(*sr);
  ConventionalAnalyzer conv(r.program, r.sema);
  r.loops = conv.classifyProgram();
  return r;
}

TEST(ConventionalTest, SimpleParallelLoop) {
  ConvRun r = runConventional(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n
      do i = 1, n
        a(i) = b(i) + 1
      enddo
      end
  )");
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_TRUE(r.loops[0].second.parallel);
}

TEST(ConventionalTest, RecurrenceSerial) {
  ConvRun r = runConventional(R"(
      subroutine s(a, n)
      real a(100)
      integer n
      do i = 2, n
        a(i) = a(i - 1)
      enddo
      end
  )");
  EXPECT_FALSE(r.loops[0].second.parallel);
}

TEST(ConventionalTest, WorkArrayDefeatsBaseline) {
  // The privatization pattern: conventional analysis sees an output
  // dependence on `a` and gives up — exactly why the paper's analysis
  // exists.
  ConvRun r = runConventional(R"(
      subroutine s(a, c, n, m)
      real a(100), c(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          c(i) = c(i) + a(j)
        enddo
      enddo
      end
  )");
  // Outer loop (i): a(j) vs a(j) across i iterations is not provably
  // independent without value-flow information.
  EXPECT_FALSE(r.loops[0].second.parallel);
  // Inner first loop (j): a(j) = ... is parallel even conventionally.
  ASSERT_EQ(r.loops.size(), 3u);
  EXPECT_TRUE(r.loops[1].second.parallel);
}

TEST(ConventionalTest, CallsBlockBaseline) {
  ConvRun r = runConventional(R"(
      program main
      real a(100)
      integer m
      do i = 1, 10
        call f(a, m)
      enddo
      end
      subroutine f(b, mm)
      real b(100)
      integer mm
      b(1) = 0
      end
  )");
  EXPECT_FALSE(r.loops[0].second.parallel);
  EXPECT_TRUE(r.loops[0].second.sawCall);
}

}  // namespace
}  // namespace panorama
