// The analysis daemon (store/daemon.h): framed JSON protocol over a Unix
// socket, connection-local and named cross-connection sessions on one
// shared pool and hash-cons store.
//   * two concurrent clients produce exactly what two serial in-process
//     sessions produce;
//   * a client that dies mid-frame does not poison the shared store —
//     the next client analyzes normally;
//   * malformed requests get structured error responses, not a dropped
//     connection;
//   * a named session persists across connections (the second connection's
//     byte-identical resubmit rides the whole-file fast path).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "panorama/session/session.h"
#include "panorama/store/daemon.h"
#include "panorama/store/protocol.h"
#include "panorama/support/json.h"
#include "panorama/support/memo_cache.h"

namespace panorama {
namespace {

struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

const char* kProgA = R"(
      subroutine alpha(a, n)
      integer n
      real a(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 2.0
        a(i) = t(i) + 1.0
      enddo
      end
)";

const char* kProgAEdited = R"(
      subroutine alpha(a, n)
      integer n
      real a(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 3.0
        a(i) = t(i) + 1.0
      enddo
      end
)";

const char* kProgB = R"(
      subroutine beta(b, s, n)
      integer n
      real b(n)
      real s
      do i = 1, n
        s = s + b(i)
      enddo
      end
)";

/// AF_UNIX paths are short; keep them in /tmp and unique per test.
std::string socketPath(const std::string& name) {
  return "/tmp/panodt_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

/// RAII client connection.
struct Client {
  int fd = -1;
  explicit Client(const std::string& path) {
    std::string error;
    fd = store::connectUnixSocket(path, &error);
    EXPECT_GE(fd, 0) << error;
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
};

/// One request/response exchange; fails the test on any transport error.
support::JsonValue rpc(int fd, const std::string& request) {
  std::string error;
  EXPECT_TRUE(store::writeFrame(fd, request, &error)) << error;
  std::string payload;
  EXPECT_EQ(store::readFrame(fd, payload, &error), store::FrameStatus::Ok) << error;
  std::optional<support::JsonValue> v = support::JsonValue::parse(payload, &error);
  EXPECT_TRUE(v.has_value()) << error;
  return v ? *v : support::JsonValue::makeNull();
}

std::string submitRequest(const std::string& source, const std::string& name,
                          const std::string& sessionKey = "") {
  std::string req = "{\"id\":7,\"op\":\"submit\",\"name\":\"";
  support::appendJsonEscaped(req, name);
  if (!sessionKey.empty()) {
    req += "\",\"session\":\"";
    support::appendJsonEscaped(req, sessionKey);
  }
  req += "\",\"source\":\"";
  support::appendJsonEscaped(req, source);
  req += "\"}";
  return req;
}

std::string reportOf(const support::JsonValue& response) {
  const support::JsonValue* ok = response.find("ok");
  EXPECT_TRUE(ok && ok->isBool() && ok->asBool());
  const support::JsonValue* report = response.find("report");
  EXPECT_TRUE(report && report->isString());
  return report && report->isString() ? report->asString() : std::string();
}

/// What the daemon composes for a submit — same shape the batch driver
/// prints (daemon.cpp keeps the two in lockstep).
std::string composeReport(const std::string& name, const SessionResult& r) {
  std::string out = name + ": " + std::to_string(r.loops.size()) + " loop(s)\n\n";
  for (const SessionLoopResult& loop : r.loops) {
    out += loop.report;
    out += '\n';
  }
  return out;
}

TEST(DaemonTest, PingShutdownLifecycle) {
  const std::string path = socketPath("lifecycle");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;
  {
    Client c(path);
    support::JsonValue pong = rpc(c.fd, "{\"id\":42,\"op\":\"ping\"}");
    const support::JsonValue* ok = pong.find("ok");
    EXPECT_TRUE(ok && ok->isBool() && ok->asBool());
    const support::JsonValue* id = pong.find("id");
    ASSERT_TRUE(id && id->isNumber());
    EXPECT_EQ(id->asNumber(), 42.0);
    rpc(c.fd, "{\"id\":43,\"op\":\"shutdown\"}");
  }
  daemon.wait();  // returns because the client asked for shutdown
  EXPECT_LT(::access(path.c_str(), F_OK), 0) << "socket file not unlinked";
}

TEST(DaemonTest, TwoConcurrentClientsMatchSerialSessions) {
  CacheGuard guard;
  AnalysisOptions options;
  options.numThreads = 2;
  const std::string path = socketPath("concurrent");
  store::Daemon daemon(path, options);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  // Each client keeps one connection and submits a cold + warm sequence;
  // the two run concurrently against the shared pool and arenas.
  std::vector<std::string> reportsA, reportsB;
  std::thread clientA([&] {
    Client c(path);
    reportsA.push_back(reportOf(rpc(c.fd, submitRequest(kProgA, "a.f"))));
    reportsA.push_back(reportOf(rpc(c.fd, submitRequest(kProgAEdited, "a.f"))));
  });
  std::thread clientB([&] {
    Client c(path);
    reportsB.push_back(reportOf(rpc(c.fd, submitRequest(kProgB, "b.f"))));
    reportsB.push_back(reportOf(rpc(c.fd, submitRequest(kProgB, "b.f"))));
  });
  clientA.join();
  clientB.join();
  daemon.stop();
  daemon.wait();

  // Serial references: one in-process session per client, same sequences.
  AnalysisSession serialA(options);
  SessionResult a1 = serialA.submit(kProgA);
  SessionResult a2 = serialA.submit(kProgAEdited);
  ASSERT_TRUE(a1.ok && a2.ok);
  AnalysisSession serialB(options);
  SessionResult b1 = serialB.submit(kProgB);
  SessionResult b2 = serialB.submit(kProgB);
  ASSERT_TRUE(b1.ok && b2.ok);

  ASSERT_EQ(reportsA.size(), 2u);
  ASSERT_EQ(reportsB.size(), 2u);
  EXPECT_EQ(reportsA[0], composeReport("a.f", a1));
  EXPECT_EQ(reportsA[1], composeReport("a.f", a2));
  EXPECT_EQ(reportsB[0], composeReport("b.f", b1));
  EXPECT_EQ(reportsB[1], composeReport("b.f", b2));
}

TEST(DaemonTest, ClientDeathMidFrameDoesNotPoisonTheStore) {
  CacheGuard guard;
  const std::string path = socketPath("midframe");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  {
    // A length prefix promising 100 bytes, then 4 — and the client dies.
    Client dying(path);
    const char partial[] = {100, 0, 0, 0, 'j', 'u', 'n', 'k'};
    ASSERT_EQ(::write(dying.fd, partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
  }

  // The next client gets a fully functional service.
  Client c(path);
  const std::string report = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  AnalysisSession serial;
  SessionResult ref = serial.submit(kProgA);
  ASSERT_TRUE(ref.ok);
  EXPECT_EQ(report, composeReport("a.f", ref));
}

TEST(DaemonTest, MalformedRequestsGetStructuredErrors) {
  CacheGuard guard;
  const std::string path = socketPath("malformed");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  Client c(path);
  auto expectError = [&](const std::string& request, const std::string& needle) {
    support::JsonValue response = rpc(c.fd, request);
    const support::JsonValue* ok = response.find("ok");
    ASSERT_TRUE(ok && ok->isBool());
    EXPECT_FALSE(ok->asBool());
    const support::JsonValue* msg = response.find("error");
    ASSERT_TRUE(msg && msg->isString());
    EXPECT_NE(msg->asString().find(needle), std::string::npos) << msg->asString();
  };
  expectError("this is not json", "malformed request");
  expectError("{\"id\":1}", "no \"op\" field");
  expectError("{\"id\":1,\"op\":\"frobnicate\"}", "unknown op");
  expectError("{\"id\":1,\"op\":\"submit\"}", "\"source\" field");
  expectError(submitRequest("      garbage that does not parse\n", "bad.f"), "");

  // The connection survives every rejected request.
  const std::string report = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  EXPECT_FALSE(report.empty());
}

TEST(DaemonTest, NamedSessionPersistsAcrossConnections) {
  CacheGuard guard;
  const std::string path = socketPath("named");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  std::string first, second;
  {
    Client c(path);
    first = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f", "shared")));
  }
  {
    // New connection, same named session: the byte-identical resubmit is
    // served by the whole-file fast path.
    Client c(path);
    support::JsonValue response = rpc(c.fd, submitRequest(kProgA, "a.f", "shared"));
    second = reportOf(response);
    const support::JsonValue* skips = response.find("file_skips");
    ASSERT_TRUE(skips && skips->isNumber());
    EXPECT_EQ(skips->asNumber(), 1.0);
  }
  EXPECT_EQ(first, second);
}

TEST(DaemonTest, ErrorResponsesEchoTheRequestId) {
  const std::string path = socketPath("iderr");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  Client c(path);
  // A request with an id but no "op" still echoes the id.
  support::JsonValue noOp = rpc(c.fd, "{\"id\":77}");
  const support::JsonValue* id = noOp.find("id");
  ASSERT_TRUE(id && id->isNumber());
  EXPECT_EQ(id->asNumber(), 77.0);
  EXPECT_FALSE(noOp.find("ok")->asBool());

  // String ids come back as strings, not as a degenerate 0.
  support::JsonValue strId = rpc(c.fd, "{\"id\":\"req-abc\",\"op\":\"bogus\"}");
  id = strId.find("id");
  ASSERT_TRUE(id && id->isString());
  EXPECT_EQ(id->asString(), "req-abc");

  // Op-specific validation errors echo too.
  support::JsonValue noSource = rpc(c.fd, "{\"id\":9,\"op\":\"submit\"}");
  id = noSource.find("id");
  ASSERT_TRUE(id && id->isNumber());
  EXPECT_EQ(id->asNumber(), 9.0);
}

TEST(DaemonTest, ProtocolFrameExactlyAtTheCapRoundTrips) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  std::string big(store::kMaxFrameBytes, 'x');
  std::thread writer([&] {
    std::string werror;
    EXPECT_TRUE(store::writeFrame(sp[0], big, &werror)) << werror;
  });
  std::string payload;
  std::string error;
  EXPECT_EQ(store::readFrame(sp[1], payload, &error), store::FrameStatus::Ok) << error;
  EXPECT_EQ(payload.size(), static_cast<std::size_t>(store::kMaxFrameBytes));
  writer.join();
  ::close(sp[0]);
  ::close(sp[1]);

  // One byte more is refused before any bytes hit the wire.
  big.push_back('x');
  std::string werror;
  EXPECT_FALSE(store::writeFrame(-1, big, &werror));
  EXPECT_NE(werror.find("exceeds"), std::string::npos);
}

TEST(DaemonTest, OversizedFrameGetsStructuredErrorAndConnectionSurvives) {
  CacheGuard guard;
  const std::string path = socketPath("oversize");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  Client c(path);
  // Hand-rolled header promising one byte over the cap; the daemon drains
  // the payload and answers with a structured error on the same stream.
  const std::uint64_t n = static_cast<std::uint64_t>(store::kMaxFrameBytes) + 1;
  char len[4];
  for (int k = 0; k < 4; ++k) len[k] = static_cast<char>((n >> (8 * k)) & 0xff);
  ASSERT_EQ(::write(c.fd, len, sizeof(len)), static_cast<ssize_t>(sizeof(len)));
  std::string chunk(1 << 20, 'j');
  std::uint64_t left = n;
  while (left > 0) {
    const std::size_t w = left < chunk.size() ? static_cast<std::size_t>(left) : chunk.size();
    ASSERT_EQ(::write(c.fd, chunk.data(), w), static_cast<ssize_t>(w));
    left -= w;
  }
  std::string payload;
  ASSERT_EQ(store::readFrame(c.fd, payload, &error), store::FrameStatus::Ok) << error;
  std::optional<support::JsonValue> response = support::JsonValue::parse(payload, &error);
  ASSERT_TRUE(response.has_value()) << error;
  const support::JsonValue* ok = response->find("ok");
  ASSERT_TRUE(ok && ok->isBool());
  EXPECT_FALSE(ok->asBool());
  const support::JsonValue* msg = response->find("error");
  ASSERT_TRUE(msg && msg->isString());
  EXPECT_NE(msg->asString().find("exceeds the protocol maximum"), std::string::npos);

  // The stream stayed framed: a normal submit on the same connection works.
  const std::string report = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  EXPECT_FALSE(report.empty());
}

TEST(DaemonTest, ZeroLengthFrameIsMalformedNotFatal) {
  CacheGuard guard;
  const std::string path = socketPath("zerolen");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  Client c(path);
  support::JsonValue response = rpc(c.fd, "");
  const support::JsonValue* ok = response.find("ok");
  ASSERT_TRUE(ok && ok->isBool());
  EXPECT_FALSE(ok->asBool());
  const support::JsonValue* msg = response.find("error");
  ASSERT_TRUE(msg && msg->isString());
  EXPECT_NE(msg->asString().find("malformed request"), std::string::npos);

  const std::string report = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  EXPECT_FALSE(report.empty());
}

TEST(DaemonTest, ReadFrameTimesOutOnASilentPeer) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  std::string error;
  ASSERT_TRUE(store::setSocketTimeout(sp[0], 50, &error)) << error;
  std::string payload;
  EXPECT_EQ(store::readFrame(sp[0], payload, &error), store::FrameStatus::Error);
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(DaemonTest, TelemetryOpsAnswerWhileSubmitsAreInFlight) {
  CacheGuard guard;
  const std::string path = socketPath("telemetry");
  store::DaemonConfig config;
  config.slowMs = 0;  // record a slow_request event for every request
  store::Daemon daemon(path, AnalysisOptions{}, config);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  constexpr int kSubmits = 6;
  std::thread submitter([&] {
    Client c(path);
    for (int k = 0; k < kSubmits; ++k) {
      const char* source = (k % 2 == 0) ? kProgA : kProgAEdited;
      support::JsonValue response = rpc(c.fd, submitRequest(source, "a.f", "s"));
      const support::JsonValue* ok = response.find("ok");
      EXPECT_TRUE(ok && ok->isBool() && ok->asBool());
    }
  });

  // Poll the telemetry plane from a second connection while the submits
  // run: every status/metrics/tail answers ok (none of them can block on a
  // session mutex held by an in-flight submit).
  {
    Client m(path);
    std::uint64_t cursor = 0;
    for (int k = 0; k < 20; ++k) {
      support::JsonValue status = rpc(m.fd, "{\"id\":1,\"op\":\"status\"}");
      const support::JsonValue* ok = status.find("ok");
      ASSERT_TRUE(ok && ok->isBool() && ok->asBool());
      support::JsonValue metrics = rpc(m.fd, "{\"id\":2,\"op\":\"metrics\"}");
      ok = metrics.find("ok");
      ASSERT_TRUE(ok && ok->isBool() && ok->asBool());
      EXPECT_TRUE(metrics.find("registry") && metrics.find("registry")->isObject());
      support::JsonValue tail =
          rpc(m.fd, "{\"id\":3,\"op\":\"tail\",\"cursor\":" + std::to_string(cursor) + "}");
      ok = tail.find("ok");
      ASSERT_TRUE(ok && ok->isBool() && ok->asBool());
      const support::JsonValue* next = tail.find("next_cursor");
      ASSERT_TRUE(next && next->isNumber());
      cursor = static_cast<std::uint64_t>(next->asNumber());
    }
  }
  submitter.join();

  // Quiesced: status totals and the event stream reflect every submit.
  Client c(path);
  support::JsonValue status = rpc(c.fd, "{\"id\":4,\"op\":\"status\"}");
  const support::JsonValue* submits = status.find("submits");
  ASSERT_TRUE(submits && submits->isNumber());
  EXPECT_EQ(submits->asNumber(), static_cast<double>(kSubmits));
  const support::JsonValue* sessions = status.find("sessions");
  ASSERT_TRUE(sessions && sessions->isArray());
  ASSERT_EQ(sessions->items().size(), 1u);
  const support::JsonValue& named = sessions->items()[0];
  EXPECT_EQ(named.find("name")->asString(), "s");
  EXPECT_EQ(named.find("epoch")->asNumber(), static_cast<double>(kSubmits));
  EXPECT_TRUE(named.find("live")->asBool());

  // Per-op latency histograms carry the queue/handle split.
  support::JsonValue metrics = rpc(c.fd, "{\"id\":5,\"op\":\"metrics\"}");
  const support::JsonValue* registry = metrics.find("registry");
  ASSERT_TRUE(registry && registry->isObject());
  const support::JsonValue* histograms = registry->find("histograms");
  ASSERT_TRUE(histograms && histograms->isObject());
  for (const char* name : {"daemon.op.submit.wall_us", "daemon.op.submit.queue_us",
                           "daemon.op.submit.handle_us", "daemon.op.status.wall_us"}) {
    const support::JsonValue* h = histograms->find(name);
    ASSERT_TRUE(h && h->isObject()) << name;
    const support::JsonValue* count = h->find("count");
    ASSERT_TRUE(count && count->isNumber()) << name;
    EXPECT_GE(count->asNumber(), 1.0) << name;
    EXPECT_TRUE(h->find("p50") && h->find("p95") && h->find("p99")) << name;
  }

  // The full event stream: every submit left begin/end records with the
  // session key and epoch, and slowMs=0 made every request a slow_request.
  // Drain only up to the head observed in `status` — with slowMs=0 every
  // tail request appends its own slow_request event, so chasing an empty
  // read would never terminate.
  const support::JsonValue* eventLog = status.find("event_log");
  ASSERT_TRUE(eventLog && eventLog->isObject());
  const std::uint64_t head =
      static_cast<std::uint64_t>(eventLog->find("appended")->asNumber());
  int begins = 0, ends = 0, slow = 0;
  std::uint64_t cursor = 0;
  while (cursor < head) {
    support::JsonValue tail =
        rpc(c.fd, "{\"id\":6,\"op\":\"tail\",\"cursor\":" + std::to_string(cursor) +
                      ",\"max\":1000}");
    const support::JsonValue* events = tail.find("events");
    ASSERT_TRUE(events && events->isArray());
    if (events->items().empty()) break;
    for (const support::JsonValue& ev : events->items()) {
      const std::string& kind = ev.find("kind")->asString();
      if (kind == "submit_begin") {
        ++begins;
        EXPECT_EQ(ev.find("session")->asString(), "s");
      } else if (kind == "submit_end") {
        ++ends;
        EXPECT_EQ(ev.find("session")->asString(), "s");
        EXPECT_GE(ev.find("epoch")->asNumber(), 1.0);
        EXPECT_TRUE(ev.find("dirty") && ev.find("dirty")->isNumber());
      } else if (kind == "slow_request") {
        ++slow;
      }
    }
    cursor = static_cast<std::uint64_t>(tail.find("next_cursor")->asNumber());
  }
  EXPECT_EQ(begins, kSubmits);
  EXPECT_EQ(ends, kSubmits);
  EXPECT_GE(slow, kSubmits);
}

TEST(DaemonTest, EventLogFileWrittenAsJsonl) {
  CacheGuard guard;
  const std::string path = socketPath("evsink");
  const std::string logPath =
      "/tmp/panodt_" + std::to_string(::getpid()) + "_events.jsonl";
  store::DaemonConfig config;
  config.eventLogPath = logPath;
  store::Daemon daemon(path, AnalysisOptions{}, config);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;
  {
    Client c(path);
    reportOf(rpc(c.fd, submitRequest(kProgA, "a.f", "persisted")));
    rpc(c.fd, "{\"id\":2,\"op\":\"shutdown\"}");
  }
  daemon.wait();

  std::ifstream in(logPath);
  ASSERT_TRUE(in.is_open());
  int lines = 0;
  bool sawSubmitEnd = false;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    std::optional<support::JsonValue> ev = support::JsonValue::parse(line, &error);
    ASSERT_TRUE(ev.has_value()) << line << ": " << error;
    const support::JsonValue* kind = ev->find("kind");
    ASSERT_TRUE(kind && kind->isString());
    if (kind->asString() == "submit_end") {
      sawSubmitEnd = true;
      EXPECT_EQ(ev->find("session")->asString(), "persisted");
    }
  }
  EXPECT_GE(lines, 4);  // conn_open, submit begin/end, conn_close at least
  EXPECT_TRUE(sawSubmitEnd);
  std::remove(logPath.c_str());
}

TEST(DaemonTest, TelemetryOffKeepsTheRequestPathQuiet) {
  CacheGuard guard;
  const std::string path = socketPath("teloff");
  store::DaemonConfig config;
  config.telemetry = false;
  store::Daemon daemon(path, AnalysisOptions{}, config);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  Client c(path);
  reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  // No events were recorded, and tail still answers (empty).
  support::JsonValue tail = rpc(c.fd, "{\"id\":2,\"op\":\"tail\"}");
  const support::JsonValue* ok = tail.find("ok");
  ASSERT_TRUE(ok && ok->isBool() && ok->asBool());
  ASSERT_TRUE(tail.find("events") && tail.find("events")->isArray());
  EXPECT_TRUE(tail.find("events")->items().empty());
}

}  // namespace
}  // namespace panorama
