// The analysis daemon (store/daemon.h): framed JSON protocol over a Unix
// socket, connection-local and named cross-connection sessions on one
// shared pool and hash-cons store.
//   * two concurrent clients produce exactly what two serial in-process
//     sessions produce;
//   * a client that dies mid-frame does not poison the shared store —
//     the next client analyzes normally;
//   * malformed requests get structured error responses, not a dropped
//     connection;
//   * a named session persists across connections (the second connection's
//     byte-identical resubmit rides the whole-file fast path).
#include <gtest/gtest.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "panorama/session/session.h"
#include "panorama/store/daemon.h"
#include "panorama/store/protocol.h"
#include "panorama/support/json.h"
#include "panorama/support/memo_cache.h"

namespace panorama {
namespace {

struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

const char* kProgA = R"(
      subroutine alpha(a, n)
      integer n
      real a(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 2.0
        a(i) = t(i) + 1.0
      enddo
      end
)";

const char* kProgAEdited = R"(
      subroutine alpha(a, n)
      integer n
      real a(n)
      real t(100)
      do i = 1, n
        t(i) = a(i) * 3.0
        a(i) = t(i) + 1.0
      enddo
      end
)";

const char* kProgB = R"(
      subroutine beta(b, s, n)
      integer n
      real b(n)
      real s
      do i = 1, n
        s = s + b(i)
      enddo
      end
)";

/// AF_UNIX paths are short; keep them in /tmp and unique per test.
std::string socketPath(const std::string& name) {
  return "/tmp/panodt_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

/// RAII client connection.
struct Client {
  int fd = -1;
  explicit Client(const std::string& path) {
    std::string error;
    fd = store::connectUnixSocket(path, &error);
    EXPECT_GE(fd, 0) << error;
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
};

/// One request/response exchange; fails the test on any transport error.
support::JsonValue rpc(int fd, const std::string& request) {
  std::string error;
  EXPECT_TRUE(store::writeFrame(fd, request, &error)) << error;
  std::string payload;
  EXPECT_EQ(store::readFrame(fd, payload, &error), store::FrameStatus::Ok) << error;
  std::optional<support::JsonValue> v = support::JsonValue::parse(payload, &error);
  EXPECT_TRUE(v.has_value()) << error;
  return v ? *v : support::JsonValue::makeNull();
}

std::string submitRequest(const std::string& source, const std::string& name,
                          const std::string& sessionKey = "") {
  std::string req = "{\"id\":7,\"op\":\"submit\",\"name\":\"";
  support::appendJsonEscaped(req, name);
  if (!sessionKey.empty()) {
    req += "\",\"session\":\"";
    support::appendJsonEscaped(req, sessionKey);
  }
  req += "\",\"source\":\"";
  support::appendJsonEscaped(req, source);
  req += "\"}";
  return req;
}

std::string reportOf(const support::JsonValue& response) {
  const support::JsonValue* ok = response.find("ok");
  EXPECT_TRUE(ok && ok->isBool() && ok->asBool());
  const support::JsonValue* report = response.find("report");
  EXPECT_TRUE(report && report->isString());
  return report && report->isString() ? report->asString() : std::string();
}

/// What the daemon composes for a submit — same shape the batch driver
/// prints (daemon.cpp keeps the two in lockstep).
std::string composeReport(const std::string& name, const SessionResult& r) {
  std::string out = name + ": " + std::to_string(r.loops.size()) + " loop(s)\n\n";
  for (const SessionLoopResult& loop : r.loops) {
    out += loop.report;
    out += '\n';
  }
  return out;
}

TEST(DaemonTest, PingShutdownLifecycle) {
  const std::string path = socketPath("lifecycle");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;
  {
    Client c(path);
    support::JsonValue pong = rpc(c.fd, "{\"id\":42,\"op\":\"ping\"}");
    const support::JsonValue* ok = pong.find("ok");
    EXPECT_TRUE(ok && ok->isBool() && ok->asBool());
    const support::JsonValue* id = pong.find("id");
    ASSERT_TRUE(id && id->isNumber());
    EXPECT_EQ(id->asNumber(), 42.0);
    rpc(c.fd, "{\"id\":43,\"op\":\"shutdown\"}");
  }
  daemon.wait();  // returns because the client asked for shutdown
  EXPECT_LT(::access(path.c_str(), F_OK), 0) << "socket file not unlinked";
}

TEST(DaemonTest, TwoConcurrentClientsMatchSerialSessions) {
  CacheGuard guard;
  AnalysisOptions options;
  options.numThreads = 2;
  const std::string path = socketPath("concurrent");
  store::Daemon daemon(path, options);
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  // Each client keeps one connection and submits a cold + warm sequence;
  // the two run concurrently against the shared pool and arenas.
  std::vector<std::string> reportsA, reportsB;
  std::thread clientA([&] {
    Client c(path);
    reportsA.push_back(reportOf(rpc(c.fd, submitRequest(kProgA, "a.f"))));
    reportsA.push_back(reportOf(rpc(c.fd, submitRequest(kProgAEdited, "a.f"))));
  });
  std::thread clientB([&] {
    Client c(path);
    reportsB.push_back(reportOf(rpc(c.fd, submitRequest(kProgB, "b.f"))));
    reportsB.push_back(reportOf(rpc(c.fd, submitRequest(kProgB, "b.f"))));
  });
  clientA.join();
  clientB.join();
  daemon.stop();
  daemon.wait();

  // Serial references: one in-process session per client, same sequences.
  AnalysisSession serialA(options);
  SessionResult a1 = serialA.submit(kProgA);
  SessionResult a2 = serialA.submit(kProgAEdited);
  ASSERT_TRUE(a1.ok && a2.ok);
  AnalysisSession serialB(options);
  SessionResult b1 = serialB.submit(kProgB);
  SessionResult b2 = serialB.submit(kProgB);
  ASSERT_TRUE(b1.ok && b2.ok);

  ASSERT_EQ(reportsA.size(), 2u);
  ASSERT_EQ(reportsB.size(), 2u);
  EXPECT_EQ(reportsA[0], composeReport("a.f", a1));
  EXPECT_EQ(reportsA[1], composeReport("a.f", a2));
  EXPECT_EQ(reportsB[0], composeReport("b.f", b1));
  EXPECT_EQ(reportsB[1], composeReport("b.f", b2));
}

TEST(DaemonTest, ClientDeathMidFrameDoesNotPoisonTheStore) {
  CacheGuard guard;
  const std::string path = socketPath("midframe");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  {
    // A length prefix promising 100 bytes, then 4 — and the client dies.
    Client dying(path);
    const char partial[] = {100, 0, 0, 0, 'j', 'u', 'n', 'k'};
    ASSERT_EQ(::write(dying.fd, partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
  }

  // The next client gets a fully functional service.
  Client c(path);
  const std::string report = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  AnalysisSession serial;
  SessionResult ref = serial.submit(kProgA);
  ASSERT_TRUE(ref.ok);
  EXPECT_EQ(report, composeReport("a.f", ref));
}

TEST(DaemonTest, MalformedRequestsGetStructuredErrors) {
  CacheGuard guard;
  const std::string path = socketPath("malformed");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  Client c(path);
  auto expectError = [&](const std::string& request, const std::string& needle) {
    support::JsonValue response = rpc(c.fd, request);
    const support::JsonValue* ok = response.find("ok");
    ASSERT_TRUE(ok && ok->isBool());
    EXPECT_FALSE(ok->asBool());
    const support::JsonValue* msg = response.find("error");
    ASSERT_TRUE(msg && msg->isString());
    EXPECT_NE(msg->asString().find(needle), std::string::npos) << msg->asString();
  };
  expectError("this is not json", "malformed request");
  expectError("{\"id\":1}", "no \"op\" field");
  expectError("{\"id\":1,\"op\":\"frobnicate\"}", "unknown op");
  expectError("{\"id\":1,\"op\":\"submit\"}", "\"source\" field");
  expectError(submitRequest("      garbage that does not parse\n", "bad.f"), "");

  // The connection survives every rejected request.
  const std::string report = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f")));
  EXPECT_FALSE(report.empty());
}

TEST(DaemonTest, NamedSessionPersistsAcrossConnections) {
  CacheGuard guard;
  const std::string path = socketPath("named");
  store::Daemon daemon(path, AnalysisOptions{});
  std::string error;
  ASSERT_TRUE(daemon.start(error)) << error;

  std::string first, second;
  {
    Client c(path);
    first = reportOf(rpc(c.fd, submitRequest(kProgA, "a.f", "shared")));
  }
  {
    // New connection, same named session: the byte-identical resubmit is
    // served by the whole-file fast path.
    Client c(path);
    support::JsonValue response = rpc(c.fd, submitRequest(kProgA, "a.f", "shared"));
    second = reportOf(response);
    const support::JsonValue* skips = response.find("file_skips");
    ASSERT_TRUE(skips && skips->isNumber());
    EXPECT_EQ(skips->asNumber(), 1.0);
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace panorama
