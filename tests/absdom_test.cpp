// Tests for the abstract-domain query pre-filter (predicate/absdom) and the
// memoizing FM engine (predicate/fm_incremental): interval edge cases,
// overflow saturation, fallback behavior, randomized agreement with the
// classic engine, elimination-cache epoch invalidation, and the differential
// pin that tiered mode reproduces FM-only corpus reports at 1/4/8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "panorama/analysis/driver.h"
#include "panorama/predicate/absdom.h"
#include "panorama/predicate/fm_incremental.h"
#include "panorama/support/memo_cache.h"
#include "panorama/symbolic/affine.h"
#include "panorama/symbolic/constraint.h"
#include "panorama/symbolic/expr.h"

namespace panorama {
namespace {

using absdom::Interval;
using absdom::intervalFixpoint;
using absdom::tryDischarge;

class AbsDomTest : public ::testing::Test {
 protected:
  void TearDown() override { setQueryTierEnabled(true); }  // process default

  SymbolTable tab;
  VarId x = tab.intern("x");
  VarId y = tab.intern("y");
  VarId z = tab.intern("z");
  SymExpr X = SymExpr::variable(x);
  SymExpr Y = SymExpr::variable(y);
  SymExpr Z = SymExpr::variable(z);

  static LinearConstraint le0(const SymExpr& e) {
    return {*AffineForm::fromExpr(e), ConstraintKind::LE0};
  }
  static LinearConstraint eq0(const SymExpr& e) {
    return {*AffineForm::fromExpr(e), ConstraintKind::EQ0};
  }
  static LinearConstraint ne0(const SymExpr& e) {
    return {*AffineForm::fromExpr(e), ConstraintKind::NE0};
  }

  static const Interval* intervalOf(const std::vector<std::pair<VarId, Interval>>& store,
                                    VarId v) {
    for (const auto& [var, itv] : store)
      if (var == v) return &itv;
    return nullptr;
  }
};

// ---------------------------------------------------------------- intervals

TEST_F(AbsDomTest, FixpointDerivesTwoSidedBounds) {
  // 1 <= x <= 7
  auto store = intervalFixpoint({le0(-X + 1), le0(X - 7)});
  const Interval* ix = intervalOf(store, x);
  ASSERT_NE(ix, nullptr);
  EXPECT_FALSE(ix->loInf);
  EXPECT_FALSE(ix->hiInf);
  EXPECT_EQ(ix->lo, 1);
  EXPECT_EQ(ix->hi, 7);
  EXPECT_FALSE(ix->empty());
}

TEST_F(AbsDomTest, FixpointDetectsEmptyInterval) {
  // x >= 2 and x <= 0: empty, so the witness search must decline — the
  // contradiction verdict belongs to the precise engine.
  auto store = intervalFixpoint({le0(-X + 2), le0(X)});
  const Interval* ix = intervalOf(store, x);
  ASSERT_NE(ix, nullptr);
  EXPECT_TRUE(ix->empty());
  EXPECT_EQ(tryDischarge({le0(-X + 2), le0(X)}, FmBudget{}), std::nullopt);
}

TEST_F(AbsDomTest, FixpointPropagatesThroughChains) {
  // x <= y, y <= z, z <= 4, x >= 1: every variable ends two-sided.
  auto store = intervalFixpoint({le0(X - Y), le0(Y - Z), le0(Z - 4), le0(-X + 1)});
  const Interval* iz = intervalOf(store, z);
  ASSERT_NE(iz, nullptr);
  EXPECT_EQ(iz->hi, 4);
  const Interval* ix = intervalOf(store, x);
  ASSERT_NE(ix, nullptr);
  EXPECT_EQ(ix->lo, 1);
  EXPECT_EQ(ix->hi, 4);  // through x <= y <= z <= 4
}

TEST_F(AbsDomTest, IntervalClampSaturatesAtInt64) {
  Interval i = Interval::top();
  EXPECT_TRUE(i.clampHi(INT64_MAX));
  EXPECT_TRUE(i.clampLo(INT64_MIN));
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.contains(0));
  EXPECT_TRUE(i.contains(INT64_MAX));
  // Clamping never widens.
  EXPECT_FALSE(i.clampHi(INT64_MAX));
  EXPECT_TRUE(i.clampHi(5));
  EXPECT_EQ(i.hi, 5);
}

// ---------------------------------------------------------------- discharge

TEST_F(AbsDomTest, DischargesFeasibleSystemWithVerifiedWitness) {
  // 1 <= x <= 7 is satisfiable: False via a witness, same verdict as FM.
  std::vector<LinearConstraint> cs{le0(-X + 1), le0(X - 7)};
  EXPECT_EQ(tryDischarge(cs, FmBudget{}), Truth::False);
}

TEST_F(AbsDomTest, DischargesConstantSystemsAsClassicScreenWould) {
  AffineForm five;
  five.constant = 5;
  AffineForm minusOne;
  minusOne.constant = -1;
  // 5 <= 0 is violated: the all-constant mirror answers True.
  EXPECT_EQ(tryDischarge({{five, ConstraintKind::LE0}}, FmBudget{}), Truth::True);
  // -1 <= 0 holds: False, exactly as the classic empty elimination.
  EXPECT_EQ(tryDischarge({{minusOne, ConstraintKind::LE0}}, FmBudget{}), Truth::False);
  // 0 != 0 is violated.
  AffineForm zero;
  EXPECT_EQ(tryDischarge({{zero, ConstraintKind::NE0}}, FmBudget{}), Truth::True);
}

TEST_F(AbsDomTest, MirrorsOverflowPoisonAsUnknown) {
  AffineForm poisoned = *AffineForm::fromExpr(X);
  poisoned.overflow = true;
  EXPECT_EQ(tryDischarge({{poisoned, ConstraintKind::LE0}}, FmBudget{}), Truth::Unknown);
}

TEST_F(AbsDomTest, SaturatedBoundsStillVerifyExactly) {
  // x >= INT64_MAX - 1 has the representable witness x = INT64_MAX - 1; the
  // 128-bit verification keeps the substitution exact at the range edge.
  std::vector<LinearConstraint> cs{le0(-X + (INT64_MAX - 1))};
  EXPECT_EQ(tryDischarge(cs, FmBudget{}), Truth::False);
}

TEST_F(AbsDomTest, DeclinesWhenNoInt64WitnessExists) {
  // x >= INT64_MAX and x <= -1 shifted beyond range: the derived bound
  // leaves int64, so the store poisons and the search declines rather than
  // claim a verdict.
  std::vector<LinearConstraint> cs{le0(-X + INT64_MAX), le0(-Y + INT64_MAX),
                                   le0(X + Y)};  // x + y <= 0 with x, y huge
  EXPECT_EQ(tryDischarge(cs, FmBudget{}), std::nullopt);
}

TEST_F(AbsDomTest, DisequalityWitnessAvoidsExcludedValue) {
  // x >= 1 and y != 0: candidate 0 for y is excluded by the disequality and
  // the nudged fallback must find y = 1.
  std::vector<LinearConstraint> cs{le0(-X + 1), ne0(Y)};
  EXPECT_EQ(tryDischarge(cs, FmBudget{}), Truth::False);
}

TEST_F(AbsDomTest, GcdCongruenceScreenDeclinesToFm) {
  // 2x == 1 has no integer solution; the congruence screen declines so the
  // classic tightening produces the (True) verdict — never the tier.
  std::vector<LinearConstraint> cs{eq0(X.mulConst(2) - 1)};
  EXPECT_EQ(tryDischarge(cs, FmBudget{}), std::nullopt);
  EXPECT_EQ(fourierMotzkinInfeasible({*AffineForm::fromExpr(X.mulConst(2) - 1),
                                      AffineForm::fromExpr(X.mulConst(2) - 1)->scaled(-1)},
                                     FmBudget{}),
            Truth::True);
}

TEST_F(AbsDomTest, OversizedSystemsDecline) {
  FmBudget tiny;
  tiny.maxConstraints = 1;
  std::vector<LinearConstraint> cs{le0(X - 5), le0(-X + 1)};
  EXPECT_EQ(tryDischarge(cs, tiny), std::nullopt);
}

// --------------------------------------------------- randomized agreement

/// Random small systems: whenever the pre-filter discharges, its verdict
/// must agree with the classic engine — True only when FM proves the
/// contradiction, False only when FM does not (FM never proves True of a
/// system holding a verified integer point).
TEST_F(AbsDomTest, RandomizedPrefilterAgreesWithClassicFm) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> coefDist(-3, 3);
  std::uniform_int_distribution<int> constDist(-10, 10);
  std::uniform_int_distribution<int> countDist(1, 5);
  std::uniform_int_distribution<int> kindDist(0, 9);

  int discharged = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<LinearConstraint> cs;
    const int n = countDist(rng);
    for (int k = 0; k < n; ++k) {
      AffineForm f;
      for (VarId v : {x, y, z}) {
        int c = coefDist(rng);
        if (c != 0) f.coeffs.emplace_back(v, c);
      }
      f.constant = constDist(rng);
      const int kindRoll = kindDist(rng);
      ConstraintKind kind = kindRoll == 0   ? ConstraintKind::EQ0
                            : kindRoll == 1 ? ConstraintKind::NE0
                                            : ConstraintKind::LE0;
      cs.push_back({std::move(f), kind});
    }

    auto verdict = tryDischarge(cs, FmBudget{});
    if (!verdict) continue;
    ++discharged;

    // Classic FM over the same constraint vector (the contradictoryCold
    // lowering: LE stays, EQ splits into both directions, NE joins only
    // through the disequality screens which this generator rarely trips).
    std::vector<AffineForm> system;
    bool anyNe = false;
    for (const LinearConstraint& c : cs) {
      if (c.kind == ConstraintKind::NE0) {
        anyNe = true;
        continue;
      }
      system.push_back(c.form);
      if (c.kind == ConstraintKind::EQ0) system.push_back(c.form.scaled(-1));
    }
    Truth classic = fourierMotzkinInfeasible(std::move(system), FmBudget{});
    if (*verdict == Truth::True) {
      // The mirror only fires on violated constants; NE-free classic runs
      // must reproduce it. (NE-driven True needs the disequality screens.)
      if (!anyNe) {
        EXPECT_EQ(classic, Truth::True) << "trial " << trial;
      }
    } else if (*verdict == Truth::False) {
      // A verified integer point exists, so sound FM cannot prove True.
      EXPECT_NE(classic, Truth::True) << "trial " << trial;
    }
  }
  // The generator must actually exercise the discharge paths.
  EXPECT_GT(discharged, 500);
}

// ----------------------------------------------------- memoized FM engine

TEST_F(AbsDomTest, MemoEngineMatchesClassicOnRandomSystems) {
  std::mt19937 rng(95);
  std::uniform_int_distribution<int> coefDist(-4, 4);
  std::uniform_int_distribution<int> constDist(-20, 20);
  std::uniform_int_distribution<int> countDist(1, 6);
  clearFmEliminationCache();
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<AffineForm> system;
    const int n = countDist(rng);
    for (int k = 0; k < n; ++k) {
      AffineForm f;
      for (VarId v : {x, y, z}) {
        int c = coefDist(rng);
        if (c != 0) f.coeffs.emplace_back(v, c);
      }
      f.constant = constDist(rng);
      system.push_back(std::move(f));
    }
    // Tight budgets exercise the Unknown paths; the memo must reproduce
    // those verdicts too, not only True/False.
    FmBudget budget;
    if (trial % 3 == 0) budget.maxConstraints = 4;
    if (trial % 5 == 0) budget.maxVariables = 2;
    Truth classic = fourierMotzkinInfeasible(system, budget);
    Truth memo = fourierMotzkinInfeasibleMemo(system, budget);
    EXPECT_EQ(memo, classic) << "trial " << trial;
    // And again, now (possibly) served from the cache.
    EXPECT_EQ(fourierMotzkinInfeasibleMemo(system, budget), classic) << "trial " << trial;
  }
}

TEST_F(AbsDomTest, EliminationCacheHitsOnRepeatAndInvalidatesOnEpochBump) {
  clearFmEliminationCache();
  std::vector<AffineForm> system{*AffineForm::fromExpr(X - Y), *AffineForm::fromExpr(Y - Z),
                                 *AffineForm::fromExpr(Z - X + 1)};
  ASSERT_EQ(fourierMotzkinInfeasibleMemo(system, FmBudget{}), Truth::True);
  FmCacheStats cold = fmEliminationStats();
  EXPECT_GT(cold.misses, 0u);
  EXPECT_GT(cold.entries, 0u);

  ASSERT_EQ(fourierMotzkinInfeasibleMemo(system, FmBudget{}), Truth::True);
  FmCacheStats warm = fmEliminationStats();
  EXPECT_EQ(warm.hits, cold.hits + 1) << "repeat query must hit the root handle";
  EXPECT_EQ(warm.misses, cold.misses);

  // Epoch invalidation: stale entries never hit, in O(1), without freeing.
  QueryCache::global().bumpEpoch();
  ASSERT_EQ(fourierMotzkinInfeasibleMemo(system, FmBudget{}), Truth::True);
  FmCacheStats bumped = fmEliminationStats();
  EXPECT_EQ(bumped.hits, warm.hits);
  EXPECT_GT(bumped.misses, warm.misses);
}

TEST_F(AbsDomTest, TierModeBitKeepsQueryCacheVerdictsApart) {
  // The tier may answer False (verified witness) where the classic engine
  // answers Unknown, so ConstraintSet::contradictory keys its memo on the
  // tier mode: flipping the mode must recompute, not reuse.
  QueryCache::global().configure(QueryCache::kDefaultCapacity);  // fresh counters
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X - 5));
  ASSERT_TRUE(cs.addExprLE0(-X + 1));

  setQueryTierEnabled(true);
  Truth tiered = cs.contradictory();
  QueryCache::Stats afterTiered = QueryCache::global().stats();

  setQueryTierEnabled(false);
  Truth classic = cs.contradictory();
  QueryCache::Stats afterClassic = QueryCache::global().stats();

  EXPECT_EQ(tiered, classic);  // identical verdicts on this system...
  EXPECT_EQ(afterClassic.misses, afterTiered.misses + 1)
      << "...but the second mode must take its own cache miss";
}

// ------------------------------------------------------------ differential

/// The ISSUE's hard requirement: byte-identical corpus loop reports with
/// the tier on vs off, at 1, 4, and 8 threads.
TEST_F(AbsDomTest, CorpusReportsAreByteIdenticalAcrossModesAndThreadCounts) {
  auto fingerprint = [](bool prefilter, int threads) {
    AnalysisOptions options;
    options.numThreads = threads;
    options.prefilter = prefilter;
    std::string out;
    for (const CorpusRoutineResult& loop : analyzeCorpusParallel(options).loops) {
      out += loop.kernelId;
      out += '|';
      out += loop.report;
      out += loop.provenanceSummary;
      out += '\n';
    }
    return out;
  };
  const std::string want = fingerprint(false, 1);
  ASSERT_FALSE(want.empty());
  for (int threads : {1, 4, 8}) {
    EXPECT_EQ(fingerprint(true, threads), want) << "tiered, threads=" << threads;
    EXPECT_EQ(fingerprint(false, threads), want) << "fm-only, threads=" << threads;
  }
}

}  // namespace
}  // namespace panorama
