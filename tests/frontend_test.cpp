// Tests for the lexer, parser, and semantic analysis of the Fortran subset.
#include <gtest/gtest.h>

#include "panorama/ast/sema.h"
#include "panorama/frontend/parser.h"

namespace panorama {
namespace {

Program mustParse(std::string_view src) {
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  return p ? std::move(*p) : Program{};
}

SemaResult mustAnalyze(Program& p) {
  DiagnosticEngine diags;
  auto r = analyze(p, diags);
  EXPECT_TRUE(r.has_value()) << diags.str();
  return r ? std::move(*r) : SemaResult{};
}

TEST(LexerTest, TokenKinds) {
  DiagnosticEngine diags;
  auto toks = lex("x = a + 2.5e1 .and. i .le. 3 ** 2", diags);
  ASSERT_FALSE(diags.hasErrors());
  std::vector<TokKind> kinds;
  for (const Token& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokKind>{
                       TokKind::Ident, TokKind::Assign, TokKind::Ident, TokKind::Plus,
                       TokKind::RealLit, TokKind::And, TokKind::Ident, TokKind::Le,
                       TokKind::IntLit, TokKind::Power, TokKind::IntLit, TokKind::Newline,
                       TokKind::Eof}));
}

TEST(LexerTest, DottedOperatorsAfterNumber) {
  DiagnosticEngine diags;
  auto toks = lex("if (kc.NE.0) goto 2", diags);
  ASSERT_FALSE(diags.hasErrors());
  bool sawNe = false;
  for (const Token& t : toks) sawNe = sawNe || t.kind == TokKind::Ne;
  EXPECT_TRUE(sawNe);
}

TEST(LexerTest, CommentsAndContinuation) {
  DiagnosticEngine diags;
  auto toks = lex("C a classic comment line\n x = 1 + &\n     2   ! trailing\n", diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.str();
  int idents = 0;
  int ints = 0;
  for (const Token& t : toks) {
    idents += t.kind == TokKind::Ident;
    ints += t.kind == TokKind::IntLit;
  }
  EXPECT_EQ(idents, 1);
  EXPECT_EQ(ints, 2);
}

TEST(LexerTest, CaseInsensitive) {
  DiagnosticEngine diags;
  auto toks = lex("SuBrOuTiNe FOO", diags);
  EXPECT_EQ(toks[0].text, "subroutine");
  EXPECT_EQ(toks[1].text, "foo");
}

TEST(ParserTest, MinimalProgram) {
  Program p = mustParse(R"(
      program main
      integer i
      i = 1
      end
  )");
  ASSERT_EQ(p.procedures.size(), 1u);
  EXPECT_TRUE(p.procedures[0].isMain);
  EXPECT_EQ(p.procedures[0].name, "main");
  ASSERT_EQ(p.procedures[0].body.size(), 1u);
  EXPECT_EQ(p.procedures[0].body[0]->kind, Stmt::Kind::Assign);
}

TEST(ParserTest, DeclarationForms) {
  Program p = mustParse(R"(
      program d
      integer n, m
      parameter (n = 100, m = 2*n)
      real a(n), b(0:n, 1:m)
      dimension c(10)
      integer c
      logical flag
      common /shared/ a, b
      end
  )");
  const Procedure& proc = p.procedures[0];
  ASSERT_EQ(proc.paramConsts.size(), 2u);
  const VarDecl* a = proc.findDecl("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->dims.size(), 1u);
  const VarDecl* b = proc.findDecl("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->dims.size(), 2u);
  const VarDecl* c = proc.findDecl("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->type, BaseType::Integer);
  EXPECT_EQ(c->dims.size(), 1u);
  ASSERT_EQ(proc.commons.size(), 1u);
  EXPECT_EQ(proc.commons[0].name, "shared");
}

TEST(ParserTest, DoLoopForms) {
  Program p = mustParse(R"(
      program loops
      real a(100)
      do i = 1, 10
        a(i) = 0
      enddo
      do 100 j = 1, 20, 2
        a(j) = 1
 100  continue
      do k = 10, 1, -1
        a(k) = 2
      end do
      end
  )");
  const auto& body = p.procedures[0].body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->kind, Stmt::Kind::Do);
  EXPECT_EQ(body[0]->doVar, "i");
  EXPECT_EQ(body[0]->body.size(), 1u);
  // Labeled DO: terminating CONTINUE belongs to the body.
  EXPECT_EQ(body[1]->kind, Stmt::Kind::Do);
  ASSERT_EQ(body[1]->body.size(), 2u);
  EXPECT_EQ(body[1]->body[1]->kind, Stmt::Kind::Continue);
  EXPECT_EQ(body[1]->body[1]->label, 100);
  ASSERT_TRUE(body[1]->step != nullptr);
  EXPECT_EQ(body[2]->kind, Stmt::Kind::Do);
}

TEST(ParserTest, IfForms) {
  Program p = mustParse(R"(
      program ifs
      real a(10)
      integer i, n
      if (n .gt. 0) a(1) = 1
      if (n .gt. 1) then
        a(2) = 2
      else if (n .gt. 2) then
        a(3) = 3
      else
        a(4) = 4
      endif
      if (.not. (n .eq. 5)) then
        a(5) = 5
      end if
      end
  )");
  const auto& body = p.procedures[0].body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->kind, Stmt::Kind::If);
  EXPECT_TRUE(body[0]->elseBody.empty());
  ASSERT_EQ(body[1]->elseBody.size(), 1u);
  EXPECT_EQ(body[1]->elseBody[0]->kind, Stmt::Kind::If);  // nested ELSE IF
  EXPECT_EQ(body[1]->elseBody[0]->elseBody.size(), 1u);   // the final ELSE
}

TEST(ParserTest, GotoAndLabels) {
  Program p = mustParse(R"(
      program g
      integer kc
      if (kc .ne. 0) goto 2
      kc = 1
 2    continue
      go to 3
 3    continue
      end
  )");
  const auto& body = p.procedures[0].body;
  ASSERT_EQ(body.size(), 5u);
  EXPECT_EQ(body[0]->thenBody[0]->kind, Stmt::Kind::Goto);
  EXPECT_EQ(body[0]->thenBody[0]->gotoLabel, 2);
  EXPECT_EQ(body[1]->kind, Stmt::Kind::Assign);
  EXPECT_EQ(body[2]->label, 2);
  EXPECT_EQ(body[3]->kind, Stmt::Kind::Goto);
  EXPECT_EQ(body[3]->gotoLabel, 3);
  EXPECT_EQ(body[4]->label, 3);
}

TEST(ParserTest, SubroutineAndCall) {
  Program p = mustParse(R"(
      program main
      real a(10)
      integer x, m
      call work(a, x, m)
      end
      subroutine work(b, y, mm)
      real b(*)
      integer y, mm
      if (y .gt. 5) return
      do j = 1, mm
        b(j) = 0
      enddo
      end
  )");
  ASSERT_EQ(p.procedures.size(), 2u);
  EXPECT_EQ(p.procedures[0].body[0]->kind, Stmt::Kind::Call);
  EXPECT_EQ(p.procedures[0].body[0]->args.size(), 3u);
  EXPECT_EQ(p.procedures[1].params.size(), 3u);
}

TEST(ParserTest, ExpressionPrecedence) {
  DiagnosticEngine diags;
  ExprPtr e = parseExpression("1 + 2 * 3 .lt. n .and. .not. p", diags);
  ASSERT_TRUE(e != nullptr) << diags.str();
  // ((1 + (2*3)) < n) .and. (.not. p)
  EXPECT_EQ(toString(*e), "(((1 + (2*3)) .lt. n) .and. (.not. p))");
}

TEST(ParserTest, SyntaxErrorReported) {
  DiagnosticEngine diags;
  auto p = parseProgram("program x\n i = (1 + \n end\n", diags);
  EXPECT_FALSE(p.has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, SymbolResolution) {
  Program p = mustParse(R"(
      program s
      integer n
      real a(100)
      do i = 1, n
        a(i) = i
      enddo
      end
  )");
  SemaResult r = mustAnalyze(p);
  const ProcSymbols& sym = r.procs.at("s");
  EXPECT_TRUE(sym.isArray("a"));
  EXPECT_TRUE(sym.isScalar("n"));
  EXPECT_TRUE(sym.isScalar("i"));  // implicit
  EXPECT_EQ(sym.typeOf("i"), BaseType::Integer);
  EXPECT_EQ(sym.typeOf("a"), BaseType::Real);
  const ArrayShape& shape = r.arrays.shape(*sym.arrayId("a"));
  EXPECT_EQ(shape.rank(), 1);
  EXPECT_EQ(shape.declaredDims[0].up.constantValue(), 100);
}

TEST(SemaTest, IntrinsicClassification) {
  Program p = mustParse(R"(
      program s
      real a(10)
      integer i
      a(1) = max(i, 3) + abs(i)
      end
  )");
  SemaResult r = mustAnalyze(p);
  const Expr& rhs = *p.procedures[0].body[0]->rhs;
  EXPECT_EQ(rhs.args[0]->kind, Expr::Kind::Intrinsic);
  EXPECT_EQ(rhs.args[1]->kind, Expr::Kind::Intrinsic);
}

TEST(SemaTest, UndeclaredArrayIsError) {
  Program p = mustParse(R"(
      program s
      x = q(3)
      end
  )");
  DiagnosticEngine diags;
  EXPECT_FALSE(analyze(p, diags).has_value());
  EXPECT_TRUE(diags.hasErrors());
}

TEST(SemaTest, CommonUnifiesAcrossProcedures) {
  Program p = mustParse(R"(
      program main
      real w(50)
      common /pool/ w
      call touch
      end
      subroutine touch
      real w(50)
      common /pool/ w
      w(1) = 0
      end
  )");
  SemaResult r = mustAnalyze(p);
  EXPECT_EQ(*r.procs.at("main").arrayId("w"), *r.procs.at("touch").arrayId("w"));
}

TEST(SemaTest, LocalArraysStayDistinct) {
  Program p = mustParse(R"(
      program main
      real w(50)
      call touch
      end
      subroutine touch
      real w(50)
      w(1) = 0
      end
  )");
  SemaResult r = mustAnalyze(p);
  EXPECT_NE(*r.procs.at("main").arrayId("w"), *r.procs.at("touch").arrayId("w"));
}

TEST(SemaTest, CallGraphBottomUpOrder) {
  Program p = mustParse(R"(
      program main
      call a
      end
      subroutine a
      call b
      end
      subroutine b
      x = 1
      end
  )");
  SemaResult r = mustAnalyze(p);
  ASSERT_EQ(r.bottomUpOrder.size(), 3u);
  EXPECT_EQ(r.bottomUpOrder[0]->name, "b");
  EXPECT_EQ(r.bottomUpOrder[1]->name, "a");
  EXPECT_EQ(r.bottomUpOrder[2]->name, "main");
}

TEST(SemaTest, RecursionRejected) {
  Program p = mustParse(R"(
      program main
      call a
      end
      subroutine a
      call a
      end
  )");
  DiagnosticEngine diags;
  EXPECT_FALSE(analyze(p, diags).has_value());
}

TEST(SemaTest, ArityMismatchRejected) {
  Program p = mustParse(R"(
      program main
      call a(1)
      end
      subroutine a(x, y)
      end
  )");
  DiagnosticEngine diags;
  EXPECT_FALSE(analyze(p, diags).has_value());
}

TEST(SemaTest, LowerIntExpressions) {
  Program p = mustParse(R"(
      program s
      integer n, m
      parameter (m = 10)
      n = 1
      end
  )");
  SemaResult r = mustAnalyze(p);
  const ProcSymbols& sym = r.procs.at("s");
  DiagnosticEngine diags;

  auto lower = [&](std::string_view src) {
    ExprPtr e = parseExpression(src, diags);
    EXPECT_TRUE(e != nullptr);
    return lowerInt(*e, sym);
  };
  EXPECT_EQ(lower("2 + 3 * 4").constantValue(), 14);
  EXPECT_EQ(lower("m + 1").constantValue(), 11);  // PARAMETER folded
  SymExpr e1 = lower("2 * n - 1");
  EXPECT_EQ(e1.affineCoeff(*sym.scalarId("n")), 2);
  EXPECT_EQ(lower("n ** 2").degree(), 2);
  EXPECT_EQ(lower("(4 * n) / 2").affineCoeff(*sym.scalarId("n")), 2);
  EXPECT_TRUE(lower("n / 2").isPoisoned());      // inexact integer division
  EXPECT_TRUE(lower("max(n, 1)").isPoisoned());  // intrinsics are opaque
}

TEST(SemaTest, LowerCondIntegerVsReal) {
  Program p = mustParse(R"(
      program s
      integer i, n
      real x, cut
      logical flag
      i = 1
      end
  )");
  SemaResult r = mustAnalyze(p);
  const ProcSymbols& sym = r.procs.at("s");
  DiagnosticEngine diags;
  auto lower = [&](std::string_view src) {
    ExprPtr e = parseExpression(src, diags);
    EXPECT_TRUE(e != nullptr);
    return lowerCond(*e, sym);
  };

  // Integer comparison: strict < becomes the tightened integer atom.
  Pred pi = lower("i .lt. n");
  ASSERT_EQ(pi.clauses().size(), 1u);
  EXPECT_EQ(pi.clauses()[0].atoms[0].op(), RelOp::LE);

  // Real comparison: uninterpreted strict atom.
  Pred pr = lower("x .gt. cut");
  ASSERT_EQ(pr.clauses().size(), 1u);
  EXPECT_EQ(pr.clauses()[0].atoms[0].op(), RelOp::RLT);

  // Negation of a real comparison complements exactly.
  Pred nr = lower(".not. (x .gt. cut)");
  EXPECT_TRUE((pr && nr).provablyFalse() == Truth::True);

  // Logical variable.
  Pred pf = lower(".not. flag");
  ASSERT_EQ(pf.clauses().size(), 1u);
  EXPECT_EQ(pf.clauses()[0].atoms[0].kind(), Atom::Kind::LogVar);

  // Array reference in a condition: Δ (the paper's implementation limit).
  Program p2 = mustParse(R"(
      program t
      real b(10), cut
      b(1) = 0
      end
  )");
  SemaResult r2 = mustAnalyze(p2);
  ExprPtr e = parseExpression("b(1) .gt. cut", diags);
  EXPECT_TRUE(lowerCond(*e, r2.procs.at("t")).isUnknown());
}

TEST(SemaTest, PrinterRoundTrip) {
  Program p = mustParse(R"(
      program rt
      real a(10)
      do i = 1, 10
        if (i .gt. 5) a(i) = i + 1
      enddo
      end
  )");
  std::string printed = toString(p);
  // The printed form must re-parse to the same shape.
  Program p2 = mustParse(printed);
  EXPECT_EQ(toString(p2), printed);
}

}  // namespace
}  // namespace panorama
