// Integration tests for the application layer (§3.2): array privatization
// and loop parallelization, including the paper's three motivating cases
// (Figure 1) and the T1/T2/T3 ablation behaviour.
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/frontend/parser.h"

namespace panorama {
namespace {

struct AnalysisRun {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
  std::vector<LoopAnalysis> loops;

  /// The analysis of the `index`-th outermost loop of `procName`.
  const LoopAnalysis& loop(std::string_view procName, std::size_t index = 0) const {
    std::size_t seen = 0;
    for (const LoopAnalysis& la : loops) {
      if (la.procName != procName) continue;
      // analyzeProgram visits outer loops before their nested loops.
      if (seen++ == index) return la;
    }
    ADD_FAILURE() << "loop not found in " << procName;
    static LoopAnalysis dummy;
    return dummy;
  }
};

AnalysisRun runAnalysis(std::string_view src, AnalysisOptions options = {}) {
  AnalysisRun r;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  r.program = std::move(*p);
  auto sr = analyze(r.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  r.sema = std::move(*sr);
  r.hsg = buildHsg(r.program, r.sema, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  r.analyzer = std::make_unique<SummaryAnalyzer>(r.program, r.sema, r.hsg, options);
  LoopParallelizer lp(*r.analyzer);
  r.loops = lp.analyzeProgram();
  return r;
}

const ArrayPrivatization* findArray(const LoopAnalysis& la, std::string_view name) {
  for (const ArrayPrivatization& ap : la.arrays)
    if (ap.name == name) return &ap;
  return nullptr;
}

TEST(AnalysisTest, IndependentWritesAreParallel) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n
      do i = 1, n
        a(i) = b(i) + 1
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  EXPECT_EQ(la.classification, LoopClass::Parallel);
  EXPECT_EQ(la.noCarriedFlow, Truth::True);
  EXPECT_EQ(la.noCarriedOutput, Truth::True);
  EXPECT_EQ(la.noCarriedAnti, Truth::True);
}

TEST(AnalysisTest, RecurrenceIsSerial) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, n)
      real a(100)
      integer n
      do i = 2, n
        a(i) = a(i - 1) + 1
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  EXPECT_EQ(la.classification, LoopClass::Serial);
  EXPECT_NE(la.noCarriedFlow, Truth::True);
}

TEST(AnalysisTest, AntiDependenceDetected) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, n)
      real a(100)
      integer n
      do i = 1, n
        a(i) = a(i + 1)
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  EXPECT_EQ(la.classification, LoopClass::Serial);
  EXPECT_EQ(la.noCarriedFlow, Truth::True);   // reads come from *later* iterations
  EXPECT_NE(la.noCarriedAnti, Truth::True);
}

TEST(AnalysisTest, WorkArrayIsPrivatizable) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, b, c, n, m)
      real a(100), b(100), c(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = b(j) * i
        enddo
        do j = 1, m
          c(i) = c(i) + a(j)
        enddo
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");  // the i loop
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->candidate);
  EXPECT_TRUE(ap->privatizable);
  EXPECT_EQ(la.classification, LoopClass::ParallelAfterPrivatization);
}

TEST(AnalysisTest, ExposedWorkArrayIsNotPrivatizable) {
  // The first read happens before the iteration's writes: values flow from
  // the previous iteration.
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, c, n, m)
      real a(100), c(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          c(j) = c(j) + a(j)
        enddo
        do j = 1, m
          a(j) = c(j) * i
        enddo
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->candidate);
  EXPECT_FALSE(ap->privatizable);
  EXPECT_EQ(la.classification, LoopClass::Serial);
}

TEST(AnalysisTest, CopyOutDetection) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, c, n, m, x)
      real a(100), c(100), x
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          c(j) = c(j) + a(j)
        enddo
      enddo
      x = a(1)
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->privatizable);
  EXPECT_TRUE(ap->needsCopyOut);  // a(1) is read after the loop
}

TEST(AnalysisTest, NoCopyOutWhenDeadAfterLoop) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(c, n, m)
      real c(100)
      real a(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          c(j) = c(j) + a(j)
        enddo
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->privatizable);
  EXPECT_FALSE(ap->needsCopyOut);
}

TEST(AnalysisTest, EscapingArrayNeedsCopyOut) {
  // A *formal* work array may be read by the caller: the local liveness
  // probe cannot clear it, so privatization must carry a last-value copy.
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, c, n, m)
      real a(100), c(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          c(i) = c(i) + a(j)
        enddo
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->privatizable);
  EXPECT_TRUE(ap->needsCopyOut);
}

TEST(AnalysisTest, IterationDependentGuardBlocksLastValueCopy) {
  // The writes stop after iteration k: the final iteration may not rewrite
  // the (live, escaping) array, so a last-value copy is wrong — the
  // analysis must refuse to privatize.
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, c, n, m, k)
      real a(100), c(100)
      integer n, m, k
      do i = 1, n
        if (i .le. k) then
          do j = 1, m
            a(j) = i + j
          enddo
          do j = 1, m
            c(i) = c(i) + a(j)
          enddo
        endif
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_FALSE(ap->privatizable);
  // ... but the same shape with a LOCAL dead array is fine.
  AnalysisRun r2 = runAnalysis(R"(
      subroutine s(c, n, m, k)
      real c(100)
      real a(100)
      integer n, m, k
      do i = 1, n
        if (i .le. k) then
          do j = 1, m
            a(j) = i + j
          enddo
          do j = 1, m
            c(i) = c(i) + a(j)
          enddo
        endif
      enddo
      end
  )");
  const ArrayPrivatization* ap2 = findArray(r2.loop("s"), "a");
  ASSERT_NE(ap2, nullptr);
  EXPECT_TRUE(ap2->privatizable);
  EXPECT_FALSE(ap2->needsCopyOut);
}

TEST(AnalysisTest, ExposedScalarBlocksParallelization) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, n)
      real a(100)
      real t
      integer n
      do i = 1, n
        a(i) = t
        t = a(i) * 2
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  EXPECT_EQ(la.classification, LoopClass::Serial);
  ASSERT_EQ(la.scalars.size(), 1u);
  EXPECT_FALSE(la.scalars[0].privatizable);
}

TEST(AnalysisTest, SumReductionParallelizes) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, total, n)
      real a(100), total
      integer n
      do i = 1, n
        total = total + a(i)
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  ASSERT_EQ(la.scalars.size(), 1u);
  EXPECT_FALSE(la.scalars[0].privatizable);
  EXPECT_TRUE(la.scalars[0].reduction);
  EXPECT_EQ(la.scalars[0].reductionOp, '+');
  EXPECT_EQ(la.classification, LoopClass::Parallel);
}

TEST(AnalysisTest, ConditionalAndSubtractiveReductions) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, total, prod, n)
      real a(100), total, prod
      integer n
      do i = 1, n
        if (a(i) .gt. 0.0) then
          total = total - a(i)
        endif
        prod = prod * 2.0
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  EXPECT_EQ(la.classification, LoopClass::Parallel);
  for (const ScalarInfo& si : la.scalars) {
    EXPECT_TRUE(si.reduction) << si.name;
    EXPECT_EQ(si.reductionOp, si.name == "prod" ? '*' : '+');
  }
}

TEST(AnalysisTest, ObservedAccumulatorIsNotAReduction) {
  // `total` is read outside its accumulation: mid-loop observation defeats
  // the reduction transformation.
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, b, total, n)
      real a(100), b(100), total
      integer n
      do i = 1, n
        total = total + a(i)
        b(i) = total
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  ASSERT_EQ(la.scalars.size(), 1u);
  EXPECT_FALSE(la.scalars[0].reduction);
  EXPECT_EQ(la.classification, LoopClass::Serial);
}

TEST(AnalysisTest, MixedOpsAreNotAReduction) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, acc, n)
      real a(100), acc
      integer n
      do i = 1, n
        acc = acc + a(i)
        acc = acc * 2.0
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  ASSERT_EQ(la.scalars.size(), 1u);
  EXPECT_FALSE(la.scalars[0].reduction);
  EXPECT_EQ(la.classification, LoopClass::Serial);
}

TEST(AnalysisTest, PrivateScalarIsFine) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, n)
      real a(100)
      real t
      integer n
      do i = 1, n
        t = i * 2
        a(i) = t
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  EXPECT_EQ(la.classification, LoopClass::Parallel);
}

// ---------------------------------------------------------------------------
// The paper's motivating cases (Figure 1).
// ---------------------------------------------------------------------------

// Figure 1(b) — ARC2D filerx: a loop-invariant IF condition guards both the
// write and (complementarily) the exposure of A(jmax).
constexpr const char* kFig1b = R"(
      subroutine filerx(a, c, jlow, jup, jmax, p, n)
      real a(200), c(200)
      integer jlow, jup, jmax, n
      logical p
      do i = 1, n
        do j = jlow, jup
          a(j) = i
        enddo
        if (.not. p) then
          a(jmax) = i
        endif
        do j = jlow, jup
          c(j) = a(j) + a(jmax)
        enddo
      enddo
      end
)";

TEST(AnalysisTest, Fig1bPrivatizesA) {
  AnalysisRun r = runAnalysis(kFig1b);
  const LoopAnalysis& la = r.loop("filerx");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->candidate);
  EXPECT_TRUE(ap->privatizable) << ap->reason;
  EXPECT_EQ(la.classification, LoopClass::ParallelAfterPrivatization);
}

TEST(AnalysisTest, Fig1bNeedsIfConditions) {
  AnalysisOptions opt;
  opt.ifConditions = false;  // T2 off
  AnalysisRun r = runAnalysis(kFig1b, opt);
  const LoopAnalysis& la = r.loop("filerx");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_FALSE(ap->privatizable);
}

TEST(AnalysisTest, Fig1bNeedsSymbolicAnalysis) {
  AnalysisOptions opt;
  opt.symbolicAnalysis = false;  // T1 off: jlow/jup/jmax are symbolic
  AnalysisRun r = runAnalysis(kFig1b, opt);
  const LoopAnalysis& la = r.loop("filerx");
  const ArrayPrivatization* ap = findArray(la, "a");
  if (ap) {
    EXPECT_FALSE(ap->privatizable);
  }
}

// Figure 1(c) — OCEAN: interprocedural implication between the guards of
// the two callees.
constexpr const char* kFig1c = R"(
      subroutine ocean(c, n, m)
      real c(100)
      real a(100)
      integer n, m
      real x
      do i = 1, n
        x = i * 1.0
        call inp(a, x, m)
        call outp(a, c, x, m, i)
      enddo
      end
      subroutine inp(b, x, mm)
      real b(100)
      real x
      integer mm
      if (x .gt. 100.0) return
      do j = 1, mm
        b(j) = x
      enddo
      end
      subroutine outp(b, c, x, mm, ii)
      real b(100), c(100)
      real x
      integer mm, ii
      if (x .gt. 100.0) return
      do j = 1, mm
        c(ii) = c(ii) + b(j)
      enddo
      end
)";

TEST(AnalysisTest, Fig1cPrivatizesA) {
  AnalysisRun r = runAnalysis(kFig1c);
  const LoopAnalysis& la = r.loop("ocean");
  const ArrayPrivatization* ap = findArray(la, "a");
  ASSERT_NE(ap, nullptr);
  EXPECT_TRUE(ap->candidate);
  EXPECT_TRUE(ap->privatizable) << ap->reason;
  EXPECT_EQ(la.classification, LoopClass::ParallelAfterPrivatization);
}

TEST(AnalysisTest, Fig1cNeedsInterprocedural) {
  AnalysisOptions opt;
  opt.interprocedural = false;  // T3 off
  AnalysisRun r = runAnalysis(kFig1c, opt);
  const LoopAnalysis& la = r.loop("ocean");
  const ArrayPrivatization* ap = findArray(la, "a");
  if (ap) {
    EXPECT_FALSE(ap->privatizable);
  }
  EXPECT_EQ(la.classification, LoopClass::Serial);
}

// Figure 1(a) — MDG interf: needs inference between IF conditions across a
// conditionally-incremented counter. The base analysis (like the paper's)
// must stay conservative: `a` is NOT privatizable without the quantified
// extension, and crucially the analysis must not privatize it wrongly.
constexpr const char* kFig1a = R"(
      subroutine interf(a, b, c, nmol1, cut2)
      real a(20), b(20), c(20)
      integer nmol1, kc
      real cut2, ttemp
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k * i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = i
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          ttemp = a(k - 5) * 2
          c(k) = ttemp
        enddo
 2      continue
      enddo
      end
)";

TEST(AnalysisTest, Fig1aBaseAnalysisIsConservative) {
  AnalysisRun r = runAnalysis(kFig1a);
  const LoopAnalysis& la = r.loop("interf");
  const ArrayPrivatization* b = findArray(la, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->privatizable) << b->reason;  // the easy case, like the paper
  const ArrayPrivatization* a = findArray(la, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->candidate);
  EXPECT_FALSE(a->privatizable);  // §5.2: needs ∀ quantifiers — future work
}

TEST(AnalysisTest, ZeroTripAndUnknownBounds) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n, k
      k = n * n
      do i = 1, k
        a(i) = b(i)
      enddo
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  // Bounds are symbolic but representable (k = n*n substituted on the fly).
  EXPECT_TRUE(la.boundsKnown);
  EXPECT_EQ(la.classification, LoopClass::Parallel);
}

TEST(AnalysisTest, PrematureExitLoopStaysSafe) {
  AnalysisRun r = runAnalysis(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n
      do i = 1, n
        if (b(i) .gt. 0.0) goto 99
        a(i) = b(i)
      enddo
 99   continue
      end
  )");
  const LoopAnalysis& la = r.loop("s");
  // The analysis may or may not parallelize an early-exit loop, but it must
  // never claim privatization of `a` is needed, and `b` stays read-only.
  const ArrayPrivatization* b = findArray(la, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->written);
}

TEST(AnalysisTest, ReportFormatting) {
  AnalysisRun r = runAnalysis(kFig1b);
  std::string report = formatLoopAnalysis(r.loop("filerx"));
  EXPECT_NE(report.find("filerx"), std::string::npos);
  EXPECT_NE(report.find("privatizable"), std::string::npos);
}

}  // namespace
}  // namespace panorama
