// The observability subsystem: structured tracing (span nesting, per-thread
// buffer merge, the disabled fast path, Chrome trace-event JSON), the
// unified metrics registry, decision-provenance plumbing, and the golden
// byte-compatibility contract of the registry-driven corpus stats block.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <thread>

#include "panorama/analysis/driver.h"
#include "panorama/obs/metrics.h"
#include "panorama/obs/provenance.h"
#include "panorama/obs/trace.h"

namespace panorama {
namespace {

using obs::MetricsRegistry;
using obs::Span;
using obs::TraceEvent;
using obs::Tracer;

// ---------------------------------------------------------------------------
// A strict JSON syntax checker (no external deps): enough of RFC 8259 to
// reject anything chrome://tracing or a JSON consumer would reject.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool eat(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (eof()) return false;
        char e = text_[pos_++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) return false;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    std::size_t start = pos_;
    eat('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (peek() == '0') ++pos_;
    else
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool object() {
    if (!eat('{')) return false;
    skipWs();
    if (eat('}')) return true;
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (!eat(':')) return false;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skipWs();
    if (eat(']')) return true;
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, -2.5e3, "x\n\"yé"], "b": {}, "c": null})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1,})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": \"\x01\"}").valid());
  EXPECT_FALSE(JsonChecker(R"([1, 2)").valid());
  EXPECT_FALSE(JsonChecker(R"({} extra)").valid());
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Every tracing test starts and ends with a disabled, empty tracer so the
/// suite's tests cannot observe each other's events.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, SpanRecordsCategoryNameAndArgs) {
  Tracer::global().enable();
  {
    Span span("test.unit", "hello");
    ASSERT_TRUE(span.active());
    span.arg("key", "value");
    span.arg("k2", "v2");
  }
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].category, "test.unit");
  EXPECT_EQ(events[0].name, "hello");
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "key");
  EXPECT_EQ(events[0].args[0].second, "value");
  EXPECT_GE(events[0].durNs, 0);
}

TEST_F(TraceTest, NestedSpansAreContainedInTheirParent) {
  Tracer::global().enable();
  {
    Span outer("test.unit", "outer");
    {
      Span inner("test.unit", "inner");
    }
  }
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // snapshot orders by (tid, start): the outer span starts first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].startNs, events[1].startNs);
  EXPECT_GE(events[0].startNs + events[0].durNs, events[1].startNs + events[1].durNs);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(Tracer::global().enabled());
  {
    Span span("test.unit", "ghost");
    EXPECT_FALSE(span.active());
    span.arg("key", "value");  // must be a no-op, not a crash
  }
  EXPECT_EQ(Tracer::global().eventCount(), 0u);
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

TEST_F(TraceTest, EnableMidstreamOnlyCapturesLaterSpans) {
  { Span before("test.unit", "before"); }
  Tracer::global().enable();
  { Span after("test.unit", "after"); }
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after");
}

TEST_F(TraceTest, PerThreadBuffersMergeAcrossManyThreadsAndChunks) {
  Tracer::global().enable();
  // More events per thread than one chunk holds, to cross chunk boundaries.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = Tracer::kChunkSize * 2 + 7;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      std::string name("t");
      name += std::to_string(t);
      for (std::size_t k = 0; k < kPerThread; ++k) Span span("test.thread", name);
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  // Events are grouped by tid and time-ordered within each tid; each
  // thread's own events all carry that thread's tid.
  std::map<std::uint32_t, std::size_t> perTid;
  for (std::size_t k = 0; k < events.size(); ++k) {
    ++perTid[events[k].tid];
    if (k > 0 && events[k].tid == events[k - 1].tid) {
      EXPECT_GE(events[k].startNs, events[k - 1].startNs);
    }
  }
  ASSERT_EQ(perTid.size(), kThreads);
  for (const auto& [tid, n] : perTid) EXPECT_EQ(n, kPerThread);
}

TEST_F(TraceTest, ClearDropsEventsAndBuffersReRegister) {
  Tracer::global().enable();
  { Span span("test.unit", "first"); }
  ASSERT_EQ(Tracer::global().eventCount(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().eventCount(), 0u);
  // The calling thread's cached buffer belongs to the old generation; the
  // next span must re-register rather than write into a detached buffer.
  { Span span("test.unit", "second"); }
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second");
}

TEST_F(TraceTest, ChromeTraceJsonIsSchemaValidAndEscaped) {
  Tracer::global().enable();
  {
    Span span("test.unit", "quote\" slash\\ newline\n tab\t ctrl\x01 done");
    span.arg("arg \"key\"", "value\\with\nescapes");
  }
  std::string json = Tracer::global().chromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"test.unit\""), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);  // control char escaped
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  std::string json = Tracer::global().chromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST_F(TraceTest, ClearStraddlingSpanIsClampedNotNegative) {
  Tracer::global().enable();
  {
    Span span("test.unit", "straddle");
    ASSERT_TRUE(span.active());
    // clear() re-bases the epoch underneath the open span: its raw duration
    // would be negative. The span must land in the *new* generation with a
    // clamped, non-negative duration.
    Tracer::global().clear();
  }
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "straddle");
  EXPECT_GE(events[0].durNs, 0);
  std::string json = Tracer::global().chromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.find("\"dur\": -"), std::string::npos) << json;
}

TEST_F(TraceTest, DisableStraddlingSpanIsStillRecorded) {
  Tracer::global().enable();
  {
    Span span("test.unit", "tail");
    Tracer::global().disable();
  }
  // Only construction consults the enabled flag; an open span always lands.
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "tail");
}

TEST_F(TraceTest, ChromeExportTimesArePerTidMonotonicWithNonNegativeDurations) {
  Tracer::global().enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      for (int k = 0; k < 20; ++k) {
        Span outer("test.thread", "outer");
        Span inner("test.thread", "inner");
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Exported events must satisfy what chrome://tracing assumes of complete
  // ("X") events: one per line here, non-negative dur, ts non-decreasing
  // within each tid track.
  std::string json = Tracer::global().chromeTraceJson();
  ASSERT_TRUE(JsonChecker(json).valid());
  std::map<unsigned, double> lastTs;
  std::size_t parsed = 0;
  std::size_t pos = 0;
  while ((pos = json.find("{\"ph\": \"X\"", pos)) != std::string::npos) {
    unsigned tid = 0;
    double ts = -1, dur = -1;
    ASSERT_EQ(std::sscanf(json.c_str() + pos,
                          "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %lf, \"dur\": %lf",
                          &tid, &ts, &dur),
              3)
        << json.substr(pos, 80);
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(dur, 0.0);
    auto [it, fresh] = lastTs.try_emplace(tid, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second) << "tid " << tid;
      it->second = ts;
    }
    ++parsed;
    ++pos;
  }
  EXPECT_EQ(parsed, 3u * 20u * 2u);
  EXPECT_EQ(lastTs.size(), 3u);
}

TEST_F(TraceTest, TracedParallelCorpusRunMatchesUntracedVerdicts) {
  // The TSan-covered stress path: a full multi-threaded corpus run with
  // tracing enabled, while a reader polls snapshots concurrently. Tracing
  // must not perturb a single verdict.
  AnalysisOptions options;
  options.numThreads = 4;
  CorpusAnalysisResult untraced = analyzeCorpusParallel(options);

  Tracer::global().enable();
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::size_t polls = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<TraceEvent> events = Tracer::global().snapshot();
      for (std::size_t k = 1; k < events.size(); ++k) {
        if (events[k].tid == events[k - 1].tid) {
          ASSERT_GE(events[k].startNs, events[k - 1].startNs);
        }
      }
      ++polls;
      std::this_thread::yield();
    }
    EXPECT_GT(polls, 0u);
  });
  CorpusAnalysisResult traced = analyzeCorpusParallel(options);
  done.store(true, std::memory_order_release);
  reader.join();
  Tracer::global().disable();

  EXPECT_GT(Tracer::global().eventCount(), 0u);
  ASSERT_EQ(traced.loops.size(), untraced.loops.size());
  for (std::size_t k = 0; k < traced.loops.size(); ++k) {
    EXPECT_EQ(traced.loops[k].classification, untraced.loops[k].classification)
        << traced.loops[k].kernelId;
    EXPECT_EQ(traced.loops[k].report, untraced.loops[k].report);
    EXPECT_EQ(traced.loops[k].provenance, untraced.loops[k].provenance);
  }
  // The run produced the span taxonomy the DESIGN documents.
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  std::set<std::string> categories;
  for (const TraceEvent& e : events) categories.insert(e.category);
  EXPECT_TRUE(categories.count("corpus.run"));
  EXPECT_TRUE(categories.count("corpus.kernel"));
  EXPECT_TRUE(categories.count("analysis.loop"));
  EXPECT_TRUE(categories.count("summary.proc"));
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAddAndSet) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  c.set(42);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, HistogramTracksMomentsAndLog2Buckets) {
  obs::Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) h.observe(v);
  obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1006u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1006.0 / 5.0);
  EXPECT_EQ(s.buckets[0], 1u);   // v == 0
  EXPECT_EQ(s.buckets[1], 1u);   // v == 1
  EXPECT_EQ(s.buckets[2], 2u);   // v in [2, 3]
  EXPECT_EQ(s.buckets[10], 1u);  // 1000 needs 10 bits
  h.reset();
  s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(MetricsTest, RegistryInternsByNameWithStableAddresses) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("alpha");
  obs::Counter& b = reg.counter("beta");
  a.add(7);
  EXPECT_EQ(&reg.counter("alpha"), &a);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(reg.counterValue("alpha"), std::optional<std::uint64_t>(7));
  EXPECT_EQ(reg.counterValue("missing"), std::nullopt);
  obs::Histogram& h = reg.histogram("hist");
  h.observe(4);
  EXPECT_EQ(&reg.histogram("hist"), &h);
  reg.reset();
  EXPECT_EQ(reg.counterValue("alpha"), std::optional<std::uint64_t>(0));
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(MetricsTest, JsonDumpIsValidAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").set(2);
  reg.counter("a.first").set(1);
  reg.histogram("latency").observe(5);
  std::string json = reg.toJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  MetricsRegistry empty;
  EXPECT_TRUE(JsonChecker(empty.toJson()).valid());
}

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  MetricsRegistry reg;
  constexpr std::size_t kThreads = 8, kIters = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      for (std::size_t k = 0; k < kIters; ++k) reg.counter("shared").add();
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.counterValue("shared"), std::optional<std::uint64_t>(kThreads * kIters));
}

TEST(MetricsTest, RenderCacheCountersMatchesHistoricalFormats) {
  // rateDecimals=1 is the query-cache line; rateDecimals=0 is the simplify
  // memo's truncated integer percent. Both formats are frozen.
  EXPECT_EQ(obs::renderCacheCounters("query cache", 997, 3, 3, 1, 1),
            "query cache: 997 hits / 3 misses (99.7% hit rate), 3 entries, 1 evictions");
  EXPECT_EQ(obs::renderCacheCounters("simplify memo", 665, 335, 335, 0, 0),
            "simplify memo: 665 hits / 335 misses (66% hit rate), 335 entries, 0 evictions");
  EXPECT_EQ(obs::renderCacheCounters("query cache", 0, 0, 0, 0, 1),
            "query cache: 0 hits / 0 misses (0.0% hit rate), 0 entries, 0 evictions");
}

TEST(MetricsTest, RenderSummaryCostMatchesHistoricalFormat) {
  EXPECT_EQ(obs::renderSummaryCost(87, 47, 28, 9, 1502),
            "summary cost: 87 block steps, 47 loop expansions, 28 call mappings, "
            "peak list length 9, 1502 GARs created");
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

TEST(ProvenanceTest, ScopeRoutesNotesAndNestingRestores) {
  EXPECT_FALSE(obs::ProvenanceScope::active());
  obs::ProvenanceScope::note("fm", "dropped on the floor");  // no sink: no-op

  obs::DecisionTrail outer, inner;
  {
    obs::ProvenanceScope outerScope(outer, "outer-test");
    EXPECT_TRUE(obs::ProvenanceScope::active());
    obs::ProvenanceScope::note("fm", "first");
    {
      obs::ProvenanceScope innerScope(inner, "inner-test");
      obs::ProvenanceScope::note("implies", "second");
    }
    obs::ProvenanceScope::note("fm", "third");
  }
  EXPECT_FALSE(obs::ProvenanceScope::active());

  ASSERT_EQ(outer.notes.size(), 2u);
  EXPECT_EQ(outer.notes[0].scope, "outer-test");
  EXPECT_EQ(outer.notes[0].source, "fm");
  EXPECT_EQ(outer.notes[0].detail, "first");
  EXPECT_EQ(outer.notes[1].detail, "third");
  ASSERT_EQ(inner.notes.size(), 1u);
  EXPECT_EQ(inner.notes[0].scope, "inner-test");
  EXPECT_EQ(inner.notes[0].source, "implies");
}

TEST(ProvenanceTest, TrailFiltersByKind) {
  obs::DecisionTrail trail;
  trail.add(obs::EvidenceKind::Candidacy, "a", Truth::True);
  trail.add(obs::EvidenceKind::FlowTest, "a", Truth::Unknown, "detail");
  trail.add(obs::EvidenceKind::Candidacy, "b", Truth::False);
  EXPECT_FALSE(trail.empty());
  EXPECT_EQ(trail.ofKind(obs::EvidenceKind::Candidacy).size(), 2u);
  ASSERT_EQ(trail.ofKind(obs::EvidenceKind::FlowTest).size(), 1u);
  EXPECT_EQ(trail.ofKind(obs::EvidenceKind::FlowTest)[0]->detail, "detail");
  EXPECT_TRUE(trail.ofKind(obs::EvidenceKind::Classification).empty());
}

TEST(ProvenanceTest, EvidenceIsIdenticalAcrossThreadCountsAndCaching) {
  // The determinism contract of the evidence tier: same trails regardless
  // of thread count or cache configuration (notes are exempt by design).
  AnalysisOptions serial;
  serial.numThreads = 1;
  AnalysisOptions parallel4;
  parallel4.numThreads = 4;
  AnalysisOptions uncached;
  uncached.numThreads = 4;
  uncached.cacheCapacity = 0;
  CorpusAnalysisResult base = analyzeCorpusParallel(serial);
  for (const AnalysisOptions& options : {parallel4, uncached}) {
    CorpusAnalysisResult other = analyzeCorpusParallel(options);
    ASSERT_EQ(other.loops.size(), base.loops.size());
    for (std::size_t k = 0; k < base.loops.size(); ++k) {
      EXPECT_EQ(other.loops[k].provenanceSummary, base.loops[k].provenanceSummary)
          << base.loops[k].kernelId;
      EXPECT_EQ(other.loops[k].provenanceEvidenceCount, base.loops[k].provenanceEvidenceCount)
          << base.loops[k].kernelId;
    }
  }
}

// ---------------------------------------------------------------------------
// The corpus stats block: registry-driven, byte-compatible with the
// historical hand-formatted rendering (the golden contract of this PR).
// ---------------------------------------------------------------------------

CorpusAnalysisResult fabricatedResult() {
  CorpusAnalysisResult result;
  CorpusRoutineResult a, b, c;
  a.classification = LoopClass::Parallel;
  b.classification = LoopClass::ParallelAfterPrivatization;
  c.classification = LoopClass::Serial;
  b.provenanceEvidenceCount = 5;
  result.loops = {a, b, c};
  result.threadsUsed = 4;
  result.summaryStats.blockSteps = 87;
  result.summaryStats.loopExpansions = 47;
  result.summaryStats.callMappings = 28;
  result.summaryStats.peakListLength = 9;
  result.summaryStats.garsCreated = 1502;
  result.cacheStats.hits = 997;
  result.cacheStats.misses = 3;
  result.cacheStats.entries = 3;
  result.cacheStats.evictions = 1;
  result.simplifyStats.hits = 665;  // 66.5%: exposes rounded-vs-truncated
  result.simplifyStats.misses = 335;
  result.simplifyStats.entries = 335;
  result.simplifyStats.evictions = 0;
  return result;
}

TEST(CorpusStatsTest, GoldenByteCompatibleRendering) {
  const std::string expected =
      "corpus: 3 loops analyzed on 4 threads — 1 parallel, "
      "1 parallel after privatization, 1 serial\n"
      "summary cost: 87 block steps, 47 loop expansions, 28 call mappings, "
      "peak list length 9, 1502 GARs created\n"
      "query cache: 997 hits / 3 misses (99.7% hit rate), 3 entries, 1 evictions\n"
      "simplify memo: 665 hits / 335 misses (66% hit rate), 335 entries, 0 evictions\n";
  EXPECT_EQ(formatCorpusStats(fabricatedResult()), expected);
}

TEST(CorpusStatsTest, SingularThreadSpelling) {
  CorpusAnalysisResult result = fabricatedResult();
  result.threadsUsed = 1;
  std::string text = formatCorpusStats(result);
  EXPECT_NE(text.find("on 1 thread —"), std::string::npos) << text;
  EXPECT_EQ(text.find("1 threads"), std::string::npos) << text;
}

TEST(CorpusStatsTest, PublishingFillsTheGlobalRegistryForMetricsDumps) {
  std::string ignored = formatCorpusStats(fabricatedResult());
  MetricsRegistry& reg = MetricsRegistry::global();
  EXPECT_EQ(reg.counterValue("corpus.loops"), std::optional<std::uint64_t>(3));
  EXPECT_EQ(reg.counterValue("corpus.parallel_after_privatization"),
            std::optional<std::uint64_t>(1));
  EXPECT_EQ(reg.counterValue("provenance.evidence"), std::optional<std::uint64_t>(5));
  EXPECT_EQ(reg.counterValue("query_cache.hits"), std::optional<std::uint64_t>(997));
  EXPECT_EQ(reg.counterValue("simplify_memo.misses"), std::optional<std::uint64_t>(335));
  EXPECT_TRUE(JsonChecker(reg.toJson()).valid());
}

}  // namespace
}  // namespace panorama
