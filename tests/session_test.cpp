// Lifecycle guarantees of the incremental analysis session:
//   * a warm re-submit after an edit produces reports byte-identical to a
//     cold analysis of the edited source, at 1 and 4+ threads;
//   * invalidation is transitive through the summary dependency graph —
//     editing a leaf re-summarizes the leaf and every transitive caller
//     while siblings keep their cached summaries and epochs;
//   * identical resubmission recomputes nothing;
//   * procedure add/remove dirties only the affected unit;
//   * an ablation-relevant options change invalidates everything once.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "panorama/obs/metrics.h"
#include "panorama/session/session.h"
#include "panorama/support/memo_cache.h"

namespace panorama {
namespace {

/// Restores the global cache to its default configuration when a test ends,
/// so test order never matters.
struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

// A diamond-free call chain main -> top -> mid -> leaf plus a sibling that
// main calls directly. `leaf` is textually last so edits to it cannot shift
// any other procedure's line numbers (see the line-number note in
// session/session.h).
const char* kBase = R"(
      program main
      real a(100)
      real b(100)
      do i = 1, 100
        a(i) = 0.0
      enddo
      call sib(b)
      call top(a)
      end
      subroutine sib(s)
      real s(100)
      do i = 1, 100
        s(i) = 1.0
      enddo
      end
      subroutine top(t)
      real t(100)
      call mid(t)
      end
      subroutine mid(m)
      real m(100)
      call leaf(m)
      end
      subroutine leaf(x)
      real x(100)
      do i = 1, 100
        x(i) = 2.0
      enddo
      end
)";

// Same program with the leaf's loop body changed.
const char* kLeafEdited = R"(
      program main
      real a(100)
      real b(100)
      do i = 1, 100
        a(i) = 0.0
      enddo
      call sib(b)
      call top(a)
      end
      subroutine sib(s)
      real s(100)
      do i = 1, 100
        s(i) = 1.0
      enddo
      end
      subroutine top(t)
      real t(100)
      call mid(t)
      end
      subroutine mid(m)
      real m(100)
      call leaf(m)
      end
      subroutine leaf(x)
      real x(100)
      do i = 1, 100
        x(i) = 3.0
      enddo
      end
)";

std::string render(const SessionResult& r) {
  std::ostringstream os;
  for (const SessionLoopResult& loop : r.loops) {
    os << loop.procName << " | line " << loop.line << " | " << toString(loop.classification)
       << '\n'
       << loop.report << loop.provenance << '\n';
  }
  return os.str();
}

TEST(SessionTest, WarmRunByteIdenticalToColdAcrossThreadCounts) {
  CacheGuard guard;
  for (std::size_t threads : {1u, 4u, 8u}) {
    AnalysisOptions options;
    options.numThreads = threads;

    AnalysisSession warmSession(options);
    ASSERT_TRUE(warmSession.submit(kBase).ok) << threads << " threads";
    SessionResult warm = warmSession.submit(kLeafEdited);
    ASSERT_TRUE(warm.ok) << threads << " threads";
    EXPECT_GT(warm.stats.summariesReused, 0u) << threads << " threads";

    AnalysisSession coldSession(options);
    SessionResult cold = coldSession.submit(kLeafEdited);
    ASSERT_TRUE(cold.ok) << threads << " threads";
    EXPECT_TRUE(cold.stats.fullInvalidation);

    ASSERT_EQ(cold.loops.size(), warm.loops.size()) << threads << " threads";
    EXPECT_EQ(render(cold), render(warm)) << threads << " threads";
  }
}

TEST(SessionTest, IdenticalResubmissionRecomputesNothing) {
  CacheGuard guard;
  AnalysisSession session;
  SessionResult first = session.submit(kBase);
  ASSERT_TRUE(first.ok);
  EXPECT_TRUE(first.stats.fullInvalidation);
  EXPECT_EQ(first.stats.added, 5u);

  SessionResult second = session.submit(kBase);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(second.stats.fullInvalidation);
  EXPECT_EQ(second.stats.unchanged, 5u);
  EXPECT_EQ(second.stats.dirty, 0u);
  EXPECT_EQ(second.stats.summariesReused, 5u);
  EXPECT_EQ(second.stats.summariesRecomputed, 0u);
  EXPECT_EQ(second.stats.loopsRecomputed, 0u);
  EXPECT_EQ(second.stats.loopsReused, second.loops.size());
  EXPECT_EQ(render(first), render(second));
  for (const char* name : {"main", "sib", "top", "mid", "leaf"})
    EXPECT_EQ(session.summaryEpochOf(name), 1u) << name;
}

TEST(SessionTest, TransitiveInvalidationThroughCallChain) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(kBase).ok);

  SessionResult warm = session.submit(kLeafEdited);
  ASSERT_TRUE(warm.ok);
  EXPECT_FALSE(warm.stats.fullInvalidation);
  EXPECT_EQ(warm.stats.modified, 1u);
  EXPECT_EQ(warm.stats.unchanged, 4u);
  // The dirty cone is the edited leaf plus its transitive callers; the
  // sibling keeps its epoch-1 summary.
  EXPECT_EQ(warm.stats.dirty, 4u);
  EXPECT_EQ(warm.stats.summariesReused, 1u);
  EXPECT_EQ(session.summaryEpochOf("leaf"), 2u);
  EXPECT_EQ(session.summaryEpochOf("mid"), 2u);
  EXPECT_EQ(session.summaryEpochOf("top"), 2u);
  EXPECT_EQ(session.summaryEpochOf("main"), 2u);
  EXPECT_EQ(session.summaryEpochOf("sib"), 1u);

  // The same accounting is published as session.* metrics.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counterValue("session.dirty_cone"), 4u);
  EXPECT_EQ(reg.counterValue("session.summaries_reused"), 1u);
  EXPECT_EQ(reg.counterValue("session.modified"), 1u);
  EXPECT_EQ(reg.counterValue("session.epoch"), 2u);
}

TEST(SessionTest, EveryDirtyUnitCarriesItsInvalidationCause) {
  CacheGuard guard;
  AnalysisSession session;

  SessionResult cold = session.submit(kBase);
  ASSERT_TRUE(cold.ok);
  ASSERT_EQ(cold.stats.invalidations.size(), 5u);
  for (const UnitInvalidation& inv : cold.stats.invalidations)
    EXPECT_EQ(inv.cause, "first-submit") << inv.unit;

  // Warm run after the leaf edit: the leaf itself is dirty by fingerprint,
  // its transitive callers by callee-epoch, and the sibling not at all.
  SessionResult warm = session.submit(kLeafEdited);
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.stats.invalidations.size(), warm.stats.dirty);
  std::map<std::string, const UnitInvalidation*> byUnit;
  for (const UnitInvalidation& inv : warm.stats.invalidations) byUnit[inv.unit] = &inv;
  ASSERT_TRUE(byUnit.count("leaf"));
  EXPECT_EQ(byUnit.at("leaf")->cause, "fingerprint");
  for (const char* caller : {"mid", "top", "main"}) {
    ASSERT_TRUE(byUnit.count(caller)) << caller;
    EXPECT_EQ(byUnit.at(caller)->cause, "callee-epoch") << caller;
  }
  EXPECT_FALSE(byUnit.count("sib"));

  // The obs-layer conversion carries the same records into CostProfiles.
  obs::SessionReuse reuse = sessionReuseFor(warm.stats);
  EXPECT_TRUE(reuse.warm);
  EXPECT_FALSE(reuse.fullInvalidation);
  EXPECT_EQ(reuse.epoch, 2u);
  ASSERT_EQ(reuse.causes.size(), warm.stats.invalidations.size());
  EXPECT_EQ(reuse.causes[0].unit, warm.stats.invalidations[0].unit);
  EXPECT_EQ(reuse.causes[0].cause, warm.stats.invalidations[0].cause);

  // An added procedure and an options flip attribute their own causes. Build
  // on the edited source: the session's live state is kLeafEdited, so the
  // only delta is the new procedure.
  std::string withExtra = std::string(kLeafEdited) +
                          "      subroutine extra(e)\n"
                          "      real e(100)\n"
                          "      do i = 1, 100\n"
                          "        e(i) = 4.0\n"
                          "      enddo\n"
                          "      end\n";
  SessionResult added = session.submit(withExtra);
  ASSERT_TRUE(added.ok);
  ASSERT_EQ(added.stats.invalidations.size(), 1u);
  EXPECT_EQ(added.stats.invalidations[0].unit, "extra");
  EXPECT_EQ(added.stats.invalidations[0].cause, "added");

  AnalysisOptions quantified = session.options();
  quantified.quantified = true;
  session.setOptions(quantified);
  SessionResult flipped = session.submit(withExtra);
  ASSERT_TRUE(flipped.ok);
  ASSERT_EQ(flipped.stats.invalidations.size(), 6u);
  for (const UnitInvalidation& inv : flipped.stats.invalidations)
    EXPECT_EQ(inv.cause, "options-change") << inv.unit;
}

TEST(SessionTest, ProcedureAddAndRemoveDirtyOnlyTheAffectedUnit) {
  CacheGuard guard;
  std::string withExtra = std::string(kBase) +
                          "      subroutine extra(e)\n"
                          "      real e(100)\n"
                          "      do i = 1, 100\n"
                          "        e(i) = 4.0\n"
                          "      enddo\n"
                          "      end\n";
  AnalysisSession session;
  ASSERT_TRUE(session.submit(kBase).ok);

  SessionResult added = session.submit(withExtra);
  ASSERT_TRUE(added.ok);
  EXPECT_EQ(added.stats.added, 1u);
  EXPECT_EQ(added.stats.unchanged, 5u);
  EXPECT_EQ(added.stats.dirty, 1u);
  EXPECT_EQ(session.summaryEpochOf("extra"), 2u);
  EXPECT_EQ(session.summaryEpochOf("main"), 1u);

  SessionResult removed = session.submit(kBase);
  ASSERT_TRUE(removed.ok);
  EXPECT_EQ(removed.stats.removed, 1u);
  EXPECT_EQ(removed.stats.unchanged, 5u);
  EXPECT_EQ(removed.stats.dirty, 0u);
  EXPECT_EQ(session.summaryEpochOf("extra"), 0u);
  EXPECT_EQ(session.summaryEpochOf("main"), 1u);
}

TEST(SessionTest, OptionsChangeInvalidatesEverythingOnce) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(kBase).ok);

  AnalysisOptions quantified = session.options();
  quantified.quantified = true;
  session.setOptions(quantified);
  SessionResult invalidated = session.submit(kBase);
  ASSERT_TRUE(invalidated.ok);
  EXPECT_TRUE(invalidated.stats.fullInvalidation);
  EXPECT_EQ(invalidated.stats.dirty, 5u);
  EXPECT_EQ(invalidated.stats.summariesReused, 0u);
  for (const char* name : {"main", "sib", "top", "mid", "leaf"})
    EXPECT_EQ(session.summaryEpochOf(name), 2u) << name;

  // The new options are now the steady state: resubmitting reuses again.
  SessionResult steady = session.submit(kBase);
  ASSERT_TRUE(steady.ok);
  EXPECT_FALSE(steady.stats.fullInvalidation);
  EXPECT_EQ(steady.stats.dirty, 0u);
}

TEST(SessionTest, ThreadCountChangeDoesNotInvalidate) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(kBase).ok);
  AnalysisOptions moreThreads = session.options();
  moreThreads.numThreads = 4;
  session.setOptions(moreThreads);
  SessionResult warm = session.submit(kBase);
  ASSERT_TRUE(warm.ok);
  EXPECT_FALSE(warm.stats.fullInvalidation);
  EXPECT_EQ(warm.stats.dirty, 0u);
}

// ----- loop-granular reuse inside the dirty cone (DESIGN.md §4.9) ----------

/// Four independent doubly-nested loop nests plus a trailing assignment.
/// `editedNest` (1-based, 0 = none) changes a constant inside that nest;
/// `comment` prepends a comment line shifting every statement down one.
std::string nestSource(int editedNest, bool comment = false) {
  std::string src = "      subroutine kern(a, b, n)\n";
  src += "      integer n\n";
  src += "      real a(100,4)\n";
  src += "      real b(100,4)\n";
  src += "      real t\n";
  if (comment) src += "c shifted down by one line\n";
  for (int k = 1; k <= 4; ++k) {
    const int lbl = 10 * k;
    const std::string col = std::to_string(k);
    const std::string c = (k == editedNest) ? "3.0" : "1.0";
    src += "      do " + std::to_string(lbl) + " i = 1, n\n";
    src += "      do " + std::to_string(lbl + 1) + " j = 1, n\n";
    src += "      t = a(j," + col + ") + " + c + "\n";
    src += "      b(j," + col + ") = t * 2.0\n";
    src += std::to_string(lbl + 1) + "    continue\n";
    src += std::to_string(lbl) + "    continue\n";
  }
  src += "      b(1,1) = 0.0\n";
  src += "      end\n";
  return src;
}

std::size_t causeCount(const SessionResult& r, const std::string& cause) {
  std::size_t n = 0;
  for (const LoopReuse& c : r.stats.loopReuse)
    if (c.cause == cause) ++n;
  return n;
}

TEST(SessionTest, SingleLoopEditReusesEveryLaterNestAcrossThreadCounts) {
  CacheGuard guard;
  for (std::size_t threads : {1u, 4u, 8u}) {
    AnalysisOptions options;
    options.numThreads = threads;

    AnalysisSession session(options);
    ASSERT_TRUE(session.submit(nestSource(0)).ok) << threads << " threads";
    SessionResult warm = session.submit(nestSource(1));
    ASSERT_TRUE(warm.ok) << threads << " threads";

    // Editing the FIRST nest leaves every later nest's (hash, suffix)
    // intact: 3 nests x 2 loops served from cache, one nest recomputed.
    EXPECT_EQ(warm.stats.dirty, 1u) << threads << " threads";
    EXPECT_EQ(warm.stats.loopSkips, 6u) << threads << " threads";
    EXPECT_EQ(warm.stats.partialUnits, 1u) << threads << " threads";
    EXPECT_EQ(warm.stats.unitsDirtyLoops, 1u) << threads << " threads";
    EXPECT_EQ(causeCount(warm, "item-match"), 6u) << threads << " threads";

    AnalysisSession coldSession(options);
    SessionResult cold = coldSession.submit(nestSource(1));
    ASSERT_TRUE(cold.ok) << threads << " threads";
    EXPECT_EQ(render(cold), render(warm)) << threads << " threads";
  }
}

TEST(SessionTest, EditToTheLastNestIsSuffixConservative) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(nestSource(0)).ok);
  SessionResult warm = session.submit(nestSource(4));
  ASSERT_TRUE(warm.ok);

  // Every earlier item's suffix contains the edited nest (the backward
  // walk's ueAfter reads it), so nothing inside the dirty unit is reusable.
  EXPECT_EQ(warm.stats.loopSkips, 0u);
  EXPECT_EQ(warm.stats.partialUnits, 0u);

  AnalysisSession coldSession;
  SessionResult cold = coldSession.submit(nestSource(4));
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(render(cold), render(warm));
}

TEST(SessionTest, CommentOnlyEditDirtiesNothingAndCitesPostEditLines) {
  CacheGuard guard;
  AnalysisSession session;
  SessionResult cold = session.submit(nestSource(0));
  ASSERT_TRUE(cold.ok);
  SessionResult shifted = session.submit(nestSource(0, /*comment=*/true));
  ASSERT_TRUE(shifted.ok);

  EXPECT_EQ(shifted.stats.dirty, 0u);
  EXPECT_EQ(shifted.stats.modified, 0u);
  EXPECT_GE(shifted.stats.lineRemaps, 1u);
  EXPECT_GE(causeCount(shifted, "line-remap"), 1u);

  // Same verdicts, every citation one line lower (the comment precedes all
  // loops) — and byte-identical to a cold run of the shifted source.
  ASSERT_EQ(cold.loops.size(), shifted.loops.size());
  for (std::size_t k = 0; k < cold.loops.size(); ++k)
    EXPECT_EQ(cold.loops[k].line + 1, shifted.loops[k].line) << "loop " << k;
  AnalysisSession coldSession;
  SessionResult coldShifted = coldSession.submit(nestSource(0, /*comment=*/true));
  ASSERT_TRUE(coldShifted.ok);
  EXPECT_EQ(render(coldShifted), render(shifted));
}

TEST(SessionTest, CalleeEditRecomputesOnlyLoopsThatReadItsSummary) {
  CacheGuard guard;
  auto source = [](const char* inc) {
    return std::string("      subroutine kern(a, b, n)\n"
                       "      integer n\n"
                       "      real a(100)\n"
                       "      real b(100)\n"
                       "      do 10 i = 1, n\n"
                       "      call bump(a, i)\n"
                       "10    continue\n"
                       "      do 20 i = 1, n\n"
                       "      b(i) = 1.0\n"
                       "20    continue\n"
                       "      end\n"
                       "      subroutine bump(x, k)\n"
                       "      integer k\n"
                       "      real x(100)\n"
                       "      x(k) = x(k) + ") +
           inc + "\n      end\n";
  };
  AnalysisSession session;
  ASSERT_TRUE(session.submit(source("2.0")).ok);
  SessionResult warm = session.submit(source("3.0"));
  ASSERT_TRUE(warm.ok);

  // kern's text is unchanged but bump's summary epoch moved. The first nest
  // calls bump, so its recorded callee epoch mismatches and it recomputes;
  // the second nest's subtree AND suffix are call-free, so its verdict
  // never read bump and is served from cache. (The call nest must precede
  // the pure one: an item's callee set spans its suffix too.)
  EXPECT_EQ(warm.stats.loopSkips, 1u);
  EXPECT_EQ(warm.stats.partialUnits, 1u);

  AnalysisSession coldSession;
  SessionResult cold = coldSession.submit(source("3.0"));
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(render(cold), render(warm));
}

TEST(SessionTest, LoopGranularReuseOffIsByteIdenticalWithZeroSkips) {
  CacheGuard guard;
  AnalysisOptions granular;
  AnalysisOptions procedural;
  procedural.loopGranularReuse = false;

  AnalysisSession on(granular);
  ASSERT_TRUE(on.submit(nestSource(0)).ok);
  SessionResult warmOn = on.submit(nestSource(1));
  ASSERT_TRUE(warmOn.ok);
  EXPECT_GT(warmOn.stats.loopSkips, 0u);

  AnalysisSession off(procedural);
  ASSERT_TRUE(off.submit(nestSource(0)).ok);
  SessionResult warmOff = off.submit(nestSource(1));
  ASSERT_TRUE(warmOff.ok);
  EXPECT_EQ(warmOff.stats.loopSkips, 0u);
  EXPECT_EQ(warmOff.stats.partialUnits, 0u);

  EXPECT_EQ(render(warmOn), render(warmOff));
}

TEST(SessionTest, StatsFormatCarriesLoopGranularCounters) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(nestSource(0)).ok);
  SessionResult warm = session.submit(nestSource(1));
  ASSERT_TRUE(warm.ok);
  const std::string stats = formatSessionStats(warm.stats);
  EXPECT_NE(stats.find("session.units_clean/dirty_loops:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("session.loop_skips:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("session.loop_reuse_cause:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("item-match"), std::string::npos) << stats;
}

TEST(SessionTest, FailedSubmitLeavesSessionIntact) {
  CacheGuard guard;
  AnalysisSession session;
  ASSERT_TRUE(session.submit(kBase).ok);
  EXPECT_EQ(session.epoch(), 1u);

  SessionResult bad = session.submit("      program main\n      call nosuch(\n      end\n");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_EQ(session.epoch(), 1u);

  // The session still re-analyzes incrementally from the surviving state.
  SessionResult warm = session.submit(kLeafEdited);
  ASSERT_TRUE(warm.ok);
  EXPECT_FALSE(warm.stats.fullInvalidation);
  EXPECT_EQ(warm.stats.dirty, 4u);
  EXPECT_EQ(warm.stats.summariesReused, 1u);
}

}  // namespace
}  // namespace panorama
