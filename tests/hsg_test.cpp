// Tests for HSG construction: node kinds, branch wiring, loop subgraphs,
// GOTO resolution, premature exits, and SCC condensation.
#include <gtest/gtest.h>

#include "panorama/frontend/parser.h"
#include "panorama/hsg/hsg.h"

namespace panorama {
namespace {

struct Built {
  Program program;
  SemaResult sema;
  Hsg hsg;
};

Built build(std::string_view src) {
  Built b;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  b.program = std::move(*p);
  auto r = analyze(b.program, diags);
  EXPECT_TRUE(r.has_value()) << diags.str();
  b.sema = std::move(*r);
  b.hsg = buildHsg(b.program, b.sema, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return b;
}

int countKind(const HsgGraph& g, HsgNode::Kind k) {
  int n = 0;
  for (int id : g.topoOrder()) n += g.node(id).kind == k;
  return n;
}

TEST(HsgTest, StraightLineIsOneBlock) {
  Built b = build(R"(
      program p
      integer x, y
      x = 1
      y = 2
      x = x + y
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  EXPECT_EQ(countKind(g, HsgNode::Kind::Block), 1);
  auto order = g.topoOrder();
  ASSERT_EQ(order.size(), 3u);  // entry, block, exit
  EXPECT_EQ(g.node(order[1]).stmts.size(), 3u);
}

TEST(HsgTest, IfConditionGetsOwnNode) {
  Built b = build(R"(
      program p
      integer x
      if (x .gt. 0) then
        x = 1
      else
        x = 2
      endif
      x = 3
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  EXPECT_EQ(countKind(g, HsgNode::Kind::Cond), 1);
  // Find the cond node; true branch must be succs[0].
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind != HsgNode::Kind::Cond) continue;
    ASSERT_EQ(n.succs.size(), 2u);
    const HsgNode& t = g.node(n.succs[0]);
    ASSERT_EQ(t.stmts.size(), 1u);
    EXPECT_EQ(toString(*t.stmts[0]->rhs), "1");
    const HsgNode& f = g.node(n.succs[1]);
    EXPECT_EQ(toString(*f.stmts[0]->rhs), "2");
  }
}

TEST(HsgTest, LoopNodeHasBodySubgraph) {
  Built b = build(R"(
      program p
      real a(10)
      do i = 1, 10
        a(i) = i
      enddo
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_EQ(countKind(g, HsgNode::Kind::Loop), 1);
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind != HsgNode::Kind::Loop) continue;
    ASSERT_TRUE(n.body != nullptr);
    EXPECT_TRUE(n.body->isDag());
    EXPECT_FALSE(n.prematureExit);
    EXPECT_EQ(countKind(*n.body, HsgNode::Kind::Block), 1);
  }
}

TEST(HsgTest, NestedLoops) {
  Built b = build(R"(
      program p
      real a(10,10)
      do i = 1, 10
        do j = 1, 10
          a(i,j) = 0
        enddo
      enddo
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind == HsgNode::Kind::Loop) {
      EXPECT_EQ(n.loopStmt->doVar, "i");
      EXPECT_EQ(countKind(*n.body, HsgNode::Kind::Loop), 1);
    }
  }
}

TEST(HsgTest, CallNode) {
  Built b = build(R"(
      program p
      real a(10)
      call f(a)
      end
      subroutine f(b)
      real b(10)
      b(1) = 0
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_EQ(countKind(g, HsgNode::Kind::Call), 1);
  EXPECT_EQ(b.hsg.procs.size(), 2u);
}

TEST(HsgTest, ForwardGotoBranches) {
  // The Figure 1(a) tail: IF (kc.NE.0) goto 2 ... 2: continue.
  Built b = build(R"(
      program p
      integer kc
      real t(20)
      if (kc .ne. 0) goto 2
      t(1) = 1
 2    continue
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  EXPECT_EQ(countKind(g, HsgNode::Kind::Condensed), 0);
  // The goto node must reach the labeled continue directly.
  bool found = false;
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.stmts.size() == 1 && n.stmts[0]->kind == Stmt::Kind::Goto) {
      ASSERT_EQ(n.succs.size(), 1u);
      const HsgNode& target = g.node(n.succs[0]);
      ASSERT_FALSE(target.stmts.empty());
      EXPECT_EQ(target.stmts[0]->label, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HsgTest, GotoToLoopEndLabel) {
  // Figure 1(a)'s inner loop: IF (...) goto 1 / A(K+4)=... / 1: ENDDO-style
  // (labeled DO closed by "1 continue").
  Built b = build(R"(
      program p
      real a(20), bb(20)
      real cut2
      do 1 k = 2, 5
        if (bb(k+4) .gt. cut2) goto 1
        a(k+4) = 1
 1    continue
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind != HsgNode::Kind::Loop) continue;
    EXPECT_FALSE(n.prematureExit);  // target is inside the loop body
    EXPECT_TRUE(n.body->isDag());
    EXPECT_EQ(countKind(*n.body, HsgNode::Kind::Condensed), 0);
  }
}

TEST(HsgTest, PrematureLoopExit) {
  Built b = build(R"(
      program p
      real a(10)
      do i = 1, 10
        if (a(i) .gt. 0) goto 99
        a(i) = 1
      enddo
 99   continue
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind == HsgNode::Kind::Loop) {
      EXPECT_TRUE(n.prematureExit);
    }
  }
}

TEST(HsgTest, ReturnInsideLoopMarksPremature) {
  Built b = build(R"(
      subroutine s(a, n)
      real a(*)
      integer n
      do i = 1, n
        if (a(i) .gt. 0) return
        a(i) = 1
      enddo
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind == HsgNode::Kind::Loop) {
      EXPECT_TRUE(n.prematureExit);
    }
  }
}

TEST(HsgTest, BackwardGotoCondenses) {
  Built b = build(R"(
      program p
      integer x
 10   x = x + 1
      if (x .lt. 100) goto 10
      x = 0
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  EXPECT_GE(countKind(g, HsgNode::Kind::Condensed), 1);
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind == HsgNode::Kind::Condensed) {
      EXPECT_GE(n.condensed.size(), 2u);
    }
  }
}

TEST(HsgTest, ElseIfChain) {
  Built b = build(R"(
      program p
      integer x, y
      if (x .gt. 2) then
        y = 1
      else if (x .gt. 1) then
        y = 2
      else if (x .gt. 0) then
        y = 3
      else
        y = 4
      endif
      y = 5
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  EXPECT_EQ(countKind(g, HsgNode::Kind::Cond), 3);
  // Every cond has exactly two successors with the true branch first.
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind == HsgNode::Kind::Cond) {
      EXPECT_EQ(n.succs.size(), 2u);
    }
  }
}

TEST(HsgTest, CallInsideBranchAndLoop) {
  Built b = build(R"(
      program p
      real a(10)
      integer x
      do i = 1, 5
        if (x .gt. 0) then
          call f(a)
        endif
      enddo
      end
      subroutine f(b)
      real b(10)
      b(1) = 0
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (n.kind != HsgNode::Kind::Loop) continue;
    EXPECT_EQ(countKind(*n.body, HsgNode::Kind::Call), 1);
    EXPECT_EQ(countKind(*n.body, HsgNode::Kind::Cond), 1);
  }
}

TEST(HsgTest, LogicalIfWithGotoMakesTwoWayBranch) {
  Built b = build(R"(
      program p
      integer x
      real t(10)
      if (x .gt. 0) goto 5
      t(1) = 1
 5    t(2) = 2
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  // The label-5 block must have two predecessors (fallthrough + goto).
  for (int id : g.topoOrder()) {
    const HsgNode& n = g.node(id);
    if (!n.stmts.empty() && n.stmts[0]->label == 5) {
      EXPECT_EQ(n.preds.size(), 2u);
    }
  }
}

TEST(HsgTest, EntryAndExitUnique) {
  Built b = build(R"(
      subroutine s(x)
      integer x
      if (x .gt. 0) return
      x = 1
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  EXPECT_TRUE(g.isDag());
  auto order = g.topoOrder();
  EXPECT_EQ(order.front(), g.entry);
  // Every path ends at the unique exit.
  for (int id : order) {
    const HsgNode& n = g.node(id);
    if (n.succs.empty()) {
      EXPECT_EQ(id, g.exit);
    }
  }
}

TEST(HsgTest, TopoOrderRespectsEdges) {
  Built b = build(R"(
      program p
      integer x
      if (x .gt. 0) then
        x = 1
      endif
      x = 2
      end
  )");
  const HsgGraph& g = b.hsg.of(b.program.procedures[0]).graph;
  auto order = g.topoOrder();
  std::map<int, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (int id : order)
    for (int s : g.node(id).succs) EXPECT_LT(pos[id], pos[s]);
}

}  // namespace
}  // namespace panorama
