// Deeper interprocedural coverage: lower-bound shifts, assumed-size
// formals, multi-level call chains with offsets, symbolic element-offset
// actuals, and by-reference scalar effects — each checked against the
// interpreter where execution is possible.
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"

namespace panorama {
namespace {

using ElementSet = std::set<std::vector<std::int64_t>>;

struct World {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
};

World load(std::string_view src, AnalysisOptions options = {}) {
  World w;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  w.program = std::move(*p);
  auto sr = analyze(w.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  w.sema = std::move(*sr);
  w.hsg = buildHsg(w.program, w.sema, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  w.analyzer = std::make_unique<SummaryAnalyzer>(w.program, w.sema, w.hsg, options);
  w.analyzer->analyzeAll();
  return w;
}

ElementSet evalList(const GarList& list, ArrayId array, const Binding& b,
                    bool* undecided = nullptr) {
  ElementSet out;
  for (const Gar& g : list.gars()) {
    if (g.array() != array) continue;
    auto e = g.enumerate(b);
    if (!e) {
      if (undecided) *undecided = true;
      continue;
    }
    out.insert(e->begin(), e->end());
  }
  return out;
}

ElementSet points(std::initializer_list<std::int64_t> xs) {
  ElementSet out;
  for (auto x : xs) out.insert({x});
  return out;
}

TEST(InterprocTest, LowerBoundShiftInMapping) {
  // Formal declared b(0:49), actual a(1:100): formal index f maps to
  // a(f + 1).
  World w = load(R"(
      program p
      real a(100)
      call f(a)
      end
      subroutine f(b)
      real b(0:49)
      do j = 0, 4
        b(j) = j
      enddo
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(w.program.procedures[0]);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(evalList(ps.modAll, a, {}), points({1, 2, 3, 4, 5}));

  // The interpreter agrees.
  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(interp.arrays().at(a).size(), 5u);
  EXPECT_TRUE(interp.arrays().at(a).count({1}));
  EXPECT_TRUE(interp.arrays().at(a).count({5}));
}

TEST(InterprocTest, AssumedSizeFormal) {
  // b(*): the declared shape is open-ended but the accessed region is fully
  // determined by the loop.
  World w = load(R"(
      program p
      real a(100)
      integer m
      m = 6
      call f(a, m)
      end
      subroutine f(b, mm)
      real b(*)
      integer mm
      do j = 1, mm
        b(j) = j * 2
      enddo
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(w.program.procedures[0]);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  // `m = 6` folded on the fly: the summary is already concrete.
  EXPECT_EQ(evalList(ps.modAll, a, {}), points({1, 2, 3, 4, 5, 6}));
}

TEST(InterprocTest, TwoLevelOffsetChain) {
  // a(20) passed down two levels with a further offset at the second call:
  // the final writes land at a(20+2-1 + j - 1) = a(21 + j - 1).
  World w = load(R"(
      program p
      real a(100)
      call f(a(20))
      end
      subroutine f(b)
      real b(30)
      call g(b(2))
      end
      subroutine g(c)
      real c(10)
      do j = 1, 3
        c(j) = j
      enddo
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(w.program.procedures[0]);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  bool und = false;
  ElementSet got = evalList(ps.modAll, a, {}, &und);
  EXPECT_FALSE(und);
  EXPECT_EQ(got, points({21, 22, 23}));

  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  ElementSet truth;
  for (const auto& [idx, v] : interp.arrays().at(a)) truth.insert(idx);
  EXPECT_EQ(truth, got);
}

TEST(InterprocTest, SymbolicElementOffset) {
  // CALL f(a(k)) with symbolic k: regions shift by k - 1.
  World w = load(R"(
      subroutine top(a, k)
      real a(200)
      integer k
      call f(a(k))
      end
      subroutine f(b)
      real b(10)
      do j = 1, 4
        b(j) = j
      enddo
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(*w.program.findProcedure("top"));
  ArrayId a = *w.sema.procs.at("top").arrayId("a");
  VarId k = *w.sema.procs.at("top").scalarId("k");
  EXPECT_EQ(evalList(ps.mod, a, {{k, 50}}), points({50, 51, 52, 53}));
}

TEST(InterprocTest, ByRefScalarWriteTaintsElement) {
  // CALL f(a(7), ...) where f writes its scalar formal: the element becomes
  // a (tainted) write — present in MOD, never able to kill.
  World w = load(R"(
      subroutine top(a, x)
      real a(100), x
      call f(a(7))
      x = a(7)
      end
      subroutine f(s)
      real s
      s = 3.25
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(*w.program.findProcedure("top"));
  ArrayId a = *w.sema.procs.at("top").arrayId("a");
  EXPECT_FALSE(ps.mod.forArray(a).empty());
  // The kill must NOT have fired: a(7) stays (conservatively) exposed or
  // the write piece is inexact.
  bool anyExactKillCapable = false;
  GarList mods = ps.mod.forArray(a);
  for (const Gar& g : mods.gars()) anyExactKillCapable |= g.isExact();
  EXPECT_FALSE(anyExactKillCapable);
}

TEST(InterprocTest, SummaryThroughSharedCalleeTwoSites) {
  // One callee, two call sites with different actuals — the memoized
  // summary must map independently at each site.
  World w = load(R"(
      program p
      real a(100), b(100)
      integer m
      m = 4
      call fill(a, m)
      call fill(b(10), m)
      end
      subroutine fill(v, mm)
      real v(50)
      integer mm
      do j = 1, mm
        v(j) = j
      enddo
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(w.program.procedures[0]);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  ArrayId b = *w.sema.procs.at("p").arrayId("b");
  VarId m = *w.sema.procs.at("p").scalarId("m");
  EXPECT_EQ(evalList(ps.modAll, a, {{m, 4}}), points({1, 2, 3, 4}));
  EXPECT_EQ(evalList(ps.modAll, b, {{m, 4}}), points({10, 11, 12, 13}));
}

TEST(InterprocTest, RankMismatchDegradesToOmega) {
  // Passing a 2-D actual to a 1-D formal (linearized reshape): Ω on the
  // actual, never a wrong region.
  World w = load(R"(
      program p
      real a(10, 10)
      call f(a)
      end
      subroutine f(b)
      real b(100)
      b(5) = 1
      end
  )");
  const ProcSummary& ps = w.analyzer->procSummary(w.program.procedures[0]);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  GarList mods = ps.modAll.forArray(a);
  ASSERT_FALSE(mods.empty());
  for (const Gar& g : mods.gars()) EXPECT_FALSE(g.isExact());
}

TEST(InterprocTest, GuardedCalleeComposesThreeLevels) {
  // The Figure 1(c) implication surviving an extra call level.
  World w = load(R"(
      subroutine top(c, n, m)
      real c(100)
      real a(100)
      integer n, m
      real x
      do i = 1, n
        x = i * 1.0
        call mid(a, x, m)
        call rd(a, c, x, m)
      enddo
      end
      subroutine mid(b, x, mm)
      real b(100)
      real x
      integer mm
      call wr(b, x, mm)
      end
      subroutine wr(b, x, mm)
      real b(100)
      real x
      integer mm
      if (x .gt. 40.0) return
      do j = 1, mm
        b(j) = x
      enddo
      end
      subroutine rd(b, c, x, mm)
      real b(100), c(100)
      real x
      integer mm
      if (x .gt. 40.0) return
      do j = 1, mm
        c(j) = b(j)
      enddo
      end
  )");
  LoopParallelizer lp(*w.analyzer);
  const Procedure* top = w.program.findProcedure("top");
  const Stmt* loop = top->body[0].get();
  LoopAnalysis la = lp.analyzeLoop(*loop, *top);
  bool privatizable = false;
  for (const ArrayPrivatization& ap : la.arrays)
    if (ap.name == "a") privatizable = ap.privatizable;
  EXPECT_TRUE(privatizable) << formatLoopAnalysis(la);
}

}  // namespace
}  // namespace panorama
