// The cost-attribution profiler: phase-tree construction from synthetic
// span forests (the selfNs invariant, outermost-only loop/query
// attribution, top-K ordering), JSON schema validity via the support JSON
// parser, and the real-pipeline contracts — per-phase totals summing to the
// corpus wall time at one thread, and thread-shape-independent aggregate
// counts across {1, 4, 8} analysis threads with the query cache off.
#include <gtest/gtest.h>

#include <map>

#include "panorama/analysis/driver.h"
#include "panorama/obs/profile.h"
#include "panorama/obs/trace.h"
#include "panorama/support/json.h"

namespace panorama {
namespace {

using obs::buildCostProfile;
using obs::CostProfile;
using obs::PhaseNode;
using obs::TraceEvent;
using support::JsonValue;

TraceEvent ev(const char* category, std::string name, std::int64_t startNs, std::int64_t durNs,
              std::uint32_t tid = 0,
              std::vector<std::pair<std::string, std::string>> args = {}) {
  TraceEvent e;
  e.category = category;
  e.name = std::move(name);
  e.startNs = startNs;
  e.durNs = durNs;
  e.tid = tid;
  e.args = std::move(args);
  return e;
}

/// The synthetic forest every structural test uses:
///
///   corpus.run [0, 1000)
///     summary.proc "foo" [10, 210)
///       query.fm [20, 70)                       outermost query under foo
///     analysis.loop "foo DO i" [300, 700)
///       deptest.loop "foo DO i" [310, 360)      nested loop span
///       query.implies [400, 500)                outermost query under loop
///         query.fm [410, 450)                   nested query: no attribution
std::vector<TraceEvent> syntheticForest() {
  return {
      ev("corpus.run", "perfect corpus", 0, 1000),
      ev("summary.proc", "foo", 10, 200),
      ev("query.fm", "ConstraintSet::contradictory", 20, 50, 0,
         {{"expr", "i - n <= 0"}, {"ctx", "guard p"}, {"verdict", "True"}}),
      ev("analysis.loop", "foo DO i", 300, 400),
      ev("deptest.loop", "foo DO i", 310, 50),
      ev("query.implies", "Pred::implies", 400, 100, 0,
         {{"expr", "P#1 => P#2"}, {"verdict", "Unknown"}}),
      ev("query.fm", "ConstraintSet::contradictory", 410, 40, 0, {{"verdict", "False"}}),
  };
}

const PhaseNode* findChild(const std::vector<PhaseNode>& nodes, std::string_view category) {
  for (const PhaseNode& n : nodes)
    if (n.category == category) return &n;
  return nullptr;
}

void checkSelfInvariant(const PhaseNode& node) {
  std::int64_t childNs = 0;
  for (const PhaseNode& c : node.children) {
    childNs += c.totalNs;
    checkSelfInvariant(c);
  }
  EXPECT_EQ(node.selfNs + childNs, node.totalNs) << node.category;
}

TEST(ProfileBuildTest, PhaseTreeFollowsSpanNesting) {
  CostProfile p = buildCostProfile(syntheticForest());
  EXPECT_EQ(p.wallNs, 1000);
  EXPECT_EQ(p.events, 7u);
  EXPECT_EQ(p.threads, 1u);

  ASSERT_EQ(p.phases.size(), 1u);
  const PhaseNode& root = p.phases[0];
  EXPECT_EQ(root.category, "corpus.run");
  EXPECT_EQ(root.totalNs, 1000);
  EXPECT_EQ(root.selfNs, 1000 - 200 - 400);
  EXPECT_EQ(root.count, 1u);
  EXPECT_EQ(root.maxNs, 1000);

  const PhaseNode* proc = findChild(root.children, "summary.proc");
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->totalNs, 200);
  EXPECT_EQ(proc->selfNs, 150);  // minus the nested query.fm

  const PhaseNode* loop = findChild(root.children, "analysis.loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->totalNs, 400);
  EXPECT_EQ(loop->selfNs, 400 - 50 - 100);
  const PhaseNode* implies = findChild(loop->children, "query.implies");
  ASSERT_NE(implies, nullptr);
  EXPECT_EQ(implies->selfNs, 100 - 40);  // minus the FM it issued

  for (const PhaseNode& r : p.phases) checkSelfInvariant(r);
}

TEST(ProfileBuildTest, AttributesProcsLoopsAndOutermostQueriesOnly) {
  CostProfile p = buildCostProfile(syntheticForest());

  ASSERT_EQ(p.procedures.size(), 1u);
  const obs::ProcCost& pc = p.procedures[0];
  EXPECT_EQ(pc.name, "foo");
  EXPECT_EQ(pc.summarySpans, 1u);
  EXPECT_EQ(pc.summaryNs, 200);
  // deptest.loop is nested inside analysis.loop: only the outermost loop
  // span attributes, so no double count.
  EXPECT_EQ(pc.loopSpans, 1u);
  EXPECT_EQ(pc.loopNs, 400);
  EXPECT_EQ(pc.totalNs(), 600);
  // The FM under summary.proc and the implies under the loop attribute; the
  // FM issued *inside* the implies does not.
  EXPECT_EQ(pc.coldQueries, 2u);
  EXPECT_EQ(pc.coldQueryNs, 50 + 100);

  ASSERT_EQ(p.loops.size(), 1u);
  const obs::LoopCost& lc = p.loops[0];
  EXPECT_EQ(lc.proc, "foo");
  EXPECT_EQ(lc.name, "DO i");
  EXPECT_EQ(lc.count, 1u);
  EXPECT_EQ(lc.totalNs, 400);
  EXPECT_EQ(lc.coldQueries, 1u);
  EXPECT_EQ(lc.coldQueryNs, 100);
}

TEST(ProfileBuildTest, TopQueriesSortedByDurationWithRenderedExpressions) {
  CostProfile p = buildCostProfile(syntheticForest());
  ASSERT_EQ(p.topQueries.size(), 3u);
  EXPECT_EQ(p.topQueries[0].kind, "query.implies");
  EXPECT_EQ(p.topQueries[0].durNs, 100);
  EXPECT_EQ(p.topQueries[0].expr, "P#1 => P#2");
  EXPECT_EQ(p.topQueries[1].durNs, 50);
  EXPECT_EQ(p.topQueries[1].expr, "i - n <= 0");
  EXPECT_EQ(p.topQueries[1].context, "guard p");
  EXPECT_EQ(p.topQueries[1].verdict, "True");
  EXPECT_EQ(p.topQueries[2].durNs, 40);

  obs::ProfileOptions options;
  options.topQueries = 2;
  CostProfile trimmed = buildCostProfile(syntheticForest(), options);
  ASSERT_EQ(trimmed.topQueries.size(), 2u);
  EXPECT_EQ(trimmed.topQueries[1].durNs, 50);
}

TEST(ProfileBuildTest, EmptySnapshotYieldsEmptyProfile) {
  CostProfile p = buildCostProfile({});
  EXPECT_EQ(p.wallNs, 0);
  EXPECT_EQ(p.events, 0u);
  EXPECT_TRUE(p.phases.empty());
  EXPECT_NE(renderCostProfileJson(p).find("\"schema_version\": 1"), std::string::npos);
}

TEST(ProfileRenderTest, JsonParsesAndCarriesTheSchema) {
  CostProfile p = buildCostProfile(syntheticForest());
  p.caches.push_back({"query cache", 10, 5, 5, 2, 1, 1});
  obs::SessionReuse reuse;
  reuse.epoch = 2;
  reuse.warm = true;
  reuse.procedures = 3;
  reuse.dirty = 1;
  reuse.causes.push_back({"olda", "fingerprint", "content fingerprint changed"});
  p.sessions.push_back(reuse);

  std::string json = renderCostProfileJson(p);
  std::string error;
  std::optional<JsonValue> v = JsonValue::parse(json, &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("schema_version")->asNumber(), 1);
  EXPECT_EQ(v->find("wall_ns")->asNumber(), 1000);
  EXPECT_EQ(v->find("threads")->asNumber(), 1);

  const JsonValue* phases = v->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items().size(), 1u);
  EXPECT_EQ(phases->items()[0].find("category")->asString(), "corpus.run");
  EXPECT_EQ(phases->items()[0].find("self_ns")->asNumber(), 400);

  const JsonValue* queries = v->find("top_queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->items()[0].find("expr")->asString(), "P#1 => P#2");

  const JsonValue* caches = v->find("caches");
  ASSERT_NE(caches, nullptr);
  EXPECT_EQ(caches->items()[0].find("evicted_stale")->asNumber(), 1);

  const JsonValue* sessions = v->find("sessions");
  ASSERT_NE(sessions, nullptr);
  const JsonValue& s0 = sessions->items()[0];
  EXPECT_TRUE(s0.find("warm")->asBool());
  ASSERT_EQ(s0.find("invalidations")->items().size(), 1u);
  EXPECT_EQ(s0.find("invalidations")->items()[0].find("cause")->asString(), "fingerprint");
}

TEST(ProfileRenderTest, TextRendererNamesDirtyUnitsAndCauses) {
  CostProfile p = buildCostProfile(syntheticForest());
  obs::SessionReuse reuse;
  reuse.epoch = 3;
  reuse.warm = true;
  reuse.dirty = 2;
  reuse.causes.push_back({"olda", "fingerprint", "content fingerprint changed"});
  reuse.causes.push_back({"caller", "callee-epoch", "callee 'olda' summary epoch changed"});
  p.sessions.push_back(reuse);

  std::string text = renderCostProfileText(p);
  EXPECT_NE(text.find("session epoch 3 (warm)"), std::string::npos) << text;
  EXPECT_NE(text.find("invalidated olda [fingerprint]: content fingerprint changed"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("invalidated caller [callee-epoch]: callee 'olda' summary epoch changed"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("top cold queries:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real-pipeline contracts
// ---------------------------------------------------------------------------

class ProfilePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }

  CostProfile profileCorpusRun(std::size_t threads) {
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();
    AnalysisOptions options;
    options.numThreads = threads;
    options.cacheCapacity = 0;  // cache off: every query runs cold
    analyzeCorpusParallel(options);
    obs::Tracer::global().disable();
    CostProfile p = buildCostProfile(obs::Tracer::global().snapshot());
    obs::Tracer::global().clear();
    return p;
  }
};

TEST_F(ProfilePipelineTest, SingleThreadPhaseTotalsSumToWallTime) {
  CostProfile p = profileCorpusRun(1);
  ASSERT_FALSE(p.phases.empty());
  EXPECT_EQ(p.threads, 1u);
  // At one thread the root spans tile the trace: their totals must account
  // for the wall time up to the gaps between top-level spans (< 5%).
  std::int64_t rootNs = 0;
  for (const PhaseNode& r : p.phases) rootNs += r.totalNs;
  EXPECT_LE(rootNs, p.wallNs);
  EXPECT_GE(static_cast<double>(rootNs), 0.95 * static_cast<double>(p.wallNs));
  for (const PhaseNode& r : p.phases) checkSelfInvariant(r);
}

TEST_F(ProfilePipelineTest, AggregateCountsAreThreadShapeIndependent) {
  std::map<std::size_t, CostProfile> profiles;
  for (std::size_t threads : {1u, 4u, 8u}) profiles.emplace(threads, profileCorpusRun(threads));

  const CostProfile& base = profiles.at(1);
  ASSERT_FALSE(base.procedures.empty());
  ASSERT_FALSE(base.loops.empty());
  for (std::size_t threads : {4u, 8u}) {
    const CostProfile& p = profiles.at(threads);
    // Total span count varies with the thread shape (per-wave scheduling
    // spans); the attribution aggregates below must not.
    EXPECT_GT(p.events, 0u) << threads << " threads";
    ASSERT_EQ(p.procedures.size(), base.procedures.size());
    ASSERT_EQ(p.loops.size(), base.loops.size());

    // Per-procedure span and cold-query *counts* are deterministic across
    // thread shapes (durations are not); sorting differs, so compare by name.
    std::map<std::string, const obs::ProcCost*> byName;
    for (const obs::ProcCost& pc : p.procedures) byName[pc.name] = &pc;
    for (const obs::ProcCost& expected : base.procedures) {
      ASSERT_TRUE(byName.count(expected.name)) << expected.name;
      const obs::ProcCost& got = *byName.at(expected.name);
      EXPECT_EQ(got.summarySpans, expected.summarySpans) << expected.name;
      EXPECT_EQ(got.loopSpans, expected.loopSpans) << expected.name;
      EXPECT_EQ(got.coldQueries, expected.coldQueries) << expected.name;
    }

    std::map<std::pair<std::string, std::string>, const obs::LoopCost*> loopsByKey;
    for (const obs::LoopCost& lc : p.loops) loopsByKey[{lc.proc, lc.name}] = &lc;
    for (const obs::LoopCost& expected : base.loops) {
      auto it = loopsByKey.find({expected.proc, expected.name});
      ASSERT_NE(it, loopsByKey.end()) << expected.proc << " " << expected.name;
      EXPECT_EQ(it->second->count, expected.count);
      EXPECT_EQ(it->second->coldQueries, expected.coldQueries);
    }
  }
}

TEST_F(ProfilePipelineTest, TopQueriesCarryRenderedExpressionsFromTheRealPipeline) {
  CostProfile p = profileCorpusRun(1);
  ASSERT_FALSE(p.topQueries.empty());
  bool anyExpr = false;
  for (const obs::QueryCost& qc : p.topQueries) {
    EXPECT_TRUE(qc.kind == "query.fm" || qc.kind == "query.implies" ||
                qc.kind == "query.prefilter")
        << qc.kind;
    anyExpr = anyExpr || !qc.expr.empty();
  }
  EXPECT_TRUE(anyExpr) << "no top query carried a rendered expression";
}

}  // namespace
}  // namespace panorama
