// End-to-end soundness fuzzing: generate random (but well-formed) Fortran
// kernels, then require
//
//   1. the analyzer's per-iteration summaries (MOD_i, UE_i, DE_i, MOD_{<i})
//      and whole-loop sets to match interpreter ground truth exactly when
//      decidable and to over-approximate otherwise, and
//   2. every privatization the analyzer licenses to survive the scrambled
//      privatized-execution witness bit for bit.
//
// The generator exercises: affine and strided subscripts, nested loops with
// symbolic bounds, IF guards over integers and real array elements, scalar
// temporaries, induction variables, and work-array patterns.
// The builder frontend is fuzzed the same way: every generated kernel is
// replayed through builder::rebuild() (fingerprints and loop reports must
// be identical to the parsed original), and a second generator constructs
// random well-formed programs directly through the fluent ProgramBuilder
// API and requires the full pipeline to accept them.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <utility>

#include "panorama/analysis/analysis.h"
#include "panorama/analysis/driver.h"
#include "panorama/ast/fingerprint.h"
#include "panorama/builder/builder.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"
#include "panorama/session/session.h"
#include "panorama/support/thread_pool.h"

namespace panorama {
namespace {

class ProgramGen {
 public:
  explicit ProgramGen(unsigned seed) : rng_(seed) {}

  std::string generate() {
    body_.str("");
    int n = pick(3, 8);
    int m = pick(2, 6);
    line(0, "program fz");
    line(0, "real wa(200), wb(200), wc(200)");
    line(0, "integer n, m, kv");
    line(0, "real t, cut");
    line(0, "n = " + std::to_string(n));
    line(0, "m = " + std::to_string(m));
    line(0, "kv = " + std::to_string(pick(1, 4)));
    line(0, "cut = " + std::to_string(pick(2, 30)) + ".0");
    // Pre-fill one array so reads see varied data.
    line(0, "do i0 = 1, 40");
    line(1, "wb(i0) = i0 * 3 - 20");
    line(0, "enddo");
    line(0, "do i = 1, n");
    bool usedInduction = false;
    int stmts = pick(2, 5);
    for (int k = 0; k < stmts; ++k) genStmt(1, usedInduction);
    if (usedInduction) line(1, "kv = kv + " + std::to_string(pick(1, 3)));
    line(0, "enddo");
    line(0, "end");
    return body_.str();
  }

 private:
  int pick(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng_); }
  bool coin() { return pick(0, 1) == 1; }

  void line(int indent, const std::string& text) {
    for (int k = 0; k < indent + 1; ++k) body_ << "  ";
    body_ << text << "\n";
  }

  std::string arrayName() {
    const char* names[] = {"wa", "wb", "wc"};
    return names[pick(0, 2)];
  }

  /// An affine subscript kept inside [1, 200] for the values in play
  /// (i <= 8, j <= 6, kv <= 4 + 3*8).
  std::string subscript(bool inner) {
    switch (pick(0, 5)) {
      case 0: return std::to_string(pick(1, 30));
      case 1: return "i + " + std::to_string(pick(0, 20));
      case 2: return inner ? "j + " + std::to_string(pick(0, 20)) : "i * 2 + 1";
      case 3: return "i * 2 + " + std::to_string(pick(1, 9));
      case 4: return "kv + " + std::to_string(pick(0, 8));
      default: return inner ? "i + j" : "i + 1";
    }
  }

  std::string valueExpr(bool inner) {
    switch (pick(0, 4)) {
      case 0: return "i * 2 + 1";
      case 1: return arrayName() + "(" + subscript(inner) + ") + 1";
      case 2: return "t + i";
      case 3: return inner ? "j - i" : "i - 3";
      default: return arrayName() + "(" + subscript(inner) + ") * 2 + i";
    }
  }

  std::string condition(bool inner) {
    switch (pick(0, 3)) {
      case 0: return "i .le. " + std::to_string(pick(1, 6));
      case 1: return "m .gt. " + std::to_string(pick(1, 5));
      case 2: return arrayName() + "(" + subscript(inner) + ") .gt. cut";
      default: return inner ? "j .ge. 2" : "i .ne. " + std::to_string(pick(1, 6));
    }
  }

  void genStmt(int depth, bool& usedInduction, bool inner = false) {
    int kind = pick(0, 9);
    if (depth >= 3) kind = pick(0, 4);  // cap nesting
    switch (kind) {
      case 0:
      case 1:
      case 2: {  // array write
        line(depth, arrayName() + "(" + subscript(inner) + ") = " + valueExpr(inner));
        return;
      }
      case 3: {  // scalar temp
        line(depth, "t = " + valueExpr(inner));
        return;
      }
      case 4: {  // scalar consumed into an array
        line(depth, "t = " + valueExpr(inner));
        line(depth, arrayName() + "(" + subscript(inner) + ") = t");
        return;
      }
      case 5:
      case 6: {  // inner loop over j
        std::string up = coin() ? "m" : std::to_string(pick(2, 5));
        line(depth, "do j = 1, " + up);
        int stmts = pick(1, 2);
        for (int k = 0; k < stmts; ++k) genStmt(depth + 1, usedInduction, true);
        line(depth, "enddo");
        return;
      }
      case 7:
      case 8: {  // IF
        line(depth, "if (" + condition(inner) + ") then");
        genStmt(depth + 1, usedInduction, inner);
        if (coin()) {
          line(depth, "else");
          genStmt(depth + 1, usedInduction, inner);
        }
        line(depth, "endif");
        return;
      }
      default: {  // mark that an induction update should be appended
        if (!inner) usedInduction = true;
        line(depth, arrayName() + "(kv + " + std::to_string(pick(0, 5)) + ") = i");
        return;
      }
    }
  }

  std::mt19937 rng_;
  std::ostringstream body_;
};

using ElementSetMap = std::map<ArrayId, ElementSet>;

void checkAgainst(const GarList& symbolic, ArrayId array, const Binding& bnd,
                  const ElementSet& truth, const char* what, const std::string& src) {
  bool undecided = false;
  ElementSet got;
  for (const Gar& g : symbolic.gars()) {
    if (g.array() != array) continue;
    auto e = g.enumerate(bnd);
    if (!e) {
      undecided = true;
      continue;
    }
    got.insert(e->begin(), e->end());
  }
  if (undecided) {
    // over-approximation only: decidable pieces may not *miss* anything they
    // claim... nothing to check beyond coverage-by-Δ.
    return;
  }
  EXPECT_EQ(got, truth) << what << " mismatch\n--- program ---\n" << src;
}

class FuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzTest, AnalyzerMatchesInterpreterOnRandomKernels) {
  ProgramGen gen(GetParam() * 2654435761u + 17u);
  for (int round = 0; round < 30; ++round) {
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    DiagnosticEngine diags;
    auto program = parseProgram(src, diags);
    ASSERT_TRUE(program.has_value()) << diags.str() << "\n" << src;
    auto sema = analyze(*program, diags);
    ASSERT_TRUE(sema.has_value()) << diags.str() << "\n" << src;
    Hsg hsg = buildHsg(*program, *sema, diags);
    SummaryAnalyzer analyzer(*program, *sema, hsg, {});
    analyzer.analyzeAll();

    // The fuzzed loop is the second top-level DO of the main program.
    const Procedure& main = program->procedures[0];
    const Stmt* loop = nullptr;
    for (const StmtPtr& s : main.body)
      if (s->kind == Stmt::Kind::Do) loop = s.get();
    ASSERT_NE(loop, nullptr);
    const LoopSummary* ls = analyzer.loopSummary(loop);
    ASSERT_NE(ls, nullptr);

    Interpreter interp(*program, *sema);
    Interpreter::Config cfg;
    cfg.traceLoop = loop;
    auto res = interp.run(cfg);
    ASSERT_TRUE(res.ok) << res.error << "\n" << src;
    const LoopTrace& t = interp.trace();
    if (!ls->boundsKnown) continue;

    std::vector<ArrayId> arrays;
    for (const auto& [name, id] : sema->procs.at("fz").arrayIds) arrays.push_back(id);

    ElementSetMap modSoFar;
    for (std::size_t it = 0; it < t.iterEntry.size(); ++it) {
      Binding bnd = t.loopEntry;
      auto idx = t.iterEntry[it].find(ls->bounds.index);
      ASSERT_NE(idx, t.iterEntry[it].end());
      bnd[ls->bounds.index] = idx->second;

      auto truthOf = [&](const std::vector<ElementSetMap>& v, ArrayId a) {
        auto found = v[it].find(a);
        return found == v[it].end() ? ElementSet{} : found->second;
      };
      for (ArrayId a : arrays) {
        checkAgainst(ls->modIter, a, bnd, truthOf(t.modPerIter, a), "MOD_i", src);
        checkAgainst(ls->ueIter, a, bnd, truthOf(t.uePerIter, a), "UE_i", src);
        checkAgainst(ls->deIter, a, bnd, truthOf(t.dePerIter, a), "DE_i", src);
        auto before = modSoFar.find(a);
        checkAgainst(ls->modBefore, a, bnd,
                     before == modSoFar.end() ? ElementSet{} : before->second, "MOD_<i", src);
      }
      for (const auto& [a, elems] : t.modPerIter[it]) modSoFar[a].insert(elems.begin(), elems.end());
    }
    // Whole-loop sets against the whole-loop trace.
    for (ArrayId a : arrays) {
      auto whole = [&](const ElementSetMap& m) {
        auto f = m.find(a);
        return f == m.end() ? ElementSet{} : f->second;
      };
      checkAgainst(ls->mod, a, t.loopEntry, whole(t.modWhole), "MOD(L)", src);
      checkAgainst(ls->ue, a, t.loopEntry, whole(t.ueWhole), "UE(L)", src);
    }

    // Witness: anything the analyzer privatizes (in a loop it calls
    // parallel) must survive scrambled execution.
    LoopParallelizer lp(analyzer);
    LoopAnalysis la = lp.analyzeLoop(*loop, main);
    if (la.classification == LoopClass::Serial) continue;
    std::vector<ArrayId> privatized;
    std::set<ArrayId> dead;
    for (const ArrayPrivatization& ap : la.arrays) {
      if (!ap.privatizable) continue;
      privatized.push_back(ap.array);
      if (!ap.needsCopyOut) dead.insert(ap.array);
    }
    Interpreter scrambled(*program, *sema);
    Interpreter::Config scfg;
    scfg.privatizeLoop = loop;
    scfg.privatizedArrays = privatized;
    scfg.scrambleSeed = GetParam() + 3u;
    auto sres = scrambled.run(scfg);
    ASSERT_TRUE(sres.ok) << sres.error << "\n" << src;
    for (const auto& [id, store] : interp.arrays()) {
      if (dead.count(id)) continue;
      auto sIt = scrambled.arrays().find(id);
      std::map<std::vector<std::int64_t>, double> got;
      if (sIt != scrambled.arrays().end()) got = sIt->second;
      EXPECT_EQ(got, store) << "privatized execution diverged\n--- program ---\n" << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

std::string renderLoops(const ProgramAnalysis& pa) {
  std::ostringstream os;
  for (const LoopAnalysis& la : pa.loops)
    os << formatLoopAnalysis(la) << formatProvenance(la) << '\n';
  return os.str();
}

// Every random kernel the Fortran generator produces must survive the
// parse → builder::rebuild() replay with identical fingerprints and
// byte-identical loop reports: the fluent API spans the parser's output.
TEST_P(FuzzTest, BuilderRoundTripPreservesRandomKernels) {
  ProgramGen gen(GetParam() * 2654435761u + 29u);
  AnalysisOptions options;
  ThreadPool pool(1);
  for (int round = 0; round < 20; ++round) {
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    DiagnosticEngine diags;
    auto parsed = parseProgram(src, diags);
    ASSERT_TRUE(parsed.has_value()) << diags.str() << "\n" << src;

    builder::BuildResult rebuilt = builder::rebuild(*parsed);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.error() << "\n" << src;
    ASSERT_EQ(rebuilt.program->procedures.size(), parsed->procedures.size());
    for (std::size_t k = 0; k < parsed->procedures.size(); ++k)
      EXPECT_EQ(fingerprintProcedure(rebuilt.program->procedures[k]),
                fingerprintProcedure(parsed->procedures[k]))
          << parsed->procedures[k].name;

    ProgramAnalysis direct = analyzeProgramUnit(std::move(*parsed), options, pool);
    ProgramAnalysis replayed = analyzeProgramUnit(std::move(*rebuilt.program), options, pool);
    ASSERT_TRUE(direct.ok) << direct.error;
    ASSERT_TRUE(replayed.ok) << replayed.error;
    EXPECT_EQ(renderLoops(direct), renderLoops(replayed));
  }
}

/// Generates random well-formed programs directly through the fluent
/// ProgramBuilder API (no text involved): nested loops, guards with else
/// branches, affine stores and scalar temps over a fixed symbol table.
class BuilderGen {
 public:
  explicit BuilderGen(unsigned seed) : rng_(seed) {}

  builder::BuildResult generate() {
    using builder::sym;
    builder::ProgramBuilder b;
    builder::ProcedureBuilder& p = b.mainProgram("fz");
    p.array("wa", {200}).array("wb", {200}).array("wc", {200});
    p.integer("n").integer("m").real("t");
    p.assign("n", pick(3, 8));
    p.assign("m", pick(2, 6));
    p.assign("t", 0.0);
    p.beginLoop("i", 1, sym("n"));
    int stmts = pick(2, 5);
    for (int k = 0; k < stmts; ++k) genStmt(p, 1, false);
    p.endLoop();
    return b.build();
  }

 private:
  int pick(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng_); }
  bool coin() { return pick(0, 1) == 1; }

  std::string arrayName() {
    const char* names[] = {"wa", "wb", "wc"};
    return names[pick(0, 2)];
  }

  builder::Val subscript(bool inner) {
    using builder::cst;
    using builder::sym;
    switch (pick(0, 4)) {
      case 0: return cst(pick(1, 30));
      case 1: return sym("i") + pick(0, 20);
      case 2: return sym("i") * 2 + pick(1, 9);
      case 3: return inner ? sym("j") + pick(0, 20) : sym("i") + 1;
      default: return inner ? sym("i") + sym("j") : sym("i") * 2 + 1;
    }
  }

  builder::Val valueExpr(bool inner) {
    using builder::elem;
    using builder::sym;
    switch (pick(0, 3)) {
      case 0: return sym("i") * 2 + 1;
      case 1: return elem(arrayName(), {subscript(inner)}) + 1;
      case 2: return sym("t") + sym("i");
      default: return elem(arrayName(), {subscript(inner)}) * 2 + sym("i");
    }
  }

  void genStmt(builder::ProcedureBuilder& p, int depth, bool inner) {
    using builder::elem;
    using builder::sym;
    int kind = pick(0, 7);
    if (depth >= 3) kind = pick(0, 3);  // cap nesting
    switch (kind) {
      case 0:
      case 1: {
        p.store(arrayName(), {subscript(inner)}, valueExpr(inner));
        return;
      }
      case 2: {
        p.assign("t", valueExpr(inner));
        return;
      }
      case 3: {
        p.assign("t", valueExpr(inner));
        p.store(arrayName(), {subscript(inner)}, sym("t"));
        return;
      }
      case 4:
      case 5: {  // inner loop over j
        p.beginLoop("j", 1, coin() ? sym("m") : builder::cst(pick(2, 5)));
        int stmts = pick(1, 2);
        for (int k = 0; k < stmts; ++k) genStmt(p, depth + 1, true);
        p.endLoop();
        return;
      }
      default: {  // guard, sometimes with an else branch
        p.beginGuard(coin() ? sym("i") <= pick(1, 6)
                            : elem(arrayName(), {subscript(inner)}) > builder::rcst(5.0));
        genStmt(p, depth + 1, inner);
        if (coin()) {
          p.beginElse();
          genStmt(p, depth + 1, inner);
        }
        p.endGuard();
        return;
      }
    }
  }

  std::mt19937 rng_;
};

// Random fluent-API programs build cleanly, run the full pipeline, and are
// themselves rebuild()-stable (builder ∘ builder = builder).
TEST_P(FuzzTest, RandomBuilderProgramsRunTheFullPipeline) {
  BuilderGen gen(GetParam() * 2246822519u + 11u);
  AnalysisOptions options;
  ThreadPool pool(1);
  for (int round = 0; round < 20; ++round) {
    builder::BuildResult built = gen.generate();
    ASSERT_TRUE(built.ok()) << built.error();

    builder::BuildResult replay = builder::rebuild(*built.program);
    ASSERT_TRUE(replay.ok()) << replay.error();
    ASSERT_EQ(replay.program->procedures.size(), built.program->procedures.size());
    for (std::size_t k = 0; k < built.program->procedures.size(); ++k)
      EXPECT_EQ(fingerprintProcedure(replay.program->procedures[k]),
                fingerprintProcedure(built.program->procedures[k]));

    ProgramAnalysis pa = analyzeProgramUnit(std::move(*built.program), options, pool);
    ASSERT_TRUE(pa.ok) << pa.error;
    ASSERT_FALSE(pa.loops.empty());
    for (const LoopAnalysis& la : pa.loops) {
      // Reports render without crashing; classification is one of the three.
      EXPECT_FALSE(formatLoopAnalysis(la).empty());
      EXPECT_NE(toString(la.classification), nullptr);
    }
  }
}

// ----- comment/blank-line-only resubmits (DESIGN.md §4.9 line remap) -------
//
// For a random kernel, insert a comment or blank line at EVERY line
// boundary in turn and resubmit to a persistent session. No fingerprint
// changes, so the contract is absolute: dirty cone 0 at every position,
// and every cached loop report re-cited at its post-edit line —
// byte-identical to a cold analysis of the shifted source.
std::string renderSession(const SessionResult& r) {
  std::ostringstream os;
  for (const SessionLoopResult& loop : r.loops)
    os << loop.procName << " | line " << loop.line << " | " << toString(loop.classification)
       << '\n'
       << loop.report << loop.provenance << '\n';
  return os.str();
}

TEST_P(FuzzTest, CommentOnlyResubmitsBetweenEveryStatementStayClean) {
  ProgramGen gen(GetParam() * 40503u + 23u);
  const std::string src = gen.generate();
  SCOPED_TRACE(src);

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < src.size()) {
    std::size_t end = src.find('\n', start);
    if (end == std::string::npos) end = src.size();
    lines.push_back(src.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GT(lines.size(), 3u);

  AnalysisSession session;
  SessionResult cold = session.submit(src);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_FALSE(cold.loops.empty());

  const char* fillers[] = {"c fuzz comment shift", "", "! trailing-style comment"};
  for (std::size_t at = 0; at <= lines.size(); ++at) {
    const std::string filler = fillers[at % 3];
    std::string shifted;
    for (std::size_t k = 0; k < lines.size(); ++k) {
      if (k == at) shifted += filler + "\n";
      shifted += lines[k] + "\n";
    }
    if (at == lines.size()) shifted += filler + "\n";

    SessionResult warm = session.submit(shifted);
    ASSERT_TRUE(warm.ok) << "insert at line " << at << ":\n" << warm.error;
    EXPECT_EQ(warm.stats.dirty, 0u) << "insert at line " << at;
    EXPECT_EQ(warm.stats.modified, 0u) << "insert at line " << at;

    // Every loop strictly below the insertion point cites one line lower;
    // loops above it keep their cold line.
    ASSERT_EQ(cold.loops.size(), warm.loops.size()) << "insert at line " << at;
    for (std::size_t k = 0; k < cold.loops.size(); ++k) {
      const int expected =
          cold.loops[k].line + (static_cast<std::size_t>(cold.loops[k].line) > at ? 1 : 0);
      EXPECT_EQ(expected, warm.loops[k].line) << "insert at line " << at << ", loop " << k;
    }

    // Byte-identity against a cold analysis of the shifted source.
    AnalysisSession coldSession;
    SessionResult reference = coldSession.submit(shifted);
    ASSERT_TRUE(reference.ok) << reference.error;
    EXPECT_EQ(renderSession(reference), renderSession(warm)) << "insert at line " << at;
  }
}

}  // namespace
}  // namespace panorama
