// The evaluation backbone: every Perfect-corpus kernel must (a) parse,
// analyze and execute, and (b) reproduce the paper's Table 1 / Table 2
// matrix — which arrays are privatizable under the full analysis, and which
// of T1 (symbolic), T2 (IF conditions), T3 (interprocedural) are *required*
// (disabling a required technique must lose at least one listed array;
// disabling an unrequired one must lose none).
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"

namespace panorama {
namespace {

struct CorpusRun {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
  LoopAnalysis loop;
};

CorpusRun analyzeCorpusLoop(const CorpusLoop& cl, AnalysisOptions options) {
  CorpusRun r;
  DiagnosticEngine diags;
  auto p = parseProgram(cl.source, diags);
  EXPECT_TRUE(p.has_value()) << cl.id << ": " << diags.str();
  r.program = std::move(*p);
  auto sr = analyze(r.program, diags);
  EXPECT_TRUE(sr.has_value()) << cl.id << ": " << diags.str();
  r.sema = std::move(*sr);
  r.hsg = buildHsg(r.program, r.sema, diags);
  EXPECT_FALSE(diags.hasErrors()) << cl.id << ": " << diags.str();
  r.analyzer = std::make_unique<SummaryAnalyzer>(r.program, r.sema, r.hsg, options);
  r.analyzer->analyzeAll();
  const Stmt* loop = findOuterLoop(r.program, cl.routine, cl.outerLoopIndex);
  EXPECT_NE(loop, nullptr) << cl.id;
  LoopParallelizer lp(*r.analyzer);
  r.loop = lp.analyzeLoop(*loop, *r.program.findProcedure(cl.routine));
  return r;
}

bool arrayPrivatizable(const LoopAnalysis& la, const std::string& name) {
  for (const ArrayPrivatization& ap : la.arrays)
    if (ap.name == name) return ap.privatizable;
  return false;
}

/// True when every Table-2 "yes" array of the loop is privatizable.
bool allListedPrivatizable(const LoopAnalysis& la, const CorpusLoop& cl) {
  for (const std::string& name : cl.privatizable)
    if (!arrayPrivatizable(la, name)) return false;
  return true;
}

class CorpusMatrixTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorpusMatrixTest, Table2FullAnalysisStatus) {
  const CorpusLoop& cl = perfectCorpus()[GetParam()];
  CorpusRun r = analyzeCorpusLoop(cl, {});
  for (const std::string& name : cl.privatizable)
    EXPECT_TRUE(arrayPrivatizable(r.loop, name))
        << cl.id << ": " << name << " should be privatizable\n"
        << formatLoopAnalysis(r.loop);
  for (const std::string& name : cl.notPrivatizable)
    EXPECT_FALSE(arrayPrivatizable(r.loop, name))
        << cl.id << ": " << name << " must stay non-privatizable (base analysis)";
}

TEST_P(CorpusMatrixTest, Table1TechniqueRequirements) {
  const CorpusLoop& cl = perfectCorpus()[GetParam()];
  struct Config {
    const char* name;
    bool expectedNeeded;
    AnalysisOptions options;
  };
  AnalysisOptions noT1;
  noT1.symbolicAnalysis = false;
  AnalysisOptions noT2;
  noT2.ifConditions = false;
  AnalysisOptions noT3;
  noT3.interprocedural = false;
  const Config configs[] = {
      {"T1 (symbolic)", cl.needsT1, noT1},
      {"T2 (IF conditions)", cl.needsT2, noT2},
      {"T3 (interprocedural)", cl.needsT3, noT3},
  };
  for (const Config& cfg : configs) {
    CorpusRun r = analyzeCorpusLoop(cl, cfg.options);
    bool stillWorks = allListedPrivatizable(r.loop, cl);
    if (cfg.expectedNeeded) {
      EXPECT_FALSE(stillWorks) << cl.id << ": paper says " << cfg.name
                               << " is required, but privatization survived without it";
    } else {
      EXPECT_TRUE(stillWorks) << cl.id << ": paper says " << cfg.name
                              << " is NOT required, but privatization was lost\n"
                              << formatLoopAnalysis(r.loop);
    }
  }
}

TEST_P(CorpusMatrixTest, KernelExecutes) {
  const CorpusLoop& cl = perfectCorpus()[GetParam()];
  DiagnosticEngine diags;
  auto p = parseProgram(cl.source, diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value()) << diags.str();
  Interpreter interp(*p, *sr);
  Interpreter::Config cfg;
  cfg.traceLoop = findOuterLoop(*p, cl.routine, cl.outerLoopIndex);
  ASSERT_NE(cfg.traceLoop, nullptr);
  auto res = interp.run(cfg);
  ASSERT_TRUE(res.ok) << cl.id << ": " << res.error;
  EXPECT_FALSE(interp.trace().iterOps.empty()) << cl.id;
  EXPECT_GT(res.steps, 100u) << cl.id;
}

TEST_P(CorpusMatrixTest, PrivatizedExecutionWitness) {
  // Semantics check: executing the loop with shuffled iterations and
  // per-iteration private copies of the privatized arrays must produce
  // bitwise-identical array memory — the transformation the analysis
  // licenses is actually safe on this input.
  const CorpusLoop& cl = perfectCorpus()[GetParam()];
  CorpusRun r = analyzeCorpusLoop(cl, {});
  const ProcSymbols& sym = r.sema.procs.at(cl.routine);
  // Privatize the ground-truth set: what the analysis proved plus what the
  // paper says is privatizable even though the base analysis cannot prove
  // it (MDG's RL) — the witness validates that claim semantically.
  std::vector<ArrayId> privatized;
  std::set<ArrayId> skipCompare;  // privatized & dead after the loop
  for (const ArrayPrivatization& ap : r.loop.arrays) {
    bool groundTruth =
        ap.privatizable || std::find(cl.notPrivatizable.begin(), cl.notPrivatizable.end(),
                                     ap.name) != cl.notPrivatizable.end();
    if (!groundTruth) continue;
    privatized.push_back(ap.array);
    // Without copy-out the array is dead after the loop: its final bits are
    // unspecified and must not be compared.
    if (!ap.needsCopyOut) skipCompare.insert(ap.array);
  }
  ASSERT_FALSE(privatized.empty()) << cl.id;

  const Stmt* loop = findOuterLoop(r.program, cl.routine, cl.outerLoopIndex);
  Interpreter serial(r.program, r.sema);
  auto sres = serial.run({});
  ASSERT_TRUE(sres.ok) << sres.error;

  auto comparable = [&](const Interpreter& interp) {
    std::map<ArrayId, std::map<std::vector<std::int64_t>, double>> out;
    for (const auto& [id, store] : interp.arrays())
      if (!skipCompare.count(id)) out.emplace(id, store);
    return out;
  };
  (void)sym;

  for (unsigned seed : {1u, 7u, 42u}) {
    Interpreter scrambled(r.program, r.sema);
    Interpreter::Config cfg;
    cfg.privatizeLoop = loop;
    cfg.privatizedArrays = privatized;
    cfg.scrambleSeed = seed;
    auto pres = scrambled.run(cfg);
    ASSERT_TRUE(pres.ok) << cl.id << ": " << pres.error;
    EXPECT_EQ(comparable(serial), comparable(scrambled))
        << cl.id << ": privatized execution diverged (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllLoops, CorpusMatrixTest,
                         ::testing::Range<std::size_t>(0, 12),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name = perfectCorpus()[info.param].id;
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(CorpusTest, Fig1ExamplesAnalyzeAsInThePaper) {
  struct Expect {
    const char* source;
    const char* routine;
    const char* array;
    bool privatizable;
  };
  const Expect cases[] = {
      {fig1aSource(), "interf", "a", false},  // needs ∀ quantifiers (§5.2)
      {fig1aSource(), "interf", "b", true},
      {fig1bSource(), "filer", "a", true},
      {fig1cSource(), "drive", "a", true},
  };
  for (const Expect& e : cases) {
    CorpusLoop fake;
    fake.id = e.routine;
    fake.routine = e.routine;
    fake.outerLoopIndex = 0;
    fake.source = e.source;
    CorpusRun r = analyzeCorpusLoop(fake, {});
    EXPECT_EQ(arrayPrivatizable(r.loop, e.array), e.privatizable)
        << e.routine << "/" << e.array << "\n"
        << formatLoopAnalysis(r.loop);
  }
}

TEST(CorpusTest, Fig1ClassificationsAndProvenanceSummaries) {
  // The classifications the paper's Figure 1 walkthrough implies, plus the
  // one-line decision digest each verdict rests on.
  struct Expect {
    const char* source;
    const char* routine;
    LoopClass classification;
    const char* summary;
  };
  const Expect cases[] = {
      // Fig 1(a): `a` needs the ∀-quantified proof of §5.2, so the base
      // analysis cannot discharge the flow test and the loop stays serial.
      {fig1aSource(), "interf", LoopClass::Serial,
       "serial: flow-test unresolved on a; carried-flow unresolved; "
       "carried-output unresolved; carried-anti unresolved"},
      {fig1bSource(), "filer", LoopClass::ParallelAfterPrivatization,
       "parallel (after privatization) [privatized: a]"},
      {fig1cSource(), "drive", LoopClass::ParallelAfterPrivatization,
       "parallel (after privatization) [privatized: a]"},
  };
  for (const Expect& e : cases) {
    CorpusLoop fake;
    fake.id = e.routine;
    fake.routine = e.routine;
    fake.outerLoopIndex = 0;
    fake.source = e.source;
    CorpusRun r = analyzeCorpusLoop(fake, {});
    EXPECT_EQ(r.loop.classification, e.classification) << e.routine;
    EXPECT_EQ(provenanceSummary(r.loop), e.summary) << formatProvenance(r.loop);
    // The trail always ends in a Classification record that names the final
    // verdict, and --explain renders one "why" line per evidence entry.
    ASSERT_FALSE(r.loop.provenance.evidence.empty()) << e.routine;
    const obs::Evidence& last = r.loop.provenance.evidence.back();
    EXPECT_EQ(last.kind, obs::EvidenceKind::Classification);
    EXPECT_EQ(last.subject, toString(e.classification));
    std::string rendered = formatProvenance(r.loop);
    std::size_t whyLines = 0;
    for (std::size_t pos = 0; (pos = rendered.find("    why ", pos)) != std::string::npos;
         pos += 8)
      ++whyLines;
    EXPECT_EQ(whyLines,
              r.loop.provenance.evidence.size() + r.loop.provenance.notes.size());
  }
}

TEST(CorpusTest, Fig1aFlowTestEvidenceCarriesRegionText) {
  // The unresolved UE_i ∩ MOD_<i test on Fig 1(a)'s `a` must show the two
  // region lists it compared — that is the point of --explain.
  CorpusLoop fake;
  fake.id = "interf";
  fake.routine = "interf";
  fake.outerLoopIndex = 0;
  fake.source = fig1aSource();
  CorpusRun r = analyzeCorpusLoop(fake, {});
  bool found = false;
  for (const obs::Evidence* e : r.loop.provenance.ofKind(obs::EvidenceKind::FlowTest)) {
    if (e->subject != "a") continue;
    found = true;
    EXPECT_NE(e->verdict, Truth::True);
    EXPECT_NE(e->detail.find("UE_i = "), std::string::npos) << e->detail;
    EXPECT_NE(e->detail.find("MOD_<i = "), std::string::npos) << e->detail;
  }
  EXPECT_TRUE(found) << formatProvenance(r.loop);
}

TEST(CorpusTest, Fig1ExamplesExecute) {
  for (const char* src : {fig1aSource(), fig1bSource(), fig1cSource()}) {
    DiagnosticEngine diags;
    auto p = parseProgram(src, diags);
    ASSERT_TRUE(p.has_value()) << diags.str();
    auto sr = analyze(*p, diags);
    ASSERT_TRUE(sr.has_value()) << diags.str();
    Interpreter interp(*p, *sr);
    auto res = interp.run({});
    EXPECT_TRUE(res.ok) << res.error;
  }
}

}  // namespace
}  // namespace panorama
