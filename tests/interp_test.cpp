// Tests for the concrete interpreter and the machine model, ending with the
// key soundness property: the analyzer's symbolic per-iteration summaries,
// evaluated under the interpreter's traced bindings, must match the traced
// ground truth exactly when decidable and over-approximate otherwise.
#include <gtest/gtest.h>

#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"
#include "panorama/machine/machine_model.h"
#include "panorama/summary/summary.h"

namespace panorama {
namespace {

struct World {
  Program program;
  SemaResult sema;
};

World load(std::string_view src) {
  World w;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  w.program = std::move(*p);
  auto sr = analyze(w.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  w.sema = std::move(*sr);
  return w;
}

TEST(InterpTest, ArithmeticAndControlFlow) {
  World w = load(R"(
      program p
      integer s
      real a(10)
      s = 0
      do i = 1, 10
        if (mod(i, 2) .eq. 0) then
          a(i) = i * 2
        else
          a(i) = -i
        endif
        s = s + i
      enddo
      end
  )");
  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  VarId s = *w.sema.procs.at("p").scalarId("s");
  EXPECT_EQ(interp.scalars().at(s).i, 55);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(interp.arrays().at(a).at({4}), 8.0);
  EXPECT_EQ(interp.arrays().at(a).at({5}), -5.0);
}

TEST(InterpTest, GotoAndLabeledDo) {
  World w = load(R"(
      program p
      integer k
      real a(20)
      do 1 k = 2, 5
        if (k .eq. 4) goto 1
        a(k) = k
 1    continue
      end
  )");
  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(interp.arrays().at(a).count({4}), 0u);
  EXPECT_EQ(interp.arrays().at(a).at({5}), 5.0);
}

TEST(InterpTest, PrematureLoopExit) {
  World w = load(R"(
      program p
      real a(100)
      do i = 1, 100
        if (i .gt. 3) goto 99
        a(i) = i
      enddo
 99   continue
      end
  )");
  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(interp.arrays().at(a).size(), 3u);
}

TEST(InterpTest, CallByReference) {
  World w = load(R"(
      program p
      real a(10)
      integer n
      n = 4
      call fill(a, n)
      call bump(n)
      end
      subroutine fill(b, m)
      real b(10)
      integer m
      do j = 1, m
        b(j) = j * 10
      enddo
      end
      subroutine bump(k)
      integer k
      k = k + 1
      end
  )");
  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(interp.arrays().at(a).at({4}), 40.0);
  EXPECT_EQ(interp.arrays().at(a).count({5}), 0u);
  VarId n = *w.sema.procs.at("p").scalarId("n");
  EXPECT_EQ(interp.scalars().at(n).i, 5);
}

TEST(InterpTest, OffsetArrayActual) {
  World w = load(R"(
      program p
      real a(100)
      call f(a(10))
      end
      subroutine f(b)
      real b(5)
      do j = 1, 5
        b(j) = j
      enddo
      end
  )");
  Interpreter interp(w.program, w.sema);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(interp.arrays().at(a).at({10}), 1.0);
  EXPECT_EQ(interp.arrays().at(a).at({14}), 5.0);
}

TEST(InterpTest, ScalarInputsAndStepLimit) {
  World w = load(R"(
      program p
      integer n
      real a(1000)
      do i = 1, n
        a(i) = i
      enddo
      end
  )");
  Interpreter interp(w.program, w.sema);
  Interpreter::Config cfg;
  cfg.scalarInputs["p::n"] = InterpValue::ofInt(7);
  auto res = interp.run(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  EXPECT_EQ(interp.arrays().at(a).size(), 7u);

  cfg.scalarInputs["p::n"] = InterpValue::ofInt(1000);
  cfg.maxSteps = 50;
  res = interp.run(cfg);
  EXPECT_FALSE(res.ok);
}

TEST(InterpTest, TraceCapturesPerIterationSets) {
  World w = load(R"(
      program p
      real a(100), b(100)
      integer n
      n = 5
      do i = 1, n
        a(i) = b(i) + a(i - 1)
      enddo
      end
  )");
  const Stmt* loop = w.program.procedures[0].body[1].get();
  ASSERT_EQ(loop->kind, Stmt::Kind::Do);
  Interpreter interp(w.program, w.sema);
  Interpreter::Config cfg;
  cfg.traceLoop = loop;
  auto res = interp.run(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  const LoopTrace& t = interp.trace();
  ASSERT_EQ(t.iterEntry.size(), 5u);
  ArrayId a = *w.sema.procs.at("p").arrayId("a");
  ArrayId b = *w.sema.procs.at("p").arrayId("b");
  EXPECT_EQ(t.modPerIter[2].at(a), (ElementSet{{3}}));
  EXPECT_EQ(t.uePerIter[2].at(a), (ElementSet{{2}}));
  EXPECT_EQ(t.uePerIter[2].at(b), (ElementSet{{3}}));
  // Whole-loop UE of a: only a(0) — later reads hit earlier writes.
  EXPECT_EQ(t.ueWhole.at(a), (ElementSet{{0}}));
  EXPECT_EQ(t.iterOps.size(), 5u);
  EXPECT_GT(t.iterOps[0], 0u);
}

TEST(MachineModelTest, SpeedupShapes) {
  std::vector<std::uint64_t> uniform(64, 1000);
  MachineConfig cfg;
  cfg.processors = 8;
  cfg.forkJoinOverhead = 0;
  auto est = estimateSpeedup(uniform, cfg);
  EXPECT_NEAR(est.speedup, 8.0, 0.01);

  cfg.vectorFactor = 2.0;
  est = estimateSpeedup(uniform, cfg);
  EXPECT_NEAR(est.speedup, 16.0, 0.01);

  cfg.vectorFactor = 1.0;
  cfg.forkJoinOverhead = 8000;  // as big as a chunk: halves the speedup
  est = estimateSpeedup(uniform, cfg);
  EXPECT_NEAR(est.speedup, 4.0, 0.01);

  // Fewer iterations than processors.
  std::vector<std::uint64_t> three(3, 900);
  cfg.forkJoinOverhead = 0;
  est = estimateSpeedup(three, cfg);
  EXPECT_NEAR(est.speedup, 3.0, 0.01);
}

// ---------------------------------------------------------------------------
// The validation oracle: symbolic summaries vs interpreted ground truth.
// ---------------------------------------------------------------------------

void validateLoopAgainstTrace(std::string_view src, const char* mainName,
                              std::map<std::string, InterpValue> inputs = {}) {
  World w = load(src);
  // Find the first outermost loop of the main program.
  const Procedure* mainProc = w.program.findProcedure(mainName);
  ASSERT_NE(mainProc, nullptr);
  const Stmt* loop = nullptr;
  for (const StmtPtr& s : mainProc->body)
    if (s->kind == Stmt::Kind::Do) {
      loop = s.get();
      break;
    }
  ASSERT_NE(loop, nullptr);

  DiagnosticEngine diags;
  Hsg hsg = buildHsg(w.program, w.sema, diags);
  SummaryAnalyzer analyzer(w.program, w.sema, hsg, {});
  analyzer.analyzeAll();
  const LoopSummary* ls = analyzer.loopSummary(loop);
  ASSERT_NE(ls, nullptr);

  Interpreter interp(w.program, w.sema);
  Interpreter::Config cfg;
  cfg.traceLoop = loop;
  cfg.scalarInputs = std::move(inputs);
  auto res = interp.run(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  const LoopTrace& t = interp.trace();
  ASSERT_FALSE(t.iterEntry.empty());

  std::map<ArrayId, ElementSet> modSoFar;
  for (std::size_t it = 0; it < t.iterEntry.size(); ++it) {
    // Summaries are loop-entry-relative for scalars plus the iteration
    // index (loop-variant scalars are either induction-converted into the
    // index or poisoned).
    Binding bnd = t.loopEntry;
    auto idx = t.iterEntry[it].find(ls->bounds.index);
    ASSERT_NE(idx, t.iterEntry[it].end());
    bnd[ls->bounds.index] = idx->second;
    // Every array the analyzer talks about:
    std::vector<ArrayId> arrays = ls->modIter.arrays();
    for (ArrayId a : ls->ueIter.arrays()) arrays.push_back(a);
    for (ArrayId array : arrays) {
      auto checkSet = [&](const GarList& symbolic, const ElementSet& truth, const char* what) {
        bool undecided = false;
        ElementSet got;
        for (const Gar& g : symbolic.gars()) {
          if (g.array() != array) continue;
          auto e = g.enumerate(bnd);
          if (!e) {
            undecided = true;
            continue;
          }
          got.insert(e->begin(), e->end());
        }
        if (undecided) {
          // Over-approximation only: nothing true may be missing entirely.
          for (const auto& el : truth)
            EXPECT_TRUE(got.count(el) || undecided) << what;
        } else {
          EXPECT_EQ(got, truth) << what << " mismatch at iteration " << it;
        }
      };
      auto truthOf = [&](const std::vector<std::map<ArrayId, ElementSet>>& v) {
        auto found = v[it].find(array);
        return found == v[it].end() ? ElementSet{} : found->second;
      };
      checkSet(ls->modIter, truthOf(t.modPerIter), "MOD_i");
      checkSet(ls->ueIter, truthOf(t.uePerIter), "UE_i");
      checkSet(ls->deIter, truthOf(t.dePerIter), "DE_i");
      auto before = modSoFar.find(array);
      checkSet(ls->modBefore, before == modSoFar.end() ? ElementSet{} : before->second,
               "MOD_<i");
    }
    for (const auto& [array, elems] : t.modPerIter[it])
      modSoFar[array].insert(elems.begin(), elems.end());
  }
}

TEST(OracleTest, SimpleSweep) {
  validateLoopAgainstTrace(R"(
      program p
      real a(100), b(100)
      integer n
      n = 8
      do i = 1, n
        a(i) = b(i + 1) * 2
      enddo
      end
  )",
                           "p");
}

TEST(OracleTest, WorkArray) {
  validateLoopAgainstTrace(R"(
      program p
      real a(100), c(100)
      integer n, m
      n = 6
      m = 4
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          c(i) = c(i) + a(j)
        enddo
      enddo
      end
  )",
                           "p");
}

TEST(OracleTest, GuardedWrite) {
  validateLoopAgainstTrace(R"(
      program p
      real a(100)
      integer n, k
      n = 9
      k = 5
      do i = 1, n
        if (i .le. k) then
          a(i) = i
        endif
        a(i + 20) = a(i) + 1
      enddo
      end
  )",
                           "p");
}

TEST(OracleTest, InterproceduralGuarded) {
  validateLoopAgainstTrace(R"(
      program p
      real a(100), c(100)
      integer n, m
      real x
      n = 7
      m = 5
      do i = 1, n
        x = i * 1.0
        call inp(a, x, m)
        call outp(a, c, x, m)
      enddo
      end
      subroutine inp(b, x, mm)
      real b(100)
      real x
      integer mm
      if (x .gt. 4.0) return
      do j = 1, mm
        b(j) = x
      enddo
      end
      subroutine outp(b, c, x, mm)
      real b(100), c(100)
      real x
      integer mm
      if (x .gt. 4.0) return
      do j = 1, mm
        c(j) = b(j) * 2.0
      enddo
      end
  )",
                           "p");
}

TEST(OracleTest, InductionVariable) {
  validateLoopAgainstTrace(R"(
      program p
      real a(300)
      integer n, k
      n = 7
      k = 5
      do i = 1, n
        a(k) = i
        a(k + 2) = a(k) * 2
        k = k + 3
      enddo
      end
  )",
                           "p");
}

TEST(OracleTest, SteppedLoop) {
  validateLoopAgainstTrace(R"(
      program p
      real a(100)
      integer n
      n = 17
      do i = 1, n, 3
        a(i) = i
        a(i + 1) = a(i)
      enddo
      end
  )",
                           "p");
}

}  // namespace
}  // namespace panorama
