// Per-item fingerprints and the lockstep SourceLoc remap (ast/fingerprint,
// DESIGN.md §4.9): the invariants the session's loop-granular matcher rests
// on. An item's (hash, suffixHash) must ignore line positions, an edit to
// item k must change the suffix of every item at or before k and nothing
// after it, and remapSourceLocs must move a fingerprint-equal procedure's
// citations to the post-edit lines without touching structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>

#include "panorama/ast/fingerprint.h"
#include "panorama/frontend/parser.h"

namespace panorama {
namespace {

/// Three independent top-level nests plus a trailing assignment; `edited`
/// changes a constant inside nest `editedNest` (1-based, 0 = none) and
/// `comment` prepends a comment line that shifts every statement down one.
std::string kernSource(int editedNest, bool comment = false) {
  std::string src = "      subroutine kern(a, b, n)\n";
  src += "      integer n\n";
  src += "      real a(100,4)\n";
  src += "      real b(100,4)\n";
  src += "      real t\n";
  if (comment) src += "c shifted down by one line\n";
  for (int k = 1; k <= 3; ++k) {
    const int lbl = 10 * k;
    const std::string col = std::to_string(k);
    const std::string c = (k == editedNest) ? "3.0" : "1.0";
    src += "      do " + std::to_string(lbl) + " i = 1, n\n";
    src += "      t = a(i," + col + ") + " + c + "\n";
    src += "      b(i," + col + ") = t * 2.0\n";
    src += std::to_string(lbl) + "    continue\n";
  }
  src += "      b(1,1) = 0.0\n";
  src += "      end\n";
  return src;
}

const Procedure& parseKern(const std::string& src, std::optional<Program>& keepAlive) {
  DiagnosticEngine diags;
  keepAlive = parseProgram(src, diags);
  EXPECT_TRUE(keepAlive.has_value()) << diags.str();
  return keepAlive->procedures.front();
}

TEST(FingerprintDetailTest, ItemsIgnoreLineShifts) {
  std::optional<Program> a, b;
  const ProcFingerprintDetail plain = fingerprintProcedureDetail(parseKern(kernSource(0), a));
  const ProcFingerprintDetail shifted =
      fingerprintProcedureDetail(parseKern(kernSource(0, /*comment=*/true), b));

  EXPECT_EQ(plain.whole, shifted.whole);
  EXPECT_EQ(plain.frame, shifted.frame);
  ASSERT_EQ(plain.items.size(), shifted.items.size());
  ASSERT_EQ(plain.items.size(), 4u);  // three nests + trailing assignment
  for (std::size_t k = 0; k < plain.items.size(); ++k) {
    EXPECT_EQ(plain.items[k].hash, shifted.items[k].hash) << "item " << k;
    EXPECT_EQ(plain.items[k].suffixHash, shifted.items[k].suffixHash) << "item " << k;
    EXPECT_EQ(plain.items[k].precedingHash, shifted.items[k].precedingHash) << "item " << k;
  }
  EXPECT_TRUE(plain.items[0].hasLoop);
  EXPECT_FALSE(plain.items[3].hasLoop);
}

TEST(FingerprintDetailTest, EditDirtiesTheSuffixOfEarlierItemsOnly) {
  std::optional<Program> a, b;
  const ProcFingerprintDetail base = fingerprintProcedureDetail(parseKern(kernSource(0), a));
  const ProcFingerprintDetail edited = fingerprintProcedureDetail(parseKern(kernSource(2), b));

  ASSERT_EQ(base.items.size(), edited.items.size());
  EXPECT_NE(base.whole, edited.whole);
  EXPECT_EQ(base.frame, edited.frame);  // declarations untouched

  // Item 1 (the second nest) carries the edit: its own hash changes.
  EXPECT_EQ(base.items[0].hash, edited.items[0].hash);
  EXPECT_NE(base.items[1].hash, edited.items[1].hash);
  EXPECT_EQ(base.items[2].hash, edited.items[2].hash);
  EXPECT_EQ(base.items[3].hash, edited.items[3].hash);

  // Every item strictly before the edit sees a changed suffix (the backward
  // walk's ueAfter reads it); the edited item's own suffix covers only what
  // FOLLOWS it, so it and everything after are unchanged.
  EXPECT_NE(base.items[0].suffixHash, edited.items[0].suffixHash);
  EXPECT_EQ(base.items[1].suffixHash, edited.items[1].suffixHash);
  EXPECT_EQ(base.items[2].suffixHash, edited.items[2].suffixHash);
  EXPECT_EQ(base.items[3].suffixHash, edited.items[3].suffixHash);
}

TEST(FingerprintDetailTest, FrameHashCoversDeclarations) {
  std::optional<Program> a, b;
  std::string widened = kernSource(0);
  const std::string decl = "      real a(100,4)\n";
  widened.replace(widened.find(decl), decl.size(), "      real a(200,4)\n");
  const ProcFingerprintDetail base = fingerprintProcedureDetail(parseKern(kernSource(0), a));
  const ProcFingerprintDetail wide = fingerprintProcedureDetail(parseKern(widened, b));
  EXPECT_NE(base.frame, wide.frame);
  EXPECT_NE(base.whole, wide.whole);
}

TEST(FingerprintDetailTest, CalleesCoverSubtreeAndSuffix) {
  const char* src = R"(
      subroutine kern(a, n)
      integer n
      real a(100)
      do 10 i = 1, n
      call first(a, i)
10    continue
      do 20 i = 1, n
      call second(a, i)
20    continue
      end
)";
  std::optional<Program> keep;
  const ProcFingerprintDetail detail = fingerprintProcedureDetail(parseKern(src, keep));
  ASSERT_EQ(detail.items.size(), 2u);
  // Item 0's verdict may read both summaries (its suffix contains item 1);
  // item 1's only its own callee.
  auto has = [](const std::vector<std::string>& v, const char* name) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  EXPECT_TRUE(has(detail.items[0].callees, "first"));
  EXPECT_TRUE(has(detail.items[0].callees, "second"));
  EXPECT_FALSE(has(detail.items[1].callees, "first"));
  EXPECT_TRUE(has(detail.items[1].callees, "second"));
}

TEST(FingerprintRemapTest, RemapMovesLoopCitationsToPostEditLines) {
  DiagnosticEngine diags;
  std::optional<Program> oldProg = parseProgram(kernSource(0), diags);
  std::optional<Program> newProg = parseProgram(kernSource(0, /*comment=*/true), diags);
  ASSERT_TRUE(oldProg.has_value() && newProg.has_value()) << diags.str();
  Procedure& to = oldProg->procedures.front();
  const Procedure& from = newProg->procedures.front();
  ASSERT_EQ(fingerprintProcedure(to), fingerprintProcedure(from));

  ASSERT_TRUE(remapSourceLocs(to, from));

  // Every statement in the kept AST now cites the shifted position.
  ASSERT_EQ(to.body.size(), from.body.size());
  for (std::size_t k = 0; k < to.body.size(); ++k)
    EXPECT_EQ(to.body[k]->loc.line, from.body[k]->loc.line) << "item " << k;
  // And the fingerprint is loc-blind, so the remap changed none of them.
  EXPECT_EQ(fingerprintProcedure(to), fingerprintProcedure(from));
}

TEST(FingerprintRemapTest, RemapRefusesShapeDivergence) {
  DiagnosticEngine diags;
  std::optional<Program> oldProg = parseProgram(kernSource(0), diags);
  std::optional<Program> newProg = parseProgram(
      "      subroutine kern(a, b, n)\n"
      "      integer n\n"
      "      real a(100,4)\n"
      "      real b(100,4)\n"
      "      real t\n"
      "      b(1,1) = 0.0\n"
      "      end\n",
      diags);
  ASSERT_TRUE(oldProg.has_value() && newProg.has_value()) << diags.str();
  EXPECT_FALSE(remapSourceLocs(oldProg->procedures.front(), newProg->procedures.front()));
}

}  // namespace
}  // namespace panorama
