// Unit and property tests for the symbolic expression library and the
// bounded Fourier-Motzkin constraint engine.
#include <gtest/gtest.h>

#include <random>

#include "panorama/symbolic/affine.h"
#include "panorama/symbolic/constraint.h"
#include "panorama/symbolic/expr.h"

namespace panorama {
namespace {

class SymbolicTest : public ::testing::Test {
 protected:
  SymbolTable tab;
  VarId x = tab.intern("x");
  VarId y = tab.intern("y");
  VarId z = tab.intern("z");
  SymExpr X = SymExpr::variable(x);
  SymExpr Y = SymExpr::variable(y);
  SymExpr Z = SymExpr::variable(z);
};

TEST_F(SymbolicTest, ZeroAndConstants) {
  SymExpr zero;
  EXPECT_TRUE(zero.isZero());
  EXPECT_TRUE(zero.isConstant());
  EXPECT_EQ(zero.constantValue(), 0);
  SymExpr five = SymExpr::constant(5);
  EXPECT_FALSE(five.isZero());
  EXPECT_EQ(five.constantValue(), 5);
  EXPECT_EQ((five + SymExpr::constant(-5)).constantValue(), 0);
  EXPECT_EQ(SymExpr::constant(0), zero);
}

TEST_F(SymbolicTest, AdditionNormalizesAndCancels) {
  SymExpr e = X + Y + X;  // 2x + y
  EXPECT_EQ(e.affineCoeff(x), 2);
  EXPECT_EQ(e.affineCoeff(y), 1);
  SymExpr cancel = e - X - X - Y;
  EXPECT_TRUE(cancel.isZero());
}

TEST_F(SymbolicTest, MultiplicationDistributes) {
  SymExpr e = (X + 1) * (X - 1);  // x^2 - 1
  EXPECT_EQ(e.degree(), 2);
  EXPECT_EQ(e.constantPart(), -1);
  Binding b{{x, 7}};
  EXPECT_EQ(e.evaluate(b), 48);
}

TEST_F(SymbolicTest, OrderingIsCanonical) {
  SymExpr a = X * Y + Z;
  SymExpr b = Z + Y * X;
  EXPECT_EQ(a, b);
  EXPECT_EQ(SymExpr::compare(a, b), 0);
}

TEST_F(SymbolicTest, StringRendering) {
  EXPECT_EQ((X.mulConst(2) + Y - 3).str(tab), "2*x + y - 3");
  EXPECT_EQ((-X).str(tab), "-x");
  EXPECT_EQ(SymExpr().str(tab), "0");
  EXPECT_EQ((X * X).str(tab), "x*x");
}

TEST_F(SymbolicTest, DivExact) {
  SymExpr e = X.mulConst(4) + SymExpr::constant(8);
  auto half = e.divExact(2);
  ASSERT_TRUE(half.has_value());
  EXPECT_EQ(half->affineCoeff(x), 2);
  EXPECT_EQ(half->constantPart(), 4);
  EXPECT_FALSE(e.divExact(3).has_value());
  EXPECT_FALSE(e.divExact(0).has_value());
}

TEST_F(SymbolicTest, SubstituteSingle) {
  SymExpr e = X * X + Y;
  SymExpr r = e.substitute(x, Z + 1);  // (z+1)^2 + y
  Binding b{{y, 3}, {z, 4}};
  EXPECT_EQ(r.evaluate(b), 28);
  EXPECT_FALSE(r.containsVar(x));
}

TEST_F(SymbolicTest, SubstituteSimultaneous) {
  // x -> y, y -> x must swap, not chain.
  SymExpr e = X - Y;
  std::map<VarId, SymExpr> both{{x, Y}, {y, X}};
  SymExpr r = e.substitute(both);
  EXPECT_EQ(r, Y - X);
}

TEST_F(SymbolicTest, PoisonPropagates) {
  SymExpr p = SymExpr::poisoned();
  EXPECT_TRUE((p + X).isPoisoned());
  EXPECT_TRUE((X * p).isPoisoned());
  EXPECT_TRUE((-p).isPoisoned());
  EXPECT_FALSE(p.evaluate({}).has_value());
  EXPECT_FALSE(p.constantValue().has_value());
}

TEST_F(SymbolicTest, OverflowPoisons) {
  SymExpr big = SymExpr::constant(INT64_MAX);
  EXPECT_TRUE((big + SymExpr::constant(1)).isPoisoned());
  EXPECT_TRUE((big * SymExpr::constant(2)).isPoisoned());
}

TEST_F(SymbolicTest, AffineFormRoundTrip) {
  SymExpr e = X.mulConst(3) - Y.mulConst(2) + 7;
  auto f = AffineForm::fromExpr(e);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeffOf(x), 3);
  EXPECT_EQ(f->coeffOf(y), -2);
  EXPECT_EQ(f->constant, 7);
  EXPECT_EQ(f->toExpr(), e);
  EXPECT_FALSE(AffineForm::fromExpr(X * Y).has_value());
}

TEST_F(SymbolicTest, TightenLE) {
  // 2x - 1 <= 0  =>  x <= 0 (integers)
  AffineForm f = *AffineForm::fromExpr(X.mulConst(2) - 1);
  f.tightenLE();
  EXPECT_EQ(f.coeffOf(x), 1);
  EXPECT_EQ(f.constant, 0);
  // 3x + 4 <= 0  =>  x <= -2  =>  x + 2 <= 0
  AffineForm g = *AffineForm::fromExpr(X.mulConst(3) + 4);
  g.tightenLE();
  EXPECT_EQ(g.coeffOf(x), 1);
  EXPECT_EQ(g.constant, 2);
}

TEST_F(SymbolicTest, FmDetectsSimpleContradiction) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X - 5));       // x <= 5
  ASSERT_TRUE(cs.addExprLE0(-X + 6));      // x >= 6
  EXPECT_EQ(cs.contradictory(), Truth::True);
}

TEST_F(SymbolicTest, FmFeasibleSystem) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X - 5));
  ASSERT_TRUE(cs.addExprLE0(-X + 1));
  EXPECT_EQ(cs.contradictory(), Truth::False);
}

TEST_F(SymbolicTest, FmIntegerTightening) {
  // 1 <= 2x <= 1 has a rational solution (x = 1/2) but no integer one.
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X.mulConst(2) - 1));
  ASSERT_TRUE(cs.addExprLE0(-X.mulConst(2) + 1));
  EXPECT_EQ(cs.contradictory(), Truth::True);
}

TEST_F(SymbolicTest, FmTransitiveChain) {
  // x <= y, y <= z, z <= x - 1 is infeasible.
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X - Y));
  ASSERT_TRUE(cs.addExprLE0(Y - Z));
  ASSERT_TRUE(cs.addExprLE0(Z - X + 1));
  EXPECT_EQ(cs.contradictory(), Truth::True);
}

TEST_F(SymbolicTest, FmEqualityLowering) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprEQ0(X - Y));      // x == y
  ASSERT_TRUE(cs.addExprLE0(Y - X + 1));  // y <= x - 1
  EXPECT_EQ(cs.contradictory(), Truth::True);
}

TEST_F(SymbolicTest, DisequalityClash) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprEQ0(X - Y));
  ASSERT_TRUE(cs.addExprNE0(X - Y));
  EXPECT_EQ(cs.contradictory(), Truth::True);
}

TEST_F(SymbolicTest, ImpliesLE0) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X - 3));  // x <= 3
  EXPECT_EQ(cs.impliesLE0(X - 5), Truth::True);   // x <= 5 follows
  EXPECT_EQ(cs.impliesLE0(X - 2), Truth::Unknown);  // x <= 2 does not
}

TEST_F(SymbolicTest, ImpliesEQ0) {
  ConstraintSet cs;
  ASSERT_TRUE(cs.addExprLE0(X - Y));
  ASSERT_TRUE(cs.addExprLE0(Y - X));
  EXPECT_EQ(cs.impliesEQ0(X - Y), Truth::True);
}

TEST_F(SymbolicTest, NonAffineRejected) {
  ConstraintSet cs;
  EXPECT_FALSE(cs.addExprLE0(X * Y));
  EXPECT_EQ(cs.impliesLE0(X * Y - 1), Truth::Unknown);
}

TEST_F(SymbolicTest, FreshVariablesAreDistinct) {
  VarId f1 = tab.fresh("i");
  VarId f2 = tab.fresh("i");
  EXPECT_NE(f1, f2);
  EXPECT_NE(f1, tab.intern("i"));
  EXPECT_NE(tab.name(f1), tab.name(f2));
}

TEST_F(SymbolicTest, SymbolTableCaseInsensitive) {
  EXPECT_EQ(tab.intern("FOO"), tab.intern("foo"));
  EXPECT_EQ(tab.lookup("Foo"), tab.lookup("fOO"));
  EXPECT_FALSE(tab.lookup("missing").has_value());
}

// ---------------------------------------------------------------------------
// Property tests: random expression algebra checked against direct evaluation.
// ---------------------------------------------------------------------------

class SymbolicPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SymbolicPropertyTest, RingAxiomsUnderEvaluation) {
  std::mt19937 rng(GetParam());
  SymbolTable tab;
  std::vector<VarId> vars{tab.intern("a"), tab.intern("b"), tab.intern("c")};
  std::uniform_int_distribution<int> coef(-4, 4);
  std::uniform_int_distribution<std::size_t> pick(0, vars.size() - 1);
  std::uniform_int_distribution<int> val(-10, 10);

  auto randomExpr = [&](int depth) {
    auto self = [&](auto&& rec, int d) -> SymExpr {
      if (d == 0) {
        if (coef(rng) > 0) return SymExpr::variable(vars[pick(rng)]);
        return SymExpr::constant(coef(rng));
      }
      SymExpr l = rec(rec, d - 1);
      SymExpr r = rec(rec, d - 1);
      switch (coef(rng) & 3) {
        case 0: return l + r;
        case 1: return l - r;
        case 2: return l * r;
        default: return -l;
      }
    };
    return self(self, depth);
  };

  for (int iter = 0; iter < 50; ++iter) {
    SymExpr e1 = randomExpr(3);
    SymExpr e2 = randomExpr(3);
    Binding binding;
    for (VarId v : vars) binding[v] = val(rng);

    auto v1 = e1.evaluate(binding);
    auto v2 = e2.evaluate(binding);
    if (!v1 || !v2) continue;  // poisoned by overflow: nothing to check

    auto sum = (e1 + e2).evaluate(binding);
    auto diff = (e1 - e2).evaluate(binding);
    auto prod = (e1 * e2).evaluate(binding);
    if (sum) {
      EXPECT_EQ(*sum, *v1 + *v2);
    }
    if (diff) {
      EXPECT_EQ(*diff, *v1 - *v2);
    }
    if (prod) {
      EXPECT_EQ(*prod, *v1 * *v2);
    }

    // Commutativity and structural canonicalization.
    EXPECT_EQ(e1 + e2, e2 + e1);
    EXPECT_EQ(e1 * e2, e2 * e1);
    EXPECT_TRUE((e1 - e1).isZero());
  }
}

TEST_P(SymbolicPropertyTest, SubstitutionCommutesWithEvaluation) {
  std::mt19937 rng(GetParam() * 7919u + 13u);
  SymbolTable tab;
  VarId a = tab.intern("a");
  VarId b = tab.intern("b");
  std::uniform_int_distribution<int> val(-8, 8);

  for (int iter = 0; iter < 60; ++iter) {
    SymExpr e = SymExpr::variable(a) * SymExpr::variable(a) +
                SymExpr::variable(b).mulConst(val(rng)) + SymExpr::constant(val(rng));
    SymExpr repl = SymExpr::variable(b) + val(rng);
    SymExpr substituted = e.substitute(a, repl);

    Binding binding{{b, val(rng)}};
    auto replVal = repl.evaluate(binding);
    ASSERT_TRUE(replVal.has_value());
    Binding full = binding;
    full[a] = *replVal;

    auto direct = e.evaluate(full);
    auto viaSubst = substituted.evaluate(binding);
    ASSERT_TRUE(direct.has_value());
    ASSERT_TRUE(viaSubst.has_value());
    EXPECT_EQ(*direct, *viaSubst);
  }
}

TEST_P(SymbolicPropertyTest, FmNeverCallsSatisfiableSystemContradictory) {
  // Soundness: generate a system *with* a known integer solution; the engine
  // must never report it infeasible.
  std::mt19937 rng(GetParam() * 104729u + 7u);
  SymbolTable tab;
  std::vector<VarId> vars{tab.intern("p"), tab.intern("q"), tab.intern("r"),
                          tab.intern("s")};
  std::uniform_int_distribution<int> coef(-5, 5);
  std::uniform_int_distribution<int> val(-20, 20);

  for (int iter = 0; iter < 40; ++iter) {
    Binding solution;
    for (VarId v : vars) solution[v] = val(rng);

    ConstraintSet cs;
    for (int c = 0; c < 8; ++c) {
      SymExpr e;
      for (VarId v : vars) e = e + SymExpr::variable(v).mulConst(coef(rng));
      auto value = e.evaluate(solution);
      ASSERT_TRUE(value.has_value());
      // Make `e - slack <= 0` true at the solution point.
      std::uniform_int_distribution<int> slackDist(0, 6);
      ASSERT_TRUE(cs.addExprLE0(e - (*value + slackDist(rng))));
    }
    EXPECT_NE(cs.contradictory(), Truth::True);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicPropertyTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace panorama
