// The unified bench harness: per-repetition aggregation, hard min/max
// contracts, the snapshot record schema, and the baseline regression gate
// (including the tolerance and direction semantics the gate is built on and
// the corrupt-baseline-cannot-pass rule).
#include <gtest/gtest.h>

#include "harness.h"
#include "panorama/support/json.h"

namespace panorama::bench {
namespace {

using support::JsonValue;

BenchSpec specOf(std::string name, int repetitions, std::function<BenchResult()> run) {
  BenchSpec spec;
  spec.name = std::move(name);
  spec.repetitions = repetitions;
  spec.run = std::move(run);
  return spec;
}

TEST(RunBenchTest, AggregatesRepsByDirection) {
  int rep = 0;
  BenchSpec spec = specOf("agg", 3, [&rep] {
    static const double walls[] = {30.0, 10.0, 20.0};
    static const double rates[] = {5.0, 9.0, 7.0};
    BenchResult r;
    r.add("wall_ms", walls[rep], Direction::LowerIsBetter, 1.0, "ms");
    r.add("rate", rates[rep], Direction::HigherIsBetter);
    r.add("loops", 42, Direction::Exact);
    ++rep;
    return r;
  });
  BenchResult result = runBench(spec);
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(result.find("wall_ms")->value, 10.0);  // min across reps
  EXPECT_EQ(result.find("rate")->value, 9.0);      // max across reps
  EXPECT_EQ(result.find("loops")->value, 42.0);
}

TEST(RunBenchTest, ExactMetricMustAgreeAcrossReps) {
  int rep = 0;
  BenchSpec spec = specOf("exact", 2, [&rep] {
    BenchResult r;
    r.add("loops", rep == 0 ? 42 : 41, Direction::Exact);
    ++rep;
    return r;
  });
  BenchResult result = runBench(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("loops"), std::string::npos) << result.failure;
}

TEST(RunBenchTest, WarmupRepsAreDiscarded) {
  int calls = 0;
  BenchSpec spec = specOf("warm", 1, [&calls] {
    BenchResult r;
    r.add("call", ++calls, Direction::Exact);
    return r;
  });
  spec.warmup = 2;
  BenchResult result = runBench(spec);
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(result.find("call")->value, 3.0);  // two warmups ran first
}

TEST(RunBenchTest, HardMaxContractTripsWithoutAnyBaseline) {
  BenchSpec spec = specOf("contract", 1, [] {
    BenchResult r;
    Metric& m = r.add("overhead_pct", 3.5, Direction::LowerIsBetter, 10.0, "%");
    m.maxValue = 2.0;  // the obs <= 2% style bound
    return r;
  });
  BenchResult result = runBench(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("overhead_pct"), std::string::npos) << result.failure;
}

TEST(RenderRecordTest, SnapshotParsesWithTheUnifiedSchema) {
  BenchSpec spec = specOf("schema", 2, nullptr);
  spec.warmup = 1;
  BenchResult result;
  Metric& wall = result.add("wall_ms", 12.5, Direction::LowerIsBetter, 3.0, "ms");
  wall.maxValue = 100.0;
  result.add("loops", 17, Direction::Exact);
  Metric& speedup = result.add("speedup", 2.5, Direction::HigherIsBetter);
  speedup.gated = false;
  result.addConfig("corpus", "perfect");
  // Pretty-rendered, as renderCostProfileJson produces it: the history line
  // must flatten it back to one JSONL line.
  result.profileJson = "{\n  \"schema_version\": 1\n}\n";

  std::string pretty = renderRecord(spec, result, "abc123", 1754000000, /*pretty=*/true);
  std::string line = renderRecord(spec, result, "abc123", 1754000000, /*pretty=*/false);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // history stays one line

  std::string error;
  std::optional<JsonValue> v = JsonValue::parse(pretty, &error);
  ASSERT_TRUE(v.has_value()) << error << "\n" << pretty;
  EXPECT_EQ(v->find("schema_version")->asNumber(), 1);
  EXPECT_EQ(v->find("bench")->asString(), "schema");
  EXPECT_EQ(v->find("git")->asString(), "abc123");
  EXPECT_EQ(v->find("timestamp_unix")->asNumber(), 1754000000);
  EXPECT_EQ(v->find("repetitions")->asNumber(), 2);
  EXPECT_EQ(v->find("warmup")->asNumber(), 1);
  EXPECT_TRUE(v->find("ok")->asBool());
  EXPECT_EQ(v->find("config")->find("corpus")->asString(), "perfect");

  const JsonValue* metrics = v->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* wallJson = metrics->find("wall_ms");
  ASSERT_NE(wallJson, nullptr);
  EXPECT_EQ(wallJson->find("value")->asNumber(), 12.5);
  EXPECT_EQ(wallJson->find("unit")->asString(), "ms");
  EXPECT_EQ(wallJson->find("direction")->asString(), "lower");
  EXPECT_EQ(wallJson->find("rel_tolerance")->asNumber(), 3.0);
  EXPECT_EQ(wallJson->find("max")->asNumber(), 100.0);
  EXPECT_TRUE(wallJson->find("gated")->asBool());
  EXPECT_EQ(metrics->find("loops")->find("direction")->asString(), "exact");
  EXPECT_FALSE(metrics->find("speedup")->find("gated")->asBool());

  const JsonValue* profile = v->find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->find("schema_version")->asNumber(), 1);

  // The single-line history record carries the same content.
  std::optional<JsonValue> lv = JsonValue::parse(line, &error);
  ASSERT_TRUE(lv.has_value()) << error;
  EXPECT_EQ(lv->find("metrics")->find("wall_ms")->find("value")->asNumber(), 12.5);
}

TEST(RenderRecordTest, FailureIsRecorded) {
  BenchSpec spec = specOf("boom", 1, nullptr);
  BenchResult result;
  result.fail("fingerprints diverged");
  std::string json = renderRecord(spec, result, "abc", 0, /*pretty=*/true);
  std::string error;
  std::optional<JsonValue> v = JsonValue::parse(json, &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_FALSE(v->find("ok")->asBool());
  EXPECT_EQ(v->find("failure")->asString(), "fingerprints diverged");
}

TEST(RenderRecordTest, EveryFailureReasonIsKept) {
  // A --check run that violates several contracts must report them all, not
  // just the first one evaluated.
  BenchResult result;
  result.fail("speedup 3.1x below the 5.0x contract");
  result.fail("tiered-mode loop reports diverged");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failure,
            "speedup 3.1x below the 5.0x contract; tiered-mode loop reports diverged");
}

// --- the regression gate ---------------------------------------------------

std::string baselineFor(const BenchResult& result) {
  BenchSpec spec = specOf("gate", 1, nullptr);
  return renderRecord(spec, result, "base", 0, /*pretty=*/true);
}

TEST(BaselineGateTest, WithinToleranceIsClean) {
  BenchResult base;
  base.add("wall_ms", 10.0, Direction::LowerIsBetter, 0.5, "ms");
  base.add("loops", 42, Direction::Exact);
  std::string baseline = baselineFor(base);

  BenchResult current;
  current.add("wall_ms", 14.0, Direction::LowerIsBetter, 0.5, "ms");  // < 10 * 1.5
  current.add("loops", 42, Direction::Exact);
  EXPECT_TRUE(compareToBaseline(current, baseline).empty());
}

TEST(BaselineGateTest, LowerIsBetterTripsAboveTolerance) {
  BenchResult base;
  base.add("wall_ms", 10.0, Direction::LowerIsBetter, 0.5, "ms");
  std::string baseline = baselineFor(base);

  BenchResult current;
  current.add("wall_ms", 15.1, Direction::LowerIsBetter, 0.5, "ms");
  std::vector<RegressionIssue> issues = compareToBaseline(current, baseline);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].metric, "wall_ms");
}

TEST(BaselineGateTest, HigherIsBetterTripsBelowTolerance) {
  BenchResult base;
  base.add("speedup", 4.0, Direction::HigherIsBetter, 0.25);
  std::string baseline = baselineFor(base);

  BenchResult fine;
  fine.add("speedup", 3.2, Direction::HigherIsBetter, 0.25);  // >= 4 * 0.75
  EXPECT_TRUE(compareToBaseline(fine, baseline).empty());

  BenchResult slow;
  slow.add("speedup", 2.9, Direction::HigherIsBetter, 0.25);
  EXPECT_EQ(compareToBaseline(slow, baseline).size(), 1u);
}

TEST(BaselineGateTest, ExactMetricTripsOnAnyDrift) {
  BenchResult base;
  base.add("loops", 42, Direction::Exact);
  std::string baseline = baselineFor(base);

  BenchResult drifted;
  drifted.add("loops", 43, Direction::Exact);
  std::vector<RegressionIssue> issues = compareToBaseline(drifted, baseline);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].metric, "loops");
}

TEST(BaselineGateTest, UngatedMetricsNeverTrip) {
  BenchResult base;
  Metric& m = base.add("micro_ns", 100.0, Direction::LowerIsBetter, 0.1, "ns");
  m.gated = false;
  std::string baseline = baselineFor(base);

  BenchResult current;
  Metric& c = current.add("micro_ns", 900.0, Direction::LowerIsBetter, 0.1, "ns");
  c.gated = false;
  EXPECT_TRUE(compareToBaseline(current, baseline).empty());
}

TEST(BaselineGateTest, MetricMissingFromBaselineIsSkipped) {
  BenchResult base;
  base.add("wall_ms", 10.0, Direction::LowerIsBetter, 0.5, "ms");
  std::string baseline = baselineFor(base);

  // New metrics gate only once a baseline that records them is committed.
  BenchResult current;
  current.add("wall_ms", 10.0, Direction::LowerIsBetter, 0.5, "ms");
  current.add("brand_new", 7.0, Direction::Exact);
  EXPECT_TRUE(compareToBaseline(current, baseline).empty());
}

TEST(BaselineGateTest, CorruptBaselineCannotSilentlyPass) {
  BenchResult current;
  current.add("wall_ms", 10.0, Direction::LowerIsBetter);
  EXPECT_FALSE(compareToBaseline(current, "not json{").empty());
  // Old-schema snapshots (no "metrics" object) must also refuse to gate.
  EXPECT_FALSE(compareToBaseline(current, "{\"schema_version\": 0}").empty());
}

TEST(RegistryTest, FindLocatesRegisteredSpecs) {
  Registry registry;
  registry.add(specOf("one", 1, nullptr));
  registry.add(specOf("two", 1, nullptr));
  ASSERT_NE(registry.find("two"), nullptr);
  EXPECT_EQ(registry.find("two")->name, "two");
  EXPECT_EQ(registry.find("three"), nullptr);

  // The global registry carries every bench TU linked into this test (none),
  // but must at least be callable.
  (void)Registry::global().all();
}

}  // namespace
}  // namespace panorama::bench
