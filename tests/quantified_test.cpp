// Tests for the §5.2/§5.3 quantified-guard extension: uninterpreted array
// predicates, the guarded-counter ∀ rewrite, ψ1 dimension predicates — and,
// crucially, the soundness fences (idiom near-misses must NOT privatize).
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/corpus/corpus.h"
#include "panorama/frontend/parser.h"

namespace panorama {
namespace {

struct QRun {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
  LoopAnalysis loop;
};

QRun runQ(std::string_view src, const char* routine, bool quantified = true) {
  QRun r;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  r.program = std::move(*p);
  auto sr = analyze(r.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  r.sema = std::move(*sr);
  r.hsg = buildHsg(r.program, r.sema, diags);
  AnalysisOptions options;
  options.quantified = quantified;
  r.analyzer = std::make_unique<SummaryAnalyzer>(r.program, r.sema, r.hsg, options);
  r.analyzer->analyzeAll();
  const Stmt* loop = findOuterLoop(r.program, routine, 0);
  EXPECT_NE(loop, nullptr);
  LoopParallelizer lp(*r.analyzer);
  r.loop = lp.analyzeLoop(*loop, *r.program.findProcedure(routine));
  return r;
}

bool privatizable(const LoopAnalysis& la, std::string_view name) {
  for (const ArrayPrivatization& ap : la.arrays)
    if (ap.name == name) return ap.privatizable;
  return false;
}

// ---------------------------------------------------------------- atoms

TEST(QuantifiedAtomTest, ArrayPredBasics) {
  SymbolTable tab;
  VarId key = tab.intern("ap$le");
  VarId k = tab.intern("k");
  SymExpr K = SymExpr::variable(k);
  SymExpr rhs = SymExpr::variable(tab.intern("cut"));
  Atom q = Atom::arrayPred(AtomArrayRef{3}, key, K + 4, rhs, true);
  Atom nq = q.negated();
  EXPECT_EQ(nq.negated(), q);
  EXPECT_NE(q, nq);
  EXPECT_EQ(atomsContradict(q, nq), Truth::True);
  // Substitution rewrites both subscript and rhs.
  Atom q2 = q.substituted(k, SymExpr::constant(2));
  EXPECT_EQ(q2.expr().constantValue(), 6);
  EXPECT_FALSE(q.evaluate({{k, 1}}).has_value());  // uninterpreted
}

TEST(QuantifiedAtomTest, ForallInstantiation) {
  SymbolTable tab;
  VarId key = tab.intern("ap$le");
  VarId k = tab.intern("k");
  SymExpr K = SymExpr::variable(k);
  SymExpr rhs = SymExpr::constant(7);
  // forall k in [1,9]: !q(k)   vs   q(6): contradiction (6 in [1,9]).
  Atom fa = Atom::forallPred(AtomArrayRef{1}, key, k, K, rhs, SymExpr::constant(1),
                             SymExpr::constant(9), false);
  Atom q6 = Atom::arrayPred(AtomArrayRef{1}, key, SymExpr::constant(6), rhs, true);
  EXPECT_EQ(atomsContradict(fa, q6), Truth::True);
  // q(12) is outside the range: no contradiction.
  Atom q12 = Atom::arrayPred(AtomArrayRef{1}, key, SymExpr::constant(12), rhs, true);
  EXPECT_EQ(atomsContradict(fa, q12), Truth::Unknown);
  // Same polarity: no contradiction.
  Atom nq6 = q6.negated();
  EXPECT_EQ(atomsContradict(fa, nq6), Truth::Unknown);
  // A different rhs is a different predicate.
  Atom qOther = Atom::arrayPred(AtomArrayRef{1}, key, SymExpr::constant(6),
                                SymExpr::constant(8), true);
  EXPECT_EQ(atomsContradict(fa, qOther), Truth::Unknown);
}

TEST(QuantifiedAtomTest, ForallWithSymbolicInstanceNeedsContext) {
  SymbolTable tab;
  VarId key = tab.intern("ap$le");
  VarId k = tab.intern("k");
  VarId psi = tab.intern("psi$1");
  SymExpr K = SymExpr::variable(k);
  SymExpr P = SymExpr::variable(psi);
  SymExpr rhs = SymExpr::constant(7);
  Atom fa = Atom::forallPred(AtomArrayRef{1}, key, k, K, rhs, SymExpr::constant(1),
                             SymExpr::constant(9), false);
  Atom qPsi = Atom::arrayPred(AtomArrayRef{1}, key, P, rhs, true);
  // Pairwise (context-free): unknown — ψ's range is not visible.
  EXPECT_EQ(atomsContradict(fa, qPsi), Truth::Unknown);
  // With ψ-range atoms in the same conjunction, the predicate simplifier
  // instantiates the quantifier and finds the contradiction.
  Pred all = Pred::atom(fa) && Pred::atom(qPsi) &&
             Pred::atom(Atom::ge(P, SymExpr::constant(6))) &&
             Pred::atom(Atom::le(P, SymExpr::constant(9)));
  EXPECT_EQ(all.provablyFalse(), Truth::True);
  // Range [6, 12] sticks out of [1, 9]: must NOT conclude.
  Pred partial = Pred::atom(fa) && Pred::atom(qPsi) &&
                 Pred::atom(Atom::ge(P, SymExpr::constant(6))) &&
                 Pred::atom(Atom::le(P, SymExpr::constant(12)));
  EXPECT_NE(partial.provablyFalse(), Truth::True);
}

// ------------------------------------------------------------ Figure 1(a)

TEST(QuantifiedTest, Fig1aPrivatizesWithExtension) {
  QRun base = runQ(fig1aSource(), "interf", /*quantified=*/false);
  EXPECT_FALSE(privatizable(base.loop, "a"));
  QRun ext = runQ(fig1aSource(), "interf", /*quantified=*/true);
  EXPECT_TRUE(privatizable(ext.loop, "a")) << formatLoopAnalysis(ext.loop);
  EXPECT_TRUE(privatizable(ext.loop, "b"));
}

TEST(QuantifiedTest, MdgRlPrivatizesWithExtension) {
  const CorpusLoop* mdg = nullptr;
  for (const CorpusLoop& cl : perfectCorpus())
    if (cl.id == "MDG interf/1000") mdg = &cl;
  ASSERT_NE(mdg, nullptr);
  QRun ext = runQ(mdg->source, "interf", /*quantified=*/true);
  EXPECT_TRUE(privatizable(ext.loop, "rl")) << formatLoopAnalysis(ext.loop);
  // The extension must not lose anything the base analysis had.
  for (const std::string& name : mdg->privatizable)
    EXPECT_TRUE(privatizable(ext.loop, name)) << name;
}

// --------------------------------------------------- soundness fences

// Same as Figure 1(a) but the reads reach one element past the writes:
// rl(6:10) read vs rl(6:9) written — the extension must NOT privatize.
TEST(QuantifiedTest, ReadBeyondWrittenRangeStaysExposed) {
  QRun r = runQ(R"(
      subroutine interf(nmol1, cut2)
      integer nmol1
      real cut2
      real a(20), b(20)
      integer kc
      real t
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k + i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 15
          t = a(k - 5) * 0.5
        enddo
 2      continue
      enddo
      end
  )",
                "interf");
  EXPECT_FALSE(privatizable(r.loop, "a"));
}

// The counter starts at 1, not 0: kc == 0 no longer means "no q held".
TEST(QuantifiedTest, NonZeroInitDefeatsIdiom) {
  QRun r = runQ(R"(
      subroutine interf(nmol1, cut2)
      integer nmol1
      real cut2
      real a(20), b(20)
      integer kc
      real t
      do i = 1, nmol1
        kc = 1
        do k = 1, 9
          b(k) = k + i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          t = a(k - 5) * 0.5
        enddo
 2      continue
      enddo
      end
  )",
                "interf");
  EXPECT_FALSE(privatizable(r.loop, "a"));
}

// The tested array is rewritten between the counting loop and the guarded
// writes: the recorded ∀ fact goes stale and must be dropped.
TEST(QuantifiedTest, ArrayRewriteBetweenTaints) {
  QRun r = runQ(R"(
      subroutine interf(nmol1, cut2)
      integer nmol1
      real cut2
      real a(20), b(20)
      integer kc
      real t
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k + i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do k = 1, 9
          b(k) = b(k) * 2.0
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          t = a(k - 5) * 0.5
        enddo
 2      continue
      enddo
      end
  )",
                "interf");
  EXPECT_FALSE(privatizable(r.loop, "a"));
}

// The counter is also bumped unconditionally: the ∀ equivalence breaks.
TEST(QuantifiedTest, UnconditionalIncrementDefeatsIdiom) {
  QRun r = runQ(R"(
      subroutine interf(nmol1, cut2)
      integer nmol1
      real cut2
      real a(20), b(20)
      integer kc
      real t
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k + i
          kc = kc + 1
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut2) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          t = a(k - 5) * 0.5
        enddo
 2      continue
      enddo
      end
  )",
                "interf");
  EXPECT_FALSE(privatizable(r.loop, "a"));
}

// A *different* threshold in the write guards: q(cut2) facts say nothing
// about q(cut3) tests.
TEST(QuantifiedTest, DifferentThresholdIsDifferentPredicate) {
  QRun r = runQ(R"(
      subroutine interf(nmol1, cut2, cut3)
      integer nmol1
      real cut2, cut3
      real a(20), b(20)
      integer kc
      real t
      do i = 1, nmol1
        kc = 0
        do k = 1, 9
          b(k) = k + i
          if (b(k) .gt. cut2) kc = kc + 1
        enddo
        do 1 k = 2, 5
          if (b(k + 4) .gt. cut3) goto 1
          a(k + 4) = b(k) * 2.0
 1      continue
        if (kc .ne. 0) goto 2
        do k = 11, 14
          t = a(k - 5) * 0.5
        enddo
 2      continue
      enddo
      end
  )",
                "interf");
  EXPECT_FALSE(privatizable(r.loop, "a"));
}

// The extension must not regress anything across the whole corpus.
TEST(QuantifiedTest, NoRegressionOnCorpus) {
  for (const CorpusLoop& cl : perfectCorpus()) {
    QRun r = runQ(cl.source, cl.routine.c_str(), /*quantified=*/true);
    for (const std::string& name : cl.privatizable)
      EXPECT_TRUE(privatizable(r.loop, name)) << cl.id << "/" << name;
  }
}

}  // namespace
}  // namespace panorama
