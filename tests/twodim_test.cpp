// Two-dimensional region coverage: 2-D scratch arrays (the real ARC2D WORK
// is 2-D), column sweeps, mixed-dimension expansion, and 2-D privatization
// semantics — each validated against the interpreter.
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"

namespace panorama {
namespace {

using ElementSet = std::set<std::vector<std::int64_t>>;

struct World {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;
};

World load(std::string_view src) {
  World w;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  w.program = std::move(*p);
  auto sr = analyze(w.program, diags);
  EXPECT_TRUE(sr.has_value()) << diags.str();
  w.sema = std::move(*sr);
  w.hsg = buildHsg(w.program, w.sema, diags);
  w.analyzer = std::make_unique<SummaryAnalyzer>(w.program, w.sema, w.hsg, AnalysisOptions{});
  w.analyzer->analyzeAll();
  return w;
}

const Stmt* firstLoop(const Procedure& proc) {
  for (const StmtPtr& s : proc.body)
    if (s->kind == Stmt::Kind::Do) return s.get();
  return nullptr;
}

TEST(TwoDimTest, TwoDimensionalWorkArrayPrivatizes) {
  // work(j, 1..2): a 2-D scratch rewritten per outer iteration — the real
  // ARC2D shape.
  World w = load(R"(
      subroutine stepf(q, s, jlow, jup, kup)
      integer jlow, jup, kup
      real q(60, 60), s(60, 60)
      real work(60, 2)
      do 300 k = 1, kup
        do j = jlow, jup
          work(j, 1) = q(j, k) * 0.25
          work(j, 2) = q(j, k) * 0.5
        enddo
        do j = jlow, jup
          s(j, k) = work(j, 1) + work(j, 2)
        enddo
 300  continue
      end
  )");
  LoopParallelizer lp(*w.analyzer);
  const Procedure& proc = *w.program.findProcedure("stepf");
  LoopAnalysis la = lp.analyzeLoop(*firstLoop(proc), proc);
  bool priv = false;
  for (const ArrayPrivatization& ap : la.arrays)
    if (ap.name == "work") priv = ap.privatizable;
  EXPECT_TRUE(priv) << formatLoopAnalysis(la);
  EXPECT_EQ(la.classification, LoopClass::ParallelAfterPrivatization);
}

TEST(TwoDimTest, ColumnSweepSummaries) {
  // MOD of the whole nest is the full rectangle; the outer loop's MOD_i is
  // one column.
  World w = load(R"(
      subroutine s(q, n, m)
      integer n, m
      real q(60, 60)
      do k = 1, n
        do j = 1, m
          q(j, k) = j + k
        enddo
      enddo
      end
  )");
  const Procedure& proc = *w.program.findProcedure("s");
  const LoopSummary* ls = w.analyzer->loopSummary(firstLoop(proc));
  ASSERT_NE(ls, nullptr);
  VarId n = *w.sema.procs.at("s").scalarId("n");
  VarId m = *w.sema.procs.at("s").scalarId("m");
  VarId k = ls->bounds.index;
  ArrayId q = *w.sema.procs.at("s").arrayId("q");

  auto count = [&](const GarList& list, Binding b) {
    auto e = list.enumerate(q, b);
    EXPECT_TRUE(e.has_value());
    return e ? e->size() : 0u;
  };
  EXPECT_EQ(count(ls->modIter, {{k, 3}, {n, 5}, {m, 4}}), 4u);       // one column
  EXPECT_EQ(count(ls->modBefore, {{k, 3}, {n, 5}, {m, 4}}), 8u);     // two columns
  EXPECT_EQ(count(ls->mod, {{n, 5}, {m, 4}}), 20u);                  // the rectangle
}

TEST(TwoDimTest, RowVsColumnDisjointness) {
  // Writing row i while reading row i-1: carried flow dependence through
  // dimension 2 must be detected; through dimension 1 it must not.
  World w = load(R"(
      subroutine carried(q, n, m)
      integer n, m
      real q(60, 60)
      do k = 2, n
        do j = 1, m
          q(j, k) = q(j, k - 1) + 1
        enddo
      enddo
      end
      subroutine independent(q, n, m)
      integer n, m
      real q(60, 60)
      do k = 2, n
        do j = 1, m
          q(j, k) = q(j, k) + 1
        enddo
      enddo
      end
  )");
  LoopParallelizer lp(*w.analyzer);
  const Procedure& c = *w.program.findProcedure("carried");
  const Procedure& ind = *w.program.findProcedure("independent");
  EXPECT_EQ(lp.analyzeLoop(*firstLoop(c), c).classification, LoopClass::Serial);
  EXPECT_EQ(lp.analyzeLoop(*firstLoop(ind), ind).classification, LoopClass::Parallel);
}

TEST(TwoDimTest, OracleValidatesTwoDimSets) {
  const char* src = R"(
      program p
      real q(60, 60)
      real work(60)
      integer n, m
      n = 6
      m = 5
      do k = 1, n
        do j = 1, m
          work(j) = q(j, k) + k
        enddo
        do j = 1, m
          q(j, k + 1) = work(j)
        enddo
      enddo
      end
  )";
  World w = load(src);
  const Procedure& proc = w.program.procedures[0];
  const Stmt* loop = nullptr;
  for (const StmtPtr& s : proc.body)
    if (s->kind == Stmt::Kind::Do) loop = s.get();
  const LoopSummary* ls = w.analyzer->loopSummary(loop);
  ASSERT_NE(ls, nullptr);

  Interpreter interp(w.program, w.sema);
  Interpreter::Config cfg;
  cfg.traceLoop = loop;
  auto res = interp.run(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  const LoopTrace& t = interp.trace();

  ArrayId q = *w.sema.procs.at("p").arrayId("q");
  for (std::size_t it = 0; it < t.iterEntry.size(); ++it) {
    Binding bnd = t.loopEntry;
    bnd[ls->bounds.index] = t.iterEntry[it].at(ls->bounds.index);
    auto got = ls->modIter.enumerate(q, bnd);
    ASSERT_TRUE(got.has_value());
    auto truth = t.modPerIter[it].find(q);
    EXPECT_EQ(*got, truth == t.modPerIter[it].end() ? ElementSet{} : truth->second)
        << "iteration " << it;
    auto gotUe = ls->ueIter.enumerate(q, bnd);
    ASSERT_TRUE(gotUe.has_value());
    auto ueTruth = t.uePerIter[it].find(q);
    EXPECT_EQ(*gotUe, ueTruth == t.uePerIter[it].end() ? ElementSet{} : ueTruth->second)
        << "iteration " << it;
  }
}

}  // namespace
}  // namespace panorama
