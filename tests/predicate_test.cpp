// Unit and property tests for the guard predicate library: atoms, CNF
// operations, the pairwise simplifier, and entailment.
#include <gtest/gtest.h>

#include <random>

#include "panorama/predicate/predicate.h"

namespace panorama {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  SymbolTable tab;
  VarId x = tab.intern("x");
  VarId y = tab.intern("y");
  VarId p = tab.intern("p");
  SymExpr X = SymExpr::variable(x);
  SymExpr Y = SymExpr::variable(y);
};

TEST_F(PredicateTest, AtomConstructorsAndNegation) {
  Atom a = Atom::lt(X, Y);  // x < y
  Atom na = a.negated();    // x >= y
  EXPECT_EQ(na.negated(), a);
  EXPECT_EQ(Atom::le(X, Y).negated(), Atom::gt(X, Y));
  EXPECT_EQ(Atom::eq(X, Y).negated(), Atom::ne(X, Y));
  Atom lv = Atom::logicalVar(p, true);
  EXPECT_EQ(lv.negated(), Atom::logicalVar(p, false));
}

TEST_F(PredicateTest, AtomEvaluate) {
  Binding b{{x, 3}, {y, 5}, {p, 1}};
  EXPECT_EQ(Atom::lt(X, Y).evaluate(b), true);
  EXPECT_EQ(Atom::ge(X, Y).evaluate(b), false);
  EXPECT_EQ(Atom::eq(X, SymExpr::constant(3)).evaluate(b), true);
  EXPECT_EQ(Atom::logicalVar(p, true).evaluate(b), true);
  EXPECT_EQ(Atom::logicalVar(p, false).evaluate(b), false);
  EXPECT_FALSE(Atom::lt(X, SymExpr::variable(tab.intern("unbound"))).evaluate(b).has_value());
}

TEST_F(PredicateTest, AtomCanonicalEquality) {
  // x == y and y == x must be the same atom; likewise tightened LE forms.
  EXPECT_EQ(Atom::eq(X, Y), Atom::eq(Y, X));
  EXPECT_EQ(Atom::rel(X.mulConst(2) - 1, RelOp::LE), Atom::rel(X, RelOp::LE));
}

TEST_F(PredicateTest, AtomImplication) {
  // x <= 3 implies x <= 5
  EXPECT_EQ(atomImplies(Atom::le(X, SymExpr::constant(3)), Atom::le(X, SymExpr::constant(5))),
            Truth::True);
  EXPECT_NE(atomImplies(Atom::le(X, SymExpr::constant(5)), Atom::le(X, SymExpr::constant(3))),
            Truth::True);
  // x == 2 implies x <= 2
  EXPECT_EQ(atomImplies(Atom::eq(X, SymExpr::constant(2)), Atom::le(X, SymExpr::constant(2))),
            Truth::True);
}

TEST_F(PredicateTest, AtomContradictionAndExhaustion) {
  EXPECT_EQ(atomsContradict(Atom::le(X, SymExpr::constant(1)), Atom::ge(X, SymExpr::constant(2))),
            Truth::True);
  EXPECT_EQ(atomsExhaustive(Atom::le(X, Y), Atom::gt(X, Y)), Truth::True);
  EXPECT_NE(atomsExhaustive(Atom::le(X, Y), Atom::ge(X, Y + 2)), Truth::True);
}

TEST_F(PredicateTest, TrueFalseUnknownBasics) {
  EXPECT_TRUE(Pred::makeTrue().isTrue());
  EXPECT_TRUE(Pred::makeFalse().isFalse());
  EXPECT_TRUE(Pred::makeUnknown().isUnknown());
  EXPECT_FALSE(Pred::makeUnknown().isTrue());
  EXPECT_FALSE(Pred::makeUnknown().isFalse());
  EXPECT_TRUE(Pred::makeUnknown().mayHold());
}

TEST_F(PredicateTest, DeltaAbsorption) {
  // Δ ∧ False = False and Δ ∨ True = True (§5.3 special cases).
  EXPECT_TRUE((Pred::makeUnknown() && Pred::makeFalse()).isFalse());
  EXPECT_TRUE((Pred::makeUnknown() || Pred::makeTrue()).isTrue());
  EXPECT_TRUE((Pred::makeUnknown() && Pred::makeTrue()).isUnknown());
  EXPECT_TRUE((Pred::makeUnknown() || Pred::makeFalse()).isUnknown());
}

TEST_F(PredicateTest, AndOrBasicAlgebra) {
  Pred a = Pred::atom(Atom::le(X, SymExpr::constant(5)));
  Pred b = Pred::atom(Atom::ge(X, SymExpr::constant(1)));
  Pred both = a && b;
  EXPECT_EQ(both.clauses().size(), 2u);
  EXPECT_EQ(both.evaluate({{x, 3}}), true);
  EXPECT_EQ(both.evaluate({{x, 9}}), false);
  Pred either = a || b;
  EXPECT_EQ(either.evaluate({{x, 100}}), true);  // x >= 1 holds
}

TEST_F(PredicateTest, NegationRoundTrip) {
  Pred a = Pred::atom(Atom::le(X, SymExpr::constant(5))) &&
           Pred::atom(Atom::ge(Y, SymExpr::constant(0)));
  Pred na = !a;
  // Evaluate both at a grid of points and check complementarity.
  for (std::int64_t vx = 3; vx <= 7; ++vx) {
    for (std::int64_t vy = -2; vy <= 2; ++vy) {
      Binding bnd{{x, vx}, {y, vy}};
      auto va = a.evaluate(bnd);
      auto vna = na.evaluate(bnd);
      ASSERT_TRUE(va.has_value());
      ASSERT_TRUE(vna.has_value());
      EXPECT_NE(*va, *vna);
    }
  }
}

TEST_F(PredicateTest, SimplifierConstantFolding) {
  Pred p1 = Pred::atom(Atom::le(SymExpr::constant(3), SymExpr::constant(5)));
  EXPECT_TRUE(p1.isTrue());
  Pred p2 = Pred::atom(Atom::le(SymExpr::constant(5), SymExpr::constant(3)));
  EXPECT_TRUE(p2.isFalse());
}

TEST_F(PredicateTest, SimplifierDetectsContradiction) {
  Pred a = Pred::atom(Atom::le(X, SymExpr::constant(1)));
  Pred b = Pred::atom(Atom::ge(X, SymExpr::constant(2)));
  Pred both = a && b;
  both.simplify();
  EXPECT_TRUE(both.isFalse());
}

TEST_F(PredicateTest, SimplifierDropsRedundantClause) {
  Pred strong = Pred::atom(Atom::le(X, SymExpr::constant(3)));
  Pred weak = Pred::atom(Atom::le(X, SymExpr::constant(10)));
  Pred both = strong && weak;
  both.simplify();
  EXPECT_EQ(both.clauses().size(), 1u);
  EXPECT_EQ(both, strong);
}

TEST_F(PredicateTest, SimplifierTautologicalClause) {
  // (x <= y or x > y) ∧ (y <= 2)  ==  y <= 2
  Disjunct d;
  d.atoms = {Atom::le(X, Y), Atom::gt(X, Y)};
  Pred p1 = Pred::atom(Atom::le(Y, SymExpr::constant(2)));
  Pred tauto = Pred::atom(d.atoms[0]) || Pred::atom(d.atoms[1]);
  Pred all = tauto && p1;
  all.simplify();
  EXPECT_EQ(all, p1);
}

TEST_F(PredicateTest, UnitResolution) {
  // (x <= 0) ∧ (x >= 1 or y <= 5) simplifies to (x <= 0) ∧ (y <= 5).
  Pred unit = Pred::atom(Atom::le(X, SymExpr::constant(0)));
  Pred clause = Pred::atom(Atom::ge(X, SymExpr::constant(1))) ||
                Pred::atom(Atom::le(Y, SymExpr::constant(5)));
  Pred all = unit && clause;
  all.simplify();
  Pred expected = unit && Pred::atom(Atom::le(Y, SymExpr::constant(5)));
  EXPECT_EQ(all, expected);
}

TEST_F(PredicateTest, ImplicationBetweenPredicates) {
  Pred strong = Pred::atom(Atom::le(X, SymExpr::constant(2))) &&
                Pred::atom(Atom::ge(X, SymExpr::constant(0)));
  Pred weak = Pred::atom(Atom::le(X, SymExpr::constant(5)));
  EXPECT_EQ(strong.implies(weak), Truth::True);
  EXPECT_NE(weak.implies(strong), Truth::True);
  EXPECT_EQ(Pred::makeFalse().implies(strong), Truth::True);
  EXPECT_EQ(strong.implies(Pred::makeTrue()), Truth::True);
}

TEST_F(PredicateTest, ImplicationThroughArithmetic) {
  // The Figure 1(c) pattern: x > SIZE in `out` implies x > SIZE in `in`.
  VarId size = tab.intern("size");
  SymExpr S = SymExpr::variable(size);
  Pred inGuard = Pred::atom(Atom::le(X, S));   // call-in executes loop
  Pred outGuard = Pred::atom(Atom::le(X, S));  // call-out executes loop
  EXPECT_EQ(outGuard.implies(inGuard), Truth::True);
}

TEST_F(PredicateTest, ImplicationWithDisjunctiveGoal) {
  Pred hyp = Pred::atom(Atom::le(X, SymExpr::constant(0)));
  Pred goal = Pred::atom(Atom::le(X, SymExpr::constant(3))) ||
              Pred::atom(Atom::ge(Y, SymExpr::constant(7)));
  EXPECT_EQ(hyp.implies(goal), Truth::True);
}

TEST_F(PredicateTest, SubstitutionRewritesAtoms) {
  Pred g = Pred::atom(Atom::le(X, SymExpr::constant(9)));
  Pred g2 = g.substituted(x, Y + 4);  // y + 4 <= 9  ==  y <= 5
  EXPECT_EQ(g2.evaluate({{y, 5}}), true);
  EXPECT_EQ(g2.evaluate({{y, 6}}), false);
  EXPECT_FALSE(g2.containsVar(x));
}

TEST_F(PredicateTest, ProvablyFalseWithCaseSplit) {
  // (x <= 0 or x >= 10) ∧ (x >= 1) ∧ (x <= 9) is unsatisfiable but needs a
  // split on the non-unit clause.
  Pred split = Pred::atom(Atom::le(X, SymExpr::constant(0))) ||
               Pred::atom(Atom::ge(X, SymExpr::constant(10)));
  Pred box = Pred::atom(Atom::ge(X, SymExpr::constant(1))) &&
             Pred::atom(Atom::le(X, SymExpr::constant(9)));
  Pred all = split && box;
  EXPECT_EQ(all.provablyFalse(), Truth::True);
}

TEST_F(PredicateTest, LogicalVariableGuards) {
  // The Figure 1(b) pattern: .NOT.p is loop-invariant; p ∧ ¬p contradicts.
  Pred notP = Pred::atom(Atom::logicalVar(p, false));
  Pred isP = Pred::atom(Atom::logicalVar(p, true));
  Pred both = notP && isP;
  both.simplify();
  EXPECT_TRUE(both.isFalse());
  EXPECT_EQ(notP.implies(isP), Truth::Unknown);
}

TEST_F(PredicateTest, StringRendering) {
  Pred g = Pred::atom(Atom::le(X, SymExpr::constant(3)));
  EXPECT_EQ(g.str(tab), "x - 3 <= 0");
  EXPECT_EQ(Pred::makeTrue().str(tab), "true");
  EXPECT_EQ(Pred::makeFalse().str(tab), "false");
  EXPECT_EQ(Pred::makeUnknown().str(tab), "DELTA");
}

// ---------------------------------------------------------------------------
// Property tests: CNF algebra must agree with boolean evaluation, and the
// simplifier must preserve meaning.
// ---------------------------------------------------------------------------

class PredicatePropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  SymbolTable tab;
  std::vector<VarId> ivars{tab.intern("i"), tab.intern("j")};
  VarId lvar = tab.intern("flag");

  Atom randomAtom(std::mt19937& rng) {
    std::uniform_int_distribution<int> kind(0, 10);
    std::uniform_int_distribution<int> c(-4, 4);
    int k = kind(rng);
    if (k == 0) return Atom::logicalVar(lvar, c(rng) > 0);
    SymExpr e = SymExpr::variable(ivars[k % 2]).mulConst(1 + (c(rng) & 1)) +
                SymExpr::constant(c(rng));
    switch (k % 7) {
      case 0: return Atom::rel(e, RelOp::LE);
      case 1: return Atom::rel(e, RelOp::EQ);
      case 2: return Atom::rel(e, RelOp::NE);
      // Real-valued atoms participate with the same boolean semantics under
      // integer bindings but different proof rules.
      case 3: return Atom::rel(e, RelOp::RLT);
      case 4: return Atom::rel(e, RelOp::RLE);
      case 5: return Atom::rel(e, RelOp::REQ);
      default: return Atom::rel(e, RelOp::RNE);
    }
  }

  Pred randomPred(std::mt19937& rng, int depth) {
    std::uniform_int_distribution<int> op(0, 3);
    if (depth == 0) return Pred::atom(randomAtom(rng));
    Pred a = randomPred(rng, depth - 1);
    Pred b = randomPred(rng, depth - 1);
    switch (op(rng)) {
      case 0: return a && b;
      case 1: return a || b;
      case 2: return !a;
      default: return a;
    }
  }
};

TEST_P(PredicatePropertyTest, OperatorsAgreeWithBooleanSemantics) {
  std::mt19937 rng(GetParam() * 31u + 1u);
  std::uniform_int_distribution<int> val(-6, 6);
  for (int iter = 0; iter < 120; ++iter) {
    Pred a = randomPred(rng, 2);
    Pred b = randomPred(rng, 2);
    Binding bnd{{ivars[0], val(rng)}, {ivars[1], val(rng)}, {lvar, val(rng) > 0 ? 1 : 0}};
    auto va = a.evaluate(bnd);
    auto vb = b.evaluate(bnd);
    if (!va || !vb) continue;  // Δ-tainted: no exact semantics to check
    auto vand = (a && b).evaluate(bnd);
    auto vor = (a || b).evaluate(bnd);
    auto vnot = (!a).evaluate(bnd);
    if (vand) {
      EXPECT_EQ(*vand, *va && *vb);
    }
    if (vor) {
      EXPECT_EQ(*vor, *va || *vb);
    }
    if (vnot) {
      EXPECT_EQ(*vnot, !*va);
    }
  }
}

TEST_P(PredicatePropertyTest, SimplifyPreservesMeaning) {
  std::mt19937 rng(GetParam() * 977u + 5u);
  std::uniform_int_distribution<int> val(-6, 6);
  for (int iter = 0; iter < 120; ++iter) {
    Pred a = randomPred(rng, 2);
    Pred s = a;
    s.simplify();
    for (int pt = 0; pt < 6; ++pt) {
      Binding bnd{{ivars[0], val(rng)}, {ivars[1], val(rng)}, {lvar, val(rng) > 0 ? 1 : 0}};
      auto va = a.evaluate(bnd);
      auto vs = s.evaluate(bnd);
      if (!va) continue;
      if (vs) {
        EXPECT_EQ(*vs, *va) << "simplify changed meaning: " << a.str(tab) << "  vs  "
                            << s.str(tab);
      } else {
        // simplified form became Δ-tainted: allowed only as over-approximation
        EXPECT_TRUE(s.isUnknown() || !s.isFalse());
      }
    }
  }
}

TEST_P(PredicatePropertyTest, ProvablyFalseIsSound) {
  std::mt19937 rng(GetParam() * 613u + 11u);
  std::uniform_int_distribution<int> val(-6, 6);
  for (int iter = 0; iter < 80; ++iter) {
    Pred a = randomPred(rng, 2);
    if (a.provablyFalse() != Truth::True) continue;
    // A provably false predicate must evaluate to false at every point.
    for (int pt = 0; pt < 10; ++pt) {
      Binding bnd{{ivars[0], val(rng)}, {ivars[1], val(rng)}, {lvar, val(rng) > 0 ? 1 : 0}};
      auto v = a.evaluateCnf(bnd);
      if (v) {
        EXPECT_FALSE(*v) << a.str(tab);
      }
    }
  }
}

TEST_P(PredicatePropertyTest, ImpliesIsSound) {
  std::mt19937 rng(GetParam() * 389u + 3u);
  std::uniform_int_distribution<int> val(-6, 6);
  for (int iter = 0; iter < 80; ++iter) {
    Pred a = randomPred(rng, 2);
    Pred b = randomPred(rng, 2);
    if (a.implies(b) != Truth::True) continue;
    for (int pt = 0; pt < 10; ++pt) {
      Binding bnd{{ivars[0], val(rng)}, {ivars[1], val(rng)}, {lvar, val(rng) > 0 ? 1 : 0}};
      auto va = a.evaluate(bnd);
      auto vb = b.evaluate(bnd);
      if (va && vb && *va) {
        EXPECT_TRUE(*vb) << a.str(tab) << "  =/=>  " << b.str(tab);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatePropertyTest, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace panorama
