// Tests for the §4.1 summary algorithms: block folding, IF-condition
// guards, on-the-fly substitution, loop expansion (MOD_i / UE_i / MOD_{<i}),
// and interprocedural mapping — culminating in the paper's Figure 5
// derivation, checked semantically.
#include <gtest/gtest.h>

#include "panorama/frontend/parser.h"
#include "panorama/summary/summary.h"

namespace panorama {
namespace {

using ElementSet = std::set<std::vector<std::int64_t>>;

struct Analyzed {
  Program program;
  SemaResult sema;
  Hsg hsg;
  std::unique_ptr<SummaryAnalyzer> analyzer;

  const Procedure& proc(std::string_view name) const {
    const Procedure* p = program.findProcedure(name);
    EXPECT_NE(p, nullptr);
    return *p;
  }
  VarId var(std::string_view procName, std::string_view local) const {
    auto id = sema.procs.at(std::string(procName)).scalarId(local);
    EXPECT_TRUE(id.has_value());
    return *id;
  }
  ArrayId arr(std::string_view procName, std::string_view local) const {
    auto id = sema.procs.at(std::string(procName)).arrayId(local);
    EXPECT_TRUE(id.has_value());
    return *id;
  }
  const LoopSummary& loop(std::string_view procName, std::size_t index = 0) const {
    const Procedure& p = proc(procName);
    std::vector<const Stmt*> loops;
    std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& b) {
      for (const StmtPtr& s : b) {
        if (s->kind == Stmt::Kind::Do) loops.push_back(s.get());
        walk(s->thenBody);
        walk(s->elseBody);
        walk(s->body);
      }
    };
    walk(p.body);
    EXPECT_LT(index, loops.size());
    const LoopSummary* ls = analyzer->loopSummary(loops[index]);
    EXPECT_NE(ls, nullptr);
    return *ls;
  }
};

Analyzed analyzeSource(std::string_view src, AnalysisOptions options = {}) {
  Analyzed a;
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.str();
  a.program = std::move(*p);
  auto r = analyze(a.program, diags);
  EXPECT_TRUE(r.has_value()) << diags.str();
  a.sema = std::move(*r);
  a.hsg = buildHsg(a.program, a.sema, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  a.analyzer = std::make_unique<SummaryAnalyzer>(a.program, a.sema, a.hsg, options);
  a.analyzer->analyzeAll();
  return a;
}

ElementSet evalList(const GarList& list, ArrayId array, const Binding& b,
                    bool* undecided = nullptr) {
  ElementSet out;
  for (const Gar& g : list.gars()) {
    if (g.array() != array) continue;
    auto e = g.enumerate(b);
    if (!e) {
      if (undecided) *undecided = true;
      continue;
    }
    out.insert(e->begin(), e->end());
  }
  return out;
}

ElementSet points(std::initializer_list<std::int64_t> xs) {
  ElementSet out;
  for (auto x : xs) out.insert({x});
  return out;
}

TEST(SummaryTest, ProcedureModAndUe) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b)
      real a(10), b(10)
      a(1) = b(2) + 1
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {}), points({1}));
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "b"), {}), points({2}));
  EXPECT_TRUE(evalList(ps.ue, a.arr("s", "a"), {}).empty());
}

TEST(SummaryTest, WriteKillsLaterUse) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, x)
      real a(10), x
      a(1) = 3
      x = a(1) + a(2)
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  // a(1) is written before its use: only a(2) is upward exposed.
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "a"), {}), points({2}));
}

TEST(SummaryTest, SelfReferenceIsExposed) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a)
      real a(10)
      a(1) = a(1) + 1
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "a"), {}), points({1}));
}

TEST(SummaryTest, IfConditionGuardsKill) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, x, n)
      real a(10), x
      integer n
      if (n .gt. 0) then
        a(1) = 1
      endif
      x = a(1)
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  VarId n = a.var("s", "n");
  // Exposed exactly when the write did not happen: n <= 0.
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "a"), {{n, 5}}), points({}));
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "a"), {{n, 0}}), points({1}));
  // MOD is guarded the same way.
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{n, 5}}), points({1}));
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{n, -1}}), points({}));
}

TEST(SummaryTest, TwoSidedIfMerges) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, x, n)
      real a(10), x
      integer n
      if (n .gt. 0) then
        a(1) = 1
      else
        a(1) = 2
      endif
      x = a(1)
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  VarId n = a.var("s", "n");
  // Written on both paths: never exposed; MOD unconditional after merge.
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "a"), {{n, 1}}), points({}));
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "a"), {{n, 0}}), points({}));
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{n, 0}}), points({1}));
}

TEST(SummaryTest, OnTheFlySubstitution) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, j)
      real a(20)
      integer j, k
      k = j + 1
      a(k) = 0
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  VarId j = a.var("s", "j");
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{j, 4}}), points({5}));
}

TEST(SummaryTest, SubstitutionChain) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, j)
      real a(20)
      integer j, k, m
      k = j + 1
      m = k * 2
      a(m) = 0
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  VarId j = a.var("s", "j");
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{j, 4}}), points({10}));
}

TEST(SummaryTest, UnlowerableRhsDegradesNotLies) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b, j)
      real a(20), b(20)
      integer j, k
      k = b(j)
      a(k) = 0
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  bool undecided = false;
  evalList(ps.mod, a.arr("s", "a"), {{a.var("s", "j"), 1}}, &undecided);
  EXPECT_TRUE(undecided);  // the write exists but its target is Ω/Δ
  EXPECT_FALSE(ps.mod.forArray(a.arr("s", "a")).empty());
}

TEST(SummaryTest, SimpleLoopExpansion) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n
      do i = 1, n
        a(i) = b(i + 1)
      enddo
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("s"));
  VarId n = a.var("s", "n");
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{n, 4}}), points({1, 2, 3, 4}));
  EXPECT_EQ(evalList(ps.ue, a.arr("s", "b"), {{n, 3}}), points({2, 3, 4}));
  EXPECT_EQ(evalList(ps.mod, a.arr("s", "a"), {{n, 0}}), points({}));  // zero-trip
}

TEST(SummaryTest, PerIterationSetsAndPrior) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, n)
      real a(100)
      integer n
      do i = 1, n
        a(i) = a(i - 1) + 1
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");
  ASSERT_TRUE(ls.boundsKnown);
  VarId i = ls.bounds.index;
  VarId n = a.var("s", "n");
  ArrayId arr = a.arr("s", "a");
  // MOD_i = {i}; UE_i = {i-1}; MOD_{<i} = (1 : i-1).
  EXPECT_EQ(evalList(ls.modIter, arr, {{i, 5}, {n, 9}}), points({5}));
  EXPECT_EQ(evalList(ls.ueIter, arr, {{i, 5}, {n, 9}}), points({4}));
  EXPECT_EQ(evalList(ls.modBefore, arr, {{i, 5}, {n, 9}}), points({1, 2, 3, 4}));
  EXPECT_EQ(evalList(ls.modAfter, arr, {{i, 5}, {n, 9}}), points({6, 7, 8, 9}));
  // Whole-loop UE: only a(0) (the i=1 iteration's read survives the kill).
  EXPECT_EQ(evalList(ls.ue, arr, {{n, 9}}), points({0}));
}

TEST(SummaryTest, WorkArrayPatternHasEmptyIterUe) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b, n, m)
      real a(100), b(100)
      integer n, m
      do i = 1, n
        do j = 1, m
          a(j) = i + j
        enddo
        do j = 1, m
          b(j) = a(j) * 2
        enddo
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");  // outermost (i) loop
  ArrayId arr = a.arr("s", "a");
  VarId m = a.var("s", "m");
  VarId i = ls.bounds.index;
  // Within one i-iteration every read of `a` is preceded by its write.
  EXPECT_EQ(evalList(ls.ueIter, arr, {{i, 2}, {m, 6}, {a.var("s", "n"), 5}}), points({}));
  EXPECT_EQ(evalList(ls.modIter, arr, {{i, 2}, {m, 6}, {a.var("s", "n"), 5}}),
            points({1, 2, 3, 4, 5, 6}));
}

TEST(SummaryTest, LoopVariantScalarPoisons) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, n)
      real a(100)
      integer n, k
      k = 0
      do i = 1, n
        a(k) = 1
        k = k + 1
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");
  ArrayId arr = a.arr("s", "a");
  // `k` at body entry depends on the previous iteration: MOD_i must be
  // undecidable rather than wrong.
  bool undecided = false;
  evalList(ls.modIter, arr, {{ls.bounds.index, 3}, {a.var("s", "n"), 5}}, &undecided);
  EXPECT_TRUE(undecided);
}

TEST(SummaryTest, InterproceduralGuardedSummary) {
  // The Figure 1(c) shape: a guarded early return in the callee becomes a
  // guard on the caller-visible MOD set.
  Analyzed a = analyzeSource(R"(
      program main
      real a(100)
      real x
      integer m
      call in(a, x, m)
      end
      subroutine in(b, y, mm)
      real b(100)
      real y
      integer mm
      if (y .gt. 100.0) return
      do j = 1, mm
        b(j) = y
      enddo
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("in"));
  ArrayId b = a.arr("in", "b");
  VarId y = a.var("in", "y");
  VarId mm = a.var("in", "mm");
  // y <= 100 (as an integer binding standing in for the real): writes 1..mm.
  EXPECT_EQ(evalList(ps.mod, b, {{y, 50}, {mm, 3}}), points({1, 2, 3}));
  EXPECT_EQ(evalList(ps.mod, b, {{y, 101}, {mm, 3}}), points({}));

  // And the caller maps b -> a.
  const ProcSummary& mainPs = a.analyzer->procSummary(a.proc("main"));
  ArrayId arrA = a.arr("main", "a");
  VarId x = a.var("main", "x");
  VarId m = a.var("main", "m");
  EXPECT_EQ(evalList(mainPs.modAll, arrA, {{x, 50}, {m, 2}}), points({1, 2}));
  EXPECT_EQ(evalList(mainPs.modAll, arrA, {{x, 200}, {m, 2}}), points({}));
}

TEST(SummaryTest, OffsetArrayPassing) {
  Analyzed a = analyzeSource(R"(
      program main
      real a(100)
      call f(a(10))
      end
      subroutine f(b)
      real b(5)
      do j = 1, 5
        b(j) = 0
      enddo
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("main"));
  EXPECT_EQ(evalList(ps.modAll, a.arr("main", "a"), {}), points({10, 11, 12, 13, 14}));
}

TEST(SummaryTest, CommonArraysPassThrough) {
  Analyzed a = analyzeSource(R"(
      program main
      real w(50)
      common /pool/ w
      real x
      call fill
      x = w(3)
      end
      subroutine fill
      real w(50)
      common /pool/ w
      do j = 1, 10
        w(j) = j
      enddo
      end
  )");
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("main"));
  ArrayId w = a.arr("main", "w");
  ElementSet mod = evalList(ps.modAll, w, {});
  EXPECT_EQ(mod.size(), 10u);
  // w(3) is written by fill before the read: not upward exposed.
  EXPECT_EQ(evalList(ps.ueAll, w, {}), points({}));
}

TEST(SummaryTest, NonInterproceduralDegradesToOmega) {
  AnalysisOptions opt;
  opt.interprocedural = false;
  Analyzed a = analyzeSource(R"(
      program main
      real a(100)
      real x
      integer m
      call in(a, x, m)
      end
      subroutine in(b, y, mm)
      real b(100)
      real y
      integer mm
      b(1) = y
      end
  )",
                             opt);
  const ProcSummary& ps = a.analyzer->procSummary(a.proc("main"));
  bool undecided = false;
  evalList(ps.modAll, a.arr("main", "a"), {}, &undecided);
  EXPECT_TRUE(undecided);
}

TEST(SummaryTest, DownwardExposedUses) {
  // DE (§3.2.2): a read followed by a same-iteration write of the same
  // element is not downward exposed; a read that is never overwritten is.
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b, x, n)
      real a(100), b(100), x
      integer n
      do i = 1, n
        x = a(5) + b(i)
        a(5) = x * 2
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");
  VarId i = ls.bounds.index;
  VarId n = a.var("s", "n");
  ArrayId arr = a.arr("s", "a");
  ArrayId brr = a.arr("s", "b");
  // UE_i(a) = {5} (read before write)...
  EXPECT_EQ(evalList(ls.ueIter, arr, {{i, 3}, {n, 8}}), points({5}));
  // ...but DE_i(a) = {} — the write follows the read.
  EXPECT_EQ(evalList(ls.deIter, arr, {{i, 3}, {n, 8}}), points({}));
  // b(i) is read and never written: downward exposed.
  EXPECT_EQ(evalList(ls.deIter, brr, {{i, 3}, {n, 8}}), points({3}));
}

TEST(SummaryTest, DeBasedAntiTest) {
  // t = a(5); a(5) = t + i: the UE-based anti test fires (a(5) is read and
  // written by every other iteration), the DE-based one does not — the anti
  // dependence is subsumed by the output dependence, exactly §3.2.2's note.
  Analyzed a = analyzeSource(R"(
      subroutine s(a, n)
      real a(100)
      real t
      integer n
      do i = 1, n
        t = a(5)
        a(5) = t + i
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");
  ConstraintSet cs;
  cs.addExprLE0(ls.bounds.lo - SymExpr::variable(ls.bounds.index));
  cs.addExprLE0(SymExpr::variable(ls.bounds.index) - ls.bounds.up);
  CmpCtx ctx{cs};
  EXPECT_NE(garIntersectionEmpty(ls.ueIter, ls.modAfter, ctx), Truth::True);
  EXPECT_EQ(garIntersectionEmpty(ls.deIter, ls.modAfter, ctx), Truth::True);
}

TEST(SummaryTest, InductionVariableConversion) {
  // §5.2: k advances by 2 per iteration — the analysis converts it to an
  // expression of the loop index instead of giving up.
  Analyzed a = analyzeSource(R"(
      subroutine s(a, n)
      real a(200)
      integer n, k
      k = 10
      do i = 1, n
        a(k) = i
        a(k + 1) = i
        k = k + 2
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");
  ASSERT_TRUE(ls.boundsKnown);
  VarId i = ls.bounds.index;
  VarId n = a.var("s", "n");
  VarId k = a.var("s", "k");
  ArrayId arr = a.arr("s", "a");
  // At iteration i (k entered the loop as 10): writes {10+2(i-1), 11+2(i-1)}.
  bool und = false;
  ElementSet got = evalList(ls.modIter, arr, {{i, 3}, {n, 6}, {k, 10}}, &und);
  EXPECT_FALSE(und);
  EXPECT_EQ(got, points({14, 15}));
  // MOD_<i covers the two strides exactly.
  got = evalList(ls.modBefore, arr, {{i, 3}, {n, 6}, {k, 10}}, &und);
  EXPECT_FALSE(und);
  EXPECT_EQ(got, points({10, 11, 12, 13}));
  // Whole-loop MOD is the contiguous block.
  got = evalList(ls.mod, arr, {{n, 4}, {k, 10}}, &und);
  EXPECT_FALSE(und);
  EXPECT_EQ(got.size(), 8u);
}

TEST(SummaryTest, ConditionalIncrementIsNotInduction) {
  Analyzed a = analyzeSource(R"(
      subroutine s(a, n, m)
      real a(200)
      integer n, m, k
      k = 1
      do i = 1, n
        if (i .gt. m) then
          k = k + 2
        endif
        a(k) = i
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("s");
  bool und = false;
  evalList(ls.modIter, a.arr("s", "a"),
           {{ls.bounds.index, 3}, {a.var("s", "n"), 6}, {a.var("s", "m"), 2},
            {a.var("s", "k"), 1}},
           &und);
  EXPECT_TRUE(und);  // must stay conservative
}

TEST(SummaryTest, PrematureExitKeepsInvariantModPrecise) {
  // §5.4: the early exit taints the index-dependent writes of the loop's
  // MOD, but the invariant unconditional write stays exact (any started
  // loop writes it in iteration 1).
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b, c, n)
      real a(100), b(100), c(100)
      integer n
      do i = 1, n
        c(7) = 1
        if (b(i) .gt. 0.0) goto 99
        a(i) = b(i)
      enddo
 99   continue
      end
  )");
  const LoopSummary& ls = a.loop("s");
  ASSERT_TRUE(ls.prematureExit);
  VarId n = a.var("s", "n");
  // c(7): exact, guarded only by the loop executing at all.
  bool und = false;
  ElementSet gotC = evalList(ls.mod, a.arr("s", "c"), {{n, 5}}, &und);
  EXPECT_FALSE(und);
  EXPECT_EQ(gotC, points({7}));
  EXPECT_EQ(evalList(ls.mod, a.arr("s", "c"), {{n, 0}}), points({}));
  // a(i): may stop early — must be Δ, never the full range.
  und = false;
  evalList(ls.mod, a.arr("s", "a"), {{n, 5}}, &und);
  EXPECT_TRUE(und);
}

TEST(SummaryTest, PrematureExitModBeforeStaysExact) {
  // Predecessor iterations of an executing iteration ran complete bodies:
  // MOD_{<i} keeps full precision even in an early-exit loop.
  Analyzed a = analyzeSource(R"(
      subroutine s(a, b, n)
      real a(100), b(100)
      integer n
      do i = 1, n
        a(i) = i
        if (b(i) .gt. 0.0) goto 99
      enddo
 99   continue
      end
  )");
  const LoopSummary& ls = a.loop("s");
  ASSERT_TRUE(ls.prematureExit);
  VarId i = ls.bounds.index;
  VarId n = a.var("s", "n");
  bool und = false;
  ElementSet got = evalList(ls.modBefore, a.arr("s", "a"), {{i, 4}, {n, 9}}, &und);
  EXPECT_FALSE(und);
  EXPECT_EQ(got, points({1, 2, 3}));
}

TEST(SummaryTest, Figure5Derivation) {
  // Figure 1(b) / Figure 5: the full derivation, checked semantically.
  Analyzed a = analyzeSource(R"(
      subroutine filer(a, jlow, jup, jmax, p, n)
      real a(200)
      integer jlow, jup, jmax, n
      logical p
      do i = 1, n
        do j = jlow, jup
          a(j) = i
        enddo
        if (.not. p) then
          a(jmax) = i
        endif
        do j = jlow, jup
          a(j) = a(j) + a(jmax)
        enddo
      enddo
      end
  )");
  const LoopSummary& ls = a.loop("filer");  // the I loop
  ArrayId arr = a.arr("filer", "a");
  VarId jlow = a.var("filer", "jlow");
  VarId jup = a.var("filer", "jup");
  VarId jmax = a.var("filer", "jmax");
  VarId p = a.var("filer", "p");
  VarId i = ls.bounds.index;

  // Brute-force oracle for one iteration's MOD_i and UE_i.
  auto oracle = [&](std::int64_t lo, std::int64_t up, std::int64_t mx, bool pv) {
    std::set<std::int64_t> written;
    std::set<std::int64_t> exposed;
    auto use = [&](std::int64_t x) {
      if (!written.count(x)) exposed.insert(x);
    };
    for (std::int64_t j = lo; j <= up; ++j) written.insert(j);
    if (!pv) written.insert(mx);
    for (std::int64_t j = lo; j <= up; ++j) {
      use(j);
      use(mx);
      written.insert(j);
    }
    return std::pair(written, exposed);
  };

  for (std::int64_t lo : {5, 8}) {
    for (std::int64_t up : {4, 9}) {
      for (std::int64_t mx : {3, 6, 9, 12}) {
        for (bool pv : {false, true}) {
          Binding bnd{{jlow, lo}, {jup, up}, {jmax, mx}, {p, pv ? 1 : 0}, {i, 2},
                      {a.var("filer", "n"), 7}};
          auto [wantMod, wantUe] = oracle(lo, up, mx, pv);
          bool und = false;
          ElementSet gotMod = evalList(ls.modIter, arr, bnd, &und);
          ElementSet gotUe = evalList(ls.ueIter, arr, bnd, &und);
          ASSERT_FALSE(und) << "fig5 must stay exact";
          ElementSet wantModSet;
          for (auto x : wantMod) wantModSet.insert({x});
          ElementSet wantUeSet;
          for (auto x : wantUe) wantUeSet.insert({x});
          EXPECT_EQ(gotMod, wantModSet) << lo << " " << up << " " << mx << " " << pv;
          EXPECT_EQ(gotUe, wantUeSet) << lo << " " << up << " " << mx << " " << pv;
        }
      }
    }
  }

  // The paper's punchline: UE_i ∩ MOD_{<i} = ∅, so A is privatizable.
  ConstraintSet cs;
  cs.addExprLE0(ls.bounds.lo - SymExpr::variable(i));
  cs.addExprLE0(SymExpr::variable(i) - ls.bounds.up);
  EXPECT_EQ(garIntersectionEmpty(ls.ueIter, ls.modBefore, CmpCtx{cs}), Truth::True);
}

}  // namespace
}  // namespace panorama
