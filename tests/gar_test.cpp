// Tests for multidimensional regions, guarded array regions, the GAR
// simplifier, and the §4.1 expansion function — including brute-force
// property validation of the whole algebra.
#include <gtest/gtest.h>

#include <random>

#include "panorama/region/gar.h"

namespace panorama {
namespace {

using ElementSet = std::set<std::vector<std::int64_t>>;

class GarTest : public ::testing::Test {
 protected:
  SymbolTable tab;
  ArrayTable arrays;
  VarId i = tab.intern("i");
  VarId n = tab.intern("n");
  VarId m = tab.intern("m");
  SymExpr I = SymExpr::variable(i);
  SymExpr N = SymExpr::variable(n);
  SymExpr M = SymExpr::variable(m);
  SymExpr one = SymExpr::constant(1);
  ArrayId A = arrays.intern("a", {SymRange{one, SymExpr::constant(100), one}});
  ArrayId B2 = arrays.intern("b", {SymRange{one, SymExpr::constant(100), one},
                                   SymRange{one, SymExpr::constant(100), one}});
  CmpCtx ctx;

  static SymRange mk(std::int64_t lo, std::int64_t up, std::int64_t step = 1) {
    return SymRange{SymExpr::constant(lo), SymExpr::constant(up), SymExpr::constant(step)};
  }
  Region reg1(SymRange r) const { return Region{A, {std::move(r)}}; }
  Region reg2(SymRange r1, SymRange r2) const { return Region{B2, {std::move(r1), std::move(r2)}}; }

  static ElementSet evalList(const GarList& list, ArrayId array, const Binding& b,
                             bool* undecided = nullptr) {
    ElementSet out;
    for (const Gar& g : list.gars()) {
      if (g.array() != array) continue;
      auto e = g.enumerate(b);
      if (!e) {
        if (undecided) *undecided = true;
        continue;
      }
      out.insert(e->begin(), e->end());
    }
    return out;
  }
};

TEST_F(GarTest, MakeAddsValidityConditions) {
  // [True, A(n : m)] must carry n <= m in its guard (§3).
  Gar g = Gar::make(Pred::makeTrue(), reg1(SymRange{N, M, one}));
  EXPECT_EQ(g.guard().evaluate({{n, 3}, {m, 5}}), true);
  EXPECT_EQ(g.guard().evaluate({{n, 6}, {m, 5}}), false);
}

TEST_F(GarTest, EmptyAndOmega) {
  Gar dead = Gar::make(Pred::makeFalse(), reg1(mk(1, 5)));
  EXPECT_TRUE(dead.isEmpty());
  GarList list = GarList::single(dead);
  EXPECT_TRUE(list.empty());  // empty GARs never enter a list
  Gar omega = Gar::omega(A, 1);
  EXPECT_TRUE(omega.isOmega());
  EXPECT_FALSE(omega.isExact());
  EXPECT_FALSE(omega.enumerate({}).has_value());
}

TEST_F(GarTest, PaperUnionExample) {
  // §3's motivating pair: T1 = [a <= b, A(a:b)], T2 = [b <= c, A(b:c)].
  VarId a = tab.intern("pa");
  VarId b = tab.intern("pb");
  VarId c = tab.intern("pc");
  SymExpr ea = SymExpr::variable(a);
  SymExpr eb = SymExpr::variable(b);
  SymExpr ec = SymExpr::variable(c);
  GarList t1 = GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange{ea, eb, one})));
  GarList t2 = GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange{eb, ec, one})));
  GarList u = garUnion(t1, t2, ctx, &arrays);
  // Check set semantics over assorted orderings of a, b, c.
  for (std::int64_t va : {1, 5}) {
    for (std::int64_t vb : {2, 7}) {
      for (std::int64_t vc : {4, 9}) {
        Binding bnd{{a, va}, {b, vb}, {c, vc}};
        ElementSet want;
        for (std::int64_t x = va; x <= vb; ++x) want.insert({x});
        for (std::int64_t x = vb; x <= vc; ++x) want.insert({x});
        EXPECT_EQ(evalList(u, A, bnd), want) << va << "," << vb << "," << vc;
      }
    }
  }
}

TEST_F(GarTest, UnionMergesSameRegionGuards) {
  Pred p = Pred::atom(Atom::le(N, SymExpr::constant(4)));
  Pred q = Pred::atom(Atom::gt(N, SymExpr::constant(4)));
  GarList t1 = GarList::single(Gar::make(p, reg1(mk(1, 9))));
  GarList t2 = GarList::single(Gar::make(q, reg1(mk(1, 9))));
  GarList u = garUnion(t1, t2, ctx, &arrays);
  // p ∨ q is a tautology: one member with guard True.
  ASSERT_EQ(u.size(), 1u);
  EXPECT_TRUE(u.gars()[0].guard().isTrue());
}

TEST_F(GarTest, UnionMergesAdjacentRegions) {
  GarList t1 = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 5))));
  GarList t2 = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(6, 9))));
  GarList u = garUnion(t1, t2, ctx, &arrays);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(evalList(u, A, {}).size(), 9u);
}

TEST_F(GarTest, UnionAbsorbsOmegaUnderWholeArray) {
  // §5.3: MOD1 ∪ Ω = MOD1 when MOD1 covers the whole array.
  GarList whole = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 100))));
  GarList withOmega = garUnion(whole, GarList::single(Gar::omega(A, 1)), ctx, &arrays);
  ASSERT_EQ(withOmega.size(), 1u);
  EXPECT_TRUE(withOmega.gars()[0].isExact());
}

TEST_F(GarTest, UnionKeepsOmegaWithoutFullCover) {
  GarList part = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 50))));
  GarList u = garUnion(part, GarList::single(Gar::omega(A, 1)), ctx, &arrays);
  EXPECT_EQ(u.size(), 2u);
}

TEST_F(GarTest, IntersectConjoinsGuards) {
  Pred p = Pred::atom(Atom::le(N, SymExpr::constant(0)));
  GarList t1 = GarList::single(Gar::make(p, reg1(mk(1, 10))));
  GarList t2 = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(5, 20))));
  GarList inter = garIntersect(t1, t2, ctx);
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_EQ(evalList(inter, A, {{n, 0}}), (ElementSet{{5}, {6}, {7}, {8}, {9}, {10}}));
  EXPECT_TRUE(evalList(inter, A, {{n, 1}}).empty());
}

TEST_F(GarTest, IntersectContradictoryGuardsIsEmpty) {
  Pred p = Pred::atom(Atom::le(N, SymExpr::constant(0)));
  Pred np = Pred::atom(Atom::gt(N, SymExpr::constant(0)));
  GarList t1 = GarList::single(Gar::make(p, reg1(mk(1, 10))));
  GarList t2 = GarList::single(Gar::make(np, reg1(mk(1, 10))));
  EXPECT_TRUE(garIntersect(t1, t2, ctx).empty());
  EXPECT_EQ(garIntersectionEmpty(t1, t2, ctx), Truth::True);
}

TEST_F(GarTest, SubtractHonorsGuardComplement) {
  // T1 − T2 keeps [P1 ∧ ¬P2, R1]: elements survive where the kill was
  // conditional and the condition fails.
  Pred p = Pred::atom(Atom::le(N, SymExpr::constant(0)));
  GarList use = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 10))));
  GarList mod = GarList::single(Gar::make(p, reg1(mk(1, 10))));
  GarList diff = garSubtract(use, mod, ctx);
  EXPECT_TRUE(evalList(diff, A, {{n, 0}}).empty());          // killed: n <= 0
  EXPECT_EQ(evalList(diff, A, {{n, 3}}).size(), 10u);        // survives: n > 0
}

TEST_F(GarTest, SubtractUnknownRefusesToKill) {
  GarList use = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 10))));
  GarList mod = GarList::single(Gar::omega(A, 1));
  GarList diff = garSubtract(use, mod, ctx);
  bool undecided = false;
  evalList(diff, A, {}, &undecided);
  // Every element must survive somewhere — possibly behind Δ.
  EXPECT_TRUE(undecided || evalList(diff, A, {}).size() == 10u);
  EXPECT_FALSE(diff.empty());
}

TEST_F(GarTest, TwoDimensionalSubtractPaperExample) {
  // (1:100, 1:100) − (20:30, a:30) from §3.1, checked semantically.
  VarId a = tab.intern("qa");
  SymExpr ea = SymExpr::variable(a);
  GarList r1 = GarList::single(Gar::make(Pred::makeTrue(), reg2(mk(1, 100), mk(1, 100))));
  GarList r2 = GarList::single(
      Gar::make(Pred::makeTrue(), reg2(mk(20, 30), SymRange{ea, SymExpr::constant(30), one})));
  GarList diff = garSubtract(r1, r2, ctx);
  for (std::int64_t va : {-3, 1, 15, 31}) {
    Binding bnd{{a, va}};
    ElementSet got = evalList(diff, B2, bnd);
    std::size_t removedRows = va <= 30 ? (va < 1 ? 30 : 30 - va + 1) : 0;
    EXPECT_EQ(got.size(), 10000u - 11u * removedRows) << "a = " << va;
  }
}

TEST_F(GarTest, IntersectionEmptinessUnderGuardContext) {
  // [x <= SIZE ∧ 1 <= m, A(1:m)] ∩ [x > SIZE, A(1:m)] = ∅ — the Figure 1(c)
  // interprocedural pattern.
  VarId x = tab.intern("x");
  VarId size = tab.intern("size");
  SymExpr X = SymExpr::variable(x);
  SymExpr S = SymExpr::variable(size);
  Pred pin = Pred::atom(Atom::le(X, S));
  Pred pout = Pred::atom(Atom::gt(X, S));
  GarList mod = GarList::single(Gar::make(pin, reg1(SymRange{one, M, one})));
  GarList ue = GarList::single(Gar::make(pout, reg1(SymRange{one, M, one})));
  EXPECT_EQ(garIntersectionEmpty(mod, ue, ctx), Truth::True);
}

TEST_F(GarTest, WithGuardRestricts) {
  GarList list = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 5))));
  Pred cond = Pred::atom(Atom::logicalVar(tab.intern("flag"), true));
  GarList guarded = list.withGuard(cond);
  ASSERT_EQ(guarded.size(), 1u);
  EXPECT_EQ(evalList(guarded, A, {{tab.intern("flag"), 1}}).size(), 5u);
  EXPECT_TRUE(evalList(guarded, A, {{tab.intern("flag"), 0}}).empty());
}

// --------------------------- expansion (§4.1) ------------------------------

class ExpansionTest : public GarTest {
 protected:
  LoopBounds loop(std::int64_t lo, std::int64_t up, std::int64_t step = 1) {
    return LoopBounds{i, SymExpr::constant(lo), SymExpr::constant(up),
                      SymExpr::constant(step)};
  }
};

TEST_F(ExpansionTest, IndexFreeGarPassesThrough) {
  GarList list = GarList::single(Gar::make(Pred::makeTrue(), reg1(mk(1, 5))));
  GarList e = expandByIndex(list, loop(1, 10), ctx);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(evalList(e, A, {}).size(), 5u);
}

TEST_F(ExpansionTest, MovingPointBecomesRange) {
  // MOD_j = [True, B(j)] over j = 1..mm expands to B(1:mm) — the paper's
  // subroutine `in` example.
  GarList list = GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, LoopBounds{i, one, M, one}, ctx);
  ASSERT_EQ(e.size(), 1u);
  const Gar& g = e.gars()[0];
  EXPECT_TRUE(g.isExact());
  EXPECT_EQ(evalList(e, A, {{m, 7}}), (ElementSet{{1}, {2}, {3}, {4}, {5}, {6}, {7}}));
  EXPECT_TRUE(evalList(e, A, {{m, 0}}).empty());  // zero-trip loop
}

TEST_F(ExpansionTest, MovingPointWithCoefficient) {
  // A(2i + 1) over i = 0..4 is {1, 3, 5, 7, 9}: a strided range.
  GarList list =
      GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange::point(I.mulConst(2) + 1))));
  GarList e = expandByIndex(list, loop(0, 4), ctx);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(evalList(e, A, {}), (ElementSet{{1}, {3}, {5}, {7}, {9}}));
  EXPECT_TRUE(e.gars()[0].isExact());
}

TEST_F(ExpansionTest, DescendingPoint) {
  // A(10 - i) over i = 1..4 is {6, 7, 8, 9}.
  GarList list = GarList::single(
      Gar::make(Pred::makeTrue(), reg1(SymRange::point(SymExpr::constant(10) - I))));
  GarList e = expandByIndex(list, loop(1, 4), ctx);
  EXPECT_EQ(evalList(e, A, {}), (ElementSet{{6}, {7}, {8}, {9}}));
}

TEST_F(ExpansionTest, NegativeStepLoop) {
  // DO i = 10, 2, -3 visits {10, 7, 4}; A(i) expands to exactly that.
  GarList list = GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, loop(10, 2, -3), ctx);
  EXPECT_EQ(evalList(e, A, {}), (ElementSet{{4}, {7}, {10}}));
}

TEST_F(ExpansionTest, PaperWorkedExample) {
  // §4.1: T = [c <= i+1 <= d, A(1:i)], loop a <= i <= b. The expansion is
  // [True, A(1 : min(b, d-1))] with the max/min compiled to cases. We verify
  // semantically against brute force.
  VarId a = tab.intern("ea");
  VarId b = tab.intern("eb");
  VarId c = tab.intern("ec");
  VarId d = tab.intern("ed");
  Pred guard = Pred::atom(Atom::le(SymExpr::variable(c), I + 1)) &&
               Pred::atom(Atom::le(I + 1, SymExpr::variable(d)));
  GarList list =
      GarList::single(Gar::make(guard, reg1(SymRange{one, I, one})));
  GarList e = expandByIndex(
      list, LoopBounds{i, SymExpr::variable(a), SymExpr::variable(b), one}, ctx);
  for (std::int64_t va : {1, 3}) {
    for (std::int64_t vb : {5, 8}) {
      for (std::int64_t vc : {0, 4}) {
        for (std::int64_t vd : {3, 9}) {
          Binding bnd{{a, va}, {b, vb}, {c, vc}, {d, vd}};
          ElementSet want;
          for (std::int64_t vi = va; vi <= vb; ++vi) {
            if (!(vc <= vi + 1 && vi + 1 <= vd)) continue;
            for (std::int64_t x = 1; x <= vi; ++x) want.insert({x});
          }
          bool und = false;
          ElementSet got = evalList(e, A, bnd, &und);
          EXPECT_FALSE(und);
          EXPECT_EQ(got, want) << va << " " << vb << " " << vc << " " << vd;
        }
      }
    }
  }
}

TEST_F(ExpansionTest, SweepingIntervalContiguous) {
  // A(i : i+2) over i = 1..n is A(1 : n+2): overlapping sweep.
  GarList list =
      GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange{I, I + 2, one})));
  GarList e = expandByIndex(list, LoopBounds{i, one, N, one}, ctx);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_TRUE(e.gars()[0].isExact());
  EXPECT_EQ(evalList(e, A, {{n, 4}}).size(), 6u);
}

TEST_F(ExpansionTest, SweepingIntervalWithGapGoesOmega) {
  // A(3i : 3i+1) over i = 1..n leaves holes: must degrade, not hull.
  GarList list = GarList::single(
      Gar::make(Pred::makeTrue(), reg1(SymRange{I.mulConst(3), I.mulConst(3) + 1, one})));
  GarList e = expandByIndex(list, LoopBounds{i, one, N, one}, ctx);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_FALSE(e.gars()[0].isExact());
}

TEST_F(ExpansionTest, IndexInTwoDimensionsGoesOmega) {
  // B(i, i) over i: §4.1 marks both dimensions Ω (the ψ extension would keep
  // the diagonal; the base analysis must not pretend it is a rectangle).
  GarList list = GarList::single(
      Gar::make(Pred::makeTrue(), reg2(SymRange::point(I), SymRange::point(I))));
  GarList e = expandByIndex(list, loop(1, 10), ctx);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_TRUE(e.gars()[0].region().hasUnknownDim());
}

TEST_F(ExpansionTest, GuardEqualityPinsIteration) {
  // [i == 5, A(i)] over i = 1..10 expands to exactly A(5).
  GarList list = GarList::single(
      Gar::make(Pred::atom(Atom::eq(I, SymExpr::constant(5))), reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, loop(1, 10), ctx);
  EXPECT_EQ(evalList(e, A, {}), (ElementSet{{5}}));
}

TEST_F(ExpansionTest, GuardBoundsNarrowIteration) {
  // [i <= n, A(i)] over i = 1..10: expansion caps at min(10, n) by cases.
  GarList list = GarList::single(
      Gar::make(Pred::atom(Atom::le(I, N)), reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, loop(1, 10), ctx);
  for (std::int64_t vn : {-2, 3, 10, 40}) {
    ElementSet want;
    for (std::int64_t vi = 1; vi <= std::min<std::int64_t>(10, vn); ++vi) want.insert({vi});
    bool und = false;
    EXPECT_EQ(evalList(e, A, {{n, vn}}, &und), want) << "n = " << vn;
    EXPECT_FALSE(und);
  }
}

TEST_F(ExpansionTest, DisjunctiveGuardSplitsExactly) {
  // [i <= 3 ∨ i >= 7, A(i)] over i = 1..10: the disjunction splits into
  // separate GARs ([C1 ∨ C2, R] = [C1, R] ∪ [C2, R]) and expands exactly.
  Pred guard = Pred::atom(Atom::le(I, SymExpr::constant(3))) ||
               Pred::atom(Atom::ge(I, SymExpr::constant(7)));
  GarList list = GarList::single(Gar::make(guard, reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, loop(1, 10), ctx);
  EXPECT_EQ(evalList(e, A, {}), (ElementSet{{1}, {2}, {3}, {7}, {8}, {9}, {10}}));
  for (const Gar& g : e.gars()) EXPECT_TRUE(g.isExact());
}

TEST_F(ExpansionTest, DisequalityGuardSplitsExactly) {
  // [i /= 5, A(i)] over i = 1..10 expands to everything but A(5).
  GarList list = GarList::single(
      Gar::make(Pred::atom(Atom::ne(I, SymExpr::constant(5))), reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, loop(1, 10), ctx);
  EXPECT_EQ(evalList(e, A, {}),
            (ElementSet{{1}, {2}, {3}, {4}, {6}, {7}, {8}, {9}, {10}}));
}

TEST_F(ExpansionTest, SteppedLoopPoint) {
  // DO i = 1, 9, 2: A(i) = {1,3,5,7,9}.
  GarList list = GarList::single(Gar::make(Pred::makeTrue(), reg1(SymRange::point(I))));
  GarList e = expandByIndex(list, loop(1, 9, 2), ctx);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_TRUE(e.gars()[0].isExact());
  EXPECT_EQ(evalList(e, A, {}), (ElementSet{{1}, {3}, {5}, {7}, {9}}));
}

// ------------------------- ψ dimension symbols (§5.3) ----------------------

class PsiRegionTest : public GarTest {
 protected:
  VarId psi1 = tab.intern("psi$1");
  VarId psi2 = tab.intern("psi$2");
  SymExpr P1 = SymExpr::variable(psi1);
  SymExpr P2 = SymExpr::variable(psi2);
  PsiDims psi{psi1, psi2};

  void SetUp() override {
    // ψ is per-context now (no process-global slot): list operations pick
    // it up from the comparison context, direct Gar::make calls take it as
    // an argument.
    ctx = CmpCtx(ConstraintSet{}, FmBudget{}, psi);
  }
};

TEST_F(PsiRegionTest, DiagonalRegion) {
  // The paper's §5.3 example: A(i,i), i = 1..n  ==  [ψ1 = ψ2, A(1:n, 1:n)].
  Gar diag = Gar::make(Pred::atom(Atom::eq(P1, P2)),
                       reg2(SymRange{one, N, one}, SymRange{one, N, one}), psi);
  // ψ-range atoms were attached (coordinates live inside the region box).
  EXPECT_TRUE(diag.guard().containsVar(psi1));
  EXPECT_TRUE(diag.guard().containsVar(psi2));

  // Intersecting the diagonal with a row clips to one element's worth.
  Gar row = Gar::make(Pred::makeTrue(),
                      reg2(SymRange::point(SymExpr::constant(4)), SymRange{one, N, one}), psi);
  GarList inter = garIntersect(GarList::single(diag), GarList::single(row), ctx);
  ASSERT_FALSE(inter.empty());
  // Pointwise semantics: the result's guard forces ψ1 = ψ2 and ψ1 = 4 (from
  // the region), so only (4,4) satisfies it. Checking symbolically: the
  // guard with ψ2 != 4 must be contradictory.
  for (const Gar& g : inter.gars()) {
    Pred offDiag = g.guard() && Pred::atom(Atom::eq(P1, SymExpr::constant(4))) &&
                   Pred::atom(Atom::ne(P2, SymExpr::constant(4)));
    EXPECT_EQ(offDiag.provablyFalse(), Truth::True);
  }
}

TEST_F(PsiRegionTest, UpperTriangleSubtraction) {
  // [ψ1 <= ψ2, A(1:10, 1:10)] (upper triangle incl. diagonal) minus the
  // whole square leaves nothing; minus the strict lower triangle leaves the
  // upper triangle intact (no kill across complementary ψ guards).
  Gar upper = Gar::make(Pred::atom(Atom::le(P1, P2)), reg2(mk(1, 10), mk(1, 10)), psi);
  Gar square = Gar::make(Pred::makeTrue(), reg2(mk(1, 10), mk(1, 10)), psi);
  GarList gone = garSubtract(GarList::single(upper), GarList::single(square), ctx);
  EXPECT_TRUE(gone.empty());

  Gar lower = Gar::make(Pred::atom(Atom::gt(P1, P2)), reg2(mk(1, 10), mk(1, 10)), psi);
  GarList kept = garSubtract(GarList::single(upper), GarList::single(lower), ctx);
  ASSERT_FALSE(kept.empty());
  // The diagonal point (3,3) must still be covered: guard with ψ1=ψ2=3
  // satisfiable in some piece.
  bool covered = false;
  for (const Gar& g : kept.gars()) {
    Pred at = g.guard() && Pred::atom(Atom::eq(P1, SymExpr::constant(3))) &&
              Pred::atom(Atom::eq(P2, SymExpr::constant(3)));
    if (at.provablyFalse() != Truth::True) covered = true;
  }
  EXPECT_TRUE(covered);
}

TEST_F(PsiRegionTest, PsiBoundsEnableEmptinessProofs) {
  // [ψ1 >= 50, A(1:10)] is empty: the attached region bound ψ1 <= 10
  // contradicts the user guard.
  Gar g = Gar::make(Pred::atom(Atom::ge(P1, SymExpr::constant(50))), reg1(mk(1, 10)), psi);
  EXPECT_TRUE(g.isEmpty());
}

// ---------------------------------------------------------------------------
// Property tests: the GAR algebra against brute-force element sets, and
// expansion against brute-force loop unrolling.
// ---------------------------------------------------------------------------

class GarPropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  SymbolTable tab;
  ArrayTable arrays;
  VarId a = tab.intern("a");
  VarId b = tab.intern("b");
  ArrayId arr = arrays.intern("w", {SymRange{SymExpr::constant(1), SymExpr::constant(60),
                                             SymExpr::constant(1)}});

  SymExpr randomBound(std::mt19937& rng) {
    std::uniform_int_distribution<int> c(-8, 16);
    std::uniform_int_distribution<int> kind(0, 3);
    switch (kind(rng)) {
      case 0: return SymExpr::variable(a) + c(rng);
      case 1: return SymExpr::variable(b) + c(rng);
      default: return SymExpr::constant(c(rng));
    }
  }

  Gar randomGar(std::mt19937& rng) {
    std::uniform_int_distribution<int> kind(0, 4);
    std::uniform_int_distribution<int> cv(-4, 8);
    SymExpr lo = randomBound(rng);
    SymRange r = kind(rng) == 0 ? SymRange::point(lo)
                                : SymRange{lo, randomBound(rng),
                                           SymExpr::constant(kind(rng) == 1 ? 2 : 1)};
    Pred g = Pred::makeTrue();
    if (kind(rng) < 2)
      g = Pred::atom(Atom::le(SymExpr::variable(kind(rng) ? a : b), SymExpr::constant(cv(rng))));
    return Gar::make(std::move(g), Region{arr, {std::move(r)}});
  }

  static ElementSet evalList(const GarList& list, ArrayId array, const Binding& bnd,
                             bool* und) {
    ElementSet out;
    for (const Gar& g : list.gars()) {
      if (g.array() != array) continue;
      auto e = g.enumerate(bnd);
      if (!e) {
        *und = true;
        continue;
      }
      out.insert(e->begin(), e->end());
    }
    return out;
  }
};

TEST_P(GarPropertyTest, AlgebraMatchesBruteForce) {
  std::mt19937 rng(GetParam() * 52901u + 7u);
  std::uniform_int_distribution<int> val(-4, 12);
  CmpCtx ctx;
  int exactChecks = 0;
  for (int iter = 0; iter < 150; ++iter) {
    GarList x = GarList::single(randomGar(rng));
    x.append(GarList::single(randomGar(rng)));
    GarList y = GarList::single(randomGar(rng));

    GarList u = garUnion(x, y, ctx, &arrays);
    GarList inter = garIntersect(x, y, ctx);
    GarList diff = garSubtract(x, y, ctx);

    for (int pt = 0; pt < 3; ++pt) {
      Binding bnd{{a, val(rng)}, {b, val(rng)}};
      bool undX = false;
      bool undY = false;
      ElementSet sx = evalList(x, arr, bnd, &undX);
      ElementSet sy = evalList(y, arr, bnd, &undY);
      if (undX || undY) continue;
      ElementSet wantU = sx;
      wantU.insert(sy.begin(), sy.end());
      ElementSet wantI;
      ElementSet wantD;
      for (const auto& e : sx) {
        if (sy.count(e))
          wantI.insert(e);
        else
          wantD.insert(e);
      }
      bool und = false;
      ElementSet gotU = evalList(u, arr, bnd, &und);
      if (!und) {
        EXPECT_EQ(gotU, wantU);
        ++exactChecks;
      } else {
        for (const auto& e : wantU) EXPECT_TRUE(gotU.count(e) || und);
      }
      und = false;
      ElementSet gotI = evalList(inter, arr, bnd, &und);
      if (!und) {
        EXPECT_EQ(gotI, wantI);
      }
      und = false;
      ElementSet gotD = evalList(diff, arr, bnd, &und);
      if (!und) {
        EXPECT_EQ(gotD, wantD);
      } else {
        // Over-approximation: nothing from the true difference may vanish.
        for (const auto& e : wantD) EXPECT_TRUE(gotD.count(e) || und);
      }
    }
  }
  EXPECT_GT(exactChecks, 200);
}

TEST_P(GarPropertyTest, EmptinessOracleIsSound) {
  std::mt19937 rng(GetParam() * 7577u + 23u);
  std::uniform_int_distribution<int> val(-4, 12);
  CmpCtx ctx;
  for (int iter = 0; iter < 200; ++iter) {
    GarList x = GarList::single(randomGar(rng));
    GarList y = GarList::single(randomGar(rng));
    if (garIntersectionEmpty(x, y, ctx) != Truth::True) continue;
    for (int pt = 0; pt < 5; ++pt) {
      Binding bnd{{a, val(rng)}, {b, val(rng)}};
      bool und = false;
      ElementSet sx = evalList(x, arr, bnd, &und);
      ElementSet sy = evalList(y, arr, bnd, &und);
      if (und) continue;
      for (const auto& e : sx) EXPECT_FALSE(sy.count(e)) << "claimed-empty intersection lied";
    }
  }
}

TEST_P(GarPropertyTest, ExpansionMatchesUnrolling) {
  std::mt19937 rng(GetParam() * 3331u + 11u);
  std::uniform_int_distribution<int> val(-3, 9);
  std::uniform_int_distribution<int> coefD(-2, 2);
  std::uniform_int_distribution<int> widthD(0, 3);
  CmpCtx ctx;
  VarId i = tab.intern("idx");
  SymExpr I = SymExpr::variable(i);
  int exact = 0;
  for (int iter = 0; iter < 150; ++iter) {
    // Region dim: affine sweep c*i + base (point or short interval).
    int c = coefD(rng);
    SymExpr lo = I.mulConst(c) + randomBound(rng);
    int w = widthD(rng);
    SymRange dim = w == 0 ? SymRange::point(lo) : SymRange{lo, lo + w, SymExpr::constant(1)};
    // Optional guard bound on i.
    Pred guard = Pred::makeTrue();
    std::uniform_int_distribution<int> gk(0, 2);
    int gkind = gk(rng);
    if (gkind == 1) guard = Pred::atom(Atom::le(I, SymExpr::variable(a)));
    if (gkind == 2) guard = Pred::atom(Atom::ge(I, SymExpr::constant(val(rng))));
    Gar g = Gar::make(guard, Region{arr, {dim}});

    std::uniform_int_distribution<int> loD(-2, 4);
    std::uniform_int_distribution<int> upD(0, 9);
    std::uniform_int_distribution<int> stD(1, 3);
    std::int64_t llo = loD(rng);
    std::int64_t lup = upD(rng);
    std::int64_t lst = stD(rng);
    GarList e = expandByIndex(GarList::single(g),
                              LoopBounds{i, SymExpr::constant(llo), SymExpr::constant(lup),
                                         SymExpr::constant(lst)},
                              ctx);
    for (int pt = 0; pt < 3; ++pt) {
      Binding bnd{{a, val(rng)}, {b, val(rng)}};
      // Brute force: union over unrolled iterations.
      ElementSet want;
      bool skip = false;
      for (std::int64_t vi = llo; vi <= lup; vi += lst) {
        Binding full = bnd;
        full[i] = vi;
        auto gv = g.guard().evaluate(full);
        if (!gv) {
          skip = true;
          break;
        }
        if (!*gv) continue;
        auto elems = g.region().enumerate(full);
        if (!elems) {
          skip = true;
          break;
        }
        want.insert(elems->begin(), elems->end());
      }
      if (skip) continue;
      bool und = false;
      ElementSet got = evalList(e, arr, bnd, &und);
      if (!und) {
        EXPECT_EQ(got, want) << "expansion mismatch, c=" << c << " w=" << w << " loop=["
                             << llo << "," << lup << "," << lst << "]";
        ++exact;
      } else {
        for (const auto& el : want) EXPECT_TRUE(got.count(el) || und);
      }
    }
  }
  EXPECT_GT(exact, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarPropertyTest, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace panorama
