// Robustness and edge-case coverage across the stack: malformed input
// recovery, printing round-trips, degenerate loops, budget valves, and
// adversarial shapes the main suites do not reach.
#include <gtest/gtest.h>

#include "panorama/analysis/analysis.h"
#include "panorama/frontend/parser.h"
#include "panorama/interp/interpreter.h"

namespace panorama {
namespace {

// --------------------------------------------------------------- frontend

TEST(RobustnessTest, LexerRejectsGarbage) {
  for (const char* bad : {"x = @", "x = 1 .foo. 2", "x = .tru", "x = 1 &junk\n2"}) {
    DiagnosticEngine diags;
    lex(bad, diags);
    EXPECT_TRUE(diags.hasErrors()) << bad;
  }
}

TEST(RobustnessTest, LexerNumericForms) {
  DiagnosticEngine diags;
  auto toks = lex("x = 1.5e2 + .25 + 3. + 1e-2 + 2d0", diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.str();
  int reals = 0;
  for (const Token& t : toks) reals += t.kind == TokKind::RealLit;
  EXPECT_EQ(reals, 5);
}

TEST(RobustnessTest, ParserRejectsMalformedPrograms) {
  const char* bad[] = {
      "subroutine s(\n end\n",                  // unterminated parameter list
      "program p\n do i = 1\n enddo\n end\n",   // DO missing bound
      "program p\n if (x then\n endif\n end\n", // broken condition
      "program p\n goto\n end\n",               // GOTO without label
      "program p\n x = (1 + 2\n end\n",         // unbalanced parens
      "program p\n call\n end\n",               // call without target (parses as assignment)
  };
  for (const char* src : bad) {
    DiagnosticEngine diags;
    auto p = parseProgram(src, diags);
    EXPECT_TRUE(!p.has_value() || diags.hasErrors()) << src;
  }
}

TEST(RobustnessTest, SemaRejectsBadLabels) {
  DiagnosticEngine diags;
  auto p = parseProgram("program p\n goto 7\n end\n", diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sr = analyze(*p, diags);
  // The label error surfaces during HSG construction.
  if (sr) {
    Hsg hsg = buildHsg(*p, *sr, diags);
    EXPECT_TRUE(diags.hasErrors());
  }
}

TEST(RobustnessTest, DuplicateLabelRejected) {
  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      program p
      integer x
 5    x = 1
 5    x = 2
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  buildHsg(*p, *sr, diags);
  EXPECT_TRUE(diags.hasErrors());
}

// ------------------------------------------------------------ degenerates

TEST(RobustnessTest, DegenerateLoops) {
  // Zero-trip, single-trip, and reversed loops must analyze and execute.
  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      program p
      real a(50)
      do i = 5, 1
        a(i) = 1
      enddo
      do i = 3, 3
        a(i) = 2
      enddo
      do i = 10, 6, -2
        a(i) = 3
      enddo
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  const ProcSummary& ps = analyzer.procSummary(p->procedures[0]);

  Interpreter interp(*p, *sr);
  auto res = interp.run({});
  ASSERT_TRUE(res.ok) << res.error;
  ArrayId a = *sr->procs.at("p").arrayId("a");
  // Interpreter truth: {3} from the single-trip loop, {6, 8, 10} reversed.
  EXPECT_EQ(interp.arrays().at(a).size(), 4u);
  // Analyzer agreement on the whole-program MOD.
  auto mod = ps.modAll.enumerate(a, {});
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->size(), 4u);
  EXPECT_TRUE(mod->count({3}));
  EXPECT_TRUE(mod->count({8}));
}

TEST(RobustnessTest, EmptyProcedureAndNoArrays) {
  DiagnosticEngine diags;
  auto p = parseProgram("program p\n end\n", diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  const ProcSummary& ps = analyzer.procSummary(p->procedures[0]);
  EXPECT_TRUE(ps.mod.empty());
  EXPECT_TRUE(ps.ue.empty());
}

TEST(RobustnessTest, DeepNesting) {
  // Five nested loops with a shared work vector: the analysis must not blow
  // up and the innermost privatization pattern must still resolve.
  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      subroutine s(a, c, n)
      real a(100), c(100)
      integer n
      do i1 = 1, n
        do i2 = 1, n
          do i3 = 1, n
            do i4 = 1, n
              do j = 1, n
                a(j) = i1 + i2 + i3 + i4
              enddo
              do j = 1, n
                c(i4) = c(i4) + a(j)
              enddo
            enddo
          enddo
        enddo
      enddo
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  LoopParallelizer lp(analyzer);
  auto loops = lp.analyzeProgram();
  ASSERT_EQ(loops.size(), 6u);
  // The i4 loop privatizes `a`.
  bool found = false;
  for (const LoopAnalysis& la : loops) {
    if (la.loop->doVar != "i4") continue;
    for (const ArrayPrivatization& ap : la.arrays)
      if (ap.name == "a") found = ap.privatizable;
  }
  EXPECT_TRUE(found);
}

TEST(RobustnessTest, LongCallChain) {
  // Summaries must compose down an 8-deep call chain.
  std::string src = "program p\n real a(50)\n call f1(a)\n end\n";
  for (int k = 1; k <= 8; ++k) {
    src += "subroutine f" + std::to_string(k) + "(b)\n real b(50)\n";
    if (k < 8)
      src += " call f" + std::to_string(k + 1) + "(b)\n";
    else
      src += " do j = 1, 9\n  b(j) = j\n enddo\n";
    src += " end\n";
  }
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  const ProcSummary& ps = analyzer.procSummary(p->procedures[0]);
  ArrayId a = *sr->procs.at("p").arrayId("a");
  auto mod = ps.modAll.enumerate(a, {});
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->size(), 9u);
}

// --------------------------------------------------------------- printing

TEST(RobustnessTest, PrintingNeverCrashes) {
  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      subroutine s(a, n, flag)
      real a(100)
      integer n
      logical flag
      do i = 1, n
        if (flag .and. i .lt. n / 2 + mod(n, 3)) then
          a(i) = -a(i + 1) ** 2
        endif
      enddo
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  std::string printed = toString(*p);
  EXPECT_NE(printed.find("subroutine s"), std::string::npos);
  // Round-trip: the printed program re-parses.
  DiagnosticEngine diags2;
  auto p2 = parseProgram(printed, diags2);
  EXPECT_TRUE(p2.has_value()) << diags2.str() << "\n" << printed;
}

TEST(RobustnessTest, GarListRendering) {
  SymbolTable tab;
  ArrayTable arrays;
  SymExpr one = SymExpr::constant(1);
  ArrayId a = arrays.intern("buf", {SymRange{one, SymExpr::constant(64), one}});
  GarList list;
  EXPECT_EQ(list.str(tab, arrays), "{}");
  list.add(Gar::omega(a, 1));
  EXPECT_NE(list.str(tab, arrays).find("buf(?)"), std::string::npos);
  VarId n = tab.intern("n");
  list.add(Gar::make(Pred::atom(Atom::le(SymExpr::variable(n), SymExpr::constant(9))),
                     Region{a, {SymRange{one, SymExpr::variable(n), one}}}));
  std::string s = list.str(tab, arrays);
  EXPECT_NE(s.find(" U "), std::string::npos);
  EXPECT_NE(s.find("buf(1:n)"), std::string::npos);
}

// ----------------------------------------------------------------- limits

TEST(RobustnessTest, ManyDistinctWritesStayBounded) {
  // 24 separate single-element writes: the union must merge into one range
  // and list sizes must stay far below the blow-up valves.
  std::string src = "subroutine s(a)\n real a(100)\n";
  for (int k = 1; k <= 24; ++k) src += " a(" + std::to_string(k) + ") = " + std::to_string(k) + "\n";
  src += " end\n";
  DiagnosticEngine diags;
  auto p = parseProgram(src, diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  const ProcSummary& ps = analyzer.procSummary(p->procedures[0]);
  EXPECT_EQ(ps.mod.size(), 1u);  // merged to a(1:24)
  auto mod = ps.mod.enumerate(*sr->procs.at("s").arrayId("a"), {});
  ASSERT_TRUE(mod.has_value());
  EXPECT_EQ(mod->size(), 24u);
}

TEST(RobustnessTest, PredicateBlowupDegradesToDelta) {
  // OR-ing many two-atom predicates overflows the CNF valve: the result
  // must become Δ (never False, never a wrong answer).
  SymbolTable tab;
  SymExpr x = SymExpr::variable(tab.intern("x"));
  Pred big = Pred::makeFalse();
  for (int k = 0; k < 12; ++k) {
    Pred piece = Pred::atom(Atom::ge(x, SymExpr::constant(10 * k))) &&
                 Pred::atom(Atom::le(x, SymExpr::constant(10 * k + 5)));
    big = big || piece;
  }
  EXPECT_TRUE(big.isUnknown() || !big.clauses().empty());
  EXPECT_FALSE(big.isFalse());
  EXPECT_TRUE(big.mayHold());
}

TEST(RobustnessTest, InterpreterStepBudgetOnPathologicalGoto) {
  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      program p
      integer x
 10   x = x + 1
      goto 10
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Interpreter interp(*p, *sr);
  Interpreter::Config cfg;
  cfg.maxSteps = 10'000;
  auto res = interp.run(cfg);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("step limit"), std::string::npos);
}

TEST(RobustnessTest, CondensedCycleAnalyzesConservatively) {
  // The backward-GOTO cycle condenses; the analysis must still terminate
  // and must NOT claim exact knowledge of the written region.
  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      subroutine s(a, n)
      real a(100)
      integer n, k
      k = 1
 10   a(k) = k
      k = k + 1
      if (k .le. n) goto 10
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value());
  auto sr = analyze(*p, diags);
  ASSERT_TRUE(sr.has_value());
  Hsg hsg = buildHsg(*p, *sr, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  SummaryAnalyzer analyzer(*p, *sr, hsg, {});
  const ProcSummary& ps = analyzer.procSummary(p->procedures[0]);
  ArrayId a = *sr->procs.at("s").arrayId("a");
  GarList mods = ps.mod.forArray(a);
  ASSERT_FALSE(mods.empty());
  for (const Gar& g : mods.gars()) EXPECT_FALSE(g.isExact());
}

}  // namespace
}  // namespace panorama
