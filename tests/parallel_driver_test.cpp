// Determinism guarantees of the parallel analysis driver and the query
// memo cache:
//   * an 8-thread corpus run produces results identical to the 1-thread
//     (serial, pre-driver) run;
//   * memoized verdicts equal cold (cache-disabled) verdicts no matter in
//     which order the queries arrive;
//   * a tiny cache capacity — constant eviction — never changes a verdict
//     (eviction only forgets).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "panorama/analysis/driver.h"
#include "panorama/frontend/parser.h"
#include "panorama/predicate/arena.h"
#include "panorama/predicate/predicate.h"
#include "panorama/support/memo_cache.h"
#include "panorama/symbolic/arena.h"
#include "panorama/symbolic/constraint.h"

namespace panorama {
namespace {

/// Restores the global cache to its default configuration when a test ends,
/// so test order never matters.
struct CacheGuard {
  ~CacheGuard() { QueryCache::global().configure(QueryCache::kDefaultCapacity); }
};

std::string renderCorpus(const CorpusAnalysisResult& r) {
  std::ostringstream os;
  for (const CorpusRoutineResult& loop : r.loops) {
    os << loop.kernelId << " | " << loop.procName << " | line " << loop.line << " | "
       << toString(loop.classification) << '\n'
       << loop.report << '\n';
  }
  return os.str();
}

TEST(ParallelDriverTest, EveryThreadCountIdenticalToOneThread) {
  CacheGuard guard;
  AnalysisOptions serial;
  serial.numThreads = 1;
  CorpusAnalysisResult one = analyzeCorpusParallel(serial);
  ASSERT_FALSE(one.loops.empty());
  EXPECT_EQ(one.threadsUsed, 1u);
  std::string golden = renderCorpus(one);

  for (std::size_t threads : {2u, 4u, 8u}) {
    AnalysisOptions parallel;
    parallel.numThreads = threads;
    CorpusAnalysisResult run = analyzeCorpusParallel(parallel);
    ASSERT_EQ(one.loops.size(), run.loops.size()) << threads << " threads";
    // Byte-identical per-loop reports: classification, privatization
    // verdicts, reasons, scalar classes — everything the report renders.
    EXPECT_EQ(golden, renderCorpus(run)) << threads << " threads";
    EXPECT_EQ(run.threadsUsed, threads);
  }
}

TEST(ParallelDriverTest, QuantifiedKernelsParallelizeIdentically) {
  // PR-1 serialized quantified kernels because the ψ dimension slots were
  // process-global; with ψ threaded per analyzer the kernels overlap
  // freely and the reports must not move.
  CacheGuard guard;
  AnalysisOptions serial;
  serial.quantified = true;
  serial.numThreads = 1;
  CorpusAnalysisResult one = analyzeCorpusParallel(serial);
  ASSERT_FALSE(one.loops.empty());

  AnalysisOptions parallel;
  parallel.quantified = true;
  parallel.numThreads = 8;
  CorpusAnalysisResult eight = analyzeCorpusParallel(parallel);
  EXPECT_EQ(renderCorpus(one), renderCorpus(eight));
}

TEST(ParallelDriverTest, CacheDisabledIdenticalToDefault) {
  CacheGuard guard;
  AnalysisOptions cold;
  cold.numThreads = 1;
  cold.cacheCapacity = 0;
  CorpusAnalysisResult uncached = analyzeCorpusParallel(cold);
  EXPECT_EQ(uncached.cacheStats.hits, 0u);
  EXPECT_EQ(uncached.cacheStats.entries, 0u);

  AnalysisOptions warm;
  warm.numThreads = 1;
  CorpusAnalysisResult cached = analyzeCorpusParallel(warm);
  EXPECT_GT(cached.cacheStats.hits, 0u);

  EXPECT_EQ(renderCorpus(uncached), renderCorpus(cached));
}

/// A deterministic batch of small constraint systems plus implication
/// queries exercising every cache tag.
struct QueryBatch {
  std::vector<ConstraintSet> systems;
  std::vector<std::pair<Pred, Pred>> implications;

  static QueryBatch make() {
    QueryBatch b;
    std::mt19937 rng(20260806);
    std::uniform_int_distribution<int> coeff(-3, 3);
    std::uniform_int_distribution<int> constant(-8, 8);
    std::uniform_int_distribution<int> kindPick(0, 5);
    std::uniform_int_distribution<int> countPick(1, 4);
    SymExpr x = SymExpr::variable(VarId{1});
    SymExpr y = SymExpr::variable(VarId{2});
    SymExpr z = SymExpr::variable(VarId{3});
    auto randExpr = [&] {
      return x * SymExpr::constant(coeff(rng)) + y * SymExpr::constant(coeff(rng)) +
             z * SymExpr::constant(coeff(rng)) + SymExpr::constant(constant(rng));
    };
    for (int k = 0; k < 120; ++k) {
      ConstraintSet cs;
      int n = countPick(rng);
      for (int c = 0; c < n; ++c) {
        int kind = kindPick(rng);
        if (kind <= 3)
          cs.addExprLE0(randExpr());
        else if (kind == 4)
          cs.addExprEQ0(randExpr());
        else
          cs.addExprNE0(randExpr());
      }
      b.systems.push_back(std::move(cs));
    }
    auto randPred = [&] {
      Pred p = Pred::atom(Atom::le(randExpr(), randExpr()));
      if (kindPick(rng) >= 3) p = p && Pred::atom(Atom::le(randExpr(), randExpr()));
      if (kindPick(rng) >= 4) p = p || Pred::atom(Atom::eq(randExpr(), randExpr()));
      return p;
    };
    for (int k = 0; k < 120; ++k) b.implications.emplace_back(randPred(), randPred());
    // Duplicate a slice so re-asked queries actually hit the cache.
    for (int k = 0; k < 40; ++k) {
      b.systems.push_back(b.systems[static_cast<std::size_t>(k) * 2]);
      b.implications.push_back(b.implications[static_cast<std::size_t>(k) * 2]);
    }
    return b;
  }

  /// Evaluates every query in the order given by `perm` (indices into the
  /// combined query list) and returns verdicts at the queries' own indices,
  /// so results from different evaluation orders are directly comparable.
  std::vector<Truth> evaluate(const std::vector<std::size_t>& perm) const {
    std::vector<Truth> verdicts(systems.size() + implications.size(), Truth::Unknown);
    for (std::size_t q : perm) {
      if (q < systems.size())
        verdicts[q] = systems[q].contradictory();
      else {
        const auto& [hyp, goal] = implications[q - systems.size()];
        verdicts[q] = hyp.implies(goal, SimplifyOptions{});
      }
    }
    return verdicts;
  }

  std::vector<std::size_t> identityOrder() const {
    std::vector<std::size_t> perm(systems.size() + implications.size());
    for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = k;
    return perm;
  }
};

TEST(ParallelDriverTest, CachedVerdictsMatchColdAcrossRandomizedOrders) {
  CacheGuard guard;
  QueryBatch batch = QueryBatch::make();
  std::vector<std::size_t> order = batch.identityOrder();

  // Cold reference: cache disabled, every query answered from scratch.
  QueryCache::global().configure(0);
  std::vector<Truth> cold = batch.evaluate(order);

  std::mt19937 rng(7);
  for (int round = 0; round < 5; ++round) {
    QueryCache::global().configure(QueryCache::kDefaultCapacity);
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<Truth> warm = batch.evaluate(order);
    EXPECT_EQ(cold, warm) << "round " << round;
    EXPECT_GT(QueryCache::global().stats().hits, 0u) << "round " << round;
  }
}

TEST(ParallelDriverTest, TinyCapacityEvictionNeverChangesVerdicts) {
  CacheGuard guard;
  QueryBatch batch = QueryBatch::make();
  std::vector<std::size_t> order = batch.identityOrder();

  QueryCache::global().configure(0);
  std::vector<Truth> cold = batch.evaluate(order);

  // 16 entries over 16 shards: at most one resident entry per shard, so
  // almost every store evicts. Verdicts must not move.
  QueryCache::global().configure(16);
  std::vector<Truth> tiny = batch.evaluate(order);
  EXPECT_EQ(cold, tiny);
  QueryCache::Stats stats = QueryCache::global().stats();
  EXPECT_GT(stats.evictions, 0u);

  // Second pass over a thrashing cache (mostly misses) — still identical.
  std::vector<Truth> again = batch.evaluate(order);
  EXPECT_EQ(cold, again);
}

TEST(ParallelDriverTest, CachedContradictoryMatchesUncachedTwin) {
  CacheGuard guard;
  QueryBatch batch = QueryBatch::make();
  QueryCache::global().configure(QueryCache::kDefaultCapacity);
  for (const ConstraintSet& cs : batch.systems) {
    EXPECT_EQ(cs.contradictory(), cs.contradictoryUncached());
    // Ask twice: the second answer is the memoized one.
    EXPECT_EQ(cs.contradictory(), cs.contradictoryUncached());
  }
}

TEST(ParallelDriverTest, ConcurrentInterningYieldsOneNodePerValue) {
  // Hash-consing under contention: eight threads race to build the same
  // deterministic value stream (plus a thread-private prefix so insertions
  // interleave with lookups). Every thread must observe the identical node
  // ids — one node per value, no torn publications. The TSan CI job runs
  // this binary, so any locking mistake in the arenas surfaces here.
  constexpr int kThreads = 8;
  constexpr int kValues = 2000;
  std::vector<std::vector<std::uint64_t>> exprIds(kThreads);
  std::vector<std::vector<std::uint64_t>> predIds(kThreads);

  auto worker = [&](int t) {
    std::mt19937 rng(20260806);  // same seed: same value stream everywhere
    std::uniform_int_distribution<int> c(-40, 40);
    std::uniform_int_distribution<int> var(1, 6);
    // Thread-private warmup desynchronizes the shards' insertion order.
    for (int k = 0; k < 64; ++k)
      (void)(SymExpr::variable(VarId{static_cast<std::uint32_t>(var(rng))}) +
             SymExpr::constant(c(rng) * 1000 + t));
    for (int k = 0; k < kValues; ++k) {
      SymExpr x = SymExpr::variable(VarId{static_cast<std::uint32_t>(var(rng))});
      SymExpr y = SymExpr::variable(VarId{static_cast<std::uint32_t>(var(rng))});
      SymExpr e = x * SymExpr::constant(c(rng)) + y + SymExpr::constant(c(rng));
      exprIds[t].push_back(e.id());
      Pred p = Pred::atom(Atom::le(e, y)) && Pred::atom(Atom::ne(x, SymExpr::constant(c(rng))));
      predIds[t].push_back(p.id());
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) pool.emplace_back(worker, t);
  for (std::thread& th : pool) th.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(exprIds[0], exprIds[t]) << "thread " << t;
    EXPECT_EQ(predIds[0], predIds[t]) << "thread " << t;
  }
  // Occupancy stayed sane (stats take the shard locks — also TSan-checked).
  EXPECT_GT(ExprArena::global().stats().distinct, 0u);
  EXPECT_GT(PredArena::global().stats().distinct, 0u);
}

TEST(ParallelDriverTest, CallGraphWavesRespectCallDepth) {
  // Waves from a real corpus kernel: each procedure's callees must sit in
  // strictly earlier waves.
  AnalysisOptions serial;
  serial.numThreads = 1;
  CorpusAnalysisResult run = analyzeCorpusParallel(serial);
  ASSERT_FALSE(run.loops.empty());  // driver smoke check alongside the units

  DiagnosticEngine diags;
  auto p = parseProgram(R"(
      subroutine leaf(a, n)
      real a(100)
      integer n, i
      do i = 1, n
        a(i) = 0.0
      end do
      end

      subroutine mid(a, n)
      real a(100)
      integer n
      call leaf(a, n)
      end

      program top
      real a(100)
      integer n
      n = 10
      call leaf(a, n)
      call mid(a, n)
      end
  )",
                        diags);
  ASSERT_TRUE(p.has_value()) << diags.str();
  auto sema = analyze(*p, diags);
  ASSERT_TRUE(sema.has_value()) << diags.str();

  auto waves = callGraphWaves(*sema);
  ASSERT_EQ(waves.size(), 3u);
  ASSERT_EQ(waves[0].size(), 1u);
  EXPECT_EQ(waves[0][0]->name, "leaf");
  ASSERT_EQ(waves[1].size(), 1u);
  EXPECT_EQ(waves[1][0]->name, "mid");
  ASSERT_EQ(waves[2].size(), 1u);
  EXPECT_EQ(waves[2][0]->name, "top");
}

}  // namespace
}  // namespace panorama
