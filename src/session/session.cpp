// AnalysisSession::submit — the incremental re-analysis pipeline.
//
// The submit flow is ordered so that every step that can fail (parse,
// sema, HSG structure checks) runs against the *incoming* program before
// any session state is touched; once the splice starts, the remaining
// steps operate on content that already validated and cannot fail.
//
//   1. parse + fingerprint (pre-sema AST, SourceLoc-blind; per-item detail)
//   2. validation sema over copies of the persistent tables; validation
//      HSG builds for every procedure whose fingerprint changed
//   3. diff into {unchanged, modified, added, removed}
//   4. reuse decision: prune the optimistic clean set to a fixpoint over
//      the summary dependency graph (callee dirty ⇒ caller dirty); then
//      patch SourceLocs of fingerprint-unchanged procedures from the
//      incoming parse and move their cached line citations, and match the
//      dirty procedures' items for loop-granular reuse (DESIGN.md §4.9)
//   5. snapshot clean units — and the matched items' loop summaries —
//      out of the previous analyzer, drop it
//   6. splice: unchanged procedures carry their previous AST objects into
//      the next Program (heap statements stay put), dirty ones take the
//      incoming AST
//   7. real sema against the persistent tables (append-only ⇒ stable ids)
//   8. HSG: move + proc-pointer fixup for clean graphs, adopt the
//      freshly built graphs for dirty procedures
//   9. fresh analyzer seeded with the clean snapshots and the matched
//      items' loop summaries; call-graph waves (seeded procedures return
//      from the memo instantly, seeded loops skip re-expansion)
//  10. loop fan-out over dirty procedures' *unmatched* loops only; every
//      other loop report comes from the unit cache
//  11. unit table update + stats/metrics
#include "panorama/session/session.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "panorama/analysis/driver.h"
#include "panorama/frontend/parser.h"
#include "panorama/obs/metrics.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/fm_incremental.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

namespace {

/// DO statements of a procedure, outermost first, in the pre-order walk the
/// batch drivers report loops in.
std::vector<const Stmt*> collectLoops(const Procedure& proc) {
  std::vector<const Stmt*> out;
  std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& body) {
    for (const StmtPtr& s : body) {
      if (s->kind == Stmt::Kind::Do) out.push_back(s.get());
      walk(s->thenBody);
      walk(s->elseBody);
      walk(s->body);
    }
  };
  walk(proc.body);
  return out;
}

/// DO statements of one top-level body statement, same pre-order. The flat
/// collectLoops order is exactly the per-item lists concatenated in body
/// order, which is what lets Unit::loops partition into item ranges.
std::vector<const Stmt*> collectItemLoops(const Stmt& item) {
  std::vector<const Stmt*> out;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::Do) out.push_back(&s);
    for (const StmtPtr& c : s.thenBody) walk(*c);
    for (const StmtPtr& c : s.elseBody) walk(*c);
    for (const StmtPtr& c : s.body) walk(*c);
  };
  walk(item);
  return out;
}

}  // namespace

AnalysisSession::AnalysisSession(AnalysisOptions options) : options_(options) {
  optionsKey_ = optionsKey(options_);
  QueryCache::global().configure(options_.cacheCapacity);
  setQueryTierEnabled(options_.prefilter);
  ownedPool_ = std::make_unique<ThreadPool>(options_.numThreads);
  pool_ = ownedPool_.get();
}

AnalysisSession::AnalysisSession(AnalysisOptions options, ThreadPool* sharedPool)
    : options_(options) {
  optionsKey_ = optionsKey(options_);
  QueryCache::global().configure(options_.cacheCapacity);
  setQueryTierEnabled(options_.prefilter);
  pool_ = sharedPool;
}

AnalysisSession::~AnalysisSession() = default;

std::uint64_t AnalysisSession::optionsKey(const AnalysisOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(options.symbolicAnalysis);
  mix(options.ifConditions);
  mix(options.interprocedural);
  mix(options.quantified);
  mix(options.computeDE);
  mix(options.garSimplifier);
  mix(options.prefilter);
  mix(options.simplify.maxClauses);
  mix(options.simplify.maxAtomsPerClause);
  mix(options.simplify.useFourierMotzkin);
  mix(options.simplify.fmBudget.maxConstraints);
  mix(options.simplify.fmBudget.maxVariables);
  // numThreads, cacheCapacity, and loopGranularReuse are execution options:
  // the driver guarantees identical results across all of them.
  return h;
}

void AnalysisSession::setOptions(const AnalysisOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = optionsKey(options);
  const bool threadsChanged = options.numThreads != options_.numThreads;
  const bool capacityChanged = options.cacheCapacity != options_.cacheCapacity;
  const bool ablationChanged = key != optionsKey_;
  options_ = options;
  optionsKey_ = key;
  // With a shared pool the daemon owns concurrency; numThreads is advisory.
  if (threadsChanged && ownedPool_) {
    ownedPool_ = std::make_unique<ThreadPool>(options_.numThreads);
    pool_ = ownedPool_.get();
  }
  if (capacityChanged) QueryCache::global().configure(options_.cacheCapacity);
  setQueryTierEnabled(options_.prefilter);
  if (ablationChanged) {
    // Cached verdicts were answered under the old budgets: one epoch bump
    // retires every entry of the query cache, the simplify memo, and the FM
    // elimination cache (all tagged with the same epoch) in O(1).
    QueryCache::global().bumpEpoch();
    // units_ carries unitsOptionsKey_; the mismatch with optionsKey_ makes
    // the next submit a full invalidation.
  }
}

void AnalysisSession::resetState() {
  analyzer_.reset();
  units_.clear();
  pendingSnapshots_.clear();
  program_ = Program{};
  sema_ = SemaResult{};
  hsg_ = Hsg{};
  live_ = false;
  hasSourceHash_ = false;
}

std::uint64_t AnalysisSession::summaryEpochOf(const std::string& name) const {
  auto it = units_.find(name);
  return it == units_.end() ? 0 : it->second.summaryEpoch;
}

void AnalysisSession::publishStatusLocked() {
  statusEpoch_.store(epoch_, std::memory_order_relaxed);
  statusUnits_.store(units_.size(), std::memory_order_relaxed);
  statusLive_.store(live_, std::memory_order_relaxed);
  statusFileSkips_.store(fileSkips_, std::memory_order_relaxed);
}

AnalysisSession::Status AnalysisSession::status() const {
  Status s;
  s.epoch = statusEpoch_.load(std::memory_order_relaxed);
  s.units = statusUnits_.load(std::memory_order_relaxed);
  s.live = statusLive_.load(std::memory_order_relaxed);
  s.fileSkips = statusFileSkips_.load(std::memory_order_relaxed);
  return s;
}

std::string AnalysisSession::composeLoopReport(const CachedLoop& cl) {
  // An empty doVar marks an unsplittable cached report (v1 snapshot whose
  // header did not parse); the tail then carries the full original string.
  if (cl.doVar.empty()) return cl.reportTail;
  return cl.procName + ": DO " + cl.doVar + " (line " + std::to_string(cl.line) +
         "): " + cl.reportTail;
}

AnalysisSession::CachedLoop AnalysisSession::cacheLoopAnalysis(const LoopAnalysis& la) {
  CachedLoop cl;
  cl.line = la.line;
  cl.classification = la.classification;
  cl.procName = la.procName;
  cl.doVar = la.loop ? la.loop->doVar : "?";
  std::string report = formatLoopAnalysis(la);
  const std::string prefix =
      cl.procName + ": DO " + cl.doVar + " (line " + std::to_string(cl.line) + "): ";
  if (report.starts_with(prefix)) {
    cl.reportTail = report.substr(prefix.size());
  } else {  // unreachable with the current report layer; keep the full text
    cl.doVar.clear();
    cl.reportTail = std::move(report);
  }
  cl.provenance = formatProvenance(la);
  return cl;
}

bool AnalysisSession::splitLoopReport(const std::string& report, CachedLoop& cl) {
  // v1 snapshots cached the composed string; recover (doVar, tail) from the
  // fixed header layout `proc: DO var (line N): tail`.
  const std::string doPrefix = cl.procName + ": DO ";
  if (!report.starts_with(doPrefix)) return false;
  const std::size_t varBegin = doPrefix.size();
  const std::size_t lineMark = report.find(" (line ", varBegin);
  if (lineMark == std::string::npos) return false;
  const std::size_t tailMark = report.find("): ", lineMark);
  if (tailMark == std::string::npos) return false;
  cl.doVar = report.substr(varBegin, lineMark - varBegin);
  cl.reportTail = report.substr(tailMark + 3);
  return !cl.doVar.empty();
}

SessionResult AnalysisSession::submit(const std::string& source) {
  std::lock_guard<std::mutex> lock(mutex_);

  // Whole-file fast path: a byte-identical resubmit under unchanged options
  // can only diff to "everything unchanged, dirty cone empty" — serve the
  // cached reports without parsing or per-procedure fingerprinting.
  const std::uint64_t sourceHash = store::fnv1a(source);
  if (live_ && hasSourceHash_ && sourceHash == lastSourceHash_ &&
      optionsKey_ == unitsOptionsKey_) {
    SessionResult out = fileSkipLocked();
    publishStatusLocked();
    return out;
  }

  // 1. Parse; all remaining steps are frontend-neutral.
  DiagnosticEngine pdiags;
  std::optional<Program> parsed = parseProgram(source, pdiags);
  if (!parsed) {
    SessionResult out;
    out.error = pdiags.str();
    return out;
  }
  SessionResult out = submitLocked(std::move(*parsed));
  if (out.ok) {
    lastSourceHash_ = sourceHash;
    hasSourceHash_ = true;
  }
  publishStatusLocked();
  return out;
}

SessionResult AnalysisSession::submit(Program program) {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionResult out = submitLocked(std::move(program));
  // A Program submit has no source text; the next text submit must take the
  // full diff path.
  if (out.ok) hasSourceHash_ = false;
  publishStatusLocked();
  return out;
}

SessionResult AnalysisSession::fileSkipLocked() {
  obs::Span span("session", "session.file_skip");
  ++fileSkips_;

  SessionResult out;
  SessionStats stats;
  stats.epoch = epoch_;
  stats.procedures = program_.procedures.size();
  stats.unchanged = stats.procedures;
  stats.summariesReused = stats.procedures;
  stats.unitsCleanLoops = stats.procedures;
  stats.fileSkips = fileSkips_;
  for (const Procedure* proc : sema_.bottomUpOrder) {
    const Unit& u = units_.at(proc->name);
    for (const CachedLoop& cl : u.loops) {
      SessionLoopResult r;
      r.procName = cl.procName;
      r.line = cl.line;
      r.classification = cl.classification;
      r.report = composeLoopReport(cl);
      r.provenance = cl.provenance;
      out.loops.push_back(std::move(r));
      ++stats.loopsReused;
    }
  }
  out.ok = true;
  out.stats = stats;
  lastStats_ = stats;
  publishSessionMetrics(stats);
  if (span.active()) {
    span.arg("epoch", std::to_string(stats.epoch));
    span.arg("skips", std::to_string(fileSkips_));
  }
  return out;
}

SessionResult AnalysisSession::submitLocked(Program incoming) {
  obs::Span span("session", "session.reanalyze");
  SessionResult out;

  // 1. Fingerprint before sema touches the AST (sema reclassifies intrinsic
  // refs in place; fingerprints must be comparable across submits). The
  // detail carries the per-item hashes loop-granular reuse matches on.
  std::map<std::string, ProcFingerprintDetail> fps;
  for (const Procedure& p : incoming.procedures) fps[p.name] = fingerprintProcedureDetail(p);

  // 2. Validation sema on the incoming program against *copies* of the
  // persistent tables. A failure here (or below) leaves the session state
  // untouched; success guarantees the post-splice sema on equivalent
  // content succeeds too.
  {
    DiagnosticEngine vdiags;
    SymbolTable symCopy = live_ ? sema_.symbols : SymbolTable{};
    ArrayTable arrCopy = live_ ? sema_.arrays : ArrayTable{};
    if (!analyze(incoming, vdiags, std::move(symCopy), std::move(arrCopy))) {
      out.error = vdiags.str();
      return out;
    }
  }

  const bool fullInvalidation = !live_ || optionsKey_ != unitsOptionsKey_;
  const std::uint64_t newEpoch = epoch_ + 1;

  SessionStats stats;
  stats.epoch = newEpoch;
  stats.fullInvalidation = fullInvalidation;
  stats.procedures = incoming.procedures.size();

  // 3. Diff against the previous epoch's units.
  std::set<std::string> unchangedSet;
  for (const Procedure& p : incoming.procedures) {
    auto it = units_.find(p.name);
    if (it == units_.end()) {
      ++stats.added;
    } else if (it->second.fp != fps.at(p.name).whole) {
      ++stats.modified;
    } else {
      ++stats.unchanged;
      unchangedSet.insert(p.name);
    }
  }
  for (const auto& [name, unit] : units_) {
    (void)unit;
    if (!incoming.findProcedure(name)) ++stats.removed;
  }

  // Structural HSG validation for every procedure that will be rebuilt.
  // Built from the incoming AST, so the graphs stay valid after the splice
  // moves those procedures into program_ (heap statements do not move).
  std::map<std::string, ProcedureHsg> freshHsgs;
  {
    DiagnosticEngine hdiags;
    for (const Procedure& p : incoming.procedures)
      if (!unchangedSet.count(p.name)) freshHsgs.emplace(p.name, buildProcedureHsg(p, hdiags));
    if (hdiags.hasErrors()) {
      out.error = hdiags.str();
      return out;
    }
  }

  // 4. Reuse decision. Start optimistic (every fingerprint-unchanged unit)
  // and prune to a fixpoint: a unit stays clean only while every callee it
  // folded in at SUM_call is itself clean at the recorded summary epoch.
  std::set<std::string> clean;
  std::map<std::string, std::string> pruneDetail;  ///< fixpoint-pruned unit -> why
  if (!fullInvalidation) {
    clean = unchangedSet;
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = clean.begin(); it != clean.end();) {
        const Unit& u = units_.at(*it);
        bool valid = true;
        std::string why;
        for (const std::string& dep : u.deps) {
          auto du = units_.find(dep);
          auto de = u.calleeEpochs.find(dep);
          if (du == units_.end()) {
            why = "callee '" + dep + "' left the unit table";
          } else if (!clean.count(dep)) {
            why = "callee '" + dep + "' is dirty";
          } else if (de == u.calleeEpochs.end() || du->second.summaryEpoch != de->second) {
            why = "callee '" + dep + "' summary epoch changed";
          } else {
            continue;
          }
          valid = false;
          break;
        }
        if (valid) {
          ++it;
        } else {
          pruneDetail.emplace(*it, std::move(why));
          it = clean.erase(it);
          changed = true;
        }
      }
    }
  }
  stats.dirty = incoming.procedures.size() - clean.size();
  stats.summariesReused = clean.size();
  stats.summariesRecomputed = stats.dirty;

  // 4a. Line remap (DESIGN.md §4.9): a fingerprint-unchanged procedure keeps
  // its previous AST, but an edit elsewhere in the file may have shifted its
  // text. Patch the kept AST's SourceLocs from the incoming parse in
  // lockstep and move the cached loop citations with them, so clean units
  // report post-edit positions without forfeiting any Stmt-keyed reuse.
  // (A lockstep mismatch is only possible on a fingerprint collision; the
  // unit then simply keeps its previous positions.)
  if (!fullInvalidation) {
    for (const Procedure& p : incoming.procedures) {
      if (!unchangedSet.count(p.name)) continue;
      Procedure* prev = const_cast<Procedure*>(program_.findProcedure(p.name));
      if (!prev || !remapSourceLocs(*prev, p)) continue;
      Unit& u = units_.at(p.name);
      std::vector<const Stmt*> loops = collectLoops(*prev);
      if (loops.size() != u.loops.size()) continue;  // defensive; never with our own caches
      for (std::size_t k = 0; k < loops.size(); ++k) {
        const int line = static_cast<int>(loops[k]->loc.line);
        if (line == u.loops[k].line) continue;
        stats.loopReuse.push_back({p.name, line, "line-remap",
                                   "clean unit text shifted; line " +
                                       std::to_string(u.loops[k].line) + " -> " +
                                       std::to_string(line)});
        u.loops[k].line = line;
        ++stats.lineRemaps;
      }
    }
  }

  // 4b. Loop-granular reuse (the §4.9 tentpole): match each dirty unit's
  // top-level statements against its previous epoch's item records. An item
  // is served from cache when (a) the declaration frame is unchanged, (b)
  // its subtree hash and suffix hash match (the suffix feeds ueAfter, the
  // copy-out/live-out probe), (c) under options.quantified the immediately
  // preceding item matches too (the §5.2 counter idiom reads it), and (d)
  // every callee summary epoch its verdicts read is unchanged. Matching is
  // greedy in-order; the callee epochs an item may read are validated
  // against the epochs callees will hold *after* this submit.
  struct ItemMatch {
    std::size_t oldIdx;
    std::size_t newIdx;
  };
  std::map<std::string, std::vector<ItemMatch>> matchedByProc;
  std::set<std::string> incomingNames;
  for (const Procedure& p : incoming.procedures) incomingNames.insert(p.name);
  auto postEpochOf = [&](const std::string& name) -> std::uint64_t {
    if (clean.count(name)) return units_.at(name).summaryEpoch;
    return incomingNames.count(name) ? newEpoch : 0;
  };
  if (!fullInvalidation && options_.loopGranularReuse) {
    for (const Procedure& p : incoming.procedures) {
      if (clean.count(p.name)) continue;
      auto uit = units_.find(p.name);
      if (uit == units_.end()) continue;  // added: nothing to reuse
      const Unit& old = uit->second;
      const ProcFingerprintDetail& nd = fps.at(p.name);
      if (old.items.empty() || old.frameFp != nd.frame) continue;
      std::vector<ItemMatch> matches;
      std::size_t cursor = 0;
      for (std::size_t j = 0; j < nd.items.size(); ++j) {
        const ItemFingerprint& ni = nd.items[j];
        if (!ni.hasLoop) continue;  // only loop-bearing items carry cached verdicts
        for (std::size_t k = cursor; k < old.items.size(); ++k) {
          const ItemRecord& oi = old.items[k];
          if (oi.hash != ni.hash || oi.suffixHash != ni.suffixHash || !oi.hasLoop) continue;
          if (options_.quantified && oi.precedingHash != ni.precedingHash) continue;
          bool epochsValid = true;
          for (const auto& [callee, epoch] : oi.calleeEpochs)
            if (postEpochOf(callee) != epoch) {
              epochsValid = false;
              break;
            }
          if (!epochsValid) break;  // same callees for any later copy too
          matches.push_back({k, j});
          cursor = k + 1;
          break;
        }
      }
      if (!matches.empty()) matchedByProc.emplace(p.name, std::move(matches));
    }
  }

  // Attribute every dirty unit to its invalidation cause — the record the
  // cost profiler surfaces for warm runs.
  if (fullInvalidation) {
    const char* cause = !live_ ? "first-submit" : "options-change";
    const char* detail =
        !live_ ? "no prior session state" : "ablation-relevant analysis options changed";
    for (const Procedure& p : incoming.procedures)
      stats.invalidations.push_back({p.name, cause, detail});
  } else {
    for (const Procedure& p : incoming.procedures) {
      if (clean.count(p.name)) continue;
      auto it = units_.find(p.name);
      if (it == units_.end()) {
        stats.invalidations.push_back({p.name, "added", "no unit on record"});
      } else if (it->second.fp != fps.at(p.name).whole) {
        stats.invalidations.push_back({p.name, "fingerprint", "content fingerprint changed"});
      } else {
        auto pd = pruneDetail.find(p.name);
        stats.invalidations.push_back(
            {p.name, "callee-epoch", pd == pruneDetail.end() ? std::string() : pd->second});
      }
    }
  }

  // 5. Snapshot the clean units' memoized state — and the matched units'
  // loop summaries — out of the previous analyzer while its keys are still
  // the previous epoch's objects; the analyzer references
  // program_/sema_/hsg_ and must be gone before they are replaced.
  std::map<std::string, SummaryAnalyzer::ProcSnapshot> snapshots;
  std::map<std::string, SummaryAnalyzer::ProcSnapshot> partialSnaps;
  if (analyzer_) {
    for (const std::string& name : clean)
      if (const Procedure* prev = program_.findProcedure(name))
        snapshots.emplace(name, analyzer_->snapshotProcedure(*prev));
    for (const auto& [name, matches] : matchedByProc) {
      (void)matches;
      if (const Procedure* prev = program_.findProcedure(name))
        partialSnaps.emplace(name, analyzer_->snapshotProcedure(*prev));
    }
  } else {
    // A restored session has no analyzer yet; its snapshots were carried
    // from disk and wait in pendingSnapshots_ for exactly this seed step.
    for (const std::string& name : clean)
      if (auto it = pendingSnapshots_.find(name); it != pendingSnapshots_.end())
        snapshots.emplace(name, std::move(it->second));
    for (const auto& [name, matches] : matchedByProc) {
      (void)matches;
      if (auto it = pendingSnapshots_.find(name); it != pendingSnapshots_.end())
        partialSnaps.emplace(name, std::move(it->second));
    }
  }
  pendingSnapshots_.clear();
  analyzer_.reset();

  // 5a. Resolve the matched items against both epochs' ASTs while the
  // previous AST is still owned by program_: pair each matched item's DO
  // statements (pre-order) between the old and new subtree, carrying the
  // old loop summaries to seed and the cached reports to serve. A unit
  // whose fingerprint is unchanged (dirtied only through a callee epoch)
  // keeps its previous AST through the splice, so old and new statements
  // coincide there — and already carry remapped positions from step 4a.
  std::vector<std::pair<const Stmt*, LoopSummary>> loopSeeds;
  std::map<std::string, std::map<const Stmt*, CachedLoop>> reusedLoops;
  for (const auto& [name, matches] : matchedByProc) {
    const Procedure* oldProc = program_.findProcedure(name);
    const Procedure* newProc = incoming.findProcedure(name);
    if (!oldProc || !newProc) continue;
    const Unit& old = units_.at(name);
    const bool keepsOldAst = unchangedSet.count(name) != 0;
    std::map<const Stmt*, const LoopSummary*> oldSummaries;
    if (auto snap = partialSnaps.find(name); snap != partialSnaps.end())
      for (const auto& [stmt, ls] : snap->second.loops) oldSummaries.emplace(stmt, &ls);
    for (const ItemMatch& m : matches) {
      if (m.oldIdx >= oldProc->body.size()) continue;
      const ItemRecord& oi = old.items[m.oldIdx];
      std::vector<const Stmt*> oldDos = collectItemLoops(*oldProc->body[m.oldIdx]);
      std::vector<const Stmt*> newDos =
          keepsOldAst ? oldDos : collectItemLoops(*newProc->body[m.newIdx]);
      // Consistency guards (violable only via a fingerprint collision or a
      // foreign snapshot): the cached range and both subtrees must agree.
      if (oldDos.size() != newDos.size() || oi.loopCount != oldDos.size()) continue;
      if (oi.loopBegin + oi.loopCount > old.loops.size()) continue;
      for (std::size_t t = 0; t < oldDos.size(); ++t) {
        if (auto ls = oldSummaries.find(oldDos[t]); ls != oldSummaries.end())
          loopSeeds.emplace_back(newDos[t], *ls->second);
        CachedLoop cl = old.loops[oi.loopBegin + t];
        cl.line = static_cast<int>(newDos[t]->loc.line);
        reusedLoops[name].emplace(newDos[t], std::move(cl));
      }
    }
  }
  partialSnaps.clear();

  // 6. Splice. Order follows the incoming source; unchanged procedures
  // carry their previous AST (keeping Stmt-keyed caches valid), everything
  // else takes the incoming AST.
  {
    std::map<std::string, Procedure*> prev;
    for (Procedure& p : program_.procedures) prev.emplace(p.name, &p);
    Program next;
    next.procedures.reserve(incoming.procedures.size());
    for (Procedure& p : incoming.procedures) {
      auto it = unchangedSet.count(p.name) ? prev.find(p.name) : prev.end();
      next.procedures.push_back(std::move(it != prev.end() ? *it->second : p));
    }
    program_ = std::move(next);
  }

  // 7. Real sema against the persistent tables. Append-only interning keeps
  // every previously seen VarId/ArrayId stable, which is what lets GARs and
  // scalar sets cross epochs untouched. Validation already accepted this
  // content, so a failure here is an internal bug — drop to a cold state
  // rather than serve stale results.
  DiagnosticEngine rdiags;
  {
    SymbolTable symbols = live_ ? std::move(sema_.symbols) : SymbolTable{};
    ArrayTable arrays = live_ ? std::move(sema_.arrays) : ArrayTable{};
    std::optional<SemaResult> sr = analyze(program_, rdiags, std::move(symbols), std::move(arrays));
    if (!sr) {
      resetState();
      out.error = "internal error: post-splice sema failed\n" + rdiags.str();
      return out;
    }
    sema_ = std::move(*sr);
  }

  // 8. HSG: clean graphs move across (their nodes hold `const Stmt*` into
  // statements that survived the splice) with the owning-procedure pointer
  // rebound; dirty procedures adopt the validated fresh graphs.
  {
    Hsg next;
    for (Procedure& p : program_.procedures) {
      ProcedureHsg ph;
      if (auto fresh = freshHsgs.find(p.name); fresh != freshHsgs.end())
        ph = std::move(fresh->second);
      else if (auto old = hsg_.procs.find(p.name); old != hsg_.procs.end())
        ph = std::move(old->second);
      else
        ph = buildProcedureHsg(p, rdiags);  // unreachable; defensive
      ph.proc = &p;
      next.procs.emplace(p.name, std::move(ph));
    }
    hsg_ = std::move(next);
  }

  // 9. Fresh analyzer for this epoch, seeded with every clean snapshot
  // under the current epoch's procedure objects, plus the matched items'
  // loop summaries under the current epoch's DO statements (sumLoop serves
  // those from the memo instead of re-expanding the bodies).
  analyzer_ = std::make_unique<SummaryAnalyzer>(program_, sema_, hsg_, options_);
  for (auto& [name, snap] : snapshots)
    if (const Procedure* p = program_.findProcedure(name))
      analyzer_->seedProcedure(*p, std::move(snap));
  if (!loopSeeds.empty()) analyzer_->seedLoopSummaries(std::move(loopSeeds));

  // Call-graph waves: clean procedures return from the memo instantly, so
  // only the dirty cone does summary work — with every callee summary
  // already resident, exactly like a batch run.
  if (pool_->threadCount() <= 1) {
    for (const Procedure* p : sema_.bottomUpOrder) analyzer_->procSummary(*p);
  } else {
    std::size_t waveIdx = 0;
    for (const std::vector<const Procedure*>& wave : callGraphWaves(sema_)) {
      obs::Span wspan("summary", "summary.wave");
      if (wspan.active()) {
        wspan.arg("wave", std::to_string(waveIdx));
        wspan.arg("procs", std::to_string(wave.size()));
      }
      ++waveIdx;
      std::vector<std::function<void()>> tasks;
      tasks.reserve(wave.size());
      for (const Procedure* p : wave)
        tasks.push_back([this, p] { analyzer_->procSummary(*p); });
      pool_->runBatch(std::move(tasks));
    }
  }

  // 10. Loop fan-out over dirty procedures' unmatched loops only.
  struct WorkItem {
    const Stmt* loop = nullptr;
    const Procedure* proc = nullptr;
  };
  std::vector<WorkItem> items;
  for (const Procedure* proc : sema_.bottomUpOrder) {
    if (clean.count(proc->name)) continue;
    const auto reused = reusedLoops.find(proc->name);
    for (const Stmt* s : collectLoops(*proc)) {
      if (reused != reusedLoops.end() && reused->second.count(s)) continue;
      items.push_back({s, proc});
    }
  }

  LoopParallelizer parallelizer(*analyzer_);
  std::vector<LoopAnalysis> dirtyLoops(items.size());
  if (pool_->threadCount() <= 1 || items.size() <= 1) {
    for (std::size_t k = 0; k < items.size(); ++k)
      dirtyLoops[k] = parallelizer.analyzeLoop(*items[k].loop, *items[k].proc);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(items.size());
    for (std::size_t k = 0; k < items.size(); ++k)
      tasks.push_back([&parallelizer, &dirtyLoops, &items, k] {
        dirtyLoops[k] = parallelizer.analyzeLoop(*items[k].loop, *items[k].proc);
      });
    pool_->runBatch(std::move(tasks));
  }

  // 11. Rebuild the unit table: dirty units take this epoch, fresh deps
  // (SUM_call edges ∪ the items' resolved syntactic callees — seeded loops
  // skip SUM_call, so the syntactic set keeps clean-item dependencies on
  // record), and loop caches interleaving reused and fresh verdicts in walk
  // order; clean units keep everything. Item records are refreshed for
  // every unit from this submit's detail (incoming content ≡ kept content
  // for clean units), which also upgrades v1-restored units in place.
  std::map<const Stmt*, const LoopAnalysis*> freshByStmt;
  for (std::size_t k = 0; k < items.size(); ++k) freshByStmt.emplace(items[k].loop, &dirtyLoops[k]);
  std::map<std::string, std::set<std::string>> deps = analyzer_->callDependencies();

  std::map<std::string, Unit> nextUnits;
  for (const Procedure& p : program_.procedures) {
    const ProcFingerprintDetail& nd = fps.at(p.name);
    const bool isClean = clean.count(p.name) != 0;
    Unit u;
    u.fp = nd.whole;
    u.frameFp = nd.frame;
    std::size_t reusedHere = 0;
    std::size_t freshHere = 0;
    if (isClean) {
      Unit& prevUnit = units_.at(p.name);
      u.summaryEpoch = prevUnit.summaryEpoch;
      u.deps = std::move(prevUnit.deps);
      u.calleeEpochs = std::move(prevUnit.calleeEpochs);
      u.loops = std::move(prevUnit.loops);
    } else {
      u.summaryEpoch = newEpoch;
      if (auto d = deps.find(p.name); d != deps.end()) u.deps = std::move(d->second);
      const auto reused = reusedLoops.find(p.name);
      for (const StmtPtr& item : p.body) {
        for (const Stmt* s : collectItemLoops(*item)) {
          if (reused != reusedLoops.end()) {
            if (auto rl = reused->second.find(s); rl != reused->second.end()) {
              stats.loopReuse.push_back(
                  {p.name, rl->second.line, "item-match",
                   "statement, suffix, frame, and callee epochs unchanged"});
              u.loops.push_back(std::move(rl->second));
              ++reusedHere;
              continue;
            }
          }
          auto fresh = freshByStmt.find(s);
          if (fresh != freshByStmt.end()) {
            u.loops.push_back(cacheLoopAnalysis(*fresh->second));
            ++freshHere;
          }
        }
      }
    }
    // Item records for the next submit's matcher. Loop ranges partition the
    // flat walk-order cache; a mismatched total (possible only for a
    // truncated foreign snapshot) disables item reuse rather than misfile.
    u.items.resize(nd.items.size());
    std::size_t loopCursor = 0;
    bool ranges = true;
    for (std::size_t j = 0; j < nd.items.size(); ++j) {
      ItemRecord& rec = u.items[j];
      rec.hash = nd.items[j].hash;
      rec.suffixHash = nd.items[j].suffixHash;
      rec.precedingHash = nd.items[j].precedingHash;
      rec.hasLoop = nd.items[j].hasLoop;
      rec.loopBegin = static_cast<std::uint32_t>(loopCursor);
      rec.loopCount = static_cast<std::uint32_t>(collectItemLoops(*p.body[j]).size());
      loopCursor += rec.loopCount;
      for (const std::string& callee : nd.items[j].callees)
        if (incomingNames.count(callee)) rec.calleeEpochs[callee] = 0;  // filled below
    }
    if (loopCursor != u.loops.size()) ranges = false;
    if (!ranges) u.items.clear();
    if (!isClean) {
      // Syntactic resolved callees keep the unit-level dependency edges
      // complete even where seeded loops skipped SUM_call.
      if (!nd.items.empty())
        for (const std::string& callee : nd.items.front().callees)
          if (incomingNames.count(callee) && callee != p.name) u.deps.insert(callee);
    }
    if (reusedHere > 0) {
      ++stats.partialUnits;
      stats.loopSkips += reusedHere;
    }
    if (!isClean && freshHere > 0)
      ++stats.unitsDirtyLoops;
    else
      ++stats.unitsCleanLoops;
    nextUnits.emplace(p.name, std::move(u));
  }
  // Recomputed units record their callees' post-submit epochs — the validity
  // key future submits check transitively — and every unit's item records
  // adopt the same epochs (a reused item's callees are provably unchanged,
  // so old and new values coincide there).
  for (auto& [name, u] : nextUnits) {
    (void)name;
    if (u.summaryEpoch == newEpoch)
      for (const std::string& dep : u.deps)
        if (auto du = nextUnits.find(dep); du != nextUnits.end())
          u.calleeEpochs[dep] = du->second.summaryEpoch;
    for (ItemRecord& rec : u.items)
      for (auto& [callee, epoch] : rec.calleeEpochs)
        if (auto du = nextUnits.find(callee); du != nextUnits.end())
          epoch = du->second.summaryEpoch;
  }
  units_ = std::move(nextUnits);
  epoch_ = newEpoch;
  unitsOptionsKey_ = optionsKey_;
  live_ = true;
  // Verdicts cached on behalf of removed procedures stay correct (keys are
  // pure) but become eviction-preferred under capacity pressure.
  if (stats.removed > 0) QueryCache::global().noteUnitsRetired();

  // Assemble the report in the batch drivers' order: procedures bottom-up,
  // loops in walk order within each.
  for (const Procedure* proc : sema_.bottomUpOrder) {
    const Unit& u = units_.at(proc->name);
    const bool reused = clean.count(proc->name) != 0;
    for (const CachedLoop& cl : u.loops) {
      SessionLoopResult r;
      r.procName = cl.procName;
      r.line = cl.line;
      r.classification = cl.classification;
      r.report = composeLoopReport(cl);
      r.provenance = cl.provenance;
      out.loops.push_back(std::move(r));
      if (reused) ++stats.loopsReused;
    }
  }
  stats.loopsReused += stats.loopSkips;
  stats.loopsRecomputed = items.size();
  stats.fileSkips = fileSkips_;

  out.ok = true;
  out.stats = stats;
  lastStats_ = stats;
  publishSessionMetrics(stats);
  if (span.active()) {
    span.arg("epoch", std::to_string(stats.epoch));
    span.arg("dirty", std::to_string(stats.dirty));
    span.arg("reused", std::to_string(stats.summariesReused));
    span.arg("loop_skips", std::to_string(stats.loopSkips));
    span.arg("full", stats.fullInvalidation ? "1" : "0");
  }
  return out;
}

void publishSessionMetrics(const SessionStats& stats) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("session.epoch").set(stats.epoch);
  reg.counter("session.procedures").set(stats.procedures);
  reg.counter("session.unchanged").set(stats.unchanged);
  reg.counter("session.modified").set(stats.modified);
  reg.counter("session.added").set(stats.added);
  reg.counter("session.removed").set(stats.removed);
  reg.counter("session.dirty_cone").set(stats.dirty);
  reg.counter("session.summaries_reused").set(stats.summariesReused);
  reg.counter("session.summaries_recomputed").set(stats.summariesRecomputed);
  reg.counter("session.loops_reused").set(stats.loopsReused);
  reg.counter("session.loops_recomputed").set(stats.loopsRecomputed);
  reg.counter("session.loop_skips").set(stats.loopSkips);
  reg.counter("session.units_partial").set(stats.partialUnits);
  reg.counter("session.units_clean_loops").set(stats.unitsCleanLoops);
  reg.counter("session.units_dirty_loops").set(stats.unitsDirtyLoops);
  reg.counter("session.line_remaps").set(stats.lineRemaps);
  reg.counter("session.file_skips").set(stats.fileSkips);
  reg.counter("session.full_invalidation").set(stats.fullInvalidation ? 1 : 0);
}

obs::SessionReuse sessionReuseFor(const SessionStats& stats) {
  obs::SessionReuse out;
  out.epoch = stats.epoch;
  out.warm = stats.epoch > 1 && !stats.fullInvalidation;
  out.fullInvalidation = stats.fullInvalidation;
  out.procedures = stats.procedures;
  out.unchanged = stats.unchanged;
  out.modified = stats.modified;
  out.added = stats.added;
  out.removed = stats.removed;
  out.dirty = stats.dirty;
  out.summariesReused = stats.summariesReused;
  out.summariesRecomputed = stats.summariesRecomputed;
  out.loopsReused = stats.loopsReused;
  out.loopsRecomputed = stats.loopsRecomputed;
  out.loopSkips = stats.loopSkips;
  out.partialUnits = stats.partialUnits;
  out.unitsCleanLoops = stats.unitsCleanLoops;
  out.unitsDirtyLoops = stats.unitsDirtyLoops;
  out.lineRemaps = stats.lineRemaps;
  for (const UnitInvalidation& inv : stats.invalidations)
    out.causes.push_back({inv.unit, inv.cause, inv.detail});
  for (const LoopReuse& lr : stats.loopReuse)
    out.loopCauses.push_back({lr.unit, lr.line, lr.cause, lr.detail});
  return out;
}

std::string formatSessionStats(const SessionStats& stats) {
  std::ostringstream os;
  os << "session epoch " << stats.epoch << (stats.fullInvalidation ? " (full invalidation)" : "")
     << ": " << stats.procedures << " procedure(s) -- " << stats.unchanged << " unchanged, "
     << stats.modified << " modified, " << stats.added << " added, " << stats.removed
     << " removed\n"
     << "dirty cone: " << stats.dirty << " procedure(s); summaries " << stats.summariesReused
     << " reused / " << stats.summariesRecomputed << " recomputed; loop analyses "
     << stats.loopsReused << " reused / " << stats.loopsRecomputed << " recomputed\n"
     << "session.units_clean/dirty_loops: " << stats.unitsCleanLoops << " unit(s) all-cached / "
     << stats.unitsDirtyLoops << " unit(s) recomputed\n";
  if (stats.loopSkips > 0 || stats.partialUnits > 0)
    os << "session.loop_skips: " << stats.loopSkips << " loop(s) reused inside " << stats.partialUnits
       << " dirty unit(s)\n";
  if (stats.lineRemaps > 0)
    os << "line remaps: " << stats.lineRemaps
       << " cached loop citation(s) moved to post-edit lines\n";
  for (const LoopReuse& lr : stats.loopReuse)
    os << "session.loop_reuse_cause: " << lr.unit << " (line " << lr.line << "): " << lr.cause
       << " -- " << lr.detail << '\n';
  if (stats.fileSkips > 0)
    os << "file skips: " << stats.fileSkips << " byte-identical resubmit(s) served without diffing\n";
  return os.str();
}

}  // namespace panorama
