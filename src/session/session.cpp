// AnalysisSession::submit — the incremental re-analysis pipeline.
//
// The submit flow is ordered so that every step that can fail (parse,
// sema, HSG structure checks) runs against the *incoming* program before
// any session state is touched; once the splice starts, the remaining
// steps operate on content that already validated and cannot fail.
//
//   1. parse + fingerprint (pre-sema AST, SourceLoc-blind)
//   2. validation sema over copies of the persistent tables; validation
//      HSG builds for every procedure whose fingerprint changed
//   3. diff into {unchanged, modified, added, removed}
//   4. reuse decision: prune the optimistic clean set to a fixpoint over
//      the summary dependency graph (callee dirty ⇒ caller dirty)
//   5. snapshot clean units out of the previous analyzer, drop it
//   6. splice: unchanged procedures carry their previous AST objects into
//      the next Program (heap statements stay put), dirty ones take the
//      incoming AST
//   7. real sema against the persistent tables (append-only ⇒ stable ids)
//   8. HSG: move + proc-pointer fixup for clean graphs, adopt the
//      freshly built graphs for dirty procedures
//   9. fresh analyzer seeded with the clean snapshots; call-graph waves
//      (seeded procedures return from the memo instantly)
//  10. loop fan-out over dirty procedures only; clean procedures' loop
//      reports come from the unit cache
//  11. unit table update + stats/metrics
#include "panorama/session/session.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "panorama/analysis/driver.h"
#include "panorama/frontend/parser.h"
#include "panorama/obs/metrics.h"
#include "panorama/obs/trace.h"
#include "panorama/predicate/fm_incremental.h"
#include "panorama/support/memo_cache.h"

namespace panorama {

namespace {

/// DO statements of a procedure, outermost first, in the pre-order walk the
/// batch drivers report loops in.
std::vector<const Stmt*> collectLoops(const Procedure& proc) {
  std::vector<const Stmt*> out;
  std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& body) {
    for (const StmtPtr& s : body) {
      if (s->kind == Stmt::Kind::Do) out.push_back(s.get());
      walk(s->thenBody);
      walk(s->elseBody);
      walk(s->body);
    }
  };
  walk(proc.body);
  return out;
}

}  // namespace

AnalysisSession::AnalysisSession(AnalysisOptions options) : options_(options) {
  optionsKey_ = optionsKey(options_);
  QueryCache::global().configure(options_.cacheCapacity);
  setQueryTierEnabled(options_.prefilter);
  ownedPool_ = std::make_unique<ThreadPool>(options_.numThreads);
  pool_ = ownedPool_.get();
}

AnalysisSession::AnalysisSession(AnalysisOptions options, ThreadPool* sharedPool)
    : options_(options) {
  optionsKey_ = optionsKey(options_);
  QueryCache::global().configure(options_.cacheCapacity);
  setQueryTierEnabled(options_.prefilter);
  pool_ = sharedPool;
}

AnalysisSession::~AnalysisSession() = default;

std::uint64_t AnalysisSession::optionsKey(const AnalysisOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(options.symbolicAnalysis);
  mix(options.ifConditions);
  mix(options.interprocedural);
  mix(options.quantified);
  mix(options.computeDE);
  mix(options.garSimplifier);
  mix(options.prefilter);
  mix(options.simplify.maxClauses);
  mix(options.simplify.maxAtomsPerClause);
  mix(options.simplify.useFourierMotzkin);
  mix(options.simplify.fmBudget.maxConstraints);
  mix(options.simplify.fmBudget.maxVariables);
  return h;
}

void AnalysisSession::setOptions(const AnalysisOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = optionsKey(options);
  const bool threadsChanged = options.numThreads != options_.numThreads;
  const bool capacityChanged = options.cacheCapacity != options_.cacheCapacity;
  const bool ablationChanged = key != optionsKey_;
  options_ = options;
  optionsKey_ = key;
  // With a shared pool the daemon owns concurrency; numThreads is advisory.
  if (threadsChanged && ownedPool_) {
    ownedPool_ = std::make_unique<ThreadPool>(options_.numThreads);
    pool_ = ownedPool_.get();
  }
  if (capacityChanged) QueryCache::global().configure(options_.cacheCapacity);
  setQueryTierEnabled(options_.prefilter);
  if (ablationChanged) {
    // Cached verdicts were answered under the old budgets: one epoch bump
    // retires every entry of the query cache, the simplify memo, and the FM
    // elimination cache (all tagged with the same epoch) in O(1).
    QueryCache::global().bumpEpoch();
    // units_ carries unitsOptionsKey_; the mismatch with optionsKey_ makes
    // the next submit a full invalidation.
  }
}

void AnalysisSession::resetState() {
  analyzer_.reset();
  units_.clear();
  pendingSnapshots_.clear();
  program_ = Program{};
  sema_ = SemaResult{};
  hsg_ = Hsg{};
  live_ = false;
  hasSourceHash_ = false;
}

std::uint64_t AnalysisSession::summaryEpochOf(const std::string& name) const {
  auto it = units_.find(name);
  return it == units_.end() ? 0 : it->second.summaryEpoch;
}

SessionResult AnalysisSession::submit(const std::string& source) {
  std::lock_guard<std::mutex> lock(mutex_);

  // Whole-file fast path: a byte-identical resubmit under unchanged options
  // can only diff to "everything unchanged, dirty cone empty" — serve the
  // cached reports without parsing or per-procedure fingerprinting.
  const std::uint64_t sourceHash = store::fnv1a(source);
  if (live_ && hasSourceHash_ && sourceHash == lastSourceHash_ &&
      optionsKey_ == unitsOptionsKey_) {
    return fileSkipLocked();
  }

  // 1. Parse; all remaining steps are frontend-neutral.
  DiagnosticEngine pdiags;
  std::optional<Program> parsed = parseProgram(source, pdiags);
  if (!parsed) {
    SessionResult out;
    out.error = pdiags.str();
    return out;
  }
  SessionResult out = submitLocked(std::move(*parsed));
  if (out.ok) {
    lastSourceHash_ = sourceHash;
    hasSourceHash_ = true;
  }
  return out;
}

SessionResult AnalysisSession::submit(Program program) {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionResult out = submitLocked(std::move(program));
  // A Program submit has no source text; the next text submit must take the
  // full diff path.
  if (out.ok) hasSourceHash_ = false;
  return out;
}

SessionResult AnalysisSession::fileSkipLocked() {
  obs::Span span("session", "session.file_skip");
  ++fileSkips_;

  SessionResult out;
  SessionStats stats;
  stats.epoch = epoch_;
  stats.procedures = program_.procedures.size();
  stats.unchanged = stats.procedures;
  stats.summariesReused = stats.procedures;
  stats.fileSkips = fileSkips_;
  for (const Procedure* proc : sema_.bottomUpOrder) {
    const Unit& u = units_.at(proc->name);
    for (const CachedLoop& cl : u.loops) {
      SessionLoopResult r;
      r.procName = cl.procName;
      r.line = cl.line;
      r.classification = cl.classification;
      r.report = cl.report;
      r.provenance = cl.provenance;
      out.loops.push_back(std::move(r));
      ++stats.loopsReused;
    }
  }
  out.ok = true;
  out.stats = stats;
  lastStats_ = stats;
  publishSessionMetrics(stats);
  if (span.active()) {
    span.arg("epoch", std::to_string(stats.epoch));
    span.arg("skips", std::to_string(fileSkips_));
  }
  return out;
}

SessionResult AnalysisSession::submitLocked(Program incoming) {
  obs::Span span("session", "session.reanalyze");
  SessionResult out;

  // Fingerprint before sema touches the AST (sema reclassifies intrinsic
  // refs in place; fingerprints must be comparable across submits).
  std::map<std::string, Fingerprint> fps;
  for (const Procedure& p : incoming.procedures) fps[p.name] = fingerprintProcedure(p);

  // 2. Validation sema on the incoming program against *copies* of the
  // persistent tables. A failure here (or below) leaves the session state
  // untouched; success guarantees the post-splice sema on equivalent
  // content succeeds too.
  {
    DiagnosticEngine vdiags;
    SymbolTable symCopy = live_ ? sema_.symbols : SymbolTable{};
    ArrayTable arrCopy = live_ ? sema_.arrays : ArrayTable{};
    if (!analyze(incoming, vdiags, std::move(symCopy), std::move(arrCopy))) {
      out.error = vdiags.str();
      return out;
    }
  }

  const bool fullInvalidation = !live_ || optionsKey_ != unitsOptionsKey_;
  const std::uint64_t newEpoch = epoch_ + 1;

  SessionStats stats;
  stats.epoch = newEpoch;
  stats.fullInvalidation = fullInvalidation;
  stats.procedures = incoming.procedures.size();

  // 3. Diff against the previous epoch's units.
  std::set<std::string> unchangedSet;
  for (const Procedure& p : incoming.procedures) {
    auto it = units_.find(p.name);
    if (it == units_.end()) {
      ++stats.added;
    } else if (it->second.fp != fps.at(p.name)) {
      ++stats.modified;
    } else {
      ++stats.unchanged;
      unchangedSet.insert(p.name);
    }
  }
  for (const auto& [name, unit] : units_) {
    (void)unit;
    if (!incoming.findProcedure(name)) ++stats.removed;
  }

  // Structural HSG validation for every procedure that will be rebuilt.
  // Built from the incoming AST, so the graphs stay valid after the splice
  // moves those procedures into program_ (heap statements do not move).
  std::map<std::string, ProcedureHsg> freshHsgs;
  {
    DiagnosticEngine hdiags;
    for (const Procedure& p : incoming.procedures)
      if (!unchangedSet.count(p.name)) freshHsgs.emplace(p.name, buildProcedureHsg(p, hdiags));
    if (hdiags.hasErrors()) {
      out.error = hdiags.str();
      return out;
    }
  }

  // 4. Reuse decision. Start optimistic (every fingerprint-unchanged unit)
  // and prune to a fixpoint: a unit stays clean only while every callee it
  // folded in at SUM_call is itself clean at the recorded summary epoch.
  std::set<std::string> clean;
  std::map<std::string, std::string> pruneDetail;  ///< fixpoint-pruned unit -> why
  if (!fullInvalidation) {
    clean = unchangedSet;
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = clean.begin(); it != clean.end();) {
        const Unit& u = units_.at(*it);
        bool valid = true;
        std::string why;
        for (const std::string& dep : u.deps) {
          auto du = units_.find(dep);
          auto de = u.calleeEpochs.find(dep);
          if (du == units_.end()) {
            why = "callee '" + dep + "' left the unit table";
          } else if (!clean.count(dep)) {
            why = "callee '" + dep + "' is dirty";
          } else if (de == u.calleeEpochs.end() || du->second.summaryEpoch != de->second) {
            why = "callee '" + dep + "' summary epoch changed";
          } else {
            continue;
          }
          valid = false;
          break;
        }
        if (valid) {
          ++it;
        } else {
          pruneDetail.emplace(*it, std::move(why));
          it = clean.erase(it);
          changed = true;
        }
      }
    }
  }
  stats.dirty = incoming.procedures.size() - clean.size();
  stats.summariesReused = clean.size();
  stats.summariesRecomputed = stats.dirty;

  // Attribute every dirty unit to its invalidation cause — the record the
  // cost profiler surfaces for warm runs.
  if (fullInvalidation) {
    const char* cause = !live_ ? "first-submit" : "options-change";
    const char* detail =
        !live_ ? "no prior session state" : "ablation-relevant analysis options changed";
    for (const Procedure& p : incoming.procedures)
      stats.invalidations.push_back({p.name, cause, detail});
  } else {
    for (const Procedure& p : incoming.procedures) {
      if (clean.count(p.name)) continue;
      auto it = units_.find(p.name);
      if (it == units_.end()) {
        stats.invalidations.push_back({p.name, "added", "no unit on record"});
      } else if (it->second.fp != fps.at(p.name)) {
        stats.invalidations.push_back({p.name, "fingerprint", "content fingerprint changed"});
      } else {
        auto pd = pruneDetail.find(p.name);
        stats.invalidations.push_back(
            {p.name, "callee-epoch", pd == pruneDetail.end() ? std::string() : pd->second});
      }
    }
  }

  // 5. Snapshot the clean units' memoized state out of the previous
  // analyzer while its Procedure keys are still the previous epoch's
  // objects; the analyzer references program_/sema_/hsg_ and must be gone
  // before they are replaced.
  std::map<std::string, SummaryAnalyzer::ProcSnapshot> snapshots;
  if (analyzer_) {
    for (const std::string& name : clean)
      if (const Procedure* prev = program_.findProcedure(name))
        snapshots.emplace(name, analyzer_->snapshotProcedure(*prev));
  } else {
    // A restored session has no analyzer yet; its snapshots were carried
    // from disk and wait in pendingSnapshots_ for exactly this seed step.
    for (const std::string& name : clean)
      if (auto it = pendingSnapshots_.find(name); it != pendingSnapshots_.end())
        snapshots.emplace(name, std::move(it->second));
  }
  pendingSnapshots_.clear();
  analyzer_.reset();

  // 6. Splice. Order follows the incoming source; unchanged procedures
  // carry their previous AST (keeping Stmt-keyed caches valid), everything
  // else takes the incoming AST.
  {
    std::map<std::string, Procedure*> prev;
    for (Procedure& p : program_.procedures) prev.emplace(p.name, &p);
    Program next;
    next.procedures.reserve(incoming.procedures.size());
    for (Procedure& p : incoming.procedures) {
      auto it = unchangedSet.count(p.name) ? prev.find(p.name) : prev.end();
      next.procedures.push_back(std::move(it != prev.end() ? *it->second : p));
    }
    program_ = std::move(next);
  }

  // 7. Real sema against the persistent tables. Append-only interning keeps
  // every previously seen VarId/ArrayId stable, which is what lets GARs and
  // scalar sets cross epochs untouched. Validation already accepted this
  // content, so a failure here is an internal bug — drop to a cold state
  // rather than serve stale results.
  DiagnosticEngine rdiags;
  {
    SymbolTable symbols = live_ ? std::move(sema_.symbols) : SymbolTable{};
    ArrayTable arrays = live_ ? std::move(sema_.arrays) : ArrayTable{};
    std::optional<SemaResult> sr = analyze(program_, rdiags, std::move(symbols), std::move(arrays));
    if (!sr) {
      resetState();
      out.error = "internal error: post-splice sema failed\n" + rdiags.str();
      return out;
    }
    sema_ = std::move(*sr);
  }

  // 8. HSG: clean graphs move across (their nodes hold `const Stmt*` into
  // statements that survived the splice) with the owning-procedure pointer
  // rebound; dirty procedures adopt the validated fresh graphs.
  {
    Hsg next;
    for (Procedure& p : program_.procedures) {
      ProcedureHsg ph;
      if (auto fresh = freshHsgs.find(p.name); fresh != freshHsgs.end())
        ph = std::move(fresh->second);
      else if (auto old = hsg_.procs.find(p.name); old != hsg_.procs.end())
        ph = std::move(old->second);
      else
        ph = buildProcedureHsg(p, rdiags);  // unreachable; defensive
      ph.proc = &p;
      next.procs.emplace(p.name, std::move(ph));
    }
    hsg_ = std::move(next);
  }

  // 9. Fresh analyzer for this epoch, seeded with every clean snapshot
  // under the current epoch's procedure objects.
  analyzer_ = std::make_unique<SummaryAnalyzer>(program_, sema_, hsg_, options_);
  for (auto& [name, snap] : snapshots)
    if (const Procedure* p = program_.findProcedure(name))
      analyzer_->seedProcedure(*p, std::move(snap));

  // Call-graph waves: clean procedures return from the memo instantly, so
  // only the dirty cone does summary work — with every callee summary
  // already resident, exactly like a batch run.
  if (pool_->threadCount() <= 1) {
    for (const Procedure* p : sema_.bottomUpOrder) analyzer_->procSummary(*p);
  } else {
    std::size_t waveIdx = 0;
    for (const std::vector<const Procedure*>& wave : callGraphWaves(sema_)) {
      obs::Span wspan("summary", "summary.wave");
      if (wspan.active()) {
        wspan.arg("wave", std::to_string(waveIdx));
        wspan.arg("procs", std::to_string(wave.size()));
      }
      ++waveIdx;
      std::vector<std::function<void()>> tasks;
      tasks.reserve(wave.size());
      for (const Procedure* p : wave)
        tasks.push_back([this, p] { analyzer_->procSummary(*p); });
      pool_->runBatch(std::move(tasks));
    }
  }

  // 10. Loop fan-out over dirty procedures only.
  struct Item {
    const Stmt* loop = nullptr;
    const Procedure* proc = nullptr;
  };
  std::vector<Item> items;
  for (const Procedure* proc : sema_.bottomUpOrder)
    if (!clean.count(proc->name))
      for (const Stmt* s : collectLoops(*proc)) items.push_back({s, proc});

  LoopParallelizer parallelizer(*analyzer_);
  std::vector<LoopAnalysis> dirtyLoops(items.size());
  if (pool_->threadCount() <= 1 || items.size() <= 1) {
    for (std::size_t k = 0; k < items.size(); ++k)
      dirtyLoops[k] = parallelizer.analyzeLoop(*items[k].loop, *items[k].proc);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(items.size());
    for (std::size_t k = 0; k < items.size(); ++k)
      tasks.push_back([&parallelizer, &dirtyLoops, &items, k] {
        dirtyLoops[k] = parallelizer.analyzeLoop(*items[k].loop, *items[k].proc);
      });
    pool_->runBatch(std::move(tasks));
  }

  // 11. Rebuild the unit table: dirty units take this epoch, fresh deps
  // (recorded during SUM_call), and freshly rendered loop reports; clean
  // units keep everything.
  std::map<std::string, std::vector<CachedLoop>> dirtyCaches;
  for (std::size_t k = 0; k < items.size(); ++k) {
    const LoopAnalysis& la = dirtyLoops[k];
    CachedLoop cl;
    cl.line = la.line;
    cl.classification = la.classification;
    cl.procName = la.procName;
    cl.report = formatLoopAnalysis(la);
    cl.provenance = formatProvenance(la);
    dirtyCaches[items[k].proc->name].push_back(std::move(cl));
  }
  std::map<std::string, std::set<std::string>> deps = analyzer_->callDependencies();

  std::map<std::string, Unit> nextUnits;
  for (const Procedure& p : program_.procedures) {
    Unit u;
    u.fp = fps.at(p.name);
    if (clean.count(p.name)) {
      Unit& prevUnit = units_.at(p.name);
      u.summaryEpoch = prevUnit.summaryEpoch;
      u.deps = std::move(prevUnit.deps);
      u.calleeEpochs = std::move(prevUnit.calleeEpochs);
      u.loops = std::move(prevUnit.loops);
    } else {
      u.summaryEpoch = newEpoch;
      if (auto d = deps.find(p.name); d != deps.end()) u.deps = std::move(d->second);
      u.loops = std::move(dirtyCaches[p.name]);
    }
    nextUnits.emplace(p.name, std::move(u));
  }
  // Recomputed units record their callees' post-submit epochs — the validity
  // key future submits check transitively.
  for (auto& [name, u] : nextUnits) {
    (void)name;
    if (u.summaryEpoch != newEpoch) continue;
    for (const std::string& dep : u.deps)
      if (auto du = nextUnits.find(dep); du != nextUnits.end())
        u.calleeEpochs[dep] = du->second.summaryEpoch;
  }
  units_ = std::move(nextUnits);
  epoch_ = newEpoch;
  unitsOptionsKey_ = optionsKey_;
  live_ = true;
  // Verdicts cached on behalf of removed procedures stay correct (keys are
  // pure) but become eviction-preferred under capacity pressure.
  if (stats.removed > 0) QueryCache::global().noteUnitsRetired();

  // Assemble the report in the batch drivers' order: procedures bottom-up,
  // loops in walk order within each.
  for (const Procedure* proc : sema_.bottomUpOrder) {
    const Unit& u = units_.at(proc->name);
    const bool reused = clean.count(proc->name) != 0;
    for (const CachedLoop& cl : u.loops) {
      SessionLoopResult r;
      r.procName = cl.procName;
      r.line = cl.line;
      r.classification = cl.classification;
      r.report = cl.report;
      r.provenance = cl.provenance;
      out.loops.push_back(std::move(r));
      if (reused) ++stats.loopsReused;
    }
  }
  stats.loopsRecomputed = items.size();
  stats.fileSkips = fileSkips_;

  out.ok = true;
  out.stats = stats;
  lastStats_ = stats;
  publishSessionMetrics(stats);
  if (span.active()) {
    span.arg("epoch", std::to_string(stats.epoch));
    span.arg("dirty", std::to_string(stats.dirty));
    span.arg("reused", std::to_string(stats.summariesReused));
    span.arg("full", stats.fullInvalidation ? "1" : "0");
  }
  return out;
}

void publishSessionMetrics(const SessionStats& stats) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("session.epoch").set(stats.epoch);
  reg.counter("session.procedures").set(stats.procedures);
  reg.counter("session.unchanged").set(stats.unchanged);
  reg.counter("session.modified").set(stats.modified);
  reg.counter("session.added").set(stats.added);
  reg.counter("session.removed").set(stats.removed);
  reg.counter("session.dirty_cone").set(stats.dirty);
  reg.counter("session.summaries_reused").set(stats.summariesReused);
  reg.counter("session.summaries_recomputed").set(stats.summariesRecomputed);
  reg.counter("session.loops_reused").set(stats.loopsReused);
  reg.counter("session.loops_recomputed").set(stats.loopsRecomputed);
  reg.counter("session.file_skips").set(stats.fileSkips);
  reg.counter("session.full_invalidation").set(stats.fullInvalidation ? 1 : 0);
}

obs::SessionReuse sessionReuseFor(const SessionStats& stats) {
  obs::SessionReuse out;
  out.epoch = stats.epoch;
  out.warm = stats.epoch > 1 && !stats.fullInvalidation;
  out.fullInvalidation = stats.fullInvalidation;
  out.procedures = stats.procedures;
  out.unchanged = stats.unchanged;
  out.modified = stats.modified;
  out.added = stats.added;
  out.removed = stats.removed;
  out.dirty = stats.dirty;
  out.summariesReused = stats.summariesReused;
  out.summariesRecomputed = stats.summariesRecomputed;
  out.loopsReused = stats.loopsReused;
  out.loopsRecomputed = stats.loopsRecomputed;
  for (const UnitInvalidation& inv : stats.invalidations)
    out.causes.push_back({inv.unit, inv.cause, inv.detail});
  return out;
}

std::string formatSessionStats(const SessionStats& stats) {
  std::ostringstream os;
  os << "session epoch " << stats.epoch << (stats.fullInvalidation ? " (full invalidation)" : "")
     << ": " << stats.procedures << " procedure(s) -- " << stats.unchanged << " unchanged, "
     << stats.modified << " modified, " << stats.added << " added, " << stats.removed
     << " removed\n"
     << "dirty cone: " << stats.dirty << " procedure(s); summaries " << stats.summariesReused
     << " reused / " << stats.summariesRecomputed << " recomputed; loop analyses "
     << stats.loopsReused << " reused / " << stats.loopsRecomputed << " recomputed\n";
  if (stats.fileSkips > 0)
    os << "file skips: " << stats.fileSkips << " byte-identical resubmit(s) served without diffing\n";
  return os.str();
}

}  // namespace panorama
