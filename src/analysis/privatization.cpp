// Array privatization (§3.2.1): candidacy, the UE_i ∩ MOD_{<i} = ∅ test,
// and last-value (copy-out) analysis. Every decision taken here is also
// recorded into the loop's DecisionTrail (obs/provenance.h): the report
// layer renders the trail for --explain, and the deep symbolic layers
// attribute their cold-query notes to the test running here via the
// ProvenanceScope installed around each emptiness query.
#include <algorithm>

#include "panorama/analysis/analysis.h"
#include "panorama/obs/trace.h"

namespace panorama {

namespace {

using obs::EvidenceKind;

/// Renders a (possibly empty) GarList for provenance details.
std::string listText(const GarList& list, const SemaResult& sema) {
  return list.empty() ? "{}" : list.str(sema.symbols, sema.arrays);
}

}  // namespace

const char* toString(LoopClass c) {
  switch (c) {
    case LoopClass::Parallel: return "parallel";
    case LoopClass::ParallelAfterPrivatization: return "parallel (after privatization)";
    case LoopClass::Serial: return "serial";
  }
  return "?";
}

Truth LoopParallelizer::intersectionEmpty(const GarList& a, const GarList& b,
                                          const CmpCtx& ctx) const {
  if (a.empty() || b.empty()) return Truth::True;
  return garIntersectionEmpty(a, b, ctx);
}

CmpCtx LoopParallelizer::loopCtx(const LoopSummary& ls) const {
  ConstraintSet cs;
  if (!ls.boundsKnown) return CmpCtx{ConstraintSet{}, FmBudget{}, analyzer_.psi()};
  SymExpr I = SymExpr::variable(ls.bounds.index);
  auto sc = ls.bounds.step.constantValue();
  if (sc && *sc > 0) {
    cs.addExprLE0(ls.bounds.lo - I);
    cs.addExprLE0(I - ls.bounds.up);
  } else if (sc && *sc < 0) {
    cs.addExprLE0(ls.bounds.up - I);
    cs.addExprLE0(I - ls.bounds.lo);
  }
  return CmpCtx{std::move(cs), FmBudget{}, analyzer_.psi()};
}

LoopAnalysis LoopParallelizer::analyzeLoop(const Stmt& doStmt, const Procedure& proc) {
  LoopAnalysis la;
  la.loop = &doStmt;
  la.procName = proc.name;
  la.line = static_cast<int>(doStmt.loc.line);

  obs::Span span("analysis.loop", proc.name + " DO " + doStmt.doVar);
  if (span.active()) span.arg("line", std::to_string(la.line));

  const LoopSummary* lsp = analyzer_.loopSummary(&doStmt);
  if (!lsp) {
    la.serialReason = "loop was not summarized (condensed or unreachable)";
    la.provenance.add(EvidenceKind::NotSummarized, "", Truth::Unknown, la.serialReason);
    la.provenance.add(EvidenceKind::Classification, toString(la.classification), Truth::Unknown,
                      la.serialReason);
    return la;
  }
  const LoopSummary& ls = *lsp;
  la.boundsKnown = ls.boundsKnown;
  if (!ls.boundsKnown) {
    la.serialReason = "loop header is not symbolically analyzable";
    la.provenance.add(EvidenceKind::UnanalyzableHeader, "", Truth::Unknown, la.serialReason);
    classifyScalars(doStmt, proc, la);
    la.provenance.add(EvidenceKind::Classification, toString(la.classification), Truth::Unknown,
                      la.serialReason);
    return la;
  }

  CmpCtx ctx = loopCtx(ls);
  const ProcSymbols& sym = analyzer_.sema().of(proc);

  // Gather every array the loop touches.
  std::vector<ArrayId> touched;
  for (ArrayId a : ls.modIter.arrays()) touched.push_back(a);
  for (ArrayId a : ls.ueIter.arrays()) touched.push_back(a);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::vector<ArrayId> privatized;
  for (ArrayId array : touched) {
    ArrayPrivatization ap;
    ap.array = array;
    ap.name = analyzer_.sema().arrays.name(array);
    for (const auto& [local, id] : sym.arrayIds)
      if (id == array) ap.name = local;

    GarList modA = ls.modIter.forArray(array);
    GarList ueA = ls.ueIter.forArray(array);
    ap.written = !modA.empty();

    // §3.2.1 candidacy: the iteration's writes must not move with the index
    // — a property of the *subscripts* (guards may mention the index freely).
    bool subscriptsIndexFree = true;
    for (const Gar& g : modA.gars())
      subscriptsIndexFree = subscriptsIndexFree && !g.region().containsVar(ls.bounds.index);
    ap.candidate = ap.written && subscriptsIndexFree;
    if (!ap.written) {
      ap.reason = "read-only in this loop";
      la.arrays.push_back(std::move(ap));
      continue;
    }
    la.provenance.add(EvidenceKind::Candidacy, ap.name,
                      ap.candidate ? Truth::True : Truth::False,
                      ap.candidate ? "per-iteration writes are index-free"
                                   : "writes are indexed by the loop variable");
    if (!ap.candidate) {
      ap.reason = "writes are indexed by the loop variable";
      la.arrays.push_back(std::move(ap));
      continue;
    }

    GarList modBeforeA = ls.modBefore.forArray(array);
    Truth flowFree;
    {
      obs::ProvenanceScope scope(la.provenance, "flow-test " + ap.name);
      flowFree = intersectionEmpty(ueA, modBeforeA, ctx);
    }
    ap.privatizable = flowFree == Truth::True;
    ap.reason = ap.privatizable
                    ? "UE_i ∩ MOD_<i = ∅"
                    : "cannot prove UE_i ∩ MOD_<i = ∅";
    la.provenance.add(EvidenceKind::FlowTest, ap.name, flowFree,
                      ap.privatizable
                          ? "UE_i ∩ MOD_<i = ∅ — no loop-carried flow reaches the array"
                          : "UE_i = " + listText(ueA, analyzer_.sema()) +
                                " not provably disjoint from MOD_<i = " +
                                listText(modBeforeA, analyzer_.sema()));
    if (ap.privatizable) {
      // Live-out: the local probe sees only this procedure's continuation;
      // a formal or COMMON array may be read by the caller, so it must be
      // assumed live (the paper defers to the live analyses of [22,37,27]).
      bool escapes = false;
      {
        bool isFormal = false;
        for (const auto& [local, id] : sym.arrayIds)
          if (id == array)
            isFormal = std::find(proc.params.begin(), proc.params.end(), local) !=
                       proc.params.end();
        bool isLocal =
            analyzer_.sema().arrays.name(array).starts_with(proc.name + "::");
        escapes = isFormal || !isLocal;
      }
      Truth liveOut =
          intersectionEmpty(ls.mod.forArray(array), ls.ueAfter.forArray(array),
                            CmpCtx{ConstraintSet{}, FmBudget{}, analyzer_.psi()});
      ap.needsCopyOut = escapes || liveOut != Truth::True;
      if (ap.needsCopyOut) {
        // Last-value copy (LASTPRIVATE) reproduces serial results only when
        // the final iteration rewrites every live element — i.e. the writes
        // are iteration-independent in both subscripts (candidacy) and
        // guards. Iteration-dependent or unknown guards demote.
        bool lastIterationRewritesAll = true;
        for (const Gar& g : modA.gars()) {
          if (g.guard().isUnknown() || g.guard().containsVar(ls.bounds.index))
            lastIterationRewritesAll = false;
        }
        if (!lastIterationRewritesAll) {
          ap.privatizable = false;
          ap.reason = "live after the loop, but the last iteration may not rewrite it";
          la.provenance.add(EvidenceKind::CopyOutDemotion, ap.name, Truth::Unknown,
                            "needs a last-value copy but the final iteration may not rewrite "
                            "every live element (iteration-dependent or unknown write guard)");
        }
      }
      if (ap.privatizable) privatized.push_back(array);
    }
    la.arrays.push_back(std::move(ap));
  }

  // §3.2.2 dependence tests on the non-privatized remainder.
  auto remainder = [&](const GarList& list) {
    GarList out;
    for (const Gar& g : list.gars())
      if (std::find(privatized.begin(), privatized.end(), g.array()) == privatized.end())
        out.add(g);
    return out;
  };
  GarList ueRem = remainder(ls.ueIter);
  GarList deRem = remainder(ls.deIter);
  GarList modRem = remainder(ls.modIter);
  GarList beforeRem = remainder(ls.modBefore);
  GarList afterRem = remainder(ls.modAfter);

  {
    obs::ProvenanceScope scope(la.provenance, "carried-flow");
    la.noCarriedFlow = intersectionEmpty(ueRem, beforeRem, ctx);
  }
  la.provenance.add(EvidenceKind::DependenceTest, "flow", la.noCarriedFlow,
                    la.noCarriedFlow == Truth::True
                        ? "UE_i ∩ MOD_<i = ∅ on the non-privatized remainder"
                        : "UE_i = " + listText(ueRem, analyzer_.sema()) +
                              " not provably disjoint from MOD_<i = " +
                              listText(beforeRem, analyzer_.sema()));
  Truth out1, out2;
  {
    obs::ProvenanceScope scope(la.provenance, "carried-output");
    out1 = intersectionEmpty(modRem, beforeRem, ctx);
    out2 = intersectionEmpty(modRem, afterRem, ctx);
  }
  la.noCarriedOutput =
      (out1 == Truth::True && out2 == Truth::True) ? Truth::True : Truth::Unknown;
  la.provenance.add(EvidenceKind::DependenceTest, "output", la.noCarriedOutput,
                    la.noCarriedOutput == Truth::True
                        ? "MOD_i ∩ MOD_<i = ∅ and MOD_i ∩ MOD_>i = ∅ on the remainder"
                        : std::string("MOD_i overlaps ") +
                              (out1 != Truth::True ? "MOD_<i" : "MOD_>i") +
                              " on the remainder: MOD_i = " + listText(modRem, analyzer_.sema()));
  {
    obs::ProvenanceScope scope(la.provenance, "carried-anti");
    la.noCarriedAnti = intersectionEmpty(ueRem, afterRem, ctx);
    la.noCarriedAntiDE = intersectionEmpty(deRem, afterRem, ctx);
  }
  la.provenance.add(EvidenceKind::DependenceTest, "anti", la.noCarriedAnti,
                    la.noCarriedAnti == Truth::True
                        ? "UE_i ∩ MOD_>i = ∅ on the remainder"
                        : "UE_i = " + listText(ueRem, analyzer_.sema()) +
                              " not provably disjoint from MOD_>i = " +
                              listText(afterRem, analyzer_.sema()));

  classifyScalars(doStmt, proc, la);
  bool scalarsOk = std::all_of(la.scalars.begin(), la.scalars.end(), [](const ScalarInfo& s) {
    return s.privatizable || s.reduction;
  });
  for (const ScalarInfo& si : la.scalars) {
    if (si.reduction)
      la.provenance.add(EvidenceKind::ScalarReduction, si.name, Truth::True,
                        std::string("recognized ") + si.reductionOp + " reduction accumulator");
    else if (!si.privatizable)
      la.provenance.add(EvidenceKind::ScalarExposed, si.name, Truth::Unknown,
                        "read before its iteration-local definition");
  }

  if (la.noCarriedFlow == Truth::True && la.noCarriedOutput == Truth::True &&
      la.noCarriedAnti == Truth::True && scalarsOk) {
    // Did any privatized array actually need it (it carried an output/anti
    // dependence in the original loop)?
    bool neededPrivatization = false;
    for (ArrayId array : privatized) {
      GarList modA = ls.modIter.forArray(array);
      Truth selfOut = intersectionEmpty(modA, ls.modBefore.forArray(array), ctx);
      if (selfOut != Truth::True) neededPrivatization = true;
    }
    la.classification = neededPrivatization ? LoopClass::ParallelAfterPrivatization
                                            : LoopClass::Parallel;
  } else {
    la.classification = LoopClass::Serial;
    if (!scalarsOk)
      la.serialReason = "a scalar is used before being defined in the iteration";
    else if (la.noCarriedFlow != Truth::True)
      la.serialReason = "possible loop-carried flow dependence";
    else if (la.noCarriedOutput != Truth::True)
      la.serialReason = "possible loop-carried output dependence";
    else
      la.serialReason = "possible loop-carried anti dependence";
  }
  {
    std::string detail;
    if (la.classification == LoopClass::Serial) {
      detail = la.serialReason;
    } else {
      detail = "all three §3.2.2 tests proved absent";
      if (!privatized.empty()) {
        detail += "; privatized:";
        for (ArrayId array : privatized)
          for (const ArrayPrivatization& ap : la.arrays)
            if (ap.array == array) detail += " " + ap.name;
      }
    }
    la.provenance.add(EvidenceKind::Classification, toString(la.classification),
                      la.classification == LoopClass::Serial ? Truth::Unknown : Truth::True,
                      std::move(detail));
  }
  return la;
}

void LoopParallelizer::classifyScalars(const Stmt& doStmt, const Procedure& proc,
                                       LoopAnalysis& out) {
  const ProcSymbols& sym = analyzer_.sema().of(proc);

  // Scalars assigned in the body (excluding this loop's own index).
  std::set<std::string> assigned;
  std::set<std::string> exposed;   // read before a definite assignment
  std::set<std::string> definite;  // definitely assigned so far (top level)
  // Reduction recognition: accumulations seen (name -> op) and names used in
  // any non-accumulation position.
  std::map<std::string, char> accumOp;
  std::set<std::string> accumConflict;
  std::set<std::string> usedOutsideAccum;

  std::function<void(const Expr&)> noteOccurrences = [&](const Expr& e) {
    if (e.kind == Expr::Kind::VarRef && sym.isScalar(e.name)) usedOutsideAccum.insert(e.name);
    for (const ExprPtr& a : e.args) noteOccurrences(*a);
  };

  /// s = s op rest (op in + - *) with `rest` free of s? Returns the op.
  auto accumulationForm = [&](const Stmt& s) -> char {
    if (s.kind != Stmt::Kind::Assign || s.lhs->kind != Expr::Kind::VarRef) return 0;
    if (!sym.isScalar(s.lhs->name)) return 0;
    const Expr& rhs = *s.rhs;
    if (rhs.kind != Expr::Kind::Binary) return 0;
    char op = rhs.binOp == BinOp::Add   ? '+'
              : rhs.binOp == BinOp::Sub ? '+'  // s - e is a sum reduction too
              : rhs.binOp == BinOp::Mul ? '*'
                                        : 0;
    if (!op) return 0;
    const Expr* self = rhs.args[0].get();
    const Expr* rest = rhs.args[1].get();
    if (rhs.binOp != BinOp::Sub && self->kind != Expr::Kind::VarRef) std::swap(self, rest);
    if (self->kind != Expr::Kind::VarRef || self->name != s.lhs->name) return 0;
    // rest must not mention s.
    bool mentions = false;
    std::function<void(const Expr&)> scan = [&](const Expr& e) {
      if (e.kind == Expr::Kind::VarRef && e.name == s.lhs->name) mentions = true;
      for (const ExprPtr& a : e.args) scan(*a);
    };
    scan(*rest);
    return mentions ? 0 : op;
  };

  std::function<void(const Expr&)> reads = [&](const Expr& e) {
    if (e.kind == Expr::Kind::VarRef && sym.isScalar(e.name) && !definite.count(e.name) &&
        e.name != doStmt.doVar)
      exposed.insert(e.name);
    for (const ExprPtr& a : e.args) reads(*a);
  };

  // Path-sensitive-enough definite-assignment: within one statement list,
  // an assignment makes later statements of the *same path* defined; a
  // labeled statement is a potential GOTO entry that may have skipped every
  // definition made since the list was entered, so the set resets there.
  // Conditional bodies see (and then discard) their own additions.
  std::function<void(const std::vector<StmtPtr>&)> walkList =
      [&](const std::vector<StmtPtr>& body) {
        std::set<std::string> atEntry = definite;
        for (const StmtPtr& sp : body) {
          const Stmt& s = *sp;
          if (s.label != 0) definite = atEntry;  // a GOTO may land here
          switch (s.kind) {
            case Stmt::Kind::Assign: {
              reads(*s.rhs);
              char op = accumulationForm(s);
              if (op) {
                auto [it, fresh] = accumOp.emplace(s.lhs->name, op);
                if (!fresh && it->second != op) accumConflict.insert(s.lhs->name);
                // occurrences inside the accumulation's `rest` still count
                // as ordinary uses of OTHER scalars:
                const Expr& first = *s.rhs->args[0];
                bool firstIsSelf =
                    first.kind == Expr::Kind::VarRef && first.name == s.lhs->name;
                noteOccurrences(firstIsSelf ? *s.rhs->args[1] : *s.rhs->args[0]);
              } else {
                noteOccurrences(*s.rhs);
              }
              if (s.lhs->kind == Expr::Kind::ArrayRef) {
                for (const ExprPtr& sub : s.lhs->args) {
                  reads(*sub);
                  noteOccurrences(*sub);
                }
              } else if (s.lhs->kind == Expr::Kind::VarRef && sym.isScalar(s.lhs->name)) {
                assigned.insert(s.lhs->name);
                definite.insert(s.lhs->name);
                if (!op) usedOutsideAccum.insert(s.lhs->name);  // plain overwrite
              }
              break;
            }
            case Stmt::Kind::If: {
              reads(*s.cond);
              noteOccurrences(*s.cond);
              std::set<std::string> beforeBranch = definite;
              walkList(s.thenBody);
              definite = beforeBranch;
              walkList(s.elseBody);
              definite = std::move(beforeBranch);
              break;
            }
            case Stmt::Kind::Do: {
              reads(*s.lo);
              reads(*s.hi);
              noteOccurrences(*s.lo);
              noteOccurrences(*s.hi);
              if (s.step) reads(*s.step);
              if (s.step) noteOccurrences(*s.step);
              assigned.insert(s.doVar);
              definite.insert(s.doVar);
              std::set<std::string> beforeBody = definite;
              walkList(s.body);
              definite = std::move(beforeBody);  // may zero-trip
              break;
            }
            case Stmt::Kind::Call:
              for (const ExprPtr& a : s.args) {
                // A scalar passed by reference may be read and may be
                // written — conservatively a read, never a definite write.
                reads(*a);
                noteOccurrences(*a);
              }
              break;
            default:
              break;
          }
        }
        definite = std::move(atEntry);
      };
  walkList(doStmt.body);

  for (const std::string& name : assigned) {
    if (name == doStmt.doVar) continue;
    ScalarInfo si;
    si.name = name;
    if (auto id = sym.scalarId(name)) si.var = *id;
    si.privatizable = !exposed.count(name);
    auto op = accumOp.find(name);
    si.reduction = !si.privatizable && op != accumOp.end() && !accumConflict.count(name) &&
                   !usedOutsideAccum.count(name);
    if (si.reduction) si.reductionOp = op->second;
    out.scalars.push_back(std::move(si));
  }
}

std::vector<LoopAnalysis> LoopParallelizer::analyzeProgram() {
  std::vector<LoopAnalysis> out;
  analyzer_.analyzeAll();
  for (const Procedure* proc : analyzer_.sema().bottomUpOrder) {
    std::function<void(const std::vector<StmtPtr>&)> walk = [&](const std::vector<StmtPtr>& b) {
      for (const StmtPtr& s : b) {
        if (s->kind == Stmt::Kind::Do) out.push_back(analyzeLoop(*s, *proc));
        walk(s->thenBody);
        walk(s->elseBody);
        walk(s->body);
      }
    };
    walk(proc->body);
  }
  return out;
}

}  // namespace panorama
