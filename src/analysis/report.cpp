#include <sstream>

#include "panorama/analysis/analysis.h"

namespace panorama {

std::string formatLoopAnalysis(const LoopAnalysis& la, const SummaryAnalyzer& analyzer) {
  std::ostringstream os;
  const char* var = la.loop ? la.loop->doVar.c_str() : "?";
  os << la.procName << ": DO " << var << " (line " << la.line << "): "
     << toString(la.classification);
  if (la.classification == LoopClass::Serial && !la.serialReason.empty())
    os << " — " << la.serialReason;
  os << '\n';
  for (const ArrayPrivatization& ap : la.arrays) {
    os << "    array " << ap.name << ": ";
    if (!ap.written)
      os << "read-only";
    else if (ap.privatizable)
      os << "privatizable" << (ap.needsCopyOut ? " (copy-out last value)" : "");
    else if (ap.candidate)
      os << "candidate, NOT privatizable (" << ap.reason << ")";
    else
      os << ap.reason;
    os << '\n';
  }
  for (const ScalarInfo& si : la.scalars) {
    if (si.reduction)
      os << "    scalar " << si.name << ": reduction (" << si.reductionOp << ")\n";
    else if (!si.privatizable)
      os << "    scalar " << si.name << ": exposed across iterations\n";
  }
  (void)analyzer;
  return os.str();
}

}  // namespace panorama
